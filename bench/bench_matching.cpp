// Experiment E10b — the introduction's maximal-matching comparison:
// randomized O(log n) (Luby on the line graph) vs deterministic
// O(Δ'² + log* n) (MIS on the line graph with Theorem 2 scheduling).
#include <iostream>

#include "algo/edge_coloring_distributed.hpp"
#include "algo/matching_deterministic.hpp"
#include "algo/matching_local.hpp"
#include "algo/matching_randomized.hpp"
#include "graph/regular.hpp"
#include "lcl/verify_edge_coloring.hpp"
#include "lcl/verify_matching.hpp"
#include "local/ids.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 13));
  BenchReporter reporter(flags, "E10b_matching");
  flags.check_unknown();

  std::cout << "E10b: maximal matching — randomized vs deterministic\n\n";
  Table t({"Δ", "n", "rand rounds", "rand local", "det rounds", "det local",
           "det/rand", "(2Δ-1)-edge-col rds"});
  for (int delta : {3, 8, 16}) {
    for (int e = 9; e <= max_exp; e += 2) {
      const NodeId n = static_cast<NodeId>(1) << e;
      Rng rng(mix_seed(0xEB, static_cast<std::uint64_t>(delta),
                       static_cast<std::uint64_t>(n)));
      const Graph g = make_random_regular(n, delta, rng);

      Accumulator rand_rounds, rand_local_rounds;
      for (int s = 0; s < seeds; ++s) {
        RoundLedger lr;
        const auto r = matching_randomized(g, static_cast<std::uint64_t>(s) + 1,
                                           lr);
        CKP_CHECK(r.completed);
        CKP_CHECK(verify_maximal_matching(g, r.in_matching).ok);
        rand_rounds.add(lr.rounds());
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "matching_randomized";
          rec.graph_family = "random_regular";
          rec.n = n;
          rec.delta = delta;
          rec.seed = static_cast<std::uint64_t>(s) + 1;
          rec.rounds = lr.rounds();
          rec.verified = true;
          reporter.add(std::move(rec));
        }

        // The engine-native node-level handshake port on the packed fast
        // path (DESIGN.md §11). A different protocol than Luby on the line
        // graph — proposals are stateless per-edge hashes — so its round
        // counts are its own column, not a differential.
        LocalInput in;
        in.graph = &g;
        in.seed = static_cast<std::uint64_t>(s) + 1;
        const auto rl = matching_randomized_local(in);
        CKP_CHECK(rl.completed);
        CKP_CHECK(verify_maximal_matching(g, rl.in_matching).ok);
        rand_local_rounds.add(rl.rounds);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "matching_randomized_local";
          rec.graph_family = "random_regular";
          rec.n = n;
          rec.delta = delta;
          rec.seed = in.seed;
          rec.rounds = rl.rounds;
          rec.verified = true;
          reporter.add(std::move(rec));
        }
      }
      RoundLedger ld;
      const auto ids = random_ids(n, 30, rng);
      const auto det = matching_deterministic(g, ids, ld);
      CKP_CHECK(verify_maximal_matching(g, det.in_matching).ok);
      {
        RunRecord rec = reporter.make_record();
        rec.algorithm = "matching_deterministic";
        rec.graph_family = "random_regular";
        rec.n = n;
        rec.delta = delta;
        rec.rounds = ld.rounds();
        rec.verified = true;
        reporter.add(std::move(rec));
      }

      // The packed DetLOCAL handshake (greedy by edge priority). IDs must
      // fit 28 bits for the word layout, which sequential ids satisfy at
      // every n this bench sweeps.
      int det_local_rounds = 0;
      {
        LocalInput in;
        in.graph = &g;
        in.ids = sequential_ids(n);
        const auto dl = matching_deterministic_local(in);
        CKP_CHECK(dl.completed);
        CKP_CHECK(verify_maximal_matching(g, dl.in_matching).ok);
        det_local_rounds = dl.rounds;
        RunRecord rec = reporter.make_record();
        rec.algorithm = "matching_deterministic_local";
        rec.graph_family = "random_regular";
        rec.n = n;
        rec.delta = delta;
        rec.rounds = dl.rounds;
        rec.verified = true;
        reporter.add(std::move(rec));
      }
      RoundLedger lec;
      const auto ec = edge_coloring_distributed(g, ids, lec);
      CKP_CHECK(verify_edge_coloring(g, ec.colors, ec.palette).ok);
      {
        RunRecord rec = reporter.make_record();
        rec.algorithm = "edge_coloring_distributed";
        rec.graph_family = "random_regular";
        rec.n = n;
        rec.delta = delta;
        rec.rounds = lec.rounds();
        rec.verified = true;
        rec.metric("palette", static_cast<double>(ec.palette));
        reporter.add(std::move(rec));
      }
      t.add_row({Table::cell(delta), Table::cell(static_cast<std::int64_t>(n)),
                 Table::cell(rand_rounds.mean(), 1),
                 Table::cell(rand_local_rounds.mean(), 1),
                 Table::cell(ld.rounds()), Table::cell(det_local_rounds),
                 Table::cell(ld.rounds() / rand_rounds.mean(), 1),
                 Table::cell(lec.rounds())});
    }
  }
  reporter.print(t, std::cout);
  std::cout << "\nExpected shape: rand rounds ~ log n, independent of Δ;"
            << " det rounds grow with Δ² and stay flat in n.\n";
  return 0;
}
