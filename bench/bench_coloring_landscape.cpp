// Experiment E10c — the introduction's (Δ+1)-coloring landscape:
// randomized trial coloring (O(log n) standalone), the shattering hybrid
// (O(log Δ) trials + deterministic finish on a shattered residue — the
// pattern Theorem 3 proves necessary), and the deterministic Theorem 2 +
// blocked-reduction baseline — plus (β+1, β)-ruling sets as the relaxation
// used by the shattering literature.
#include <iostream>

#include "algo/plus_one_coloring.hpp"
#include "algo/ruling_set.hpp"
#include "graph/regular.hpp"
#include "lcl/verify_coloring.hpp"
#include "lcl/verify_ruling_set.hpp"
#include "local/ids.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 14));
  BenchReporter reporter(flags, "E10c_coloring_landscape");
  flags.check_unknown();

  std::cout << "E10c/Table A: (Δ+1)-coloring — three strategies\n"
            << "rand = trial coloring to completion; hybrid = O(log Δ) trials"
            << " + det finish; det = Thm 2 + reduction\n\n";
  {
    Table t({"Δ", "n", "rand rds", "hybrid rds", "residue", "maxcomp",
             "det rds"});
    for (int delta : {4, 8, 16, 32}) {
      for (int e = 10; e <= max_exp; e += 2) {
        const NodeId n = static_cast<NodeId>(1) << e;
        Rng rng(mix_seed(0xEE, static_cast<std::uint64_t>(delta),
                         static_cast<std::uint64_t>(n)));
        const Graph g = make_random_regular(n, delta, rng);

        Accumulator rand_rounds, hybrid_rounds, residue, maxcomp;
        for (int s = 0; s < seeds; ++s) {
          RoundLedger lr;
          const auto full = plus_one_coloring_randomized(
              g, delta, static_cast<std::uint64_t>(s) + 1, lr);
          CKP_CHECK(full.completed);
          CKP_CHECK(verify_coloring(g, full.colors, delta + 1).ok);
          rand_rounds.add(lr.rounds());
          {
            RunRecord rec = reporter.make_record();
            rec.algorithm = "plus_one_randomized";
            rec.graph_family = "random_regular";
            rec.n = n;
            rec.delta = delta;
            rec.seed = static_cast<std::uint64_t>(s) + 1;
            rec.rounds = lr.rounds();
            rec.verified = true;
            reporter.add(std::move(rec));
          }

          PlusOneParams params;
          params.shatter_iterations =
              2 * ceil_log2(static_cast<std::uint64_t>(delta) + 1) + 2;
          RoundLedger lh;
          const auto hybrid = plus_one_coloring_randomized(
              g, delta, static_cast<std::uint64_t>(s) + 50, lh, params);
          CKP_CHECK(hybrid.completed);
          CKP_CHECK(verify_coloring(g, hybrid.colors, delta + 1).ok);
          hybrid_rounds.add(lh.rounds());
          residue.add(hybrid.residue_nodes);
          maxcomp.add(hybrid.largest_residue_component);
          {
            RunRecord rec = reporter.make_record();
            rec.algorithm = "plus_one_hybrid";
            rec.graph_family = "random_regular";
            rec.n = n;
            rec.delta = delta;
            rec.seed = static_cast<std::uint64_t>(s) + 50;
            rec.rounds = lh.rounds();
            rec.verified = true;
            rec.metric("residue_nodes",
                       static_cast<double>(hybrid.residue_nodes));
            rec.metric("largest_residue_component",
                       static_cast<double>(hybrid.largest_residue_component));
            reporter.add(std::move(rec));
          }
        }
        RoundLedger ld;
        const auto ids =
            random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n)), rng);
        const auto det = plus_one_coloring_deterministic(g, ids, delta, ld);
        CKP_CHECK(verify_coloring(g, det.colors, delta + 1).ok);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "plus_one_deterministic";
          rec.graph_family = "random_regular";
          rec.n = n;
          rec.delta = delta;
          rec.rounds = ld.rounds();
          rec.verified = true;
          reporter.add(std::move(rec));
        }
        t.add_row({Table::cell(delta), Table::cell(static_cast<std::int64_t>(n)),
                   Table::cell(rand_rounds.mean(), 1),
                   Table::cell(hybrid_rounds.mean(), 1),
                   Table::cell(residue.mean(), 0),
                   Table::cell(maxcomp.mean(), 1), Table::cell(ld.rounds())});
      }
    }
    reporter.print(t, std::cout);
  }

  std::cout << "\nE10c/Table B: (β+1, β)-ruling sets via powers\n\n";
  {
    Table t({"Δ", "n", "β", "det rds", "rand rds", "Δ(G^β)"});
    for (int delta : {3, 4}) {
      const NodeId n = 4096;
      Rng rng(mix_seed(0xEF, static_cast<std::uint64_t>(delta)));
      const Graph g = make_random_regular(n, delta, rng);
      const auto ids =
          random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n)), rng);
      for (int beta : {1, 2, 3}) {
        RoundLedger ld, lr;
        const auto det = ruling_set_deterministic(g, beta, ids, ld);
        CKP_CHECK(verify_ruling_set(g, det.in_set, beta + 1, beta).ok);
        const auto rnd = ruling_set_randomized(g, beta, 7, lr);
        CKP_CHECK(rnd.completed);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "ruling_set_deterministic";
          rec.graph_family = "random_regular";
          rec.n = n;
          rec.delta = delta;
          rec.rounds = ld.rounds();
          rec.verified = true;
          rec.metric("beta", static_cast<double>(beta));
          rec.metric("power_delta", static_cast<double>(det.power_delta));
          reporter.add(std::move(rec));
        }
        t.add_row({Table::cell(delta), Table::cell(static_cast<std::int64_t>(n)),
                   Table::cell(beta), Table::cell(ld.rounds()),
                   Table::cell(lr.rounds()), Table::cell(det.power_delta)});
      }
    }
    reporter.print(t, std::cout);
  }
  std::cout << "\nExpected shape: rand grows with log n; hybrid is flat in n"
            << " with log n-size residue components;\ndet flat in n but grows"
            << " with Δ — and ruling sets trade palette for β·rounds.\n";
  return 0;
}
