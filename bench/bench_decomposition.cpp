// Experiment E16 — network decomposition, the deterministic frontier of
// "Result 3": Theorem 3 makes the 2^{O(√log log n)} terms of randomized
// MIS/coloring hostage to Panconesi–Srinivasan's deterministic
// 2^{O(√log n)} network decomposition. This harness runs the classical
// randomized counterpart (Linial–Saks, O(log n) colors × O(log n) weak
// diameter in O(log² n) rounds) and the decomposition→MIS pipeline, next to
// the direct MIS algorithms for context.
#include <iostream>

#include "algo/mis_ghaffari.hpp"
#include "algo/network_decomposition.hpp"
#include "graph/regular.hpp"
#include "lcl/verify_mis.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 13));
  BenchReporter reporter(flags, "E16_decomposition");
  flags.check_unknown();

  std::cout << "E16: Linial–Saks network decomposition + the"
            << " decomposition→MIS pipeline\n\n";
  Table t({"Δ", "n", "colors", "weak diam", "decomp rds", "MIS-pipeline rds",
           "ghaffari rds", "log2 n"});
  for (int delta : {4, 8, 16}) {
    for (int e = 9; e <= max_exp; e += 2) {
      const NodeId n = static_cast<NodeId>(1) << e;
      Rng rng(mix_seed(0xE16, static_cast<std::uint64_t>(delta),
                       static_cast<std::uint64_t>(n)));
      const Graph g = make_random_regular(n, delta, rng);
      Accumulator colors, diam, decomp_rounds, pipeline_rounds, ghaffari;
      for (int s = 0; s < seeds; ++s) {
        RoundLedger ld;
        const auto d = linial_saks_decomposition(
            g, static_cast<std::uint64_t>(s) + 1, ld);
        CKP_CHECK(d.completed);
        CKP_CHECK(decomposition_valid(g, d, 0));
        colors.add(d.num_colors);
        diam.add(d.max_weak_diameter);
        decomp_rounds.add(ld.rounds());
        const auto mis = mis_via_decomposition(g, d, ld);
        CKP_CHECK(verify_mis(g, mis.in_set).ok);
        pipeline_rounds.add(ld.rounds());
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "mis_via_decomposition";
          rec.graph_family = "random_regular";
          rec.n = n;
          rec.delta = delta;
          rec.seed = static_cast<std::uint64_t>(s) + 1;
          rec.rounds = ld.rounds();
          rec.verified = true;
          rec.metric("decomp_colors", static_cast<double>(d.num_colors));
          rec.metric("weak_diameter",
                     static_cast<double>(d.max_weak_diameter));
          reporter.add(std::move(rec));
        }

        RoundLedger lg;
        const auto gh = mis_ghaffari(g, static_cast<std::uint64_t>(s) + 1, lg);
        CKP_CHECK(verify_mis(g, gh.in_set).ok);
        ghaffari.add(lg.rounds());
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "mis_ghaffari";
          rec.graph_family = "random_regular";
          rec.n = n;
          rec.delta = delta;
          rec.seed = static_cast<std::uint64_t>(s) + 1;
          rec.rounds = lg.rounds();
          rec.verified = true;
          reporter.add(std::move(rec));
        }
      }
      t.add_row({Table::cell(delta), Table::cell(static_cast<std::int64_t>(n)),
                 Table::cell(colors.mean(), 1), Table::cell(diam.mean(), 1),
                 Table::cell(decomp_rounds.mean(), 1),
                 Table::cell(pipeline_rounds.mean(), 1),
                 Table::cell(ghaffari.mean(), 1),
                 Table::cell(ilog2(static_cast<std::uint64_t>(n)))});
    }
  }
  reporter.print(t, std::cout);
  std::cout << "\nExpected shape: colors and weak diameter ~ O(log n); the"
            << " pipeline costs O(colors·diam) = O(log² n) rounds —\n"
            << "slower than the direct shattering algorithm, which is"
            << " precisely why improving decompositions matters (Result 3).\n";
  return 0;
}
