// Experiment E10a — the introduction's MIS complexity landscape:
// randomized (Luby O(log n); Ghaffari O(log Δ) + shattering) vs
// deterministic (O(Δ² + log* n) via Theorem 2 scheduling).
//
// The Δ-dependence separation is the visible shape: det rounds grow with Δ²
// while the randomized columns grow with log Δ / log n only. The Ghaffari
// residue statistics exhibit the shattering that Theorem 3 proves necessary.
#include <iostream>

#include "algo/mis_deterministic.hpp"
#include "algo/mis_ghaffari.hpp"
#include "algo/mis_luby.hpp"
#include "graph/regular.hpp"
#include "lcl/verify_mis.hpp"
#include "local/ids.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 14));
  BenchReporter reporter(flags, "E10a_mis");
  flags.check_unknown();

  std::cout << "E10a: MIS — randomized vs deterministic round complexity\n"
            << "random Δ-regular graphs; mean over " << seeds << " seeds\n\n";
  Table t({"Δ", "n", "luby", "ghaffari", "ghaf_local", "residue", "maxcomp",
           "det", "det schedule"});
  for (int delta : {4, 8, 16, 32}) {
    for (int e = 10; e <= max_exp; e += 2) {
      const NodeId n = static_cast<NodeId>(1) << e;
      Rng rng(mix_seed(0xEA, static_cast<std::uint64_t>(delta),
                       static_cast<std::uint64_t>(n)));
      const Graph g = make_random_regular(n, delta, rng);

      Accumulator luby, ghaf, ghaf_local, residue, maxcomp;
      for (int s = 0; s < seeds; ++s) {
        LocalInput in;
        in.graph = &g;
        in.seed = static_cast<std::uint64_t>(s) + 1;
        const auto l = mis_luby(in);
        CKP_CHECK(l.completed);
        CKP_CHECK(verify_mis(g, l.in_set).ok);
        luby.add(l.rounds);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "mis_luby";
          rec.graph_family = "random_regular";
          rec.n = n;
          rec.delta = delta;
          rec.seed = in.seed;
          rec.rounds = l.rounds;
          rec.verified = true;
          reporter.add(std::move(rec));
        }

        RoundLedger lg;
        const auto gh = mis_ghaffari(g, static_cast<std::uint64_t>(s) + 1, lg);
        CKP_CHECK(verify_mis(g, gh.in_set).ok);
        ghaf.add(lg.rounds());
        residue.add(gh.residue_nodes);
        maxcomp.add(gh.largest_residue_component);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "mis_ghaffari";
          rec.graph_family = "random_regular";
          rec.n = n;
          rec.delta = delta;
          rec.seed = static_cast<std::uint64_t>(s) + 1;
          rec.rounds = lg.rounds();
          rec.verified = true;
          rec.metric("residue_nodes", static_cast<double>(gh.residue_nodes));
          rec.metric("largest_residue_component",
                     static_cast<double>(gh.largest_residue_component));
          reporter.add(std::move(rec));
        }

        // The engine-native port of the same desire-level protocol on the
        // packed fast path (DESIGN.md §11); round counts differ from the
        // array implementation because the engine splits mark/resolve into
        // separate communication rounds.
        const auto gl = mis_ghaffari_local(in);
        CKP_CHECK(gl.completed);
        CKP_CHECK(verify_mis(g, gl.in_set).ok);
        ghaf_local.add(gl.rounds);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "mis_ghaffari_local";
          rec.graph_family = "random_regular";
          rec.n = n;
          rec.delta = delta;
          rec.seed = in.seed;
          rec.rounds = gl.rounds;
          rec.verified = true;
          rec.metric("residue_nodes", static_cast<double>(gl.residue_nodes));
          rec.metric("largest_residue_component",
                     static_cast<double>(gl.largest_residue_component));
          reporter.add(std::move(rec));
        }
      }
      RoundLedger ld;
      const auto ids =
          random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n)), rng);
      const auto det = mis_deterministic(g, ids, delta, ld);
      CKP_CHECK(verify_mis(g, det.in_set).ok);
      {
        RunRecord rec = reporter.make_record();
        rec.algorithm = "mis_deterministic";
        rec.graph_family = "random_regular";
        rec.n = n;
        rec.delta = delta;
        rec.rounds = ld.rounds();
        rec.verified = true;
        rec.metric("schedule_palette",
                   static_cast<double>(det.schedule_palette));
        reporter.add(std::move(rec));
      }
      t.add_row({Table::cell(delta), Table::cell(static_cast<std::int64_t>(n)),
                 Table::cell(luby.mean(), 1), Table::cell(ghaf.mean(), 1),
                 Table::cell(ghaf_local.mean(), 1),
                 Table::cell(residue.mean(), 0),
                 Table::cell(maxcomp.mean(), 1), Table::cell(ld.rounds()),
                 Table::cell(det.schedule_palette)});
    }
  }
  reporter.print(t, std::cout);
  std::cout << "\nExpected shape: det rounds scale with Δ·log Δ (blocked"
            << " schedule reduction) and are flat in n; luby scales with log n;\n"
            << "ghaffari's shattering leaves a residue with only small"
            << " components.\n";
  return 0;
}
