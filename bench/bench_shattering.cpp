// Experiment E4 — graph shattering in Theorems 10 and 11.
//
// Measures, over many seeds, the size of the residual ("bad" / S) vertex
#include <cmath>
// sets after the randomized phase and the largest connected component they
// induce, against the paper's bounds (Δ⁴·log n for Thm 10; O(log n) for
// Thm 11 at Δ >= 55). The Δ sweep deliberately dips below 55 to probe the
// paper's remark that the constant cannot be made "too small".
// --packed runs the engine-native ports (algo/delta_coloring_local.hpp)
// instead of the monolith references: same statistic definitions, packed
// 8-byte node words, and a default sweep ceiling of 2^19 instead of 2^17
// (the byte-lean path is what makes the larger trees feasible). Packed
// trials cache under their own store keys (different RNG streams).
#include <iostream>
#include <optional>

#include "algo/delta_coloring_local.hpp"
#include "core/delta_coloring_thm10.hpp"
#include "core/delta_coloring_thm11.hpp"
#include "core/distance_sets.hpp"
#include "graph/generators.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "obs/progress.hpp"
#include "obs/reporter.hpp"
#include "obs/trials.hpp"
#include "store/checkpoint.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 5));
  const bool packed = flags.get_bool("packed", false);
  const int max_exp =
      static_cast<int>(flags.get_int("max-exp", packed ? 19 : 17));
  BenchReporter reporter(flags, "E4_shattering");
  // --store_dir caches the generated trees and commits per-seed RunRecords
  // as trials finish; --resume skips seeds already committed (DESIGN.md §8).
  const std::string store_dir = flags.get_string("store_dir", "");
  const bool resume = flags.get_bool("resume", false);
  flags.check_unknown();
  std::optional<ArtifactStore> store;
  if (!store_dir.empty()) store.emplace(store_dir);
  const ArtifactStore* store_ptr = store ? &*store : nullptr;
  int seeds_cached_total = 0;

  std::cout << "E4/Table A: Theorem 11 Phase-2 shattering (set S)\n"
            << "mean/max over " << seeds << " seeds; bound: O(log n) for Δ>=55\n\n";
  // One unit per (Δ, n) instance across both shattering tables; per-seed
  // heartbeats inside an instance come from run_trials_checkpointed when a
  // store is configured.
  const std::uint64_t exps = static_cast<std::uint64_t>(
      max_exp >= 13 ? (max_exp - 13) / 2 + 1 : 0);
  ProgressMeter meter("E4_shattering.sweep", (4 + 3) * exps);
  {
    Table t({"Δ", "n", "|S| mean", "maxcomp mean", "maxcomp max", "log2 n"});
    for (int delta : {16, 32, 55, 96}) {
      for (int e = 13; e <= max_exp; e += 2) {
        const NodeId n = static_cast<NodeId>(1) << e;
        const std::string instance_key = "complete_tree.d" +
                                         std::to_string(delta) + ".n" +
                                         std::to_string(n);
        const Graph g =
            store_ptr != nullptr
                ? store_ptr->graph(
                      instance_key,
                      [&] { return make_complete_tree(n, delta); })
                : make_complete_tree(n, delta);
        int seeds_cached = 0;
        auto trial_records = run_trials_checkpointed(
            store_ptr, (packed ? "E4AP." : "E4A.") + instance_key, resume,
            seeds, reporter.threads(), [&](int s) -> std::vector<RunRecord> {
              const auto seed = static_cast<std::uint64_t>(s) + 1;
              RunRecord rec = reporter.make_record();
              rec.graph_family = "complete_tree";
              rec.n = n;
              rec.delta = delta;
              rec.seed = seed;
              rec.verified = true;
              if (packed) {
                LocalInput in;
                in.graph = &g;
                in.seed = seed;
                EngineOptions opts;
                opts.threads = reporter.threads();
                opts.schedule = EngineSchedule::kWorkStealing;
                const auto r = delta_coloring_thm11_local(in, 1 << 20, opts);
                CKP_CHECK(r.completed);
                CKP_CHECK(verify_coloring(g, r.colors, delta).ok);
                rec.algorithm = "thm11_local";
                rec.rounds = r.rounds;
                rec.metric("phase2_set_size",
                           static_cast<double>(r.phase2_set_size));
                rec.metric("phase2_largest_component",
                           static_cast<double>(r.phase2_largest_component));
                return {std::move(rec)};
              }
              RoundLedger ledger;
              const auto r = delta_coloring_thm11(g, delta, seed, ledger);
              CKP_CHECK(verify_coloring(g, r.colors, delta).ok);
              rec.algorithm = "thm11";
              rec.rounds = ledger.rounds();
              rec.trace = r.trace;
              rec.metric("phase2_set_size",
                         static_cast<double>(r.phase2_set_size));
              rec.metric("phase2_largest_component",
                         static_cast<double>(r.phase2_largest_component));
              return {std::move(rec)};
            },
            &seeds_cached);
        seeds_cached_total += seeds_cached;
        Accumulator set_size, comp, comp_max;
        for (RunRecord& rec : trial_records) {
          set_size.add(metric_or(rec, "phase2_set_size", 0.0));
          comp.add(metric_or(rec, "phase2_largest_component", 0.0));
          comp_max.add(metric_or(rec, "phase2_largest_component", 0.0));
          reporter.add(std::move(rec));
        }
        t.add_row({Table::cell(delta), Table::cell(static_cast<std::int64_t>(n)),
                   Table::cell(set_size.mean(), 1), Table::cell(comp.mean(), 1),
                   Table::cell(comp_max.max(), 0),
                   Table::cell(ilog2(static_cast<std::uint64_t>(n)))});
        meter.step();
      }
    }
    reporter.print(t, std::cout);
  }

  std::cout << "\nE4/Table B: Theorem 10 bad-vertex shattering\n"
            << "bound: Δ⁴·log n (loose); measured components are far smaller\n\n";
  {
    Table t({"Δ", "n", "bad mean", "maxcomp mean", "maxcomp max",
             "Δ⁴·log2 n"});
    for (int delta : {16, 32, 64}) {
      for (int e = 13; e <= max_exp; e += 2) {
        const NodeId n = static_cast<NodeId>(1) << e;
        const std::string instance_key = "complete_tree.d" +
                                         std::to_string(delta) + ".n" +
                                         std::to_string(n);
        const Graph g =
            store_ptr != nullptr
                ? store_ptr->graph(
                      instance_key,
                      [&] { return make_complete_tree(n, delta); })
                : make_complete_tree(n, delta);
        int seeds_cached = 0;
        auto trial_records = run_trials_checkpointed(
            store_ptr, (packed ? "E4BP." : "E4B.") + instance_key, resume,
            seeds, reporter.threads(), [&](int s) -> std::vector<RunRecord> {
              const auto seed = static_cast<std::uint64_t>(s) + 1;
              RunRecord rec = reporter.make_record();
              rec.graph_family = "complete_tree";
              rec.n = n;
              rec.delta = delta;
              rec.seed = seed;
              rec.verified = true;
              if (packed) {
                LocalInput in;
                in.graph = &g;
                in.seed = seed;
                EngineOptions opts;
                opts.threads = reporter.threads();
                opts.schedule = EngineSchedule::kWorkStealing;
                const auto r = delta_coloring_thm10_local(in, 1 << 20, opts);
                CKP_CHECK(r.completed);
                CKP_CHECK(verify_coloring(g, r.colors, delta).ok);
                rec.algorithm = "thm10_local";
                rec.rounds = r.rounds;
                rec.metric("bad_vertices",
                           static_cast<double>(r.bad_vertices));
                rec.metric("largest_bad_component",
                           static_cast<double>(r.largest_bad_component));
                return {std::move(rec)};
              }
              RoundLedger ledger;
              const auto r = delta_coloring_thm10(g, delta, seed, ledger);
              CKP_CHECK(verify_coloring(g, r.colors, delta).ok);
              rec.algorithm = "thm10";
              rec.rounds = ledger.rounds();
              rec.trace = r.trace;
              rec.metric("bad_vertices", static_cast<double>(r.bad_vertices));
              rec.metric("largest_bad_component",
                         static_cast<double>(r.largest_bad_component));
              return {std::move(rec)};
            },
            &seeds_cached);
        seeds_cached_total += seeds_cached;
        Accumulator bad, comp;
        for (RunRecord& rec : trial_records) {
          bad.add(metric_or(rec, "bad_vertices", 0.0));
          comp.add(metric_or(rec, "largest_bad_component", 0.0));
          reporter.add(std::move(rec));
        }
        const double bound = static_cast<double>(delta) * delta * delta *
                             delta *
                             static_cast<double>(ilog2(static_cast<std::uint64_t>(n)));
        t.add_row({Table::cell(delta), Table::cell(static_cast<std::int64_t>(n)),
                   Table::cell(bad.mean(), 1), Table::cell(comp.mean(), 1),
                   Table::cell(comp.max(), 0), Table::cell(bound, 0)});
        meter.step();
      }
    }
    reporter.print(t, std::cout);
  }
  meter.finish();
  std::cout << "\nE4/Table C: Lemma 3 — exhaustive distance-k set counts vs"
            << " the 4^t·n·Δ^{k(t-1)} bound\n\n";
  {
    Table t({"graph", "n", "Δ", "k", "t", "exact count", "log2(exact)",
             "log2(bound)"});
    Rng rng(0xE4C);
    struct Named { const char* name; Graph graph; };
    std::vector<Named> graphs;
    graphs.push_back({"cycle", make_cycle(64)});
    graphs.push_back({"tree(Δ=3)", make_complete_tree(80, 3)});
    graphs.push_back({"tree(Δ=5)", make_complete_tree(120, 5)});
    for (const auto& [name, g] : graphs) {
      for (int k : {2, 3, 5}) {
        for (int tt : {2, 3}) {
          const std::uint64_t exact = count_distance_k_sets(g, k, tt);
          const double bound = lemma3_log2_bound(
              static_cast<std::uint64_t>(g.num_nodes()),
              std::max(1, g.max_degree()), k, tt);
          t.add_row({name, Table::cell(static_cast<std::int64_t>(g.num_nodes())),
                     Table::cell(g.max_degree()), Table::cell(k),
                     Table::cell(tt), Table::cell(exact),
                     Table::cell(exact == 0
                                     ? 0.0
                                     : std::log2(static_cast<double>(exact)),
                                 1),
                     Table::cell(bound, 1)});
        }
      }
    }
    reporter.print(t, std::cout);
  }

  if (store_ptr != nullptr) {
    std::cout << "\n[store] " << (resume ? "resume: " : "")
              << seeds_cached_total << " seeds served from "
              << store_ptr->dir() << '\n';
  }
  std::cout << "\nExpected shape: max component sizes grow ~ log n and stay"
            << " far below the theorem bounds; smaller Δ yields larger\n"
            << "components (the paper's 'Δ not too small' remark).\n";
  return 0;
}
