// Experiment E15 — ablations of the implementation's design choices
// (DESIGN.md section 4).
//
// Table A: palette reduction — naive class-elimination (O(k) rounds) vs
// blocked halving (O(Δ·log(k/Δ))). The fast variant is what keeps the
// Theorem 10/11 constant terms near the paper's O(Δ²) instead of O(Δ⁴).
//
// Table B: Theorem 10 constant schedule — the paper's proof constants
// (α=200, growth e^{-200}-slow, cap Δ^0.1) versus the practical defaults.
// Correctness is identical (everything uncolored lands in Phase 2); the
// constants only move work between the phases.
//
// Table C: Ghaffari MIS phase-1 budget — iterations vs residue left for the
// deterministic finish: the shattering knob.
#include <cmath>
#include <iostream>

#include "algo/color_reduction.hpp"
#include "algo/linial.hpp"
#include "algo/mis_ghaffari.hpp"
#include "core/delta_coloring_thm10.hpp"
#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1 << 14));
  // Seed for the randomized Table B (Thm 10) trials; the default preserves
  // the historical fixed-seed output so existing BENCH baselines compare.
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  BenchReporter reporter(flags, "E15_ablation");
  flags.check_unknown();

  std::cout << "E15/Table A: palette reduction to Δ+1 — naive vs blocked\n\n";
  {
    Table t({"Δ", "Linial palette", "naive rounds", "fast rounds", "speedup"});
    for (int delta : {8, 16, 32, 64, 128}) {
      const Graph g = make_complete_tree(n, delta);
      Rng rng(mix_seed(0xAB1, static_cast<std::uint64_t>(delta)));
      const auto ids =
          random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n)), rng);
      RoundLedger base;
      auto coloring = linial_coloring(g, ids, delta, base);
      auto naive = coloring.colors;
      auto fast = coloring.colors;
      RoundLedger ln, lf;
      reduce_palette(g, naive, coloring.palette, delta + 1, ln);
      reduce_palette_fast(g, fast, coloring.palette, delta + 1, lf);
      CKP_CHECK(verify_coloring(g, naive, delta + 1).ok);
      CKP_CHECK(verify_coloring(g, fast, delta + 1).ok);
      for (const bool blocked : {false, true}) {
        RunRecord rec = reporter.make_record();
        rec.algorithm = blocked ? "reduce_palette_fast" : "reduce_palette";
        rec.graph_family = "complete_tree";
        rec.n = n;
        rec.delta = delta;
        rec.rounds = blocked ? lf.rounds() : ln.rounds();
        rec.verified = true;
        rec.metric("linial_palette", static_cast<double>(coloring.palette));
        reporter.add(std::move(rec));
      }
      t.add_row({Table::cell(delta), Table::cell(coloring.palette),
                 Table::cell(ln.rounds()), Table::cell(lf.rounds()),
                 Table::cell(static_cast<double>(ln.rounds()) / lf.rounds(),
                             1)});
    }
    reporter.print(t, std::cout);
  }

  std::cout << "\nE15/Table B: Theorem 10 constants — paper vs practical\n\n";
  {
    Thm10Params paper;
    paper.alpha = 200.0;
    paper.growth_divisor = 1e300;  // the e^{200} divisor: c never grows
    paper.cap_exponent = 0.1;
    paper.max_iterations = 8;
    const Thm10Params practical;  // defaults
    Table t({"Δ", "constants", "phase-1 iters", "bad vertices",
             "largest bad comp", "rounds"});
    for (int delta : {32, 64}) {
      const Graph g = make_complete_tree(n, delta);
      for (const bool use_paper : {false, true}) {
        RoundLedger ledger;
        const auto r = delta_coloring_thm10(g, delta, seed, ledger,
                                            use_paper ? paper : practical);
        CKP_CHECK(verify_coloring(g, r.colors, delta).ok);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = use_paper ? "thm10_paper_constants"
                                    : "thm10_practical_constants";
          rec.graph_family = "complete_tree";
          rec.n = n;
          rec.delta = delta;
          rec.seed = seed;
          rec.rounds = ledger.rounds();
          rec.verified = true;
          rec.trace = r.trace;
          rec.metric("phase1_iterations",
                     static_cast<double>(r.phase1_iterations));
          rec.metric("bad_vertices", static_cast<double>(r.bad_vertices));
          reporter.add(std::move(rec));
        }
        t.add_row({Table::cell(delta), use_paper ? "paper" : "practical",
                   Table::cell(r.phase1_iterations),
                   Table::cell(static_cast<std::int64_t>(r.bad_vertices)),
                   Table::cell(static_cast<std::int64_t>(r.largest_bad_component)),
                   Table::cell(ledger.rounds())});
      }
    }
    reporter.print(t, std::cout);
  }

  std::cout << "\nE15/Table C: Ghaffari phase-1 budget vs residue\n\n";
  {
    Rng rng(0xAB3);
    const Graph g = make_random_regular(n, 16, rng);
    Table t({"iterations", "residue", "largest comp", "total rounds"});
    for (int iters : {2, 4, 8, 16, 32}) {
      GhaffariMisParams params;
      params.phase1_iterations = iters;
      RoundLedger ledger;
      const auto r = mis_ghaffari(g, 5, ledger, params);
      {
        RunRecord rec = reporter.make_record();
        rec.algorithm = "mis_ghaffari";
        rec.graph_family = "random_regular";
        rec.n = n;
        rec.delta = 16;
        rec.seed = 5;
        rec.rounds = ledger.rounds();
        rec.verified = true;
        rec.metric("phase1_iterations", static_cast<double>(iters));
        rec.metric("residue_nodes", static_cast<double>(r.residue_nodes));
        rec.metric("largest_residue_component",
                   static_cast<double>(r.largest_residue_component));
        reporter.add(std::move(rec));
      }
      t.add_row({Table::cell(iters),
                 Table::cell(static_cast<std::int64_t>(r.residue_nodes)),
                 Table::cell(static_cast<std::int64_t>(r.largest_residue_component)),
                 Table::cell(ledger.rounds())});
    }
    reporter.print(t, std::cout);
  }
  std::cout << "\nReading: blocked reduction wins by Θ(Δ/log Δ); the paper's"
            << " proof constants push all work into Phase 2\n(still correct,"
            << " just unbalanced); more randomized iterations shrink the"
            << " residue at 2 rounds apiece.\n";
  return 0;
}
