// Experiment E5 — the speedup transformation (Theorems 6 and 8, "Result 2").
//
// Table A (valid premise): deterministic MIS has runtime f(Δ) + O(log* ℓ);
// transformed, its inner run uses short IDs with a pretend-n independent of
// the true n, so its rounds stay FLAT as n grows — "there are no natural
// deterministic complexities between ω(log* n) and o(log n)".
//
// Table B (contrapositive): Δ-coloring trees via Theorem 9 takes Θ(log_Δ n)
// — an invalid premise. Feeding it to the transform with the budget the
// theorem would allot produces budget violations at every sufficiently
// large n: the mechanical form of the paper's second proof that Δ-coloring
// trees needs Ω(log_Δ n) rounds deterministically.
#include <iostream>

#include "algo/be_tree_coloring.hpp"
#include "algo/mis_deterministic.hpp"
#include "core/speedup.hpp"
#include "graph/bfs_kernel.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "lcl/verify_mis.hpp"
#include "local/ids.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 13));
  const int horizon = static_cast<int>(flags.get_int("horizon", 6));
  BenchReporter reporter(flags, "E5_speedup");
  flags.check_unknown();

  const auto inner_mis_once =
      [](const Graph& g, const std::vector<std::uint64_t>& ids, std::uint64_t,
         int delta, RoundLedger& ledger) {
        const auto r = mis_deterministic(g, ids, delta, ledger);
        return std::vector<int>(r.in_set.begin(), r.in_set.end());
      };

  std::cout << "E5/Table A: transform applied to det-MIS (valid premise)\n"
            << "horizon h=" << horizon << ", Δ=3 trees\n\n";
  {
    Table t({"n", "ℓ' bits", "pretend n", "shorten rds", "inner rds",
             "total rds"});
    for (int e = 8; e <= max_exp; ++e) {
      const NodeId n = static_cast<NodeId>(1) << e;
      const Graph g = make_complete_tree(n, 3);
      Rng rng(mix_seed(0xE5, static_cast<std::uint64_t>(n)));
      const auto ids =
          random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n)), rng);
      RoundLedger ledger;
      const BfsKernelCounters before = bfs_kernel_counters();
      const auto r = speedup_transform(g, ids, 3, horizon, 0, inner_mis_once,
                                       ledger);
      std::vector<char> in_set(r.labels.begin(), r.labels.end());
      CKP_CHECK(verify_mis(g, in_set).ok);
      {
        RunRecord rec = reporter.make_record();
        rec.algorithm = "speedup_mis";
        rec.graph_family = "complete_tree";
        rec.n = n;
        rec.delta = 3;
        rec.rounds = r.total_rounds;
        rec.verified = true;
        rec.metric("inner_rounds", static_cast<double>(r.inner_rounds));
        rec.metric("short_id_bits", static_cast<double>(r.short_id_bits));
        add_kernel_metrics(rec, before);
        reporter.add(std::move(rec));
      }
      t.add_row({Table::cell(static_cast<std::int64_t>(n)),
                 Table::cell(r.short_id_bits),
                 Table::cell(r.declared_n), Table::cell(r.shortening_rounds),
                 Table::cell(r.inner_rounds), Table::cell(r.total_rounds)});
    }
    reporter.print(t, std::cout);
  }

  std::cout << "\nE5/Table B: transform applied to Δ-coloring via Thm 9\n"
            << "(invalid premise: runtime Θ(log_Δ n)); budget = f(Δ)+12\n\n";
  {
    const auto inner_coloring =
        [](const Graph& g, const std::vector<std::uint64_t>& ids, std::uint64_t,
           int delta, RoundLedger& ledger) {
          return be_tree_coloring(g, delta, ids, ledger).colors;
        };
    Table t({"n", "inner rds", "budget", "within budget", "verdict"});
    for (int e = 8; e <= max_exp; ++e) {
      const NodeId n = static_cast<NodeId>(1) << e;
      const Graph g = make_complete_tree(n, 3);
      Rng rng(mix_seed(0xE5B, static_cast<std::uint64_t>(n)));
      const auto ids =
          random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n)), rng);
      RoundLedger ledger;
      const int budget = 40;  // generous "f(Δ) + O(1)" class for Δ=3
      const BfsKernelCounters before = bfs_kernel_counters();
      const auto r = speedup_transform(g, ids, 3, horizon, budget,
                                       inner_coloring, ledger);
      CKP_CHECK(verify_coloring(g, r.labels, 3).ok);
      {
        RunRecord rec = reporter.make_record();
        rec.algorithm = "speedup_coloring";
        rec.graph_family = "complete_tree";
        rec.n = n;
        rec.delta = 3;
        rec.rounds = r.total_rounds;
        rec.verified = true;
        rec.metric("inner_rounds", static_cast<double>(r.inner_rounds));
        rec.metric("within_budget", r.within_budget ? 1.0 : 0.0);
        add_kernel_metrics(rec, before);
        reporter.add(std::move(rec));
      }
      t.add_row({Table::cell(static_cast<std::int64_t>(n)),
                 Table::cell(r.inner_rounds), Table::cell(r.budget),
                 r.within_budget ? "yes" : "NO",
                 r.within_budget ? "premise holds"
                                 : "premise violated => Ω(log_Δ n)"});
    }
    reporter.print(t, std::cout);
  }
  std::cout << "\nE5/Table C: Theorem 8 horizons — the parameterized form"
            << " behind the Section V\nremark on KMW: an O(log^{1-1/(k+1)} n)"
            << " algorithm becomes O(log^k Δ · log* n)\n\n";
  {
    Table t({"k", "Δ", "horizon 2τ+2r", "inner rds (MIS)", "ℓ' bits"});
    for (int k = 1; k <= 3; ++k) {
      for (int delta : {3, 4}) {
        const int h = thm8_horizon(/*eps=*/0.75, k, delta, /*r=*/1);
        const NodeId n = 1 << 11;
        const Graph g = make_complete_tree(n, delta);
        Rng rng(mix_seed(0xE5C, static_cast<std::uint64_t>(k),
                         static_cast<std::uint64_t>(delta)));
        const auto ids =
            random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n)), rng);
        RoundLedger ledger;
        const auto r = speedup_transform(g, ids, delta, h, 0, inner_mis_once,
                                         ledger);
        std::vector<char> in_set(r.labels.begin(), r.labels.end());
        CKP_CHECK(verify_mis(g, in_set).ok);
        t.add_row({Table::cell(k), Table::cell(delta), Table::cell(h),
                   Table::cell(r.inner_rounds), Table::cell(r.short_id_bits)});
      }
    }
    reporter.print(t, std::cout);
  }

  std::cout << "\nExpected shape: Table A inner rounds flat in n;"
            << " Table B violates the budget from moderate n on;\n"
            << "Table C horizons grow with log^k Δ while staying independent"
            << " of n.\n";
  return 0;
}
