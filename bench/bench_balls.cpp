// Microbench for the BFS neighborhood-query kernel (graph/bfs_kernel.hpp):
// kernel-backed primitives vs their seed `*_reference` implementations on
// the same instances, with results CKP_CHECKed identical before timing is
// reported. This is the regenerable record behind the kernel's speedup
// claim — each row lands in --json_out as a RunRecord with ref_seconds /
// opt_seconds / speedup plus the kernel counter deltas.
//
// Workloads mirror the paper's access patterns: radius-r ball queries (the
// shattering / sinkless analyses), power-graph construction (Theorems 6/8),
// girth measurement (Section IV harness), and a monotone-radius ViewEngine
// sweep (the speedup transformation's charged views).
#include <iostream>
#include <string>
#include <vector>

#include "graph/bfs_kernel.hpp"
#include "graph/girth.hpp"
#include "graph/power.hpp"
#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "local/context.hpp"
#include "local/view_engine.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace ckp;

bool same_graph(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    if (a.endpoints(e) != b.endpoints(e)) return false;
  }
  return true;
}

bool same_view(const BallView& a, const BallView& b) {
  return same_graph(a.sub.graph, b.sub.graph) && a.center == b.center &&
         a.sub.to_original == b.sub.to_original &&
         a.sub.from_original == b.sub.from_original &&
         a.distance == b.distance && a.radius == b.radius;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 12));
  const int reps = static_cast<int>(flags.get_int("reps", 3));
  BenchReporter reporter(flags, "E9_balls");
  flags.check_unknown();
  CKP_CHECK(reps >= 1);

  std::cout << "E9: BFS kernel vs reference — identical results, measured"
            << " speedup\n\n";
  Table t({"workload", "n", "Δ", "ref s", "kernel s", "speedup"});

  const NodeId n = static_cast<NodeId>(1) << max_exp;
  const int delta = 4;
  Rng rng(mix_seed(0xE9, static_cast<std::uint64_t>(n)));
  const Graph reg = make_random_regular(n, delta, rng);
  const Graph tree = make_complete_tree(n, 3);

  // Best-of-`reps` wall time for one workload; `run` must be idempotent.
  const auto best_seconds = [&](const auto& run) {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      Timer timer;
      run();
      const double s = timer.seconds();
      if (r == 0 || s < best) best = s;
    }
    return best;
  };

  const auto report = [&](const std::string& workload, const Graph& g,
                          double ref_s, double opt_s,
                          const BfsKernelCounters& before) {
    const double speedup = opt_s > 0.0 ? ref_s / opt_s : 0.0;
    RunRecord rec = reporter.make_record();
    rec.algorithm = workload;
    rec.graph_family = (&g == &tree) ? "complete_tree" : "random_regular";
    rec.n = g.num_nodes();
    rec.delta = g.max_degree();
    rec.verified = true;
    rec.wall_seconds = opt_s;
    rec.metric("ref_seconds", ref_s);
    rec.metric("opt_seconds", opt_s);
    rec.metric("speedup", speedup);
    add_kernel_metrics(rec, before);
    reporter.add(std::move(rec));
    t.add_row({workload, Table::cell(static_cast<std::int64_t>(g.num_nodes())),
               Table::cell(g.max_degree()), Table::cell(ref_s, 4),
               Table::cell(opt_s, 4), Table::cell(speedup, 1)});
  };

  {
    // Radius-2 balls from every node: the shattering/sinkless query shape.
    const int r = 2;
    for (NodeId v = 0; v < reg.num_nodes(); v += 997) {
      CKP_CHECK(ball(reg, v, r) == ball_reference(reg, v, r));
      CKP_CHECK(bfs_distances(reg, v, r) == bfs_distances_reference(reg, v, r));
    }
    const BfsKernelCounters before = bfs_kernel_counters();
    const double opt_s = best_seconds([&] {
      for (NodeId v = 0; v < reg.num_nodes(); ++v) ball(reg, v, r);
    });
    const double ref_s = best_seconds([&] {
      for (NodeId v = 0; v < reg.num_nodes(); ++v) ball_reference(reg, v, r);
    });
    report("ball_r2_all_nodes", reg, ref_s, opt_s, before);
  }

  {
    const int k = 2;
    const Graph opt = power_graph(reg, k);
    CKP_CHECK(same_graph(opt, power_graph_reference(reg, k)));
    const BfsKernelCounters before = bfs_kernel_counters();
    const double opt_s = best_seconds([&] { power_graph(reg, k); });
    const double ref_s = best_seconds([&] { power_graph_reference(reg, k); });
    report("power_graph_k2", reg, ref_s, opt_s, before);
  }

  {
    CKP_CHECK(girth(reg) == girth_reference(reg));
    const BfsKernelCounters before = bfs_kernel_counters();
    const double opt_s = best_seconds([&] { girth(reg); });
    const double ref_s = best_seconds([&] { girth_reference(reg); });
    report("girth", reg, ref_s, opt_s, before);
  }

  {
    // Monotone-radius view sweep on a tree — the speedup transformation's
    // access pattern (every node, radii 1..4 ascending).
    const int max_r = 4;
    LocalInput in;
    in.graph = &tree;
    {
      ViewEngine ve(in);
      for (int r = 1; r <= max_r; ++r) {
        for (NodeId v = 0; v < tree.num_nodes(); v += 499) {
          CKP_CHECK(same_view(ve.view(v, r), ball_view_reference(tree, v, r)));
        }
      }
    }
    const BfsKernelCounters before = bfs_kernel_counters();
    const double opt_s = best_seconds([&] {
      ViewEngine ve(in);
      for (int r = 1; r <= max_r; ++r) {
        for (NodeId v = 0; v < tree.num_nodes(); ++v) ve.view(v, r);
      }
    });
    const double ref_s = best_seconds([&] {
      for (int r = 1; r <= max_r; ++r) {
        for (NodeId v = 0; v < tree.num_nodes(); ++v) {
          ball_view_reference(tree, v, r);
        }
      }
    });
    report("view_sweep_r1..4", tree, ref_s, opt_s, before);
  }

  reporter.print(t, std::cout);
  std::cout << "\nExpected shape: every row identical to its reference"
            << " (checked above); speedups grow with n since reference work"
            << " is Θ(n) per query vs O(|ball|·Δ).\n";
  return 0;
}
