// Experiment E7 — Theorem 4 and Corollary 2: the randomized lower bound for
// Δ-coloring / Δ-sinkless coloring.
//
// Table A: the measured 0-round failure floor (uniform coloring on sampled
// edge-colored Δ-regular bipartite graphs) against the exact 1/Δ².
// Table B: the certified round lower bound from iterating the Lemma 1+2
// amplification maps, against the paper's closed form
// t = ε·log_{3(Δ+1)} ln(1/p), at the 1/poly(n) regimes the paper uses.
#include <cmath>
#include <iostream>
#include <memory>
#include <string>

#include "core/lower_bounds.hpp"
#include "graph/bfs_kernel.hpp"
#include "graph/girth.hpp"
#include "obs/progress.hpp"
#include "obs/reporter.hpp"
#include "obs/trials.hpp"
#include "store/artifact_store.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int trials = static_cast<int>(flags.get_int("trials", 2000));
  const std::string store_dir = flags.get_string("store_dir", "");
  BenchReporter reporter(flags, "E7_lower_bounds");
  flags.check_unknown();
  // Instance cache (see bench_sinkless): generator Rng lives inside the
  // make-closure, so hits and misses leave the trial streams identical.
  // ArtifactStore::commit is safe from concurrent pool workers.
  std::unique_ptr<ArtifactStore> store;
  if (!store_dir.empty()) store = std::make_unique<ArtifactStore>(store_dir);
  const BfsKernelCounters kernel_before = bfs_kernel_counters();

  std::cout << "E7/Table A: 0-round failure floor (measured vs 1/Δ²)\n\n";
  {
    Table t({"Δ", "side", "girth(sampled)", "measured", "1/Δ²"});
    const std::vector<int> deltas{3, 4, 6, 8};
    // Table A dominates E7's wall time (--trials failure samples per Δ);
    // heartbeat per finished Δ. step() is thread-safe, so calling it from
    // the fanned-out trial bodies is fine.
    ProgressMeter meter("E7_lower_bounds.tableA", deltas.size());
    // Each Δ samples its instance from its own derived stream (rather than
    // one shared sequential Rng), which makes the trials independent and
    // lets them fan out across the pool.
    auto trial_records = run_trials(
        static_cast<int>(deltas.size()), reporter.threads(),
        [&](int i) -> std::vector<RunRecord> {
          const int delta = deltas[static_cast<std::size_t>(i)];
          const NodeId side = 512;
          const std::uint64_t gen_seed =
              mix_seed(0xE7, static_cast<std::uint64_t>(delta));
          const auto make = [&] {
            Rng gen(gen_seed);
            return make_random_bipartite_regular(side, delta, gen);
          };
          const EdgeColoredGraph inst =
              store ? store->edge_colored_graph(
                          "bipartite_regular.d" + std::to_string(delta) +
                              ".side" + std::to_string(side) + ".s" +
                              std::to_string(gen_seed),
                          make)
                    : make();
          Rng rng(mix_seed(0xE7F, static_cast<std::uint64_t>(delta)));
          const int girth_bound =
              girth_upper_bound_sampled(inst.graph, 64, rng);
          const double measured =
              measured_zero_round_failure(inst, trials, 7);
          RunRecord rec = reporter.make_record();
          rec.algorithm = "zero_round_failure";
          rec.graph_family = "bipartite_regular";
          rec.n = inst.graph.num_nodes();
          rec.delta = delta;
          rec.verified = true;
          rec.metric("measured_failure", measured);
          rec.metric("floor", 1.0 / (static_cast<double>(delta) * delta));
          rec.metric("girth_upper_bound", static_cast<double>(girth_bound));
          meter.step();
          return {std::move(rec)};
        });
    meter.finish();
    for (RunRecord& rec : trial_records) {
      t.add_row({Table::cell(rec.delta), Table::cell(std::int64_t{512}),
                 Table::cell(static_cast<int>(
                     metric_or(rec, "girth_upper_bound", 0.0))),
                 Table::cell(metric_or(rec, "measured_failure", 0.0), 5),
                 Table::cell(metric_or(rec, "floor", 0.0), 5)});
      reporter.add(std::move(rec));
    }
    reporter.print(t, std::cout);
  }

  std::cout << "\nE7/Table B: certified round lower bound t(Δ, p) from the\n"
            << "Lemma 1+2 amplification recurrence vs the closed form\n"
            << "t = log_{3(Δ+1)} ln(1/p) — squaring ln(1/p) doubles t\n\n";
  {
    Table t({"Δ", "ln(1/p)", "certified t", "closed form"});
    for (int delta : {3, 5, 10, 20}) {
      for (int exp : {2, 4, 8, 16, 32, 64}) {
        const double ln_inv_p = std::pow(10.0, exp);
        const int certified = certified_lower_bound(-ln_inv_p, delta);
        const double closed = thm4_closed_form(ln_inv_p, delta);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "certified_lower_bound";
          rec.delta = delta;
          rec.rounds = certified;
          rec.verified = true;
          rec.metric("log10_ln_inv_p", static_cast<double>(exp));
          rec.metric("closed_form", closed);
          reporter.add(std::move(rec));
        }
        t.add_row({Table::cell(delta), "1e" + std::to_string(exp),
                   Table::cell(certified), Table::cell(closed, 2)});
      }
    }
    reporter.print(t, std::cout);
  }

  std::cout << "\nE7/Table C: the regime of Theorem 5's reduction — IDs drawn"
            << " locally fail\nwith p < n²/2^n, i.e. ln(1/p) ≈ n, turning the"
            << " Ω(log_Δ log(1/p)) bound into Ω(log_Δ n)\n\n";
  {
    Table t({"Δ", "n", "certified t", "log_Δ n"});
    for (int delta : {3, 5, 10}) {
      for (int exp : {3, 6, 12, 24}) {
        const double n = std::pow(10.0, exp);
        const int certified = certified_lower_bound(-n, delta);
        t.add_row({Table::cell(delta), "1e" + std::to_string(exp),
                   Table::cell(certified),
                   Table::cell(std::log(n) / std::log(static_cast<double>(delta)),
                               1)});
      }
    }
    reporter.print(t, std::cout);
  }
  {
    // One summary record of kernel-counter totals. Table A's trials fan out
    // over the pool, so per-record deltas would interleave; the totals are
    // thread-invariant because each trial's work is self-contained.
    RunRecord rec = reporter.make_record();
    rec.algorithm = "bfs_kernel_totals";
    add_kernel_metrics(rec, kernel_before);
    reporter.add(std::move(rec));
  }

  std::cout << "\nExpected shape: measured floor == 1/Δ²; certified t doubles"
            << " when ln(1/p) squares\n(Theorem 4), and in the 2^{-n} regime"
            << " grows like log_Δ n (Theorem 5's route).\n";
  return 0;
}
