// Experiment E9 — mechanical round elimination (the engine behind the
// Brandt et al. bounds that Theorem 4 extends).
//
// For Δ = 3..5 the harness eliminates sinkless orientation twice and checks
// isomorphism with the original problem — the fixed-point certificate — and
// shows the collapsing control (a trivially solvable problem stays 0-round
// solvable). It prints the intermediate problem sizes.
#include <iostream>

#include "core/roundelim.hpp"
#include "obs/reporter.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  BenchReporter reporter(flags, "E9_roundelim");
  flags.check_unknown();

  std::cout << "E9: round-elimination fixed point for sinkless orientation\n\n";
  Table t({"Δ", "form", "|Σ|", "|A|", "|P|", "RR≅canonical", "0-round"});
  for (int delta : {3, 4, 5, 6}) {
    const auto canonical = sinkless_orientation_canonical(delta);
    for (const bool natural_form : {false, true}) {
      const auto p = natural_form ? sinkless_orientation_problem(delta)
                                  : canonical;
      const auto rr = round_eliminate(round_eliminate(p));
      {
        RunRecord rec = reporter.make_record();
        rec.algorithm = natural_form ? "roundelim_natural" : "roundelim_canonical";
        rec.delta = delta;
        rec.verified = problems_isomorphic(rr, canonical);
        rec.metric("labels", static_cast<double>(p.num_labels()));
        rec.metric("active", static_cast<double>(p.active.size()));
        rec.metric("passive", static_cast<double>(p.passive.size()));
        rec.metric("zero_round_solvable", zero_round_solvable(p) ? 1.0 : 0.0);
        reporter.add(std::move(rec));
      }
      t.add_row({Table::cell(delta), natural_form ? "O/I" : "M/U",
                 Table::cell(p.num_labels()),
                 Table::cell(static_cast<std::uint64_t>(p.active.size())),
                 Table::cell(static_cast<std::uint64_t>(p.passive.size())),
                 problems_isomorphic(rr, canonical) ? "yes" : "NO",
                 zero_round_solvable(p) ? "yes" : "no"});
    }
  }
  reporter.print(t, std::cout);

  std::cout << "\nControl: trivially solvable problem stays 0-round solvable"
            << " through elimination\n\n";
  Table c({"Δ", "0-round before", "0-round after R"});
  for (int delta : {3, 4}) {
    const auto p = free_problem(delta, 2, 2);
    const auto r = round_eliminate(p);
    c.add_row({Table::cell(delta), zero_round_solvable(p) ? "yes" : "no",
               zero_round_solvable(r) ? "yes" : "no"});
  }
  reporter.print(c, std::cout);
  std::cout << "\nExpected shape: RR≅orig = yes and 0-round = no for every Δ"
            << " — sinkless orientation is a round-elimination fixed point,\n"
            << "certifying that no fixed-round algorithm exists (the paper's"
            << " lower-bound engine).\n";
  return 0;
}
