// Experiment E9 — mechanical round elimination (the engine behind the
// Brandt et al. bounds that Theorem 4 extends).
//
// For Δ = 3..8 the harness eliminates sinkless orientation twice and checks
// isomorphism with the original problem — the fixed-point certificate — and
// shows the collapsing control (a trivially solvable problem stays 0-round
// solvable). Every row is produced by the packed kernel and, up to
// --ref-max-delta, cross-checked configuration-for-configuration against
// the seed reference implementation; both per-double-elimination timings
// land in the RunRecords (roundelim.opt_seconds / roundelim.ref_seconds /
// roundelim.speedup) together with per-step wall times and intermediate
// problem sizes, so the kernel speedup is tracked across PRs.
//
// With --store_dir=DIR every eliminated step is committed to the artifact
// store as it completes (key: roundelim.d<Δ>.<form>.<input digest>.step<k>),
// and --resume loads committed steps instead of recomputing them — a run
// killed mid-sequence continues from the last committed step with
// byte-identical step artifacts (DESIGN.md §8). Cached rows skip the timing
// loops and the reference cross-check (nothing to measure) and carry
// roundelim.cached = 1.
#include <cstdint>
#include <iostream>
#include <optional>

#include "core/roundelim.hpp"
#include "obs/progress.hpp"
#include "obs/reporter.hpp"
#include "store/checkpoint.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

// Seconds per call, measured over adaptively many repetitions so that even
// microsecond-scale eliminations get a stable reading.
template <typename Fn>
double seconds_per_call(Fn&& fn, double min_seconds) {
  ckp::Timer first;
  fn();
  double elapsed = first.seconds();
  std::uint64_t calls = 1;
  std::uint64_t batch = 1;
  while (elapsed < min_seconds && calls < (1ULL << 20)) {
    batch = std::min<std::uint64_t>(batch * 2, 1ULL << 14);
    ckp::Timer timer;
    for (std::uint64_t i = 0; i < batch; ++i) fn();
    elapsed += timer.seconds();
    calls += batch;
  }
  return elapsed / static_cast<double>(calls);
}

std::string micros(double seconds) {
  return ckp::Table::cell(seconds * 1e6, 2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  BenchReporter reporter(flags, "E9_roundelim");
  const int max_delta = static_cast<int>(flags.get_int("max-delta", 8));
  const int ref_max_delta =
      static_cast<int>(flags.get_int("ref-max-delta", 6));
  const double min_time_s = flags.get_double("min-time-ms", 20.0) * 1e-3;
  const std::string store_dir = flags.get_string("store_dir", "");
  const bool resume = flags.get_bool("resume", false);
  flags.check_unknown();

  std::optional<ArtifactStore> store;
  if (!store_dir.empty()) store.emplace(store_dir);
  const ArtifactStore* store_ptr = store ? &*store : nullptr;
  int steps_cached_total = 0;

  std::cout << "E9: round-elimination fixed point for sinkless orientation\n\n";
  Table t({"Δ", "form", "|Σ|", "|A|", "|P|", "RR≅canonical", "0-round",
           "opt µs", "ref µs", "speedup"});
  // Elimination cost grows sharply with Δ, so the large-Δ tail of this loop
  // is where --progress_every heartbeats earn their keep.
  ProgressMeter meter("E9_roundelim.sweep",
                      static_cast<std::uint64_t>(
                          max_delta >= 3 ? (max_delta - 2) * 2 : 0));
  for (int delta = 3; delta <= max_delta; ++delta) {
    const auto canonical = sinkless_orientation_canonical(delta);
    for (const bool natural_form : {false, true}) {
      const auto p = natural_form ? sinkless_orientation_problem(delta)
                                  : canonical;
      // One instrumented double elimination, checkpointed per step: a
      // resumed run loads committed steps instead of recomputing.
      ElimSequence seq(store_ptr,
                       "roundelim.d" + std::to_string(delta) +
                           (natural_form ? ".natural." : ".canonical.") +
                           problem_digest(p),
                       resume);
      Timer step1_timer;
      const auto s1 = seq.next([&] { return round_eliminate(p); });
      const auto& r1 = s1.problem;
      const double step1_seconds = step1_timer.seconds();
      Timer step2_timer;
      const auto s2 = seq.next([&] { return round_eliminate(r1); });
      const auto& rr = s2.problem;
      const double step2_seconds = step2_timer.seconds();
      const bool cached = s1.cached && s2.cached;
      steps_cached_total += seq.steps_cached();
      const bool fixed_point = problems_isomorphic(rr, canonical);

      // Timing loops and the reference cross-check rerun the eliminations,
      // so a resumed (cached) row skips them — that is the point of resume.
      const double opt_seconds =
          cached ? 0.0
                 : seconds_per_call(
                       [&] { round_eliminate(round_eliminate(p)); },
                       min_time_s);
      const bool have_ref = !cached && delta <= ref_max_delta;
      double ref_seconds = 0.0;
      bool matches_reference = true;
      if (have_ref) {
        matches_reference = problems_identical(
            round_eliminate_reference(round_eliminate_reference(p)), rr);
        ref_seconds = seconds_per_call(
            [&] { round_eliminate_reference(round_eliminate_reference(p)); },
            min_time_s);
      }

      {
        RunRecord rec = reporter.make_record();
        rec.algorithm =
            natural_form ? "roundelim_natural" : "roundelim_canonical";
        rec.delta = delta;
        rec.verified = fixed_point && matches_reference;
        rec.wall_seconds = step1_seconds + step2_seconds;
        rec.metric("labels", static_cast<double>(p.num_labels()));
        rec.metric("active", static_cast<double>(p.active.size()));
        rec.metric("passive", static_cast<double>(p.passive.size()));
        rec.metric("zero_round_solvable", zero_round_solvable(p) ? 1.0 : 0.0);
        rec.metric("roundelim.step1_seconds", step1_seconds);
        rec.metric("roundelim.step2_seconds", step2_seconds);
        rec.metric("roundelim.step1_labels",
                   static_cast<double>(r1.num_labels()));
        rec.metric("roundelim.step1_active",
                   static_cast<double>(r1.active.size()));
        rec.metric("roundelim.step1_passive",
                   static_cast<double>(r1.passive.size()));
        rec.metric("roundelim.step2_labels",
                   static_cast<double>(rr.num_labels()));
        rec.metric("roundelim.step2_active",
                   static_cast<double>(rr.active.size()));
        rec.metric("roundelim.step2_passive",
                   static_cast<double>(rr.passive.size()));
        rec.metric("roundelim.cached", cached ? 1.0 : 0.0);
        if (!cached) rec.metric("roundelim.opt_seconds", opt_seconds);
        if (have_ref) {
          rec.metric("roundelim.ref_seconds", ref_seconds);
          rec.metric("roundelim.speedup", ref_seconds / opt_seconds);
          rec.metric("roundelim.matches_reference",
                     matches_reference ? 1.0 : 0.0);
        }
        reporter.add(std::move(rec));
      }
      t.add_row({Table::cell(delta), natural_form ? "O/I" : "M/U",
                 Table::cell(p.num_labels()),
                 Table::cell(static_cast<std::uint64_t>(p.active.size())),
                 Table::cell(static_cast<std::uint64_t>(p.passive.size())),
                 fixed_point && matches_reference ? "yes" : "NO",
                 zero_round_solvable(p) ? "yes" : "no",
                 cached ? "cached" : micros(opt_seconds),
                 have_ref ? micros(ref_seconds) : "-",
                 have_ref ? Table::cell(ref_seconds / opt_seconds, 1) : "-"});
      meter.step();
    }
  }
  meter.finish();
  reporter.print(t, std::cout);
  if (store_ptr != nullptr) {
    std::cout << "\n[store] " << (resume ? "resume: " : "")
              << steps_cached_total
              << " elimination steps served from " << store_ptr->dir()
              << '\n';
  }

  std::cout << "\nControl: trivially solvable problem stays 0-round solvable"
            << " through elimination\n\n";
  Table c({"Δ", "0-round before", "0-round after R"});
  for (int delta : {3, 4}) {
    const auto p = free_problem(delta, 2, 2);
    const auto r = round_eliminate(p);
    c.add_row({Table::cell(delta), zero_round_solvable(p) ? "yes" : "no",
               zero_round_solvable(r) ? "yes" : "no"});
  }
  reporter.print(c, std::cout);
  std::cout << "\nExpected shape: RR≅orig = yes and 0-round = no for every Δ"
            << " — sinkless orientation is a round-elimination fixed point,\n"
            << "certifying that no fixed-round algorithm exists (the paper's"
            << " lower-bound engine). Rows up to Δ=" << ref_max_delta
            << " are cross-checked against the brute-force reference kernel;\n"
            << "'opt µs' vs 'ref µs' is the packed-kernel speedup on one"
            << " double elimination.\n";
  return 0;
}
