// Experiment E6 — Theorem 3 ("Result 3"), executed at micro scale:
// Det_P(n,Δ) <= Rand_P(2^{n²},Δ).
//
// For each setup the harness enumerates the whole instance class G_{n,Δ}
// (every graph × every injective ID assignment), scans φ functions
// lexicographically until the first good one — the φ* the proof's A_Det
// computes by local simulation — and samples the density of good φ, the
// quantity the union bound controls. The instance-class sizes are printed
// against the paper's coarse 2^{n²} bound.
#include <cmath>
#include <iostream>

#include "core/derand.hpp"
#include "obs/reporter.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int samples = static_cast<int>(flags.get_int("phi-samples", 200));
  BenchReporter reporter(flags, "E6_derand");
  flags.check_unknown();

  std::cout << "E6: Theorem 3 derandomization of rank-greedy MIS at micro"
            << " scale\n\n";
  Table t({"n", "Δ", "S", "r", "graphs", "instances", "log2(inst)", "n²",
           "|φ|", "first good φ", "scanned", "good frac"});
  struct Row {
    int n, delta, id_space, rank_bits;
  };
  for (const Row& row : {Row{2, 1, 4, 2}, Row{3, 2, 4, 2}, Row{3, 2, 5, 3},
                         Row{4, 3, 5, 3}, Row{4, 3, 6, 3}}) {
    DerandSetup setup;
    setup.n = row.n;
    setup.delta = row.delta;
    setup.id_space = row.id_space;
    setup.rank_bits = row.rank_bits;
    const auto r = derandomize_mis(setup, samples, 0xE6);
    {
      RunRecord rec = reporter.make_record();
      rec.algorithm = "derandomize_mis";
      rec.n = static_cast<NodeId>(row.n);
      rec.delta = row.delta;
      rec.verified = r.found;
      rec.metric("instances", static_cast<double>(r.instances));
      rec.metric("phi_space", static_cast<double>(r.phi_space));
      rec.metric("phis_scanned", static_cast<double>(r.phis_scanned));
      rec.metric("good_fraction", r.sampled_good_fraction);
      reporter.add(std::move(rec));
    }
    t.add_row({Table::cell(row.n), Table::cell(row.delta),
               Table::cell(row.id_space), Table::cell(row.rank_bits),
               Table::cell(r.graphs), Table::cell(r.instances),
               Table::cell(std::log2(static_cast<double>(r.instances)), 1),
               Table::cell(r.log2_thm3_bound, 0), Table::cell(r.phi_space),
               r.found ? Table::cell(r.first_good_phi) : "none",
               Table::cell(r.phis_scanned),
               Table::cell(r.sampled_good_fraction, 3)});
  }
  reporter.print(t, std::cout);
  std::cout << "\nExpected shape: log2(instances) << n² (the theorem's class"
            << " bound);\na good φ always exists and most sampled φ are good"
            << " — the union-bound argument, observed.\n";
  return 0;
}
