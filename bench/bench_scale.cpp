// Experiment E18 — engine scaling curves on 10^5–10^8-node Δ-regular
// bipartite graphs: streaming generation throughput, packed-vs-generic
// engine throughput, the SIMD-vs-scalar kernel speedup, and engine-side
// bytes/node for the full packed algorithm roster.
//
// One block per n = 2^e:
//
//   generate_streamed   in-place union-of-matchings CSR generation
//                       (make_random_bipartite_regular_streamed), nodes/sec
//   mis_luby_packed     RandLOCAL Luby on the packed fast path, work-stealing
//                       schedule; node·rounds/sec and engine bytes/node.
//                       Also run with EngineOptions::simd off — outputs are
//                       checked bit-identical and the scalar/vector wall
//                       ratio is recorded as simd_speedup
//   mis_luby_generic    same runs forced onto the generic path (only up to
//                       --generic-max-exp); the packed record carries
//                       speedup_vs_generic, outputs checked bit-identical
//   mis_ghaffari_local  RandLOCAL desire-level MIS with shattering residue
//   matching_*_local    the handshake matchings: randomized (stateless
//                       draws, no RNG streams) and deterministic (greedy by
//                       edge priority, sequential ids)
//   plus_one_local      RandLOCAL (Δ+1) trial coloring
//   greedy_color_local  DetLOCAL packed flagship, static schedule
//   sinkless_local      RandLOCAL sinkless orientation taking the
//                       generator's matching decomposition as its coloring
//   delta_coloring_thm10/11_local  the paper's Δ-coloring algorithms on a
//                       complete-tree instance of the same n (the rake
//                       phases need a forest), Δ=16
//
// --algo=a,b,... restricts the sweep to a subset of the roster (default:
// everything), so single-algorithm investigations don't pay for the rest.
//
// Budget gates (--assert-budget): every packed algorithm's engine bytes/node
// must stay within its budget, derived from --budget-bytes (the DetLOCAL
// baseline, default 48): +32 for per-node RNG streams (RandLOCAL algorithms
// that draw), +4·Δ for port-aligned edge labels. scripts/check_scale.sh
// runs this gate in check_all.
//
// Every record carries peak_rss_bytes and pool_utilization (the pooled
// dispatch window of that run) via add_resource_run_metrics.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "algo/delta_coloring_local.hpp"
#include "algo/greedy_color.hpp"
#include "algo/matching_local.hpp"
#include "algo/mis_ghaffari.hpp"
#include "algo/mis_luby.hpp"
#include "algo/plus_one_coloring.hpp"
#include "algo/sinkless_local.hpp"
#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "lcl/verify_matching.hpp"
#include "lcl/verify_mis.hpp"
#include "local/ids.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int min_exp = static_cast<int>(flags.get_int("min-exp", 16));
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 20));
  const int exp_step = static_cast<int>(flags.get_int("exp-step", 2));
  const int generic_max_exp =
      static_cast<int>(flags.get_int("generic-max-exp", 20));
  const int d = static_cast<int>(flags.get_int("d", 3));
  const int seeds = static_cast<int>(flags.get_int("seeds", 1));
  const bool assert_budget = flags.get_bool("assert-budget", false);
  const auto budget_bytes =
      static_cast<double>(flags.get_int("budget-bytes", 48));
  const std::vector<std::string> roster = {
      "luby",     "ghaffari", "matching_rand", "matching_det",
      "plus_one", "greedy",   "sinkless",      "thm10",
      "thm11"};
  const std::vector<std::string> algos = flags.get_list("algo", roster);
  BenchReporter reporter(flags, "E18_scale");
  const int threads = reporter.threads();
  const NodeId shard_nodes = flags.get_shard_nodes(threads);
  flags.check_unknown();
  CKP_CHECK_MSG(d >= 2 && d + 1 <= 64,
                "--d must be in [2, 63] (sinkless needs degree >= 2, greedy "
                "caps the palette at 64)");
  CKP_CHECK(min_exp >= 4 && min_exp <= max_exp && exp_step >= 1);
  const auto enabled = [&](const char* a) {
    return std::find(algos.begin(), algos.end(), a) != algos.end();
  };
  // Budget model: DetLOCAL baseline, +32 B/node of RNG streams for RandLOCAL
  // algorithms that draw, +4·Δ B/node for port-aligned edge labels.
  const double rng_budget = budget_bytes + 32.0;
  const double label_budget_extra = 4.0 * d;
  const auto gate = [&](const char* name, std::uint64_t engine_bytes, NodeId n,
                        double budget) {
    const double bpn =
        static_cast<double>(engine_bytes) / static_cast<double>(n);
    if (assert_budget) {
      CKP_CHECK_MSG(bpn <= budget, name << " engine bytes/node " << bpn
                                        << " exceeds the budget " << budget
                                        << " at n=" << n);
    }
    return bpn;
  };

  std::cout << "E18: engine scale-up — streamed generation + packed rounds\n"
            << "Δ=" << d << "-regular bipartite, threads=" << threads
            << ", shard_nodes=" << shard_nodes
            << ", simd=" << simd::kBackendName << "\n\n";
  Table t({"n", "gen Mn/s", "luby Mn·r/s", "luby B/n", "luby spd", "simd spd",
           "cmp spd", "ghaf B/n", "mrand B/n", "mdet B/n", "p1 B/n",
           "greedy B/n", "t10 B/n", "t11 B/n", "util"});

  for (int e = min_exp; e <= max_exp; e += exp_step) {
    const NodeId n = static_cast<NodeId>(1) << e;
    const NodeId side = n / 2;
    Rng gen_rng(mix_seed(0xE12, static_cast<std::uint64_t>(d),
                         static_cast<std::uint64_t>(n)));

    ThreadPoolStats before = shared_pool_stats();
    Timer gen_timer;
    const EdgeColoredGraph ecg = make_random_bipartite_regular_streamed(
        side, d, gen_rng, shard_nodes, threads);
    const double gen_seconds = gen_timer.seconds();
    const Graph& g = ecg.graph;
    // from_regular_csr fully validates the CSR; re-checking the coloring is
    // O(n·d) with a per-node scan, so cap it at small n.
    const bool gen_verified =
        n <= (NodeId{1} << 22)
            ? is_proper_edge_coloring(g, ecg.edge_color, ecg.num_colors)
            : true;
    CKP_CHECK(gen_verified);
    {
      RunRecord rec = reporter.make_record();
      rec.algorithm = "generate_streamed";
      rec.graph_family = "bipartite_regular_streamed";
      rec.n = static_cast<std::uint64_t>(n);
      rec.delta = d;
      rec.wall_seconds = gen_seconds;
      rec.verified = gen_verified;
      rec.metric("nodes_per_sec", static_cast<double>(n) / gen_seconds);
      rec.metric("shard_nodes", static_cast<double>(shard_nodes));
      add_resource_run_metrics(rec, before);
      reporter.add(std::move(rec));
    }

    // Common record plumbing for the per-algorithm engine runs.
    const auto engine_record = [&](const char* name, std::uint64_t seed,
                                   int rounds, double seconds,
                                   double bytes_per_node,
                                   const ThreadPoolStats& window) {
      RunRecord rec = reporter.make_record();
      rec.algorithm = name;
      rec.graph_family = "bipartite_regular_streamed";
      rec.n = static_cast<std::uint64_t>(n);
      rec.delta = d;
      rec.seed = seed;
      rec.rounds = rounds;
      rec.wall_seconds = seconds;
      rec.verified = true;
      rec.metric("node_rounds_per_sec",
                 static_cast<double>(n) * rounds / seconds);
      rec.metric("engine_bytes_per_node", bytes_per_node);
      add_resource_run_metrics(rec, window);
      return rec;
    };

    double luby_node_rounds_per_sec = 0.0;
    double luby_bytes_per_node = 0.0;
    double ghaffari_bytes_per_node = 0.0;
    double mrand_bytes_per_node = 0.0;
    double mdet_bytes_per_node = 0.0;
    double plus_one_bytes_per_node = 0.0;
    double greedy_bytes_per_node = 0.0;
    double thm10_bytes_per_node = 0.0;
    double thm11_bytes_per_node = 0.0;
    double speedup = 0.0;
    double simd_speedup = 0.0;
    double simd_compact_speedup = 0.0;
    double util = 0.0;

    EngineOptions packed_opts;
    packed_opts.threads = threads;
    packed_opts.schedule = EngineSchedule::kWorkStealing;

    // The Δ-coloring roster needs a forest (the rake phases peel trees;
    // the bipartite workhorse has cycles), so it rides on its own
    // complete-tree instance of the same n at Δ=16 — the smallest degree
    // Theorem 10's reserved palette admits.
    const int tree_delta = 16;
    Graph tree;
    if (enabled("thm10") || enabled("thm11")) {
      tree = make_complete_tree(n, tree_delta);
    }

    for (int s = 0; s < seeds; ++s) {
      LocalInput in;
      in.graph = &g;
      in.seed = static_cast<std::uint64_t>(s) + 1;

      if (enabled("luby")) {
        // Untimed warmup: the first engine run on a fresh heap pays the page
        // faults for cur/nxt/rng/active; without it the simd-vs-scalar and
        // packed-vs-generic ratios measure the allocator, not the kernels.
        (void)mis_luby(in, 1 << 20, packed_opts);
        before = shared_pool_stats();
        Timer luby_timer;
        const auto luby = mis_luby(in, 1 << 20, packed_opts);
        const double luby_seconds = luby_timer.seconds();
        CKP_CHECK(luby.completed);
        CKP_CHECK(verify_mis(g, luby.in_set).ok);
        luby_node_rounds_per_sec =
            static_cast<double>(n) * luby.rounds / luby_seconds;
        luby_bytes_per_node = gate("mis_luby", luby.engine_bytes, n,
                                   rng_budget);
        RunRecord rec = engine_record("mis_luby_packed", in.seed, luby.rounds,
                                      luby_seconds, luby_bytes_per_node,
                                      before);
        for (const auto& [name, value] : rec.metrics()) {
          if (name == "pool_utilization") util = value;
        }

        // SIMD kernels off, same packed path: bit-identical outputs, the
        // wall ratio is the vectorization win of the steady-state loops.
        // The engine round is gather-latency-bound, so expect ~1x end to
        // end; the kernel-level compaction ratio below is where the vector
        // unit shows.
        if (simd::kHaveVectorBackend) {
          EngineOptions scalar_opts = packed_opts;
          scalar_opts.simd = false;
          Timer scalar_timer;
          const auto scalar = mis_luby(in, 1 << 20, scalar_opts);
          const double scalar_seconds = scalar_timer.seconds();
          CKP_CHECK_MSG(scalar.in_set == luby.in_set &&
                            scalar.rounds == luby.rounds,
                        "simd and scalar kernels disagree at n=" << n);
          simd_speedup = scalar_seconds / luby_seconds;
          rec.metric("simd_speedup", simd_speedup);

          // Kernel-level compaction microbench: left-pack the node array by
          // MIS membership (a realistic unpredictable 0/1 pattern), vector
          // vs scalar. This isolates the halt-slab/active-compaction kernel
          // from the gather-bound step loop.
          std::vector<NodeId> nodes(static_cast<std::size_t>(n));
          std::vector<NodeId> packed_out(static_cast<std::size_t>(n));
          std::vector<std::uint8_t> member(static_cast<std::size_t>(n));
          for (NodeId v = 0; v < n; ++v) {
            nodes[static_cast<std::size_t>(v)] = v;
            member[static_cast<std::size_t>(v)] =
                luby.in_set[static_cast<std::size_t>(v)] ? 1 : 0;
          }
          const int reps = static_cast<int>(
              std::max<std::int64_t>(1, (std::int64_t{1} << 24) / n));
          std::int64_t kept = 0;
          (void)simd::compact_by_flag(packed_out.data(), nodes.data(),
                                      member.data(), n, true);
          Timer vec_timer;
          for (int r = 0; r < reps; ++r) {
            kept += simd::compact_by_flag(packed_out.data(), nodes.data(),
                                          member.data(), n, true);
          }
          const double vec_seconds = vec_timer.seconds();
          Timer sca_timer;
          for (int r = 0; r < reps; ++r) {
            kept -= simd::compact_by_flag_scalar(packed_out.data(),
                                                 nodes.data(), member.data(),
                                                 n, true);
          }
          const double sca_seconds = sca_timer.seconds();
          CKP_CHECK(kept == 0);
          simd_compact_speedup = sca_seconds / vec_seconds;
          rec.metric("simd_compact_speedup", simd_compact_speedup);
        }

        if (e <= generic_max_exp) {
          EngineOptions generic_opts = packed_opts;
          generic_opts.force_generic = true;
          before = shared_pool_stats();
          Timer generic_timer;
          const auto generic = mis_luby(in, 1 << 20, generic_opts);
          const double generic_seconds = generic_timer.seconds();
          CKP_CHECK_MSG(generic.in_set == luby.in_set &&
                            generic.rounds == luby.rounds,
                        "packed and generic Luby disagree at n=" << n);
          speedup = generic_seconds / luby_seconds;
          rec.metric("speedup_vs_generic", speedup);
          RunRecord grec = engine_record(
              "mis_luby_generic", in.seed, generic.rounds, generic_seconds,
              static_cast<double>(generic.engine_bytes) /
                  static_cast<double>(n),
              before);
          reporter.add(std::move(grec));
        }
        reporter.add(std::move(rec));
      }

      if (enabled("ghaffari")) {
        before = shared_pool_stats();
        Timer timer;
        const auto ghaffari = mis_ghaffari_local(in, 1 << 20, packed_opts);
        const double seconds = timer.seconds();
        CKP_CHECK(ghaffari.completed);
        CKP_CHECK(verify_mis(g, ghaffari.in_set).ok);
        ghaffari_bytes_per_node =
            gate("mis_ghaffari_local", ghaffari.engine_bytes, n, rng_budget);
        RunRecord rec =
            engine_record("mis_ghaffari_local", in.seed, ghaffari.rounds,
                          seconds, ghaffari_bytes_per_node, before);
        rec.metric("residue_nodes",
                   static_cast<double>(ghaffari.residue_nodes));
        rec.metric("largest_residue_component",
                   static_cast<double>(ghaffari.largest_residue_component));
        reporter.add(std::move(rec));
      }

      // The randomized matching's proposal field caps m at 2^26 edges.
      if (enabled("matching_rand") &&
          static_cast<std::uint64_t>(g.num_edges()) < (1ULL << 26)) {
        before = shared_pool_stats();
        Timer timer;
        const auto matching = matching_randomized_local(in, 1 << 20,
                                                        packed_opts);
        const double seconds = timer.seconds();
        CKP_CHECK(matching.completed);
        CKP_CHECK(verify_maximal_matching(g, matching.in_matching).ok);
        // Stateless draws: no RNG-stream surcharge, only the labels'.
        mrand_bytes_per_node =
            gate("matching_randomized_local", matching.engine_bytes, n,
                 budget_bytes + label_budget_extra);
        reporter.add(engine_record("matching_randomized_local", in.seed,
                                   matching.rounds, seconds,
                                   mrand_bytes_per_node, before));
      }

      if (enabled("plus_one")) {
        before = shared_pool_stats();
        Timer timer;
        const auto coloring = plus_one_local(in, d + 1, 1 << 20, packed_opts);
        const double seconds = timer.seconds();
        CKP_CHECK(coloring.completed);
        CKP_CHECK(verify_coloring(g, coloring.colors, d + 1).ok);
        plus_one_bytes_per_node =
            gate("plus_one_local", coloring.engine_bytes, n, rng_budget);
        reporter.add(engine_record("plus_one_local", in.seed, coloring.rounds,
                                   seconds, plus_one_bytes_per_node, before));
      }

      if (enabled("sinkless")) {
        before = shared_pool_stats();
        Timer sink_timer;
        LocalInput sink_in = in;
        sink_in.edge_labels = ecg.edge_color;
        const auto sink = sinkless_local(sink_in, 1 << 14, packed_opts);
        const double sink_seconds = sink_timer.seconds();
        const double sink_bytes_per_node =
            gate("sinkless_local", sink.engine_bytes, n,
                 rng_budget + label_budget_extra);
        RunRecord srec =
            engine_record("sinkless_local", in.seed, sink.rounds,
                          sink_seconds, sink_bytes_per_node, before);
        srec.verified = sink.completed;
        srec.metric("unsatisfied", static_cast<double>(sink.unsatisfied));
        if (e <= generic_max_exp) {
          // Label-carrying algorithms are where the packed path's flat-array
          // design pays most: the generic path keeps incident labels as one
          // heap vector per node, so its setup makes n small allocations.
          EngineOptions generic_opts = packed_opts;
          generic_opts.force_generic = true;
          Timer generic_timer;
          const auto generic = sinkless_local(sink_in, 1 << 14, generic_opts);
          const double generic_seconds = generic_timer.seconds();
          CKP_CHECK_MSG(generic.orient == sink.orient &&
                            generic.rounds == sink.rounds,
                        "packed and generic sinkless disagree at n=" << n);
          srec.metric("speedup_vs_generic", generic_seconds / sink_seconds);
        }
        reporter.add(std::move(srec));
      }

      if (enabled("thm10")) {
        LocalInput tin;
        tin.graph = &tree;
        tin.seed = in.seed;
        before = shared_pool_stats();
        Timer timer;
        const auto r = delta_coloring_thm10_local(tin, 1 << 20, packed_opts);
        const double seconds = timer.seconds();
        CKP_CHECK(r.completed);
        CKP_CHECK(verify_coloring(tree, r.colors, tree_delta).ok);
        thm10_bytes_per_node = gate("delta_coloring_thm10_local",
                                    r.engine_bytes, n, rng_budget);
        RunRecord rec =
            engine_record("delta_coloring_thm10_local", tin.seed, r.rounds,
                          seconds, thm10_bytes_per_node, before);
        rec.graph_family = "complete_tree";
        rec.delta = tree_delta;
        rec.metric("bad_vertices", static_cast<double>(r.bad_vertices));
        rec.metric("largest_bad_component",
                   static_cast<double>(r.largest_bad_component));
        reporter.add(std::move(rec));
      }

      if (enabled("thm11")) {
        LocalInput tin;
        tin.graph = &tree;
        tin.seed = in.seed;
        before = shared_pool_stats();
        Timer timer;
        const auto r = delta_coloring_thm11_local(tin, 1 << 20, packed_opts);
        const double seconds = timer.seconds();
        CKP_CHECK(r.completed);
        CKP_CHECK(verify_coloring(tree, r.colors, tree_delta).ok);
        thm11_bytes_per_node = gate("delta_coloring_thm11_local",
                                    r.engine_bytes, n, rng_budget);
        RunRecord rec =
            engine_record("delta_coloring_thm11_local", tin.seed, r.rounds,
                          seconds, thm11_bytes_per_node, before);
        rec.graph_family = "complete_tree";
        rec.delta = tree_delta;
        rec.metric("phase2_set_size",
                   static_cast<double>(r.phase2_set_size));
        rec.metric("phase2_largest_component",
                   static_cast<double>(r.phase2_largest_component));
        rec.metric("phase3_set_size",
                   static_cast<double>(r.phase3_set_size));
        reporter.add(std::move(rec));
      }
    }

    // DetLOCAL roster: static schedule — the active sets shrink uniformly
    // here, so stealing has nothing to gain and the static rows double as
    // scheduler coverage.
    EngineOptions det_opts;
    det_opts.threads = threads;

    if (enabled("greedy")) {
      LocalInput in;
      in.graph = &g;
      in.ids = sequential_ids(n);
      before = shared_pool_stats();
      Timer greedy_timer;
      const auto greedy = greedy_color_local(in, d + 1, 1 << 20, det_opts);
      const double greedy_seconds = greedy_timer.seconds();
      CKP_CHECK(greedy.completed);
      CKP_CHECK(verify_coloring(g, greedy.colors, d + 1).ok);
      greedy_bytes_per_node =
          gate("greedy_color_local", greedy.engine_bytes, n, budget_bytes);
      RunRecord rec =
          engine_record("greedy_color_local", 0, greedy.rounds,
                        greedy_seconds, greedy_bytes_per_node, before);
      rec.metric("budget_bytes_per_node", budget_bytes);
      reporter.add(std::move(rec));
    }

    if (enabled("matching_det")) {
      LocalInput in;
      in.graph = &g;
      in.ids = sequential_ids(n);
      before = shared_pool_stats();
      Timer timer;
      const auto matching = matching_deterministic_local(in, 1 << 20,
                                                         det_opts);
      const double seconds = timer.seconds();
      CKP_CHECK(matching.completed);
      CKP_CHECK(verify_maximal_matching(g, matching.in_matching).ok);
      mdet_bytes_per_node =
          gate("matching_deterministic_local", matching.engine_bytes, n,
               budget_bytes);
      reporter.add(engine_record("matching_deterministic_local", 0,
                                 matching.rounds, seconds,
                                 mdet_bytes_per_node, before));
    }

    t.add_row({Table::cell(static_cast<std::int64_t>(n)),
               Table::cell(static_cast<double>(n) / gen_seconds / 1e6, 2),
               Table::cell(luby_node_rounds_per_sec / 1e6, 1),
               Table::cell(luby_bytes_per_node, 1), Table::cell(speedup, 2),
               Table::cell(simd_speedup, 2),
               Table::cell(simd_compact_speedup, 2),
               Table::cell(ghaffari_bytes_per_node, 1),
               Table::cell(mrand_bytes_per_node, 1),
               Table::cell(mdet_bytes_per_node, 1),
               Table::cell(plus_one_bytes_per_node, 1),
               Table::cell(greedy_bytes_per_node, 1),
               Table::cell(thm10_bytes_per_node, 1),
               Table::cell(thm11_bytes_per_node, 1), Table::cell(util, 2)});
  }
  reporter.print(t, std::cout);
  std::cout << "\nExpected shape: generation and engine throughput flat in n "
               "(streaming + packed state);\nevery B/n column under its "
               "budget (greedy/mdet " << budget_bytes << ", RNG algorithms +32, "
               "label carriers +4Δ);\npacked > 1x over generic on one core, "
               "> 2x with >= 2 cores; simd spd >= 1 (see EXPERIMENTS.md "
               "E18).\n";
  return 0;
}
