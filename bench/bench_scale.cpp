// Experiment E18 — engine scaling curves on 10^5–10^8-node Δ-regular
// bipartite graphs: streaming generation throughput, packed-vs-generic
// engine throughput, engine-side bytes/node, and thread-pool utilization
// as n grows.
//
// One block per n = 2^e:
//
//   generate_streamed  in-place union-of-matchings CSR generation
//                      (make_random_bipartite_regular_streamed), nodes/sec
//   mis_luby_packed    RandLOCAL Luby on the packed fast path, work-stealing
//                      schedule; node·rounds/sec and engine bytes/node
//   mis_luby_generic   same runs forced onto the generic path (only up to
//                      --generic-max-exp — the generic path's cached
//                      environments and pointer tables make 10^7+ nodes
//                      pointlessly expensive); the packed record carries
//                      speedup_vs_generic and the outputs are checked
//                      bit-identical
//   greedy_color_local DetLOCAL packed flagship: sequential ids, palette
//                      Δ+1. Its engine footprint is the --assert-budget
//                      target (default 48 bytes/node) — Luby pays 32 B/node
//                      extra for per-node RNG streams and is reported, not
//                      budget-gated
//   sinkless_local     RandLOCAL packed sinkless orientation taking the
//                      generator's matching decomposition as its proper
//                      edge coloring
//
// Every record carries peak_rss_bytes and pool_utilization (the pooled
// dispatch window of that run) via add_resource_run_metrics.
#include <cstdint>
#include <iostream>

#include "algo/greedy_color.hpp"
#include "algo/mis_luby.hpp"
#include "algo/sinkless_local.hpp"
#include "graph/regular.hpp"
#include "lcl/verify_coloring.hpp"
#include "lcl/verify_mis.hpp"
#include "local/ids.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int min_exp = static_cast<int>(flags.get_int("min-exp", 16));
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 20));
  const int exp_step = static_cast<int>(flags.get_int("exp-step", 2));
  const int generic_max_exp =
      static_cast<int>(flags.get_int("generic-max-exp", 20));
  const int d = static_cast<int>(flags.get_int("d", 3));
  const int seeds = static_cast<int>(flags.get_int("seeds", 1));
  const bool assert_budget = flags.get_bool("assert-budget", false);
  const auto budget_bytes =
      static_cast<double>(flags.get_int("budget-bytes", 48));
  BenchReporter reporter(flags, "E18_scale");
  const int threads = reporter.threads();
  const NodeId shard_nodes = flags.get_shard_nodes(threads);
  flags.check_unknown();
  CKP_CHECK_MSG(d >= 2 && d + 1 <= 64,
                "--d must be in [2, 63] (sinkless needs degree >= 2, greedy "
                "caps the palette at 64)");
  CKP_CHECK(min_exp >= 4 && min_exp <= max_exp && exp_step >= 1);

  std::cout << "E18: engine scale-up — streamed generation + packed rounds\n"
            << "Δ=" << d << "-regular bipartite, threads=" << threads
            << ", shard_nodes=" << shard_nodes << "\n\n";
  Table t({"n", "gen s", "gen Mn/s", "luby r", "luby Mn·r/s", "luby B/n",
           "luby spd", "sink r", "sink spd", "greedy B/n", "util"});

  for (int e = min_exp; e <= max_exp; e += exp_step) {
    const NodeId n = static_cast<NodeId>(1) << e;
    const NodeId side = n / 2;
    Rng gen_rng(mix_seed(0xE12, static_cast<std::uint64_t>(d),
                         static_cast<std::uint64_t>(n)));

    ThreadPoolStats before = shared_pool_stats();
    Timer gen_timer;
    const EdgeColoredGraph ecg = make_random_bipartite_regular_streamed(
        side, d, gen_rng, shard_nodes, threads);
    const double gen_seconds = gen_timer.seconds();
    const Graph& g = ecg.graph;
    // from_regular_csr fully validates the CSR; re-checking the coloring is
    // O(n·d) with a per-node scan, so cap it at small n.
    const bool gen_verified =
        n <= (NodeId{1} << 22)
            ? is_proper_edge_coloring(g, ecg.edge_color, ecg.num_colors)
            : true;
    CKP_CHECK(gen_verified);
    {
      RunRecord rec = reporter.make_record();
      rec.algorithm = "generate_streamed";
      rec.graph_family = "bipartite_regular_streamed";
      rec.n = static_cast<std::uint64_t>(n);
      rec.delta = d;
      rec.wall_seconds = gen_seconds;
      rec.verified = gen_verified;
      rec.metric("nodes_per_sec", static_cast<double>(n) / gen_seconds);
      rec.metric("shard_nodes", static_cast<double>(shard_nodes));
      add_resource_run_metrics(rec, before);
      reporter.add(std::move(rec));
    }

    double luby_node_rounds_per_sec = 0.0;
    double luby_bytes_per_node = 0.0;
    double greedy_bytes_per_node = 0.0;
    double speedup = 0.0;
    double sink_speedup = 0.0;
    int luby_rounds = 0;
    int sink_rounds = 0;
    double util = 0.0;

    for (int s = 0; s < seeds; ++s) {
      LocalInput in;
      in.graph = &g;
      in.seed = static_cast<std::uint64_t>(s) + 1;

      EngineOptions packed_opts;
      packed_opts.threads = threads;
      packed_opts.schedule = EngineSchedule::kWorkStealing;
      before = shared_pool_stats();
      Timer luby_timer;
      const auto luby = mis_luby(in, 1 << 20, packed_opts);
      const double luby_seconds = luby_timer.seconds();
      CKP_CHECK(luby.completed);
      CKP_CHECK(verify_mis(g, luby.in_set).ok);
      luby_rounds = luby.rounds;
      luby_node_rounds_per_sec =
          static_cast<double>(n) * luby.rounds / luby_seconds;
      luby_bytes_per_node =
          static_cast<double>(luby.engine_bytes) / static_cast<double>(n);
      RunRecord rec = reporter.make_record();
      rec.algorithm = "mis_luby_packed";
      rec.graph_family = "bipartite_regular_streamed";
      rec.n = static_cast<std::uint64_t>(n);
      rec.delta = d;
      rec.seed = in.seed;
      rec.rounds = luby.rounds;
      rec.wall_seconds = luby_seconds;
      rec.verified = true;
      rec.metric("node_rounds_per_sec", luby_node_rounds_per_sec);
      rec.metric("engine_bytes_per_node", luby_bytes_per_node);
      add_resource_run_metrics(rec, before);
      for (const auto& [name, value] : rec.metrics()) {
        if (name == "pool_utilization") util = value;
      }

      if (e <= generic_max_exp) {
        EngineOptions generic_opts = packed_opts;
        generic_opts.force_generic = true;
        before = shared_pool_stats();
        Timer generic_timer;
        const auto generic = mis_luby(in, 1 << 20, generic_opts);
        const double generic_seconds = generic_timer.seconds();
        CKP_CHECK_MSG(generic.in_set == luby.in_set &&
                          generic.rounds == luby.rounds,
                      "packed and generic Luby disagree at n=" << n);
        speedup = generic_seconds / luby_seconds;
        rec.metric("speedup_vs_generic", speedup);
        RunRecord grec = reporter.make_record();
        grec.algorithm = "mis_luby_generic";
        grec.graph_family = "bipartite_regular_streamed";
        grec.n = static_cast<std::uint64_t>(n);
        grec.delta = d;
        grec.seed = in.seed;
        grec.rounds = generic.rounds;
        grec.wall_seconds = generic_seconds;
        grec.verified = true;
        grec.metric("node_rounds_per_sec",
                    static_cast<double>(n) * generic.rounds / generic_seconds);
        grec.metric("engine_bytes_per_node",
                    static_cast<double>(generic.engine_bytes) /
                        static_cast<double>(n));
        add_resource_run_metrics(grec, before);
        reporter.add(std::move(grec));
      }
      reporter.add(std::move(rec));

      before = shared_pool_stats();
      Timer sink_timer;
      LocalInput sink_in = in;
      sink_in.edge_labels = ecg.edge_color;
      const auto sink = sinkless_local(sink_in, 1 << 14, packed_opts);
      const double sink_seconds = sink_timer.seconds();
      sink_rounds = sink.rounds;
      RunRecord srec = reporter.make_record();
      srec.algorithm = "sinkless_local";
      srec.graph_family = "bipartite_regular_streamed";
      srec.n = static_cast<std::uint64_t>(n);
      srec.delta = d;
      srec.seed = in.seed;
      srec.rounds = sink.rounds;
      srec.wall_seconds = sink_seconds;
      srec.verified = sink.completed;
      srec.metric("unsatisfied", static_cast<double>(sink.unsatisfied));
      srec.metric("engine_bytes_per_node",
                  static_cast<double>(sink.engine_bytes) /
                      static_cast<double>(n));
      add_resource_run_metrics(srec, before);
      if (e <= generic_max_exp) {
        // Label-carrying algorithms are where the packed path's flat-array
        // design pays most: the generic path keeps incident labels as one
        // heap vector per node, so its setup makes n small allocations.
        EngineOptions generic_opts = packed_opts;
        generic_opts.force_generic = true;
        Timer generic_timer;
        const auto generic = sinkless_local(sink_in, 1 << 14, generic_opts);
        const double generic_seconds = generic_timer.seconds();
        CKP_CHECK_MSG(generic.orient == sink.orient &&
                          generic.rounds == sink.rounds,
                      "packed and generic sinkless disagree at n=" << n);
        sink_speedup = generic_seconds / sink_seconds;
        srec.metric("speedup_vs_generic", sink_speedup);
      }
      reporter.add(std::move(srec));
    }

    // DetLOCAL flagship: the budget-gated configuration. Static schedule —
    // the active set shrinks uniformly here, so stealing has nothing to
    // gain and the static row doubles as scheduler coverage.
    {
      LocalInput in;
      in.graph = &g;
      in.ids = sequential_ids(n);
      EngineOptions opts;
      opts.threads = threads;
      before = shared_pool_stats();
      Timer greedy_timer;
      const auto greedy = greedy_color_local(in, d + 1, 1 << 20, opts);
      const double greedy_seconds = greedy_timer.seconds();
      CKP_CHECK(greedy.completed);
      CKP_CHECK(verify_coloring(g, greedy.colors, d + 1).ok);
      greedy_bytes_per_node =
          static_cast<double>(greedy.engine_bytes) / static_cast<double>(n);
      if (assert_budget) {
        CKP_CHECK_MSG(greedy_bytes_per_node <= budget_bytes,
                      "engine bytes/node " << greedy_bytes_per_node
                                           << " exceeds the --budget-bytes "
                                           << budget_bytes << " at n=" << n);
      }
      RunRecord rec = reporter.make_record();
      rec.algorithm = "greedy_color_local";
      rec.graph_family = "bipartite_regular_streamed";
      rec.n = static_cast<std::uint64_t>(n);
      rec.delta = d;
      rec.rounds = greedy.rounds;
      rec.wall_seconds = greedy_seconds;
      rec.verified = true;
      rec.metric("node_rounds_per_sec",
                 static_cast<double>(n) * greedy.rounds / greedy_seconds);
      rec.metric("engine_bytes_per_node", greedy_bytes_per_node);
      rec.metric("budget_bytes_per_node", budget_bytes);
      add_resource_run_metrics(rec, before);
      reporter.add(std::move(rec));
    }

    t.add_row({Table::cell(static_cast<std::int64_t>(n)),
               Table::cell(gen_seconds, 2),
               Table::cell(static_cast<double>(n) / gen_seconds / 1e6, 2),
               Table::cell(luby_rounds),
               Table::cell(luby_node_rounds_per_sec / 1e6, 1),
               Table::cell(luby_bytes_per_node, 1), Table::cell(speedup, 2),
               Table::cell(sink_rounds), Table::cell(sink_speedup, 2),
               Table::cell(greedy_bytes_per_node, 1), Table::cell(util, 2)});
  }
  reporter.print(t, std::cout);
  std::cout << "\nExpected shape: generation and engine throughput flat in n "
               "(streaming + packed state);\ngreedy B/n stays under the "
               "budget; packed > 1x over generic on one core (it removes\n"
               "the generic path's sequential setup), > 2x with >= 2 cores "
               "(see EXPERIMENTS.md E18).\n";
  return 0;
}
