// Experiment E2 — Linial's coloring (Theorems 1 and 2).
//
// Table A: the one-round reduction (Theorem 1): input palette k vs the
// palette after one round, at several Δ — the O(Δ² log k)-flavored shape.
// Table B: the iterated algorithm (Theorem 2): measured rounds to the
// β·Δ²-palette fixed point vs n and Δ, against the predicted
// O(log* n − log* Δ + 1); the fixed-point palette itself exhibits β.
#include <iostream>

#include "algo/linial.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 20));
  BenchReporter reporter(flags, "E2_linial");
  flags.check_unknown();

  std::cout << "E2/Table A: one-round palette reduction (Theorem 1)\n\n";
  {
    Table t({"Δ", "k (in)", "palette (out)", "out/Δ²"});
    for (int delta : {3, 8, 32, 128}) {
      for (int ke : {16, 32, 48, 63}) {
        const std::uint64_t k = 1ULL << ke;
        const std::uint64_t out = linial_step_palette(k, delta);
        t.add_row({Table::cell(delta), "2^" + std::to_string(ke),
                   Table::cell(out),
                   Table::cell(static_cast<double>(out) /
                                   (static_cast<double>(delta) * delta),
                               2)});
      }
    }
    reporter.print(t, std::cout);
  }

  std::cout << "\nE2/Table B: iterated Theorem 2 on complete degree-Δ trees\n"
            << "(rounds to the fixed point; prediction O(log* n − log* Δ + 1))\n\n";
  {
    Table t({"Δ", "n", "rounds", "log* n", "palette", "β=palette/Δ²"});
    for (int delta : {3, 8, 32}) {
      for (int e = 8; e <= max_exp; e += 4) {
        const NodeId n = static_cast<NodeId>(1) << e;
        const Graph g = make_complete_tree(n, delta);
        Rng rng(mix_seed(0xE2, static_cast<std::uint64_t>(n),
                         static_cast<std::uint64_t>(delta)));
        const auto ids =
            random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n)), rng);
        RoundLedger ledger;
        const auto result = linial_coloring(g, ids, delta, ledger);
        CKP_CHECK(verify_coloring(g, result.colors, result.palette).ok);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "linial_coloring";
          rec.graph_family = "complete_tree";
          rec.n = n;
          rec.delta = delta;
          rec.rounds = result.rounds;
          rec.verified = true;
          rec.metric("palette", static_cast<double>(result.palette));
          reporter.add(std::move(rec));
        }
        t.add_row({Table::cell(delta), Table::cell(static_cast<std::int64_t>(n)),
                   Table::cell(result.rounds),
                   Table::cell(log_star(static_cast<double>(n))),
                   Table::cell(result.palette),
                   Table::cell(static_cast<double>(result.palette) /
                                   (static_cast<double>(delta) * delta),
                               2)});
      }
    }
    reporter.print(t, std::cout);
  }
  std::cout << "\nExpected shape: rounds ~ log* n (tiny, nearly flat);"
            << " palette/Δ² bounded by a universal constant β.\n";
  return 0;
}
