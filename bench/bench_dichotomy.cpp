// Experiment E14 — Theorem 7: on Δ=2 instances (cycles) every LCL is
// either O(log* n) or Ω(n); nothing in between.
//
// Both sides measured on the same cycles: 2-coloring (anchor + parity,
// rounds = ⌈n/2⌉) vs 3-coloring (Theorem 2 + elimination, rounds ~ log* n).
#include <iostream>

#include "core/cycle_lcl.hpp"
#include "core/dichotomy.hpp"
#include "graph/generators.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 20));
  BenchReporter reporter(flags, "E14_dichotomy");
  flags.check_unknown();

  std::cout << "E14: the Δ=2 complexity dichotomy (Theorem 7) on cycles\n\n";
  Table t({"n", "2-color rounds", "3-color rounds", "log* n", "gap"});
  for (int e = 6; e <= max_exp; e += 2) {
    const NodeId n = static_cast<NodeId>(1) << e;  // even: 2-colorable
    const Graph g = make_cycle(n);
    Rng rng(mix_seed(0xED, static_cast<std::uint64_t>(n)));
    const auto ids =
        random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n)), rng);
    RoundLedger l2, l3;
    const auto c2 = two_color_cycle(g, ids, l2);
    CKP_CHECK(verify_coloring(g, c2.colors, 2).ok);
    const auto c3 = three_color_cycle(g, ids, l3);
    CKP_CHECK(verify_coloring(g, c3.colors, 3).ok);
    {
      RunRecord rec = reporter.make_record();
      rec.algorithm = "two_color_cycle";
      rec.graph_family = "cycle";
      rec.n = n;
      rec.delta = 2;
      rec.rounds = l2.rounds();
      rec.verified = true;
      reporter.add(std::move(rec));
    }
    {
      RunRecord rec = reporter.make_record();
      rec.algorithm = "three_color_cycle";
      rec.graph_family = "cycle";
      rec.n = n;
      rec.delta = 2;
      rec.rounds = l3.rounds();
      rec.verified = true;
      reporter.add(std::move(rec));
    }
    t.add_row({Table::cell(static_cast<std::int64_t>(n)),
               Table::cell(l2.rounds()), Table::cell(l3.rounds()),
               Table::cell(log_star(static_cast<double>(n))),
               Table::cell(static_cast<double>(l2.rounds()) / l3.rounds(), 1)});
  }
  reporter.print(t, std::cout);

  std::cout << "\nE14/Table B: the mechanical classifier + generic solver"
            << " over an LCL catalog\n(the decision procedure behind the"
            << " Theorem 7 dichotomy)\n\n";
  {
    struct Entry { const char* name; CycleLcl lcl; };
    std::vector<Entry> catalog;
    catalog.push_back({"2-coloring", proper_coloring_cycle_lcl(2)});
    catalog.push_back({"3-coloring", proper_coloring_cycle_lcl(3)});
    catalog.push_back({"MIS", mis_cycle_lcl()});
    catalog.push_back({"maximal matching", maximal_matching_cycle_lcl()});
    catalog.push_back({"all-equal", all_equal_cycle_lcl()});
    catalog.push_back({"forced 01 pattern", unsolvable_cycle_lcl()});
    Table t2({"problem", "classified", "rounds n=2^10", "rounds n=2^16"});
    for (const auto& [name, lcl] : catalog) {
      const auto cls = classify_cycle_lcl(lcl);
      std::vector<std::string> row{name, to_string(cls.complexity)};
      for (int e2 : {10, 16}) {
        const NodeId n2 = static_cast<NodeId>(1) << e2;
        const Graph g2 = make_cycle(n2);
        Rng rng2(mix_seed(0xED2, static_cast<std::uint64_t>(n2)));
        const auto ids2 = random_ids(
            n2, 2 * ceil_log2(static_cast<std::uint64_t>(n2)), rng2);
        RoundLedger l;
        const auto r = solve_cycle_lcl(lcl, g2, ids2, l);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = std::string("solve_cycle_lcl:") + name;
          rec.graph_family = "cycle";
          rec.n = n2;
          rec.delta = 2;
          rec.rounds = l.rounds();
          rec.verified = r.feasible;
          reporter.add(std::move(rec));
        }
        row.push_back(r.feasible ? Table::cell(l.rounds()) : "infeasible");
      }
      t2.add_row(row);
    }
    reporter.print(t2, std::cout);
  }

  std::cout << "\nExpected shape: the 2-coloring column is exactly ⌈n/2⌉"
            << " (Ω(n) side); the 3-coloring column\nis essentially flat"
            << " (O(log* n) side). Theorem 7: no LCL lives between them.\n";
  return 0;
}
