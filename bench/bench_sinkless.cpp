// Experiment E8 — sinkless orientation (Section IV / Theorem 5 shape):
// deterministic Θ(log_Δ n) vs randomized ~O(1) on the same high-girth
// Δ-regular instances.
//
// Every instance's girth is sampled and reported (the substitution check of
// DESIGN.md: we use random bipartite Δ-regular graphs instead of explicit
// high-girth constructions). Outputs are verified sinkless orientations.
#include <iostream>
#include <memory>
#include <string>

#include "core/sinkless.hpp"
#include "graph/bfs_kernel.hpp"
#include "graph/girth.hpp"
#include "graph/ramanujan.hpp"
#include "graph/regular.hpp"
#include "local/ids.hpp"
#include "obs/reporter.hpp"
#include "store/artifact_store.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 15));
  const std::string store_dir = flags.get_string("store_dir", "");
  BenchReporter reporter(flags, "E8_sinkless");
  flags.check_unknown();
  // Instance cache: expensive generated topologies keyed by
  // (family, parameters, seed). The make-closures own their generator Rng,
  // so a cache hit leaves every downstream random stream untouched — cold
  // and warm runs print identical tables.
  std::unique_ptr<ArtifactStore> store;
  if (!store_dir.empty()) store = std::make_unique<ArtifactStore>(store_dir);

  std::cout << "E8: sinkless orientation — deterministic vs randomized\n"
            << "random bipartite Δ-regular instances; girth sampled\n\n";
  Table t({"Δ", "n", "girth<=", "det rounds", "log_Δ n", "rand rounds",
           "init sinks", "det/rand"});
  for (int delta : {3, 4, 6}) {
    for (int e = 9; e <= max_exp; e += 2) {
      const NodeId side = static_cast<NodeId>(1) << (e - 1);
      const std::uint64_t gen_seed =
          mix_seed(0xE8, static_cast<std::uint64_t>(delta),
                   static_cast<std::uint64_t>(side));
      const auto make = [&] {
        Rng gen(gen_seed);
        return make_random_bipartite_regular(side, delta, gen);
      };
      const EdgeColoredGraph inst =
          store ? store->edge_colored_graph(
                      "bipartite_regular.d" + std::to_string(delta) +
                          ".side" + std::to_string(side) + ".s" +
                          std::to_string(gen_seed),
                      make)
                : make();
      const Graph& g = inst.graph;
      Rng rng(mix_seed(0xE8F, static_cast<std::uint64_t>(delta),
                       static_cast<std::uint64_t>(side)));
      const int girth_bound = girth_upper_bound_sampled(g, 32, rng);

      const auto ids = random_ids(g.num_nodes(),
                                  2 * ceil_log2(static_cast<std::uint64_t>(
                                          g.num_nodes())),
                                  rng);
      RoundLedger det_ledger;
      const BfsKernelCounters det_before = bfs_kernel_counters();
      const auto det = sinkless_orientation_deterministic(g, ids, det_ledger);
      CKP_CHECK(verify_sinkless_orientation(g, det.orient).ok);
      {
        RunRecord rec = reporter.make_record();
        rec.algorithm = "sinkless_det";
        rec.graph_family = "bipartite_regular";
        rec.n = g.num_nodes();
        rec.delta = delta;
        rec.rounds = det.rounds;
        rec.verified = true;
        rec.metric("girth_upper_bound", static_cast<double>(girth_bound));
        add_kernel_metrics(rec, det_before);
        reporter.add(std::move(rec));
      }

      Accumulator rand_rounds, init_sinks;
      for (int s = 0; s < seeds; ++s) {
        RoundLedger rl;
        const auto r = sinkless_orientation_randomized(
            g, static_cast<std::uint64_t>(s) + 1, rl);
        CKP_CHECK(r.completed);
        CKP_CHECK(verify_sinkless_orientation(g, r.orient).ok);
        rand_rounds.add(rl.rounds());
        init_sinks.add(r.sinks_after_claims);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "sinkless_rand";
          rec.graph_family = "bipartite_regular";
          rec.n = g.num_nodes();
          rec.delta = delta;
          rec.seed = static_cast<std::uint64_t>(s) + 1;
          rec.rounds = rl.rounds();
          rec.verified = true;
          rec.metric("sinks_after_claims",
                     static_cast<double>(r.sinks_after_claims));
          reporter.add(std::move(rec));
        }
      }
      t.add_row({Table::cell(delta),
                 Table::cell(static_cast<std::int64_t>(g.num_nodes())),
                 Table::cell(girth_bound), Table::cell(det.rounds),
                 Table::cell(ilog_base(static_cast<std::uint64_t>(delta),
                                       static_cast<std::uint64_t>(g.num_nodes()))),
                 Table::cell(rand_rounds.mean(), 1),
                 Table::cell(init_sinks.mean(), 0),
                 Table::cell(det.rounds / rand_rounds.mean(), 1)});
    }
  }
  reporter.print(t, std::cout);

  std::cout << "\nE8/Table B: the same comparison on *explicit* LPS Ramanujan"
            << " graphs\n(certified girth >= bound — the substitution"
            << " cross-check of DESIGN.md)\n\n";
  {
    Table lps_table({"p", "q", "Δ", "n", "girth bound", "girth<=",
                     "det rounds", "rand rounds"});
    for (const auto& [pp, qq] : std::vector<std::pair<int, int>>{
             {5, 13}, {5, 17}, {5, 29}, {13, 17}}) {
      LpsGraph lps = lps_parameters(pp, qq);
      lps.graph = store ? store->graph("lps.p" + std::to_string(pp) + ".q" +
                                           std::to_string(qq),
                                       [&] {
                                         return make_lps_ramanujan(pp, qq)
                                             .graph;
                                       })
                        : make_lps_ramanujan(pp, qq).graph;
      const Graph& g = lps.graph;
      Rng rng(mix_seed(0xE8B, static_cast<std::uint64_t>(pp),
                       static_cast<std::uint64_t>(qq)));
      const auto ids = random_ids(
          g.num_nodes(),
          2 * ceil_log2(static_cast<std::uint64_t>(g.num_nodes())), rng);
      RoundLedger ld;
      const BfsKernelCounters det_before = bfs_kernel_counters();
      const auto det = sinkless_orientation_deterministic(g, ids, ld);
      CKP_CHECK(verify_sinkless_orientation(g, det.orient).ok);
      {
        RunRecord rec = reporter.make_record();
        rec.algorithm = "sinkless_det";
        rec.graph_family = "lps_ramanujan";
        rec.n = g.num_nodes();
        rec.delta = pp + 1;
        rec.rounds = ld.rounds();
        rec.verified = true;
        rec.metric("girth_lower_bound", lps.girth_lower_bound);
        add_kernel_metrics(rec, det_before);
        reporter.add(std::move(rec));
      }
      Accumulator rand_rounds;
      for (int s2 = 0; s2 < seeds; ++s2) {
        RoundLedger lr;
        const auto r = sinkless_orientation_randomized(
            g, static_cast<std::uint64_t>(s2) + 1, lr);
        CKP_CHECK(r.completed);
        rand_rounds.add(lr.rounds());
      }
      lps_table.add_row(
          {Table::cell(pp), Table::cell(qq), Table::cell(pp + 1),
           Table::cell(static_cast<std::int64_t>(g.num_nodes())),
           Table::cell(lps.girth_lower_bound, 1),
           Table::cell(girth_upper_bound_sampled(g, 32, rng)),
           Table::cell(ld.rounds()), Table::cell(rand_rounds.mean(), 1)});
    }
    reporter.print(lps_table, std::cout);
  }

  std::cout << "\nExpected shape: det rounds track log_Δ n (diameter);"
            << " rand rounds stay O(1)-ish; the ratio widens with n —\n"
            << "the Section IV separation, and girth grows with n"
            << " (substitution validated).\n";
  return 0;
}
