// Experiment E1 — the headline result ("Result 1" of the paper):
// Δ-coloring trees takes Θ(log_Δ n) rounds deterministically but only
// O(log_Δ log n + log* n) rounds randomized — an exponential separation.
//
// For each (n, Δ) this harness measures, on the same complete degree-Δ tree:
//   det      — Theorem 9 (Barenboim–Elkin) q-coloring with q = Δ,
//              the optimal deterministic algorithm (rounds ~ log_Δ n);
//   rand10   — Theorem 10 (ColorBidding + shattering), mean over seeds;
//   rand11   — Theorem 11 (MIS peeling + shattering), mean over seeds.
// All outputs are verified proper Δ-colorings. The expected shape: the det
// column grows linearly in log n while both randomized columns stay nearly
// flat; the ratio det/rand widens without bound.
//
// --packed switches the randomized columns to the engine-native ports
// (algo/delta_coloring_local.hpp): same algorithms, 8-byte packed node
// words on the parallel fast path. That drops the per-node footprint
// enough to raise the default sweep ceiling from 2^20 to 2^22 (4× n).
// Engine rounds count one communication round per engine round, so the
// measured shape is the same; the RNG streams differ from the monolith
// references, so packed runs are cached under their own store keys.
#include <iostream>
#include <optional>

#include "algo/be_tree_coloring.hpp"
#include "algo/delta_coloring_local.hpp"
#include "core/delta_coloring_thm10.hpp"
#include "core/delta_coloring_thm11.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "obs/progress.hpp"
#include "obs/reporter.hpp"
#include "obs/trials.hpp"
#include "store/checkpoint.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));
  const bool packed = flags.get_bool("packed", false);
  const int max_exp =
      static_cast<int>(flags.get_int("max-exp", packed ? 22 : 20));
  BenchReporter reporter(flags, "E1_separation");
  // --store_dir caches generated graphs and commits per-seed RunRecords as
  // trials finish; --resume additionally skips seeds already committed
  // (their records re-emit byte-identically). See DESIGN.md §8.
  const std::string store_dir = flags.get_string("store_dir", "");
  const bool resume = flags.get_bool("resume", false);
  flags.check_unknown();
  std::optional<ArtifactStore> store;
  if (!store_dir.empty()) store.emplace(store_dir);
  const ArtifactStore* store_ptr = store ? &*store : nullptr;
  int seeds_cached_total = 0;

  std::cout << "E1: exponential separation for Δ-coloring trees\n"
            << "det = Thm 9 (q=Δ); rand10 = Thm 10; rand11 = Thm 11"
            << (packed ? " (packed engine ports)" : "")
            << "; rounds averaged over " << seeds << " seeds\n\n";

  Table table({"Δ", "n", "log_Δ n", "det", "rand10", "rand11",
               "det/rand10"});
  // One unit per (Δ, n) instance; per-seed heartbeats inside an instance
  // come from run_trials_checkpointed when a store is configured.
  ProgressMeter meter("E1_separation.sweep",
                      static_cast<std::uint64_t>(
                          3 * (max_exp >= 8 ? (max_exp - 8) / 2 + 1 : 0)));
  for (int delta : {16, 32, 64}) {
    for (int e = 8; e <= max_exp; e += 2) {
      const NodeId n = static_cast<NodeId>(1) << e;
      const std::string instance_key =
          "complete_tree.d" + std::to_string(delta) + ".n" + std::to_string(n);
      const Graph g =
          store_ptr != nullptr
              ? store_ptr->graph(instance_key,
                                 [&] { return make_complete_tree(n, delta); })
              : make_complete_tree(n, delta);

      Rng rng(mix_seed(0xE1, static_cast<std::uint64_t>(n),
                       static_cast<std::uint64_t>(delta)));
      const auto ids = random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n)),
                                  rng);
      RoundLedger det_ledger;
      Timer det_timer;
      const auto det = be_tree_coloring(g, delta, ids, det_ledger);
      const double det_seconds = det_timer.seconds();
      CKP_CHECK(verify_coloring(g, det.colors, delta).ok);
      {
        RunRecord rec = reporter.make_record();
        rec.algorithm = "be_tree_coloring";
        rec.graph_family = "complete_tree";
        rec.n = n;
        rec.delta = delta;
        rec.rounds = det_ledger.rounds();
        rec.wall_seconds = det_seconds;
        rec.verified = true;
        rec.metric("layers", det.layers);
        reporter.add(std::move(rec));
      }

      // Independent seeds fan out across the thread pool; records come back
      // in seed order so tables and JSONL are identical at any --threads.
      // With a store, each seed's records are committed as it finishes and
      // a resumed run skips the committed ones.
      int seeds_cached = 0;
      auto trial_records = run_trials_checkpointed(
          store_ptr, (packed ? "E1P." : "E1.") + instance_key, resume, seeds,
          reporter.threads(),
          [&](int s) -> std::vector<RunRecord> {
            const auto seed = static_cast<std::uint64_t>(s) + 1;
            if (packed) {
              LocalInput in;
              in.graph = &g;
              in.seed = seed;
              EngineOptions opts;
              opts.threads = reporter.threads();
              opts.schedule = EngineSchedule::kWorkStealing;
              Timer t10;
              const auto a = delta_coloring_thm10_local(in, 1 << 20, opts);
              const double sec10 = t10.seconds();
              CKP_CHECK(a.completed);
              CKP_CHECK(verify_coloring(g, a.colors, delta).ok);
              RunRecord rec10 = reporter.make_record();
              rec10.algorithm = "thm10_local";
              rec10.graph_family = "complete_tree";
              rec10.n = n;
              rec10.delta = delta;
              rec10.seed = seed;
              rec10.rounds = a.rounds;
              rec10.wall_seconds = sec10;
              rec10.verified = true;
              rec10.metric("bad_vertices",
                           static_cast<double>(a.bad_vertices));
              rec10.metric("largest_bad_component",
                           static_cast<double>(a.largest_bad_component));
              rec10.metric("engine_bytes_per_node",
                           static_cast<double>(a.engine_bytes) /
                               static_cast<double>(n));
              Timer t11;
              const auto b = delta_coloring_thm11_local(in, 1 << 20, opts);
              const double sec11 = t11.seconds();
              CKP_CHECK(b.completed);
              CKP_CHECK(verify_coloring(g, b.colors, delta).ok);
              RunRecord rec11 = reporter.make_record();
              rec11.algorithm = "thm11_local";
              rec11.graph_family = "complete_tree";
              rec11.n = n;
              rec11.delta = delta;
              rec11.seed = seed;
              rec11.rounds = b.rounds;
              rec11.wall_seconds = sec11;
              rec11.verified = true;
              rec11.metric("phase2_set_size",
                           static_cast<double>(b.phase2_set_size));
              rec11.metric("phase2_largest_component",
                           static_cast<double>(b.phase2_largest_component));
              rec11.metric("engine_bytes_per_node",
                           static_cast<double>(b.engine_bytes) /
                               static_cast<double>(n));
              return {std::move(rec10), std::move(rec11)};
            }
            RoundLedger l10, l11;
            Timer t10;
            const auto a = delta_coloring_thm10(g, delta, seed, l10);
            const double sec10 = t10.seconds();
            CKP_CHECK(verify_coloring(g, a.colors, delta).ok);
            RunRecord rec10 = reporter.make_record();
            rec10.algorithm = "thm10";
            rec10.graph_family = "complete_tree";
            rec10.n = n;
            rec10.delta = delta;
            rec10.seed = seed;
            rec10.rounds = l10.rounds();
            rec10.wall_seconds = sec10;
            rec10.verified = true;
            rec10.trace = a.trace;
            rec10.metric("bad_vertices", static_cast<double>(a.bad_vertices));
            rec10.metric("largest_bad_component",
                         static_cast<double>(a.largest_bad_component));
            Timer t11;
            const auto b = delta_coloring_thm11(g, delta, seed, l11);
            const double sec11 = t11.seconds();
            CKP_CHECK(verify_coloring(g, b.colors, delta).ok);
            RunRecord rec11 = reporter.make_record();
            rec11.algorithm = "thm11";
            rec11.graph_family = "complete_tree";
            rec11.n = n;
            rec11.delta = delta;
            rec11.seed = seed;
            rec11.rounds = l11.rounds();
            rec11.wall_seconds = sec11;
            rec11.verified = true;
            rec11.trace = b.trace;
            rec11.metric("phase2_set_size",
                         static_cast<double>(b.phase2_set_size));
            rec11.metric("phase2_largest_component",
                         static_cast<double>(b.phase2_largest_component));
            return {std::move(rec10), std::move(rec11)};
          },
          &seeds_cached);
      seeds_cached_total += seeds_cached;
      Accumulator r10, r11;
      for (RunRecord& rec : trial_records) {
        (rec.algorithm.compare(0, 5, "thm10") == 0 ? r10 : r11)
            .add(rec.rounds);
        reporter.add(std::move(rec));
      }
      table.add_row({Table::cell(delta), Table::cell(static_cast<std::int64_t>(n)),
                     Table::cell(ilog_base(static_cast<std::uint64_t>(delta),
                                           static_cast<std::uint64_t>(n))),
                     Table::cell(det_ledger.rounds()), Table::cell(r10.mean(), 1),
                     Table::cell(r11.mean(), 1),
                     Table::cell(det_ledger.rounds() / r10.mean(), 2)});
      meter.step();
    }
  }
  meter.finish();
  reporter.print(table, std::cout);
  if (store_ptr != nullptr) {
    std::cout << "\n[store] " << (resume ? "resume: " : "")
              << seeds_cached_total << " seeds served from "
              << store_ptr->dir() << '\n';
  }
  std::cout << "\nExpected shape: det grows with log_Δ n; rand columns stay"
            << " nearly flat; det/rand widens as n grows.\n";
  return 0;
}
