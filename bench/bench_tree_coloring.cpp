// Experiment E3 — Theorem 9 (Barenboim–Elkin): q-coloring forests in
// O(log_q n + log* n) rounds.
//
// Sweeps q and n on complete degree-q trees and uniform random trees,
// reporting layers (the log_q n term) and total rounds. The documented q²
// implementation factor (DESIGN.md) is visible as rounds/layers ≈ q + O(1).
#include <iostream>

#include "algo/be_tree_coloring.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "obs/reporter.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 18));
  BenchReporter reporter(flags, "E3_tree_coloring");
  flags.check_unknown();

  std::cout << "E3: Theorem 9 q-coloring of trees\n\n";
  Table t({"family", "q", "n", "layers", "log_q n", "rounds"});
  for (int q : {3, 4, 8, 16}) {
    for (int e = 10; e <= max_exp; e += 4) {
      const NodeId n = static_cast<NodeId>(1) << e;
      Rng rng(mix_seed(0xE3, static_cast<std::uint64_t>(n),
                       static_cast<std::uint64_t>(q)));
      const auto ids =
          random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n)), rng);
      for (const char* family : {"complete", "random"}) {
        const Graph g = family == std::string("complete")
                            ? make_complete_tree(n, q)
                            : make_random_tree(n, q, rng);
        RoundLedger ledger;
        const auto result = be_tree_coloring(g, q, ids, ledger);
        CKP_CHECK(verify_coloring(g, result.colors, q).ok);
        {
          RunRecord rec = reporter.make_record();
          rec.algorithm = "be_tree_coloring";
          rec.graph_family = family == std::string("complete")
                                 ? "complete_tree"
                                 : "random_tree";
          rec.n = n;
          rec.delta = q;
          rec.rounds = result.rounds;
          rec.verified = true;
          rec.metric("layers", static_cast<double>(result.layers));
          reporter.add(std::move(rec));
        }
        t.add_row({family, Table::cell(q),
                   Table::cell(static_cast<std::int64_t>(n)),
                   Table::cell(result.layers),
                   Table::cell(ilog_base(static_cast<std::uint64_t>(q),
                                         static_cast<std::uint64_t>(n))),
                   Table::cell(result.rounds)});
      }
    }
  }
  reporter.print(t, std::cout);
  std::cout << "\nExpected shape: layers track log_q n; rounds ="
            << " O(q·layers + q² + log* n) (the q² factor is the documented\n"
            << "within-layer schedule cost; O(log_q n) for constant q).\n";
  return 0;
}
