// Experiment E11 — simulator infrastructure microbenchmarks
// (google-benchmark). Rounds are the scientific metric of every other
// experiment; this binary reports the wall-clock cost of the simulation
// substrate itself: graph construction, one engine round, ball collection,
// and a full Luby run.
//
// Unlike the table-printing benches this one is driven by google-benchmark,
// whose flag parser rejects unknown flags — so a custom main() peels
// --json_out off argv first, then captures every finished run through a
// reporter subclass and streams it as RunRecord JSON Lines.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "algo/mis_luby.hpp"
#include "algo/linial.hpp"
#include "graph/power.hpp"
#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "local/engine.hpp"
#include "local/ids.hpp"
#include "obs/metrics.hpp"
#include "obs/reporter.hpp"
#include "obs/resource.hpp"
#include "obs/run_record.hpp"
#include "obs/trials.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ckp;

void BM_GraphConstruction(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    Rng rng(42);
    benchmark::DoNotOptimize(make_random_regular(n, 4, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GraphConstruction)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_CompleteTree(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_complete_tree(n, 8));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompleteTree)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_LubyFullRun(benchmark::State& state) {
  Rng rng(7);
  const Graph g = make_random_regular(static_cast<NodeId>(state.range(0)), 6,
                                      rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    LocalInput in;
    in.graph = &g;
    in.seed = seed++;
    benchmark::DoNotOptimize(mis_luby(in));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LubyFullRun)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_LinialColoring(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = make_complete_tree(n, 8);
  Rng rng(9);
  const auto ids = random_ids(n, 40, rng);
  for (auto _ : state) {
    RoundLedger ledger;
    benchmark::DoNotOptimize(linial_coloring(g, ids, 8, ledger));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinialColoring)->Arg(1 << 10)->Arg(1 << 14);

void BM_BallCollection(benchmark::State& state) {
  const Graph g = make_complete_tree(1 << 16, 4);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ball(g, v, static_cast<int>(state.range(0))));
    v = (v + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_BallCollection)->Arg(2)->Arg(4)->Arg(8);

// Sequential-vs-parallel engine comparison. The algorithm does nontrivial
// per-neighbor mixing work every round and never halts early, so the rounds
// divide evenly and the threads sweep isolates the engine's parallel
// scaling. Args: {n, threads}; threads=1 is the sequential baseline.
struct MixFlood {
  static constexpr int kRounds = 12;

  struct State {
    std::uint64_t acc = 0;
    int round = 0;
  };

  State init(const NodeEnv& env) {
    std::uint64_t s = env.id + 0x9e3779b97f4a7c15ULL;
    return {splitmix64(s), 0};
  }

  bool step(State& self, const NodeEnv&,
            std::span<const State* const> nbrs) {
    std::uint64_t acc = self.acc;
    for (const State* nb : nbrs) {
      std::uint64_t mixer = acc ^ nb->acc;
      acc += splitmix64(mixer);
    }
    self.acc = acc;
    return ++self.round >= kRounds;
  }
};

void BM_EngineRoundsThreads(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Rng rng(11);
  const Graph g = make_random_regular(n, 8, rng);
  LocalInput in;
  in.graph = &g;
  in.ids = sequential_ids(n);
  for (auto _ : state) {
    MixFlood algo;
    benchmark::DoNotOptimize(
        run_local(in, algo, MixFlood::kRounds + 1, nullptr, threads));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          MixFlood::kRounds);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_EngineRoundsThreads)
    ->Args({1 << 17, 1})
    ->Args({1 << 17, 2})
    ->Args({1 << 17, 4})
    ->Args({1 << 17, 8});

// Multi-seed fan-out: full Luby runs per seed, sequential vs pooled. The
// per-trial engine degrades to one thread inside the fan-out, so this
// measures the run_trials layer the multi-seed benches sit on.
void BM_TrialFanout(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kSeeds = 8;
  Rng rng(7);
  const Graph g = make_random_regular(1 << 14, 6, rng);
  for (auto _ : state) {
    const auto records =
        run_trials(kSeeds, threads, [&](int s) -> std::vector<RunRecord> {
          LocalInput in;
          in.graph = &g;
          in.seed = static_cast<std::uint64_t>(s) + 1;
          const auto mis = mis_luby(in);
          RunRecord rec;
          rec.rounds = mis.rounds;
          return {std::move(rec)};
        });
    benchmark::DoNotOptimize(records.size());
  }
  state.SetItemsProcessed(state.iterations() * kSeeds);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_TrialFanout)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Console output as usual, plus one RunRecord per finished benchmark run.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<RunRecord> records;

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      RunRecord rec;
      rec.bench = "E11_engine";
      rec.algorithm = run.benchmark_name();
      if (run.iterations > 0) {
        rec.wall_seconds =
            run.real_accumulated_time / static_cast<double>(run.iterations);
        rec.metric("cpu_seconds_per_iter",
                   run.cpu_accumulated_time /
                       static_cast<double>(run.iterations));
      }
      rec.metric("iterations", static_cast<double>(run.iterations));
      for (const auto& kv : run.counters) {
        rec.metric(kv.first, static_cast<double>(kv.second));
      }
      // Resource telemetry per record: peak RSS so far and the pool
      // utilization of the benchmarks since the previous report batch.
      add_resource_run_metrics(rec, pool_before_);
      records.push_back(std::move(rec));
    }
    pool_before_ = shared_pool_stats();
  }

 private:
  ThreadPoolStats pool_before_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string metrics_path;
  std::vector<char*> bargs;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    constexpr std::string_view kJsonOut = "--json_out=";
    constexpr std::string_view kMetricsOut = "--metrics_out=";
    constexpr std::string_view kThreads = "--threads=";
    if (arg.rfind(kJsonOut, 0) == 0) {
      json_path = std::string(arg.substr(kJsonOut.size()));
    } else if (arg.rfind(kMetricsOut, 0) == 0) {
      metrics_path = std::string(arg.substr(kMetricsOut.size()));
    } else if (arg.rfind(kThreads, 0) == 0) {
      // Default for runs that don't sweep threads explicitly (the
      // comparison cases pass their own count to run_local).
      ckp::set_default_engine_threads(
          std::atoi(std::string(arg.substr(kThreads.size())).c_str()));
    } else {
      bargs.push_back(argv[i]);
    }
  }
  int bargc = static_cast<int>(bargs.size());
  benchmark::Initialize(&bargc, bargs.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, bargs.data())) return 1;

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    ckp::JsonlWriter out(json_path);
    for (const ckp::RunRecord& rec : reporter.records) out.write(rec);
    std::cout << "[obs] wrote " << out.rows_written() << " run records to "
              << json_path << "\n";
  }
  if (!metrics_path.empty()) {
    ckp::MetricsRegistry metrics;
    ckp::record_resource_metrics(metrics);
    std::ofstream out(metrics_path, std::ios::trunc);
    CKP_CHECK_MSG(out.good(),
                  "cannot open metrics output file " << metrics_path);
    out << metrics.to_json() << '\n';
    std::cout << "[obs] wrote metrics snapshot to " << metrics_path << "\n";
  }
  return 0;
}
