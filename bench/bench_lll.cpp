// Experiment E12 — the distributed constructive Lovász Local Lemma.
//
// Section IV's lower bounds were the first for the distributed LLL (sinkless
// orientation is the canonical tight instance). This harness runs parallel
// Moser–Tardos on (a) sinkless orientation over Δ-regular graphs — note the
// polynomial criterion p·e·D < 1 (here d²·e/2^d < 1) fails for small Δ yet
// resampling still converges, part of why the problem needed new lower-bound
// machinery — and (b) random k-uniform hypergraph 2-coloring across
// densities.
#include <cmath>
#include <iostream>

#include "core/lll.hpp"
#include "graph/regular.hpp"
#include "lcl/verify_orientation.hpp"
#include "obs/reporter.hpp"
#include "obs/trials.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckp;
  Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 14));
  BenchReporter reporter(flags, "E12_lll");
  flags.check_unknown();

  std::cout << "E12/Table A: Moser–Tardos for sinkless orientation\n"
            << "criterion = e·d²/2^d (the symmetric LLL test; <1 required by"
            << " the classic theorem)\n\n";
  {
    Table t({"d", "n", "criterion", "iterations", "rounds", "resampled"});
    for (int d : {3, 4, 6, 8}) {
      for (int e = 10; e <= max_exp; e += 2) {
        const NodeId n = static_cast<NodeId>(1) << e;
        Rng rng(mix_seed(0xEC, static_cast<std::uint64_t>(d),
                         static_cast<std::uint64_t>(n)));
        const Graph g = make_random_regular(n, d, rng);
        const auto inst = sinkless_orientation_lll(g);
        auto trial_records = run_trials(
            seeds, reporter.threads(), [&](int s) -> std::vector<RunRecord> {
              RoundLedger ledger;
              const auto r = moser_tardos_parallel(
                  inst, static_cast<std::uint64_t>(s) + 1, ledger);
              CKP_CHECK(r.completed);
              RunRecord rec = reporter.make_record();
              rec.algorithm = "moser_tardos_sinkless";
              rec.graph_family = "random_regular";
              rec.n = n;
              rec.delta = d;
              rec.seed = static_cast<std::uint64_t>(s) + 1;
              rec.rounds = ledger.rounds();
              rec.verified = true;
              rec.metric("iterations", static_cast<double>(r.iterations));
              rec.metric("resampled_events",
                         static_cast<double>(r.resampled_events));
              return {std::move(rec)};
            });
        Accumulator iters, rounds, resampled;
        for (RunRecord& rec : trial_records) {
          iters.add(metric_or(rec, "iterations", 0.0));
          rounds.add(rec.rounds);
          resampled.add(metric_or(rec, "resampled_events", 0.0));
          reporter.add(std::move(rec));
        }
        const double criterion =
            std::exp(1.0) * d * d / std::pow(2.0, static_cast<double>(d));
        t.add_row({Table::cell(d), Table::cell(static_cast<std::int64_t>(n)),
                   Table::cell(criterion, 3), Table::cell(iters.mean(), 1),
                   Table::cell(rounds.mean(), 1),
                   Table::cell(resampled.mean(), 0)});
      }
    }
    reporter.print(t, std::cout);
  }

  std::cout << "\nE12/Table B: Moser–Tardos for hypergraph 2-coloring\n\n";
  {
    Table t({"k", "vars", "edges", "iterations", "rounds"});
    Rng rng(0xEC2);
    for (const auto& [k, density_num, density_den] :
         std::vector<std::tuple<int, int, int>>{
             {3, 1, 3}, {4, 2, 3}, {5, 1, 1}, {6, 3, 2}}) {
      for (int vars : {512, 2048}) {
        const int edges = vars * density_num / density_den;
        const auto h = make_random_hypergraph(vars, edges, k, rng);
        const auto inst = hypergraph_two_coloring_lll(h);
        auto trial_records = run_trials(
            seeds, reporter.threads(), [&](int s) -> std::vector<RunRecord> {
              RoundLedger ledger;
              const auto r = moser_tardos_parallel(
                  inst, static_cast<std::uint64_t>(s) + 100, ledger);
              CKP_CHECK(r.completed);
              RunRecord rec = reporter.make_record();
              rec.algorithm = "moser_tardos_hypergraph";
              rec.graph_family = "random_hypergraph";
              rec.n = static_cast<NodeId>(vars);
              rec.seed = static_cast<std::uint64_t>(s) + 100;
              rec.rounds = ledger.rounds();
              rec.verified = true;
              rec.metric("k", static_cast<double>(k));
              rec.metric("edges", static_cast<double>(edges));
              rec.metric("iterations", static_cast<double>(r.iterations));
              return {std::move(rec)};
            });
        Accumulator iters, rounds;
        for (RunRecord& rec : trial_records) {
          iters.add(metric_or(rec, "iterations", 0.0));
          rounds.add(rec.rounds);
          reporter.add(std::move(rec));
        }
        t.add_row({Table::cell(k), Table::cell(vars), Table::cell(edges),
                   Table::cell(iters.mean(), 1), Table::cell(rounds.mean(), 1)});
      }
    }
    reporter.print(t, std::cout);
  }
  std::cout << "\nExpected shape: iterations stay O(log n)-ish and shrink as"
            << " the criterion improves (larger d or k);\nconvergence at"
            << " criterion > 1 shows the classic LLL condition is not tight"
            << " for sinkless orientation.\n";
  return 0;
}
