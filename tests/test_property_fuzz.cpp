// Randomized property tests ("fuzzing" the theory machinery): random LCL
// descriptions through the cycle classifier + solver, and random bipartite
// problems through the round-elimination operator. These catch the cases no
// hand-picked catalog covers.
#include <gtest/gtest.h>

#include "core/cycle_lcl.hpp"
#include "core/roundelim.hpp"
#include "graph/generators.hpp"
#include "local/ids.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace ckp {
namespace {

CycleLcl random_cycle_lcl(Rng& rng) {
  CycleLcl p;
  p.num_labels = 2 + static_cast<int>(rng.next_below(2));  // 2 or 3
  p.window = 2 + static_cast<int>(rng.next_below(2));      // 2 or 3
  const int total = static_cast<int>(ipow_sat(
      static_cast<std::uint64_t>(p.num_labels),
      static_cast<unsigned>(p.window)));
  // Include each window with probability 1/2; regenerate if empty.
  do {
    p.allowed.clear();
    for (int w = 0; w < total; ++w) {
      if (!rng.next_bit()) continue;
      std::vector<int> win(static_cast<std::size_t>(p.window));
      int x = w;
      for (int i = p.window - 1; i >= 0; --i) {
        win[static_cast<std::size_t>(i)] = x % p.num_labels;
        x /= p.num_labels;
      }
      p.allowed.push_back(std::move(win));
    }
  } while (p.allowed.empty());
  p.validate();
  return p;
}

TEST(FuzzCycleLcl, ClassifierAndSolverAgree) {
  Rng rng(2201);
  int solvable_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto lcl = random_cycle_lcl(rng);
    const auto cls = classify_cycle_lcl(lcl);
    // Solve on two cycle sizes; consistency requirements:
    //  * kUnsolvable => solver reports infeasible;
    //  * kConstant/kLogStar => solver succeeds and output validates;
    //  * kGlobal => if the solver reports feasible, the output validates.
    for (const NodeId n : {48, 120}) {
      const Graph g = make_cycle(n);
      const auto ids = random_ids(
          n, 2 * ceil_log2(static_cast<std::uint64_t>(n)), rng);
      RoundLedger ledger;
      const auto r = solve_cycle_lcl(lcl, g, ids, ledger);
      switch (cls.complexity) {
        case CycleComplexity::kUnsolvable:
          EXPECT_FALSE(r.feasible) << "trial " << trial;
          break;
        case CycleComplexity::kConstant:
        case CycleComplexity::kLogStar:
          ASSERT_TRUE(r.feasible) << "trial " << trial;
          EXPECT_TRUE(cycle_labeling_valid(lcl, r.labels))
              << "trial " << trial << " n=" << n;
          ++solvable_seen;
          break;
        case CycleComplexity::kGlobal:
          if (r.feasible) {
            EXPECT_TRUE(cycle_labeling_valid(lcl, r.labels))
                << "trial " << trial << " n=" << n;
          }
          break;
      }
    }
  }
  // The random ensemble must actually exercise the solvable paths.
  EXPECT_GT(solvable_seen, 10);
}

TEST(FuzzCycleLcl, ConstantClassImpliesMonochromaticWindow) {
  Rng rng(2203);
  for (int trial = 0; trial < 80; ++trial) {
    const auto lcl = random_cycle_lcl(rng);
    const auto cls = classify_cycle_lcl(lcl);
    bool has_mono = false;
    for (int l = 0; l < lcl.num_labels; ++l) {
      const std::vector<int> mono(static_cast<std::size_t>(lcl.window), l);
      if (std::find(lcl.allowed.begin(), lcl.allowed.end(), mono) !=
          lcl.allowed.end()) {
        has_mono = true;
      }
    }
    EXPECT_EQ(cls.complexity == CycleComplexity::kConstant, has_mono)
        << "trial " << trial;
  }
}

BipartiteProblem random_bipartite_problem(Rng& rng) {
  BipartiteProblem p;
  p.active_degree = 2 + static_cast<int>(rng.next_below(2));
  p.passive_degree = 2;
  const int labels = 2;
  p.label_names = {"a", "b"};
  auto random_configs = [&](int degree) {
    std::set<std::vector<int>> out;
    // Enumerate all multisets of size `degree` over 2 labels: degree+1 of
    // them (by count of label 1); include each with probability 1/2.
    do {
      out.clear();
      for (int ones = 0; ones <= degree; ++ones) {
        if (!rng.next_bit()) continue;
        std::vector<int> cfg(static_cast<std::size_t>(degree), 0);
        for (int i = 0; i < ones; ++i) {
          cfg[static_cast<std::size_t>(degree - 1 - i)] = 1;
        }
        std::sort(cfg.begin(), cfg.end());
        out.insert(cfg);
      }
    } while (out.empty());
    return out;
  };
  p.active = random_configs(p.active_degree);
  p.passive = random_configs(p.passive_degree);
  p.validate();
  return p;
}

TEST(FuzzRoundElim, PreservesSolvabilityForward) {
  // If Π is 0-round solvable, R(Π) must be too (elimination can only make
  // problems easier).
  Rng rng(2207);
  int solvable_seen = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const auto p = random_bipartite_problem(rng);
    if (!zero_round_solvable(p)) continue;
    ++solvable_seen;
    BipartiteProblem r;
    try {
      r = round_eliminate(p);
    } catch (const CheckFailure&) {
      continue;  // empty elimination: skip (p may be vacuous)
    }
    EXPECT_TRUE(zero_round_solvable(r)) << "trial " << trial;
  }
  EXPECT_GT(solvable_seen, 10);
}

TEST(FuzzRoundElim, StructuralInvariants) {
  Rng rng(2213);
  for (int trial = 0; trial < 80; ++trial) {
    const auto p = random_bipartite_problem(rng);
    BipartiteProblem r;
    try {
      r = round_eliminate(p);
    } catch (const CheckFailure&) {
      continue;
    }
    EXPECT_EQ(r.active_degree, p.passive_degree);
    EXPECT_EQ(r.passive_degree, p.active_degree);
    EXPECT_GE(r.num_labels(), 1);
    EXPECT_FALSE(r.active.empty());
    // Isomorphism is reflexive on the output.
    EXPECT_TRUE(problems_isomorphic(r, r));
  }
}

// A wider random ensemble than random_bipartite_problem: 2-4 labels,
// degrees 2-3 on both sides, arbitrary non-empty configuration sets. This
// is the differential-fuzz generator for the packed kernel vs the seed
// reference implementation.
BipartiteProblem random_wide_problem(Rng& rng) {
  BipartiteProblem p;
  p.active_degree = 2 + static_cast<int>(rng.next_below(2));
  p.passive_degree = 2 + static_cast<int>(rng.next_below(2));
  const int labels = 2 + static_cast<int>(rng.next_below(3));
  for (int l = 0; l < labels; ++l) {
    p.label_names.push_back(std::string(1, static_cast<char>('a' + l)));
  }
  auto random_configs = [&](int degree) {
    std::set<std::vector<int>> out;
    do {
      out.clear();
      enumerate_multisets(labels, degree, [&](const std::vector<int>& cfg) {
        if (rng.next_bit()) out.insert(cfg);
      });
    } while (out.empty());
    return out;
  };
  p.active = random_configs(p.active_degree);
  p.passive = random_configs(p.passive_degree);
  p.validate();
  return p;
}

TEST(FuzzRoundElim, PackedKernelMatchesReference) {
  // The packed kernel must agree with the seed reference implementation
  // configuration-for-configuration — same label names, same active and
  // passive sets — and both must fail on exactly the same inputs (the
  // empty-elimination CheckFailure).
  Rng rng(2221);
  int compared = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto p = random_wide_problem(rng);
    BipartiteProblem opt;
    bool opt_threw = false;
    try {
      opt = round_eliminate(p);
    } catch (const CheckFailure&) {
      opt_threw = true;
    }
    BipartiteProblem ref;
    bool ref_threw = false;
    try {
      ref = round_eliminate_reference(p);
    } catch (const CheckFailure&) {
      ref_threw = true;
    }
    EXPECT_EQ(opt_threw, ref_threw) << "trial " << trial;
    if (opt_threw || ref_threw) continue;
    ++compared;
    EXPECT_TRUE(problems_identical(opt, ref)) << "trial " << trial;
  }
  EXPECT_GT(compared, 50);
}

TEST(FuzzRoundElim, OutputInvariantUnderThreadCount) {
  // Bit-identical output at 1, 2, and 8 threads: the parallel fan-out
  // merges per-chunk buffers in chunk order, so the thread count must be
  // unobservable in the result.
  Rng rng(2237);
  int compared = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const auto p = random_wide_problem(rng);
    BipartiteProblem base;
    try {
      base = round_eliminate(p, 64, 1);
    } catch (const CheckFailure&) {
      continue;
    }
    ++compared;
    for (int threads : {2, 8}) {
      EXPECT_TRUE(problems_identical(base, round_eliminate(p, 64, threads)))
          << "trial " << trial << " threads " << threads;
    }
  }
  EXPECT_GT(compared, 20);
}

}  // namespace
}  // namespace ckp
