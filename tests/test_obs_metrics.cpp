#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "local/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/run_record.hpp"
#include "obs/trace_span.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace ckp {
namespace {

// ---- JSON writer / parser round trips ----

TEST(Json, WriterProducesParseableObject) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("a \"quoted\" \\ string\nwith newline");
  w.key("count").value(std::int64_t{-42});
  w.key("ratio").value(1.5);
  w.key("flag").value(true);
  w.key("nothing").null();
  w.key("list").begin_array().value(1).value(2).value(3).end_array();
  w.key("nested").begin_object().key("x").value(0).end_object();
  w.end_object();

  const JsonValue v = json_parse(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").as_string(), "a \"quoted\" \\ string\nwith newline");
  EXPECT_EQ(v.at("count").as_number(), -42.0);
  EXPECT_EQ(v.at("ratio").as_number(), 1.5);
  EXPECT_TRUE(v.at("flag").boolean);
  EXPECT_TRUE(v.at("nothing").is_null());
  ASSERT_TRUE(v.at("list").is_array());
  EXPECT_EQ(v.at("list").array.size(), 3u);
  EXPECT_EQ(v.at("nested").at("x").as_number(), 0.0);
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  const JsonValue v = json_parse(w.str());
  ASSERT_EQ(v.array.size(), 2u);
  EXPECT_TRUE(v.array[0].is_null());
  EXPECT_TRUE(v.array[1].is_null());
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), CheckFailure);
  EXPECT_THROW(json_parse("{"), CheckFailure);
  EXPECT_THROW(json_parse("{\"a\":1,}"), CheckFailure);
  EXPECT_THROW(json_parse("[1 2]"), CheckFailure);
  EXPECT_THROW(json_parse("{\"a\":1} trailing"), CheckFailure);
  EXPECT_THROW(json_parse("'single'"), CheckFailure);
}

// ---- Histogram semantics ----

TEST(Histogram, BucketPlacementAndOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.counts().size(), 4u);  // 3 bounds + overflow
  h.add(0.5);   // <= 1       -> bucket 0
  h.add(1.0);   // == bound   -> bucket 0 (first bound >= sample)
  h.add(1.5);   // <= 2       -> bucket 1
  h.add(4.0);   // == bound   -> bucket 2
  h.add(100.0); // overflow
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.summary().count(), 5u);
  EXPECT_DOUBLE_EQ(h.summary().max(), 100.0);
}

TEST(Histogram, RejectsUnsortedOrEmptyBounds) {
  EXPECT_THROW(Histogram({4.0, 1.0, 2.0}), CheckFailure);
  EXPECT_THROW(Histogram({}), CheckFailure);
}

TEST(Histogram, PowersOfTwoShape) {
  const auto bounds = Histogram::powers_of_two(5);
  EXPECT_EQ(bounds, (std::vector<double>{1.0, 2.0, 4.0, 8.0, 16.0}));
}

// ---- Histogram serialization alignment ----
//
// The serialized form is read back by ckp_bench_diff and ad-hoc analysis
// scripts, which index counts[i] against bounds[i]. These tests pin the
// alignment contract: counts has exactly one more entry than bounds (the
// overflow bucket), the pairing survives a write→parse round trip, and the
// bucket totals reconcile with the summary count.

TEST(Histogram, SerializedBoundsAndCountsStayAligned) {
  Histogram h({1.0, 2.0, 4.0});
  h.add(0.5);
  h.add(1.0);
  h.add(3.0);
  h.add(99.0);  // overflow

  JsonWriter w;
  h.write_json(w);
  const JsonValue v = json_parse(w.str());
  ASSERT_TRUE(v.is_object());
  const auto& bounds = v.at("bounds").array;
  const auto& counts = v.at("counts").array;
  ASSERT_EQ(bounds.size(), 3u);
  ASSERT_EQ(counts.size(), bounds.size() + 1);  // trailing overflow bucket

  // Every serialized bucket pairs with the in-memory one, index for index.
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i].as_number(), h.upper_bounds()[i]);
  }
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto c = static_cast<std::uint64_t>(counts[i].as_number());
    EXPECT_EQ(c, h.counts()[i]) << "bucket " << i;
    total += c;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(v.at("count").as_number()));
  EXPECT_DOUBLE_EQ(v.at("min").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(v.at("max").as_number(), 99.0);
}

TEST(Histogram, EmptyHistogramSerializesAlignedAndWithoutSummary) {
  Histogram h({1.0, 10.0});
  JsonWriter w;
  h.write_json(w);
  const JsonValue v = json_parse(w.str());
  ASSERT_EQ(v.at("counts").array.size(), v.at("bounds").array.size() + 1);
  for (const JsonValue& c : v.at("counts").array) {
    EXPECT_EQ(c.as_number(), 0.0);
  }
  EXPECT_EQ(v.at("count").as_number(), 0.0);
  // min/mean/max of zero samples are meaningless; the writer must omit them
  // rather than emit NaN-turned-null.
  EXPECT_EQ(v.find("mean"), nullptr);
  EXPECT_EQ(v.find("min"), nullptr);
  EXPECT_EQ(v.find("max"), nullptr);
}

TEST(Histogram, ParsedBoundsRebuildAnIdenticallyBucketingHistogram) {
  // Alignment across a serialize→parse→reconstruct cycle: a histogram built
  // from the parsed bounds places boundary samples into the same buckets.
  Histogram original(Histogram::powers_of_two(4));  // {1,2,4,8}
  JsonWriter w;
  original.write_json(w);
  const JsonValue v = json_parse(w.str());
  std::vector<double> parsed_bounds;
  for (const JsonValue& b : v.at("bounds").array) {
    parsed_bounds.push_back(b.as_number());
  }
  Histogram rebuilt(parsed_bounds);
  const double samples[] = {0.0, 1.0, 2.0, 4.0, 8.0, 8.5};
  for (const double s : samples) {
    original.add(s);
    rebuilt.add(s);
  }
  EXPECT_EQ(rebuilt.counts(), original.counts());
}

// ---- MetricsRegistry semantics ----

TEST(MetricsRegistry, CountersAccumulateGaugesOverwrite) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("c"), 0.0);  // absent reads as zero
  reg.add("c");
  reg.add("c", 2.5);
  EXPECT_DOUBLE_EQ(reg.counter("c"), 3.5);
  reg.set("g", 7.0);
  reg.set("g", 9.0);
  EXPECT_DOUBLE_EQ(reg.gauge("g"), 9.0);
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, HistogramGetOrCreateChecksBounds) {
  MetricsRegistry reg;
  auto& h = reg.histogram("h", {1.0, 2.0});
  h.add(1.5);
  auto& again = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&h, &again);
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), CheckFailure);
  EXPECT_NE(reg.find_histogram("h"), nullptr);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);
}

TEST(MetricsRegistry, SnapshotFlattensHistograms) {
  MetricsRegistry reg;
  reg.add("runs", 2);
  reg.set("last", 4.0);
  reg.histogram("sizes", {10.0, 100.0}).add(5.0);
  reg.histogram("sizes", {10.0, 100.0}).add(50.0);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 6u);  // 1 counter + 1 gauge + 4 histogram scalars
  EXPECT_EQ(snap[0].first, "runs");
  EXPECT_DOUBLE_EQ(snap[0].second, 2.0);
  EXPECT_EQ(snap[1].first, "last");
  EXPECT_EQ(snap[2].first, "sizes.count");
  EXPECT_DOUBLE_EQ(snap[2].second, 2.0);
  EXPECT_EQ(snap[3].first, "sizes.mean");
  EXPECT_DOUBLE_EQ(snap[3].second, 27.5);
  EXPECT_EQ(snap[4].first, "sizes.min");
  EXPECT_EQ(snap[5].first, "sizes.max");
}

TEST(MetricsRegistry, ToJsonParses) {
  MetricsRegistry reg;
  reg.add("engine.rounds", 12);
  reg.set("engine.halted_fraction", 1.0);
  reg.histogram("engine.active_nodes", Histogram::powers_of_two(4)).add(3.0);

  const JsonValue v = json_parse(reg.to_json());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("counters").at("engine.rounds").as_number(), 12.0);
  EXPECT_EQ(v.at("gauges").at("engine.halted_fraction").as_number(), 1.0);
  const JsonValue& h = v.at("histograms").at("engine.active_nodes");
  EXPECT_EQ(h.at("counts").array.size(), 5u);  // 4 bounds + overflow
}

// ---- Trace serialization ----

TEST(Trace, ToJsonRoundTrips) {
  Trace trace;
  trace.record("phase1", 10, 3, 0.25);
  trace.record("phase2", 0);  // zero detail/seconds omitted
  EXPECT_EQ(trace.total_rounds(), 10);
  EXPECT_DOUBLE_EQ(trace.total_seconds(), 0.25);

  const JsonValue v = json_parse(trace.to_json());
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array.size(), 2u);
  EXPECT_EQ(v.array[0].at("name").as_string(), "phase1");
  EXPECT_EQ(v.array[0].at("rounds").as_number(), 10.0);
  EXPECT_EQ(v.array[0].at("detail").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(v.array[0].at("seconds").as_number(), 0.25);
  EXPECT_EQ(v.array[1].find("detail"), nullptr);
  EXPECT_EQ(v.array[1].find("seconds"), nullptr);
}

// ---- RunRecord serialization ----

TEST(RunRecord, ToJsonCarriesAllFields) {
  RunRecord rec;
  rec.bench = "E1_separation";
  rec.algorithm = "thm10";
  rec.graph_family = "complete_tree";
  rec.n = 1024;
  rec.delta = 16;
  rec.seed = 7;
  rec.rounds = 42;
  rec.wall_seconds = 0.125;
  rec.verified = true;
  rec.trace.record("phase1", 40, 0, 0.1);
  rec.metric("bad_vertices", 3.0);
  rec.metric("bad_vertices", 5.0);  // upsert, not duplicate
  rec.metric("ratio", 0.5);

  const std::string line = rec.to_json();
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line

  const JsonValue v = json_parse(line);
  EXPECT_EQ(v.at("bench").as_string(), "E1_separation");
  EXPECT_EQ(v.at("algorithm").as_string(), "thm10");
  EXPECT_EQ(v.at("graph_family").as_string(), "complete_tree");
  EXPECT_EQ(v.at("n").as_number(), 1024.0);
  EXPECT_EQ(v.at("delta").as_number(), 16.0);
  EXPECT_EQ(v.at("seed").as_number(), 7.0);
  EXPECT_EQ(v.at("rounds").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(v.at("wall_seconds").as_number(), 0.125);
  EXPECT_TRUE(v.at("verified").boolean);
  ASSERT_TRUE(v.at("trace").is_array());
  EXPECT_EQ(v.at("trace").array[0].at("name").as_string(), "phase1");
  EXPECT_DOUBLE_EQ(v.at("metrics").at("bad_vertices").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(v.at("metrics").at("ratio").as_number(), 0.5);
}

TEST(RunRecord, AbsorbFoldsRegistrySnapshot) {
  MetricsRegistry reg;
  reg.add("engine.rounds", 9);
  reg.set("engine.all_halted", 1.0);
  RunRecord rec;
  rec.absorb(reg);
  const JsonValue v = json_parse(rec.to_json());
  EXPECT_EQ(v.at("metrics").at("engine.rounds").as_number(), 9.0);
  EXPECT_EQ(v.at("metrics").at("engine.all_halted").as_number(), 1.0);
}

TEST(JsonlWriter, EveryLineParses) {
  const std::string path = ::testing::TempDir() + "/obs_records.jsonl";
  {
    JsonlWriter out(path);
    ASSERT_TRUE(out.enabled());
    for (int i = 0; i < 3; ++i) {
      RunRecord rec;
      rec.bench = "E_test";
      rec.algorithm = "algo" + std::to_string(i);
      rec.n = static_cast<std::uint64_t>(100 + i);
      rec.rounds = i;
      out.write(rec);
    }
    EXPECT_EQ(out.rows_written(), 3u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    const JsonValue v = json_parse(line);
    EXPECT_EQ(v.at("bench").as_string(), "E_test");
    EXPECT_EQ(v.at("n").as_number(), 100.0 + lines);
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(JsonlWriter, EmptyPathIsNoopSink) {
  JsonlWriter out("");
  EXPECT_FALSE(out.enabled());
  RunRecord rec;
  out.write(rec);  // must not crash or create a file
  EXPECT_EQ(out.rows_written(), 0u);
}

// ---- SpanTracer / Chrome trace export ----

TEST(SpanTracer, TraceExportsOneCompleteEventPerPhase) {
  Trace trace;
  trace.record("schedule", 5, 0, 0.010);
  trace.record("phase1", 20, 0, 0.050);
  trace.record("phase2", 2);  // no wall time: synthetic duration

  SpanTracer tracer;
  const double end = tracer.add_trace(trace);
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_GT(end, 0.06);  // at least the two measured phases

  const JsonValue v = json_parse(tracer.chrome_json());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("displayTimeUnit").as_string(), "ms");
  const JsonValue& events = v.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 3u);
  double cursor = 0.0;
  for (std::size_t i = 0; i < events.array.size(); ++i) {
    const JsonValue& ev = events.array[i];
    EXPECT_EQ(ev.at("ph").as_string(), "X");  // complete event
    EXPECT_GE(ev.at("dur").as_number(), 0.0);
    // Spans are laid end-to-end: each starts where the previous ended.
    EXPECT_NEAR(ev.at("ts").as_number(), cursor, 1e-6);
    cursor += ev.at("dur").as_number();
  }
  EXPECT_EQ(events.array[0].at("name").as_string(), "schedule");
  EXPECT_EQ(events.array[2].at("name").as_string(), "phase2");
}

TEST(SpanTracer, ScopedSpansCloseOnDestruction) {
  SpanTracer tracer;
  { auto s = tracer.span("outer"); }
  tracer.add_complete("manual", 1.0, 0.5);
  const JsonValue v = json_parse(tracer.chrome_json());
  const auto& events = v.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").as_string(), "outer");
  EXPECT_GE(events[0].at("dur").as_number(), 0.0);  // closed, not -1
  EXPECT_DOUBLE_EQ(events[1].at("ts").as_number(), 1e6);
  EXPECT_DOUBLE_EQ(events[1].at("dur").as_number(), 5e5);
}

}  // namespace
}  // namespace ckp
