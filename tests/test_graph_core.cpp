#include <sstream>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/line_graph.hpp"
#include "graph/subgraph.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

TEST(Graph, EmptyAndDefault) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.max_degree(), 0);
  const Graph h = Graph::from_edges(3, {});
  EXPECT_EQ(h.num_nodes(), 3);
  EXPECT_EQ(h.degree(1), 0);
}

TEST(Graph, TriangleBasics) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.max_degree(), 2);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_FALSE(g.is_regular(3));
}

TEST(Graph, NeighborsSortedAndAligned) {
  const Graph g = Graph::from_edges(5, {{3, 1}, {3, 0}, {3, 4}, {3, 2}});
  const auto nbrs = g.neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  const auto edges = g.incident_edges(3);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    EXPECT_EQ(g.other_endpoint(edges[i], 3), nbrs[i]);
  }
}

TEST(Graph, EndpointsNormalized) {
  const Graph g = Graph::from_edges(4, {{3, 1}});
  const auto [a, b] = g.endpoints(0);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 3);
}

TEST(Graph, EdgeBetween) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.edge_between(1, 2), g.edge_between(2, 1));
  EXPECT_NE(g.edge_between(0, 1), kInvalidEdge);
  EXPECT_EQ(g.edge_between(0, 3), kInvalidEdge);
  EXPECT_EQ(g.edge_between(2, 2), kInvalidEdge);
}

TEST(Graph, RejectsBadInput) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 0}}), CheckFailure);
  EXPECT_THROW(Graph::from_edges(2, {{0, 2}}), CheckFailure);
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}, {1, 0}}), CheckFailure);
}

TEST(Graph, OtherEndpointChecksMembership) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  EXPECT_EQ(g.other_endpoint(0, 0), 1);
  EXPECT_THROW(g.other_endpoint(0, 2), CheckFailure);
}

TEST(Builder, DeduplicatesAndCounts) {
  GraphBuilder b(4);
  EXPECT_TRUE(b.add_edge(0, 1));
  EXPECT_FALSE(b.add_edge(1, 0));
  EXPECT_TRUE(b.add_edge(2, 3));
  EXPECT_EQ(b.num_edges(), 2u);
  EXPECT_TRUE(b.has_edge(1, 0));
  EXPECT_FALSE(b.has_edge(0, 2));
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Builder, RejectsSelfLoop) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), CheckFailure);
}

TEST(IO, RoundTrip) {
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    std::stringstream ss;
    write_edge_list(g, ss);
    const Graph back = read_edge_list(ss);
    ASSERT_EQ(back.num_nodes(), g.num_nodes()) << name;
    ASSERT_EQ(back.num_edges(), g.num_edges()) << name;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      EXPECT_TRUE(back.has_edge(u, v)) << name;
    }
  }
}

TEST(IO, RejectsMalformed) {
  std::stringstream ss("not a graph");
  EXPECT_THROW(read_edge_list(ss), CheckFailure);
  std::stringstream truncated("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(truncated), CheckFailure);
}

TEST(Subgraph, InducedKeepsInternalEdges) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  std::vector<char> keep{1, 1, 1, 0, 0};
  const auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_nodes(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 2);  // 0-1 and 1-2
  EXPECT_EQ(sub.from_original[3], kInvalidNode);
  EXPECT_EQ(sub.to_original[static_cast<std::size_t>(sub.from_original[1])], 1);
}

TEST(Subgraph, EmptySelection) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  const auto sub = induced_subgraph(g, {0, 0, 0});
  EXPECT_EQ(sub.graph.num_nodes(), 0);
}

TEST(LineGraph, PathAndStar) {
  // Line graph of P4 (3 edges) is P3.
  const Graph p4 = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const Graph lp = line_graph(p4);
  EXPECT_EQ(lp.num_nodes(), 3);
  EXPECT_EQ(lp.num_edges(), 2);
  // Line graph of a star K_{1,4} is K4.
  const Graph star = Graph::from_edges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const Graph ls = line_graph(star);
  EXPECT_EQ(ls.num_nodes(), 4);
  EXPECT_EQ(ls.num_edges(), 6);
}

TEST(LineGraph, DegreeBound) {
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    if (g.num_edges() == 0) continue;
    const Graph lg = line_graph(g);
    EXPECT_EQ(lg.num_nodes(), g.num_edges()) << name;
    EXPECT_LE(lg.max_degree(), 2 * (g.max_degree() - 1)) << name;
  }
}

}  // namespace
}  // namespace ckp
