#include <chrono>
#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ckp {
namespace {

TEST(Check, PassAndFail) {
  EXPECT_NO_THROW(CKP_CHECK(1 + 1 == 2));
  EXPECT_THROW(CKP_CHECK(1 == 2), CheckFailure);
  try {
    CKP_CHECK_MSG(false, "the answer is " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("the answer is 42"),
              std::string::npos);
  }
}

TEST(Table, AlignedOutput) {
  Table t({"n", "rounds"});
  t.add_row({"16", "3"});
  t.add_row({"1024", "17"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("rounds"), std::string::npos);
  EXPECT_NE(s.find("1024"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), CheckFailure);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::cell(-7), "-7");
}

TEST(Flags, ParsesForms) {
  const char* argv[] = {"prog", "--n=128", "--delta", "8", "--verbose"};
  Flags f(5, argv);
  EXPECT_EQ(f.get_int("n", 0), 128);
  EXPECT_EQ(f.get_int("delta", 0), 8);
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_NO_THROW(f.check_unknown());
}

TEST(Flags, TypedErrors) {
  const char* argv[] = {"prog", "--n=abc"};
  Flags f(2, argv);
  EXPECT_THROW(f.get_int("n", 0), CheckFailure);
}

TEST(Flags, UnknownFlagDetected) {
  const char* argv[] = {"prog", "--typo=1"};
  Flags f(2, argv);
  EXPECT_THROW(f.check_unknown(), CheckFailure);
}

TEST(Flags, DoubleAndString) {
  const char* argv[] = {"prog", "--eps=0.25", "--name=tree"};
  Flags f(3, argv);
  EXPECT_DOUBLE_EQ(f.get_double("eps", 0), 0.25);
  EXPECT_EQ(f.get_string("name", ""), "tree");
}

TEST(Flags, GetListDefaultsToAllAllowed) {
  const char* argv[] = {"prog"};
  Flags f(1, argv);
  const std::vector<std::string> allowed = {"luby", "greedy", "sinkless"};
  EXPECT_EQ(f.get_list("algo", allowed), allowed);
  EXPECT_NO_THROW(f.check_unknown());
}

TEST(Flags, GetListParsesSelectionInOrder) {
  const char* argv[] = {"prog", "--algo=greedy,luby"};
  Flags f(2, argv);
  const std::vector<std::string> allowed = {"luby", "greedy", "sinkless"};
  const std::vector<std::string> want = {"greedy", "luby"};
  EXPECT_EQ(f.get_list("algo", allowed), want);
  EXPECT_NO_THROW(f.check_unknown());
}

TEST(Flags, GetListRejectsUnknownAndEmptyItems) {
  const std::vector<std::string> allowed = {"luby", "greedy"};
  {
    const char* argv[] = {"prog", "--algo=bogus"};
    Flags f(2, argv);
    EXPECT_THROW(f.get_list("algo", allowed), CheckFailure);
  }
  {
    const char* argv[] = {"prog", "--algo=luby,,greedy"};
    Flags f(2, argv);
    EXPECT_THROW(f.get_list("algo", allowed), CheckFailure);
  }
  {
    const char* argv[] = {"prog", "--algo=luby,"};
    Flags f(2, argv);
    EXPECT_THROW(f.get_list("algo", allowed), CheckFailure);
  }
  {
    const char* argv[] = {"prog", "--algo="};
    Flags f(2, argv);
    EXPECT_THROW(f.get_list("algo", allowed), CheckFailure);
  }
}

TEST(Flags, DuplicateFlagIsAnError) {
  {
    const char* argv[] = {"prog", "--seeds=2", "--seeds=100"};
    EXPECT_THROW(Flags(3, argv), CheckFailure);
  }
  {
    // Mixed forms of the same flag are still a duplicate.
    const char* argv[] = {"prog", "--seeds=2", "--seeds", "100"};
    EXPECT_THROW(Flags(4, argv), CheckFailure);
  }
  {
    const char* argv[] = {"prog", "--verbose", "--verbose"};
    EXPECT_THROW(Flags(3, argv), CheckFailure);
  }
}

TEST(Flags, GetStringsDefaultsAndParses) {
  {
    const char* argv[] = {"prog"};
    Flags f(1, argv);
    const std::vector<std::string> def = {"wall_seconds"};
    EXPECT_EQ(f.get_strings("metrics", def), def);
    EXPECT_NO_THROW(f.check_unknown());
  }
  {
    const char* argv[] = {"prog", "--metrics=rounds,wall_seconds"};
    Flags f(2, argv);
    const std::vector<std::string> want = {"rounds", "wall_seconds"};
    EXPECT_EQ(f.get_strings("metrics", {}), want);
  }
}

TEST(Flags, GetStringsRejectsEmptyItems) {
  // Free-form lists go through the same strict splitter as get_list: a
  // lone trailing comma (the classic sweep-script template bug) must error
  // on every list path, never silently drop the empty tail item.
  for (const char* bad : {"--metrics=wall_seconds,", "--metrics=,rounds",
                          "--metrics=a,,b", "--metrics=,", "--metrics="}) {
    const char* argv[] = {"prog", bad};
    Flags f(2, argv);
    EXPECT_THROW(f.get_strings("metrics", {}), CheckFailure) << bad;
  }
}

TEST(Flags, SplitListStandalone) {
  const std::vector<std::string> want = {"a", "b", "c"};
  EXPECT_EQ(Flags::split_list("x", "a,b,c"), want);
  EXPECT_EQ(Flags::split_list("x", "solo"),
            std::vector<std::string>{"solo"});
  EXPECT_THROW(Flags::split_list("x", ""), CheckFailure);
  EXPECT_THROW(Flags::split_list("x", "a,"), CheckFailure);
  EXPECT_THROW(Flags::split_list("x", ","), CheckFailure);
}

TEST(Timer, MeasuresNonNegative) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.millis(), 0.0);
}

namespace {
// Injectable steady-clock stand-in: advances only when the test says so.
std::int64_t g_fake_seconds = 0;
SteadyTime fake_now() {
  return SteadyTime{} + std::chrono::seconds(g_fake_seconds);
}
}  // namespace

TEST(Timer, InjectedTimeSource) {
  g_fake_seconds = 100;
  Timer t(&fake_now);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
  g_fake_seconds = 103;
  EXPECT_DOUBLE_EQ(t.seconds(), 3.0);
  EXPECT_DOUBLE_EQ(t.millis(), 3000.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
  g_fake_seconds = 104;
  EXPECT_DOUBLE_EQ(t.seconds(), 1.0);
}

}  // namespace
}  // namespace ckp
