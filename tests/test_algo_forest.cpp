#include <gtest/gtest.h>

#include "algo/be_tree_coloring.hpp"
#include "algo/forest_decomposition.hpp"
#include "graph/generators.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

TEST(ForestDecomposition, InvariantOnTrees) {
  for (const auto& [name, g] : testing::tree_zoo()) {
    for (int t : {2, 3, 5}) {
      RoundLedger ledger;
      const auto d = decompose_forest(g, t, ledger);
      EXPECT_TRUE(decomposition_valid(g, d)) << name << " t=" << t;
      EXPECT_EQ(ledger.rounds(), d.num_layers) << name;
    }
  }
}

TEST(ForestDecomposition, LayerCountLogarithmic) {
  Rng rng(401);
  const Graph g = make_random_tree(100000, 3, rng);
  RoundLedger ledger;
  const auto d = decompose_forest(g, 2, ledger);
  // Fewer than half survive each peel: layers <= log2(n) + O(1).
  EXPECT_LE(d.num_layers, ilog2(100000) + 3);
}

TEST(ForestDecomposition, HigherThresholdFewerLayers) {
  Rng rng(403);
  const Graph g = make_prufer_tree(20000, rng);
  RoundLedger l2, l8;
  const auto d2 = decompose_forest(g, 2, l2);
  const auto d8 = decompose_forest(g, 8, l8);
  EXPECT_LE(d8.num_layers, d2.num_layers);
}

TEST(ForestDecomposition, StallsOnDenseGraph) {
  RoundLedger ledger;
  EXPECT_THROW(decompose_forest(make_complete(8), 2, ledger), CheckFailure);
}

TEST(ForestDecomposition, WorksOnBoundedDegreeNonForest) {
  // A cycle has min degree 2 == threshold: everything peels in round one.
  RoundLedger ledger;
  const auto d = decompose_forest(make_cycle(10), 2, ledger);
  EXPECT_EQ(d.num_layers, 1);
  EXPECT_TRUE(decomposition_valid(make_cycle(10), d));
}

struct BeCase {
  int q;
  int seed;
};

class BeTreeColoring : public ::testing::TestWithParam<BeCase> {};

TEST_P(BeTreeColoring, ProperOnAllTreeFixtures) {
  const auto [q, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919);
  for (const auto& [name, g] : testing::tree_zoo()) {
    const auto ids = random_ids(g.num_nodes(), 40, rng);
    RoundLedger ledger;
    const auto result = be_tree_coloring(g, q, ids, ledger);
    EXPECT_TRUE(verify_coloring(g, result.colors, q).ok)
        << name << " q=" << q << " seed=" << seed;
    EXPECT_EQ(result.rounds, ledger.rounds());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BeTreeColoring,
                         ::testing::Values(BeCase{3, 1}, BeCase{3, 2},
                                           BeCase{4, 1}, BeCase{5, 1},
                                           BeCase{8, 1}, BeCase{16, 1}));

TEST(BeTreeColoring, ForestOfManyComponents) {
  // Three disjoint paths plus isolated vertices.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId base : {0, 10, 20}) {
    for (NodeId i = 0; i < 7; ++i) edges.emplace_back(base + i, base + i + 1);
  }
  const Graph g = Graph::from_edges(30, edges);
  Rng rng(409);
  RoundLedger ledger;
  const auto result = be_tree_coloring(g, 3, random_ids(30, 20, rng), ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, 3).ok);
}

TEST(BeTreeColoring, ThreeColorsHugeStar) {
  // Δ = n-1 but q = 3 must still work (arboricity 1).
  Rng rng(419);
  const Graph g = make_star(5000);
  RoundLedger ledger;
  const auto result = be_tree_coloring(g, 3, random_ids(5000, 30, rng), ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, 3).ok);
  EXPECT_EQ(result.layers, 2);
}

TEST(BeTreeColoring, RoundsScaleWithLogBaseQ) {
  // Theorem 9 shape: for fixed n, larger q means fewer layers; for fixed q,
  // rounds grow roughly linearly in log n.
  Rng rng(421);
  RoundLedger l_small, l_large;
  const Graph small = make_random_tree(1 << 10, 3, rng);
  const Graph large = make_random_tree(1 << 16, 3, rng);
  const auto r_small = be_tree_coloring(
      small, 3, random_ids(small.num_nodes(), 40, rng), l_small);
  const auto r_large = be_tree_coloring(
      large, 3, random_ids(large.num_nodes(), 40, rng), l_large);
  EXPECT_GT(r_large.layers, r_small.layers);
  EXPECT_LT(r_large.rounds, 40 * ilog2(1 << 16));  // sane constant
}

TEST(BeTreeColoring, RejectsTooSmallPalette) {
  Rng rng(431);
  RoundLedger ledger;
  EXPECT_THROW(
      be_tree_coloring(make_path(5), 2, random_ids(5, 10, rng), ledger),
      CheckFailure);
}

TEST(BeTreeColoring, EmptyAndTinyInputs) {
  Rng rng(433);
  RoundLedger ledger;
  const auto empty = be_tree_coloring(Graph(), 3, {}, ledger);
  EXPECT_TRUE(empty.colors.empty());
  const auto single = be_tree_coloring(Graph::from_edges(1, {}), 3,
                                       random_ids(1, 10, rng), ledger);
  EXPECT_EQ(single.colors.size(), 1u);
  EXPECT_GE(single.colors[0], 0);
}

}  // namespace
}  // namespace ckp
