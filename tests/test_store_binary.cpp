// The artifact store's serialization boundary: framed binary encoding for
// Graph and BipartiteProblem (magic/version/length/checksum validation,
// write→read→write byte-identity) and the keyed ArtifactStore itself
// (atomic commit, load, sanitized keys, corruption fallback).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/roundelim.hpp"
#include "graph/generators.hpp"
#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "store/artifact_store.hpp"
#include "store/binary_io.hpp"
#include "store/serialize.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ckp {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader.

TEST(BinaryIo, ScalarsRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.14159265358979);
  w.str("hello");
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  r.expect_done();
}

TEST(BinaryIo, ReaderRejectsTruncation) {
  ByteWriter w;
  w.u64(7);
  ByteReader r(std::string_view(w.bytes()).substr(0, 5));
  EXPECT_THROW(r.u64(), CheckFailure);
}

TEST(BinaryIo, FrameValidatesEverything) {
  const std::string framed = frame_artifact(fourcc("TEST"), 3, "payload");
  EXPECT_EQ(unframe_artifact(framed, fourcc("TEST"), 3), "payload");
  // Wrong kind, wrong version.
  EXPECT_THROW(unframe_artifact(framed, fourcc("NOPE"), 3), CheckFailure);
  EXPECT_THROW(unframe_artifact(framed, fourcc("TEST"), 4), CheckFailure);
  // Bad magic.
  std::string bad_magic = framed;
  bad_magic[0] = 'X';
  EXPECT_THROW(unframe_artifact(bad_magic, fourcc("TEST"), 3), CheckFailure);
  // Truncated.
  EXPECT_THROW(
      unframe_artifact(std::string_view(framed).substr(0, framed.size() - 1),
                       fourcc("TEST"), 3),
      CheckFailure);
  EXPECT_THROW(unframe_artifact("CK", fourcc("TEST"), 3), CheckFailure);
  // Every single-byte payload corruption is caught by the checksum.
  for (std::size_t i = 20; i < framed.size() - 8; ++i) {
    std::string corrupt = framed;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    EXPECT_THROW(unframe_artifact(corrupt, fourcc("TEST"), 3), CheckFailure)
        << "flipped byte " << i;
  }
}

// ---------------------------------------------------------------------------
// Graph serialization.

TEST(GraphSerialize, ZooRoundTripsByteIdentically) {
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    const std::string bytes = graph_to_bytes(g);
    const Graph reread = graph_from_bytes(bytes);
    ASSERT_EQ(g.num_nodes(), reread.num_nodes()) << name;
    ASSERT_EQ(g.num_edges(), reread.num_edges()) << name;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_EQ(g.endpoints(e), reread.endpoints(e)) << name;
    }
    EXPECT_EQ(graph_to_bytes(reread), bytes) << name;
  }
}

TEST(GraphSerialize, EmptyGraph) {
  const Graph g;
  const Graph reread = graph_from_bytes(graph_to_bytes(g));
  EXPECT_EQ(reread.num_nodes(), 0);
  EXPECT_EQ(reread.num_edges(), 0);
}

TEST(GraphSerialize, RejectsCorruptEndpoint) {
  // Corruption inside the payload flips the checksum first; a *consistent*
  // but invalid payload (endpoint >= n) must fail the structural check, so
  // build one through the real encoder with a forged frame.
  ByteWriter w;
  w.u64(2);
  w.u64(1);
  w.i32(0);
  w.i32(5);  // out of range
  const std::string framed = frame_artifact(fourcc("GRPH"), 1, w.bytes());
  EXPECT_THROW(graph_from_bytes(framed), CheckFailure);
}

TEST(GraphSerialize, RejectsCountPayloadMismatch) {
  ByteWriter w;
  w.u64(4);
  w.u64(3);  // claims 3 edges, provides 1
  w.i32(0);
  w.i32(1);
  const std::string framed = frame_artifact(fourcc("GRPH"), 1, w.bytes());
  EXPECT_THROW(graph_from_bytes(framed), CheckFailure);
}

// ---------------------------------------------------------------------------
// Problem serialization.

TEST(ProblemSerialize, SinklessFamilyRoundTripsByteIdentically) {
  for (int delta = 3; delta <= 6; ++delta) {
    for (const BipartiteProblem& p :
         {sinkless_orientation_problem(delta),
          sinkless_orientation_canonical(delta),
          round_eliminate(sinkless_orientation_canonical(delta))}) {
      const std::string bytes = problem_to_bytes(p);
      const BipartiteProblem reread = problem_from_bytes(bytes);
      EXPECT_TRUE(problems_identical(p, reread));
      EXPECT_EQ(problem_to_bytes(reread), bytes);
      EXPECT_EQ(problem_digest(p), problem_digest(reread));
    }
  }
}

TEST(ProblemSerialize, RejectsWrongArity) {
  // A config whose arity disagrees with the declared degree must be
  // rejected (the encoder and decoder both check it).
  BipartiteProblem bad = sinkless_orientation_canonical(3);
  bad.active.clear();
  bad.active.insert({0});  // arity 1, degree is 3
  EXPECT_THROW(problem_from_bytes(problem_to_bytes(bad)), CheckFailure);
}

TEST(ProblemSerialize, DigestSeparatesProblems) {
  EXPECT_NE(problem_digest(sinkless_orientation_canonical(3)),
            problem_digest(sinkless_orientation_canonical(4)));
  EXPECT_NE(problem_digest(sinkless_orientation_canonical(3)),
            problem_digest(sinkless_orientation_problem(3)));
}

// ---------------------------------------------------------------------------
// ArtifactStore.

TEST(ArtifactStore, CommitLoadHas) {
  ArtifactStore store(fresh_dir("store_basic"));
  EXPECT_FALSE(store.has("k"));
  EXPECT_FALSE(store.load("k").has_value());
  store.commit("k", "bytes!");
  EXPECT_TRUE(store.has("k"));
  EXPECT_EQ(store.load("k").value(), "bytes!");
  // Overwrite.
  store.commit("k", "other");
  EXPECT_EQ(store.load("k").value(), "other");
}

TEST(ArtifactStore, SanitizesKeys) {
  EXPECT_EQ(ArtifactStore::sanitize_key("a/b c:d"), "a_b_c_d");
  EXPECT_EQ(ArtifactStore::sanitize_key("ok.key-1_2"), "ok.key-1_2");
  EXPECT_EQ(ArtifactStore::sanitize_key(""), "_");
  ArtifactStore store(fresh_dir("store_keys"));
  store.commit("../../escape", "x");
  // The file stays inside the store directory.
  EXPECT_TRUE(fs::path(store.path_for("../../escape"))
                  .lexically_normal()
                  .string()
                  .starts_with(fs::path(store.dir())
                                   .lexically_normal()
                                   .string()));
  EXPECT_EQ(store.load("../../escape").value(), "x");
}

TEST(ArtifactStore, NoTempFilesLeftAfterCommit) {
  ArtifactStore store(fresh_dir("store_tmp"));
  store.commit("a", "1");
  store.commit("b", "2");
  int files = 0;
  for (const auto& entry : fs::directory_iterator(store.dir())) {
    EXPECT_EQ(entry.path().extension(), ".ckpa") << entry.path();
    ++files;
  }
  EXPECT_EQ(files, 2);
}

TEST(ArtifactStore, GraphLoadOrComputeCachesAndByteMatches) {
  ArtifactStore store(fresh_dir("store_graph"));
  int computes = 0;
  const auto make = [&] {
    ++computes;
    return make_complete_tree(100, 3);
  };
  bool hit = true;
  const Graph first = store.graph("tree", make, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(computes, 1);
  const Graph second = store.graph("tree", make, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(graph_to_bytes(first), graph_to_bytes(second));
}

TEST(ArtifactStore, CorruptArtifactFallsBackToRecompute) {
  ArtifactStore store(fresh_dir("store_corrupt"));
  int computes = 0;
  const auto make = [&] {
    ++computes;
    return make_cycle(12);
  };
  store.graph("c", make);
  EXPECT_EQ(computes, 1);
  // Damage the committed artifact in place.
  {
    std::fstream f(store.path_for("c"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.put('\x7F');
  }
  bool hit = true;
  const Graph g = store.graph("c", make, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(g.num_nodes(), 12);
  // The recompute re-committed a valid artifact.
  bool hit2 = false;
  store.graph("c", make, &hit2);
  EXPECT_TRUE(hit2);
  EXPECT_EQ(computes, 2);
}

TEST(ArtifactStore, ProblemLoadOrCompute) {
  ArtifactStore store(fresh_dir("store_problem"));
  const BipartiteProblem p = sinkless_orientation_canonical(4);
  int computes = 0;
  const auto make = [&] {
    ++computes;
    return round_eliminate(p);
  };
  const BipartiteProblem a = store.problem("r", make);
  const BipartiteProblem b = store.problem("r", make);
  EXPECT_EQ(computes, 1);
  EXPECT_TRUE(problems_identical(a, b));
}

// ---------------------------------------------------------------------------
// Edge-colored graph serialization (bipartite regular instances).

TEST(EdgeColoredGraphSerialize, RoundTripsByteIdentically) {
  Rng rng(0xec6);
  const EdgeColoredGraph g = make_random_bipartite_regular(16, 4, rng);
  const std::string bytes = edge_colored_graph_to_bytes(g);
  const EdgeColoredGraph reread = edge_colored_graph_from_bytes(bytes);
  ASSERT_EQ(reread.graph.num_nodes(), g.graph.num_nodes());
  ASSERT_EQ(reread.graph.num_edges(), g.graph.num_edges());
  for (EdgeId e = 0; e < g.graph.num_edges(); ++e) {
    EXPECT_EQ(reread.graph.endpoints(e), g.graph.endpoints(e));
  }
  EXPECT_EQ(reread.edge_color, g.edge_color);
  EXPECT_EQ(reread.num_colors, g.num_colors);
  EXPECT_EQ(edge_colored_graph_to_bytes(reread), bytes);
}

TEST(EdgeColoredGraphSerialize, RejectsImproperColoring) {
  // A consistent frame whose coloring is not proper (both edges at node 1
  // get color 0) must fail the structural validation on decode.
  EdgeColoredGraph g;
  g.graph = Graph::from_edges(3, {{0, 1}, {1, 2}});
  g.edge_color = {0, 0};
  g.num_colors = 1;
  EXPECT_THROW(edge_colored_graph_from_bytes(edge_colored_graph_to_bytes(g)),
               CheckFailure);
}

TEST(ArtifactStore, EdgeColoredGraphLoadOrCompute) {
  ArtifactStore store(fresh_dir("store_ecgr"));
  int computes = 0;
  const auto make = [&] {
    ++computes;
    Rng rng(7);
    return make_random_bipartite_regular(12, 3, rng);
  };
  bool hit = true;
  const EdgeColoredGraph first = store.edge_colored_graph("b", make, &hit);
  EXPECT_FALSE(hit);
  const EdgeColoredGraph second = store.edge_colored_graph("b", make, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(edge_colored_graph_to_bytes(first),
            edge_colored_graph_to_bytes(second));
}

}  // namespace
}  // namespace ckp
