#include "core/roundelim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ckp {
namespace {

TEST(Problem, ValidationCatchesErrors) {
  BipartiteProblem p;
  EXPECT_THROW(p.validate(), CheckFailure);  // degrees unset
  p.active_degree = 2;
  p.passive_degree = 2;
  p.label_names = {"a"};
  EXPECT_NO_THROW(p.validate());
  p.active.insert({0});  // wrong arity
  EXPECT_THROW(p.validate(), CheckFailure);
  p.active.clear();
  p.active.insert({0, 1});  // label out of range
  EXPECT_THROW(p.validate(), CheckFailure);
}

TEST(SinklessOrientationProblem, Structure) {
  const auto so = sinkless_orientation_problem(3);
  EXPECT_EQ(so.active_degree, 3);
  EXPECT_EQ(so.passive_degree, 2);
  EXPECT_EQ(so.num_labels(), 2);
  EXPECT_EQ(so.active.size(), 3u);   // O³, O²I, OI²
  EXPECT_EQ(so.passive.size(), 1u);  // {O,I}
  EXPECT_FALSE(zero_round_solvable(so));
}

TEST(FreeProblem, ZeroRoundSolvable) {
  const auto p = free_problem(3, 2, 2);
  EXPECT_TRUE(zero_round_solvable(p));
}

TEST(RoundElimination, SinklessOrientationStepStructure) {
  // R(SO) on Δ=3: the new active side (degree 2, the edges) must be exactly
  // "one {O} end, one {I} end"; the new passive side (degree 3) must be
  // "not all {I}".
  const auto so = sinkless_orientation_problem(3);
  const auto r = round_eliminate(so);
  EXPECT_EQ(r.active_degree, 2);
  EXPECT_EQ(r.passive_degree, 3);
  EXPECT_EQ(r.num_labels(), 2);
  EXPECT_EQ(r.active.size(), 1u);
  EXPECT_EQ(r.passive.size(), 3u);
  EXPECT_FALSE(zero_round_solvable(r));
}

TEST(RoundElimination, CanonicalSinklessIsFixedPoint) {
  // The celebrated certificate: R(R(SO)) ≅ SO for the canonical "M U…U"
  // presentation. This is the mechanical core of the Brandt et al. lower
  // bound that the paper's Theorem 4 extends.
  for (int delta : {3, 4, 5}) {
    const auto so = sinkless_orientation_canonical(delta);
    const auto rr = round_eliminate(round_eliminate(so));
    EXPECT_TRUE(problems_isomorphic(so, rr)) << "delta=" << delta;
    EXPECT_FALSE(zero_round_solvable(rr)) << "delta=" << delta;
  }
}

TEST(RoundElimination, NaturalEncodingConvergesToCanonical) {
  // The O/I encoding is not syntactically a fixed point, but one double
  // step rewrites it into the canonical presentation, which then repeats
  // forever — the operator's orbit stabilizes after one step.
  for (int delta : {3, 4, 5}) {
    const auto natural = sinkless_orientation_problem(delta);
    const auto canonical = sinkless_orientation_canonical(delta);
    const auto rr = round_eliminate(round_eliminate(natural));
    EXPECT_TRUE(problems_isomorphic(rr, canonical)) << "delta=" << delta;
    const auto rrrr = round_eliminate(round_eliminate(rr));
    EXPECT_TRUE(problems_isomorphic(rrrr, canonical)) << "delta=" << delta;
  }
}

TEST(RoundElimination, FreeProblemStaysSolvable) {
  // Control: a trivially solvable problem remains 0-round solvable after
  // elimination (elimination cannot make an easy problem hard).
  const auto p = free_problem(3, 2, 2);
  const auto r = round_eliminate(p);
  EXPECT_TRUE(zero_round_solvable(r));
}

TEST(RoundElimination, PreservesDegreeSwap) {
  const auto so = sinkless_orientation_problem(4);
  const auto r = round_eliminate(so);
  EXPECT_EQ(r.active_degree, so.passive_degree);
  EXPECT_EQ(r.passive_degree, so.active_degree);
}

TEST(Isomorphism, DetectsRenamings) {
  auto a = sinkless_orientation_problem(3);
  // Swap label roles manually: rename O<->I everywhere.
  BipartiteProblem b = a;
  b.active.clear();
  b.passive.clear();
  for (const auto& cfg : a.active) {
    std::vector<int> mapped;
    for (int l : cfg) mapped.push_back(1 - l);
    std::sort(mapped.begin(), mapped.end());
    b.active.insert(mapped);
  }
  for (const auto& cfg : a.passive) {
    std::vector<int> mapped;
    for (int l : cfg) mapped.push_back(1 - l);
    std::sort(mapped.begin(), mapped.end());
    b.passive.insert(mapped);
  }
  EXPECT_TRUE(problems_isomorphic(a, b));
}

TEST(Isomorphism, DetectsDifferences) {
  const auto so3 = sinkless_orientation_problem(3);
  const auto so4 = sinkless_orientation_problem(4);
  EXPECT_FALSE(problems_isomorphic(so3, so4));
  auto mutated = so3;
  mutated.passive.insert({0, 0});  // allow O-O edges
  EXPECT_FALSE(problems_isomorphic(so3, mutated));
}

TEST(RoundElimination, MutatedSinklessCollapses) {
  // If O-O edges are also allowed, the problem becomes 0-round solvable
  // (everybody says O) and stays solvable through elimination — elimination
  // cannot make an easy problem hard.
  auto easy = sinkless_orientation_problem(3);
  easy.passive.insert({0, 0});
  EXPECT_TRUE(zero_round_solvable(easy));
  const auto r = round_eliminate(easy);
  EXPECT_TRUE(zero_round_solvable(r));
}

TEST(EnumerateMultisets, EmptyUniverseAndZeroSize) {
  // Regression: the seed colex increment compared slots against
  // universe - 1 = -1 and spun forever emitting out-of-range configurations
  // when universe == 0. The guarded version must emit nothing for size > 0
  // over an empty universe, and exactly one empty multiset for size == 0
  // over any universe (including an empty one).
  int calls = 0;
  enumerate_multisets(0, 3, [&](const std::vector<int>&) { ++calls; });
  EXPECT_EQ(calls, 0);
  enumerate_multisets(-1, 2, [&](const std::vector<int>&) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<std::vector<int>> seen;
  enumerate_multisets(0, 0, [&](const std::vector<int>& m) { seen.push_back(m); });
  enumerate_multisets(4, 0, [&](const std::vector<int>& m) { seen.push_back(m); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0].empty());
  EXPECT_TRUE(seen[1].empty());
}

TEST(EnumerateMultisets, CountsMatchStarsAndBars) {
  // C(universe + size - 1, size) multisets, emitted sorted and in order.
  int calls = 0;
  std::vector<int> prev;
  enumerate_multisets(4, 3, [&](const std::vector<int>& m) {
    ASSERT_EQ(m.size(), 3u);
    EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
    EXPECT_GE(m.front(), 0);
    EXPECT_LT(m.back(), 4);
    if (calls > 0) {
      EXPECT_NE(m, prev);
    }
    prev = m;
    ++calls;
  });
  EXPECT_EQ(calls, 20);  // C(6,3)
}

// A 4-label problem whose elimination exercises the parallel ∃-pass: the
// first step produces enough surviving subset-labels that the candidate
// count crosses the kernel's parallel grain.
BipartiteProblem all_pairs_problem() {
  BipartiteProblem p;
  p.active_degree = 2;
  p.passive_degree = 2;
  p.label_names = {"a", "b", "c", "d"};
  for (int i = 0; i < 4; ++i) {
    for (int j = i; j < 4; ++j) {
      p.active.insert({i, j});
      if (i != j) p.passive.insert({i, j});
    }
  }
  p.validate();
  return p;
}

TEST(RoundElimination, PackedMatchesReferenceOnCatalog) {
  // Configuration-for-configuration identity (same label names, same sets)
  // between the packed kernel and the seed reference, across the whole
  // hand-picked catalog.
  std::vector<BipartiteProblem> catalog;
  for (int delta : {3, 4, 5, 6}) {
    catalog.push_back(sinkless_orientation_problem(delta));
    catalog.push_back(sinkless_orientation_canonical(delta));
  }
  catalog.push_back(free_problem(3, 2, 2));
  catalog.push_back(free_problem(2, 3, 3));
  catalog.push_back(all_pairs_problem());
  auto mutated = sinkless_orientation_problem(3);
  mutated.passive.insert({0, 0});
  catalog.push_back(mutated);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& p = catalog[i];
    const auto opt = round_eliminate(p);
    EXPECT_TRUE(problems_identical(opt, round_eliminate_reference(p)))
        << "catalog entry " << i;
    // And through the second step (the bench's RR certificate path) — but
    // only where the intermediate label universe stays small: the reference
    // kernel materializes every downward-closed ∀-tuple over 2^|Σ|-1
    // subsets before filtering to maximal ones, which is astronomically
    // large already for the 15-label intermediates the richer catalog
    // entries produce.
    if (opt.num_labels() > 4) continue;
    EXPECT_TRUE(problems_identical(
        round_eliminate(opt), round_eliminate_reference(
                                  round_eliminate_reference(p))))
        << "catalog entry " << i;
  }
}

TEST(RoundElimination, OutputInvariantUnderThreadCount) {
  // Bit-identical output at every thread count. free_problem(2, 2, 6) gives
  // 2^6 - 1 = 63 top masks (≥ the parallel grain) so the ∀-search actually
  // fans out; all_pairs_problem crosses the grain on the ∃-pass.
  std::vector<BipartiteProblem> catalog;
  catalog.push_back(sinkless_orientation_problem(5));
  catalog.push_back(free_problem(2, 2, 6));
  catalog.push_back(all_pairs_problem());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto base = round_eliminate(catalog[i], 64, 1);
    for (int threads : {2, 8}) {
      EXPECT_TRUE(
          problems_identical(base, round_eliminate(catalog[i], 64, threads)))
          << "catalog entry " << i << " threads=" << threads;
    }
  }
}

TEST(Isomorphism, PermutedRelabelingBeyondEightLabels) {
  // The seed k! search was capped at 8 labels; the signature-partitioned
  // search must handle a 12-label problem. Build a circulant-style problem
  // over 12 labels, apply a fixed pseudo-random permutation to one copy,
  // and require isomorphism.
  const int k = 12;
  BipartiteProblem a;
  a.active_degree = 2;
  a.passive_degree = 2;
  for (int i = 0; i < k; ++i) a.label_names.push_back("l" + std::to_string(i));
  for (int i = 0; i < k; ++i) {
    for (int step : {1, 3}) {
      std::vector<int> cfg = {i, (i + step) % k};
      std::sort(cfg.begin(), cfg.end());
      a.active.insert(cfg);
      std::vector<int> pcfg = {i, (i + 2 * step) % k};
      std::sort(pcfg.begin(), pcfg.end());
      a.passive.insert(pcfg);
    }
  }
  a.validate();

  std::vector<int> perm(static_cast<std::size_t>(k));
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(977);
  for (int i = k - 1; i > 0; --i) {
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
  }
  BipartiteProblem b;
  b.active_degree = a.active_degree;
  b.passive_degree = a.passive_degree;
  b.label_names = a.label_names;
  auto apply = [&](const std::set<std::vector<int>>& src,
                   std::set<std::vector<int>>& dst) {
    for (const auto& cfg : src) {
      std::vector<int> mapped;
      for (int l : cfg) mapped.push_back(perm[static_cast<std::size_t>(l)]);
      std::sort(mapped.begin(), mapped.end());
      dst.insert(mapped);
    }
  };
  apply(a.active, b.active);
  apply(a.passive, b.passive);
  b.validate();
  EXPECT_TRUE(problems_isomorphic(a, b));
  EXPECT_TRUE(problems_isomorphic(b, a));

  // Breaking one configuration must break isomorphism even at 12 labels.
  BipartiteProblem c = b;
  c.passive.erase(c.passive.begin());
  c.passive.insert({0, 0});
  if (c.passive != b.passive) {
    EXPECT_FALSE(problems_isomorphic(a, c));
  }
}

TEST(Isomorphism, SignatureEqualButNotIsomorphic) {
  // Every label has the same signature (degree-2 incidences, one active
  // partner, one passive partner) in both problems, so the signature
  // partition cannot distinguish them — only the backtracking search can.
  // Active side: a 6-cycle on labels {0..5} vs two 3-cycles; passive sides
  // identical (all self-pairs).
  auto make = [](const std::vector<std::pair<int, int>>& edges) {
    BipartiteProblem p;
    p.active_degree = 2;
    p.passive_degree = 2;
    for (int i = 0; i < 6; ++i) {
      p.label_names.push_back("x" + std::to_string(i));
      p.passive.insert({i, i});
    }
    for (const auto& [u, v] : edges) {
      std::vector<int> cfg = {u, v};
      std::sort(cfg.begin(), cfg.end());
      p.active.insert(cfg);
    }
    p.validate();
    return p;
  };
  const auto hexagon =
      make({{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  const auto triangles =
      make({{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  // Same counts everywhere — only the global structure differs.
  EXPECT_EQ(hexagon.active.size(), triangles.active.size());
  EXPECT_EQ(hexagon.passive.size(), triangles.passive.size());
  EXPECT_FALSE(problems_isomorphic(hexagon, triangles));
  EXPECT_TRUE(problems_isomorphic(hexagon, hexagon));
  EXPECT_TRUE(problems_isomorphic(triangles, triangles));
}

TEST(ZeroRound, MixedConfigurationCriterion) {
  // A problem solvable only with a non-monochromatic configuration: active
  // (a,b), passive must accept every pair over {a,b}.
  BipartiteProblem p;
  p.active_degree = 2;
  p.passive_degree = 2;
  p.label_names = {"a", "b"};
  p.active.insert({0, 1});
  p.passive.insert({0, 0});
  p.passive.insert({0, 1});
  EXPECT_FALSE(zero_round_solvable(p));  // (b,b) missing
  p.passive.insert({1, 1});
  EXPECT_TRUE(zero_round_solvable(p));
}

}  // namespace
}  // namespace ckp
