#include "core/roundelim.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ckp {
namespace {

TEST(Problem, ValidationCatchesErrors) {
  BipartiteProblem p;
  EXPECT_THROW(p.validate(), CheckFailure);  // degrees unset
  p.active_degree = 2;
  p.passive_degree = 2;
  p.label_names = {"a"};
  EXPECT_NO_THROW(p.validate());
  p.active.insert({0});  // wrong arity
  EXPECT_THROW(p.validate(), CheckFailure);
  p.active.clear();
  p.active.insert({0, 1});  // label out of range
  EXPECT_THROW(p.validate(), CheckFailure);
}

TEST(SinklessOrientationProblem, Structure) {
  const auto so = sinkless_orientation_problem(3);
  EXPECT_EQ(so.active_degree, 3);
  EXPECT_EQ(so.passive_degree, 2);
  EXPECT_EQ(so.num_labels(), 2);
  EXPECT_EQ(so.active.size(), 3u);   // O³, O²I, OI²
  EXPECT_EQ(so.passive.size(), 1u);  // {O,I}
  EXPECT_FALSE(zero_round_solvable(so));
}

TEST(FreeProblem, ZeroRoundSolvable) {
  const auto p = free_problem(3, 2, 2);
  EXPECT_TRUE(zero_round_solvable(p));
}

TEST(RoundElimination, SinklessOrientationStepStructure) {
  // R(SO) on Δ=3: the new active side (degree 2, the edges) must be exactly
  // "one {O} end, one {I} end"; the new passive side (degree 3) must be
  // "not all {I}".
  const auto so = sinkless_orientation_problem(3);
  const auto r = round_eliminate(so);
  EXPECT_EQ(r.active_degree, 2);
  EXPECT_EQ(r.passive_degree, 3);
  EXPECT_EQ(r.num_labels(), 2);
  EXPECT_EQ(r.active.size(), 1u);
  EXPECT_EQ(r.passive.size(), 3u);
  EXPECT_FALSE(zero_round_solvable(r));
}

TEST(RoundElimination, CanonicalSinklessIsFixedPoint) {
  // The celebrated certificate: R(R(SO)) ≅ SO for the canonical "M U…U"
  // presentation. This is the mechanical core of the Brandt et al. lower
  // bound that the paper's Theorem 4 extends.
  for (int delta : {3, 4, 5}) {
    const auto so = sinkless_orientation_canonical(delta);
    const auto rr = round_eliminate(round_eliminate(so));
    EXPECT_TRUE(problems_isomorphic(so, rr)) << "delta=" << delta;
    EXPECT_FALSE(zero_round_solvable(rr)) << "delta=" << delta;
  }
}

TEST(RoundElimination, NaturalEncodingConvergesToCanonical) {
  // The O/I encoding is not syntactically a fixed point, but one double
  // step rewrites it into the canonical presentation, which then repeats
  // forever — the operator's orbit stabilizes after one step.
  for (int delta : {3, 4, 5}) {
    const auto natural = sinkless_orientation_problem(delta);
    const auto canonical = sinkless_orientation_canonical(delta);
    const auto rr = round_eliminate(round_eliminate(natural));
    EXPECT_TRUE(problems_isomorphic(rr, canonical)) << "delta=" << delta;
    const auto rrrr = round_eliminate(round_eliminate(rr));
    EXPECT_TRUE(problems_isomorphic(rrrr, canonical)) << "delta=" << delta;
  }
}

TEST(RoundElimination, FreeProblemStaysSolvable) {
  // Control: a trivially solvable problem remains 0-round solvable after
  // elimination (elimination cannot make an easy problem hard).
  const auto p = free_problem(3, 2, 2);
  const auto r = round_eliminate(p);
  EXPECT_TRUE(zero_round_solvable(r));
}

TEST(RoundElimination, PreservesDegreeSwap) {
  const auto so = sinkless_orientation_problem(4);
  const auto r = round_eliminate(so);
  EXPECT_EQ(r.active_degree, so.passive_degree);
  EXPECT_EQ(r.passive_degree, so.active_degree);
}

TEST(Isomorphism, DetectsRenamings) {
  auto a = sinkless_orientation_problem(3);
  // Swap label roles manually: rename O<->I everywhere.
  BipartiteProblem b = a;
  b.active.clear();
  b.passive.clear();
  for (const auto& cfg : a.active) {
    std::vector<int> mapped;
    for (int l : cfg) mapped.push_back(1 - l);
    std::sort(mapped.begin(), mapped.end());
    b.active.insert(mapped);
  }
  for (const auto& cfg : a.passive) {
    std::vector<int> mapped;
    for (int l : cfg) mapped.push_back(1 - l);
    std::sort(mapped.begin(), mapped.end());
    b.passive.insert(mapped);
  }
  EXPECT_TRUE(problems_isomorphic(a, b));
}

TEST(Isomorphism, DetectsDifferences) {
  const auto so3 = sinkless_orientation_problem(3);
  const auto so4 = sinkless_orientation_problem(4);
  EXPECT_FALSE(problems_isomorphic(so3, so4));
  auto mutated = so3;
  mutated.passive.insert({0, 0});  // allow O-O edges
  EXPECT_FALSE(problems_isomorphic(so3, mutated));
}

TEST(RoundElimination, MutatedSinklessCollapses) {
  // If O-O edges are also allowed, the problem becomes 0-round solvable
  // (everybody says O) and stays solvable through elimination — elimination
  // cannot make an easy problem hard.
  auto easy = sinkless_orientation_problem(3);
  easy.passive.insert({0, 0});
  EXPECT_TRUE(zero_round_solvable(easy));
  const auto r = round_eliminate(easy);
  EXPECT_TRUE(zero_round_solvable(r));
}

TEST(ZeroRound, MixedConfigurationCriterion) {
  // A problem solvable only with a non-monochromatic configuration: active
  // (a,b), passive must accept every pair over {a,b}.
  BipartiteProblem p;
  p.active_degree = 2;
  p.passive_degree = 2;
  p.label_names = {"a", "b"};
  p.active.insert({0, 1});
  p.passive.insert({0, 0});
  p.passive.insert({0, 1});
  EXPECT_FALSE(zero_round_solvable(p));  // (b,b) missing
  p.passive.insert({1, 1});
  EXPECT_TRUE(zero_round_solvable(p));
}

}  // namespace
}  // namespace ckp
