// Resource telemetry: allocation interposition, the no-alloc guards, RSS
// sampling, pool utilization, progress heartbeats, and run provenance.
//
// The headline tests are the allocation-free *certificates*: PR 3 and PR 5
// claimed (in comments) that the packed round-elimination inner passes and
// the BfsScratch query path run allocation-free after warm-up. AssertNoAlloc
// turns each claim into a runtime check that fails the suite if a future
// change sneaks an allocation back into those hot paths.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/roundelim.hpp"
#include "graph/bfs_kernel.hpp"
#include "graph/trees.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/resource.hpp"
#include "obs/run_record.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

// TSan's runtime intercepts the operator new/delete family ahead of our
// replacement functions, so the counters sit idle in TSan builds (ASan only
// intercepts malloc/free *beneath* our wrappers, which keeps them live).
// Counter-dependent tests skip themselves there; in plain builds an idle
// counter means the binary failed to link obs/resource.cpp and must FAIL.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CKP_SANITIZER_MAY_OWN_ALLOCATOR 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CKP_SANITIZER_MAY_OWN_ALLOCATOR 1
#endif
#endif
#ifndef CKP_SANITIZER_MAY_OWN_ALLOCATOR
#define CKP_SANITIZER_MAY_OWN_ALLOCATOR 0
#endif

#define CKP_SKIP_IF_COUNTERS_IDLE()                                       \
  do {                                                                    \
    if (CKP_SANITIZER_MAY_OWN_ALLOCATOR && !alloc_counting_active())      \
      GTEST_SKIP() << "sanitizer runtime owns operator new; allocation "  \
                      "counters are idle in this build";                  \
  } while (0)

namespace ckp {
namespace {

// Escape hatch for pointers: storing through a volatile keeps the optimizer
// from eliding a paired new/delete ([expr.new]/10 allows dropping calls to
// replaceable allocation functions, which would bypass the counters).
void* volatile g_escape = nullptr;

TEST(AllocCounting, InterpositionIsActiveAndCounts) {
  CKP_SKIP_IF_COUNTERS_IDLE();
  ASSERT_TRUE(alloc_counting_active());
  const AllocCounts before = thread_alloc_counts();
  auto* p = new char[1024];
  g_escape = p;
  const AllocCounts mid = thread_alloc_counts();
  delete[] p;
  const AllocCounts after = thread_alloc_counts();
  EXPECT_GE(mid.allocs, before.allocs + 1);
  EXPECT_GE(mid.bytes, before.bytes + 1024);
  EXPECT_GE(after.frees, mid.frees + 1);
}

TEST(AllocCounting, ProcessTotalsCoverThreadActivity) {
  CKP_SKIP_IF_COUNTERS_IDLE();
  const AllocCounts before = process_alloc_counts();
  std::vector<double>(4096, 1.0);
  const AllocCounts after = process_alloc_counts();
  EXPECT_GE(after.allocs, before.allocs + 1);
  EXPECT_GE(after.bytes, before.bytes + 4096 * sizeof(double));
}

TEST(AllocScope, MeasuresVectorGrowth) {
  CKP_SKIP_IF_COUNTERS_IDLE();
  AllocScope scope;
  {
    std::vector<int> v(1024);
    EXPECT_GE(scope.allocations(), 1u);
    EXPECT_GE(scope.bytes(), 1024 * sizeof(int));
  }
  EXPECT_GE(scope.frees(), 1u);
}

TEST(AssertNoAllocGuard, CleanScopePasses) {
  CKP_SKIP_IF_COUNTERS_IDLE();
  AssertNoAlloc guard("arith-only");
  volatile int x = 0;
  for (int i = 0; i < 100; ++i) x = x + i;
  (void)x;
  guard.check();  // no throw
}

TEST(AssertNoAllocGuard, CheckThrowsOnAllocation) {
  CKP_SKIP_IF_COUNTERS_IDLE();
  AssertNoAlloc guard("alloc-here");
  int* p = new int(7);
  g_escape = p;
  EXPECT_THROW(guard.check(), CheckFailure);
  delete p;
}

TEST(AssertNoAllocGuard, DestructorThrowsOnAllocation) {
  CKP_SKIP_IF_COUNTERS_IDLE();
  EXPECT_THROW(
      {
        AssertNoAlloc guard("dtor-alloc");
        std::string s(128, 'x');
        // s is destroyed before guard (reverse declaration order), so only
        // the allocation trips the guard, not the free.
      },
      CheckFailure);
}

TEST(Rss, SamplesArePositiveAndOrdered) {
  const std::uint64_t current = current_rss_bytes();
  const std::uint64_t peak = peak_rss_bytes();
  EXPECT_GT(current, 0u);
  EXPECT_GE(peak, current);
}

// PR 5's claim: once the scratch has grown to the graph size, a BFS query
// performs zero heap allocations. Warm with one query, then certify the
// repeat (including the sorted read-back into a reused vector).
TEST(NoAllocCertificates, BfsScratchQueryPath) {
  CKP_SKIP_IF_COUNTERS_IDLE();
  const Graph g = make_complete_tree(4095, 4);
  BfsScratch& scratch = bfs_scratch();
  std::vector<NodeId> ball_out;
  scratch.bind(g.num_nodes());
  scratch.bfs_from(g, 0, 4);  // warm-up: arrays grow to steady state
  scratch.sorted_touched(ball_out);
  const std::size_t warm_size = ball_out.size();

  AssertNoAlloc guard("bfs-scratch-query");
  scratch.bind(g.num_nodes());
  scratch.bfs_from(g, 0, 4);
  scratch.sorted_touched(ball_out);
  guard.check();
  EXPECT_EQ(ball_out.size(), warm_size);
  EXPECT_TRUE(scratch.reached(0));
  EXPECT_EQ(scratch.distance(0), 0);
}

// PR 3's claim: the packed kernel's inner passes reuse thread_local scratch
// and run allocation-free once warm. The seams rerun one ∀-pass / ∃-pass on
// the kernel's own buffers; counts cross-check against the public operator.
TEST(NoAllocCertificates, RoundElimInnerPasses) {
  CKP_SKIP_IF_COUNTERS_IDLE();
  const BipartiteProblem p = sinkless_orientation_problem(4);
  const BipartiteProblem r = round_eliminate(p);

  // Warm-up passes grow every thread_local buffer to steady state.
  const std::size_t forall_warm = roundelim_detail::forall_pass_tuple_count(p);
  const std::size_t exists_warm = roundelim_detail::exists_pass_hit_count(p);
  EXPECT_EQ(forall_warm, r.active.size());
  EXPECT_EQ(exists_warm, r.passive.size());

  {
    AssertNoAlloc guard("roundelim-forall-pass");
    const std::size_t count = roundelim_detail::forall_pass_tuple_count(p);
    guard.check();
    EXPECT_EQ(count, r.active.size());
  }
  {
    AssertNoAlloc guard("roundelim-exists-pass");
    const std::size_t count = roundelim_detail::exists_pass_hit_count(p);
    guard.check();
    EXPECT_EQ(count, r.passive.size());
  }
}

TEST(PoolStats, ParallelForAccountsBusyAndWaitTime) {
  ThreadPool& pool = shared_pool(2);
  std::vector<double> sums(2, 0.0);
  pool.parallel_for(0, 1 << 18, 2, [&](std::int64_t lo, std::int64_t hi,
                                       int chunk) {
    double s = 0.0;
    for (std::int64_t i = lo; i < hi; ++i) s += static_cast<double>(i % 7);
    sums[static_cast<std::size_t>(chunk)] = s;
  });
  const ThreadPoolStats stats = shared_pool_stats();
  EXPECT_GE(stats.threads, 2);
  EXPECT_GE(stats.jobs, 1u);
  EXPECT_GT(stats.dispatch_seconds, 0.0);
  ASSERT_EQ(stats.busy_seconds.size(), static_cast<std::size_t>(stats.threads));
  ASSERT_EQ(stats.wait_seconds.size(), static_cast<std::size_t>(stats.threads));
  double busy_total = 0.0;
  for (double s : stats.busy_seconds) busy_total += s;
  EXPECT_GT(busy_total, 0.0);
}

TEST(RecordResourceMetrics, FoldsCountersGaugesAndKernelFamily) {
  CKP_SKIP_IF_COUNTERS_IDLE();
  MetricsRegistry registry;
  record_resource_metrics(registry);
  EXPECT_GT(registry.counter("resource.allocs"), 0.0);
  EXPECT_GT(registry.counter("resource.alloc_bytes"), 0.0);
  EXPECT_GT(registry.gauge("resource.rss_bytes"), 0.0);
  EXPECT_GE(registry.gauge("resource.peak_rss_bytes"),
            registry.gauge("resource.rss_bytes"));

  // Monotone counters use delta-to-absolute folding: a second snapshot into
  // the same registry must never shrink or double-count.
  const double first = registry.counter("resource.allocs");
  record_resource_metrics(registry);
  EXPECT_GE(registry.counter("resource.allocs"), first);
  EXPECT_LE(registry.counter("resource.allocs"),
            static_cast<double>(process_alloc_counts().allocs));
}

TEST(ProgressMeterTest, EmitsParseableHeartbeatsAndFinalEvent) {
  std::ostringstream sink;
  {
    ProgressMeter meter("unit.sweep", 8, 1e-9, &sink);
    ASSERT_TRUE(meter.enabled());
    for (int i = 0; i < 8; ++i) meter.step();
    EXPECT_EQ(meter.position(), 8u);
  }  // destructor forces the final event
  std::istringstream lines(sink.str());
  std::string line;
  std::size_t events = 0;
  bool saw_final = false;
  std::uint64_t last_done = 0;
  while (std::getline(lines, line)) {
    const JsonValue doc = json_parse(line);
    ASSERT_TRUE(doc.is_object()) << line;
    EXPECT_EQ(doc.at("progress").as_string(), "unit.sweep");
    EXPECT_EQ(doc.at("total").as_number(), 8.0);
    const auto done = static_cast<std::uint64_t>(doc.at("done").as_number());
    EXPECT_GE(done, last_done);
    last_done = done;
    EXPECT_GE(doc.at("elapsed_seconds").as_number(), 0.0);
    if (doc.find("final") != nullptr) saw_final = true;
    ++events;
  }
  EXPECT_GE(events, 2u);  // at least the first step and the final event
  EXPECT_TRUE(saw_final);
  EXPECT_EQ(last_done, 8u);
}

TEST(ProgressMeterTest, DisabledWithoutIntervalAndSilentWhenOff) {
  set_progress_interval(0.0);
  std::ostringstream sink;
  {
    ProgressMeter meter("silent", 5, kGlobalInterval, &sink);
    EXPECT_FALSE(meter.enabled());
    meter.step(5);
  }
  EXPECT_TRUE(sink.str().empty());
}

namespace {
// Injectable steady clock for the rate-limit tests: no sleeping, no flaky
// timing — the test advances time explicitly.
std::int64_t g_fake_ms = 0;
SteadyTime fake_now() {
  return SteadyTime{} + std::chrono::milliseconds(g_fake_ms);
}
}  // namespace

TEST(ProgressMeterTest, RateLimitsOnInjectedSteadyTime) {
  g_fake_ms = 0;
  std::ostringstream sink;
  ProgressMeter meter("paced", 0, /*every_seconds=*/10.0, &sink, &fake_now);
  ASSERT_TRUE(meter.enabled());

  meter.step();  // first step always announces itself
  auto count_lines = [&] {
    std::istringstream lines(sink.str());
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) ++n;
    return n;
  };
  EXPECT_EQ(count_lines(), 1u);

  // 9.999 simulated seconds of steps: all suppressed by the interval.
  for (int i = 0; i < 9; ++i) {
    g_fake_ms += 1111;
    meter.step();
  }
  EXPECT_EQ(count_lines(), 1u);

  g_fake_ms = 10'000;  // exactly the interval boundary emits
  meter.step();
  EXPECT_EQ(count_lines(), 2u);

  meter.finish();  // final event ignores the rate limit
  EXPECT_EQ(count_lines(), 3u);
  const std::string all = sink.str();
  const std::string last = all.substr(all.rfind('\n', all.size() - 2) + 1);
  const JsonValue doc = json_parse(last);
  EXPECT_DOUBLE_EQ(doc.at("elapsed_seconds").as_number(), 10.0);
  EXPECT_NE(doc.find("final"), nullptr);
}

TEST(ProgressObserverTest, RateLimitsOnInjectedSteadyTime) {
  g_fake_ms = 0;
  std::ostringstream sink;
  ProgressObserver obs("paced.run", /*every_seconds=*/5.0, &sink, nullptr,
                       &fake_now);
  RoundStats stats;
  stats.n = 10;
  auto emitted = [&] {
    std::istringstream lines(sink.str());
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) ++n;
    return n;
  };
  for (int round = 1; round <= 4; ++round) {
    stats.round = round;
    obs.on_round_end(stats);  // t=0: only the elapsed>=every rounds emit
    g_fake_ms += 2000;
  }
  // Rounds land at t=0,2,4,6s; the 5s interval admits t>=5 only. The first
  // event fires once elapsed reaches `every` (t=6s, round 4).
  EXPECT_EQ(emitted(), 1u);
  const JsonValue doc = json_parse(sink.str().substr(0, sink.str().find('\n')));
  EXPECT_EQ(doc.at("round").as_number(), 4.0);
}

TEST(ProgressMeterTest, InheritsGlobalInterval) {
  set_progress_interval(1e-9);
  std::ostringstream sink;
  {
    ProgressMeter meter("global", 2, kGlobalInterval, &sink);
    EXPECT_TRUE(meter.enabled());
    meter.step();
    meter.step();
  }
  set_progress_interval(0.0);
  EXPECT_FALSE(sink.str().empty());
}

TEST(ProgressObserverTest, EmitsRoundHeartbeatsWithBudget) {
  std::ostringstream sink;
  ProgressObserver obs("unit.run", 1e-9, &sink);
  RoundStats stats;
  stats.round = 3;
  stats.max_rounds = 10;
  stats.n = 100;
  stats.halted_total = 25;
  obs.on_round_end(stats);
  RunStats run;
  run.rounds = 10;
  run.all_halted = true;
  obs.on_run_end(run);

  std::istringstream lines(sink.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue round_event = json_parse(line);
  EXPECT_EQ(round_event.at("progress").as_string(), "unit.run");
  EXPECT_EQ(round_event.at("round").as_number(), 3.0);
  EXPECT_EQ(round_event.at("max_rounds").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(round_event.at("halted_fraction").as_number(), 0.25);
  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue final_event = json_parse(line);
  EXPECT_NE(final_event.find("final"), nullptr);
}

TEST(ProgressObserverTest, ForwardsToChainedObserver) {
  MetricsRegistry registry;
  MetricsObserver metrics(&registry);
  ProgressObserver obs("chain", /*every_seconds=*/0.0, nullptr, &metrics);
  EXPECT_FALSE(obs.enabled());
  RoundStats stats;
  stats.round = 1;
  stats.n = 10;
  stats.active_nodes = 10;
  obs.on_round_end(stats);
  EXPECT_EQ(registry.counter("engine.rounds"), 1.0);
}

TEST(Provenance, CollectedFieldsAreNonEmpty) {
  const RunProvenance p = collect_provenance();
  EXPECT_FALSE(p.empty());
  EXPECT_FALSE(p.git_sha.empty());
  EXPECT_FALSE(p.timestamp.empty());
  EXPECT_FALSE(p.host.empty());
  // The repo this test builds from is a git checkout, so HEAD must resolve
  // to a real 40-hex sha, not the "unknown" fallback.
  EXPECT_EQ(p.git_sha.size(), 40u) << p.git_sha;
  // ISO-8601 UTC shape: YYYY-MM-DDTHH:MM:SSZ.
  ASSERT_EQ(p.timestamp.size(), 20u) << p.timestamp;
  EXPECT_EQ(p.timestamp[10], 'T');
  EXPECT_EQ(p.timestamp.back(), 'Z');
  // The selected SIMD backend is stamped so recorded numbers say which
  // kernel variant produced them.
  EXPECT_TRUE(p.simd == "avx2" || p.simd == "neon" || p.simd == "scalar")
      << p.simd;
}

TEST(Provenance, RoundTripsThroughJson) {
  RunRecord rec;
  rec.bench = "unit";
  rec.algorithm = "prov";
  rec.n = 4;
  rec.rounds = 1;
  rec.provenance.git_sha = "abc123";
  rec.provenance.timestamp = "2026-08-09T00:00:00Z";
  rec.provenance.host = "unit-host";
  rec.provenance.build_flags = "RelWithDebInfo -O2";
  rec.provenance.simd = "avx2";
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"provenance\""), std::string::npos);
  const RunRecord back = RunRecord::from_json_line(json);
  EXPECT_EQ(back.provenance.git_sha, "abc123");
  EXPECT_EQ(back.provenance.timestamp, "2026-08-09T00:00:00Z");
  EXPECT_EQ(back.provenance.host, "unit-host");
  EXPECT_EQ(back.provenance.build_flags, "RelWithDebInfo -O2");
  EXPECT_EQ(back.provenance.simd, "avx2");
  EXPECT_EQ(back.to_json(), json);  // verbatim re-emission
}

TEST(Provenance, AbsentByDefaultKeepsJsonStable) {
  RunRecord rec;
  rec.bench = "unit";
  rec.algorithm = "plain";
  rec.n = 4;
  rec.rounds = 1;
  EXPECT_TRUE(rec.provenance.empty());
  EXPECT_EQ(rec.to_json().find("provenance"), std::string::npos);
}

}  // namespace
}  // namespace ckp
