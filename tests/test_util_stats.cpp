#include "util/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ckp {
namespace {

TEST(Accumulator, EmptyThrows) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_THROW(acc.mean(), CheckFailure);
  EXPECT_THROW(acc.min(), CheckFailure);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MatchesDirectComputation) {
  Rng rng(101);
  Accumulator acc;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100 - 50;
    xs.push_back(x);
    acc.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(acc.mean(), mean, 1e-9);
  EXPECT_NEAR(acc.variance(), var, 1e-6);
}

TEST(Percentile, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, SingleAndErrors) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
  EXPECT_THROW(percentile({}, 50), CheckFailure);
  EXPECT_THROW(percentile({1.0}, 101), CheckFailure);
}

TEST(MaxOf, Basics) {
  EXPECT_DOUBLE_EQ(max_of({3.0, 1.0, 2.0}), 3.0);
  EXPECT_THROW(max_of({}), CheckFailure);
}

}  // namespace
}  // namespace ckp
