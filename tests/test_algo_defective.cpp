#include "algo/defective_coloring.hpp"

#include <gtest/gtest.h>

#include "algo/edge_coloring_distributed.hpp"
#include "algo/linial.hpp"
#include "graph/regular.hpp"
#include "lcl/verify_edge_coloring.hpp"
#include "local/ids.hpp"
#include "test_helpers.hpp"

namespace ckp {
namespace {

TEST(DefectiveGreedy, MeasuredDefectSmallOnZoo) {
  Rng rng(1901);
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    const int delta = std::max(1, g.max_degree());
    const auto ids = random_ids(g.num_nodes(), 32, rng);
    for (int palette : {2, 3, 5}) {
      RoundLedger ledger;
      const auto r = defective_coloring_greedy(g, ids, delta, palette, ledger);
      // No worst-case pointwise guarantee, but the measured defect should be
      // near Δ/palette on these benign instances; verify with slack.
      EXPECT_TRUE(verify_defective_coloring(g, r.colors, palette,
                                            2 * (delta / palette) + 2)
                      .ok)
          << name << " palette=" << palette;
      EXPECT_EQ(r.rounds, ledger.rounds());
    }
  }
}

struct KuhnCase {
  int delta;
  int target;
};

class KuhnSweep : public ::testing::TestWithParam<KuhnCase> {};

TEST_P(KuhnSweep, GuaranteedDefectBound) {
  const auto [delta, target] = GetParam();
  Rng rng(mix_seed(1907, static_cast<std::uint64_t>(delta),
                   static_cast<std::uint64_t>(target)));
  const Graph g = make_random_regular(512, delta, rng);
  const auto ids = random_ids(512, 32, rng);
  RoundLedger ledger;
  int palette = 0;
  const auto r =
      defective_coloring_kuhn(g, ids, delta, target, ledger, &palette);
  EXPECT_TRUE(verify_defective_coloring(g, r.colors, palette, target).ok)
      << "delta=" << delta << " target=" << target;
  EXPECT_LE(r.max_defect, target);
  // Palette stays polynomial in Δ/target.
  EXPECT_LE(palette, 64 * (delta / target + 2) * (delta / target + 2) + 64);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KuhnSweep,
                         ::testing::Values(KuhnCase{8, 2}, KuhnCase{8, 4},
                                           KuhnCase{16, 2}, KuhnCase{16, 8},
                                           KuhnCase{32, 4}));

TEST(Kuhn, OneRoundAfterLinial) {
  Rng rng(1913);
  const Graph g = make_random_regular(1024, 8, rng);
  const auto ids = random_ids(1024, 32, rng);
  RoundLedger base_ledger, full_ledger;
  linial_coloring(g, ids, 8, base_ledger);
  defective_coloring_kuhn(g, ids, 8, 2, full_ledger);
  EXPECT_EQ(full_ledger.rounds(), base_ledger.rounds() + 1);
}

TEST(VerifyDefective, NegativeCases) {
  const Graph g = make_path(3);
  EXPECT_TRUE(verify_defective_coloring(g, std::vector<int>{0, 0, 0}, 1, 2).ok);
  EXPECT_FALSE(verify_defective_coloring(g, std::vector<int>{0, 0, 0}, 1, 1)
                   .ok);  // middle node has 2 same-colored neighbors
  EXPECT_FALSE(verify_defective_coloring(g, std::vector<int>{0, 2, 0}, 2, 2).ok);
}

class EdgeColoringDistZoo : public ::testing::TestWithParam<int> {};

TEST_P(EdgeColoringDistZoo, ProperWithTwoDeltaMinusOne) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1931);
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    const auto ids = GetParam() == 0 ? sequential_ids(g.num_nodes())
                                     : random_ids(g.num_nodes(), 30, rng);
    RoundLedger ledger;
    const auto r = edge_coloring_distributed(g, ids, ledger);
    if (g.num_edges() == 0) continue;
    EXPECT_TRUE(verify_edge_coloring(g, r.colors, r.palette).ok) << name;
    EXPECT_EQ(r.palette, 2 * g.max_degree() - 1) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(IdSchemes, EdgeColoringDistZoo, ::testing::Values(0, 1));

TEST(EdgeColoringDist, RoundsFlatInN) {
  Rng rng(1933);
  const Graph small = make_random_regular(128, 5, rng);
  const Graph large = make_random_regular(4096, 5, rng);
  RoundLedger ls, ll;
  edge_coloring_distributed(small, random_ids(128, 30, rng), ls);
  edge_coloring_distributed(large, random_ids(4096, 30, rng), ll);
  EXPECT_LE(ll.rounds(), ls.rounds() + 4);
}

}  // namespace
}  // namespace ckp
