#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

TEST(Path, Structure) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_EQ(g.degree(4), 1);
  const Graph single = make_path(1);
  EXPECT_EQ(single.num_edges(), 0);
}

TEST(Cycle, Structure) {
  const Graph g = make_cycle(7);
  EXPECT_EQ(g.num_edges(), 7);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_THROW(make_cycle(2), CheckFailure);
}

TEST(Star, Structure) {
  const Graph g = make_star(9);
  EXPECT_EQ(g.degree(0), 8);
  for (NodeId v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1);
}

TEST(Complete, Structure) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_TRUE(g.is_regular(5));
}

TEST(CompleteBipartite, Structure) {
  const Graph g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.num_nodes(), 7);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(g.degree(0), 4);
  EXPECT_EQ(g.degree(3), 3);
  EXPECT_FALSE(g.has_edge(0, 1));  // same side
}

TEST(Grid, Structure) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_EQ(g.degree(0), 2);  // corner
}

TEST(Hypercube, Structure) {
  for (int d = 0; d <= 6; ++d) {
    const Graph g = make_hypercube(d);
    EXPECT_EQ(g.num_nodes(), 1 << d);
    EXPECT_TRUE(g.is_regular(d)) << d;
    EXPECT_EQ(g.num_edges(), d * (1 << d) / 2);
  }
}

TEST(ErdosRenyi, EdgeCountConcentrates) {
  Rng rng(31);
  const Graph g = make_er(200, 0.1, rng);
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.25);
  const Graph empty = make_er(50, 0.0, rng);
  EXPECT_EQ(empty.num_edges(), 0);
  const Graph full = make_er(10, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 45);
}

TEST(ErdosRenyiM, ExactEdgeCount) {
  Rng rng(37);
  const Graph g = make_er_m(50, 100, rng);
  EXPECT_EQ(g.num_edges(), 100);
  EXPECT_THROW(make_er_m(4, 7, rng), CheckFailure);
}

TEST(RandomCapped, RespectsCap) {
  Rng rng(41);
  for (int cap : {1, 2, 3, 5, 8}) {
    const Graph g = make_random_capped(100, cap, 5000, rng);
    EXPECT_LE(g.max_degree(), cap) << "cap=" << cap;
    EXPECT_GT(g.num_edges(), 0);
  }
}

class GeneratorDeterminism
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorDeterminism, SameSeedSameGraph) {
  Rng a(GetParam());
  Rng b(GetParam());
  const Graph ga = make_er(60, 0.12, a);
  const Graph gb = make_er(60, 0.12, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (EdgeId e = 0; e < ga.num_edges(); ++e) {
    EXPECT_EQ(ga.endpoints(e), gb.endpoints(e));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorDeterminism,
                         ::testing::Values(1u, 2u, 3u, 99u, 12345u));

}  // namespace
}  // namespace ckp
