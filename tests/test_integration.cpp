// Cross-module integration tests: small-scale versions of the paper's
// headline experiments, checked end to end.
#include <gtest/gtest.h>
#include <cmath>

#include "algo/be_tree_coloring.hpp"
#include "algo/linial.hpp"
#include "algo/color_reduction.hpp"
#include "core/delta_coloring_thm10.hpp"
#include "core/delta_coloring_thm11.hpp"
#include "core/lower_bounds.hpp"
#include "graph/girth.hpp"
#include "graph/regular.hpp"
#include "graph/subgraph.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "test_helpers.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

TEST(Separation, HeadlineShapeOnCompleteTrees) {
  // Result 1: deterministic Δ-coloring rounds grow like log_Δ n (diameter);
  // randomized rounds stay near-flat. The crossover in favor of randomized
  // must appear and widen.
  const int delta = 16;
  Rng rng(2001);
  std::vector<int> det_rounds;
  std::vector<int> rand_rounds;
  for (NodeId n : {1000, 8000, 64000}) {
    const Graph g = make_complete_tree(n, delta);
    // Deterministic: Theorem 9 with q = Δ.
    RoundLedger det;
    const auto ids = random_ids(n, 40, rng);
    const auto det_result = be_tree_coloring(g, delta, ids, det);
    EXPECT_TRUE(verify_coloring(g, det_result.colors, delta).ok);
    det_rounds.push_back(det.rounds());
    // Randomized: Theorem 10.
    RoundLedger rnd;
    const auto rand_result = delta_coloring_thm10(g, delta, 5, rnd);
    EXPECT_TRUE(verify_coloring(g, rand_result.colors, delta).ok);
    rand_rounds.push_back(rnd.rounds());
  }
  // Deterministic rounds strictly grow with n (layer count tracks log n).
  EXPECT_LT(det_rounds[0], det_rounds[2]);
  // Randomized stays within a small additive band.
  EXPECT_LE(rand_rounds[2], rand_rounds[0] + rand_rounds[0] / 2 + 10);
}

TEST(Shattering, ResidueComponentsAreLogarithmic) {
  // Theorems 10/11 shattering: the bad/S sets break into components of
  // size O(log n) with the paper-or-better constants.
  Rng rng(2003);
  const int delta = 55;
  for (NodeId n : {4000, 32000}) {
    const Graph g = make_random_tree(n, delta, rng);
    RoundLedger ledger;
    const auto result = delta_coloring_thm11(g, delta, 13, ledger);
    EXPECT_TRUE(verify_coloring(g, result.colors, delta).ok);
    EXPECT_LE(result.phase2_largest_component,
              4 * ilog2(static_cast<std::uint64_t>(n)) + 8)
        << "n=" << n;
  }
}

TEST(LowerBoundPipeline, GirthMeasuredAndBoundComputed) {
  // Section IV end-to-end: sample the lower-bound instance, measure its
  // girth (the substitution check), measure the 0-round failure floor, and
  // evaluate the certified round bound at the 1/poly(n) failure regime.
  Rng rng(2005);
  const int delta = 3;
  const NodeId side = 2048;
  const auto inst = make_random_bipartite_regular(side, delta, rng);
  const int g = girth_upper_bound_sampled(inst.graph, 200, rng);
  EXPECT_GE(g, 4);  // bipartite floor; typical local girth is much larger
  const double floor_measured = measured_zero_round_failure(inst, 200, 99);
  EXPECT_NEAR(floor_measured, 1.0 / 9.0, 0.03);
  // p = e^{-n}: the regime of Theorem 5's reduction, where the randomized
  // IDs fail with probability < n²/2^n. There the recurrence certifies a
  // multi-round bound even at this modest n.
  const double n = static_cast<double>(inst.graph.num_nodes());
  const int t = certified_lower_bound(-n, delta);
  EXPECT_GE(t, 2);
}

TEST(TheoremNine, MatchesTheoremTenPhaseTwoContract) {
  // Theorem 10's Phase 2 relies on Theorem 9 coloring arbitrary forests of
  // "bad" vertices with the reserved ⌊√Δ⌋ palette; simulate that contract
  // directly on scattered fragments of a tree.
  Rng rng(2007);
  const Graph g = make_random_tree(3000, 36, rng);
  std::vector<char> keep(3000, 0);
  for (NodeId v = 0; v < 3000; ++v) {
    keep[static_cast<std::size_t>(v)] = rng.next_bernoulli(0.3);
  }
  const auto sub = induced_subgraph(g, keep);
  std::vector<std::uint64_t> sub_ids(sub.to_original.size());
  for (std::size_t i = 0; i < sub_ids.size(); ++i) {
    sub_ids[i] = static_cast<std::uint64_t>(sub.to_original[i]);
  }
  RoundLedger ledger;
  const auto result = be_tree_coloring(sub.graph, 6, sub_ids, ledger);
  EXPECT_TRUE(verify_coloring(sub.graph, result.colors, 6).ok);
}

TEST(DeterministicPipeline, LinialThenReduceOnEveryFixture) {
  // Theorem 2 + class elimination = the standard Δ+1 pipeline; it must work
  // on every fixture under adversarial BFS ids.
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    const auto ids = bfs_order_ids(g, 0);
    RoundLedger ledger;
    auto coloring = linial_coloring(g, ids, std::max(1, g.max_degree()), ledger);
    const int target = g.max_degree() + 1;
    if (target <= coloring.palette) {
      reduce_palette(g, coloring.colors, coloring.palette, target, ledger);
      EXPECT_TRUE(verify_coloring(g, coloring.colors, target).ok) << name;
    }
  }
}

TEST(RandVsDet, SameTreeBothTheorems) {
  // Theorems 10 and 11 on the same instance must both produce proper
  // Δ-colorings; their phase structure differs but not their contract.
  Rng rng(2011);
  const int delta = 60;
  const Graph g = make_random_tree(10000, delta, rng);
  RoundLedger l10, l11;
  const auto r10 = delta_coloring_thm10(g, delta, 3, l10);
  const auto r11 = delta_coloring_thm11(g, delta, 3, l11);
  EXPECT_TRUE(verify_coloring(g, r10.colors, delta).ok);
  EXPECT_TRUE(verify_coloring(g, r11.colors, delta).ok);
}

}  // namespace
}  // namespace ckp
