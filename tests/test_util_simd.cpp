// The SIMD kernel layer (util/simd.hpp): the configured backend must agree
// bit-for-bit with the scalar reference on the exact shapes the packed
// engine feeds it — including the in-place aliasing the active-list
// compaction relies on and ragged tails around the vector width.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace ckp {
namespace {

TEST(Simd, BackendNameIsKnown) {
  const std::string name = simd::kBackendName;
  EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar");
  if (!simd::kHaveVectorBackend) {
    EXPECT_EQ(name, "scalar");
  }
}

TEST(Simd, AssembleRowsMatchesScalarAcrossLengths) {
  Rng rng(0x51D0);
  const std::uint64_t base_storage[1] = {0};
  const auto* base = reinterpret_cast<const std::uint64_t*>(base_storage);
  for (std::size_t count : {0u, 1u, 3u, 4u, 7u, 8u, 9u, 15u, 16u, 63u, 200u}) {
    std::vector<std::int32_t> idx(count);
    for (auto& v : idx) v = static_cast<std::int32_t>(rng.next_below(1 << 20));
    std::vector<const std::uint64_t*> got(count + 1, nullptr);
    std::vector<const std::uint64_t*> want(count + 1, nullptr);
    simd::assemble_rows8(got.data(), idx.data(), count, base);
    simd::assemble_rows8_scalar(want.data(), idx.data(), count, base);
    EXPECT_EQ(got, want) << "count=" << count;
  }
}

TEST(Simd, CompactByFlagMatchesScalarFuzz) {
  Rng rng(0xC0117AC7);
  for (int rep = 0; rep < 200; ++rep) {
    const auto count = static_cast<std::int64_t>(rng.next_below(97));
    std::vector<std::int32_t> src(static_cast<std::size_t>(count));
    std::vector<std::uint8_t> flags(static_cast<std::size_t>(count));
    // Sweep flag densities: all-zero, all-one, and mixed rounds all occur.
    const std::uint64_t density = rng.next_below(5);
    for (std::int64_t i = 0; i < count; ++i) {
      src[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>(rng.next_below(1u << 30));
      flags[static_cast<std::size_t>(i)] =
          density == 0 ? 0
          : density == 1
              ? 1
              : static_cast<std::uint8_t>(rng.next_below(2));
    }
    for (const bool want : {false, true}) {
      std::vector<std::int32_t> got(static_cast<std::size_t>(count) + 8, -1);
      std::vector<std::int32_t> ref(static_cast<std::size_t>(count) + 8, -1);
      const auto n_got = simd::compact_by_flag(got.data(), src.data(),
                                               flags.data(), count, want);
      const auto n_ref = simd::compact_by_flag_scalar(
          ref.data(), src.data(), flags.data(), count, want);
      ASSERT_EQ(n_got, n_ref) << "rep=" << rep << " want=" << want;
      for (std::int64_t i = 0; i < n_got; ++i) {
        ASSERT_EQ(got[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i)])
            << "rep=" << rep << " want=" << want << " i=" << i;
      }
    }
  }
}

TEST(Simd, CompactByFlagInPlaceAliasing) {
  // The engine compacts the active list in place (dst == src). Verify
  // against an out-of-place scalar reference on adversarial sizes spanning
  // the vector width and both flag senses.
  Rng rng(0xA11A5);
  for (const std::int64_t count : {1, 7, 8, 9, 24, 31, 32, 33, 257}) {
    std::vector<std::int32_t> data(static_cast<std::size_t>(count));
    std::vector<std::uint8_t> flags(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      data[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i * 3 + 1);
      flags[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(rng.next_below(2));
    }
    for (const bool want : {false, true}) {
      std::vector<std::int32_t> in_place = data;
      std::vector<std::int32_t> ref(static_cast<std::size_t>(count), -1);
      const auto n = simd::compact_by_flag(in_place.data(), in_place.data(),
                                           flags.data(), count, want);
      const auto n_ref = simd::compact_by_flag_scalar(
          ref.data(), data.data(), flags.data(), count, want);
      ASSERT_EQ(n, n_ref) << "count=" << count << " want=" << want;
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(in_place[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i)])
            << "count=" << count << " want=" << want << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace ckp
