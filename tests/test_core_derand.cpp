#include "core/derand.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "lcl/verify_mis.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

TEST(EnumerateGraphs, CountsForSmallN) {
  // n=1: only the empty graph. n=2: empty + K2. n=3 unrestricted: 8.
  EXPECT_EQ(enumerate_graphs(1, 3).size(), 1u);
  EXPECT_EQ(enumerate_graphs(2, 3).size(), 2u);
  EXPECT_EQ(enumerate_graphs(3, 2).size(), 8u);
  // n=3 with Δ<=1: empty + three single edges.
  EXPECT_EQ(enumerate_graphs(3, 1).size(), 4u);
}

TEST(EnumerateGraphs, RespectsDegreeCap) {
  for (const auto& g : enumerate_graphs(4, 2)) {
    EXPECT_LE(g.max_degree(), 2);
  }
  // The star K_{1,3} must appear at Δ=3 but not Δ=2.
  auto has_star = [](const std::vector<Graph>& graphs) {
    for (const auto& g : graphs) {
      if (g.num_edges() == 3 && g.max_degree() == 3) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_star(enumerate_graphs(4, 3)));
  EXPECT_FALSE(has_star(enumerate_graphs(4, 2)));
}

TEST(RankGreedyMis, SucceedsWithDistinctRanks) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<char> in_set;
  EXPECT_TRUE(run_rank_greedy_mis(g, {3, 1, 2, 0}, 4, in_set));
  EXPECT_TRUE(verify_mis(g, in_set).ok);
}

TEST(RankGreedyMis, DeadlocksOnTies) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  std::vector<char> in_set;
  EXPECT_FALSE(run_rank_greedy_mis(g, {5, 5}, 2, in_set));
}

TEST(RankGreedyMis, TieOnNonAdjacentNodesHarmless) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  std::vector<char> in_set;
  EXPECT_TRUE(run_rank_greedy_mis(g, {7, 9, 7}, 3, in_set));
  EXPECT_TRUE(verify_mis(g, in_set).ok);
}

TEST(Derandomize, FindsGoodPhiTinySetup) {
  DerandSetup setup;
  setup.n = 3;
  setup.delta = 2;
  setup.id_space = 4;
  setup.rank_bits = 2;
  const auto result = derandomize_mis(setup, /*phi_samples=*/50, 99);
  ASSERT_TRUE(result.found);
  EXPECT_GT(result.instances, 0u);
  EXPECT_EQ(result.phi_space, 256u);  // (2^2)^4
  // The found φ must be injective on the ID space (the only way rank-greedy
  // never deadlocks when any two IDs can be adjacent).
  std::set<std::uint64_t> values;
  for (int id = 0; id < setup.id_space; ++id) {
    values.insert((result.first_good_phi >> (2 * id)) & 3);
  }
  EXPECT_EQ(static_cast<int>(values.size()), setup.id_space);
  // Union-bound flavor: a decent fraction of φ are good.
  EXPECT_GT(result.sampled_good_fraction, 0.0);
}

TEST(Derandomize, GoodFractionMatchesInjectiveDensity) {
  // For this algorithm goodness == injectivity of φ; with S=4 ids and 2-bit
  // ranks the injective density is 4!/4⁴ = 24/256.
  DerandSetup setup;
  setup.n = 2;
  setup.delta = 1;
  setup.id_space = 4;
  setup.rank_bits = 2;
  const auto result = derandomize_mis(setup, 400, 123);
  EXPECT_NEAR(result.sampled_good_fraction, 24.0 / 256.0, 0.05);
}

TEST(Derandomize, Thm3BoundDominatesClassSize) {
  DerandSetup setup;
  setup.n = 4;
  setup.delta = 3;
  setup.id_space = 5;
  setup.rank_bits = 3;
  const auto result = derandomize_mis(setup, 0, 7);
  ASSERT_TRUE(result.found);
  // |G_{n,Δ}| << 2^{n²}: even with ID assignments included, log2 of the
  // instance count stays below n².
  EXPECT_LT(std::log2(static_cast<double>(result.instances)),
            result.log2_thm3_bound);
}

TEST(Derandomize, RejectsOversizedSetups) {
  DerandSetup setup;
  setup.n = 6;  // > 5
  EXPECT_THROW(derandomize_mis(setup, 0, 1), CheckFailure);
}

}  // namespace
}  // namespace ckp
