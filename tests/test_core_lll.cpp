#include "core/lll.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/regular.hpp"
#include "lcl/verify_orientation.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

// Rebuilds the orientation from an LLL assignment for verification.
Orientation to_orientation(const std::vector<int>& assignment) {
  Orientation out(assignment.size());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    out[i] = assignment[i] == 1 ? +1 : -1;
  }
  return out;
}

TEST(LllInstanceChecks, Validation) {
  LllInstance inst;
  EXPECT_THROW(inst.validate(), CheckFailure);
  inst.num_variables = 2;
  inst.scopes = {{0, 1}};
  inst.violated = [](int, const std::vector<int>&) { return false; };
  inst.sample = [](int, Rng&) { return 0; };
  EXPECT_NO_THROW(inst.validate());
  inst.scopes = {{0, 5}};  // variable out of range
  EXPECT_THROW(inst.validate(), CheckFailure);
}

class SinklessLll : public ::testing::TestWithParam<std::pair<NodeId, int>> {};

TEST_P(SinklessLll, ProducesSinklessOrientation) {
  const auto [n, d] = GetParam();
  Rng rng(mix_seed(1401, static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(d)));
  const Graph g = make_random_regular(n, d, rng);
  const auto inst = sinkless_orientation_lll(g);
  RoundLedger ledger;
  const auto r = moser_tardos_parallel(inst, 5, ledger);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(verify_sinkless_orientation(g, to_orientation(r.assignment)).ok);
  EXPECT_EQ(r.rounds, ledger.rounds());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SinklessLll,
                         ::testing::Values(std::pair<NodeId, int>{30, 3},
                                           std::pair<NodeId, int>{200, 3},
                                           std::pair<NodeId, int>{200, 4},
                                           std::pair<NodeId, int>{500, 6},
                                           std::pair<NodeId, int>{1000, 8}));

TEST(SinklessLllChecks, FewIterationsAtHighDegree) {
  // p·d² = d²/2^d drops fast: at d=8 the LLL criterion holds comfortably and
  // resampling converges in a handful of iterations.
  Rng rng(1409);
  const Graph g = make_random_regular(4000, 8, rng);
  const auto inst = sinkless_orientation_lll(g);
  RoundLedger ledger;
  const auto r = moser_tardos_parallel(inst, 3, ledger);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.iterations, 10);
}

TEST(SinklessLllChecks, RejectsDegreeOne) {
  EXPECT_THROW(sinkless_orientation_lll(make_path(4)), CheckFailure);
}

TEST(HypergraphLll, TwoColorsRandomInstances) {
  // Densities chosen inside the LLL-friendly regime (e·p·(D+1) ~ 1); the
  // k=3/m=400 regime is far beyond property-B satisfiability and is *not*
  // an LLL failure, just an unsatisfiable instance.
  Rng rng(1413);
  for (const auto& [k, m] : std::vector<std::pair<int, int>>{
           {3, 100}, {4, 250}, {5, 300}}) {
    const auto h = make_random_hypergraph(300, m, k, rng);
    const auto inst = hypergraph_two_coloring_lll(h);
    RoundLedger ledger;
    const auto r = moser_tardos_parallel(inst, 9, ledger);
    ASSERT_TRUE(r.completed) << k;
    // No monochromatic edge.
    for (const auto& edge : h.edges) {
      bool all_same = true;
      for (int v : edge) {
        if (r.assignment[static_cast<std::size_t>(v)] !=
            r.assignment[static_cast<std::size_t>(edge.front())]) {
          all_same = false;
        }
      }
      EXPECT_FALSE(all_same);
    }
  }
}

TEST(HypergraphLll, GeneratorShape) {
  Rng rng(1417);
  const auto h = make_random_hypergraph(50, 80, 4, rng);
  EXPECT_EQ(h.edges.size(), 80u);
  for (const auto& edge : h.edges) {
    EXPECT_EQ(edge.size(), 4u);
    EXPECT_TRUE(std::is_sorted(edge.begin(), edge.end()));
  }
}

TEST(MoserTardos, DeterministicGivenSeed) {
  Rng rng(1423);
  const Graph g = make_random_regular(200, 4, rng);
  const auto inst = sinkless_orientation_lll(g);
  RoundLedger l1, l2;
  const auto a = moser_tardos_parallel(inst, 31, l1);
  const auto b = moser_tardos_parallel(inst, 31, l2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(MoserTardos, IterationCapReported) {
  // An unsatisfiable system: one variable, an event violated on both values.
  LllInstance inst;
  inst.num_variables = 1;
  inst.scopes = {{0}};
  inst.violated = [](int, const std::vector<int>&) { return true; };
  inst.sample = [](int, Rng& rng) { return rng.next_bit() ? 1 : 0; };
  RoundLedger ledger;
  const auto r = moser_tardos_parallel(inst, 1, ledger, /*max_iterations=*/20);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.iterations, 20);
}

}  // namespace
}  // namespace ckp
