#include "core/delta_coloring_thm10.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

struct Thm10Case {
  int delta;
  std::uint64_t seed;
};

class Thm10Sweep : public ::testing::TestWithParam<Thm10Case> {};

TEST_P(Thm10Sweep, ProperDeltaColoringOnTrees) {
  const auto [delta, seed] = GetParam();
  Rng rng(mix_seed(seed, static_cast<std::uint64_t>(delta), 0xAA));
  for (NodeId n : {1, 2, 100, 1000, 5000}) {
    const Graph g = make_random_tree(n, delta, rng);
    RoundLedger ledger;
    const auto result = delta_coloring_thm10(g, delta, seed, ledger);
    EXPECT_TRUE(verify_coloring(g, result.colors, delta).ok)
        << "n=" << n << " delta=" << delta << " seed=" << seed;
    EXPECT_EQ(result.rounds, ledger.rounds());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Thm10Sweep,
                         ::testing::Values(Thm10Case{16, 1}, Thm10Case{32, 1},
                                           Thm10Case{64, 2}, Thm10Case{100, 3},
                                           Thm10Case{128, 1}));

TEST(Thm10, RejectsSmallDelta) {
  const Graph g = make_path(10);
  RoundLedger ledger;
  EXPECT_THROW(delta_coloring_thm10(g, 8, 1, ledger), CheckFailure);
}

TEST(Thm10, CompleteTree) {
  const Graph g = make_complete_tree(30000, 32);
  RoundLedger ledger;
  const auto result = delta_coloring_thm10(g, 32, 9, ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, 32).ok);
}

TEST(Thm10, BadComponentsWithinTheoremBound) {
  // Paper claim: components of bad vertices have size <= Δ⁴ log n w.h.p.
  // (with practical constants the measured sizes are far below that).
  Rng rng(801);
  const int delta = 64;
  const Graph g = make_random_tree(20000, delta, rng);
  RoundLedger ledger;
  const auto result = delta_coloring_thm10(g, delta, 3, ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, delta).ok);
  const double bound = std::pow(static_cast<double>(delta), 4.0) *
                       std::log2(20000.0);
  EXPECT_LT(static_cast<double>(result.largest_bad_component), bound);
}

TEST(Thm10, PhaseAccounting) {
  Rng rng(809);
  const Graph g = make_random_tree(3000, 25, rng);
  RoundLedger ledger;
  const auto result = delta_coloring_thm10(g, 25, 5, ledger);
  EXPECT_EQ(result.trace.total_rounds(), result.rounds);
  EXPECT_GE(result.phase1_iterations, 2);
  EXPECT_LE(result.bad_vertices, g.num_nodes());
  EXPECT_LE(result.largest_bad_component, result.bad_vertices);
}

TEST(Thm10, PaperConstantsStillCorrect) {
  // With the paper's proof constants the c_i schedule barely moves, almost
  // everything lands in Phase 2 — but the output stays a proper coloring.
  Thm10Params paper;
  paper.alpha = 200.0;
  paper.growth_divisor = 3.0 * 200.0 * std::exp(200.0) >
                                 1e300  // exp(200) overflows the divisor's
                             ? 1e300    // intent; clamp to "never grows"
                             : 3.0 * 200.0 * std::exp(200.0);
  paper.cap_exponent = 0.1;
  paper.max_iterations = 8;
  Rng rng(811);
  const Graph g = make_random_tree(2000, 32, rng);
  RoundLedger ledger;
  const auto result = delta_coloring_thm10(g, 32, 13, ledger, paper);
  EXPECT_TRUE(verify_coloring(g, result.colors, 32).ok);
}

TEST(Thm10, DeterministicGivenSeed) {
  Rng rng(821);
  const Graph g = make_random_tree(2500, 40, rng);
  RoundLedger l1, l2;
  const auto a = delta_coloring_thm10(g, 40, 77, l1);
  const auto b = delta_coloring_thm10(g, 40, 77, l2);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Thm10, RoundsFlatInN) {
  Rng rng(823);
  const Graph small = make_random_tree(2000, 32, rng);
  const Graph large = make_random_tree(64000, 32, rng);
  RoundLedger ls, ll;
  const auto rs = delta_coloring_thm10(small, 32, 41, ls);
  const auto rl = delta_coloring_thm10(large, 32, 41, ll);
  EXPECT_TRUE(verify_coloring(large, rl.colors, 32).ok);
  EXPECT_LE(rl.rounds, rs.rounds + rs.rounds / 2 + 20);
}

TEST(Thm10, ManySeedsNeverFail) {
  Rng rng(827);
  const Graph g = make_random_tree(1500, 20, rng);
  for (std::uint64_t seed = 100; seed < 115; ++seed) {
    RoundLedger ledger;
    const auto result = delta_coloring_thm10(g, 20, seed, ledger);
    EXPECT_TRUE(verify_coloring(g, result.colors, 20).ok) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace ckp
