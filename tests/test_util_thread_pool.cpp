#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ckp {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 4, [&](std::int64_t lo, std::int64_t hi, int) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PartitionIsContiguousBalancedAndDeterministic) {
  // 10 items over 4 chunks: sizes 3,3,2,2 in index order.
  const auto r0 = ThreadPool::chunk_range(0, 10, 4, 0);
  const auto r1 = ThreadPool::chunk_range(0, 10, 4, 1);
  const auto r2 = ThreadPool::chunk_range(0, 10, 4, 2);
  const auto r3 = ThreadPool::chunk_range(0, 10, 4, 3);
  EXPECT_EQ(r0, (std::pair<std::int64_t, std::int64_t>{0, 3}));
  EXPECT_EQ(r1, (std::pair<std::int64_t, std::int64_t>{3, 6}));
  EXPECT_EQ(r2, (std::pair<std::int64_t, std::int64_t>{6, 8}));
  EXPECT_EQ(r3, (std::pair<std::int64_t, std::int64_t>{8, 10}));
  // Nonzero begin offsets the whole partition.
  EXPECT_EQ(ThreadPool::chunk_range(100, 110, 4, 0),
            (std::pair<std::int64_t, std::int64_t>{100, 103}));
}

TEST(ThreadPool, MoreChunksThanItemsYieldsEmptyTails) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  std::atomic<int> nonempty{0};
  pool.parallel_for(0, 3, 8, [&](std::int64_t lo, std::int64_t hi, int) {
    if (lo < hi) nonempty.fetch_add(1);
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  EXPECT_EQ(nonempty.load(), 3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  std::atomic<int> visited{0};
  pool.parallel_for(5, 5, 2, [&](std::int64_t lo, std::int64_t hi, int) {
    visited.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(visited.load(), 0);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 4,
                        [&](std::int64_t lo, std::int64_t, int) {
                          CKP_CHECK_MSG(lo != 0, "chunk 0 fails");
                        }),
      CheckFailure);
  // The pool survives a failed job and runs the next one.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, 4, [&](std::int64_t lo, std::int64_t hi, int) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WorkerFlagVisibleInsideChunks) {
  EXPECT_FALSE(in_parallel_worker());
  ThreadPool pool(2);
  std::atomic<int> flagged{0};
  pool.parallel_for(0, 2, 2, [&](std::int64_t lo, std::int64_t hi, int) {
    for (std::int64_t i = lo; i < hi; ++i) {
      if (in_parallel_worker()) flagged.fetch_add(1);
    }
  });
  EXPECT_EQ(flagged.load(), 2);
  EXPECT_FALSE(in_parallel_worker());
}

// ---------------------------------------------------------------------------
// parallel_for_dynamic: same deterministic chunk partition as parallel_for,
// work-stealing assignment of chunks to workers.

TEST(ThreadPoolDynamic, CoversRangeExactlyOnceWithManyChunks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_dynamic(0, 1000, 4, 32,
                            [&](std::int64_t lo, std::int64_t hi, int) {
                              for (std::int64_t i = lo; i < hi; ++i) {
                                hits[static_cast<std::size_t>(i)].fetch_add(1);
                              }
                            });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolDynamic, ChunkBoundariesMatchTheStaticPartition) {
  // The item→chunk map must be chunk_range, the same pure function of
  // (range, chunks) the static scheduler uses — that is what makes the two
  // schedulers interchangeable under the engine's merge contract.
  ThreadPool pool(4);
  const int chunks = 7;
  std::vector<std::atomic<int>> owner(100);
  pool.parallel_for_dynamic(0, 100, 4, chunks,
                            [&](std::int64_t lo, std::int64_t hi, int chunk) {
                              for (std::int64_t i = lo; i < hi; ++i) {
                                owner[static_cast<std::size_t>(i)].store(chunk);
                              }
                            });
  for (int c = 0; c < chunks; ++c) {
    const auto [lo, hi] = ThreadPool::chunk_range(0, 100, chunks, c);
    for (std::int64_t i = lo; i < hi; ++i) {
      EXPECT_EQ(owner[static_cast<std::size_t>(i)].load(), c) << "item " << i;
    }
  }
}

TEST(ThreadPoolDynamic, SkewedChunksAllComplete) {
  // One chunk carries ~100x the work of the rest; stealing must still cover
  // every chunk exactly once and return only when all are done.
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.parallel_for_dynamic(
      0, 64, 4, 16, [&](std::int64_t lo, std::int64_t hi, int chunk) {
        std::int64_t acc = 0;
        const std::int64_t spin = chunk == 0 ? 400000 : 4000;
        for (std::int64_t i = 0; i < spin; ++i) acc += i ^ (i >> 3);
        total.fetch_add(acc != -1 ? hi - lo : 0);
      });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolDynamic, EmptyRangeAndSequentialFallback) {
  ThreadPool pool(2);
  std::atomic<int> visited{0};
  pool.parallel_for_dynamic(5, 5, 2, 4,
                            [&](std::int64_t lo, std::int64_t hi, int) {
                              visited.fetch_add(static_cast<int>(hi - lo));
                            });
  EXPECT_EQ(visited.load(), 0);
  // max_workers=1 degrades to the calling thread, ascending chunk order.
  std::vector<int> order;
  pool.parallel_for_dynamic(0, 8, 1, 4,
                            [&](std::int64_t, std::int64_t, int chunk) {
                              order.push_back(chunk);
                            });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ThreadPoolDynamic, ExceptionsPropagateAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_dynamic(
                   0, 100, 4, 16,
                   [&](std::int64_t, std::int64_t, int chunk) {
                     CKP_CHECK_MSG(chunk != 3, "chunk 3 fails");
                   }),
               CheckFailure);
  std::atomic<int> count{0};
  pool.parallel_for_dynamic(0, 100, 4, 16,
                            [&](std::int64_t lo, std::int64_t hi, int) {
                              count.fetch_add(static_cast<int>(hi - lo));
                            });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolDynamic, CountsAsOneJobInStats) {
  ThreadPool pool(2);
  const ThreadPoolStats before = pool.stats();
  pool.parallel_for_dynamic(0, 16, 2, 8,
                            [&](std::int64_t, std::int64_t, int) {});
  const ThreadPoolStats after = pool.stats();
  EXPECT_EQ(after.jobs, before.jobs + 1);
  EXPECT_GE(after.dispatch_seconds, before.dispatch_seconds);
}

TEST(ThreadPool, SharedPoolGrowsToLargestRequest) {
  EXPECT_GE(shared_pool(2).num_threads(), 2);
  EXPECT_GE(shared_pool(5).num_threads(), 5);
  EXPECT_GE(shared_pool(2).num_threads(), 5);  // never shrinks
}

TEST(ThreadPool, DefaultEngineThreadsPrefersExplicitOverEnv) {
  ASSERT_EQ(setenv("CKP_THREADS", "3", 1), 0);
  EXPECT_EQ(env_thread_count(), 3);
  set_default_engine_threads(7);
  EXPECT_EQ(default_engine_threads(), 7);
  set_default_engine_threads(1);
  EXPECT_EQ(default_engine_threads(), 1);
  ASSERT_EQ(unsetenv("CKP_THREADS"), 0);
  EXPECT_EQ(env_thread_count(), 0);
}

TEST(ThreadPool, EnvThreadCountRejectsGarbage) {
  ASSERT_EQ(setenv("CKP_THREADS", "banana", 1), 0);
  EXPECT_EQ(env_thread_count(), 0);
  ASSERT_EQ(setenv("CKP_THREADS", "0", 1), 0);
  EXPECT_EQ(env_thread_count(), 0);
  ASSERT_EQ(setenv("CKP_THREADS", "-4", 1), 0);
  EXPECT_EQ(env_thread_count(), 0);
  ASSERT_EQ(unsetenv("CKP_THREADS"), 0);
}

}  // namespace
}  // namespace ckp
