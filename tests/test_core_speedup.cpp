#include "core/speedup.hpp"

#include <gtest/gtest.h>

#include "algo/be_tree_coloring.hpp"
#include "algo/mis_deterministic.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "lcl/verify_mis.hpp"
#include "local/ids.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

// Inner algorithm: deterministic MIS. Its runtime is f(Δ) + O(log* ℓ), a
// valid premise for the transform. Output labels: 1 = in MIS.
std::vector<int> inner_mis(const Graph& g, const std::vector<std::uint64_t>& ids,
                           std::uint64_t declared_n, int delta,
                           RoundLedger& ledger) {
  (void)declared_n;
  const auto result = mis_deterministic(g, ids, delta, ledger);
  return std::vector<int>(result.in_set.begin(), result.in_set.end());
}

TEST(Horizons, SaneValues) {
  EXPECT_GE(thm6_horizon(0, 1, 3), 4);
  EXPECT_GT(thm6_horizon(5, 1, 3), thm6_horizon(0, 1, 3));
  EXPECT_GE(thm8_horizon(0.25, 1, 8, 1), 2 + 2);
  EXPECT_GT(thm8_horizon(1.0, 2, 64, 1), thm8_horizon(1.0, 1, 64, 1));
}

TEST(Speedup, TransformedMisIsValid) {
  Rng rng(1001);
  const Graph g = make_random_tree(400, 3, rng);
  const auto ids = random_ids(400, 32, rng);
  RoundLedger ledger;
  const auto result =
      speedup_transform(g, ids, 3, /*horizon=*/6, /*budget=*/0, inner_mis,
                        ledger);
  std::vector<char> in_set(result.labels.begin(), result.labels.end());
  EXPECT_TRUE(verify_mis(g, in_set).ok);
  EXPECT_EQ(result.total_rounds,
            result.shortening_rounds + result.inner_rounds);
  EXPECT_EQ(result.total_rounds, ledger.rounds());
}

TEST(Speedup, ShortIdsAreShort) {
  // The whole point: ℓ' depends on Δ and the horizon, not on n.
  Rng rng(1003);
  const Graph small = make_random_tree(200, 3, rng);
  const Graph large = make_random_tree(6000, 3, rng);
  RoundLedger ls, ll;
  const auto rs = speedup_transform(small, random_ids(200, 40, rng), 3, 6, 0,
                                    inner_mis, ls);
  const auto rl = speedup_transform(large, random_ids(6000, 40, rng), 3, 6, 0,
                                    inner_mis, ll);
  EXPECT_LE(rs.short_id_bits, 40);
  EXPECT_LE(rl.short_id_bits, rs.short_id_bits + 2);
  // Pretend-n depends on Δ and the horizon, not on the true n: growing the
  // graph 30x leaves it (essentially) unchanged.
  EXPECT_LE(rl.declared_n, 4 * rs.declared_n);
}

TEST(Speedup, InnerRoundsFlatInN) {
  Rng rng(1007);
  const Graph small = make_random_tree(200, 3, rng);
  const Graph large = make_random_tree(8000, 3, rng);
  RoundLedger ls, ll;
  const auto rs = speedup_transform(small, random_ids(200, 40, rng), 3, 6, 0,
                                    inner_mis, ls);
  const auto rl = speedup_transform(large, random_ids(8000, 40, rng), 3, 6, 0,
                                    inner_mis, ll);
  EXPECT_LE(rl.inner_rounds, rs.inner_rounds + 4);
}

TEST(Speedup, BudgetCheckFlagsViolations) {
  // Feed the transform an inner algorithm with Θ(log_Δ n') behaviour — tree
  // Δ-coloring via Theorem 9 — and a budget matching the f(Δ)+O(log* ℓ)
  // premise. On large inputs the premise is false, and the check says so:
  // this is the paper's contrapositive use of Theorem 6 (a Δ-coloring
  // algorithm that fast would contradict the randomized lower bound).
  auto inner_tree_coloring = [](const Graph& g,
                                const std::vector<std::uint64_t>& ids,
                                std::uint64_t declared_n, int delta,
                                RoundLedger& ledger) {
    (void)declared_n;
    const auto result = be_tree_coloring(g, delta, ids, ledger);
    return result.colors;
  };
  Rng rng(1009);
  const Graph g = make_complete_tree(20000, 3);
  const auto ids = random_ids(20000, 40, rng);
  RoundLedger ledger;
  // A tight budget representing "constant f(Δ) plus a few rounds".
  const auto result = speedup_transform(g, ids, 3, 6, /*budget=*/12,
                                        inner_tree_coloring, ledger);
  // The output is still a proper coloring (Theorem 9 is correct; it is just
  // not *fast*) — but the budget is blown, certifying the premise violation.
  EXPECT_TRUE(verify_coloring(g, result.labels, 3).ok);
  EXPECT_FALSE(result.within_budget);
  EXPECT_GT(result.inner_rounds, result.budget);
}

TEST(Speedup, BudgetSatisfiedForValidPremise) {
  Rng rng(1013);
  const Graph g = make_random_tree(3000, 3, rng);
  const auto ids = random_ids(3000, 40, rng);
  RoundLedger ledger;
  // det-MIS inner rounds = Linial rounds + palette ≈ 55 for Δ=3; give a
  // budget in that class (independent of n).
  const auto result = speedup_transform(g, ids, 3, 6, 80, inner_mis, ledger);
  EXPECT_TRUE(result.within_budget);
}

TEST(Speedup, RejectsBadArguments) {
  const Graph g = make_path(4);
  RoundLedger ledger;
  EXPECT_THROW(
      speedup_transform(g, sequential_ids(4), 2, 0, 0, inner_mis, ledger),
      CheckFailure);
  EXPECT_THROW(
      speedup_transform(g, sequential_ids(3), 2, 2, 0, inner_mis, ledger),
      CheckFailure);
}

}  // namespace
}  // namespace ckp
