#include <gtest/gtest.h>

#include "algo/color_reduction.hpp"
#include "algo/cole_vishkin.hpp"
#include "algo/greedy_color.hpp"
#include "algo/linial.hpp"
#include "graph/generators.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

TEST(ReducePalette, ToDeltaPlusOne) {
  Rng rng(301);
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    const auto ids = random_ids(g.num_nodes(), 32, rng);
    RoundLedger ledger;
    auto coloring = linial_coloring(g, ids, std::max(1, g.max_degree()), ledger);
    const int target = g.max_degree() + 1;
    if (target > coloring.palette) continue;
    const int before = ledger.rounds();
    reduce_palette(g, coloring.colors, coloring.palette, target, ledger);
    EXPECT_TRUE(verify_coloring(g, coloring.colors, target).ok) << name;
    EXPECT_EQ(ledger.rounds() - before, coloring.palette - target) << name;
  }
}

TEST(ReducePalette, RejectsTargetBelowDeltaPlusOne) {
  const Graph g = make_star(5);  // Δ=4
  std::vector<int> colors{0, 1, 2, 3, 4};
  RoundLedger ledger;
  EXPECT_THROW(reduce_palette(g, colors, 5, 4, ledger), CheckFailure);
}

TEST(ReducePalette, NoopWhenAlreadyAtTarget) {
  const Graph g = make_path(4);
  std::vector<int> colors{0, 1, 2, 0};
  RoundLedger ledger;
  reduce_palette(g, colors, 3, 3, ledger);
  EXPECT_EQ(ledger.rounds(), 0);
  EXPECT_TRUE(verify_coloring(g, colors, 3).ok);
}

TEST(GreedyBySchedule, FullPalette) {
  const Graph g = make_cycle(8);
  // Schedule = proper 3-coloring of C8 used as processing order.
  std::vector<int> schedule{0, 1, 0, 1, 0, 1, 0, 2};
  ASSERT_TRUE(verify_coloring(g, schedule, 3).ok);
  std::vector<int> colors(8, -1);
  RoundLedger ledger;
  greedy_color_by_schedule(g, schedule, 3, 3, std::vector<char>(8, 1),
                           /*respect_inactive=*/false, nullptr, colors, ledger);
  EXPECT_TRUE(verify_coloring(g, colors, 3).ok);
  EXPECT_EQ(ledger.rounds(), 3);
}

TEST(GreedyBySchedule, ListColoringRestriction) {
  const Graph g = make_path(5);
  std::vector<int> schedule{0, 1, 0, 1, 0};
  std::vector<int> colors(5, -1);
  RoundLedger ledger;
  // Forbid color 0 everywhere: nodes must 2-color the path with {1,2}.
  auto allowed = [](NodeId, int c) { return c != 0; };
  greedy_color_by_schedule(g, schedule, 2, 3, std::vector<char>(5, 1), false,
                           allowed, colors, ledger);
  EXPECT_TRUE(verify_coloring(g, colors, 3).ok);
  for (int c : colors) EXPECT_NE(c, 0);
}

TEST(GreedyBySchedule, RespectsInactiveColors) {
  const Graph g = make_path(3);
  std::vector<int> schedule{0, 1, 0};
  std::vector<int> colors{-1, 0, -1};  // middle node pre-colored 0, inactive
  std::vector<char> active{1, 0, 1};
  RoundLedger ledger;
  greedy_color_by_schedule(g, schedule, 2, 2, active, true, nullptr, colors,
                           ledger);
  EXPECT_EQ(colors[0], 1);
  EXPECT_EQ(colors[2], 1);
}

TEST(GreedyBySchedule, ThrowsWhenNoColorFree) {
  const Graph g = make_star(4);  // Δ=3, palette 2 too small for the hub
  std::vector<int> schedule{1, 0, 0, 0};
  std::vector<int> colors(4, -1);
  RoundLedger ledger;
  EXPECT_THROW(
      greedy_color_by_schedule(g, schedule, 2, 1, std::vector<char>(4, 1),
                               false, nullptr, colors, ledger),
      CheckFailure);
}

TEST(ReducePaletteFast, ToDeltaPlusOneOnZoo) {
  Rng rng(307);
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    const auto ids = random_ids(g.num_nodes(), 32, rng);
    RoundLedger ledger;
    auto coloring = linial_coloring(g, ids, std::max(1, g.max_degree()), ledger);
    const int target = g.max_degree() + 1;
    if (target > coloring.palette) continue;
    reduce_palette_fast(g, coloring.colors, coloring.palette, target, ledger);
    EXPECT_TRUE(verify_coloring(g, coloring.colors, target).ok) << name;
  }
}

TEST(ReducePaletteFast, LogarithmicallyFewerRoundsThanNaive) {
  Rng rng(311);
  const Graph g = make_complete_tree(20000, 24);
  const auto ids = random_ids(20000, 40, rng);
  RoundLedger lfast, lnaive;
  auto c1 = linial_coloring(g, ids, 24, lfast);
  auto c2 = c1;
  const int before_fast = lfast.rounds();
  reduce_palette_fast(g, c1.colors, c1.palette, 25, lfast);
  const int fast_rounds = lfast.rounds() - before_fast;
  reduce_palette(g, c2.colors, c2.palette, 25, lnaive);
  const int naive_rounds = lnaive.rounds();
  EXPECT_TRUE(verify_coloring(g, c1.colors, 25).ok);
  EXPECT_TRUE(verify_coloring(g, c2.colors, 25).ok);
  EXPECT_EQ(naive_rounds, c2.palette - 25);
  // Blocked halving: ~ target * log2(palette/target) rounds.
  EXPECT_LT(fast_rounds, naive_rounds / 3);
}

TEST(ReducePaletteFast, NoopAndErrors) {
  const Graph g = make_star(5);
  std::vector<int> colors{0, 1, 2, 3, 4};
  RoundLedger ledger;
  reduce_palette_fast(g, colors, 5, 5, ledger);
  EXPECT_EQ(ledger.rounds(), 0);
  EXPECT_THROW(reduce_palette_fast(g, colors, 5, 4, ledger), CheckFailure);
}

class ColeVishkinTrees : public ::testing::TestWithParam<int> {};

TEST_P(ColeVishkinTrees, ThreeColorsAllTreeFixtures) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000 + 17);
  for (const auto& [name, g] : testing::tree_zoo()) {
    const auto ids = random_ids(g.num_nodes(), 40, rng);
    const auto parent = root_tree(g, 0);
    RoundLedger ledger;
    const auto result = cole_vishkin_tree(g, parent, ids, ledger);
    EXPECT_TRUE(verify_coloring(g, result.colors, 3).ok)
        << name << " seed=" << GetParam();
    EXPECT_EQ(result.rounds, ledger.rounds());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColeVishkinTrees, ::testing::Values(1, 2, 3, 4));

TEST(ColeVishkin, RoundsAreLogStarish) {
  Rng rng(311);
  const Graph g = make_path(100000);
  const auto ids = random_ids(100000, 40, rng);
  const auto parent = root_tree(g, 0);
  RoundLedger ledger;
  const auto result = cole_vishkin_tree(g, parent, ids, ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, 3).ok);
  // log*(2^40) phases plus 6 cleanup rounds plus slack.
  EXPECT_LE(result.rounds, 16);
}

TEST(ColeVishkin, RejectsNonAdjacentParent) {
  const Graph g = make_path(4);
  std::vector<NodeId> bogus{kInvalidNode, 0, 0, 2};  // parent(2)=0 not adjacent
  RoundLedger ledger;
  EXPECT_THROW(cole_vishkin_tree(g, bogus, sequential_ids(4), ledger),
               CheckFailure);
}

TEST(ColeVishkin, ForestWithManyRoots) {
  // Two disjoint paths, both rooted at their node of lowest index.
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  std::vector<NodeId> parent{kInvalidNode, 0, 1, kInvalidNode, 3, 4};
  Rng rng(313);
  RoundLedger ledger;
  const auto result = cole_vishkin_tree(g, parent, random_ids(6, 20, rng), ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, 3).ok);
}

}  // namespace
}  // namespace ckp
