#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/trees.hpp"
#include "local/context.hpp"
#include "local/engine.hpp"
#include "local/ids.hpp"
#include "local/trace.hpp"
#include "local/view_engine.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

TEST(Ids, Sequential) {
  const auto ids = sequential_ids(5);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(ids_unique(ids));
}

TEST(Ids, RandomUniqueAndBounded) {
  Rng rng(103);
  const auto ids = random_ids(100, 10, rng);
  EXPECT_TRUE(ids_unique(ids));
  for (auto id : ids) EXPECT_LT(id, 1024u);
  EXPECT_THROW(random_ids(100, 5, rng), CheckFailure);  // 32 < 100
}

TEST(Ids, BfsOrderIsPermutation) {
  const Graph g = make_complete_tree(50, 3);
  const auto ids = bfs_order_ids(g, 0);
  EXPECT_TRUE(ids_unique(ids));
  EXPECT_EQ(ids[0], 0u);  // root gets 0
  const auto rids = reverse_bfs_order_ids(g, 0);
  EXPECT_TRUE(ids_unique(rids));
  EXPECT_EQ(rids[0], 49u);
}

TEST(Ids, BfsOrderCoversDisconnected) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {3, 4}});
  const auto ids = bfs_order_ids(g, 3);
  EXPECT_TRUE(ids_unique(ids));
  EXPECT_EQ(ids[3], 0u);
}

TEST(Ids, BitLength) {
  EXPECT_EQ(id_bit_length({0}), 1);
  EXPECT_EQ(id_bit_length({0, 1, 2, 3}), 2);
  EXPECT_EQ(id_bit_length({1023}), 10);
  EXPECT_EQ(id_bit_length({1024}), 11);
}

TEST(LocalInput, ValidationCatchesErrors) {
  const Graph g = make_path(4);
  LocalInput in;
  EXPECT_THROW(in.validate(), CheckFailure);  // no graph
  in.graph = &g;
  EXPECT_NO_THROW(in.validate());
  in.ids = {1, 2, 3};  // wrong count
  EXPECT_THROW(in.validate(), CheckFailure);
  in.ids = {1, 2, 3, 3};  // duplicate
  EXPECT_THROW(in.validate(), CheckFailure);
  in.ids = {1, 2, 3, 4};
  EXPECT_NO_THROW(in.validate());
  in.declared_delta = 1;  // below true Δ=2
  EXPECT_THROW(in.validate(), CheckFailure);
  in.declared_delta = 5;
  EXPECT_NO_THROW(in.validate());
  in.edge_labels = {0, 1};  // wrong edge count (3 edges)
  EXPECT_THROW(in.validate(), CheckFailure);
}

TEST(LocalInput, EffectiveParameters) {
  const Graph g = make_star(5);
  LocalInput in;
  in.graph = &g;
  EXPECT_EQ(in.effective_n(), 5u);
  EXPECT_EQ(in.effective_delta(), 4);
  in.declared_n = 1000;
  in.declared_delta = 9;
  EXPECT_EQ(in.effective_n(), 1000u);
  EXPECT_EQ(in.effective_delta(), 9);
}

TEST(RoundLedger, SequentialAndParallel) {
  RoundLedger l;
  EXPECT_EQ(l.rounds(), 0);
  l.charge(3);
  l.charge();
  EXPECT_EQ(l.rounds(), 4);
  l.merge_max(7);
  l.merge_max(2);
  EXPECT_EQ(l.rounds(), 11);  // 4 + max(7,2) pending
  l.commit_parallel();
  EXPECT_EQ(l.rounds(), 11);
  l.charge(1);
  EXPECT_EQ(l.rounds(), 12);
  EXPECT_THROW(l.charge(-1), CheckFailure);
}

// A toy engine algorithm: flood the maximum ID. On a connected graph this
// takes exactly the eccentricity of the max-ID node.
struct MaxFlood {
  struct State {
    std::uint64_t best = 0;
    int stable_rounds = 0;
  };

  State init(const NodeEnv& env) { return {env.id, 0}; }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    (void)env;
    std::uint64_t best = self.best;
    for (const State* nb : nbrs) best = std::max(best, nb->best);
    if (best == self.best) {
      ++self.stable_rounds;
    } else {
      self.best = best;
      self.stable_rounds = 0;
    }
    // Without a diameter bound a node cannot locally detect stability; for
    // the test we stop after 2 stable exchanges (enough on these fixtures).
    return self.stable_rounds >= 2;
  }
};

TEST(Engine, FloodsMaximumId) {
  const Graph g = make_path(9);
  LocalInput in;
  in.graph = &g;
  in.ids = sequential_ids(9);
  MaxFlood algo;
  const auto result = run_local(in, algo, 100);
  EXPECT_TRUE(result.all_halted);
  for (const auto& s : result.states) EXPECT_EQ(s.best, 8u);
  // Information from node 8 needs 8 hops to reach node 0, plus the stability
  // margin.
  EXPECT_GE(result.rounds, 8);
  EXPECT_LE(result.rounds, 12);
}

TEST(Engine, RespectsMaxRounds) {
  const Graph g = make_path(50);
  LocalInput in;
  in.graph = &g;
  in.ids = sequential_ids(50);
  MaxFlood algo;
  const auto result = run_local(in, algo, 5);
  EXPECT_FALSE(result.all_halted);
  EXPECT_EQ(result.rounds, 5);
}

// A randomized algorithm must see distinct per-node streams.
struct DrawOnce {
  struct State {
    std::uint64_t value = 0;
  };
  State init(const NodeEnv& env) { return {env.random()()}; }
  bool step(State&, const NodeEnv&, std::span<const State* const>) {
    return true;
  }
};

// Records whether the engine handed the node a private random stream.
struct RngProbe {
  struct State {
    bool had_rng = false;
  };
  State init(const NodeEnv& env) { return {env.rng != nullptr}; }
  bool step(State&, const NodeEnv&, std::span<const State* const>) {
    return true;
  }
};

// Regression: RandLOCAL is defined by the absence of IDs, not by the seed.
// The engine used to treat any input with a nonzero seed as randomized and
// allocate n RNG streams a DetLOCAL algorithm could never legally use.
TEST(Engine, DetInputWithNonzeroSeedGetsNoRngStreams) {
  const Graph g = make_path(6);
  LocalInput in;
  in.graph = &g;
  in.ids = sequential_ids(6);
  in.seed = 12345;  // nonzero seed must not flip a DetLOCAL input to RandLOCAL
  RngProbe algo;
  const auto result = run_local(in, algo, 10);
  EXPECT_TRUE(result.all_halted);
  for (const auto& s : result.states) EXPECT_FALSE(s.had_rng);

  // And asking for randomness in DetLOCAL still fails loudly.
  DrawOnce bad_algo;
  EXPECT_THROW(run_local(in, bad_algo, 10), CheckFailure);
}

TEST(Engine, RandInputGetsRngStreamsEvenWithZeroSeed) {
  const Graph g = make_path(6);
  LocalInput in;
  in.graph = &g;  // no ids => RandLOCAL
  in.seed = 0;
  RngProbe algo;
  const auto result = run_local(in, algo, 10);
  for (const auto& s : result.states) EXPECT_TRUE(s.had_rng);
}

TEST(Engine, RandomStreamsDifferAcrossNodes) {
  const Graph g = make_complete(6);
  LocalInput in;
  in.graph = &g;
  in.seed = 77;
  DrawOnce algo;
  const auto result = run_local(in, algo, 10);
  std::set<std::uint64_t> values;
  for (const auto& s : result.states) values.insert(s.value);
  EXPECT_EQ(values.size(), 6u);
  // Re-running with the same seed reproduces the draws.
  DrawOnce algo2;
  const auto rerun = run_local(in, algo2, 10);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result.states[i].value, rerun.states[i].value);
  }
}

TEST(ViewEngine, BallContentsAndCharging) {
  const Graph g = make_path(10);
  LocalInput in;
  in.graph = &g;
  ViewEngine ve(in);
  const auto view = ve.view(5, 2);
  EXPECT_EQ(view.sub.graph.num_nodes(), 5);  // nodes 3..7
  EXPECT_EQ(view.distance[static_cast<std::size_t>(view.center)], 0);
  EXPECT_EQ(ve.rounds(), 2);
  ve.view(0, 1);
  EXPECT_EQ(ve.rounds(), 2);  // max, not sum
  ve.charge_all(3);
  EXPECT_EQ(ve.rounds(), 5);
}

TEST(Trace, RecordsAndTotals) {
  Trace t;
  t.record("a", 3);
  t.record("b", 4, 99);
  EXPECT_EQ(t.total_rounds(), 7);
  EXPECT_EQ(t.phases().size(), 2u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("phase b"), std::string::npos);
}

}  // namespace
}  // namespace ckp
