#include "util/math.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ckp {
namespace {

TEST(Ilog2, PowersOfTwo) {
  for (int k = 0; k <= 62; ++k) {
    EXPECT_EQ(ilog2(1ULL << k), k) << "k=" << k;
  }
}

TEST(Ilog2, BetweenPowers) {
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(5), 2);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2(1025), 10);
}

TEST(Ilog2, RejectsZero) { EXPECT_THROW(ilog2(0), CheckFailure); }

TEST(CeilLog2, ExactAndBetween) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1ULL << 40), 40);
  EXPECT_EQ(ceil_log2((1ULL << 40) + 1), 41);
}

TEST(LogStar, KnownValues) {
  EXPECT_EQ(log_star(1.0), 0);
  EXPECT_EQ(log_star(2.0), 1);
  EXPECT_EQ(log_star(4.0), 2);
  EXPECT_EQ(log_star(16.0), 3);
  EXPECT_EQ(log_star(65536.0), 4);
  // 2^1000: 1000 -> 9.97 -> 3.32 -> 1.73 -> 0.79, five applications.
  EXPECT_EQ(log_star(std::pow(2.0, 1000.0)), 5);
  // Non-finite arguments are rejected rather than looping forever.
  EXPECT_THROW(log_star(std::numeric_limits<double>::infinity()),
               CheckFailure);
}

TEST(LogStar, Monotone) {
  int prev = 0;
  for (double x = 1; x < 1e18; x *= 3) {
    const int cur = log_star(x);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(IlogBase, Basics) {
  EXPECT_EQ(ilog_base(3, 1), 0);
  EXPECT_EQ(ilog_base(3, 2), 0);
  EXPECT_EQ(ilog_base(3, 3), 1);
  EXPECT_EQ(ilog_base(3, 26), 2);
  EXPECT_EQ(ilog_base(3, 27), 3);
  EXPECT_EQ(ilog_base(10, 99999), 4);
}

TEST(CeilLogBase, Basics) {
  EXPECT_EQ(ceil_log_base(3, 1), 0);
  EXPECT_EQ(ceil_log_base(3, 3), 1);
  EXPECT_EQ(ceil_log_base(3, 4), 2);
  EXPECT_EQ(ceil_log_base(3, 9), 2);
  EXPECT_EQ(ceil_log_base(3, 10), 3);
}

TEST(IpowSat, NormalAndSaturating) {
  EXPECT_EQ(ipow_sat(2, 10), 1024u);
  EXPECT_EQ(ipow_sat(3, 0), 1u);
  EXPECT_EQ(ipow_sat(0, 5), 0u);
  EXPECT_EQ(ipow_sat(2, 64), UINT64_MAX);
  EXPECT_EQ(ipow_sat(10, 30), UINT64_MAX);
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
}

TEST(Isqrt, ExactSquaresAndNeighbors) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(17), 4u);
  const std::uint64_t big = 3037000499ULL;  // floor(sqrt(2^63))-ish
  EXPECT_EQ(isqrt(big * big), big);
  EXPECT_EQ(isqrt(big * big - 1), big - 1);
}

class IsqrtSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsqrtSweep, Definition) {
  const std::uint64_t x = GetParam();
  const std::uint64_t s = isqrt(x);
  EXPECT_LE(s * s, x);
  EXPECT_GT((s + 1) * (s + 1), x);
}

INSTANTIATE_TEST_SUITE_P(Values, IsqrtSweep,
                         ::testing::Values(2u, 3u, 8u, 24u, 99u, 1000u, 4095u,
                                           4096u, 4097u, 123456789u,
                                           987654321123ULL));

}  // namespace
}  // namespace ckp
