#include "graph/trees.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

TEST(CompleteTree, StructureAndDegrees) {
  for (int delta : {2, 3, 5, 8}) {
    for (NodeId n : {1, 2, 10, 100, 500}) {
      const Graph g = make_complete_tree(n, delta);
      EXPECT_TRUE(is_tree(g)) << "n=" << n << " delta=" << delta;
      EXPECT_LE(g.max_degree(), delta);
    }
  }
  // A full three-level Δ=3 tree: root(3 children), each child 2 children.
  const Graph g = make_complete_tree(10, 3);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 3);
}

TEST(CompleteTree, DiameterLogarithmic) {
  const Graph g = make_complete_tree(3280, 4);  // ~3^7 nodes
  EXPECT_TRUE(is_tree(g));
  const int diam = tree_diameter(g);
  EXPECT_GE(diam, 10);
  EXPECT_LE(diam, 18);
}

TEST(RandomTree, RespectsDegreeCap) {
  Rng rng(51);
  for (int delta : {2, 3, 4, 16}) {
    const Graph g = make_random_tree(300, delta, rng);
    EXPECT_TRUE(is_tree(g));
    EXPECT_LE(g.max_degree(), delta);
  }
}

TEST(RandomTree, DegreeTwoIsPath) {
  Rng rng(53);
  const Graph g = make_random_tree(50, 2, rng);
  EXPECT_TRUE(is_tree(g));
  EXPECT_LE(g.max_degree(), 2);
  int leaves = 0;
  for (NodeId v = 0; v < 50; ++v) {
    if (g.degree(v) == 1) ++leaves;
  }
  EXPECT_EQ(leaves, 2);
}

TEST(PruferTree, AlwaysTree) {
  Rng rng(57);
  for (NodeId n : {1, 2, 3, 10, 100, 777}) {
    const Graph g = make_prufer_tree(n, rng);
    EXPECT_TRUE(is_tree(g)) << n;
  }
}

TEST(PruferTree, CoversDifferentShapes) {
  // Over many samples the max degree should vary (uniform trees are diverse).
  Rng rng(59);
  int min_max_deg = 1 << 20;
  int max_max_deg = 0;
  for (int s = 0; s < 30; ++s) {
    const Graph g = make_prufer_tree(40, rng);
    min_max_deg = std::min(min_max_deg, g.max_degree());
    max_max_deg = std::max(max_max_deg, g.max_degree());
  }
  EXPECT_LT(min_max_deg, max_max_deg);
}

TEST(Caterpillar, Structure) {
  const Graph g = make_caterpillar(5, 3);
  EXPECT_EQ(g.num_nodes(), 5 + 15);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.max_degree(), 3 + 2);  // middle spine: 2 spine nbrs + 3 legs
}

TEST(Spider, Structure) {
  const Graph g = make_spider(6, 4);
  EXPECT_EQ(g.num_nodes(), 25);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 6);
  EXPECT_EQ(tree_diameter(g), 8);
}

TEST(IsTree, NegativeCases) {
  EXPECT_FALSE(is_tree(make_cycle(5)));
  // Forest with 2 components: right edge count minus one, disconnected.
  EXPECT_FALSE(is_tree(Graph::from_edges(4, {{0, 1}, {2, 3}})));
  // Connected with extra edge.
  EXPECT_FALSE(is_tree(Graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}})));
}

TEST(RootTree, ParentsAreNeighborsAndAcyclic) {
  Rng rng(61);
  const Graph g = make_random_tree(200, 4, rng);
  const auto parent = root_tree(g, 7);
  EXPECT_EQ(parent[7], kInvalidNode);
  for (NodeId v = 0; v < 200; ++v) {
    if (v == 7) continue;
    ASSERT_NE(parent[static_cast<std::size_t>(v)], kInvalidNode);
    EXPECT_TRUE(g.has_edge(v, parent[static_cast<std::size_t>(v)]));
    // Walking up reaches the root without cycling.
    NodeId cur = v;
    int steps = 0;
    while (cur != 7) {
      cur = parent[static_cast<std::size_t>(cur)];
      ASSERT_LE(++steps, 200);
    }
  }
}

TEST(RootTree, RequiresConnectivity) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(root_tree(g, 0), CheckFailure);
}

TEST(TreeDiameter, KnownValues) {
  EXPECT_EQ(tree_diameter(make_path(10)), 9);
  EXPECT_EQ(tree_diameter(make_star(10)), 2);
  EXPECT_EQ(tree_diameter(Graph::from_edges(1, {})), 0);
}

}  // namespace
}  // namespace ckp
