#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/trees.hpp"
#include "lcl/problem.hpp"
#include "lcl/verify_coloring.hpp"
#include "lcl/verify_edge_coloring.hpp"
#include "lcl/verify_matching.hpp"
#include "lcl/verify_mis.hpp"
#include "lcl/verify_orientation.hpp"
#include "lcl/verify_ruling_set.hpp"

namespace ckp {
namespace {

TEST(VerifyColoring, AcceptsProper) {
  const Graph g = make_cycle(6);
  EXPECT_TRUE(verify_coloring(g, std::vector<int>{0, 1, 0, 1, 0, 1}, 2).ok);
}

TEST(VerifyColoring, RejectsMonochromaticEdge) {
  const Graph g = make_path(3);
  const auto r = verify_coloring(g, std::vector<int>{0, 0, 1}, 2);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.edge, kInvalidEdge);
}

TEST(VerifyColoring, RejectsOutOfPalette) {
  const Graph g = make_path(2);
  EXPECT_FALSE(verify_coloring(g, std::vector<int>{0, 2}, 2).ok);
  EXPECT_FALSE(verify_coloring(g, std::vector<int>{0, -1}, 2).ok);
  EXPECT_FALSE(verify_coloring(g, std::vector<int>{0}, 2).ok);
}

TEST(VerifyPartialColoring, AllowsUncolored) {
  const Graph g = make_path(3);
  EXPECT_TRUE(verify_partial_coloring(g, std::vector<int>{-1, 0, -1}, 1).ok);
  EXPECT_FALSE(verify_partial_coloring(g, std::vector<int>{0, 0, -1}, 1).ok);
}

TEST(VerifySinklessColoring, ForbiddenTriple) {
  // Path 0-1 with edge color 1: both endpoints colored 1 => forbidden.
  const Graph g = make_path(2);
  const std::vector<int> ec{1};
  EXPECT_FALSE(
      verify_sinkless_coloring(g, std::vector<int>{1, 1}, ec, 3).ok);
  EXPECT_TRUE(verify_sinkless_coloring(g, std::vector<int>{1, 2}, ec, 3).ok);
  EXPECT_TRUE(verify_sinkless_coloring(g, std::vector<int>{0, 0}, ec, 3).ok);
}

TEST(VerifyMis, AcceptsValid) {
  const Graph g = make_path(5);
  EXPECT_TRUE(verify_mis(g, std::vector<char>{1, 0, 1, 0, 1}).ok);
}

TEST(VerifyMis, RejectsAdjacentMembers) {
  const Graph g = make_path(3);
  const auto r = verify_mis(g, std::vector<char>{1, 1, 0});
  EXPECT_FALSE(r.ok);
}

TEST(VerifyMis, RejectsNonMaximal) {
  const Graph g = make_path(5);
  const auto r = verify_mis(g, std::vector<char>{1, 0, 0, 0, 1});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.node, 2);
}

TEST(VerifyIndependent, MaximalityNotRequired) {
  const Graph g = make_path(5);
  EXPECT_TRUE(verify_independent(g, std::vector<char>{1, 0, 0, 0, 1}).ok);
}

TEST(VerifyMatching, AcceptsAndRejects) {
  const Graph g = make_path(4);  // edges 0-1,1-2,2-3
  EXPECT_TRUE(verify_maximal_matching(g, std::vector<char>{1, 0, 1}).ok);
  // Overlapping edges share node 1.
  EXPECT_FALSE(verify_matching(g, std::vector<char>{1, 1, 0}).ok);
  // Middle edge alone IS maximal on P4.
  EXPECT_TRUE(verify_maximal_matching(g, std::vector<char>{0, 1, 0}).ok);
  // Empty matching is not maximal.
  EXPECT_FALSE(verify_maximal_matching(g, std::vector<char>{0, 0, 0}).ok);
}

TEST(VerifyOrientation, SinklessOnCycle) {
  const Graph g = make_cycle(4);
  // Orient every edge "first->second" — on a cycle built 0-1-2-3-0 this is
  // consistent except the closing edge; build explicitly.
  Orientation orient(static_cast<std::size_t>(g.num_edges()), 0);
  // Send each node's edge to its (v+1)%n neighbor outward.
  for (NodeId v = 0; v < 4; ++v) {
    const NodeId u = (v + 1) % 4;
    const EdgeId e = g.edge_between(v, u);
    const auto [a, b] = g.endpoints(e);
    orient[static_cast<std::size_t>(e)] = (a == v) ? +1 : -1;
  }
  EXPECT_TRUE(verify_sinkless_orientation(g, orient).ok);
  EXPECT_TRUE(find_sinks(g, orient).empty());
}

TEST(VerifyOrientation, DetectsSinkAndUnoriented) {
  const Graph g = make_path(3);
  Orientation toward_middle{+1, -1};  // 0->1, 2->1: node 1 is a sink
  const auto r = verify_sinkless_orientation(g, toward_middle);
  EXPECT_FALSE(r.ok);
  const auto sinks = find_sinks(g, toward_middle);
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0], 1);
  Orientation unoriented{+1, 0};
  EXPECT_FALSE(verify_sinkless_orientation(g, unoriented).ok);
}

TEST(VerifyOrientation, OutDegreeAccounting) {
  const Graph g = make_star(4);
  Orientation all_out(3);
  for (EdgeId e = 0; e < 3; ++e) {
    const auto [a, b] = g.endpoints(e);
    all_out[static_cast<std::size_t>(e)] = (a == 0) ? +1 : -1;
  }
  EXPECT_EQ(out_degree(g, all_out, 0), 3);
  for (NodeId leaf = 1; leaf < 4; ++leaf) {
    EXPECT_EQ(out_degree(g, all_out, leaf), 0);
  }
}

TEST(VerifyEdgeColoring, AcceptsAndRejects) {
  const Graph g = make_star(4);
  EXPECT_TRUE(verify_edge_coloring(g, std::vector<int>{0, 1, 2}, 3).ok);
  EXPECT_FALSE(verify_edge_coloring(g, std::vector<int>{0, 0, 1}, 3).ok);
  EXPECT_FALSE(verify_edge_coloring(g, std::vector<int>{0, 1, 3}, 3).ok);
}

TEST(VerifyRulingSet, MisIsTwoOneRuling) {
  const Graph g = make_path(7);
  const std::vector<char> mis{1, 0, 1, 0, 1, 0, 1};
  EXPECT_TRUE(verify_ruling_set(g, mis, 2, 1).ok);
}

TEST(VerifyRulingSet, SeparationViolation) {
  const Graph g = make_path(5);
  const std::vector<char> close{1, 1, 0, 0, 1};
  EXPECT_FALSE(verify_ruling_set(g, close, 2, 2).ok);
}

TEST(VerifyRulingSet, DominationViolation) {
  const Graph g = make_path(9);
  std::vector<char> sparse(9, 0);
  sparse[0] = 1;
  EXPECT_FALSE(verify_ruling_set(g, sparse, 2, 3).ok);
  EXPECT_TRUE(verify_ruling_set(g, sparse, 2, 8).ok);
}

TEST(LabelingProblem, ColoringWrapper) {
  const auto p = make_coloring_problem(3);
  EXPECT_EQ(p->label_count(), 3);
  EXPECT_EQ(p->radius(), 1);
  const Graph g = make_cycle(6);
  const std::vector<int> good{0, 1, 2, 0, 1, 2};
  EXPECT_TRUE(p->verify(g, good).ok);
  const std::vector<int> bad{0, 0, 2, 0, 1, 2};
  EXPECT_FALSE(p->verify(g, bad).ok);
}

TEST(LabelingProblem, MisWrapper) {
  const auto p = make_mis_problem();
  const Graph g = make_path(4);
  EXPECT_TRUE(p->verify(g, std::vector<int>{1, 0, 0, 1}).ok);
  EXPECT_FALSE(p->verify(g, std::vector<int>{0, 0, 0, 0}).ok);
  EXPECT_FALSE(p->verify(g, std::vector<int>{2, 0, 0, 1}).ok);
}

}  // namespace
}  // namespace ckp
