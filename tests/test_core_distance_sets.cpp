#include "core/distance_sets.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/trees.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

TEST(IsDistanceKSet, Basics) {
  const Graph g = make_path(10);
  // Distance-2 set on a path: members two apart, consecutive links.
  EXPECT_TRUE(is_distance_k_set(g, {0, 2, 4}, 2));
  EXPECT_TRUE(is_distance_k_set(g, {3}, 2));
  // Too close.
  EXPECT_FALSE(is_distance_k_set(g, {0, 1}, 2));
  // Far but not connected in G^{=2}: 0 and 5 are at distance 5.
  EXPECT_FALSE(is_distance_k_set(g, {0, 5}, 2));
  // Distance exactly 3 links under k=3.
  EXPECT_TRUE(is_distance_k_set(g, {0, 3, 6, 9}, 3));
  EXPECT_FALSE(is_distance_k_set(g, {0, 4}, 3));
}

TEST(IsDistanceKSet, RejectsDuplicates) {
  const Graph g = make_path(5);
  EXPECT_THROW(is_distance_k_set(g, {1, 1}, 2), CheckFailure);
}

TEST(CountDistanceKSets, PathExactValues) {
  const Graph g = make_path(6);  // vertices 0..5
  // t=1: every vertex.
  EXPECT_EQ(count_distance_k_sets(g, 2, 1), 6u);
  // k=2, t=2: pairs at distance exactly 2: {0,2},{1,3},{2,4},{3,5}.
  EXPECT_EQ(count_distance_k_sets(g, 2, 2), 4u);
  // k=2, t=3: {0,2,4},{1,3,5}.
  EXPECT_EQ(count_distance_k_sets(g, 2, 3), 2u);
}

TEST(CountDistanceKSets, CycleExactValues) {
  const Graph g = make_cycle(8);
  // k=2, t=2: each vertex has two vertices at distance exactly 2 -> 8 pairs.
  EXPECT_EQ(count_distance_k_sets(g, 2, 2), 8u);
  // k=4 on C8: antipodal pairs, 4 of them.
  EXPECT_EQ(count_distance_k_sets(g, 4, 2), 4u);
}

TEST(CountDistanceKSets, StarHasNoFarPairs) {
  const Graph g = make_star(8);
  // Any two leaves are at distance 2; with k=3 no pair qualifies.
  EXPECT_EQ(count_distance_k_sets(g, 3, 2), 0u);
  // With k=2 any two leaves work: C(7,2)=21 pairs.
  EXPECT_EQ(count_distance_k_sets(g, 2, 2), 21u);
}

TEST(Lemma3, BoundDominatesExactCounts) {
  // Lemma 3: #distance-k sets of size t <= 4^t · n · Δ^{k(t-1)}. Check it
  // against exhaustive counts across graphs, k, and t.
  Rng rng(1501);
  const std::vector<Graph> graphs = {make_path(30), make_cycle(24),
                                     make_complete_tree(40, 3),
                                     make_random_tree(50, 4, rng),
                                     make_grid(5, 6)};
  for (const auto& g : graphs) {
    for (int k : {2, 3}) {
      for (int t : {1, 2, 3}) {
        const std::uint64_t exact = count_distance_k_sets(g, k, t);
        if (exact == 0) continue;
        const double log2_exact = std::log2(static_cast<double>(exact));
        const double bound = lemma3_log2_bound(
            static_cast<std::uint64_t>(g.num_nodes()),
            std::max(1, g.max_degree()), k, t);
        EXPECT_LE(log2_exact, bound)
            << "n=" << g.num_nodes() << " k=" << k << " t=" << t;
      }
    }
  }
}

TEST(Lemma3, BoundFormula) {
  // 4^t · n · Δ^{k(t-1)} in log2: 2t + log2 n + k(t-1) log2 Δ.
  EXPECT_DOUBLE_EQ(lemma3_log2_bound(1024, 4, 5, 3), 6.0 + 10.0 + 5 * 2 * 2.0);
  EXPECT_DOUBLE_EQ(lemma3_log2_bound(2, 1, 1, 1), 2.0 + 1.0 + 0.0);
}

}  // namespace
}  // namespace ckp
