// The packed Δ-coloring port (algo/delta_coloring_local.hpp): differentials
// against the retained src/core references (proper colorings, the same
// palette structure and shattering-statistic definitions), the packed-path
// bit-identity contract across threads × schedulers × SIMD backends and
// against force_generic, the per-node byte budget the scale bench gates on,
// and the precondition rejections.
#include "algo/delta_coloring_local.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/delta_coloring_thm10.hpp"
#include "core/delta_coloring_thm11.hpp"
#include "graph/graph.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/context.hpp"
#include "local/engine.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace ckp {
namespace {

LocalInput rand_input(const Graph& g, int delta, std::uint64_t seed) {
  LocalInput input;
  input.graph = &g;
  input.declared_delta = delta;
  input.seed = seed;
  return input;
}

// --- Thm10: differentials against the src/core reference oracle. ----------

TEST(DeltaColoringPacked, Thm10MatchesReferenceSemantics) {
  for (const int delta : {16, 32, 64}) {
    for (const std::uint64_t seed : {1ULL, 7ULL}) {
      Rng rng(mix_seed(seed, static_cast<std::uint64_t>(delta), 0xD10));
      const Graph g = make_random_tree(4000, delta, rng);
      const LocalInput input = rand_input(g, delta, seed);
      const auto packed = delta_coloring_thm10_local(input);
      ASSERT_TRUE(packed.completed);
      EXPECT_TRUE(verify_coloring(g, packed.colors, delta).ok)
          << "delta=" << delta << " seed=" << seed;

      RoundLedger ledger;
      const auto ref = delta_coloring_thm10(g, delta, seed, ledger);
      EXPECT_TRUE(verify_coloring(g, ref.colors, delta).ok);

      // Identical c_i schedule → identical phase-1 iteration count, and the
      // identical palette split: bad vertices color from the ⌊√Δ⌋ reserved
      // colors, everyone else from the phase-1 palette below them.
      EXPECT_EQ(packed.phase1_iterations, ref.phase1_iterations);
      const int reserve =
          static_cast<int>(isqrt(static_cast<std::uint64_t>(delta)));
      const int palette = delta - reserve;
      NodeId reserved_users = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const int c = packed.colors[static_cast<std::size_t>(v)];
        ASSERT_GE(c, 0);
        ASSERT_LT(c, delta);
        if (c >= palette) ++reserved_users;
      }
      // Every reserved-color user is a bad vertex (phase 1 never bids there).
      EXPECT_LE(reserved_users, packed.bad_vertices);
      EXPECT_LE(packed.largest_bad_component, packed.bad_vertices);
      // Shattering holds with the same thresholds: both sides' bad sets are
      // a vanishing fraction of the tree.
      EXPECT_LT(packed.bad_vertices, g.num_nodes() / 4);
      EXPECT_LT(ref.bad_vertices, g.num_nodes() / 4);
    }
  }
}

TEST(DeltaColoringPacked, Thm10SmallAndDegenerateTrees) {
  for (const NodeId n : {1, 2, 17, 100}) {
    const Graph g = make_complete_tree(n, 16);
    const auto packed = delta_coloring_thm10_local(rand_input(g, 16, 3));
    ASSERT_TRUE(packed.completed) << "n=" << n;
    EXPECT_TRUE(verify_coloring(g, packed.colors, 16).ok) << "n=" << n;
  }
}

// --- Thm11: differentials against the src/core reference oracle. ----------

TEST(DeltaColoringPacked, Thm11MatchesReferenceSemantics) {
  for (const int delta : {7, 16, 55}) {
    for (const std::uint64_t seed : {1ULL, 9ULL}) {
      Rng rng(mix_seed(seed, static_cast<std::uint64_t>(delta), 0xD11));
      const Graph g = make_random_tree(4000, delta, rng);
      const LocalInput input = rand_input(g, delta, seed);
      const auto packed = delta_coloring_thm11_local(input);
      ASSERT_TRUE(packed.completed);
      EXPECT_TRUE(verify_coloring(g, packed.colors, delta).ok)
          << "delta=" << delta << " seed=" << seed;

      RoundLedger ledger;
      const auto ref = delta_coloring_thm11(g, delta, seed, ledger);
      EXPECT_TRUE(verify_coloring(g, ref.colors, delta).ok);

      // Same residue-statistic definitions: S and U3 members take colors
      // from {0,1,2}; phase 1 colors from {3 .. Δ-1}.
      NodeId low_colors = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const int c = packed.colors[static_cast<std::size_t>(v)];
        ASSERT_GE(c, 0);
        ASSERT_LT(c, delta);
        if (c < 3) ++low_colors;
      }
      EXPECT_EQ(low_colors, packed.phase2_set_size + packed.phase3_set_size);
      EXPECT_LE(packed.phase2_largest_component, packed.phase2_set_size);
      // Both sides shatter: the uncolored residue is a vanishing fraction.
      EXPECT_LT(packed.phase2_set_size + packed.phase3_set_size,
                g.num_nodes() / 4);
      EXPECT_LT(ref.phase2_set_size + ref.phase3_set_size, g.num_nodes() / 4);
    }
  }
}

TEST(DeltaColoringPacked, Thm11SmallAndDegenerateTrees) {
  for (const NodeId n : {1, 2, 9, 100}) {
    const Graph g = make_complete_tree(n, 7);
    const auto packed = delta_coloring_thm11_local(rand_input(g, 7, 5));
    ASSERT_TRUE(packed.completed) << "n=" << n;
    EXPECT_TRUE(verify_coloring(g, packed.colors, 7).ok) << "n=" << n;
  }
}

// --- Bit-identity: threads × schedulers × SIMD × packed-vs-generic. -------

TEST(DeltaColoringPacked, Thm10ThreadScheduleSimdAndGenericInvariant) {
  const int delta = 32;
  Rng rng(0xB1D);
  const Graph g = make_random_tree(3000, delta, rng);
  const LocalInput input = rand_input(g, delta, 11);

  EngineOptions base;
  base.threads = 1;
  const auto baseline = delta_coloring_thm10_local(input, 1 << 20, base);
  ASSERT_TRUE(baseline.completed);

  for (const int threads : {1, 2, 8}) {
    for (const auto schedule :
         {EngineSchedule::kStatic, EngineSchedule::kWorkStealing}) {
      for (const bool simd : {false, true}) {
        for (const bool force_generic : {false, true}) {
          EngineOptions opts;
          opts.threads = threads;
          opts.schedule = schedule;
          opts.simd = simd;
          opts.force_generic = force_generic;
          const auto run = delta_coloring_thm10_local(input, 1 << 20, opts);
          ASSERT_TRUE(run.completed);
          EXPECT_EQ(run.colors, baseline.colors)
              << "threads=" << threads << " ws="
              << (schedule == EngineSchedule::kWorkStealing)
              << " simd=" << simd << " generic=" << force_generic;
          EXPECT_EQ(run.rounds, baseline.rounds);
          EXPECT_EQ(run.bad_vertices, baseline.bad_vertices);
          EXPECT_EQ(run.largest_bad_component,
                    baseline.largest_bad_component);
        }
      }
    }
  }
}

TEST(DeltaColoringPacked, Thm11ThreadScheduleSimdAndGenericInvariant) {
  const int delta = 16;
  Rng rng(0xB2D);
  const Graph g = make_random_tree(3000, delta, rng);
  const LocalInput input = rand_input(g, delta, 13);

  EngineOptions base;
  base.threads = 1;
  const auto baseline = delta_coloring_thm11_local(input, 1 << 20, base);
  ASSERT_TRUE(baseline.completed);

  for (const int threads : {1, 2, 8}) {
    for (const auto schedule :
         {EngineSchedule::kStatic, EngineSchedule::kWorkStealing}) {
      for (const bool simd : {false, true}) {
        for (const bool force_generic : {false, true}) {
          EngineOptions opts;
          opts.threads = threads;
          opts.schedule = schedule;
          opts.simd = simd;
          opts.force_generic = force_generic;
          const auto run = delta_coloring_thm11_local(input, 1 << 20, opts);
          ASSERT_TRUE(run.completed);
          EXPECT_EQ(run.colors, baseline.colors)
              << "threads=" << threads << " ws="
              << (schedule == EngineSchedule::kWorkStealing)
              << " simd=" << simd << " generic=" << force_generic;
          EXPECT_EQ(run.rounds, baseline.rounds);
          EXPECT_EQ(run.phase2_set_size, baseline.phase2_set_size);
          EXPECT_EQ(run.phase2_largest_component,
                    baseline.phase2_largest_component);
          EXPECT_EQ(run.phase3_set_size, baseline.phase3_set_size);
        }
      }
    }
  }
}

// --- Byte budget: the packed path must stay in the rng-algo envelope. -----

TEST(DeltaColoringPacked, PackedByteBudgetPerNode) {
  const Graph g = make_complete_tree(1 << 15, 16);
  EngineOptions opts;
  opts.threads = 2;
  const auto r10 = delta_coloring_thm10_local(rand_input(g, 16, 2), 1 << 20,
                                              opts);
  const auto r11 = delta_coloring_thm11_local(rand_input(g, 16, 2), 1 << 20,
                                              opts);
  ASSERT_TRUE(r10.completed);
  ASSERT_TRUE(r11.completed);
  const auto n = static_cast<std::uint64_t>(g.num_nodes());
  // Same envelope check_scale.sh gates: 48 B/node baseline + 32 B RNG.
  EXPECT_LE(r10.engine_bytes, (48 + 32) * n);
  EXPECT_LE(r11.engine_bytes, (48 + 32) * n);
}

// --- Precondition rejections. ---------------------------------------------

TEST(DeltaColoringPacked, RejectsPreconditionViolations) {
  const Graph g = make_complete_tree(200, 7);

  // Thm10 needs Δ >= 16 (reserve ⌊√Δ⌋ >= 3 wide, nonempty phase-1 palette).
  EXPECT_THROW(delta_coloring_thm10_local(rand_input(g, 8, 1)), CheckFailure);
  // Thm11 needs Δ >= 7 (peeling down to color 3 needs Δ-3 >= 4 iterations).
  EXPECT_THROW(delta_coloring_thm11_local(rand_input(g, 5, 1)), CheckFailure);

  // Declared Δ below the true max degree.
  const Graph wide = make_complete_tree(200, 20);
  EXPECT_THROW(delta_coloring_thm10_local(rand_input(wide, 16, 1)),
               CheckFailure);

  // RandLOCAL only: an ID-carrying input is rejected.
  const Graph t = make_complete_tree(64, 16);
  LocalInput with_ids = rand_input(t, 16, 1);
  with_ids.ids.resize(static_cast<std::size_t>(t.num_nodes()));
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    with_ids.ids[static_cast<std::size_t>(v)] =
        static_cast<std::uint64_t>(v) + 1;
  }
  EXPECT_THROW(delta_coloring_thm10_local(with_ids), CheckFailure);
  EXPECT_THROW(delta_coloring_thm11_local(with_ids), CheckFailure);

  // 9-bit color field: Δ > 511 must be rejected, not silently truncated.
  EXPECT_THROW(delta_coloring_thm10_local(rand_input(t, 512, 1)),
               CheckFailure);
  EXPECT_THROW(delta_coloring_thm11_local(rand_input(t, 512, 1)),
               CheckFailure);
}

}  // namespace
}  // namespace ckp
