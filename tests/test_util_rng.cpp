#include "util/rng.hpp"

#include <set>

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ckp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), CheckFailure);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto x = rng.next_in(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
  // Degenerate range.
  EXPECT_EQ(rng.next_in(3, 3), 3);
}

TEST(Rng, NextDoubleInHalfOpenUnit) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
    EXPECT_FALSE(rng.next_bernoulli(-1.0));
    EXPECT_TRUE(rng.next_bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bernoulli(0.3)) ++hits;
  }
  const double freq = static_cast<double>(hits) / trials;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(Rng, UniformityOfNextBelow) {
  Rng rng(19);
  const std::uint64_t bound = 8;
  std::vector<int> counts(bound, 0);
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[rng.next_below(bound)];
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 1.0 / 8, 0.01);
  }
}

TEST(NodeRng, StreamsAreDecorrelated) {
  // Distinct (node, epoch) pairs must give (practically) distinct streams.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t node = 0; node < 100; ++node) {
    for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
      firsts.insert(node_rng(123, node, epoch)());
    }
  }
  EXPECT_EQ(firsts.size(), 300u);
}

TEST(NodeRng, ReproducibleAcrossCalls) {
  auto a = node_rng(5, 17, 2);
  auto b = node_rng(5, 17, 2);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(MixSeed, OrderSensitive) {
  EXPECT_NE(mix_seed(1, 2, 3), mix_seed(3, 2, 1));
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
  EXPECT_EQ(mix_seed(9, 8, 7), mix_seed(9, 8, 7));
}

TEST(Splitmix, AdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace ckp
