#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/edge_coloring.hpp"
#include "graph/generators.hpp"
#include "graph/girth.hpp"
#include "graph/power.hpp"
#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

TEST(Girth, KnownValues) {
  EXPECT_EQ(girth(make_cycle(5)), 5);
  EXPECT_EQ(girth(make_cycle(12)), 12);
  EXPECT_EQ(girth(make_complete(4)), 3);
  EXPECT_EQ(girth(make_complete_bipartite(2, 3)), 4);
  EXPECT_EQ(girth(make_path(10)), kInfiniteGirth);
  EXPECT_EQ(girth(make_hypercube(4)), 4);
  EXPECT_EQ(girth(make_grid(4, 4)), 4);
}

TEST(Girth, PetersenGraph) {
  // The Petersen graph: 3-regular, girth 5.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < 5; ++i) {
    edges.emplace_back(i, (i + 1) % 5);          // outer cycle
    edges.emplace_back(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    edges.emplace_back(i, 5 + i);                // spokes
  }
  const Graph petersen = Graph::from_edges(10, edges);
  EXPECT_TRUE(petersen.is_regular(3));
  EXPECT_EQ(girth(petersen), 5);
}

TEST(Girth, SampledUpperBoundConsistent) {
  Rng rng(97);
  const Graph g = make_random_regular(60, 3, rng);
  const int exact = girth(g);
  const int sampled = girth_upper_bound_sampled(g, 60, rng);
  EXPECT_GE(sampled, exact);
  const int full_sample = girth_upper_bound_sampled(g, 600, rng);
  EXPECT_GE(full_sample, exact);  // an upper bound, usually equal
}

TEST(Girth, SampledFindsFarAwayCycleWithoutReplacement) {
  // A long path with a single triangle at the far end. Sampling with
  // replacement (the old implementation) could draw the same start vertices
  // repeatedly and miss the triangle even at samples == n; sampling without
  // replacement plus the exact fallback at samples >= n makes detection
  // certain, for every seed.
  std::vector<std::pair<NodeId, NodeId>> edges;
  const NodeId n = 30;
  for (NodeId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  edges.emplace_back(n - 3, n - 1);  // closes the triangle {27, 28, 29}
  const Graph g = Graph::from_edges(n, edges);
  ASSERT_EQ(girth(g), 3);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    EXPECT_EQ(girth_upper_bound_sampled(g, n, rng), 3) << seed;
    // Even one short of n: at most one vertex goes unsampled, and the
    // triangle has three, so some triangle vertex is always a start.
    Rng rng2(seed);
    EXPECT_EQ(girth_upper_bound_sampled(g, n - 1, rng2), 3) << seed;
  }
}

TEST(ShortestCycleThrough, PathHasNone) {
  const Graph g = make_path(6);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(shortest_cycle_through(g, v), kInfiniteGirth);
  }
}

TEST(Components, WholeGraph) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.largest(), 3);
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[3], c.label[5]);
}

TEST(Components, Subset) {
  const Graph g = make_path(10);
  std::vector<char> keep(10, 1);
  keep[3] = 0;
  keep[7] = 0;
  const auto c = components_of_subset(g, keep);
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.largest(), 3);
  EXPECT_EQ(c.label[3], -1);
}

TEST(Components, EmptySubset) {
  const Graph g = make_cycle(5);
  const auto c = components_of_subset(g, std::vector<char>(5, 0));
  EXPECT_EQ(c.count, 0);
  EXPECT_EQ(c.largest(), 0);
}

TEST(BfsDistances, CappedCorrectly) {
  const Graph g = make_path(10);
  const auto dist = bfs_distances(g, 0, 3);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[4], -1);
}

TEST(Ball, SizesOnTree) {
  const Graph g = make_complete_tree(40, 3);
  EXPECT_EQ(ball(g, 0, 0).size(), 1u);
  EXPECT_EQ(ball(g, 0, 1).size(), 4u);   // root + 3 children
  EXPECT_EQ(ball(g, 0, 2).size(), 10u);  // + 6 grandchildren
}

TEST(PowerGraph, CycleSquared) {
  const Graph g = make_cycle(8);
  const Graph g2 = power_graph(g, 2);
  EXPECT_TRUE(g2.is_regular(4));
  EXPECT_EQ(g2.num_edges(), 16);
  // Power 4 of C8 is K8 (radius covers everything).
  const Graph g4 = power_graph(g, 4);
  EXPECT_EQ(g4.num_edges(), 28);
}

TEST(PowerGraph, DistancePreservation) {
  const Graph g = make_path(7);
  const Graph g3 = power_graph(g, 3);
  EXPECT_TRUE(g3.has_edge(0, 3));
  EXPECT_FALSE(g3.has_edge(0, 4));
}

TEST(TreeEdgeColoring, ProperWithDeltaColors) {
  for (const auto& [name, g] : testing::tree_zoo()) {
    if (g.num_edges() == 0) continue;
    const auto colors = tree_edge_coloring(g);
    EXPECT_TRUE(is_proper_edge_coloring(g, colors, std::max(1, g.max_degree())))
        << name;
    EXPECT_LE(count_edge_colors(colors), g.max_degree()) << name;
  }
}

TEST(TreeEdgeColoring, RejectsNonTree) {
  EXPECT_THROW(tree_edge_coloring(make_cycle(4)), CheckFailure);
}

TEST(GreedyEdgeColoring, WithinTwoDeltaMinusOne) {
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    if (g.num_edges() == 0) continue;
    const auto colors = greedy_edge_coloring(g);
    const int used = count_edge_colors(colors);
    EXPECT_TRUE(is_proper_edge_coloring(g, colors, used)) << name;
    EXPECT_LE(used, 2 * g.max_degree() - 1) << name;
  }
}

}  // namespace
}  // namespace ckp
