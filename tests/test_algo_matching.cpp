#include <gtest/gtest.h>

#include "algo/matching_deterministic.hpp"
#include "algo/matching_randomized.hpp"
#include "graph/generators.hpp"
#include "graph/regular.hpp"
#include "lcl/verify_matching.hpp"
#include "local/ids.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

class RandMatchingZoo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandMatchingZoo, MaximalOnAllFixtures) {
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    RoundLedger ledger;
    const auto result = matching_randomized(g, GetParam(), ledger);
    ASSERT_TRUE(result.completed) << name;
    EXPECT_TRUE(verify_maximal_matching(g, result.in_matching).ok)
        << name << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandMatchingZoo, ::testing::Values(1u, 2u, 9u));

TEST(RandMatching, LogRoundsOnLargeGraph) {
  Rng rng(601);
  const Graph g = make_random_regular(3000, 6, rng);
  RoundLedger ledger;
  const auto result = matching_randomized(g, 4, ledger);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(verify_maximal_matching(g, result.in_matching).ok);
  EXPECT_LE(result.rounds, 8 * ilog2(3000));
}

TEST(RandMatching, EmptyGraph) {
  const Graph g = Graph::from_edges(4, {});
  RoundLedger ledger;
  const auto result = matching_randomized(g, 1, ledger);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 0);
}

class DetMatchingZoo : public ::testing::TestWithParam<int> {};

TEST_P(DetMatchingZoo, MaximalOnAllFixtures) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 700);
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    const auto ids = GetParam() == 0 ? sequential_ids(g.num_nodes())
                                     : random_ids(g.num_nodes(), 30, rng);
    RoundLedger ledger;
    const auto result = matching_deterministic(g, ids, ledger);
    EXPECT_TRUE(verify_maximal_matching(g, result.in_matching).ok)
        << name << " ids=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(IdSchemes, DetMatchingZoo, ::testing::Values(0, 1, 2));

TEST(DetMatching, RejectsWideIds) {
  const Graph g = make_path(3);
  std::vector<std::uint64_t> wide{0, 1, 1ULL << 40};
  RoundLedger ledger;
  EXPECT_THROW(matching_deterministic(g, wide, ledger), CheckFailure);
}

TEST(DetMatching, RoundsIndependentOfNForFixedDelta) {
  Rng rng(607);
  const Graph small = make_random_regular(100, 3, rng);
  const Graph large = make_random_regular(3200, 3, rng);
  RoundLedger ls, ll;
  matching_deterministic(small, random_ids(100, 30, rng), ls);
  matching_deterministic(large, random_ids(3200, 30, rng), ll);
  EXPECT_LE(ll.rounds(), ls.rounds() + 4);
}

TEST(Matchings, RandomizedBeatsDetInDeltaDependence) {
  // The intro's message: randomized matching costs O(log n)-ish rounds
  // independent of Δ, deterministic pays poly(Δ). At Δ = 16 the gap is
  // already pronounced.
  Rng rng(613);
  const Graph g = make_random_regular(600, 16, rng);
  RoundLedger lr, ld;
  const auto r = matching_randomized(g, 5, lr);
  ASSERT_TRUE(r.completed);
  matching_deterministic(g, random_ids(600, 30, rng), ld);
  EXPECT_LT(lr.rounds() * 4, ld.rounds());
}

}  // namespace
}  // namespace ckp
