// Bit-identical parallel execution: run_local with any thread count must
// reproduce the sequential engine exactly — states, round counts, halt
// patterns, and the observer's view of the run. Exercises DetLOCAL and
// RandLOCAL algorithms over trees, cycles, Ramanujan graphs, and random
// regular graphs, the topologies the paper's experiments sweep.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "algo/mis_luby.hpp"
#include "graph/generators.hpp"
#include "graph/ramanujan.hpp"
#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_mis.hpp"
#include "local/context.hpp"
#include "local/engine.hpp"
#include "local/ids.hpp"
#include "obs/observer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ckp {
namespace {

// DetLOCAL fixture: flood the maximum ID, halt after two stable exchanges.
// Nodes halt at staggered rounds, so the active-list compaction and the
// halted-refresh bookkeeping both get exercised.
struct MaxFlood {
  struct State {
    std::uint64_t best = 0;
    int stable_rounds = 0;
    bool operator==(const State&) const = default;
  };

  State init(const NodeEnv& env) { return {env.id, 0}; }

  bool step(State& self, const NodeEnv&,
            std::span<const State* const> nbrs) {
    std::uint64_t best = self.best;
    for (const State* nb : nbrs) best = std::max(best, nb->best);
    if (best == self.best) {
      ++self.stable_rounds;
    } else {
      self.best = best;
      self.stable_rounds = 0;
    }
    return self.stable_rounds >= 2;
  }
};

// RandLOCAL fixture: every round draws from the private stream and mixes
// neighbor values; a node halts when its draw clears a rising threshold, so
// the halt pattern is random and stream misuse (any cross-node interleaving
// of RNG consumption) would change both states and halt rounds.
struct RandomDrift {
  struct State {
    std::uint64_t acc = 0;
    int round = 0;
    bool operator==(const State&) const = default;
  };

  State init(const NodeEnv& env) { return {env.random()(), 0}; }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    std::uint64_t acc = self.acc;
    for (const State* nb : nbrs) acc ^= nb->acc * 0x9e3779b97f4a7c15ULL;
    acc += env.random()();
    self.acc = acc;
    ++self.round;
    // Halting probability rises with the round; all nodes stop by round ~64.
    return (acc & 63u) < static_cast<std::uint64_t>(self.round);
  }
};

template <typename A>
void expect_same_run(const EngineResult<A>& a, const EngineResult<A>& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.all_halted, b.all_halted);
  ASSERT_EQ(a.states.size(), b.states.size());
  for (std::size_t i = 0; i < a.states.size(); ++i) {
    EXPECT_TRUE(a.states[i] == b.states[i]) << "state mismatch at node " << i;
  }
}

std::vector<Graph> fixture_graphs() {
  std::vector<Graph> graphs;
  graphs.push_back(make_complete_tree(600, 4));
  graphs.push_back(make_cycle(500));
  graphs.push_back(make_lps_ramanujan(5, 13).graph);
  Rng rng(0xF157);
  graphs.push_back(make_random_regular(512, 6, rng));
  return graphs;
}

TEST(EngineParallel, DetAlgorithmBitIdenticalAcrossThreadCounts) {
  for (const Graph& g : fixture_graphs()) {
    const NodeId n = g.num_nodes();
    Rng rng(0xD37 + static_cast<std::uint64_t>(n));
    LocalInput in;
    in.graph = &g;
    in.ids = random_ids(n, 24, rng);

    MaxFlood seq_algo;
    const auto seq = run_local(in, seq_algo, 2000, nullptr, 1);
    for (const int threads : {2, 8}) {
      MaxFlood par_algo;
      const auto par = run_local(in, par_algo, 2000, nullptr, threads);
      expect_same_run(seq, par);
    }
  }
}

TEST(EngineParallel, RandAlgorithmBitIdenticalAcrossThreadCounts) {
  for (const Graph& g : fixture_graphs()) {
    LocalInput in;
    in.graph = &g;
    in.seed = 0xA11CE;

    RandomDrift seq_algo;
    const auto seq = run_local(in, seq_algo, 200, nullptr, 1);
    EXPECT_TRUE(seq.all_halted);
    for (const int threads : {2, 8}) {
      RandomDrift par_algo;
      const auto par = run_local(in, par_algo, 200, nullptr, threads);
      expect_same_run(seq, par);
    }
  }
}

TEST(EngineParallel, TruncatedRunsMatchToo) {
  const Graph g = make_complete_tree(400, 3);
  LocalInput in;
  in.graph = &g;
  in.seed = 99;
  RandomDrift seq_algo;
  const auto seq = run_local(in, seq_algo, 5, nullptr, 1);
  EXPECT_FALSE(seq.all_halted);
  RandomDrift par_algo;
  const auto par = run_local(in, par_algo, 5, nullptr, 8);
  expect_same_run(seq, par);
}

TEST(EngineParallel, RealAlgorithmUnderGlobalThreadDefault) {
  Rng rng(0x3A);
  const Graph g = make_random_regular(400, 5, rng);
  LocalInput in;
  in.graph = &g;
  in.seed = 7;
  const auto seq = mis_luby(in);
  set_default_engine_threads(4);
  const auto par = mis_luby(in);
  set_default_engine_threads(1);
  EXPECT_EQ(seq.rounds, par.rounds);
  EXPECT_EQ(seq.in_set, par.in_set);
  EXPECT_TRUE(verify_mis(g, par.in_set).ok);
}

// Observer fixture recording everything the engine reports.
class RecordingObserver : public EngineObserver {
 public:
  std::vector<RoundStats> rounds;
  std::vector<std::pair<NodeId, int>> halts;
  RunStats run;
  int run_ends = 0;

  void on_round_end(const RoundStats& stats) override {
    rounds.push_back(stats);
  }
  void on_node_halt(NodeId v, int round) override {
    halts.emplace_back(v, round);
  }
  void on_run_end(const RunStats& stats) override {
    run = stats;
    ++run_ends;
  }
};

TEST(EngineParallel, ObserverStatsMergeIdenticallyAcrossThreadCounts) {
  const Graph g = make_complete_tree(500, 4);
  LocalInput in;
  in.graph = &g;
  in.seed = 0x0B5;

  RandomDrift seq_algo;
  RecordingObserver seq_obs;
  const auto seq = run_local(in, seq_algo, 200, &seq_obs, 1);
  ASSERT_TRUE(seq.all_halted);

  RandomDrift par_algo;
  RecordingObserver par_obs;
  const auto par = run_local(in, par_algo, 200, &par_obs, 4);
  expect_same_run(seq, par);

  // Halt events: same nodes, same rounds, same order (ascending node order
  // within each round, by the chunk-merge contract).
  EXPECT_EQ(seq_obs.halts, par_obs.halts);

  // Per-round stats agree on everything except wall time and partitioning.
  ASSERT_EQ(seq_obs.rounds.size(), par_obs.rounds.size());
  for (std::size_t i = 0; i < seq_obs.rounds.size(); ++i) {
    const RoundStats& s = seq_obs.rounds[i];
    const RoundStats& p = par_obs.rounds[i];
    EXPECT_EQ(s.round, p.round);
    EXPECT_EQ(s.n, p.n);
    EXPECT_EQ(s.active_nodes, p.active_nodes);
    EXPECT_EQ(s.halted_total, p.halted_total);
    EXPECT_EQ(s.state_copies, p.state_copies);
    EXPECT_EQ(s.threads, 1);
    EXPECT_EQ(p.threads, 4);
    EXPECT_EQ(s.chunk_seconds.size(), 1u);
    EXPECT_EQ(p.chunk_seconds.size(), 4u);
    EXPECT_GE(p.max_chunk_seconds(), 0.0);
  }
  EXPECT_EQ(par_obs.run.threads, 4);
  EXPECT_EQ(seq_obs.run.threads, 1);
  EXPECT_EQ(par_obs.run_ends, 1);
  EXPECT_EQ(seq_obs.run.rounds, par_obs.run.rounds);

  // Halt totals line up with the per-round telemetry.
  EXPECT_EQ(par_obs.halts.size(), static_cast<std::size_t>(g.num_nodes()));
  EXPECT_EQ(par_obs.rounds.back().halted_total, g.num_nodes());
}

// The engine degrades to sequential inside a parallel_for body (no nested
// parallelism) and still produces identical results.
TEST(EngineParallel, NestedRunsDegradeToSequentialAndMatch) {
  const Graph g = make_cycle(300);
  LocalInput in;
  in.graph = &g;
  in.seed = 5;
  RandomDrift outer_algo;
  const auto expected = run_local(in, outer_algo, 200, nullptr, 1);

  std::vector<EngineResult<RandomDrift>> results(4);
  shared_pool(4).parallel_for(0, 4, 4,
                              [&](std::int64_t lo, std::int64_t hi, int) {
                                for (std::int64_t i = lo; i < hi; ++i) {
                                  RandomDrift algo;
                                  results[static_cast<std::size_t>(i)] =
                                      run_local(in, algo, 200, nullptr, 8);
                                }
                              });
  for (const auto& r : results) expect_same_run(expected, r);
}

}  // namespace
}  // namespace ckp
