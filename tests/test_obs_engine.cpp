// Engine observer hooks: firing discipline, zero-interference with the
// simulation, and the halted-only refresh optimization in run_local.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "graph/generators.hpp"
#include "graph/trees.hpp"
#include "local/context.hpp"
#include "local/engine.hpp"
#include "local/ids.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"

namespace ckp {
namespace {

// Flood the maximum ID; halts after two stable exchanges. Same fixture shape
// as test_local_engine so observer behavior is checked on a nontrivial
// multi-round run with staggered halting.
struct MaxFlood {
  struct State {
    std::uint64_t best = 0;
    int stable_rounds = 0;
  };

  State init(const NodeEnv& env) { return {env.id, 0}; }

  bool step(State& self, const NodeEnv&,
            std::span<const State* const> nbrs) {
    std::uint64_t best = self.best;
    for (const State* nb : nbrs) best = std::max(best, nb->best);
    if (best == self.best) {
      ++self.stable_rounds;
    } else {
      self.best = best;
      self.stable_rounds = 0;
    }
    return self.stable_rounds >= 2;
  }
};

class CountingObserver : public EngineObserver {
 public:
  int round_begins = 0;
  int round_ends = 0;
  int halts = 0;
  int run_ends = 0;
  std::vector<RoundStats> rounds;
  RunStats run;

  void on_round_begin(int round) override {
    ++round_begins;
    EXPECT_EQ(round, round_begins);  // 1-based, strictly sequential
  }
  void on_round_end(const RoundStats& stats) override {
    ++round_ends;
    EXPECT_EQ(stats.round, round_ends);
    rounds.push_back(stats);
  }
  void on_node_halt(NodeId, int round) override {
    ++halts;
    EXPECT_GE(round, 1);
  }
  void on_run_end(const RunStats& stats) override {
    ++run_ends;
    run = stats;
  }
};

LocalInput path_input(const Graph& g, const std::vector<std::uint64_t>& ids) {
  LocalInput in;
  in.graph = &g;
  in.ids = ids;
  return in;
}

TEST(EngineObserver, RoundEndFiresExactlyRoundsTimes) {
  const Graph g = make_path(9);
  const auto ids = sequential_ids(9);
  const LocalInput in = path_input(g, ids);
  MaxFlood algo;
  CountingObserver obs;
  const auto result = run_local(in, algo, 100, &obs);

  EXPECT_TRUE(result.all_halted);
  EXPECT_EQ(obs.round_ends, result.rounds);
  EXPECT_EQ(obs.round_begins, result.rounds);
  EXPECT_EQ(obs.halts, 9);     // every node halts exactly once
  EXPECT_EQ(obs.run_ends, 1);  // run summary delivered once

  EXPECT_EQ(obs.run.rounds, result.rounds);
  EXPECT_TRUE(obs.run.all_halted);
  EXPECT_EQ(obs.run.n, 9u);

  // Per-round invariants: active nodes shrink as nodes halt, the halted
  // total is monotone and ends at n, and the final round reports fraction 1.
  NodeId prev_halted = 0;
  for (const RoundStats& r : obs.rounds) {
    EXPECT_EQ(r.n, 9u);
    EXPECT_EQ(r.active_nodes, 9u - prev_halted);
    EXPECT_GE(r.halted_total, prev_halted);
    EXPECT_GE(r.state_copies, r.active_nodes);  // one copy per stepped node
    prev_halted = r.halted_total;
  }
  EXPECT_EQ(obs.rounds.back().halted_total, 9u);
  EXPECT_DOUBLE_EQ(obs.rounds.back().halted_fraction(), 1.0);
}

TEST(EngineObserver, TruncatedRunReportsNotAllHalted) {
  const Graph g = make_path(50);
  const auto ids = sequential_ids(50);
  const LocalInput in = path_input(g, ids);
  MaxFlood algo;
  CountingObserver obs;
  const auto result = run_local(in, algo, 5, &obs);
  EXPECT_FALSE(result.all_halted);
  EXPECT_EQ(result.rounds, 5);
  EXPECT_EQ(obs.round_ends, 5);
  EXPECT_FALSE(obs.run.all_halted);
}

TEST(EngineObserver, ObservedRunIsBitIdenticalToUnobserved) {
  const Graph g = make_complete_tree(60, 3);
  Rng rng(0x0B5);
  const auto ids = random_ids(60, 12, rng);
  const LocalInput in = path_input(g, ids);

  MaxFlood plain_algo;
  const auto plain = run_local(in, plain_algo, 100);

  MaxFlood observed_algo;
  CountingObserver obs;
  const auto observed = run_local(in, observed_algo, 100, &obs);

  EXPECT_EQ(plain.rounds, observed.rounds);
  EXPECT_EQ(plain.all_halted, observed.all_halted);
  ASSERT_EQ(plain.states.size(), observed.states.size());
  for (std::size_t i = 0; i < plain.states.size(); ++i) {
    EXPECT_EQ(plain.states[i].best, observed.states[i].best);
    EXPECT_EQ(plain.states[i].stable_rounds, observed.states[i].stable_rounds);
  }

  // nullptr observer takes the uninstrumented path and matches too.
  MaxFlood null_algo;
  const auto with_null = run_local(in, null_algo, 100,
                                   static_cast<EngineObserver*>(nullptr));
  EXPECT_EQ(with_null.rounds, plain.rounds);
}

// Reference engine: the pre-optimization behavior that refreshed EVERY
// node's scratch entry after the swap, not just halted ones. run_local's
// halted-only refresh must be observationally equivalent to this.
template <typename A>
EngineResult<A> run_local_full_copy(const LocalInput& input, A& algo,
                                    int max_rounds) {
  using State = typename A::State;
  input.validate();
  const Graph& g = *input.graph;
  const NodeId n = g.num_nodes();

  auto env_of = [&](NodeId v) {
    NodeEnv env;
    env.index = v;
    env.degree = g.degree(v);
    env.declared_n = input.effective_n();
    env.declared_delta = input.effective_delta();
    env.id = input.has_ids() ? input.id_of(v) : kNoId;
    return env;
  };

  EngineResult<A> result;
  for (NodeId v = 0; v < n; ++v) result.states.push_back(algo.init(env_of(v)));
  std::vector<char> halted(static_cast<std::size_t>(n), 0);
  std::vector<State> next = result.states;
  std::vector<const State*> nbr_ptrs;

  NodeId num_halted = 0;
  while (num_halted < n && result.rounds < max_rounds) {
    for (NodeId v = 0; v < n; ++v) {
      if (halted[static_cast<std::size_t>(v)]) continue;
      nbr_ptrs.clear();
      for (NodeId u : g.neighbors(v)) {
        nbr_ptrs.push_back(&result.states[static_cast<std::size_t>(u)]);
      }
      State& mine = next[static_cast<std::size_t>(v)];
      mine = result.states[static_cast<std::size_t>(v)];
      if (algo.step(mine, env_of(v),
                    std::span<const State* const>(nbr_ptrs))) {
        halted[static_cast<std::size_t>(v)] = 1;
        ++num_halted;
      }
    }
    std::swap(result.states, next);
    ++result.rounds;
    next = result.states;  // full copy: every entry refreshed
  }
  result.all_halted = (num_halted == n);
  return result;
}

TEST(Engine, HaltedOnlyRefreshMatchesFullCopyReference) {
  for (const int max_rounds : {3, 100}) {  // truncated and completed runs
    const Graph g = make_complete_tree(80, 3);
    Rng rng(0x0B6);
    const auto ids = random_ids(80, 12, rng);
    const LocalInput in = path_input(g, ids);

    MaxFlood engine_algo;
    const auto engine = run_local(in, engine_algo, max_rounds);
    MaxFlood ref_algo;
    const auto reference = run_local_full_copy(in, ref_algo, max_rounds);

    EXPECT_EQ(engine.rounds, reference.rounds);
    EXPECT_EQ(engine.all_halted, reference.all_halted);
    ASSERT_EQ(engine.states.size(), reference.states.size());
    for (std::size_t i = 0; i < engine.states.size(); ++i) {
      EXPECT_EQ(engine.states[i].best, reference.states[i].best);
      EXPECT_EQ(engine.states[i].stable_rounds,
                reference.states[i].stable_rounds);
    }
  }
}

TEST(MetricsObserver, FoldsRunIntoRegistry) {
  const Graph g = make_path(9);
  const auto ids = sequential_ids(9);
  const LocalInput in = path_input(g, ids);
  MaxFlood algo;
  MetricsRegistry reg;
  MetricsObserver obs(&reg);
  const auto result = run_local(in, algo, 100, &obs);
  ASSERT_TRUE(result.all_halted);

  EXPECT_DOUBLE_EQ(reg.counter("engine.rounds"),
                   static_cast<double>(result.rounds));
  EXPECT_DOUBLE_EQ(reg.counter("engine.halts"), 9.0);
  EXPECT_GE(reg.counter("engine.steps"), 9.0);
  EXPECT_GE(reg.counter("engine.state_copies"), reg.counter("engine.steps"));
  EXPECT_DOUBLE_EQ(reg.gauge("engine.run_rounds"),
                   static_cast<double>(result.rounds));
  EXPECT_DOUBLE_EQ(reg.gauge("engine.all_halted"), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("engine.halted_fraction"), 1.0);

  const Histogram* h = reg.find_histogram("engine.active_nodes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->summary().count(), static_cast<std::size_t>(result.rounds));
  EXPECT_DOUBLE_EQ(h->summary().max(), 9.0);
}

}  // namespace
}  // namespace ckp
