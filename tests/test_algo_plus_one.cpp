#include "algo/plus_one_coloring.hpp"

#include <gtest/gtest.h>

#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "test_helpers.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

class PlusOneZoo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlusOneZoo, RandomizedCompleteRunOnAllFixtures) {
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    const int delta = std::max(1, g.max_degree());
    RoundLedger ledger;
    const auto r = plus_one_coloring_randomized(g, delta, GetParam(), ledger);
    ASSERT_TRUE(r.completed) << name;
    EXPECT_TRUE(verify_coloring(g, r.colors, delta + 1).ok)
        << name << " seed=" << GetParam();
    EXPECT_EQ(r.rounds, ledger.rounds());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlusOneZoo, ::testing::Values(1u, 2u, 7u));

TEST(PlusOne, RandomizedRoundsLogarithmic) {
  Rng rng(1201);
  const Graph g = make_random_regular(4096, 8, rng);
  RoundLedger ledger;
  const auto r = plus_one_coloring_randomized(g, 8, 5, ledger);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.randomized_iterations, 4 * ilog2(4096));
}

TEST(PlusOne, ShatteringHybridAlwaysCompletes) {
  Rng rng(1203);
  const Graph g = make_random_regular(2048, 16, rng);
  for (int iters : {1, 2, 4, 8}) {
    PlusOneParams params;
    params.shatter_iterations = iters;
    RoundLedger ledger;
    const auto r = plus_one_coloring_randomized(g, 16, 3, ledger, params);
    ASSERT_TRUE(r.completed) << iters;
    EXPECT_TRUE(verify_coloring(g, r.colors, 17).ok) << iters;
  }
}

TEST(PlusOne, MoreIterationsSmallerResidue) {
  Rng rng(1207);
  const Graph g = make_random_regular(4096, 12, rng);
  PlusOneParams one;
  one.shatter_iterations = 1;
  PlusOneParams many;
  many.shatter_iterations = 10;
  RoundLedger l1, l2;
  const auto r1 = plus_one_coloring_randomized(g, 12, 9, l1, one);
  const auto r2 = plus_one_coloring_randomized(g, 12, 9, l2, many);
  EXPECT_GT(r1.residue_nodes, r2.residue_nodes);
  EXPECT_GE(r1.largest_residue_component, r2.largest_residue_component);
}

TEST(PlusOne, ShatteringLeavesSmallComponents) {
  // The BEPS phenomenon: after O(log Δ) iterations the residue components
  // are tiny compared to n.
  Rng rng(1209);
  const Graph g = make_random_regular(8192, 8, rng);
  PlusOneParams params;
  params.shatter_iterations = 2 * ceil_log2(9) + 2;
  RoundLedger ledger;
  const auto r = plus_one_coloring_randomized(g, 8, 21, ledger, params);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.largest_residue_component, 100);
}

TEST(PlusOne, DeterministicBaselineOnZoo) {
  Rng rng(1213);
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    const int delta = std::max(1, g.max_degree());
    const auto ids = random_ids(g.num_nodes(), 32, rng);
    RoundLedger ledger;
    const auto r = plus_one_coloring_deterministic(g, ids, delta, ledger);
    EXPECT_TRUE(verify_coloring(g, r.colors, delta + 1).ok) << name;
  }
}

TEST(PlusOne, DeterministicRoundsFlatInN) {
  Rng rng(1217);
  const Graph small = make_random_regular(256, 6, rng);
  const Graph large = make_random_regular(8192, 6, rng);
  RoundLedger ls, ll;
  plus_one_coloring_deterministic(small, random_ids(256, 30, rng), 6, ls);
  plus_one_coloring_deterministic(large, random_ids(8192, 30, rng), 6, ll);
  EXPECT_LE(ll.rounds(), ls.rounds() + 4);
}

TEST(PlusOne, DeterministicGivenSeed) {
  Rng rng(1219);
  const Graph g = make_prufer_tree(500, rng);
  const int delta = g.max_degree();
  RoundLedger l1, l2;
  const auto a = plus_one_coloring_randomized(g, delta, 77, l1);
  const auto b = plus_one_coloring_randomized(g, delta, 77, l2);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace ckp
