// Tests for the additional strict-engine algorithm (leader election), the
// Margulis expander generator, and the generic ball checker.
#include <gtest/gtest.h>

#include "algo/leader_election.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/power.hpp"
#include "graph/trees.hpp"
#include "lcl/ball_checker.hpp"
#include "lcl/verify_coloring.hpp"
#include "lcl/verify_mis.hpp"
#include "local/ids.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

TEST(LeaderElection, EveryoneAgreesOnMaxId) {
  Rng rng(2101);
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    if (connected_components(g).count != 1) continue;
    LocalInput in;
    in.graph = &g;
    in.ids = random_ids(g.num_nodes(), 32, rng);
    const auto r = elect_leader(in);
    ASSERT_TRUE(r.completed) << name;
    std::uint64_t expect = 0;
    for (auto id : in.ids) expect = std::max(expect, id);
    for (auto seen : r.leader_seen) EXPECT_EQ(seen, expect) << name;
    EXPECT_EQ(in.ids[static_cast<std::size_t>(r.leader)], expect) << name;
  }
}

TEST(LeaderElection, RoundsTrackDiameterWithTightMargin) {
  const Graph g = make_path(200);
  LocalInput in;
  in.graph = &g;
  in.ids = sequential_ids(200);  // leader at the far end
  const auto r = elect_leader(in, /*stability_margin=*/200);
  ASSERT_TRUE(r.completed);
  // Information from node 199 reaches node 0 after 199 rounds, plus margin.
  EXPECT_GE(r.rounds, 199);
  EXPECT_LE(r.rounds, 199 + 201);
}

TEST(LeaderElection, RequiresIds) {
  const Graph g = make_path(3);
  LocalInput in;
  in.graph = &g;
  EXPECT_THROW(elect_leader(in), CheckFailure);
}

TEST(Margulis, ExpanderShape) {
  const Graph g = make_margulis(16);
  EXPECT_EQ(g.num_nodes(), 256);
  EXPECT_LE(g.max_degree(), 8);
  EXPECT_EQ(connected_components(g).count, 1);
  // Expander: tiny diameter. BFS from 0 must reach everything fast.
  const auto dist = bfs_distances(g, 0, 12);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(dist[static_cast<std::size_t>(v)], 0);
  }
}

TEST(Margulis, GrowsQuadratically) {
  for (NodeId m : {2, 5, 20}) {
    const Graph g = make_margulis(m);
    EXPECT_EQ(g.num_nodes(), m * m);
  }
}

TEST(BallChecker, ColoringAsBallPredicate) {
  // Proper coloring as a radius-1 ball predicate must agree with the fast
  // verifier on positive and negative cases across the zoo.
  Rng rng(2111);
  auto proper_ball = [](const LabeledBall& ball) {
    for (NodeId u : ball.sub->graph.neighbors(ball.center)) {
      if (ball.labels[static_cast<std::size_t>(u)] ==
          ball.labels[static_cast<std::size_t>(ball.center)]) {
        return false;
      }
    }
    return true;
  };
  const Graph g = make_cycle(12);
  const std::vector<int> good{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_TRUE(check_all_balls(g, 1, good, proper_ball).ok);
  std::vector<int> bad = good;
  bad[3] = bad[4];
  const auto fast = verify_coloring(g, bad, 3);
  const auto generic = check_all_balls(g, 1, bad, proper_ball);
  EXPECT_FALSE(fast.ok);
  EXPECT_FALSE(generic.ok);
}

TEST(BallChecker, MisAsBallPredicate) {
  auto mis_ball = [](const LabeledBall& ball) {
    const bool in = ball.labels[static_cast<std::size_t>(ball.center)] == 1;
    bool neighbor_in = false;
    for (NodeId u : ball.sub->graph.neighbors(ball.center)) {
      if (ball.labels[static_cast<std::size_t>(u)] == 1) neighbor_in = true;
    }
    return in ? !neighbor_in : neighbor_in;
  };
  Rng rng(2113);
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    LocalInput in;
    in.graph = &g;
    in.seed = 5;
    // Build a valid MIS via the library and cross-check with the generic
    // ball checker.
    std::vector<int> labels(static_cast<std::size_t>(g.num_nodes()), 0);
    {
      RoundLedger ledger;
      // MIS as labels via the zoo-stable deterministic route.
      const auto ids = random_ids(g.num_nodes(), 32, rng);
      // Greedy by id order (centralized reference MIS).
      std::vector<NodeId> order(static_cast<std::size_t>(g.num_nodes()));
      for (NodeId v = 0; v < g.num_nodes(); ++v) order[static_cast<std::size_t>(v)] = v;
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return ids[static_cast<std::size_t>(a)] < ids[static_cast<std::size_t>(b)];
      });
      for (NodeId v : order) {
        bool blocked = false;
        for (NodeId u : g.neighbors(v)) {
          if (labels[static_cast<std::size_t>(u)] == 1) blocked = true;
        }
        if (!blocked) labels[static_cast<std::size_t>(v)] = 1;
      }
    }
    EXPECT_TRUE(check_all_balls(g, 1, labels, mis_ball).ok) << name;
    // Corrupt it: flip one member out — domination breaks somewhere.
    if (g.num_edges() > 0) {
      std::vector<int> broken = labels;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (broken[static_cast<std::size_t>(v)] == 1 && g.degree(v) > 0) {
          broken[static_cast<std::size_t>(v)] = 0;
          break;
        }
      }
      EXPECT_FALSE(check_all_balls(g, 1, broken, mis_ball).ok) << name;
    }
  }
}

TEST(BallChecker, RadiusZeroAndErrors) {
  const Graph g = make_path(4);
  auto all_zero = [](const LabeledBall& ball) {
    return ball.labels[static_cast<std::size_t>(ball.center)] == 0;
  };
  EXPECT_TRUE(check_all_balls(g, 0, std::vector<int>{0, 0, 0, 0}, all_zero).ok);
  const auto r = check_all_balls(g, 0, std::vector<int>{0, 1, 0, 0}, all_zero);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.node, 1);
  EXPECT_FALSE(check_all_balls(g, 1, std::vector<int>{0}, all_zero).ok);
}

}  // namespace
}  // namespace ckp
