// Differential tests for the BFS neighborhood-query kernel
// (graph/bfs_kernel.hpp): every kernel-backed primitive against its seed
// `*_reference` oracle over the structural zoo plus regular / Ramanujan
// instances, thread-count invariance of the parallel fan-outs, the
// ViewEngine ball cache (hits, incremental extension, shrinking radii), and
// the capped distance table against pairwise reference BFS.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "core/distance_sets.hpp"
#include "graph/bfs_kernel.hpp"
#include "graph/girth.hpp"
#include "graph/power.hpp"
#include "graph/ramanujan.hpp"
#include "graph/regular.hpp"
#include "local/context.hpp"
#include "local/view_engine.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ckp {
namespace {

using testing::NamedGraph;
using testing::small_graph_zoo;

// Instances that exercise the kernel at less-tiny scale: random regular,
// random bipartite regular (edge-colored), and the explicit LPS Ramanujan
// graph X^{5,13} (n=1092, Δ=6).
std::vector<NamedGraph> kernel_zoo() {
  Rng rng(0xbf5);
  std::vector<NamedGraph> zoo = small_graph_zoo();
  zoo.push_back({"regular3_200", make_random_regular(200, 3, rng)});
  zoo.push_back(
      {"bipartite4_128", make_random_bipartite_regular(64, 4, rng).graph});
  zoo.push_back({"lps_5_13", make_lps_ramanujan(5, 13).graph});
  return zoo;
}

void expect_same_graph(const Graph& a, const Graph& b, const char* what) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << what;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << what;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.endpoints(e), b.endpoints(e)) << what << " edge " << e;
  }
}

// The seed oracles are deliberately naive (girth_reference is O(n·m),
// power_graph_reference materializes every ball), so running them on the
// larger zoo entries dominates the whole suite's wall time without adding
// coverage the small instances lack. Tier-1 caps oracle inputs at this size;
// CKP_SLOW_TESTS=1 restores the full sweep (scripts/check_all.sh documents
// the gate).
constexpr NodeId kOracleNodeCap = 512;

bool slow_tests_enabled() {
  const char* v = std::getenv("CKP_SLOW_TESTS");
  return v != nullptr && *v != '\0' && *v != '0';
}

bool skip_for_oracle(const Graph& g) {
  return g.num_nodes() > kOracleNodeCap && !slow_tests_enabled();
}

TEST(BfsKernel, BallAndDistancesMatchReference) {
  for (const auto& [name, g] : kernel_zoo()) {
    for (const int r : {0, 1, 2, 3, 7}) {
      for (NodeId v = 0; v < g.num_nodes();
           v += std::max(NodeId{1}, g.num_nodes() / 37)) {
        EXPECT_EQ(ball(g, v, r), ball_reference(g, v, r))
            << name << " v=" << v << " r=" << r;
        EXPECT_EQ(bfs_distances(g, v, r), bfs_distances_reference(g, v, r))
            << name << " v=" << v << " r=" << r;
      }
    }
  }
}

TEST(BfsKernel, PowerGraphMatchesReferenceBitIdentically) {
  for (const auto& [name, g] : kernel_zoo()) {
    if (skip_for_oracle(g)) continue;
    for (const int k : {1, 2, 3}) {
      const Graph ref = power_graph_reference(g, k);
      for (const int threads : {1, 2, 8}) {
        const Graph got = power_graph(g, k, threads);
        expect_same_graph(got, ref, name.c_str());
      }
    }
  }
}

TEST(BfsKernel, GirthMatchesReferenceAtEveryThreadCount) {
  for (const auto& [name, g] : kernel_zoo()) {
    if (skip_for_oracle(g)) continue;
    const int ref = girth_reference(g);
    for (const int threads : {1, 2, 8}) {
      EXPECT_EQ(girth(g, threads), ref) << name << " threads=" << threads;
    }
    for (NodeId v = 0; v < g.num_nodes();
         v += std::max(NodeId{1}, g.num_nodes() / 23)) {
      EXPECT_EQ(shortest_cycle_through(g, v),
                shortest_cycle_through_reference(g, v))
          << name << " v=" << v;
    }
  }
}

TEST(BfsKernel, CappedPairDistancesMatchReference) {
  for (const auto& [name, g] : kernel_zoo()) {
    if (g.num_nodes() > 300) continue;  // quadratic check below
    for (const int cap : {1, 3}) {
      const CappedDistanceTable ref_table = capped_pair_distances(g, cap, 1);
      for (const int threads : {2, 8}) {
        const CappedDistanceTable table = capped_pair_distances(g, cap, threads);
        ASSERT_EQ(table.num_nodes(), ref_table.num_nodes()) << name;
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
          const auto a = table.row(u);
          const auto b = ref_table.row(u);
          ASSERT_EQ(std::vector(a.begin(), a.end()),
                    std::vector(b.begin(), b.end()))
              << name << " u=" << u << " threads=" << threads;
        }
      }
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const auto dist = bfs_distances_reference(g, u, cap);
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          EXPECT_EQ(ref_table.distance(u, v),
                    dist[static_cast<std::size_t>(v)])
              << name << " u=" << u << " v=" << v;
        }
      }
    }
  }
}

void expect_same_view(const BallView& got, const BallView& want,
                      const std::string& what) {
  ASSERT_EQ(got.radius, want.radius) << what;
  ASSERT_EQ(got.center, want.center) << what;
  ASSERT_EQ(got.sub.to_original, want.sub.to_original) << what;
  ASSERT_EQ(got.sub.from_original, want.sub.from_original) << what;
  ASSERT_EQ(got.distance, want.distance) << what;
  expect_same_graph(got.sub.graph, want.sub.graph, what.c_str());
}

TEST(BfsKernel, ViewEngineMatchesReferenceOnMonotoneRadii) {
  for (const auto& [name, g] : kernel_zoo()) {
    LocalInput in;
    in.graph = &g;
    ViewEngine ve(in);
    for (const int r : {0, 1, 2, 4}) {  // ascending: exercises bfs_resume
      for (NodeId v = 0; v < g.num_nodes();
           v += std::max(NodeId{1}, g.num_nodes() / 19)) {
        expect_same_view(ve.view(v, r), ball_view_reference(g, v, r),
                         name + " v=" + std::to_string(v) +
                             " r=" + std::to_string(r));
      }
    }
  }
}

TEST(BfsKernel, ViewEngineMatchesReferenceOnShrinkingRadii) {
  // A smaller radius after a larger one must filter the cached ball, not
  // return the cached (larger) one.
  for (const auto& [name, g] : kernel_zoo()) {
    LocalInput in;
    in.graph = &g;
    ViewEngine ve(in);
    for (const int r : {5, 2, 3, 0, 1}) {
      for (NodeId v = 0; v < g.num_nodes();
           v += std::max(NodeId{1}, g.num_nodes() / 11)) {
        expect_same_view(ve.view(v, r), ball_view_reference(g, v, r),
                         name + " v=" + std::to_string(v) +
                             " r=" + std::to_string(r));
      }
    }
  }
}

TEST(BfsKernel, ViewCacheCountersTrackHitsAndExtends) {
  const Graph g = make_complete_tree(40, 3);
  LocalInput in;
  in.graph = &g;
  ViewEngine ve(in);
  const BfsKernelCounters t0 = bfs_kernel_counters();
  ve.view(0, 2);  // cold: fresh BFS
  const BfsKernelCounters t1 = bfs_kernel_counters();
  EXPECT_EQ(t1.view_queries - t0.view_queries, 1u);
  EXPECT_EQ(t1.view_cache_hits - t0.view_cache_hits, 0u);
  EXPECT_EQ(t1.view_cache_extends - t0.view_cache_extends, 0u);
  ve.view(0, 2);  // exact repeat: hit
  ve.view(0, 1);  // smaller radius: hit (filtered)
  const BfsKernelCounters t2 = bfs_kernel_counters();
  EXPECT_EQ(t2.view_cache_hits - t1.view_cache_hits, 2u);
  ve.view(0, 3);  // larger radius: incremental extension
  const BfsKernelCounters t3 = bfs_kernel_counters();
  EXPECT_EQ(t3.view_cache_extends - t2.view_cache_extends, 1u);
  EXPECT_EQ(t3.resumes - t2.resumes, 1u);
}

TEST(BfsKernel, QueryCountersAdvance) {
  const Graph g = make_cycle(32);
  BfsScratch scratch;
  scratch.bind(g.num_nodes());
  const BfsKernelCounters t0 = bfs_kernel_counters();
  scratch.bfs_from(g, 0, 3);
  const BfsKernelCounters t1 = bfs_kernel_counters();
  EXPECT_EQ(t1.queries - t0.queries, 1u);
  EXPECT_EQ(t1.nodes_touched - t0.nodes_touched, 7u);  // ball of radius 3
  // Re-binding to the same size is a reuse, not a grow.
  scratch.bind(g.num_nodes());
  scratch.bfs_from(g, 1, 1);
  const BfsKernelCounters t2 = bfs_kernel_counters();
  EXPECT_EQ(t2.scratch_reuses - t1.scratch_reuses, 1u);
  EXPECT_EQ(t2.scratch_grows - t1.scratch_grows, 0u);
}

TEST(BfsKernel, ScratchStateAnswersQueries) {
  const Graph g = make_path(10);
  BfsScratch scratch;
  scratch.bind(g.num_nodes());
  scratch.bfs_from(g, 4, 2);
  EXPECT_TRUE(scratch.reached(2));
  EXPECT_TRUE(scratch.reached(6));
  EXPECT_FALSE(scratch.reached(1));
  EXPECT_FALSE(scratch.reached(8));
  EXPECT_EQ(scratch.distance(4), 0);
  EXPECT_EQ(scratch.distance(3), 1);
  EXPECT_EQ(scratch.distance(6), 2);
  EXPECT_EQ(scratch.distance(9), -1);
  EXPECT_EQ(scratch.touched().size(), 5u);
  std::vector<NodeId> sorted;
  scratch.sorted_touched(sorted);
  EXPECT_EQ(sorted, (std::vector<NodeId>{2, 3, 4, 5, 6}));
  // The next query invalidates the last one in O(1): node 9's ball.
  scratch.bfs_from(g, 9, 1);
  EXPECT_FALSE(scratch.reached(4));
  EXPECT_TRUE(scratch.reached(8));
}

TEST(BfsKernel, ResumeEqualsFreshBfs) {
  for (const auto& [name, g] : kernel_zoo()) {
    if (g.num_nodes() < 2) continue;
    BfsScratch a, b;
    a.bind(g.num_nodes());
    b.bind(g.num_nodes());
    const NodeId v = g.num_nodes() / 2;
    a.bfs_from(g, v, 1);
    std::vector<NodeId> members;
    a.sorted_touched(members);
    std::vector<int> dist(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      dist[i] = a.distance(members[i]);
    }
    a.bfs_resume(g, members, dist, 1, 3);
    b.bfs_from(g, v, 3);
    std::vector<NodeId> resumed, fresh;
    a.sorted_touched(resumed);
    b.sorted_touched(fresh);
    ASSERT_EQ(resumed, fresh) << name;
    for (const NodeId u : fresh) {
      EXPECT_EQ(a.distance(u), b.distance(u)) << name << " u=" << u;
    }
  }
}

TEST(BfsKernel, DistanceSetCountsUnchanged) {
  // count_distance_k_sets now runs on the capped distance table; pin a few
  // closed-form counts (path/cycle) so the rewrite is checked against math,
  // not against itself.
  const Graph path = make_path(8);
  // Pairs at distance exactly 2 on a path of 8: (0,2)..(5,7) = 6.
  EXPECT_EQ(count_distance_k_sets(path, 2, 2), 6u);
  const Graph cycle = make_cycle(9);
  // On C9, distance-3 pairs: 9; triples {v, v+3, v+6}: 3.
  EXPECT_EQ(count_distance_k_sets(cycle, 3, 2), 9u);
  EXPECT_EQ(count_distance_k_sets(cycle, 3, 3), 3u);
}

}  // namespace
}  // namespace ckp
