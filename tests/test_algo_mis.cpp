#include <gtest/gtest.h>

#include "algo/mis_deterministic.hpp"
#include "algo/mis_ghaffari.hpp"
#include "algo/mis_luby.hpp"
#include "graph/generators.hpp"
#include "graph/regular.hpp"
#include "lcl/verify_mis.hpp"
#include "local/ids.hpp"
#include "test_helpers.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

class LubyZoo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LubyZoo, ValidMisOnAllFixtures) {
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    LocalInput in;
    in.graph = &g;
    in.seed = GetParam();
    const auto result = mis_luby(in);
    ASSERT_TRUE(result.completed) << name;
    EXPECT_TRUE(verify_mis(g, result.in_set).ok)
        << name << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LubyZoo, ::testing::Values(1u, 2u, 3u, 42u));

TEST(Luby, RoundsLogarithmicOnRegularGraphs) {
  Rng rng(501);
  const Graph g = make_random_regular(2000, 4, rng);
  LocalInput in;
  in.graph = &g;
  in.seed = 99;
  const auto result = mis_luby(in);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(verify_mis(g, result.in_set).ok);
  // 2 engine rounds per Luby iteration; O(log n) iterations w.h.p.
  EXPECT_LE(result.rounds, 8 * ilog2(2000));
}

TEST(Luby, DeterministicGivenSeed) {
  const Graph g = make_grid(10, 10);
  LocalInput in;
  in.graph = &g;
  in.seed = 7;
  const auto a = mis_luby(in);
  const auto b = mis_luby(in);
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Luby, RoundCapReported) {
  const Graph g = make_complete(40);
  LocalInput in;
  in.graph = &g;
  in.seed = 3;
  const auto result = mis_luby(in, /*max_rounds=*/1);
  EXPECT_FALSE(result.completed);
}

class GhaffariZoo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GhaffariZoo, ValidMisOnAllFixtures) {
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    RoundLedger ledger;
    const auto result = mis_ghaffari(g, GetParam(), ledger);
    EXPECT_TRUE(verify_mis(g, result.in_set).ok)
        << name << " seed=" << GetParam();
    EXPECT_EQ(result.rounds, ledger.rounds());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GhaffariZoo, ::testing::Values(1u, 2u, 5u));

TEST(Ghaffari, ShatteringLeavesSmallResidue) {
  Rng rng(503);
  const Graph g = make_random_regular(4000, 8, rng);
  RoundLedger ledger;
  const auto result = mis_ghaffari(g, 11, ledger);
  EXPECT_TRUE(verify_mis(g, result.in_set).ok);
  // After O(log Δ)+O(1) iterations the residue should be a tiny fraction
  // with only small components — the shattering phenomenon.
  EXPECT_LT(result.residue_nodes, 4000 / 4);
  EXPECT_LT(result.largest_residue_component, 200);
}

TEST(Ghaffari, FewIterationsMeansLargerResidue) {
  Rng rng(509);
  const Graph g = make_random_regular(2000, 8, rng);
  GhaffariMisParams weak;
  weak.phase1_iterations = 1;
  GhaffariMisParams strong;
  strong.phase1_iterations = 40;
  RoundLedger lw, ls;
  const auto rw = mis_ghaffari(g, 13, lw, weak);
  const auto rs = mis_ghaffari(g, 13, ls, strong);
  EXPECT_TRUE(verify_mis(g, rw.in_set).ok);
  EXPECT_TRUE(verify_mis(g, rs.in_set).ok);
  EXPECT_GE(rw.residue_nodes, rs.residue_nodes);
}

class DetMisZoo : public ::testing::TestWithParam<int> {};

TEST_P(DetMisZoo, ValidMisUnderVariousIdSchemes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    std::vector<std::uint64_t> ids;
    switch (GetParam() % 3) {
      case 0:
        ids = sequential_ids(g.num_nodes());
        break;
      case 1:
        ids = random_ids(g.num_nodes(), 32, rng);
        break;
      default:
        ids = reverse_bfs_order_ids(g, 0);
        break;
    }
    RoundLedger ledger;
    const auto result =
        mis_deterministic(g, ids, std::max(1, g.max_degree()), ledger);
    EXPECT_TRUE(verify_mis(g, result.in_set).ok)
        << name << " scheme=" << GetParam() % 3;
  }
}

INSTANTIATE_TEST_SUITE_P(IdSchemes, DetMisZoo, ::testing::Values(0, 1, 2));

TEST(DetMis, RestrictedToSubset) {
  const Graph g = make_path(10);
  std::vector<char> restrict_to(10, 0);
  for (NodeId v = 3; v <= 8; ++v) restrict_to[static_cast<std::size_t>(v)] = 1;
  RoundLedger ledger;
  const auto result =
      mis_deterministic(g, sequential_ids(10), 2, ledger, restrict_to);
  // No member outside the subset.
  for (NodeId v = 0; v < 10; ++v) {
    if (!restrict_to[static_cast<std::size_t>(v)]) {
      EXPECT_FALSE(result.in_set[static_cast<std::size_t>(v)]);
    }
  }
  // Valid MIS of the induced path 3..8: check independence + domination
  // within the subset.
  for (NodeId v = 3; v <= 8; ++v) {
    if (result.in_set[static_cast<std::size_t>(v)]) continue;
    bool dominated = false;
    for (NodeId u : g.neighbors(v)) {
      if (restrict_to[static_cast<std::size_t>(u)] &&
          result.in_set[static_cast<std::size_t>(u)]) {
        dominated = true;
      }
    }
    EXPECT_TRUE(dominated) << v;
  }
}

TEST(DetMis, RoundsIndependentOfNForFixedDelta) {
  // O(Δ² + log* n): doubling n at fixed Δ barely moves the round count.
  Rng rng(521);
  const Graph small = make_random_regular(200, 4, rng);
  const Graph large = make_random_regular(6400, 4, rng);
  RoundLedger ls, ll;
  mis_deterministic(small, random_ids(200, 40, rng), 4, ls);
  mis_deterministic(large, random_ids(6400, 40, rng), 4, ll);
  EXPECT_LE(ll.rounds(), ls.rounds() + 4);
}

}  // namespace
}  // namespace ckp
