#include "core/sinkless.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/girth.hpp"
#include "graph/regular.hpp"
#include "local/ids.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

struct RegCase {
  NodeId n;
  int d;
  std::uint64_t seed;
};

class RandomizedSinkless : public ::testing::TestWithParam<RegCase> {};

TEST_P(RandomizedSinkless, ValidOnRegularGraphs) {
  const auto [n, d, seed] = GetParam();
  Rng rng(mix_seed(seed, static_cast<std::uint64_t>(n)));
  const Graph g = make_random_regular(n, d, rng);
  RoundLedger ledger;
  const auto result = sinkless_orientation_randomized(g, seed, ledger);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(verify_sinkless_orientation(g, result.orient).ok)
      << "n=" << n << " d=" << d;
  EXPECT_EQ(result.rounds, ledger.rounds());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomizedSinkless,
                         ::testing::Values(RegCase{20, 3, 1},
                                           RegCase{100, 3, 2},
                                           RegCase{500, 4, 3},
                                           RegCase{1000, 3, 4},
                                           RegCase{2000, 6, 5}));

TEST(RandomizedSinkless, CycleWorks) {
  RoundLedger ledger;
  const auto result = sinkless_orientation_randomized(make_cycle(50), 9, ledger);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(verify_sinkless_orientation(make_cycle(50), result.orient).ok);
}

TEST(RandomizedSinkless, RejectsDegreeOne) {
  RoundLedger ledger;
  EXPECT_THROW(sinkless_orientation_randomized(make_path(5), 1, ledger),
               CheckFailure);
}

TEST(RandomizedSinkless, FewRepairRoundsOnLargeInstances) {
  // The randomized algorithm's whole point: repair cost stays tiny as n
  // grows (the paper's Ω(log_Δ log n) says it can't be 0 in general, but
  // the empirical round count is far below the deterministic Θ(log n)).
  Rng rng(901);
  const Graph g = make_random_regular(20000, 3, rng);
  RoundLedger ledger;
  const auto result = sinkless_orientation_randomized(g, 5, ledger);
  ASSERT_TRUE(result.completed);
  EXPECT_LE(result.rounds, 30);
  EXPECT_LT(result.sinks_after_claims, 20000 / 4);
}

class DeterministicSinkless : public ::testing::TestWithParam<RegCase> {};

TEST_P(DeterministicSinkless, ValidOnRegularGraphs) {
  const auto [n, d, seed] = GetParam();
  Rng rng(mix_seed(seed, static_cast<std::uint64_t>(n), 0x77));
  const Graph g = make_random_regular(n, d, rng);
  const auto ids = random_ids(n, 32, rng);
  RoundLedger ledger;
  const auto result = sinkless_orientation_deterministic(g, ids, ledger);
  EXPECT_TRUE(verify_sinkless_orientation(g, result.orient).ok)
      << "n=" << n << " d=" << d;
  EXPECT_GT(result.rounds, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeterministicSinkless,
                         ::testing::Values(RegCase{20, 3, 1},
                                           RegCase{128, 3, 2},
                                           RegCase{512, 4, 3},
                                           RegCase{1024, 3, 4}));

TEST(DeterministicSinkless, CycleAndDisconnected) {
  // A union of two cycles: every component must be handled.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < 6; ++i) edges.emplace_back(i, (i + 1) % 6);
  for (NodeId i = 0; i < 8; ++i) edges.emplace_back(6 + i, 6 + (i + 1) % 8);
  const Graph g = Graph::from_edges(14, edges);
  RoundLedger ledger;
  const auto result =
      sinkless_orientation_deterministic(g, sequential_ids(14), ledger);
  EXPECT_TRUE(verify_sinkless_orientation(g, result.orient).ok);
}

TEST(DeterministicSinkless, RejectsTreeComponents) {
  // min degree 2 fails on a path; and a graph with an acyclic component is
  // impossible for sinkless orientation.
  RoundLedger ledger;
  EXPECT_THROW(
      sinkless_orientation_deterministic(make_path(4), sequential_ids(4), ledger),
      CheckFailure);
}

TEST(DeterministicSinkless, RoundsScaleWithDiameter) {
  // Θ(log_Δ n) rounds on random regular graphs: doubling n adds rounds.
  Rng rng(907);
  const Graph small = make_random_regular(256, 3, rng);
  const Graph large = make_random_regular(8192, 3, rng);
  RoundLedger ls, ll;
  sinkless_orientation_deterministic(small, random_ids(256, 30, rng), ls);
  sinkless_orientation_deterministic(large, random_ids(8192, 30, rng), ll);
  EXPECT_GT(ll.rounds(), ls.rounds());
  // And within a constant factor of log2 n for d=3.
  EXPECT_LE(ll.rounds(), 4 * ilog2(8192));
}

TEST(Separation, RandomizedBeatsDeterministicOnLargeGirth) {
  // The empirical shape of the Section IV separation: on the same high-girth
  // instance, randomized rounds << deterministic rounds.
  Rng rng(911);
  const auto inst = make_random_bipartite_regular(4096, 3, rng);
  RoundLedger lr, ld;
  const auto r =
      sinkless_orientation_randomized(inst.graph, 3, lr);
  ASSERT_TRUE(r.completed);
  const auto d = sinkless_orientation_deterministic(
      inst.graph, random_ids(inst.graph.num_nodes(), 32, rng), ld);
  EXPECT_TRUE(verify_sinkless_orientation(inst.graph, d.orient).ok);
  EXPECT_LT(lr.rounds() * 2, ld.rounds());
}

}  // namespace
}  // namespace ckp
