// Late-pass seam tests: Theorem 8 transform end-to-end, engine boundary
// semantics, LPS instances through the Section IV pipeline, and verifier
// diagnostics.
#include <gtest/gtest.h>

#include "algo/mis_deterministic.hpp"
#include "core/sinkless.hpp"
#include "core/speedup.hpp"
#include "graph/generators.hpp"
#include "graph/ramanujan.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_mis.hpp"
#include "lcl/verify_orientation.hpp"
#include "local/engine.hpp"
#include "local/ids.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

TEST(Thm8Transform, EndToEndValidMis) {
  const auto inner = [](const Graph& g, const std::vector<std::uint64_t>& ids,
                        std::uint64_t, int delta, RoundLedger& ledger) {
    const auto r = mis_deterministic(g, ids, delta, ledger);
    return std::vector<int>(r.in_set.begin(), r.in_set.end());
  };
  Rng rng(2301);
  const Graph g = make_complete_tree(3000, 4);
  const auto ids = random_ids(3000, 30, rng);
  for (int k : {1, 2}) {
    const int h = thm8_horizon(0.5, k, 4, 1);
    RoundLedger ledger;
    const auto r = speedup_transform(g, ids, 4, h, 0, inner, ledger);
    std::vector<char> in_set(r.labels.begin(), r.labels.end());
    EXPECT_TRUE(verify_mis(g, in_set).ok) << "k=" << k;
    EXPECT_GT(r.shortening_rounds, 0);
  }
}

TEST(Thm8Horizon, MonotoneInEps) {
  EXPECT_LE(thm8_horizon(0.25, 2, 16, 1), thm8_horizon(1.0, 2, 16, 1));
  EXPECT_THROW(thm8_horizon(0.0, 1, 4, 1), CheckFailure);
}

// Engine: halted nodes stay visible and frozen.
struct CountDown {
  struct State {
    int remaining = 0;
    std::uint64_t frozen_at = 0;
  };
  State init(const NodeEnv& env) {
    return {static_cast<int>(env.index % 3), 0};
  }
  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    (void)env;
    (void)nbrs;
    if (self.remaining == 0) {
      self.frozen_at = 1;
      return true;
    }
    --self.remaining;
    return false;
  }
};

TEST(Engine, HeterogeneousHaltingTimes) {
  const Graph g = make_path(9);
  LocalInput in;
  in.graph = &g;
  in.ids = sequential_ids(9);
  CountDown algo;
  const auto r = run_local(in, algo, 10);
  EXPECT_TRUE(r.all_halted);
  // Nodes halt at index%3 + 1 rounds; the engine runs until the slowest.
  EXPECT_EQ(r.rounds, 3);
  for (const auto& s : r.states) {
    EXPECT_EQ(s.remaining, 0);
    EXPECT_EQ(s.frozen_at, 1u);
  }
}

TEST(Engine, ZeroNodeGraph) {
  const Graph g;
  LocalInput in;
  in.graph = &g;
  CountDown algo;
  const auto r = run_local(in, algo, 5);
  EXPECT_TRUE(r.all_halted);
  EXPECT_EQ(r.rounds, 0);
}

TEST(SinklessOnLps, BothAlgorithmsEndToEnd) {
  // The Section IV pipeline on a certified-girth explicit instance.
  const auto lps = make_lps_ramanujan(5, 13);
  const Graph& g = lps.graph;
  RoundLedger lr;
  const auto rand_result = sinkless_orientation_randomized(g, 3, lr);
  ASSERT_TRUE(rand_result.completed);
  EXPECT_TRUE(verify_sinkless_orientation(g, rand_result.orient).ok);
  Rng rng(2309);
  const auto ids = random_ids(
      g.num_nodes(), 2 * ceil_log2(static_cast<std::uint64_t>(g.num_nodes())),
      rng);
  RoundLedger ld;
  const auto det_result = sinkless_orientation_deterministic(g, ids, ld);
  EXPECT_TRUE(verify_sinkless_orientation(g, det_result.orient).ok);
  // Bipartite PGL instance: n = q(q²-1).
  EXPECT_TRUE(lps.bipartite);
  EXPECT_EQ(g.num_nodes(), 13 * (13 * 13 - 1));
}

TEST(VerifierDiagnostics, PinpointOffenders) {
  const Graph g = make_path(4);
  const auto bad_mis = verify_mis(g, std::vector<char>{0, 0, 0, 0});
  EXPECT_FALSE(bad_mis.ok);
  EXPECT_NE(bad_mis.node, kInvalidNode);
  EXPECT_FALSE(bad_mis.reason.empty());

  Orientation sinkful{+1, +1, +1};  // path 0->1->2->3: node 3 is a sink
  const auto bad_orient = verify_sinkless_orientation(g, sinkful);
  EXPECT_FALSE(bad_orient.ok);
  EXPECT_EQ(bad_orient.node, 3);
}

TEST(DeclaredParameters, SpeedupUsesFakeNPlumbing) {
  // The inner algorithm must observe declared_n, not the true n.
  std::uint64_t observed = 0;
  const auto probe = [&observed](const Graph& g,
                                 const std::vector<std::uint64_t>&,
                                 std::uint64_t declared_n, int,
                                 RoundLedger&) {
    observed = declared_n;
    return std::vector<int>(static_cast<std::size_t>(g.num_nodes()), 0);
  };
  Rng rng(2311);
  const Graph g = make_complete_tree(2000, 3);
  const auto ids = random_ids(2000, 30, rng);
  RoundLedger ledger;
  const auto r = speedup_transform(g, ids, 3, 4, 0, probe, ledger);
  EXPECT_EQ(observed, r.declared_n);
  EXPECT_LT(observed, 2000u * 2000u);  // far below any function of true n²
  EXPECT_GT(observed, 0u);
}

}  // namespace
}  // namespace ckp
