// Shared fixtures and helpers for the test suite.
#pragma once

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "util/rng.hpp"

namespace ckp::testing {

// A labeled menagerie of small graphs covering the structural corner cases.
struct NamedGraph {
  std::string name;
  Graph graph;
};

inline std::vector<NamedGraph> small_graph_zoo() {
  Rng rng(0x500);
  std::vector<NamedGraph> zoo;
  zoo.push_back({"single", Graph::from_edges(1, {})});
  zoo.push_back({"edge", Graph::from_edges(2, {{0, 1}})});
  zoo.push_back({"path16", make_path(16)});
  zoo.push_back({"cycle9", make_cycle(9)});
  zoo.push_back({"cycle10", make_cycle(10)});
  zoo.push_back({"star17", make_star(17)});
  zoo.push_back({"k5", make_complete(5)});
  zoo.push_back({"k33", make_complete_bipartite(3, 3)});
  zoo.push_back({"grid5x7", make_grid(5, 7)});
  zoo.push_back({"hypercube4", make_hypercube(4)});
  zoo.push_back({"er64", make_er(64, 0.08, rng)});
  zoo.push_back({"tree_d3", make_complete_tree(40, 3)});
  zoo.push_back({"tree_d8", make_complete_tree(100, 8)});
  zoo.push_back({"random_tree", make_random_tree(80, 5, rng)});
  zoo.push_back({"prufer", make_prufer_tree(60, rng)});
  zoo.push_back({"caterpillar", make_caterpillar(12, 3)});
  zoo.push_back({"spider", make_spider(5, 6)});
  zoo.push_back({"moebius", make_moebius_ladder(8)});
  zoo.push_back({"regular4", make_random_regular(30, 4, rng)});
  return zoo;
}

inline std::vector<NamedGraph> tree_zoo() {
  Rng rng(0x7ee);
  std::vector<NamedGraph> zoo;
  zoo.push_back({"single", Graph::from_edges(1, {})});
  zoo.push_back({"edge", Graph::from_edges(2, {{0, 1}})});
  zoo.push_back({"path64", make_path(64)});
  zoo.push_back({"star33", make_star(33)});
  zoo.push_back({"complete_d3", make_complete_tree(200, 3)});
  zoo.push_back({"complete_d6", make_complete_tree(300, 6)});
  zoo.push_back({"random_d4", make_random_tree(250, 4, rng)});
  zoo.push_back({"prufer120", make_prufer_tree(120, rng)});
  zoo.push_back({"caterpillar", make_caterpillar(20, 4)});
  zoo.push_back({"spider", make_spider(7, 9)});
  return zoo;
}

}  // namespace ckp::testing
