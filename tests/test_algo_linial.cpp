#include "algo/linial.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

TEST(LinialStepPalette, ShrinksLargePalettes) {
  for (int delta : {1, 2, 3, 8, 32}) {
    const std::uint64_t k = 1ULL << 40;
    const std::uint64_t next = linial_step_palette(k, delta);
    EXPECT_LT(next, k) << "delta=" << delta;
  }
}

TEST(LinialStepPalette, FixedPointIsQuadraticInDelta) {
  for (int delta : {2, 3, 4, 8, 16, 64}) {
    const std::uint64_t fixed = linial_fixed_point_palette(delta);
    const std::uint64_t d = static_cast<std::uint64_t>(delta);
    EXPECT_GE(fixed, d * d) << delta;          // can't 2-color a clique
    EXPECT_LE(fixed, 40 * d * d + 60) << delta;  // β is a small constant
    // It really is a fixed point.
    EXPECT_GE(linial_step_palette(fixed, delta), fixed);
  }
}

TEST(LinialReduceOnce, ProperAndInNewPalette) {
  Rng rng(211);
  const Graph g = make_random_regular(60, 4, rng);
  const auto ids = random_ids(60, 20, rng);
  std::vector<std::uint64_t> colors = ids;
  const std::uint64_t k = 1ULL << 20;
  const std::uint64_t next = linial_step_palette(k, 4);
  ASSERT_LT(next, k);
  RoundLedger ledger;
  const auto out = linial_reduce_once(g, colors, k, 4, ledger);
  EXPECT_EQ(ledger.rounds(), 1);
  std::vector<int> as_int(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_LT(out[i], next);
    as_int[i] = static_cast<int>(out[i]);
  }
  EXPECT_TRUE(verify_coloring(g, as_int, static_cast<int>(next)).ok);
}

TEST(LinialReduceOnce, RejectsImproperInput) {
  const Graph g = make_path(3);
  RoundLedger ledger;
  std::vector<std::uint64_t> improper{5, 5, 1};
  EXPECT_THROW(linial_reduce_once(g, improper, 1 << 20, 2, ledger),
               CheckFailure);
}

class LinialColoringZoo : public ::testing::TestWithParam<int> {};

TEST_P(LinialColoringZoo, ProperOnAllFixtures) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    const auto ids = random_ids(g.num_nodes(), 40, rng);
    RoundLedger ledger;
    const auto result =
        linial_coloring(g, ids, std::max(1, g.max_degree()), ledger);
    EXPECT_TRUE(verify_coloring(g, result.colors, result.palette).ok)
        << name << " seed=" << seed;
    EXPECT_EQ(result.rounds, ledger.rounds());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinialColoringZoo, ::testing::Values(1, 2, 3));

TEST(LinialColoring, ReachesFixedPointPalette) {
  Rng rng(223);
  const Graph g = make_complete_tree(500, 4);
  const auto ids = random_ids(500, 40, rng);
  RoundLedger ledger;
  const auto result = linial_coloring(g, ids, 4, ledger);
  EXPECT_EQ(static_cast<std::uint64_t>(result.palette),
            linial_fixed_point_palette(4));
}

TEST(LinialColoring, RoundsGrowLikeLogStar) {
  // Theorem 2: rounds = O(log* n - log* Δ + 1). The iterated-log growth is
  // extremely slow: going from 2^10 to 2^40 IDs should add at most ~2 rounds.
  Rng rng(227);
  const Graph g = make_complete_tree(300, 3);
  RoundLedger small_ledger;
  const auto ids_small = random_ids(300, 10, rng);
  linial_coloring(g, ids_small, 3, small_ledger);
  RoundLedger big_ledger;
  const auto ids_big = random_ids(300, 60, rng);
  linial_coloring(g, ids_big, 3, big_ledger);
  EXPECT_LE(big_ledger.rounds(), small_ledger.rounds() + 3);
  EXPECT_LE(big_ledger.rounds(), 10);
}

TEST(LinialColoring, LargerDeltaBoundStillProper) {
  // The speedup transform runs Linial with Δ far above the true maximum
  // degree; the output must stay proper and within the bound's palette.
  Rng rng(229);
  const Graph g = make_path(40);
  const auto ids = random_ids(40, 30, rng);
  RoundLedger ledger;
  const auto result = linial_coloring(g, ids, 10, ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, result.palette).ok);
  EXPECT_EQ(static_cast<std::uint64_t>(result.palette),
            linial_fixed_point_palette(10));
}

TEST(LinialColoring, EdgelessGraphOneRoundMax) {
  const Graph g = Graph::from_edges(5, {});
  Rng rng(233);
  const auto ids = random_ids(5, 30, rng);
  RoundLedger ledger;
  const auto result = linial_coloring(g, ids, 1, ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, result.palette).ok);
}

TEST(LinialColoring, DeterministicGivenIds) {
  Rng rng(239);
  const Graph g = make_complete_tree(120, 5);
  const auto ids = random_ids(120, 35, rng);
  RoundLedger l1, l2;
  const auto a = linial_coloring(g, ids, 5, l1);
  const auto b = linial_coloring(g, ids, 5, l2);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(l1.rounds(), l2.rounds());
}

}  // namespace
}  // namespace ckp
