#include "util/primes.hpp"

#include <gtest/gtest.h>

namespace ckp {
namespace {

TEST(IsPrime, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
}

TEST(IsPrime, AgreesWithSieve) {
  const int limit = 10000;
  std::vector<char> composite(limit, 0);
  for (int p = 2; p * p < limit; ++p) {
    if (composite[p]) continue;
    for (int q = p * p; q < limit; q += p) composite[q] = 1;
  }
  for (int x = 2; x < limit; ++x) {
    EXPECT_EQ(is_prime(static_cast<std::uint64_t>(x)), !composite[x])
        << "x=" << x;
  }
}

TEST(IsPrime, LargeKnownValues) {
  EXPECT_TRUE(is_prime((1ULL << 61) - 1));   // Mersenne prime
  EXPECT_FALSE(is_prime((1ULL << 62) - 1));  // 3 * ...
  EXPECT_TRUE(is_prime(1000000007ULL));
  EXPECT_TRUE(is_prime(1000000000000000003ULL));
  EXPECT_FALSE(is_prime(1000000007ULL * 1000000009ULL % (1ULL << 62)));
}

TEST(IsPrime, CarmichaelNumbers) {
  // Fermat pseudoprimes that must be rejected.
  for (std::uint64_t c : {561ULL, 1105ULL, 1729ULL, 2465ULL, 2821ULL, 6601ULL,
                          8911ULL, 10585ULL, 825265ULL}) {
    EXPECT_FALSE(is_prime(c)) << c;
  }
}

TEST(NextPrime, ExactValues) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(90), 97u);
  EXPECT_EQ(next_prime(97), 97u);
}

class NextPrimeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NextPrimeSweep, IsSmallestPrimeAtLeastN) {
  const std::uint64_t n = GetParam();
  const std::uint64_t p = next_prime(n);
  EXPECT_GE(p, n);
  EXPECT_TRUE(is_prime(p));
  for (std::uint64_t x = n; x < p; ++x) EXPECT_FALSE(is_prime(x));
}

INSTANTIATE_TEST_SUITE_P(Values, NextPrimeSweep,
                         ::testing::Values(10u, 100u, 1000u, 12345u, 65536u,
                                           1000000u, 10000000019ULL));

}  // namespace
}  // namespace ckp
