// Unit tests for the packed configuration keys behind the round-elimination
// kernel (src/core/roundelim_packed.hpp): pack/unpack round trips, the
// order-equivalence guarantee the kernel's sorted flat vectors rely on, and
// the incremental insert/erase/merge/subtract helpers — including the
// pos == 0 edge cases where a shift-by-64 would be undefined behaviour.
#include "core/roundelim_packed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace ckp {
namespace {

using packedcfg::Key;

TEST(PackedCfg, PackUnpackRoundTrip) {
  const std::vector<std::vector<int>> cases = {
      {},      {0},          {63},           {0, 0},
      {0, 63}, {1, 2, 3, 4}, {5, 5, 5, 5, 5}, {0, 1, 2, 3, 4, 5, 6, 7},
  };
  for (const auto& cfg : cases) {
    const Key key = packedcfg::pack(cfg);
    EXPECT_EQ(packedcfg::unpack(key, static_cast<int>(cfg.size())), cfg);
    for (int j = 0; j < static_cast<int>(cfg.size()); ++j) {
      EXPECT_EQ(packedcfg::label_at(key, j), cfg[static_cast<std::size_t>(j)]);
    }
  }
  EXPECT_EQ(packedcfg::pack(std::vector<int>{}), Key{0});
}

TEST(PackedCfg, NumericOrderIsLexOrderAtFixedSize) {
  // The kernel stores same-size keys in sorted vectors and expects the
  // numeric order to enumerate configurations exactly as
  // std::set<std::vector<int>> would. Check exhaustively at size 3 over a
  // small universe.
  std::vector<std::vector<int>> cfgs;
  for (int a = 0; a < 5; ++a)
    for (int b = a; b < 5; ++b)
      for (int c = b; c < 5; ++c) cfgs.push_back({a, b, c});
  for (std::size_t i = 0; i + 1 < cfgs.size(); ++i) {
    for (std::size_t j = i + 1; j < cfgs.size(); ++j) {
      EXPECT_EQ(cfgs[i] < cfgs[j],
                packedcfg::pack(cfgs[i]) < packedcfg::pack(cfgs[j]))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(PackedCfg, InsertKeepsSortedOrder) {
  // insert() at every position, including pos == 0 (new smallest label,
  // where the "keep high bytes" mask must degenerate to zero rather than
  // shift by 64).
  const std::vector<int> base = {2, 4, 4, 6};
  const Key key = packedcfg::pack(base);
  for (int label : {0, 2, 3, 4, 5, 6, 7}) {
    std::vector<int> expect = base;
    expect.insert(std::upper_bound(expect.begin(), expect.end(), label),
                  label);
    EXPECT_EQ(packedcfg::unpack(
                  packedcfg::insert(key, static_cast<int>(base.size()), label),
                  static_cast<int>(expect.size())),
              expect)
        << "label=" << label;
  }
  // Into the empty key.
  EXPECT_EQ(packedcfg::unpack(packedcfg::insert(Key{0}, 0, 7), 1),
            (std::vector<int>{7}));
  // Up to the full 8 slots.
  Key grown = 0;
  for (int j = 0; j < packedcfg::kMaxSlots; ++j) {
    grown = packedcfg::insert(grown, j, packedcfg::kMaxSlots - 1 - j);
  }
  EXPECT_EQ(packedcfg::unpack(grown, packedcfg::kMaxSlots),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(PackedCfg, EraseOneRemovesFirstOccurrence) {
  const std::vector<int> base = {1, 3, 3, 5};
  const Key key = packedcfg::pack(base);
  // Present labels, including pos == 0 (smallest element).
  for (int label : {1, 3, 5}) {
    std::vector<int> expect = base;
    expect.erase(std::find(expect.begin(), expect.end(), label));
    const auto erased =
        packedcfg::erase_one(key, static_cast<int>(base.size()), label);
    ASSERT_TRUE(erased.has_value()) << "label=" << label;
    EXPECT_EQ(packedcfg::unpack(*erased, static_cast<int>(expect.size())),
              expect)
        << "label=" << label;
  }
  // Absent labels: below, between, and above the stored range.
  for (int label : {0, 2, 4, 6}) {
    EXPECT_FALSE(
        packedcfg::erase_one(key, static_cast<int>(base.size()), label)
            .has_value())
        << "label=" << label;
  }
  EXPECT_FALSE(packedcfg::erase_one(Key{0}, 0, 0).has_value());
  // Singleton: erasing the only element yields the empty key.
  const auto single = packedcfg::erase_one(packedcfg::pack({4}), 1, 4);
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(*single, Key{0});
}

TEST(PackedCfg, EraseUndoesInsert) {
  Rng rng(411);
  for (int trial = 0; trial < 200; ++trial) {
    const int size = static_cast<int>(rng.next_below(packedcfg::kMaxSlots));
    std::vector<int> cfg(static_cast<std::size_t>(size));
    for (auto& l : cfg) l = static_cast<int>(rng.next_below(64));
    std::sort(cfg.begin(), cfg.end());
    const Key key = packedcfg::pack(cfg);
    const int label = static_cast<int>(rng.next_below(64));
    const auto back = packedcfg::erase_one(
        packedcfg::insert(key, size, label), size + 1, label);
    ASSERT_TRUE(back.has_value()) << "trial=" << trial;
    EXPECT_EQ(*back, key) << "trial=" << trial;
  }
}

TEST(PackedCfg, MergeIsMultisetUnion) {
  const Key a = packedcfg::pack({1, 4, 4});
  const Key b = packedcfg::pack({0, 4, 7});
  EXPECT_EQ(packedcfg::unpack(packedcfg::merge(a, 3, b, 3), 6),
            (std::vector<int>{0, 1, 4, 4, 4, 7}));
  EXPECT_EQ(packedcfg::merge(a, 3, Key{0}, 0), a);
  EXPECT_EQ(packedcfg::merge(Key{0}, 0, b, 3), b);
}

TEST(PackedCfg, SubtractIsMultisetDifference) {
  const Key big = packedcfg::pack({0, 2, 2, 5});
  const auto diff = packedcfg::subtract(big, 4, packedcfg::pack({2, 5}), 2);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(packedcfg::unpack(*diff, 2), (std::vector<int>{0, 2}));
  // Not a sub-multiset: multiplicity too high, or a label big lacks.
  EXPECT_FALSE(
      packedcfg::subtract(big, 4, packedcfg::pack({2, 2, 2}), 3).has_value());
  EXPECT_FALSE(packedcfg::subtract(big, 4, packedcfg::pack({1}), 1)
                   .has_value());
  // Subtracting everything yields the empty key.
  const auto all = packedcfg::subtract(big, 4, big, 4);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(*all, Key{0});
}

TEST(PackedCfg, LabelMaskCollectsDistinctLabels) {
  EXPECT_EQ(packedcfg::label_mask(Key{0}, 0), 0u);
  EXPECT_EQ(packedcfg::label_mask(packedcfg::pack({0, 0, 3}), 3),
            (1ULL << 0) | (1ULL << 3));
  EXPECT_EQ(packedcfg::label_mask(packedcfg::pack({63}), 1), 1ULL << 63);
}

}  // namespace
}  // namespace ckp
