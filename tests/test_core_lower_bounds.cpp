#include "core/lower_bounds.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ckp {
namespace {

TEST(Amplify, SingleStepFormula) {
  const int delta = 3;
  const double p = 1e-9;
  const double lp = amplify_failure_log(std::log(p), delta);
  const double expected =
      std::log(4.0) + std::log(6.0) / 4.0 + std::log(p) / 12.0;
  EXPECT_NEAR(lp, expected, 1e-12);
}

TEST(Amplify, MonotoneInP) {
  // Larger failure in, larger failure out.
  const double a = amplify_failure_log(std::log(1e-30), 3);
  const double b = amplify_failure_log(std::log(1e-10), 3);
  EXPECT_LT(a, b);
}

TEST(Amplify, IterationMatchesRepeatedApplication) {
  double lp = std::log(1e-40);
  const double direct = iterate_amplification_log(lp, 5, 3);
  for (int i = 0; i < 3; ++i) lp = amplify_failure_log(lp, 5);
  EXPECT_NEAR(direct, lp, 1e-12);
}

TEST(CertifiedBound, ZeroWhenFailureAlreadyLarge) {
  // p = 1/Δ² or bigger: no rounds certified.
  EXPECT_EQ(certified_lower_bound(std::log(1.0 / 9.0), 3), 0);
  EXPECT_EQ(certified_lower_bound(std::log(0.5), 3), 0);
}

TEST(CertifiedBound, GrowsWithLogLogInverseP) {
  // Theorem 4 shape: t ~ log_{3(Δ+1)} ln(1/p), so *squaring* ln(1/p)
  // roughly doubles the certified bound.
  const int delta = 3;
  const int t1 = certified_lower_bound(-1e4, delta);   // ln(1/p) = 1e4
  const int t2 = certified_lower_bound(-1e8, delta);   // squared
  const int t3 = certified_lower_bound(-1e16, delta);  // squared again
  EXPECT_GT(t1, 0);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t3, t2);
  EXPECT_NEAR(static_cast<double>(t2), 2.0 * t1, 3.0);
  EXPECT_NEAR(static_cast<double>(t3), 2.0 * t2, 3.0);
}

TEST(CertifiedBound, ShrinksWithDelta) {
  // Larger Δ amplifies more slowly per step *and* has a lower floor: the
  // certified bound at fixed p decreases in Δ (the log_Δ in Theorem 4).
  const double lp = -1e9;
  const int t3 = certified_lower_bound(lp, 3);
  const int t10 = certified_lower_bound(lp, 10);
  const int t50 = certified_lower_bound(lp, 50);
  EXPECT_GT(t3, t10);
  EXPECT_GT(t10, t50);
  EXPECT_GT(t50, 0);
}

TEST(CertifiedBound, TracksClosedForm) {
  // The mechanical recurrence and the paper's closed form agree up to a
  // moderate constant factor across a wide sweep.
  for (int delta : {3, 5, 10, 20}) {
    for (double log_inv_p : {1e3, 1e6, 1e12}) {
      const int certified = certified_lower_bound(-log_inv_p, delta);
      const double closed = thm4_closed_form(log_inv_p, delta);
      EXPECT_GT(certified + 2, closed / 4.0)
          << "delta=" << delta << " log1/p=" << log_inv_p;
      EXPECT_LT(static_cast<double>(certified), 4.0 * closed + 8.0)
          << "delta=" << delta << " log1/p=" << log_inv_p;
    }
  }
}

TEST(ZeroRoundFailure, MatchesOneOverDeltaSquared) {
  Rng rng(1103);
  for (int delta : {3, 4, 6}) {
    const auto inst = make_random_bipartite_regular(64, delta, rng);
    const double measured = measured_zero_round_failure(inst, 4000, 31337);
    const double expected = 1.0 / (static_cast<double>(delta) * delta);
    EXPECT_NEAR(measured, expected, expected * 0.25) << "delta=" << delta;
  }
}

TEST(ZeroRoundFailure, DeterministicGivenSeed) {
  Rng rng(1109);
  const auto inst = make_random_bipartite_regular(32, 3, rng);
  EXPECT_DOUBLE_EQ(measured_zero_round_failure(inst, 100, 7),
                   measured_zero_round_failure(inst, 100, 7));
}

TEST(ClosedForm, RejectsBadArguments) {
  EXPECT_THROW(thm4_closed_form(0.5, 3), CheckFailure);
  EXPECT_THROW(amplify_failure_log(-1.0, 2), CheckFailure);
}

}  // namespace
}  // namespace ckp
