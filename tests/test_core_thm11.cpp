#include "core/delta_coloring_thm11.hpp"

#include <gtest/gtest.h>

#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

struct Thm11Case {
  int delta;
  std::uint64_t seed;
};

class Thm11Sweep : public ::testing::TestWithParam<Thm11Case> {};

TEST_P(Thm11Sweep, ProperDeltaColoringOnTrees) {
  const auto [delta, seed] = GetParam();
  Rng rng(mix_seed(seed, static_cast<std::uint64_t>(delta)));
  for (NodeId n : {1, 2, 50, 500, 2000}) {
    const Graph g = make_random_tree(n, delta, rng);
    RoundLedger ledger;
    const auto result = delta_coloring_thm11(g, delta, seed, ledger);
    EXPECT_TRUE(verify_coloring(g, result.colors, delta).ok)
        << "n=" << n << " delta=" << delta << " seed=" << seed;
    EXPECT_EQ(result.rounds, ledger.rounds());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Thm11Sweep,
                         ::testing::Values(Thm11Case{7, 1}, Thm11Case{16, 1},
                                           Thm11Case{55, 1}, Thm11Case{55, 2},
                                           Thm11Case{64, 3}));

TEST(Thm11, CompleteTreeWorstCase) {
  const int delta = 55;
  const Graph g = make_complete_tree(20000, delta);
  RoundLedger ledger;
  const auto result = delta_coloring_thm11(g, delta, 7, ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, delta).ok);
}

TEST(Thm11, DeltaAboveTrueMaxDegree) {
  // Running with palette Δ > Δ(G) is allowed (more slack).
  Rng rng(701);
  const Graph g = make_random_tree(300, 5, rng);
  RoundLedger ledger;
  const auto result = delta_coloring_thm11(g, 9, 3, ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, 9).ok);
}

TEST(Thm11, RejectsBadParameters) {
  const Graph g = make_star(9);  // Δ = 8
  RoundLedger ledger;
  EXPECT_THROW(delta_coloring_thm11(g, 6, 1, ledger), CheckFailure);
  EXPECT_THROW(delta_coloring_thm11(g, 7, 1, ledger), CheckFailure);  // < Δ(G)
}

TEST(Thm11, PhaseTelemetryConsistent) {
  Rng rng(703);
  const Graph g = make_random_tree(4000, 16, rng);
  RoundLedger ledger;
  const auto result = delta_coloring_thm11(g, 16, 5, ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, 16).ok);
  // Trace phases sum to the reported rounds.
  EXPECT_EQ(result.trace.total_rounds(), result.rounds);
  // The phase-2 set is a subset of the original vertices and components
  // cannot exceed it.
  EXPECT_LE(result.phase2_largest_component, result.phase2_set_size);
  EXPECT_LE(result.phase2_set_size + result.phase3_set_size, g.num_nodes());
}

TEST(Thm11, ShatteringSmallComponentsAtDelta55) {
  // The paper's headline regime: Δ >= 55 implies O(log n) components in S
  // w.h.p. Check a generous multiple.
  Rng rng(709);
  const Graph g = make_random_tree(30000, 55, rng);
  RoundLedger ledger;
  const auto result = delta_coloring_thm11(g, 55, 17, ledger);
  EXPECT_TRUE(verify_coloring(g, result.colors, 55).ok);
  EXPECT_LE(result.phase2_largest_component, 60);  // ~4 log2(30000)
}

TEST(Thm11, RoundsFlatInN) {
  // O(log_Δ log n + log* n): growing n by 64x at Δ=16 adds only a few
  // rounds.
  Rng rng(719);
  const Graph small = make_random_tree(1000, 16, rng);
  const Graph large = make_random_tree(64000, 16, rng);
  RoundLedger ls, ll;
  const auto rs = delta_coloring_thm11(small, 16, 23, ls);
  const auto rl = delta_coloring_thm11(large, 16, 23, ll);
  EXPECT_TRUE(verify_coloring(small, rs.colors, 16).ok);
  EXPECT_TRUE(verify_coloring(large, rl.colors, 16).ok);
  EXPECT_LE(rl.rounds, rs.rounds + rs.rounds / 2 + 20);
}

TEST(Thm11, DeterministicGivenSeed) {
  Rng rng(727);
  const Graph g = make_random_tree(800, 12, rng);
  RoundLedger l1, l2;
  const auto a = delta_coloring_thm11(g, 12, 31, l1);
  const auto b = delta_coloring_thm11(g, 12, 31, l2);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Thm11, ManySeedsNeverFail) {
  // Correctness is seed-independent (only round counts vary): exercise many
  // seeds on a moderately large tree.
  Rng rng(733);
  const Graph g = make_random_tree(1500, 20, rng);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    RoundLedger ledger;
    const auto result = delta_coloring_thm11(g, 20, seed, ledger);
    EXPECT_TRUE(verify_coloring(g, result.colors, 20).ok) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace ckp
