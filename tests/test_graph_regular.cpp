#include "graph/regular.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/components.hpp"
#include "graph/girth.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

class RandomRegular : public ::testing::TestWithParam<std::pair<NodeId, int>> {};

TEST_P(RandomRegular, IsSimpleAndRegular) {
  const auto [n, d] = GetParam();
  Rng rng(mix_seed(71, static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(d)));
  const Graph g = make_random_regular(n, d, rng);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_TRUE(g.is_regular(d));
  EXPECT_EQ(g.num_edges(), static_cast<EdgeId>(static_cast<std::int64_t>(n) * d / 2));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomRegular,
    ::testing::Values(std::pair<NodeId, int>{10, 3},
                      std::pair<NodeId, int>{50, 3},
                      std::pair<NodeId, int>{64, 4},
                      std::pair<NodeId, int>{100, 5},
                      std::pair<NodeId, int>{128, 8},
                      std::pair<NodeId, int>{41, 6}));

TEST(RandomRegular, RejectsOddProduct) {
  Rng rng(73);
  EXPECT_THROW(make_random_regular(7, 3, rng), CheckFailure);
}

class BipartiteRegular
    : public ::testing::TestWithParam<std::pair<NodeId, int>> {};

TEST_P(BipartiteRegular, RegularBipartiteProperlyColored) {
  const auto [side, d] = GetParam();
  Rng rng(mix_seed(79, static_cast<std::uint64_t>(side), static_cast<std::uint64_t>(d)));
  const auto inst = make_random_bipartite_regular(side, d, rng);
  EXPECT_EQ(inst.graph.num_nodes(), 2 * side);
  EXPECT_TRUE(inst.graph.is_regular(d));
  EXPECT_EQ(inst.num_colors, d);
  EXPECT_TRUE(is_proper_edge_coloring(inst.graph, inst.edge_color, d));
  // Bipartite: no edge within a side.
  for (EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
    const auto [u, v] = inst.graph.endpoints(e);
    EXPECT_NE(u < side, v < side);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BipartiteRegular,
    ::testing::Values(std::pair<NodeId, int>{8, 3},
                      std::pair<NodeId, int>{32, 3},
                      std::pair<NodeId, int>{64, 4},
                      std::pair<NodeId, int>{100, 6},
                      std::pair<NodeId, int>{200, 8}));

TEST(BipartiteRegular, EvenGirthAtLeastFour) {
  Rng rng(83);
  const auto inst = make_random_bipartite_regular(128, 3, rng);
  const int g = girth(inst.graph);
  EXPECT_GE(g, 4);
  EXPECT_EQ(g % 2, 0);  // bipartite graphs have even girth
}

TEST(BipartiteRegular, ShortCyclesAreRare) {
  // Substitution check (DESIGN.md): in a random Δ-regular bipartite graph
  // the expected number of 4-cycles is Θ(1) independent of n, so the local
  // girth around almost every vertex is >= 6 (and grows with n). Sample
  // vertices and check the overwhelming majority see no 4-cycle.
  Rng rng(89);
  const auto inst = make_random_bipartite_regular(1024, 3, rng);
  int long_girth = 0;
  const int samples = 64;
  for (int s = 0; s < samples; ++s) {
    const auto v = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(inst.graph.num_nodes())));
    if (shortest_cycle_through(inst.graph, v) >= 6) ++long_girth;
  }
  EXPECT_GE(long_girth, samples * 8 / 10);
}

TEST(Moebius, ThreeRegular) {
  const Graph g = make_moebius_ladder(8);
  EXPECT_EQ(g.num_nodes(), 16);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_TRUE(connected_components(g).count == 1);
}

TEST(ProperEdgeColoring, DetectsViolations) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(is_proper_edge_coloring(g, {0, 1}, 2));
  EXPECT_FALSE(is_proper_edge_coloring(g, {0, 0}, 2));   // meet at node 1
  EXPECT_FALSE(is_proper_edge_coloring(g, {0, 2}, 2));   // out of range
  EXPECT_FALSE(is_proper_edge_coloring(g, {0}, 2));      // wrong size
}

// ---------------------------------------------------------------------------
// Streaming generator (make_random_bipartite_regular_streamed): writes the
// union-of-matchings directly into the final CSR, sharded. Must produce the
// same family of instances as the vector-based generator and be a pure
// function of (side, d, seed) — independent of shard size and thread count.

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "adjacency differs at node " << v;
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.endpoints(e), b.endpoints(e)) << "edge " << e;
  }
}

class StreamedBipartite
    : public ::testing::TestWithParam<std::pair<NodeId, int>> {};

TEST_P(StreamedBipartite, RegularBipartiteProperlyColored) {
  const auto [side, d] = GetParam();
  Rng rng(mix_seed(97, static_cast<std::uint64_t>(side),
                   static_cast<std::uint64_t>(d)));
  const auto inst = make_random_bipartite_regular_streamed(side, d, rng, 16);
  EXPECT_EQ(inst.graph.num_nodes(), 2 * side);
  EXPECT_TRUE(inst.graph.is_regular(d));
  EXPECT_EQ(inst.num_colors, d);
  EXPECT_TRUE(is_proper_edge_coloring(inst.graph, inst.edge_color, d));
  for (EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
    const auto [u, v] = inst.graph.endpoints(e);
    EXPECT_NE(u < side, v < side);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, StreamedBipartite,
    ::testing::Values(std::pair<NodeId, int>{2, 2},
                      std::pair<NodeId, int>{8, 3},
                      std::pair<NodeId, int>{33, 3},
                      std::pair<NodeId, int>{64, 4},
                      std::pair<NodeId, int>{100, 6},
                      std::pair<NodeId, int>{64, 16}));

TEST(StreamedBipartite, ShardSizeInvariant) {
  // The shard size only blocks the (RNG-free) finalize and sort passes; the
  // instance must be bit-identical for any value, including shards that
  // don't divide n and a single shard covering everything.
  const auto base = [] {
    Rng rng(0x5EED);
    return make_random_bipartite_regular_streamed(50, 4, rng, 1);
  }();
  for (const NodeId shard : {2, 7, 50, 64, 1 << 20}) {
    Rng rng(0x5EED);
    const auto inst = make_random_bipartite_regular_streamed(50, 4, rng, shard);
    expect_same_graph(inst.graph, base.graph);
    EXPECT_EQ(inst.edge_color, base.edge_color) << "shard_nodes=" << shard;
  }
}

TEST(StreamedBipartite, ThreadCountInvariant) {
  const auto base = [] {
    Rng rng(0xBEE);
    return make_random_bipartite_regular_streamed(64, 5, rng, 8, 1);
  }();
  for (const int threads : {2, 8}) {
    Rng rng(0xBEE);
    const auto inst =
        make_random_bipartite_regular_streamed(64, 5, rng, 8, threads);
    expect_same_graph(inst.graph, base.graph);
    EXPECT_EQ(inst.edge_color, base.edge_color) << "threads=" << threads;
  }
}

TEST(StreamedBipartite, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(make_random_bipartite_regular_streamed(0, 2, rng, 8),
               CheckFailure);
  EXPECT_THROW(make_random_bipartite_regular_streamed(8, 0, rng, 8),
               CheckFailure);
  EXPECT_THROW(make_random_bipartite_regular_streamed(8, 9, rng, 8),
               CheckFailure);  // d > side forces a multi-edge
  EXPECT_THROW(make_random_bipartite_regular_streamed(8, 3, rng, 0),
               CheckFailure);
}

TEST(FromRegularCsr, RejectsMalformedInput) {
  // A valid hand-built 1-regular instance on 2 nodes: one edge {0,1}.
  const auto ok = Graph::from_regular_csr(2, 1, {1, 0}, {0, 0}, {{0, 1}});
  EXPECT_EQ(ok.num_edges(), 1);
  EXPECT_TRUE(ok.is_regular(1));
  // Self-loop.
  EXPECT_THROW(Graph::from_regular_csr(2, 1, {0, 1}, {0, 0}, {{0, 1}}),
               CheckFailure);
  // Endpoint record disagrees with the adjacency.
  EXPECT_THROW(Graph::from_regular_csr(2, 1, {1, 0}, {0, 0}, {{0, 0}}),
               CheckFailure);
  // An edge id borrowed by an unrelated slot (edge 0 claimed by node 2).
  EXPECT_THROW(
      Graph::from_regular_csr(4, 1, {1, 0, 3, 2}, {0, 0, 0, 1}, {{0, 1}, {2, 3}}),
      CheckFailure);
}

}  // namespace
}  // namespace ckp
