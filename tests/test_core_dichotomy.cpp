#include "core/dichotomy.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

TEST(IsCycle, Detection) {
  EXPECT_TRUE(is_cycle(make_cycle(5)));
  EXPECT_TRUE(is_cycle(make_cycle(100)));
  EXPECT_FALSE(is_cycle(make_path(5)));
  EXPECT_FALSE(is_cycle(make_complete(4)));
  // Two disjoint cycles: 2-regular but disconnected.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < 4; ++i) edges.emplace_back(i, (i + 1) % 4);
  for (NodeId i = 0; i < 4; ++i) edges.emplace_back(4 + i, 4 + (i + 1) % 4);
  EXPECT_FALSE(is_cycle(Graph::from_edges(8, edges)));
}

class TwoColorEvenCycles : public ::testing::TestWithParam<NodeId> {};

TEST_P(TwoColorEvenCycles, ProperAndLinearRounds) {
  const NodeId n = GetParam();
  const Graph g = make_cycle(n);
  Rng rng(1601);
  const auto ids = random_ids(n, 32, rng);
  RoundLedger ledger;
  const auto r = two_color_cycle(g, ids, ledger);
  EXPECT_TRUE(verify_coloring(g, r.colors, 2).ok);
  EXPECT_EQ(r.rounds, static_cast<int>((n + 1) / 2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TwoColorEvenCycles,
                         ::testing::Values(4, 10, 64, 1000));

TEST(TwoColorCycle, RejectsOddAndNonCycle) {
  Rng rng(1603);
  RoundLedger ledger;
  EXPECT_THROW(two_color_cycle(make_cycle(7), random_ids(7, 16, rng), ledger),
               CheckFailure);
  EXPECT_THROW(two_color_cycle(make_path(6), random_ids(6, 16, rng), ledger),
               CheckFailure);
}

class ThreeColorCycles : public ::testing::TestWithParam<NodeId> {};

TEST_P(ThreeColorCycles, ProperAndLogStarRounds) {
  const NodeId n = GetParam();
  const Graph g = make_cycle(n);
  Rng rng(1607);
  const auto ids = random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n) + 2), rng);
  RoundLedger ledger;
  const auto r = three_color_cycle(g, ids, ledger);
  EXPECT_TRUE(verify_coloring(g, r.colors, 3).ok);
  // O(log* n) plus the constant-palette elimination: far below n.
  EXPECT_LE(r.rounds, 60);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThreeColorCycles,
                         ::testing::Values(5, 16, 101, 4096, 100000));

TEST(Dichotomy, GapVisibleOnOneInstance) {
  // The Theorem 7 gap: on the same cycle, 2-coloring costs Θ(n) while
  // 3-coloring costs O(log* n).
  const NodeId n = 2048;
  const Graph g = make_cycle(n);
  Rng rng(1609);
  const auto ids = random_ids(n, 24, rng);
  RoundLedger l2, l3;
  two_color_cycle(g, ids, l2);
  three_color_cycle(g, ids, l3);
  EXPECT_GT(l2.rounds(), 20 * l3.rounds());
}

}  // namespace
}  // namespace ckp
