#include "algo/ruling_set.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/regular.hpp"
#include "lcl/verify_ruling_set.hpp"
#include "local/ids.hpp"
#include "test_helpers.hpp"

namespace ckp {
namespace {

struct RsCase {
  int beta;
  int scheme;  // 0 sequential ids, 1 random ids
};

class RulingSetSweep : public ::testing::TestWithParam<RsCase> {};

TEST_P(RulingSetSweep, DeterministicValidOnZoo) {
  const auto [beta, scheme] = GetParam();
  Rng rng(1301 + static_cast<std::uint64_t>(scheme));
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    const auto ids = scheme == 0 ? sequential_ids(g.num_nodes())
                                 : random_ids(g.num_nodes(), 32, rng);
    RoundLedger ledger;
    const auto r = ruling_set_deterministic(g, beta, ids, ledger);
    EXPECT_TRUE(verify_ruling_set(g, r.in_set, beta + 1, beta).ok)
        << name << " beta=" << beta;
    EXPECT_EQ(r.rounds, ledger.rounds());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RulingSetSweep,
                         ::testing::Values(RsCase{1, 0}, RsCase{2, 0},
                                           RsCase{3, 1}, RsCase{2, 1}));

TEST(RulingSet, BetaOneIsMis) {
  const Graph g = make_cycle(12);
  RoundLedger ledger;
  const auto r = ruling_set_deterministic(g, 1, sequential_ids(12), ledger);
  EXPECT_TRUE(verify_ruling_set(g, r.in_set, 2, 1).ok);
}

TEST(RulingSet, RandomizedValid) {
  Rng rng(1303);
  const Graph g = make_random_regular(400, 4, rng);
  for (int beta : {1, 2, 3}) {
    RoundLedger ledger;
    const auto r = ruling_set_randomized(g, beta, 11, ledger);
    ASSERT_TRUE(r.completed) << beta;
    EXPECT_TRUE(verify_ruling_set(g, r.in_set, beta + 1, beta).ok) << beta;
  }
}

TEST(RulingSet, LargerBetaSparser) {
  Rng rng(1307);
  const Graph g = make_random_regular(600, 4, rng);
  RoundLedger l1, l3;
  const auto r1 = ruling_set_deterministic(g, 1, sequential_ids(600), l1);
  const auto r3 = ruling_set_deterministic(g, 3, sequential_ids(600), l3);
  int c1 = 0, c3 = 0;
  for (char b : r1.in_set) c1 += b;
  for (char b : r3.in_set) c3 += b;
  EXPECT_GT(c1, c3);
  // Power-graph degree grows with beta.
  EXPECT_GT(r3.power_delta, r1.power_delta);
}

TEST(RulingSet, RoundsChargedWithBetaFactor) {
  // The β multiplier must show in the ledger: same instance, higher β, more
  // rounds per power-graph step.
  const Graph g = make_cycle(64);
  RoundLedger l1, l2;
  ruling_set_deterministic(g, 1, sequential_ids(64), l1);
  ruling_set_deterministic(g, 2, sequential_ids(64), l2);
  EXPECT_GT(l2.rounds(), l1.rounds());
}

}  // namespace
}  // namespace ckp
