// The job-server stack: registry adapters, execution budgets at the round
// barrier, the memo key discipline, and the JobServer protocol.
//
// The heavyweight claims under test:
//
//   * a budget that never triggers leaves results bit-identical to an
//     un-budgeted run, on both engine paths;
//   * a budget stop lands on a round barrier — the partial state equals a
//     full run capped at exactly that round, never a torn hybrid;
//   * memo keys include algorithm version and force_generic but exclude
//     threads/scheduler/SIMD, and a memo hit re-emits the original
//     RunRecord byte-identically;
//   * a cancelled job terminates with cancelled=true and is never memoized.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <unistd.h>
#include <string>
#include <vector>

#include "local/budget.hpp"
#include "obs/run_record.hpp"
#include "serve/memo.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "store/artifact_store.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace ckp {
namespace {

// Injectable steady clock shared by the deadline tests.
std::atomic<std::int64_t> g_fake_ms{0};
SteadyTime fake_now() {
  return SteadyTime{} + std::chrono::milliseconds(g_fake_ms.load());
}

// Process-unique scratch directory: runs under different binaries (plain,
// ASan, TSan) must not see each other's memo artifacts.
std::string temp_dir(const std::string& tag) {
  static std::atomic<int> counter{0};
  std::string dir = ::testing::TempDir() + "ckp_serve_" +
                    std::to_string(::getpid()) + "_" + tag + "_" +
                    std::to_string(counter.fetch_add(1));
  return dir;
}

// --------------------------------------------------------------------------
// Registry

TEST(ServeRegistry, RosterRoundTripsAndRejectsUnknown) {
  for (const std::string& name : algorithm_roster()) {
    const auto algo = make_algorithm(name);
    EXPECT_EQ(algo->name(), name);
    EXPECT_GE(algo->version(), 1);
  }
  EXPECT_THROW(make_algorithm("lubby"), CheckFailure);
  EXPECT_THROW(make_algorithm(""), CheckFailure);
}

TEST(ServeRegistry, BuildGraphFamilies) {
  {
    GraphSpec spec{"cycle", 64, 0, 0};
    const BuiltGraph g = build_graph(spec);
    EXPECT_EQ(g.graph.num_nodes(), 64);
    EXPECT_TRUE(g.edge_labels.empty());
  }
  {
    GraphSpec spec{"bipartite_regular", 200, 3, 7};
    const BuiltGraph g = build_graph(spec);
    EXPECT_EQ(g.graph.num_nodes(), 200);
    EXPECT_EQ(g.edge_labels.size(),
              static_cast<std::size_t>(g.graph.num_edges()));
    EXPECT_EQ(g.num_labels, 3);
  }
  {
    // Same spec builds bit-identical topology.
    GraphSpec spec{"random_regular", 100, 4, 11};
    const BuiltGraph a = build_graph(spec);
    const BuiltGraph b = build_graph(spec);
    ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
    for (NodeId v = 0; v < a.graph.num_nodes(); ++v) {
      const auto na = a.graph.neighbors(v);
      const auto nb = b.graph.neighbors(v);
      ASSERT_EQ(std::vector<NodeId>(na.begin(), na.end()),
                std::vector<NodeId>(nb.begin(), nb.end()));
    }
  }
  EXPECT_THROW(build_graph(GraphSpec{"moebius", 10, 0, 0}), CheckFailure);
  EXPECT_THROW(build_graph(GraphSpec{"cycle", 0, 0, 0}), CheckFailure);
  EXPECT_THROW(build_graph(GraphSpec{"cycle", 10, 5, 0}), CheckFailure);
  EXPECT_THROW(build_graph(GraphSpec{"bipartite_regular", 201, 3, 0}),
               CheckFailure);
}

TEST(ServeRegistry, AdaptersRunAndVerify) {
  const GraphSpec spec{"random_regular", 128, 4, 3};
  const BuiltGraph built = build_graph(spec);
  for (const std::string name :
       {"luby", "ghaffari", "matching_rand", "matching_det", "plus_one",
        "greedy"}) {
    const auto algo = make_algorithm(name);
    const LocalInput input = prepare_input(*algo, built, 5);
    EXPECT_EQ(input.has_ids(), !algo->randomized()) << name;
    const AlgoRun run = algo->run(input, 1 << 16, EngineOptions{}, {});
    EXPECT_TRUE(run.completed) << name;
    EXPECT_TRUE(run.verified) << name;
    EXPECT_GT(run.rounds, 0) << name;
    EXPECT_NE(run.output_digest, 0u) << name;
  }
}

TEST(ServeRegistry, SinklessNeedsEdgeLabels) {
  const auto algo = make_algorithm("sinkless");
  const BuiltGraph plain = build_graph(GraphSpec{"cycle", 32, 0, 0});
  EXPECT_THROW(prepare_input(*algo, plain, 1), CheckFailure);
  const BuiltGraph colored =
      build_graph(GraphSpec{"bipartite_regular", 64, 3, 1});
  const LocalInput input = prepare_input(*algo, colored, 1);
  EXPECT_FALSE(input.edge_labels.empty());
}

TEST(ServeRegistry, UnknownParamRejected) {
  const BuiltGraph built = build_graph(GraphSpec{"cycle", 32, 0, 0});
  const auto algo = make_algorithm("luby");
  const LocalInput input = prepare_input(*algo, built, 1);
  KV params;
  params["pallete"] = "4";
  EXPECT_THROW(algo->run(input, 100, EngineOptions{}, params), CheckFailure);
}

TEST(ServeRegistry, SpinNeverCompletes) {
  const BuiltGraph built = build_graph(GraphSpec{"cycle", 64, 0, 0});
  const auto algo = make_algorithm("spin");
  const LocalInput input = prepare_input(*algo, built, 1);
  const AlgoRun run = algo->run(input, 25, EngineOptions{}, {});
  EXPECT_EQ(run.rounds, 25);
  EXPECT_FALSE(run.completed);
  EXPECT_FALSE(run.verified);
}

// --------------------------------------------------------------------------
// Budgets in the engine

TEST(ServeBudget, ChargePriorityAndStopLatching) {
  RunBudget budget;
  EXPECT_EQ(budget.charge(10), BudgetStop::kNone);
  EXPECT_FALSE(budget.stopped());

  budget.step_limit = 15;
  budget.request_cancel();
  // Cancel outranks the step limit even though both fired.
  EXPECT_EQ(budget.charge(10), BudgetStop::kCancelled);
  EXPECT_EQ(budget.stop_reason(), BudgetStop::kCancelled);
  EXPECT_STREQ(budget_stop_name(budget.stop_reason()), "cancelled");
}

TEST(ServeBudget, DeadlineUsesInjectedSteadyTime) {
  g_fake_ms = 1000;
  RunBudget budget;
  budget.now = &fake_now;
  budget.deadline = fake_now() + std::chrono::milliseconds(500);
  EXPECT_EQ(budget.charge(0), BudgetStop::kNone);
  g_fake_ms = 1499;
  EXPECT_EQ(budget.charge(0), BudgetStop::kNone);
  g_fake_ms = 1500;
  EXPECT_EQ(budget.charge(0), BudgetStop::kDeadline);
}

// Runs "spin" on a 64-cycle with `opts` and returns (rounds, digest).
std::pair<int, std::uint64_t> run_spin(int max_rounds, EngineOptions opts) {
  const BuiltGraph built = build_graph(GraphSpec{"cycle", 64, 0, 0});
  const auto algo = make_algorithm("spin");
  const LocalInput input = prepare_input(*algo, built, 1);
  const AlgoRun run = algo->run(input, max_rounds, opts, {});
  return {run.rounds, run.output_digest};
}

TEST(ServeBudget, StepLimitStopsAtRoundBarrierUntorn) {
  // Stopping at the barrier means the partial state IS round r's state: a
  // budgeted run stopped after r rounds must match an un-budgeted run
  // capped at exactly r rounds, bit for bit, on both engine paths.
  for (const bool force_generic : {false, true}) {
    EngineOptions opts;
    opts.force_generic = force_generic;
    const auto [full_rounds, full_digest] = run_spin(3, opts);
    ASSERT_EQ(full_rounds, 3);

    RunBudget budget;
    budget.step_limit = 3 * 64;  // spin keeps all 64 nodes active per round
    EngineOptions budgeted = opts;
    budgeted.budget = &budget;
    const auto [rounds, digest] = run_spin(1 << 10, budgeted);
    EXPECT_EQ(rounds, 3) << "generic=" << force_generic;
    EXPECT_EQ(digest, full_digest) << "generic=" << force_generic;
    EXPECT_EQ(budget.stop_reason(), BudgetStop::kStepLimit);
    EXPECT_EQ(budget.steps.load(), 3u * 64u);
  }
}

TEST(ServeBudget, PreTrippedBudgetRunsZeroRounds) {
  for (const bool force_generic : {false, true}) {
    RunBudget budget;
    budget.request_cancel();
    EngineOptions opts;
    opts.force_generic = force_generic;
    opts.budget = &budget;
    const auto [rounds, digest] = run_spin(100, opts);
    (void)digest;
    EXPECT_EQ(rounds, 0);
    EXPECT_EQ(budget.stop_reason(), BudgetStop::kCancelled);
  }
}

TEST(ServeBudget, UntriggeredBudgetIsBitIdentical) {
  const BuiltGraph built = build_graph(GraphSpec{"random_regular", 128, 4, 3});
  const auto algo = make_algorithm("luby");
  const LocalInput input = prepare_input(*algo, built, 7);

  const AlgoRun plain = algo->run(input, 1 << 16, EngineOptions{}, {});
  ASSERT_TRUE(plain.completed);

  RunBudget budget;
  budget.step_limit = ~std::uint64_t{0};
  g_fake_ms = 0;
  budget.now = &fake_now;
  budget.deadline = fake_now() + std::chrono::hours(1);
  EngineOptions opts;
  opts.budget = &budget;
  const AlgoRun budgeted = algo->run(input, 1 << 16, opts, {});
  EXPECT_EQ(budgeted.output_digest, plain.output_digest);
  EXPECT_EQ(budgeted.rounds, plain.rounds);
  EXPECT_EQ(budget.stop_reason(), BudgetStop::kNone);
}

// --------------------------------------------------------------------------
// Memo keys

MemoFacts base_facts() {
  MemoFacts facts;
  facts.algorithm = "luby";
  facts.algo_version = 1;
  facts.graph = GraphSpec{"cycle", 64, 0, 0};
  facts.seed = 7;
  facts.max_rounds = 1 << 16;
  facts.force_generic = false;
  return facts;
}

TEST(ServeMemo, KeyCoversSemanticFactsOnly) {
  const MemoFacts base = base_facts();
  const std::string key = memo_key(base);
  EXPECT_EQ(memo_key(base_facts()), key);  // deterministic

  // Version bump invalidates: changed output for the same inputs must not
  // serve stale cache entries.
  MemoFacts bumped = base_facts();
  bumped.algo_version = 2;
  EXPECT_NE(memo_key(bumped), key);

  // force_generic is a keyed fact: the paths are differentially tested to
  // agree, but the memo must not *assume* the theorem it is tested by.
  MemoFacts generic = base_facts();
  generic.force_generic = true;
  EXPECT_NE(memo_key(generic), key);

  for (auto mutate : {+[](MemoFacts& f) { f.seed = 8; },
                      +[](MemoFacts& f) { f.max_rounds = 100; },
                      +[](MemoFacts& f) { f.graph.n = 65; },
                      +[](MemoFacts& f) { f.graph.seed = 1; },
                      +[](MemoFacts& f) { f.params["palette"] = "4"; },
                      +[](MemoFacts& f) { f.algorithm = "greedy"; }}) {
    MemoFacts changed = base_facts();
    mutate(changed);
    EXPECT_NE(memo_key(changed), key) << changed.canonical();
  }

  // The canonical string spells out every keyed fact — and no execution
  // knobs (threads/scheduler/SIMD are absent by construction: canonical()
  // is total over MemoFacts, which has no such fields).
  const std::string canon = base.canonical();
  EXPECT_NE(canon.find("algo=luby"), std::string::npos);
  EXPECT_NE(canon.find("ver=1"), std::string::npos);
  EXPECT_NE(canon.find("force_generic=0"), std::string::npos);
  EXPECT_EQ(canon.find("thread"), std::string::npos);
  EXPECT_EQ(canon.find("simd"), std::string::npos);
}

TEST(ServeMemo, RoundTripAndCorruptionIsMiss) {
  const ArtifactStore store(temp_dir("memo"));
  const ResultMemo memo(&store);
  const MemoFacts facts = base_facts();
  EXPECT_FALSE(memo.lookup(facts).has_value());

  const std::string record = "{\"bench\":\"serve\",\"rounds\":5}";
  memo.insert(facts, record);
  const auto hit = memo.lookup(facts);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, record);  // byte-identical

  // Flip a payload byte on disk: the frame checksum fails and the entry
  // degrades to a miss instead of serving corrupt bytes.
  const std::string path = store.path_for(memo_key(facts));
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -1, SEEK_END);
  std::fputc('X', f);
  std::fclose(f);
  EXPECT_FALSE(memo.lookup(facts).has_value());
}

// --------------------------------------------------------------------------
// JobServer end to end (in process)

struct LineLog {
  std::mutex mu;
  std::vector<std::string> lines;

  JobServer::Sink sink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu);
      lines.push_back(line);
    };
  }

  // Responses mentioning `id`, parsed.
  std::vector<JsonValue> responses_for(const std::string& id) {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<JsonValue> out;
    for (const std::string& line : lines) {
      const JsonValue doc = json_parse(line);
      const JsonValue* jid = doc.find("id");
      if (jid != nullptr && jid->string == id) out.push_back(doc);
    }
    return out;
  }

  // The terminal (done/error) response for `id`; fails the test if absent.
  JsonValue terminal_for(const std::string& id) {
    for (const JsonValue& doc : responses_for(id)) {
      if (doc.find("done") != nullptr || doc.find("error") != nullptr) {
        return doc;
      }
    }
    ADD_FAILURE() << "no terminal response for " << id;
    return JsonValue{};
  }
};

std::string run_job_line(const std::string& id, const std::string& algo,
                         const std::string& extra = "") {
  return "{\"op\":\"run\",\"id\":\"" + id + "\",\"algo\":\"" + algo +
         "\",\"graph\":{\"family\":\"cycle\",\"n\":512},\"seed\":7" + extra +
         "}";
}

TEST(ServeServer, MixedBatchCompletesOnSharedPool) {
  LineLog log;
  ServerOptions options;
  options.workers = 3;
  options.store_dir = temp_dir("batch");
  JobServer server(options, log.sink());

  EXPECT_TRUE(server.handle_line(run_job_line("j1", "luby")));
  EXPECT_TRUE(server.handle_line(run_job_line("j2", "matching_rand")));
  EXPECT_TRUE(server.handle_line(run_job_line("j3", "plus_one")));
  server.drain();

  for (const std::string id : {"j1", "j2", "j3"}) {
    const JsonValue done = log.terminal_for(id);
    ASSERT_NE(done.find("done"), nullptr) << id;
    EXPECT_EQ(done.at("memo").as_string(), "miss") << id;
    EXPECT_FALSE(done.at("cancelled").boolean) << id;
    EXPECT_TRUE(done.at("record").at("verified").boolean) << id;
  }
  EXPECT_EQ(server.counter("serve.jobs_admitted"), 3.0);
  EXPECT_EQ(server.counter("serve.jobs_completed"), 3.0);
  EXPECT_EQ(server.counter("serve.memo_stores"), 3.0);
  EXPECT_GT(server.counter("serve.engine_rounds_total"), 0.0);
}

TEST(ServeServer, MemoHitReplaysRecordByteIdenticallyWithZeroRounds) {
  const std::string store_dir = temp_dir("replay");
  std::string first_record;
  {
    LineLog log;
    ServerOptions options;
    options.workers = 2;
    options.store_dir = store_dir;
    JobServer server(options, log.sink());
    server.handle_line(run_job_line("a", "luby"));
    server.drain();
    const JsonValue done = log.terminal_for("a");
    ASSERT_NE(done.find("done"), nullptr);
    // Recover the raw record bytes from the response line.
    std::lock_guard<std::mutex> lock(log.mu);
    for (const std::string& line : log.lines) {
      const auto pos = line.find("\"record\":");
      if (pos != std::string::npos && line.find("\"a\"") != std::string::npos) {
        first_record = line.substr(pos + 9, line.size() - pos - 9 - 1);
      }
    }
    ASSERT_FALSE(first_record.empty());
  }
  {
    // Fresh server, same store: the resubmission must be served entirely
    // from the memo — zero engine rounds — and re-emit the same bytes.
    LineLog log;
    ServerOptions options;
    options.workers = 2;
    options.store_dir = store_dir;
    JobServer server(options, log.sink());
    server.handle_line(run_job_line("a", "luby"));
    server.drain();
    const JsonValue done = log.terminal_for("a");
    EXPECT_EQ(done.at("memo").as_string(), "hit");
    EXPECT_EQ(server.counter("serve.engine_rounds_total"), 0.0);
    EXPECT_EQ(server.counter("serve.jobs_admitted"), 0.0);
    std::string second_record;
    {
      std::lock_guard<std::mutex> lock(log.mu);
      for (const std::string& line : log.lines) {
        const auto pos = line.find("\"record\":");
        if (pos != std::string::npos) {
          second_record = line.substr(pos + 9, line.size() - pos - 9 - 1);
        }
      }
    }
    EXPECT_EQ(second_record, first_record);
  }
}

TEST(ServeServer, MemoMissOnForceGenericAndNoMemoOptOut) {
  const std::string store_dir = temp_dir("keyed");
  ServerOptions options;
  options.workers = 1;
  options.store_dir = store_dir;
  {
    LineLog log;
    JobServer server(options, log.sink());
    server.handle_line(run_job_line("a", "luby"));
    server.drain();
  }
  {
    LineLog log;
    JobServer server(options, log.sink());
    // Same semantics except force_generic: a distinct key, so a miss — the
    // engine paths are differentially tested elsewhere; the memo does not
    // assume their agreement.
    server.handle_line(run_job_line("b", "luby", ",\"force_generic\":true"));
    server.drain();
    EXPECT_EQ(log.terminal_for("b").at("memo").as_string(), "miss");
    // And the two runs DID produce identical outputs (the differential
    // fact itself, observed through the digest metrics).
    const JsonValue rec = log.terminal_for("b").at("record");
    EXPECT_TRUE(rec.at("verified").boolean);
  }
  {
    LineLog log;
    JobServer server(options, log.sink());
    // no_memo opts out of lookup AND insert.
    server.handle_line(run_job_line("c", "luby", ",\"no_memo\":true"));
    server.drain();
    EXPECT_EQ(log.terminal_for("c").at("memo").as_string(), "off");
    EXPECT_EQ(server.counter("serve.memo_hits"), 0.0);
  }
}

TEST(ServeServer, CancelMidRunFlagsRecordAndSkipsMemo) {
  const std::string store_dir = temp_dir("cancel");
  LineLog log;
  ServerOptions options;
  options.workers = 1;
  options.store_dir = store_dir;
  JobServer server(options, log.sink());

  // spin never halts: without the cancel this job would run the full
  // 1<<20 rounds (~minutes). The cancel lands either while queued (0
  // rounds) or mid-run (stop at the next round barrier); both must yield
  // cancelled=true, an uncorrupted partial record, and no memo entry.
  server.handle_line(run_job_line("s", "spin", ",\"max_rounds\":1048576"));
  server.handle_line("{\"op\":\"cancel\",\"id\":\"s\"}");
  server.drain();

  const JsonValue done = log.terminal_for("s");
  ASSERT_NE(done.find("done"), nullptr);
  EXPECT_TRUE(done.at("cancelled").boolean);
  EXPECT_EQ(done.at("stop").as_string(), "cancelled");
  const JsonValue& rec = done.at("record");
  EXPECT_EQ(rec.at("metrics").at("cancelled").as_number(), 1.0);
  EXPECT_EQ(rec.at("metrics").at("completed").as_number(), 0.0);
  EXPECT_LT(rec.at("rounds").as_number(), 1048576.0);
  EXPECT_EQ(server.counter("serve.jobs_cancelled"), 1.0);
  EXPECT_EQ(server.counter("serve.memo_stores"), 0.0);
  EXPECT_EQ(server.counter("serve.cancels_delivered"), 1.0);
}

TEST(ServeServer, DeadlineExceededJobIsCancelledAtBarrier) {
  LineLog log;
  ServerOptions options;
  options.workers = 1;
  g_fake_ms = 50'000;
  options.now = &fake_now;
  JobServer server(options, log.sink());

  // Deadline 300 simulated ms after admission. The engine's pre-loop check
  // passes (time has not advanced yet)… then the clock jumps past the
  // deadline before the job dequeues, so the first round-barrier check
  // trips. Either way the job terminates with stop=deadline.
  server.handle_line(run_job_line("d", "spin",
                                  ",\"max_rounds\":1048576,"
                                  "\"deadline_ms\":300"));
  g_fake_ms += 1000;
  server.drain();

  const JsonValue done = log.terminal_for("d");
  ASSERT_NE(done.find("done"), nullptr);
  EXPECT_TRUE(done.at("cancelled").boolean);
  EXPECT_EQ(done.at("stop").as_string(), "deadline");
  EXPECT_EQ(done.at("record").at("metrics").at("cancelled").as_number(),
            1.0);
}

TEST(ServeServer, RejectsProtocolAbuse) {
  LineLog log;
  ServerOptions options;
  options.workers = 1;
  options.queue_limit = 1;
  JobServer server(options, log.sink());

  EXPECT_TRUE(server.handle_line("this is not json"));
  EXPECT_TRUE(server.handle_line("{\"op\":\"flood\"}"));
  EXPECT_TRUE(server.handle_line(run_job_line("x", "nope")));
  EXPECT_TRUE(
      server.handle_line(run_job_line("y", "luby", ",\"typo_field\":1")));
  server.drain();
  EXPECT_GE(server.counter("serve.errors"), 4.0);

  // Queue backpressure: with limit 1, a burst sheds load with an error
  // response instead of buffering unboundedly.
  server.handle_line(run_job_line("q1", "spin", ",\"max_rounds\":2000"));
  server.handle_line(run_job_line("q2", "spin", ",\"max_rounds\":2000"));
  server.handle_line(run_job_line("q3", "luby"));
  server.drain();
  EXPECT_GE(server.counter("serve.jobs_rejected"), 1.0);

  // Blank lines are ignored, not errors.
  const double errors = server.counter("serve.errors");
  EXPECT_TRUE(server.handle_line("   "));
  EXPECT_EQ(server.counter("serve.errors"), errors);
}

TEST(ServeServer, MultiClientRoutesResponsesByTag) {
  // Two transport threads share ONE server (one queue, one memo, one worker
  // pool) and interleave submissions. Every response must come back tagged
  // with the client whose request earned it — cross-client leakage would
  // show a j* line under client 2 or a k* line under client 1.
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, std::string>> tagged;
  ServerOptions options;
  options.workers = 3;
  options.store_dir = temp_dir("multi");
  JobServer server(options,
                   JobServer::TaggedSink(
                       [&](const std::string& line, std::uint64_t client) {
                         std::lock_guard<std::mutex> lock(mu);
                         tagged.emplace_back(client, line);
                       }));

  auto client = [&](std::uint64_t tag, const std::string& prefix) {
    for (int i = 0; i < 4; ++i) {
      const std::string id = prefix + std::to_string(i);
      EXPECT_TRUE(server.handle_line(
          run_job_line(id, i % 2 == 0 ? "luby" : "plus_one"), tag));
    }
    EXPECT_TRUE(server.handle_line("{\"op\":\"stats\"}", tag));
  };
  std::thread c1(client, 1, "j");
  std::thread c2(client, 2, "k");
  c1.join();
  c2.join();
  server.drain();

  // Each client sees exactly its own traffic: 4 queued + 4 done + 1 stats.
  int done1 = 0, done2 = 0, stats1 = 0, stats2 = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [tag, line] : tagged) {
      ASSERT_TRUE(tag == 1 || tag == 2) << line;
      const char expect_prefix = tag == 1 ? 'j' : 'k';
      const JsonValue doc = json_parse(line);
      if (doc.find("stats") != nullptr) {
        (tag == 1 ? stats1 : stats2)++;
        continue;
      }
      const JsonValue* jid = doc.find("id");
      ASSERT_NE(jid, nullptr) << line;
      EXPECT_EQ(jid->string[0], expect_prefix) << "leak: " << line;
      if (doc.find("done") != nullptr) (tag == 1 ? done1 : done2)++;
      ASSERT_EQ(doc.find("error"), nullptr) << line;
    }
  }
  EXPECT_EQ(done1, 4);
  EXPECT_EQ(done2, 4);
  EXPECT_EQ(stats1, 1);
  EXPECT_EQ(stats2, 1);
  EXPECT_EQ(server.counter("serve.jobs_completed"), 8.0);
}

TEST(ServeServer, ShutdownDrainsAndAnswers) {
  LineLog log;
  ServerOptions options;
  options.workers = 2;
  JobServer server(options, log.sink());
  server.handle_line(run_job_line("z", "luby"));
  EXPECT_FALSE(server.handle_line("{\"op\":\"shutdown\"}"));
  // Shutdown drained first: the job's terminal response precedes the ack.
  ASSERT_NE(log.terminal_for("z").find("done"), nullptr);
  std::lock_guard<std::mutex> lock(log.mu);
  EXPECT_NE(log.lines.back().find("\"shutdown\":true"), std::string::npos);
}

}  // namespace
}  // namespace ckp
