#include "core/cycle_lcl.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "local/ids.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

TEST(Classifier, KnownProblems) {
  EXPECT_EQ(classify_cycle_lcl(proper_coloring_cycle_lcl(2)).complexity,
            CycleComplexity::kGlobal);
  EXPECT_EQ(classify_cycle_lcl(proper_coloring_cycle_lcl(3)).complexity,
            CycleComplexity::kLogStar);
  EXPECT_EQ(classify_cycle_lcl(proper_coloring_cycle_lcl(5)).complexity,
            CycleComplexity::kLogStar);
  EXPECT_EQ(classify_cycle_lcl(mis_cycle_lcl()).complexity,
            CycleComplexity::kLogStar);
  EXPECT_EQ(classify_cycle_lcl(maximal_matching_cycle_lcl()).complexity,
            CycleComplexity::kLogStar);
  EXPECT_EQ(classify_cycle_lcl(unsolvable_cycle_lcl()).complexity,
            CycleComplexity::kUnsolvable);
  EXPECT_EQ(classify_cycle_lcl(all_equal_cycle_lcl()).complexity,
            CycleComplexity::kConstant);
}

TEST(Classifier, TwoColoringPeriodIsTwo) {
  const auto c = classify_cycle_lcl(proper_coloring_cycle_lcl(2));
  EXPECT_EQ(c.period, 2);
}

TEST(Classifier, MatchingWithoutMaximalityIsStillLogStar) {
  // Dropping the UU prohibition keeps flexibility (UU self-loop appears, so
  // it even becomes constant-round solvable: everyone unmatched).
  CycleLcl p = maximal_matching_cycle_lcl();
  p.allowed.push_back({2, 2});
  const auto c = classify_cycle_lcl(p);
  EXPECT_EQ(c.complexity, CycleComplexity::kConstant);
}

TEST(LabelingValid, ChecksWindows) {
  const auto mis = mis_cycle_lcl();
  EXPECT_TRUE(cycle_labeling_valid(mis, {1, 0, 1, 0, 1, 0}));
  EXPECT_TRUE(cycle_labeling_valid(mis, {1, 0, 0, 1, 0, 0}));
  EXPECT_FALSE(cycle_labeling_valid(mis, {1, 1, 0, 0, 1, 0}));  // adjacent 1s
  EXPECT_FALSE(cycle_labeling_valid(mis, {1, 0, 0, 0, 1, 0}));  // 000 gap
}

class SolveSweep : public ::testing::TestWithParam<NodeId> {};

TEST_P(SolveSweep, MisSolvedAtLogStarCost) {
  const NodeId n = GetParam();
  const Graph g = make_cycle(n);
  Rng rng(mix_seed(1701, static_cast<std::uint64_t>(n)));
  const auto ids =
      random_ids(n, 2 * ceil_log2(static_cast<std::uint64_t>(n) + 2), rng);
  RoundLedger ledger;
  const auto r = solve_cycle_lcl(mis_cycle_lcl(), g, ids, ledger);
  ASSERT_TRUE(r.feasible);
  // Validate around the cycle (labels indexed by node; rebuild traversal
  // by checking the generic validator on the natural order of make_cycle,
  // which lays the cycle out as 0-1-2-...-n-1).
  EXPECT_TRUE(cycle_labeling_valid(mis_cycle_lcl(), r.labels));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveSweep,
                         ::testing::Values(20, 64, 257, 1024, 10000));

TEST(Solve, MisRoundsFlatInN) {
  // The Θ(log* n) side: the generic solver's round count is dominated by a
  // constant that depends on the automaton (flexibility onset m and the
  // power-graph MIS), not on n.
  Rng rng(1727);
  RoundLedger ls, ll;
  const Graph small = make_cycle(512);
  const Graph large = make_cycle(65536);
  const auto rs = solve_cycle_lcl(mis_cycle_lcl(), small,
                                  random_ids(512, 30, rng), ls);
  const auto rl = solve_cycle_lcl(mis_cycle_lcl(), large,
                                  random_ids(65536, 34, rng), ll);
  ASSERT_TRUE(rs.feasible && rl.feasible);
  EXPECT_LE(rl.rounds, rs.rounds + 10);
}

TEST(Solve, ThreeColoringLogStarSide) {
  const NodeId n = 4096;
  const Graph g = make_cycle(n);
  Rng rng(1709);
  const auto ids = random_ids(n, 30, rng);
  RoundLedger ledger;
  const auto r = solve_cycle_lcl(proper_coloring_cycle_lcl(3), g, ids, ledger);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(cycle_labeling_valid(proper_coloring_cycle_lcl(3), r.labels));
  EXPECT_LT(r.rounds, 300);
}

TEST(Solve, TwoColoringGlobalSide) {
  Rng rng(1713);
  // Even cycle: feasible at cost ~ n/2.
  {
    const Graph g = make_cycle(64);
    RoundLedger ledger;
    const auto r = solve_cycle_lcl(proper_coloring_cycle_lcl(2), g,
                                   random_ids(64, 20, rng), ledger);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(cycle_labeling_valid(proper_coloring_cycle_lcl(2), r.labels));
    EXPECT_EQ(r.rounds, 32);
  }
  // Odd cycle: correctly reported infeasible.
  {
    const Graph g = make_cycle(63);
    RoundLedger ledger;
    const auto r = solve_cycle_lcl(proper_coloring_cycle_lcl(2), g,
                                   random_ids(63, 20, rng), ledger);
    EXPECT_FALSE(r.feasible);
  }
}

TEST(Solve, ConstantProblemZeroRounds) {
  const Graph g = make_cycle(100);
  Rng rng(1717);
  RoundLedger ledger;
  const auto r = solve_cycle_lcl(all_equal_cycle_lcl(), g,
                                 random_ids(100, 20, rng), ledger);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_EQ(ledger.rounds(), 0);
}

TEST(Solve, UnsolvableReported) {
  const Graph g = make_cycle(16);
  Rng rng(1721);
  RoundLedger ledger;
  const auto r = solve_cycle_lcl(unsolvable_cycle_lcl(), g,
                                 random_ids(16, 20, rng), ledger);
  EXPECT_FALSE(r.feasible);
}

TEST(Solve, MaximalMatchingEncoding) {
  const NodeId n = 500;
  const Graph g = make_cycle(n);
  Rng rng(1723);
  RoundLedger ledger;
  const auto r = solve_cycle_lcl(maximal_matching_cycle_lcl(), g,
                                 random_ids(n, 24, rng), ledger);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(cycle_labeling_valid(maximal_matching_cycle_lcl(), r.labels));
}

TEST(Validation, RejectsBadDescriptions) {
  CycleLcl p;
  EXPECT_THROW(p.validate(), CheckFailure);
  p.num_labels = 2;
  p.window = 2;
  p.allowed = {{0, 1, 0}};  // wrong arity
  EXPECT_THROW(p.validate(), CheckFailure);
}

}  // namespace
}  // namespace ckp
