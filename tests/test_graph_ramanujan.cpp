#include "graph/ramanujan.hpp"

#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/girth.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

struct LpsCase {
  int p;
  int q;
};

class LpsSweep : public ::testing::TestWithParam<LpsCase> {};

TEST_P(LpsSweep, RegularConnectedRightSize) {
  const auto [p, q] = GetParam();
  const auto lps = make_lps_ramanujan(p, q);
  EXPECT_TRUE(lps.graph.is_regular(p + 1));
  EXPECT_EQ(connected_components(lps.graph).count, 1);
  // |PSL(2,q)| = q(q²−1)/2; |PGL(2,q)| = q(q²−1).
  const NodeId psl = q * (q * q - 1) / 2;
  const NodeId pgl = q * (q * q - 1);
  EXPECT_EQ(lps.graph.num_nodes(), lps.bipartite ? pgl : psl);
}

TEST_P(LpsSweep, GirthMeetsCertifiedBound) {
  const auto [p, q] = GetParam();
  const auto lps = make_lps_ramanujan(p, q);
  const int measured = girth(lps.graph);
  EXPECT_GE(static_cast<double>(measured), lps.girth_lower_bound)
      << "p=" << p << " q=" << q;
  // Girth genuinely grows with log n: far above the bipartite floor.
  EXPECT_GE(measured, 4);
}

INSTANTIATE_TEST_SUITE_P(Cases, LpsSweep,
                         ::testing::Values(LpsCase{5, 13}, LpsCase{5, 17},
                                           LpsCase{13, 17}, LpsCase{5, 29}));

TEST(Lps, BipartitenessMatchesLegendreSymbol) {
  // p=13, q=17: 13 ≡ 4² mod 17? 4²=16, 5²=25=8, ... check: squares mod 17:
  // {1,4,9,16,8,2,15,13}: 13 is a residue -> PSL, non-bipartite.
  const auto a = make_lps_ramanujan(13, 17);
  EXPECT_FALSE(a.bipartite);
  // p=5, q=13: squares mod 13: {1,4,9,3,12,10}: 5 is NOT a residue -> PGL,
  // bipartite.
  const auto b = make_lps_ramanujan(5, 13);
  EXPECT_TRUE(b.bipartite);
  // Bipartite graphs have even girth.
  EXPECT_EQ(girth(b.graph) % 2, 0);
}

TEST(Lps, RejectsBadParameters) {
  EXPECT_THROW(make_lps_ramanujan(7, 13), CheckFailure);   // 7 ≡ 3 mod 4
  EXPECT_THROW(make_lps_ramanujan(5, 11), CheckFailure);   // 11 ≡ 3 mod 4
  EXPECT_THROW(make_lps_ramanujan(5, 5), CheckFailure);    // p == q
  EXPECT_THROW(make_lps_ramanujan(13, 5), CheckFailure);   // q too small
}

}  // namespace
}  // namespace ckp
