// Checkpoint/resume semantics: ElimSequence and run_trials_checkpointed
// must (a) never recompute committed work on resume, (b) produce results
// byte-identical to an uninterrupted run, and (c) degrade to plain compute
// when no store is configured.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/roundelim.hpp"
#include "obs/run_record.hpp"
#include "store/checkpoint.hpp"
#include "store/serialize.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

std::vector<BipartiteProblem> run_sequence(ElimSequence& seq,
                                           const BipartiteProblem& start,
                                           int steps, int* computes) {
  std::vector<BipartiteProblem> out;
  const BipartiteProblem* cur = &start;
  for (int k = 0; k < steps; ++k) {
    auto step = seq.next([&, cur] {
      if (computes != nullptr) ++*computes;
      return round_eliminate(*cur);
    });
    out.push_back(std::move(step.problem));
    cur = &out.back();
  }
  return out;
}

TEST(ElimSequence, NullStoreComputesEveryStep) {
  ElimSequence seq(nullptr, "unused", /*resume=*/true);
  int computes = 0;
  const auto steps =
      run_sequence(seq, sinkless_orientation_canonical(3), 2, &computes);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(seq.steps_cached(), 0);
  EXPECT_TRUE(problems_isomorphic(steps[1], sinkless_orientation_canonical(3)));
}

TEST(ElimSequence, ResumeServesAllStepsWithoutRecompute) {
  ArtifactStore store(fresh_dir("elim_full"));
  const auto start = sinkless_orientation_canonical(4);
  const std::string key = "seq." + problem_digest(start);

  int computes = 0;
  ElimSequence first(&store, key, /*resume=*/false);
  const auto fresh = run_sequence(first, start, 3, &computes);
  EXPECT_EQ(computes, 3);
  EXPECT_EQ(first.steps_cached(), 0);

  ElimSequence resumed(&store, key, /*resume=*/true);
  const auto cached = run_sequence(resumed, start, 3, &computes);
  EXPECT_EQ(computes, 3) << "resume must not invoke the compute fn";
  EXPECT_EQ(resumed.steps_cached(), 3);
  for (int k = 0; k < 3; ++k) {
    EXPECT_TRUE(problems_identical(fresh[k], cached[k])) << "step " << k;
    EXPECT_EQ(problem_to_bytes(fresh[k]), problem_to_bytes(cached[k]))
        << "step " << k;
  }
}

TEST(ElimSequence, PartialStoreResumesFromLastCommittedStep) {
  ArtifactStore store(fresh_dir("elim_partial"));
  const auto start = sinkless_orientation_canonical(3);
  const std::string key = "seq." + problem_digest(start);

  // Commit only step 0, as if the first run was killed mid-sequence.
  {
    ElimSequence partial(&store, key, /*resume=*/false);
    int computes = 0;
    run_sequence(partial, start, 1, &computes);
    EXPECT_EQ(computes, 1);
  }
  EXPECT_TRUE(store.has(key + ".step0"));
  EXPECT_FALSE(store.has(key + ".step1"));

  int computes = 0;
  ElimSequence resumed(&store, key, /*resume=*/true);
  const auto steps = run_sequence(resumed, start, 2, &computes);
  EXPECT_EQ(computes, 1) << "only the missing step is computed";
  EXPECT_EQ(resumed.steps_cached(), 1);
  EXPECT_TRUE(store.has(key + ".step1")) << "resumed step is committed";
  EXPECT_TRUE(problems_isomorphic(steps[1], start));
}

TEST(ElimSequence, WithoutResumeFlagStepsAreRecomputed) {
  ArtifactStore store(fresh_dir("elim_noresume"));
  const auto start = sinkless_orientation_canonical(3);
  const std::string key = "seq." + problem_digest(start);
  int computes = 0;
  {
    ElimSequence a(&store, key, /*resume=*/false);
    run_sequence(a, start, 2, &computes);
  }
  {
    ElimSequence b(&store, key, /*resume=*/false);
    run_sequence(b, start, 2, &computes);
    EXPECT_EQ(b.steps_cached(), 0);
  }
  EXPECT_EQ(computes, 4) << "--store_dir without --resume recomputes";
}

TEST(ElimSequence, CorruptStepFallsBackToRecompute) {
  ArtifactStore store(fresh_dir("elim_corrupt"));
  const auto start = sinkless_orientation_canonical(3);
  const std::string key = "seq." + problem_digest(start);
  {
    ElimSequence a(&store, key, /*resume=*/false);
    run_sequence(a, start, 1, nullptr);
  }
  {  // Truncate the committed artifact.
    const std::string path = store.path_for(key + ".step0");
    fs::resize_file(path, fs::file_size(path) / 2);
  }
  int computes = 0;
  ElimSequence resumed(&store, key, /*resume=*/true);
  const auto steps = run_sequence(resumed, start, 1, &computes);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(resumed.steps_cached(), 0);
  EXPECT_TRUE(problems_identical(steps[0], round_eliminate(start)));
}

// ---------------------------------------------------------------------------
// run_trials_checkpointed.

RunRecord make_rec(int trial, int copy) {
  RunRecord rec;
  rec.bench = "test_resume";
  rec.algorithm = copy == 0 ? "alpha" : "beta";
  rec.graph_family = "none";
  rec.n = 100 + static_cast<std::uint64_t>(trial);
  rec.delta = 3;
  rec.seed = static_cast<std::uint64_t>(trial) + 1;
  rec.rounds = 7 * trial + copy;
  rec.wall_seconds = 0.125 * trial;  // exactly representable
  rec.verified = true;
  rec.metric("copy", copy);
  return rec;
}

TrialFn two_records_per_trial(std::atomic<int>* calls) {
  return [calls](int t) {
    if (calls != nullptr) calls->fetch_add(1);
    return std::vector<RunRecord>{make_rec(t, 0), make_rec(t, 1)};
  };
}

std::vector<std::string> to_lines(const std::vector<RunRecord>& recs) {
  std::vector<std::string> out;
  out.reserve(recs.size());
  for (const auto& r : recs) out.push_back(r.to_json());
  return out;
}

TEST(TrialsCheckpoint, NullStoreMatchesRunTrials) {
  std::atomic<int> calls{0};
  const auto recs = run_trials_checkpointed(
      nullptr, "unused", /*resume=*/true, 4, /*threads=*/2,
      two_records_per_trial(&calls));
  EXPECT_EQ(calls.load(), 4);
  ASSERT_EQ(recs.size(), 8u);
  // Seed order regardless of which worker finished first.
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(recs[2 * t].seed, static_cast<std::uint64_t>(t) + 1);
    EXPECT_EQ(recs[2 * t].algorithm, "alpha");
    EXPECT_EQ(recs[2 * t + 1].algorithm, "beta");
  }
}

TEST(TrialsCheckpoint, ResumeSkipsCommittedTrialsAndReemitsVerbatim) {
  ArtifactStore store(fresh_dir("trials_full"));
  std::atomic<int> calls{0};
  int cached = -1;
  const auto fresh = run_trials_checkpointed(
      &store, "sweep", /*resume=*/false, 6, /*threads=*/3,
      two_records_per_trial(&calls), &cached);
  EXPECT_EQ(calls.load(), 6);
  EXPECT_EQ(cached, 0);

  const auto resumed = run_trials_checkpointed(
      &store, "sweep", /*resume=*/true, 6, /*threads=*/3,
      two_records_per_trial(&calls), &cached);
  EXPECT_EQ(calls.load(), 6) << "resume must not re-run committed trials";
  EXPECT_EQ(cached, 6);
  EXPECT_EQ(to_lines(fresh), to_lines(resumed))
      << "resumed records must re-emit byte-identically";
}

TEST(TrialsCheckpoint, PartialStoreRunsOnlyMissingTrials) {
  ArtifactStore store(fresh_dir("trials_partial"));
  std::atomic<int> calls{0};
  // Commit trials 0 and 1 only (as if killed after two completions).
  const auto prefix_run = run_trials_checkpointed(
      &store, "sweep", /*resume=*/false, 2, /*threads=*/1,
      two_records_per_trial(&calls));
  EXPECT_EQ(calls.load(), 2);

  int cached = -1;
  const auto resumed = run_trials_checkpointed(
      &store, "sweep", /*resume=*/true, 5, /*threads=*/2,
      two_records_per_trial(&calls), &cached);
  EXPECT_EQ(calls.load(), 2 + 3) << "only trials 2..4 are computed";
  EXPECT_EQ(cached, 2);
  ASSERT_EQ(resumed.size(), 10u);
  // Cached prefix re-emits the committed bytes; merge stays in trial order.
  const auto lines = to_lines(resumed);
  const auto prefix_lines = to_lines(prefix_run);
  EXPECT_TRUE(std::equal(prefix_lines.begin(), prefix_lines.end(),
                         lines.begin()));
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(resumed[2 * t].seed, static_cast<std::uint64_t>(t) + 1);
  }
}

TEST(TrialsCheckpoint, CorruptTrialArtifactIsRecomputed) {
  ArtifactStore store(fresh_dir("trials_corrupt"));
  std::atomic<int> calls{0};
  run_trials_checkpointed(&store, "sweep", /*resume=*/false, 3, 1,
                          two_records_per_trial(&calls));
  {  // Destroy trial 1's artifact.
    std::ofstream out(store.path_for("sweep.trial1"),
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  int cached = -1;
  const auto resumed = run_trials_checkpointed(
      &store, "sweep", /*resume=*/true, 3, 1, two_records_per_trial(&calls),
      &cached);
  EXPECT_EQ(calls.load(), 3 + 1) << "only the corrupt trial re-runs";
  EXPECT_EQ(cached, 2);
  ASSERT_EQ(resumed.size(), 6u);
  EXPECT_EQ(resumed[2].rounds, 7);  // trial 1, copy 0 recomputed correctly
}

// ---------------------------------------------------------------------------
// RunRecord::from_json_line.

TEST(RunRecordJson, RoundTripPreservesFieldsAndBytes) {
  RunRecord rec = make_rec(3, 1);
  rec.trace.record("phase_a", 5, 42, 0.25);
  rec.trace.record("phase_b", 2, 0, 0.5);
  rec.metric("extra.metric", -1.5);
  const std::string line = rec.to_json();

  const RunRecord parsed = RunRecord::from_json_line(line);
  EXPECT_EQ(parsed.to_json(), line) << "verbatim re-emission";
  EXPECT_EQ(parsed.bench, rec.bench);
  EXPECT_EQ(parsed.algorithm, rec.algorithm);
  EXPECT_EQ(parsed.graph_family, rec.graph_family);
  EXPECT_EQ(parsed.n, rec.n);
  EXPECT_EQ(parsed.delta, rec.delta);
  EXPECT_EQ(parsed.seed, rec.seed);
  EXPECT_EQ(parsed.rounds, rec.rounds);
  EXPECT_DOUBLE_EQ(parsed.wall_seconds, rec.wall_seconds);
  EXPECT_EQ(parsed.verified, rec.verified);
  ASSERT_EQ(parsed.trace.phases().size(), rec.trace.phases().size());
  EXPECT_EQ(parsed.trace.phases()[0].name, "phase_a");
  EXPECT_EQ(parsed.trace.phases()[0].rounds, 5);
  EXPECT_EQ(parsed.metrics(), rec.metrics());
}

TEST(RunRecordJson, MutationDropsVerbatimCache) {
  RunRecord rec = make_rec(1, 0);
  const std::string line = rec.to_json();
  RunRecord parsed = RunRecord::from_json_line(line);
  parsed.metric("copy", 99.0);
  EXPECT_NE(parsed.to_json(), line);
}

TEST(RunRecordJson, RejectsMalformedInput) {
  EXPECT_THROW(RunRecord::from_json_line("not json"), CheckFailure);
  EXPECT_THROW(RunRecord::from_json_line("[1,2,3]"), CheckFailure);
  EXPECT_THROW(RunRecord::from_json_line("{\"verified\": \"yes\"}"),
               CheckFailure);
}

}  // namespace
}  // namespace ckp
