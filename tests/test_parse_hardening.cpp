// Regression tests for the parse-layer hardening: JSON \u escapes and the
// recursion cap, flag value rejection (empty / out-of-range), and the
// untrusted edge-list reader. Each case here failed (aborted, silently
// accepted garbage, or clamped) before the fixes. Fuzz round-trips pin the
// writer→parser and write→read→write seams the checkpoint store relies on.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace ckp {
namespace {

// ---------------------------------------------------------------------------
// JSON \u escapes.

TEST(JsonUnicode, DecodesAsciiEscape) {
  const JsonValue v = json_parse("\"a\\u0041b\"");
  EXPECT_EQ(v.as_string(), "aAb");
}

TEST(JsonUnicode, DecodesLatinEscapeToUtf8) {
  // U+00E9 (é) — rejected outright before the fix.
  const JsonValue v = json_parse("\"caf\\u00e9\"");
  EXPECT_EQ(v.as_string(), "caf\xC3\xA9");
}

TEST(JsonUnicode, DecodesThreeByteBmpEscape) {
  // U+2603 SNOWMAN.
  const JsonValue v = json_parse("\"\\u2603\"");
  EXPECT_EQ(v.as_string(), "\xE2\x98\x83");
}

TEST(JsonUnicode, DecodesSurrogatePairToFourByteUtf8) {
  // U+1F600 as the pair D83D DE00.
  const JsonValue v = json_parse("\"\\uD83D\\uDE00\"");
  EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonUnicode, SurrogatePairCaseInsensitiveHex) {
  const JsonValue v = json_parse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonUnicode, RejectsLoneHighSurrogate) {
  EXPECT_THROW(json_parse("\"\\uD83D\""), CheckFailure);
  EXPECT_THROW(json_parse("\"\\uD83Dx\""), CheckFailure);
  EXPECT_THROW(json_parse("\"\\uD83D\\n\""), CheckFailure);
}

TEST(JsonUnicode, RejectsLoneLowSurrogate) {
  EXPECT_THROW(json_parse("\"\\uDE00\""), CheckFailure);
}

TEST(JsonUnicode, RejectsHighSurrogateFollowedByNonLow) {
  EXPECT_THROW(json_parse("\"\\uD83D\\u0041\""), CheckFailure);
}

TEST(JsonUnicode, RejectsBadHexDigits) {
  EXPECT_THROW(json_parse("\"\\uZZZZ\""), CheckFailure);
  EXPECT_THROW(json_parse("\"\\u00g0\""), CheckFailure);
  // The seed parser ran strtol over unvalidated hex, so "\u 123" parsed as
  // 0x123 — now every digit is checked.
  EXPECT_THROW(json_parse("\"\\u 123\""), CheckFailure);
}

TEST(JsonUnicode, RejectsTruncatedEscape) {
  EXPECT_THROW(json_parse("\"\\u00\""), CheckFailure);
  EXPECT_THROW(json_parse("\"\\u"), CheckFailure);
}

TEST(JsonUnicode, EscapedStringRoundTripsThroughWriter) {
  // A parsed \u string re-emitted by the writer (as raw UTF-8) parses back
  // to the same bytes.
  const std::string decoded = json_parse("\"\\u00e9\\u2603\"").as_string();
  JsonWriter w;
  w.value(decoded);
  EXPECT_EQ(json_parse(w.str()).as_string(), decoded);
}

// ---------------------------------------------------------------------------
// JsonWriter escaping round trips. The writer's contract: the named C
// escapes for \n \r \t " \, \u00XX for every other control byte, and raw
// UTF-8 passthrough for everything >= 0x20 — and whatever it emits must
// parse back to the original bytes.

TEST(JsonEscape, ControlCharsEscapeAsU00XX) {
  const std::string raw("\x01\x08\x0c\x1f", 4);
  const std::string escaped = json_escape(raw);
  // \b and \f have no short form in this writer; all four become \u00XX.
  EXPECT_EQ(escaped, "\\u0001\\u0008\\u000c\\u001f");
  EXPECT_EQ(json_parse("\"" + escaped + "\"").as_string(), raw);
}

TEST(JsonEscape, NamedEscapesRoundTrip) {
  const std::string raw = "line1\nline2\r\ttabbed \"quoted\" back\\slash";
  EXPECT_EQ(json_escape(raw),
            "line1\\nline2\\r\\ttabbed \\\"quoted\\\" back\\\\slash");
  JsonWriter w;
  w.value(raw);
  EXPECT_EQ(json_parse(w.str()).as_string(), raw);
}

TEST(JsonEscape, Utf8PassesThroughUnescaped) {
  // 2-byte (é), 3-byte (snowman), and 4-byte (astral) sequences all pass
  // through the writer verbatim — no \uXXXX re-encoding.
  const std::string raw = "caf\xc3\xa9 \xe2\x98\x83 \xf0\x9f\x8c\x8d";
  const std::string escaped = json_escape(raw);
  EXPECT_EQ(escaped, raw);
  JsonWriter w;
  w.value(raw);
  EXPECT_EQ(json_parse(w.str()).as_string(), raw);
}

TEST(JsonEscape, SurrogatePairWriterParserSymmetry) {
  // Parser decodes a surrogate pair to 4-byte UTF-8; the writer re-emits
  // those bytes raw; parsing the writer's output returns the same string.
  // The two encodings of U+1F600 are interchangeable through the seam.
  const std::string from_pair = json_parse("\"\\ud83d\\ude00\"").as_string();
  EXPECT_EQ(from_pair, "\xf0\x9f\x98\x80");
  JsonWriter w;
  w.value(from_pair);
  EXPECT_EQ(w.str().find("\\u"), std::string::npos);
  EXPECT_EQ(json_parse(w.str()).as_string(), from_pair);

  // An embedded control char next to the astral char keeps both contracts.
  const std::string mixed = from_pair + '\n' + '\x02' + from_pair;
  JsonWriter w2;
  w2.value(mixed);
  EXPECT_EQ(json_parse(w2.str()).as_string(), mixed);
}

// ---------------------------------------------------------------------------
// JSON recursion cap.

TEST(JsonDepth, DeeplyNestedInputFailsCleanly) {
  // 100k unclosed '[' overflowed the stack before the cap; now it is a
  // CheckFailure long before the recursion gets dangerous.
  std::string deep(100000, '[');
  EXPECT_THROW(json_parse(deep), CheckFailure);
  std::string mixed;
  for (int i = 0; i < 50000; ++i) mixed += "[{\"k\":";
  EXPECT_THROW(json_parse(mixed), CheckFailure);
}

TEST(JsonDepth, ReasonableNestingStillParses) {
  std::string doc;
  for (int i = 0; i < 100; ++i) doc += '[';
  doc += "1";
  for (int i = 0; i < 100; ++i) doc += ']';
  const JsonValue v = json_parse(doc);
  EXPECT_TRUE(v.is_array());
}

// ---------------------------------------------------------------------------
// JSON fuzz: writer → parser round-trips.

std::string random_string(Rng& rng, int max_len) {
  const int len = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(max_len + 1)));
  std::string s;
  for (int i = 0; i < len; ++i) {
    // Mix of ASCII (incl. controls and escapables) and UTF-8 continuation
    // bytes via 2-byte sequences.
    const std::uint64_t pick = rng.next_below(20);
    if (pick < 16) {
      s += static_cast<char>(rng.next_below(0x7F) + 1);
    } else {
      const unsigned cp = 0x80 + static_cast<unsigned>(rng.next_below(0x700));
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }
  return s;
}

void build_random_value(Rng& rng, JsonWriter& w, int depth) {
  const std::uint64_t pick = rng.next_below(depth > 0 ? 6 : 4);
  switch (pick) {
    case 0: w.value(static_cast<std::int64_t>(rng()) >> 12); break;
    case 1: w.value(random_string(rng, 24)); break;
    case 2: w.value(rng.next_below(2) == 0); break;
    case 3: w.null(); break;
    case 4: {
      w.begin_array();
      const int len = static_cast<int>(rng.next_below(4));
      for (int i = 0; i < len; ++i) build_random_value(rng, w, depth - 1);
      w.end_array();
      break;
    }
    default: {
      w.begin_object();
      const int len = static_cast<int>(rng.next_below(4));
      for (int i = 0; i < len; ++i) {
        w.key("k" + std::to_string(i));
        build_random_value(rng, w, depth - 1);
      }
      w.end_object();
      break;
    }
  }
}

std::string rewrite(const JsonValue& v);

std::string rewrite(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::Null: return "null";
    case JsonValue::Type::Bool: return v.boolean ? "true" : "false";
    case JsonValue::Type::Number: return json_number(v.number);
    case JsonValue::Type::String:
      return '"' + json_escape(v.string) + '"';
    case JsonValue::Type::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) out += ',';
        out += rewrite(v.array[i]);
      }
      return out + "]";
    }
    case JsonValue::Type::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        if (i > 0) out += ',';
        out += '"' + json_escape(v.object[i].first) + "\":" +
               rewrite(v.object[i].second);
      }
      return out + "}";
    }
  }
  return "";
}

TEST(JsonFuzz, WriterParserRewriteFixedPoint) {
  // writer → parse → rewrite → parse → rewrite is a fixed point: the second
  // rewrite reproduces the first byte-for-byte (the stability the
  // checkpoint layer's verbatim re-emission rests on).
  Rng rng(0xF00D);
  for (int iter = 0; iter < 300; ++iter) {
    JsonWriter w;
    build_random_value(rng, w, 5);
    const std::string doc = w.str();
    const std::string once = rewrite(json_parse(doc));
    const std::string twice = rewrite(json_parse(once));
    EXPECT_EQ(once, twice) << "source doc: " << doc;
  }
}

TEST(JsonFuzz, EscapeParseRoundTripsArbitraryStrings) {
  Rng rng(0xE5C);
  for (int iter = 0; iter < 500; ++iter) {
    const std::string s = random_string(rng, 40);
    const JsonValue v = json_parse('"' + json_escape(s) + '"');
    EXPECT_EQ(v.as_string(), s);
  }
}

// ---------------------------------------------------------------------------
// Flags: empty and out-of-range values.

TEST(FlagsHardening, RejectsEmptyIntValue) {
  const char* argv[] = {"prog", "--n="};
  Flags f(2, argv);
  EXPECT_THROW(f.get_int("n", 7), CheckFailure);  // was silently 0
}

TEST(FlagsHardening, RejectsEmptyDoubleValue) {
  const char* argv[] = {"prog", "--x="};
  Flags f(2, argv);
  EXPECT_THROW(f.get_double("x", 1.0), CheckFailure);
}

TEST(FlagsHardening, RejectsOutOfRangeInt) {
  // strtoll clamps to INT64_MAX with ERANGE; the seed getter returned the
  // clamped value.
  const char* argv[] = {"prog", "--n=99999999999999999999999999"};
  Flags f(2, argv);
  EXPECT_THROW(f.get_int("n", 0), CheckFailure);
}

TEST(FlagsHardening, RejectsOutOfRangeNegativeInt) {
  const char* argv[] = {"prog", "--n=-99999999999999999999999999"};
  Flags f(2, argv);
  EXPECT_THROW(f.get_int("n", 0), CheckFailure);
}

TEST(FlagsHardening, RejectsOverflowingDouble) {
  const char* argv[] = {"prog", "--x=1e99999"};
  Flags f(2, argv);
  EXPECT_THROW(f.get_double("x", 0.0), CheckFailure);
}

TEST(FlagsHardening, AcceptsBoundaryInt64) {
  const char* argv[] = {"prog", "--a=9223372036854775807",
                        "--b=-9223372036854775808"};
  Flags f(3, argv);
  EXPECT_EQ(f.get_int("a", 0), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(f.get_int("b", 0), std::numeric_limits<std::int64_t>::min());
}

TEST(FlagsHardening, RejectsEmptyOrHugeThreads) {
  {
    const char* argv[] = {"prog", "--threads="};
    Flags f(2, argv);
    EXPECT_THROW(f.get_threads(), CheckFailure);
  }
  {
    const char* argv[] = {"prog", "--threads=99999999999999999999"};
    Flags f(2, argv);
    EXPECT_THROW(f.get_threads(), CheckFailure);
  }
}

TEST(FlagsHardening, ShardNodesRejectsNonPositiveAndOverflow) {
  {
    const char* argv[] = {"prog", "--shard_nodes=0"};
    Flags f(2, argv);
    EXPECT_THROW(f.get_shard_nodes(1), CheckFailure);
  }
  {
    const char* argv[] = {"prog", "--shard_nodes=-8"};
    Flags f(2, argv);
    EXPECT_THROW(f.get_shard_nodes(1), CheckFailure);
  }
  {
    const char* argv[] = {"prog", "--shard_nodes="};
    Flags f(2, argv);
    EXPECT_THROW(f.get_shard_nodes(1), CheckFailure);
  }
  {
    // Exceeds int32 node counts (and strtoll's int64 range in the extreme).
    const char* argv[] = {"prog", "--shard_nodes=4294967296"};
    Flags f(2, argv);
    EXPECT_THROW(f.get_shard_nodes(1), CheckFailure);
  }
  {
    const char* argv[] = {"prog", "--shard_nodes=99999999999999999999"};
    Flags f(2, argv);
    EXPECT_THROW(f.get_shard_nodes(1), CheckFailure);
  }
}

TEST(FlagsHardening, ShardNodesAcceptsValidAndDefaults) {
  {
    const char* argv[] = {"prog", "--shard_nodes=4096"};
    Flags f(2, argv);
    EXPECT_EQ(f.get_shard_nodes(4), 4096);
    f.check_unknown();
  }
  {
    const char* argv[] = {"prog"};
    Flags f(1, argv);
    EXPECT_EQ(f.get_shard_nodes(1, 1 << 20), 1 << 20);
  }
  {
    // Shards below the worker count are legal — the warning is advisory.
    const char* argv[] = {"prog", "--shard_nodes=2"};
    Flags f(2, argv);
    EXPECT_EQ(f.get_shard_nodes(8), 2);
  }
}

TEST(FlagsHardening, ValidValuesStillParse) {
  const char* argv[] = {"prog", "--n=42", "--x=2.5", "--threads=3"};
  Flags f(4, argv);
  EXPECT_EQ(f.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(f.get_double("x", 0.0), 2.5);
  EXPECT_EQ(f.get_threads(), 3);
  f.check_unknown();
}

// ---------------------------------------------------------------------------
// Edge-list reader.

Graph parse_edge_list(const std::string& text) {
  std::istringstream is(text);
  return read_edge_list(is);
}

TEST(EdgeListHardening, RejectsEndpointOutOfRange) {
  // The corrupt header said n=2 but an edge names node 5; the seed reader
  // forwarded it to Graph::from_edges with a generic message (or worse,
  // out-of-bounds in release paths of other readers).
  EXPECT_THROW(parse_edge_list("2 1\n0 5\n"), CheckFailure);
  EXPECT_THROW(parse_edge_list("2 1\n-1 1\n"), CheckFailure);
}

TEST(EdgeListHardening, RejectsNegativeHeader) {
  EXPECT_THROW(parse_edge_list("-4 1\n0 1\n"), CheckFailure);
  EXPECT_THROW(parse_edge_list("4 -1\n"), CheckFailure);
}

TEST(EdgeListHardening, RejectsEdgeCountBeyondRemainingInput) {
  // m = 1e9 with 8 bytes of input must fail before the reserve, not OOM or
  // spin reading.
  EXPECT_THROW(parse_edge_list("4 1000000000\n0 1\n"), CheckFailure);
}

TEST(EdgeListHardening, RejectsHeaderBeyondNodeIdRange) {
  EXPECT_THROW(parse_edge_list("99999999999 0\n"), CheckFailure);
}

TEST(EdgeListHardening, RejectsTruncatedEdgeList) {
  EXPECT_THROW(parse_edge_list("4 3\n0 1\n1 2\n"), CheckFailure);
}

TEST(EdgeListHardening, SkipsCommentLines) {
  const Graph g = parse_edge_list(
      "# generated by an external tool\n"
      "3 2\n"
      "# edges follow\n"
      "0 1\n"
      "# midway comment\n"
      "1 2\n");
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(EdgeListHardening, WriteReadWriteIsByteIdentical) {
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    std::ostringstream first;
    write_edge_list(g, first);
    std::istringstream is(first.str());
    const Graph reread = read_edge_list(is);
    std::ostringstream second;
    write_edge_list(reread, second);
    EXPECT_EQ(first.str(), second.str()) << name;
  }
}

TEST(EdgeListHardening, FuzzRandomGraphsRoundTrip) {
  Rng rng(0x10F);
  for (int iter = 0; iter < 50; ++iter) {
    const NodeId n = static_cast<NodeId>(2 + rng.next_below(60));
    const Graph g = make_er(n, 0.15, rng);
    std::ostringstream os;
    write_edge_list(g, os);
    std::istringstream is(os.str());
    const Graph reread = read_edge_list(is);
    ASSERT_EQ(g.num_nodes(), reread.num_nodes());
    ASSERT_EQ(g.num_edges(), reread.num_edges());
    std::ostringstream os2;
    write_edge_list(reread, os2);
    EXPECT_EQ(os.str(), os2.str());
  }
}

}  // namespace
}  // namespace ckp
