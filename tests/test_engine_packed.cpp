// The packed fast path (local/engine.hpp): trait detection, bit-identity
// against the generic path and across thread counts and schedulers on
// adversarially skewed active sets, the allocation-free certification of the
// round loop, and the engine-side byte accounting the scale benches gate on.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "algo/greedy_color.hpp"
#include "algo/matching_local.hpp"
#include "algo/mis_ghaffari.hpp"
#include "algo/mis_luby.hpp"
#include "algo/plus_one_coloring.hpp"
#include "algo/sinkless_local.hpp"
#include "lcl/verify_matching.hpp"
#include "graph/generators.hpp"
#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "lcl/verify_mis.hpp"
#include "local/context.hpp"
#include "local/engine.hpp"
#include "local/ids.hpp"
#include "obs/observer.hpp"
#include "obs/resource.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

// Under ASan/TSan the sanitizer runtime may own operator new, leaving the
// repo's allocation counters idle — same guard as test_obs_resource.cpp.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CKP_SANITIZER_MAY_OWN_ALLOCATOR 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CKP_SANITIZER_MAY_OWN_ALLOCATOR 1
#endif
#endif
#ifndef CKP_SANITIZER_MAY_OWN_ALLOCATOR
#define CKP_SANITIZER_MAY_OWN_ALLOCATOR 0
#endif

namespace ckp {
namespace {

// Packed DetLOCAL fixture with an adversarially skewed halt schedule: node v
// runs for lifetime(v) rounds, where most nodes die almost immediately and a
// sparse minority (every 97th node, clustered by the multiplier) lives ~30x
// longer. Under static chunking the surviving work concentrates in a few
// chunks — exactly the shape work stealing exists for — while the mixing
// term makes any cross-chunk read of a partially-updated state change the
// final words.
struct SkewedMixer {
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t acc = 0;
    std::uint32_t remaining = 0;
    std::uint32_t pad = 0;
    bool operator==(const State&) const = default;
  };

  State init(const NodeEnv& env) {
    const auto v = static_cast<std::uint32_t>(env.index);
    const std::uint32_t life = (v % 97 == 0) ? 60 + v % 13 : 1 + v % 3;
    return {0x9e3779b97f4a7c15ULL * (v + 1), life, 0};
  }

  bool step(State& self, const NodeEnv&, std::span<const State* const> nbrs) {
    std::uint64_t acc = self.acc;
    for (const State* nb : nbrs) acc ^= (nb->acc >> 7) + nb->remaining;
    self.acc = acc * 0x2545F4914F6CDD1DULL + 1;
    return --self.remaining == 0;
  }
};

// RandLOCAL variant: same skew, but lifetimes and mixing draws come from the
// per-node private stream, so any scheduler-dependent interleaving of RNG
// consumption shows up as a state diff.
struct SkewedRandMixer {
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t acc = 0;
    std::uint32_t remaining = 0;
    std::uint32_t pad = 0;
    bool operator==(const State&) const = default;
  };

  State init(const NodeEnv& env) {
    const std::uint64_t r = env.random()();
    const std::uint32_t life =
        (env.index % 89 == 0) ? 50 + r % 16 : 1 + r % 4;
    return {r, life, 0};
  }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    std::uint64_t acc = self.acc;
    for (const State* nb : nbrs) acc ^= nb->acc * 0x9e3779b97f4a7c15ULL;
    self.acc = acc + env.random()();
    return --self.remaining == 0;
  }
};

static_assert(detail::is_packed_algorithm_v<SkewedMixer>);
static_assert(detail::is_packed_algorithm_v<SkewedRandMixer>);

template <typename A>
void expect_same_run(const EngineResult<A>& a, const EngineResult<A>& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.all_halted, b.all_halted);
  ASSERT_EQ(a.states.size(), b.states.size());
  for (std::size_t i = 0; i < a.states.size(); ++i) {
    ASSERT_TRUE(a.states[i] == b.states[i]) << "state mismatch at node " << i;
  }
}

std::vector<Graph> fixture_graphs() {
  std::vector<Graph> graphs;
  graphs.push_back(make_complete_tree(700, 3));
  graphs.push_back(make_cycle(389));
  Rng rng(0xFAC7);
  graphs.push_back(make_random_regular(512, 6, rng));
  return graphs;
}

class RecordingObserver : public EngineObserver {
 public:
  std::vector<std::pair<NodeId, int>> halts;
  std::vector<NodeId> active_per_round;

  void on_node_halt(NodeId v, int round) override { halts.emplace_back(v, round); }
  void on_round_end(const RoundStats& stats) override {
    active_per_round.push_back(stats.active_nodes);
  }
};

template <typename A>
void check_schedule_invariance(const LocalInput& in, int max_rounds) {
  A seq_algo;
  EngineOptions seq_opts;
  seq_opts.threads = 1;
  const auto seq = run_local(in, seq_algo, max_rounds, nullptr, seq_opts);
  EXPECT_TRUE(seq.all_halted);

  RecordingObserver seq_obs;
  {
    A algo;
    run_local(in, algo, max_rounds, &seq_obs, seq_opts);
  }

  for (const int threads : {2, 8}) {
    for (const EngineSchedule schedule :
         {EngineSchedule::kStatic, EngineSchedule::kWorkStealing}) {
      EngineOptions opts;
      opts.threads = threads;
      opts.schedule = schedule;
      A algo;
      RecordingObserver obs;
      const auto par = run_local(in, algo, max_rounds, &obs, opts);
      expect_same_run(seq, par);
      // Halt events: same nodes, same rounds, same order — the chunk-order
      // merge contract, independent of who computed each chunk.
      EXPECT_EQ(seq_obs.halts, obs.halts)
          << "threads=" << threads << " stealing="
          << (schedule == EngineSchedule::kWorkStealing);
      EXPECT_EQ(seq_obs.active_per_round, obs.active_per_round);
    }
  }
}

TEST(EnginePacked, DetSkewBitIdenticalAcrossThreadsAndSchedulers) {
  for (const Graph& g : fixture_graphs()) {
    LocalInput in;
    in.graph = &g;
    in.ids = sequential_ids(g.num_nodes());
    check_schedule_invariance<SkewedMixer>(in, 200);
  }
}

TEST(EnginePacked, RandSkewBitIdenticalAcrossThreadsAndSchedulers) {
  for (const Graph& g : fixture_graphs()) {
    LocalInput in;
    in.graph = &g;
    in.seed = 0x5EED;
    check_schedule_invariance<SkewedRandMixer>(in, 200);
  }
}

TEST(EnginePacked, ForcedGenericMatchesPackedOnFixtures) {
  const Graph g = make_complete_tree(500, 4);
  LocalInput in;
  in.graph = &g;
  in.seed = 11;
  SkewedRandMixer a1;
  const auto packed = run_local(in, a1, 200, nullptr, EngineOptions{});
  EngineOptions generic_opts;
  generic_opts.force_generic = true;
  SkewedRandMixer a2;
  const auto generic = run_local(in, a2, 200, nullptr, generic_opts);
  expect_same_run(packed, generic);
  // The packed path's claimed footprint must undercut the generic path's —
  // that is its reason to exist.
  EXPECT_GT(packed.engine_bytes, 0u);
  EXPECT_LT(packed.engine_bytes, generic.engine_bytes);
}

// ---------------------------------------------------------------------------
// Differential tests for the ported algorithms: the packed and generic paths
// must produce identical outputs, and the packed paths must respect their
// engine-side byte stories.

TEST(EnginePacked, LubyPackedMatchesGeneric) {
  Rng rng(0x1B1);
  const Graph g = make_random_regular(600, 5, rng);
  LocalInput in;
  in.graph = &g;
  in.seed = 3;
  const auto packed = mis_luby(in);
  EngineOptions generic_opts;
  generic_opts.force_generic = true;
  const auto generic = mis_luby(in, 1 << 20, generic_opts);
  EXPECT_EQ(packed.rounds, generic.rounds);
  EXPECT_EQ(packed.in_set, generic.in_set);
  EXPECT_TRUE(packed.completed);
  EXPECT_TRUE(verify_mis(g, packed.in_set).ok);
  EXPECT_LT(packed.engine_bytes, generic.engine_bytes);
}

TEST(EnginePacked, GreedyColorPackedMatchesGenericAndMeetsBudget) {
  Rng rng(0x6C);
  const Graph g = make_random_regular(1024, 4, rng);
  LocalInput in;
  in.graph = &g;
  in.ids = random_ids(g.num_nodes(), 20, rng);
  const auto packed = greedy_color_local(in, 5);
  EngineOptions generic_opts;
  generic_opts.force_generic = true;
  const auto generic = greedy_color_local(in, 5, 1 << 20, generic_opts);
  EXPECT_EQ(packed.rounds, generic.rounds);
  EXPECT_EQ(packed.colors, generic.colors);
  EXPECT_TRUE(packed.completed);
  EXPECT_TRUE(verify_coloring(g, packed.colors, 5).ok);
  // The scale bench's DetLOCAL budget: <= 48 engine-side bytes per node.
  EXPECT_LE(packed.engine_bytes,
            48u * static_cast<std::uint64_t>(g.num_nodes()));
}

TEST(EnginePacked, SinklessPackedMatchesGenericAndVerifies) {
  Rng rng(0x51A);
  const auto inst = make_random_bipartite_regular(256, 4, rng);
  LocalInput in;
  in.graph = &inst.graph;
  in.seed = 9;
  in.edge_labels = inst.edge_color;
  const auto packed = sinkless_local(in);
  EngineOptions generic_opts;
  generic_opts.force_generic = true;
  const auto generic = sinkless_local(in, 1 << 14, generic_opts);
  EXPECT_EQ(packed.rounds, generic.rounds);
  EXPECT_EQ(packed.orient, generic.orient);
  EXPECT_TRUE(packed.completed);
  EXPECT_TRUE(verify_sinkless_orientation(inst.graph, packed.orient).ok);
  EXPECT_LT(packed.engine_bytes, generic.engine_bytes);
}

TEST(EnginePacked, SinklessThreadAndScheduleInvariant) {
  Rng rng(0x51B);
  const auto inst = make_random_bipartite_regular(200, 3, rng);
  LocalInput in;
  in.graph = &inst.graph;
  in.seed = 4;
  in.edge_labels = inst.edge_color;
  const auto base = sinkless_local(in);
  for (const int threads : {2, 8}) {
    for (const EngineSchedule schedule :
         {EngineSchedule::kStatic, EngineSchedule::kWorkStealing}) {
      EngineOptions opts;
      opts.threads = threads;
      opts.schedule = schedule;
      const auto run = sinkless_local(in, 1 << 14, opts);
      EXPECT_EQ(base.rounds, run.rounds);
      EXPECT_EQ(base.orient, run.orient);
      EXPECT_EQ(base.completed, run.completed);
    }
  }
}

TEST(EnginePacked, SinklessRejectsMalformedInput) {
  Rng rng(0xBAD);
  const auto inst = make_random_bipartite_regular(32, 3, rng);
  {
    LocalInput in;  // DetLOCAL input: ids are forbidden
    in.graph = &inst.graph;
    in.ids = sequential_ids(inst.graph.num_nodes());
    in.edge_labels = inst.edge_color;
    EXPECT_THROW(sinkless_local(in), CheckFailure);
  }
  {
    LocalInput in;  // missing labels
    in.graph = &inst.graph;
    EXPECT_THROW(sinkless_local(in), CheckFailure);
  }
  {
    LocalInput in;  // improper coloring: two edges at node 0 share a color
    in.graph = &inst.graph;
    std::vector<int> bad = inst.edge_color;
    const auto incident = inst.graph.incident_edges(0);
    bad[static_cast<std::size_t>(incident[1])] =
        bad[static_cast<std::size_t>(incident[0])];
    in.edge_labels = bad;
    EXPECT_THROW(sinkless_local(in), CheckFailure);
  }
  {
    const Graph path = Graph::from_edges(2, {{0, 1}});  // degree-1 node
    LocalInput in;
    in.graph = &path;
    in.edge_labels = {0};
    EXPECT_THROW(sinkless_local(in), CheckFailure);
  }
}

TEST(EnginePacked, GhaffariPackedMatchesGenericAndVerifies) {
  Rng rng(0x6AFF);
  const Graph g = make_random_regular(800, 6, rng);
  LocalInput in;
  in.graph = &g;
  in.seed = 17;
  const auto packed = mis_ghaffari_local(in);
  EngineOptions generic_opts;
  generic_opts.force_generic = true;
  const auto generic = mis_ghaffari_local(in, 1 << 20, generic_opts);
  EXPECT_EQ(packed.rounds, generic.rounds);
  EXPECT_EQ(packed.in_set, generic.in_set);
  EXPECT_EQ(packed.residue_nodes, generic.residue_nodes);
  EXPECT_EQ(packed.largest_residue_component,
            generic.largest_residue_component);
  EXPECT_TRUE(packed.completed);
  EXPECT_TRUE(verify_mis(g, packed.in_set).ok);
  EXPECT_LT(packed.engine_bytes, generic.engine_bytes);
  // Shattering accounting is internally consistent.
  EXPECT_LE(packed.largest_residue_component, packed.residue_nodes);
  EXPECT_LE(packed.residue_nodes, g.num_nodes());
  EXPECT_LE(packed.phase1_rounds, packed.rounds);
}

TEST(EnginePacked, GhaffariThreadScheduleAndSimdInvariant) {
  Rng rng(0x6AFE);
  const Graph g = make_complete_tree(700, 3);
  LocalInput in;
  in.graph = &g;
  in.seed = 5;
  const auto base = mis_ghaffari_local(in);
  EXPECT_TRUE(base.completed);
  for (const int threads : {1, 2, 8}) {
    for (const EngineSchedule schedule :
         {EngineSchedule::kStatic, EngineSchedule::kWorkStealing}) {
      for (const bool simd : {false, true}) {
        EngineOptions opts;
        opts.threads = threads;
        opts.schedule = schedule;
        opts.simd = simd;
        const auto run = mis_ghaffari_local(in, 1 << 20, opts);
        EXPECT_EQ(base.rounds, run.rounds);
        EXPECT_EQ(base.in_set, run.in_set);
        EXPECT_EQ(base.residue_nodes, run.residue_nodes);
      }
    }
  }
}

TEST(EnginePacked, GhaffariRejectsMalformedInput) {
  const Graph g = make_cycle(16);
  LocalInput in;
  in.graph = &g;
  in.ids = sequential_ids(g.num_nodes());  // RandLOCAL: ids forbidden
  EXPECT_THROW(mis_ghaffari_local(in), CheckFailure);
  LocalInput rand_in;
  rand_in.graph = &g;
  GhaffariMisParams params;
  params.phase1_iterations = 300;  // exceeds the 8-bit packed counter
  EXPECT_THROW(mis_ghaffari_local(rand_in, 1 << 20, EngineOptions{}, params),
               CheckFailure);
}

TEST(EnginePacked, MatchingRandomizedPackedMatchesGenericAndVerifies) {
  Rng rng(0x3A7C);
  const Graph g = make_random_regular(600, 5, rng);
  LocalInput in;
  in.graph = &g;
  in.seed = 23;
  const auto packed = matching_randomized_local(in);
  EngineOptions generic_opts;
  generic_opts.force_generic = true;
  const auto generic = matching_randomized_local(in, 1 << 20, generic_opts);
  EXPECT_EQ(packed.rounds, generic.rounds);
  EXPECT_EQ(packed.in_matching, generic.in_matching);
  EXPECT_TRUE(packed.completed);
  EXPECT_TRUE(verify_maximal_matching(g, packed.in_matching).ok);
  EXPECT_LT(packed.engine_bytes, generic.engine_bytes);
}

TEST(EnginePacked, MatchingDeterministicPackedMatchesGenericAndVerifies) {
  Rng rng(0x3A7D);
  const Graph g = make_complete_tree(500, 4);
  LocalInput in;
  in.graph = &g;
  in.ids = random_ids(g.num_nodes(), 27, rng);
  const auto packed = matching_deterministic_local(in);
  EngineOptions generic_opts;
  generic_opts.force_generic = true;
  const auto generic = matching_deterministic_local(in, 1 << 20, generic_opts);
  EXPECT_EQ(packed.rounds, generic.rounds);
  EXPECT_EQ(packed.in_matching, generic.in_matching);
  EXPECT_TRUE(packed.completed);
  EXPECT_TRUE(verify_maximal_matching(g, packed.in_matching).ok);
  EXPECT_LT(packed.engine_bytes, generic.engine_bytes);
}

TEST(EnginePacked, MatchingThreadScheduleAndSimdInvariant) {
  Rng rng(0x3A7E);
  const Graph g = make_random_regular(512, 4, rng);
  LocalInput rand_in;
  rand_in.graph = &g;
  rand_in.seed = 31;
  LocalInput det_in;
  det_in.graph = &g;
  det_in.ids = random_ids(g.num_nodes(), 26, rng);
  const auto rand_base = matching_randomized_local(rand_in);
  const auto det_base = matching_deterministic_local(det_in);
  EXPECT_TRUE(rand_base.completed);
  EXPECT_TRUE(det_base.completed);
  for (const int threads : {1, 2, 8}) {
    for (const EngineSchedule schedule :
         {EngineSchedule::kStatic, EngineSchedule::kWorkStealing}) {
      for (const bool simd : {false, true}) {
        EngineOptions opts;
        opts.threads = threads;
        opts.schedule = schedule;
        opts.simd = simd;
        const auto r = matching_randomized_local(rand_in, 1 << 20, opts);
        EXPECT_EQ(rand_base.rounds, r.rounds);
        EXPECT_EQ(rand_base.in_matching, r.in_matching);
        const auto d = matching_deterministic_local(det_in, 1 << 20, opts);
        EXPECT_EQ(det_base.rounds, d.rounds);
        EXPECT_EQ(det_base.in_matching, d.in_matching);
      }
    }
  }
}

TEST(EnginePacked, MatchingRejectsMalformedInput) {
  const Graph g = make_cycle(16);
  {
    LocalInput in;  // randomized: ids forbidden
    in.graph = &g;
    in.ids = sequential_ids(g.num_nodes());
    EXPECT_THROW(matching_randomized_local(in), CheckFailure);
  }
  {
    LocalInput in;  // randomized: labels are synthesized, not accepted
    in.graph = &g;
    in.edge_labels.assign(static_cast<std::size_t>(g.num_edges()), 0);
    EXPECT_THROW(matching_randomized_local(in), CheckFailure);
  }
  {
    LocalInput in;  // deterministic: ids required
    in.graph = &g;
    EXPECT_THROW(matching_deterministic_local(in), CheckFailure);
  }
  {
    LocalInput in;  // deterministic: ids must fit below 2^28 - 1
    in.graph = &g;
    in.ids = sequential_ids(g.num_nodes());
    in.ids[0] = 1ULL << 28;
    EXPECT_THROW(matching_deterministic_local(in), CheckFailure);
  }
}

TEST(EnginePacked, PlusOnePackedMatchesGenericAndVerifies) {
  Rng rng(0xA1B2);
  const Graph g = make_random_regular(700, 6, rng);
  LocalInput in;
  in.graph = &g;
  in.seed = 41;
  const auto packed = plus_one_local(in);
  EngineOptions generic_opts;
  generic_opts.force_generic = true;
  const auto generic = plus_one_local(in, 0, 1 << 20, generic_opts);
  EXPECT_EQ(packed.rounds, generic.rounds);
  EXPECT_EQ(packed.colors, generic.colors);
  EXPECT_TRUE(packed.completed);
  EXPECT_TRUE(verify_coloring(g, packed.colors, g.max_degree() + 1).ok);
  EXPECT_LT(packed.engine_bytes, generic.engine_bytes);
}

TEST(EnginePacked, PlusOneThreadScheduleAndSimdInvariant) {
  const Graph g = make_complete_tree(600, 3);
  LocalInput in;
  in.graph = &g;
  in.seed = 43;
  const auto base = plus_one_local(in);
  EXPECT_TRUE(base.completed);
  for (const int threads : {1, 2, 8}) {
    for (const EngineSchedule schedule :
         {EngineSchedule::kStatic, EngineSchedule::kWorkStealing}) {
      for (const bool simd : {false, true}) {
        EngineOptions opts;
        opts.threads = threads;
        opts.schedule = schedule;
        opts.simd = simd;
        const auto run = plus_one_local(in, 0, 1 << 20, opts);
        EXPECT_EQ(base.rounds, run.rounds);
        EXPECT_EQ(base.colors, run.colors);
      }
    }
  }
}

TEST(EnginePacked, PlusOneRejectsMalformedInput) {
  const Graph g = make_cycle(16);
  {
    LocalInput in;  // RandLOCAL: ids forbidden
    in.graph = &g;
    in.ids = sequential_ids(g.num_nodes());
    EXPECT_THROW(plus_one_local(in), CheckFailure);
  }
  LocalInput in;
  in.graph = &g;
  EXPECT_THROW(plus_one_local(in, 2), CheckFailure);   // palette < Δ+1
  EXPECT_THROW(plus_one_local(in, 65), CheckFailure);  // palette > mask width
}

// ---------------------------------------------------------------------------
// The EngineOptions::simd toggle on the raw fixtures: vector and scalar
// kernels must agree bit-for-bit on skewed halt schedules at every thread
// count and on both schedulers (per-chunk compaction tails exercise the
// ragged vector-width cases).

TEST(EnginePacked, SimdToggleBitIdenticalOnSkewedFixtures) {
  for (const Graph& g : fixture_graphs()) {
    LocalInput in;
    in.graph = &g;
    in.seed = 0x51D;
    SkewedRandMixer a1;
    EngineOptions scalar_opts;
    scalar_opts.threads = 1;
    scalar_opts.simd = false;
    const auto scalar = run_local(in, a1, 200, nullptr, scalar_opts);
    EXPECT_TRUE(scalar.all_halted);
    for (const int threads : {1, 2, 8}) {
      for (const EngineSchedule schedule :
           {EngineSchedule::kStatic, EngineSchedule::kWorkStealing}) {
        EngineOptions opts;
        opts.threads = threads;
        opts.schedule = schedule;
        opts.simd = true;
        SkewedRandMixer a2;
        const auto vec = run_local(in, a2, 200, nullptr, opts);
        expect_same_run(scalar, vec);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The needs_rng opt-out: an algorithm declaring needs_rng = false gets no
// per-node streams (32 B/node cheaper in RandLOCAL mode) and a loud failure
// if it draws anyway.

struct NoRngPacked {
  static constexpr bool packed_state = true;
  static constexpr bool needs_rng = false;

  struct State {
    std::uint64_t x = 0;
  };

  State init(const NodeEnv& env) {
    return {static_cast<std::uint64_t>(env.index) + 1};
  }

  bool step(State& self, const NodeEnv&, std::span<const State* const> nbrs) {
    for (const State* nb : nbrs) self.x += nb->x;
    return self.x > 1000;
  }
};

struct LyingNoRngPacked {
  static constexpr bool packed_state = true;
  static constexpr bool needs_rng = false;

  struct State {
    std::uint64_t x = 0;
  };

  State init(const NodeEnv&) { return {0}; }

  bool step(State& self, const NodeEnv& env, std::span<const State* const>) {
    self.x = env.random()();  // declared needs_rng = false: must throw
    return true;
  }
};

// Twin of NoRngPacked that keeps the default needs_rng = true: the engine
// footprints of the two runs differ by exactly the per-node stream array.
struct NoRngPackedWithStreams {
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t x = 0;
  };

  State init(const NodeEnv& env) {
    return {static_cast<std::uint64_t>(env.index) + 1};
  }

  bool step(State& self, const NodeEnv&, std::span<const State* const> nbrs) {
    for (const State* nb : nbrs) self.x += nb->x;
    return self.x > 1000;
  }
};

static_assert(detail::needs_rng_v<SkewedRandMixer>);  // default is true
static_assert(!detail::needs_rng_v<NoRngPacked>);

TEST(EnginePacked, NeedsRngOptOutSkipsStreamsAndFailsLoudlyOnDraws) {
  const Graph g = make_cycle(128);
  LocalInput in;  // RandLOCAL (no ids) — would normally allocate streams
  in.graph = &g;
  NoRngPacked lean_algo;
  const auto lean = run_local(in, lean_algo, 100, nullptr, EngineOptions{});
  EXPECT_TRUE(lean.all_halted);
  NoRngPackedWithStreams full_algo;
  const auto full = run_local(in, full_algo, 100, nullptr, EngineOptions{});
  EXPECT_EQ(lean.rounds, full.rounds);
  ASSERT_EQ(lean.states.size(), full.states.size());
  for (std::size_t i = 0; i < lean.states.size(); ++i) {
    EXPECT_EQ(lean.states[i].x, full.states[i].x);
  }
  EXPECT_EQ(full.engine_bytes,
            lean.engine_bytes +
                sizeof(Rng) * static_cast<std::uint64_t>(g.num_nodes()));
  LyingNoRngPacked liar;
  EXPECT_THROW(run_local(in, liar, 10, nullptr, EngineOptions{}),
               CheckFailure);
}

// ---------------------------------------------------------------------------
// Allocation-free certification. The packed engine wraps its round loop in
// AssertNoAlloc when unobserved; a packed step that allocates must therefore
// fail loudly instead of silently degrading the hot path.

struct AllocatingPacked {
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t x = 0;
  };

  State init(const NodeEnv&) { return {1}; }

  bool step(State& self, const NodeEnv&, std::span<const State* const>) {
    std::vector<std::uint64_t> scratch(8, self.x);  // heap churn in the loop
    self.x = scratch.back() + 1;
    return self.x > 3;
  }
};

TEST(EnginePacked, AllocatingStepFailsTheNoAllocCertification) {
#if CKP_SANITIZER_MAY_OWN_ALLOCATOR
  if (!alloc_counting_active()) {
    GTEST_SKIP() << "sanitizer runtime owns operator new; allocation "
                    "counters are idle in this build";
  }
#endif
  const Graph g = make_cycle(64);
  LocalInput in;
  in.graph = &g;
  in.ids = sequential_ids(g.num_nodes());
  AllocatingPacked algo;
  EXPECT_THROW(run_local(in, algo, 10, nullptr, EngineOptions{}),
               CheckFailure);
}

TEST(EnginePacked, PortedAlgorithmsPassTheNoAllocCertification) {
  // These runs go through the guarded round loop; completing without a
  // CheckFailure is the certification. The engine only engages the guard
  // when the interposed counters are live, so skip (rather than pass
  // vacuously) when a sanitizer runtime owns the allocator.
#if CKP_SANITIZER_MAY_OWN_ALLOCATOR
  if (!alloc_counting_active()) {
    GTEST_SKIP() << "sanitizer runtime owns operator new; allocation "
                    "counters are idle in this build";
  }
#endif
  Rng rng(0xCE27);
  const auto inst = make_random_bipartite_regular(128, 3, rng);
  LocalInput rand_in;
  rand_in.graph = &inst.graph;
  rand_in.seed = 2;
  EXPECT_TRUE(mis_luby(rand_in).completed);
  EXPECT_TRUE(mis_ghaffari_local(rand_in).completed);
  EXPECT_TRUE(matching_randomized_local(rand_in).completed);
  EXPECT_TRUE(plus_one_local(rand_in).completed);
  rand_in.edge_labels = inst.edge_color;
  sinkless_local(rand_in);
  LocalInput det_in;
  det_in.graph = &inst.graph;
  det_in.ids = sequential_ids(inst.graph.num_nodes());
  EXPECT_TRUE(greedy_color_local(det_in, 4).completed);
  EXPECT_TRUE(matching_deterministic_local(det_in).completed);
}

}  // namespace
}  // namespace ckp
