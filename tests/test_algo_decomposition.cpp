#include "algo/network_decomposition.hpp"

#include <gtest/gtest.h>

#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_mis.hpp"
#include "test_helpers.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

class LinialSaksZoo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinialSaksZoo, ValidOnAllFixtures) {
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    RoundLedger ledger;
    const auto d = linial_saks_decomposition(g, GetParam(), ledger);
    ASSERT_TRUE(d.completed) << name;
    EXPECT_TRUE(decomposition_valid(g, d, /*diameter_bound=*/0)) << name;
    EXPECT_EQ(d.rounds, ledger.rounds());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinialSaksZoo, ::testing::Values(1u, 2u, 3u));

TEST(LinialSaks, LogManyColorsAndLogDiameter) {
  Rng rng(1801);
  const Graph g = make_random_regular(4096, 6, rng);
  RoundLedger ledger;
  const auto d = linial_saks_decomposition(g, 7, ledger);
  ASSERT_TRUE(d.completed);
  const int logn = ilog2(4096);
  EXPECT_LE(d.num_colors, 6 * logn);
  EXPECT_LE(d.max_weak_diameter, 6 * logn);
  // Exact weak-diameter validation at a generous bound.
  EXPECT_TRUE(decomposition_valid(g, d, 6 * logn));
}

TEST(LinialSaks, DeterministicGivenSeed) {
  Rng rng(1803);
  const Graph g = make_prufer_tree(300, rng);
  RoundLedger l1, l2;
  const auto a = linial_saks_decomposition(g, 5, l1);
  const auto b = linial_saks_decomposition(g, 5, l2);
  EXPECT_EQ(a.color, b.color);
  EXPECT_EQ(a.center, b.center);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(LinialSaks, SingleNodeAndEdge) {
  RoundLedger l1;
  const auto single =
      linial_saks_decomposition(Graph::from_edges(1, {}), 1, l1);
  EXPECT_TRUE(single.completed);
  EXPECT_TRUE(decomposition_valid(Graph::from_edges(1, {}), single, 1));
  RoundLedger l2;
  const Graph k2 = Graph::from_edges(2, {{0, 1}});
  const auto pair = linial_saks_decomposition(k2, 1, l2);
  EXPECT_TRUE(pair.completed);
  EXPECT_TRUE(decomposition_valid(k2, pair, 2));
}

class MisViaDecomposition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MisViaDecomposition, ValidMisOnAllFixtures) {
  for (const auto& [name, g] : testing::small_graph_zoo()) {
    RoundLedger ledger;
    const auto d = linial_saks_decomposition(g, GetParam(), ledger);
    ASSERT_TRUE(d.completed) << name;
    const auto mis = mis_via_decomposition(g, d, ledger);
    EXPECT_TRUE(verify_mis(g, mis.in_set).ok) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisViaDecomposition, ::testing::Values(4u, 9u));

TEST(MisViaDecomposition, RoundsPolylog) {
  // The decomposition pipeline: O(colors · diameter) = polylog rounds —
  // the 2^{O(√log n)}-style route of Result 3, in its randomized form.
  Rng rng(1807);
  const Graph g = make_random_regular(8192, 4, rng);
  RoundLedger ledger;
  const auto d = linial_saks_decomposition(g, 3, ledger);
  ASSERT_TRUE(d.completed);
  const auto mis = mis_via_decomposition(g, d, ledger);
  EXPECT_TRUE(verify_mis(g, mis.in_set).ok);
  const int logn = ilog2(8192);
  EXPECT_LE(ledger.rounds(), 40 * logn * logn);
}

TEST(DecompositionValid, CatchesBrokenDecompositions) {
  const Graph g = make_path(4);
  RoundLedger ledger;
  auto d = linial_saks_decomposition(g, 1, ledger);
  ASSERT_TRUE(d.completed);
  ASSERT_TRUE(decomposition_valid(g, d, 0));
  // Corrupt: give adjacent same-color nodes different clusters.
  auto broken = d;
  broken.color.assign(4, 0);
  broken.center = {0, 1, 2, 3};
  EXPECT_FALSE(decomposition_valid(g, broken, 0));
  // Corrupt: out-of-range color.
  auto bad_color = d;
  bad_color.color[0] = bad_color.num_colors + 5;
  EXPECT_FALSE(decomposition_valid(g, bad_color, 0));
}

}  // namespace
}  // namespace ckp
