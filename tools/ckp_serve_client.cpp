// ckp_serve_client — submit a JSONL job batch to a ckp_serve Unix socket.
//
//   ckp_serve_client --socket=/tmp/ckp.sock [--jobs=FILE] [--quiet]
//
// Reads request lines from --jobs (default stdin), sends them all, then
// prints every response line to stdout until the server has answered each
// op it owes a reply: one terminal response per run job ({"done":...} or
// {"error":...}; the interim {"queued":true} ack is not terminal), one line
// for each cancel/stats, and the {"shutdown":...} ack (after which the
// server closes the connection). Exits 0 when all expected responses
// arrived without protocol errors, 1 when any response was an error line,
// 2 on usage/transport failure — so scripts can assert batch health from
// the exit status alone.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace {

using namespace ckp;

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t put = ::write(fd, data.data() + off, data.size() - off);
    if (put <= 0) return false;
    off += static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    const std::string socket_path = flags.get_string("socket", "");
    const std::string jobs_path = flags.get_string("jobs", "");
    const bool quiet = flags.get_bool("quiet", false);
    flags.check_unknown();
    CKP_CHECK_MSG(!socket_path.empty(),
                  "usage: ckp_serve_client --socket=PATH [--jobs=FILE] "
                  "[--quiet]");

    // Count the terminal responses the batch is owed while buffering it.
    std::ifstream jobs_file;
    std::istream* jobs = &std::cin;
    if (!jobs_path.empty()) {
      jobs_file.open(jobs_path);
      CKP_CHECK_MSG(jobs_file.good(), "cannot open " << jobs_path);
      jobs = &jobs_file;
    }
    std::string batch;
    std::size_t expected = 0;
    std::string line;
    while (std::getline(*jobs, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      batch += line;
      batch += '\n';
      try {
        const JsonValue doc = json_parse(line);
        // Malformed lines still earn exactly one error response.
        (void)doc;
      } catch (const CheckFailure&) {
      }
      ++expected;
    }

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    CKP_CHECK_MSG(fd >= 0, "socket(): " << std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    CKP_CHECK_MSG(socket_path.size() < sizeof(addr.sun_path),
                  "socket path too long: " << socket_path);
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    CKP_CHECK_MSG(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) == 0,
                  "connect(" << socket_path
                             << "): " << std::strerror(errno));
    CKP_CHECK_MSG(write_all(fd, batch), "send failed");

    // Read responses until every request has its terminal line. The interim
    // {"queued":true} ack does not count toward `expected`.
    std::size_t terminal = 0;
    bool saw_error = false;
    std::string buf;
    char chunk[4096];
    while (terminal < expected) {
      const auto eol = buf.find('\n');
      if (eol == std::string::npos) {
        const ssize_t got = ::read(fd, chunk, sizeof(chunk));
        if (got <= 0) break;  // server closed (e.g. after shutdown ack)
        buf.append(chunk, static_cast<std::size_t>(got));
        continue;
      }
      const std::string resp = buf.substr(0, eol);
      buf.erase(0, eol + 1);
      if (!quiet) std::cout << resp << '\n';
      try {
        const JsonValue doc = json_parse(resp);
        if (doc.find("queued") != nullptr) continue;  // non-terminal ack
        if (doc.find("error") != nullptr) saw_error = true;
      } catch (const CheckFailure&) {
        saw_error = true;  // unparseable response is a protocol error
      }
      ++terminal;
    }
    ::close(fd);
    if (terminal < expected) {
      std::cerr << "ckp_serve_client: connection closed with "
                << (expected - terminal) << " response(s) outstanding\n";
      return 2;
    }
    return saw_error ? 1 : 0;
  } catch (const ckp::CheckFailure& e) {
    std::cerr << "ckp_serve_client: " << e.what() << '\n';
    return 2;
  }
}
