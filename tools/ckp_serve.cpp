// ckp_serve — the simulation job server front end.
//
// Two transports over the same JobServer (src/serve/server.hpp):
//
//   * pipe mode (default): requests are JSONL on stdin, responses are JSONL
//     on stdout. One process per batch; EOF or {"op":"shutdown"} ends it.
//
//       ckp_serve --store_dir=STORE --workers=4 < jobs.jsonl
//
//   * socket mode: --socket=PATH binds a Unix stream socket and serves
//     concurrent connections against ONE shared JobServer (shared queue,
//     shared memo, shared workers). Each connection gets a reader thread;
//     responses are routed back to the connection whose request earned them
//     via the JobServer client tag. The server runs until any connection
//     sends {"op":"shutdown"} (which drains every client's jobs first).
//
//       ckp_serve --socket=/tmp/ckp.sock --store_dir=STORE &
//       ckp_serve_client --socket=/tmp/ckp.sock < jobs.jsonl
//
// Flags: --workers (concurrent jobs), --queue_limit, --engine_threads
// (rounds parallelism per job; only effective with --workers=1),
// --store_dir (result memo; empty disables), --heartbeat_every (seconds
// between serve.jobs liveness lines on stderr; 0 = off).
#include <atomic>
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"

namespace {

using namespace ckp;

// Minimal line-buffered reader over a connection fd; handles lines split
// across recv() boundaries.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  // True with the next full line in `out` (newline stripped); false on EOF
  // or error. A final unterminated line is returned before EOF.
  bool next(std::string* out) {
    for (;;) {
      const auto eol = buf_.find('\n');
      if (eol != std::string::npos) {
        *out = buf_.substr(0, eol);
        buf_.erase(0, eol + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got <= 0) {
        if (buf_.empty()) return false;
        *out = std::move(buf_);
        buf_.clear();
        return true;
      }
      buf_.append(chunk, static_cast<std::size_t>(got));
    }
  }

 private:
  int fd_;
  std::string buf_;
};

// Writes the whole buffer, tolerating short writes. Returns false when the
// peer is gone (job results for a vanished client are dropped, not fatal —
// SIGPIPE is ignored in main for the same reason).
bool write_all(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t put = ::write(fd, framed.data() + off, framed.size() - off);
    if (put <= 0) return false;
    off += static_cast<std::size_t>(put);
  }
  return true;
}

int run_pipe_mode(const ServerOptions& options) {
  JobServer server(options, [](const std::string& line) {
    std::cout << line << '\n' << std::flush;
  });
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!server.handle_line(line)) return 0;
  }
  // EOF drains like a shutdown so piped batches always get every terminal
  // response before exit (the destructor drains too; this makes it
  // explicit).
  server.drain();
  return 0;
}

// One accepted connection: the fd plus a write mutex so pool workers
// finishing jobs for this client never interleave bytes with its reader
// thread's immediate responses.
struct Conn {
  int fd = -1;
  std::mutex write_mu;
};

// Connection registry keyed by client tag. Lines for a client that already
// disconnected are dropped (its jobs still run to completion; only the
// responses have nowhere to go).
class ConnTable {
 public:
  std::uint64_t add(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = next_id_++;
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conns_[id] = std::move(conn);
    return id;
  }

  std::shared_ptr<Conn> find(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = conns_.find(id);
    return it == conns_.end() ? nullptr : it->second;
  }

  void remove(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    conns_.erase(id);
  }

  // Half-closes every live connection so blocked readers see EOF (used at
  // shutdown; the reader threads own the final ::close).
  void shutdown_all() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, conn] : conns_) ::shutdown(conn->fd, SHUT_RDWR);
  }

 private:
  std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Conn>> conns_;
  std::uint64_t next_id_ = 1;
};

int run_socket_mode(const ServerOptions& options, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CKP_CHECK_MSG(listener >= 0, "socket(): " << std::strerror(errno));
  ::unlink(path.c_str());  // stale socket from a killed server
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CKP_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                "socket path too long: " << path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  CKP_CHECK_MSG(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "bind(" << path << "): " << std::strerror(errno));
  CKP_CHECK_MSG(::listen(listener, 8) == 0,
                "listen(): " << std::strerror(errno));
  std::cerr << "[serve] listening on " << path << '\n';

  ConnTable conns;
  std::atomic<bool> running{true};
  // One JobServer shared by every connection: one queue, one memo, one
  // worker pool. The sink routes each response line to the connection whose
  // request earned it; a vanished client's lines are dropped.
  JobServer server(options, [&conns](const std::string& line,
                                     std::uint64_t client) {
    const std::shared_ptr<Conn> conn = conns.find(client);
    if (conn == nullptr) return;
    std::lock_guard<std::mutex> lock(conn->write_mu);
    write_all(conn->fd, line);
  });

  std::vector<std::thread> readers;
  while (running.load()) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (!running.load()) break;
      continue;
    }
    const std::uint64_t client = conns.add(fd);
    readers.emplace_back([&, fd, client] {
      FdLineReader reader(fd);
      std::string line;
      while (reader.next(&line)) {
        if (!server.handle_line(line, client)) {
          // Shutdown already drained every client's jobs; close the
          // listener and half-close all peers so the accept loop and the
          // other readers unwind.
          running.store(false);
          ::shutdown(listener, SHUT_RDWR);
          conns.shutdown_all();
          break;
        }
      }
      conns.remove(client);
      ::close(fd);
    });
  }
  for (std::thread& t : readers) t.join();
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  try {
    Flags flags(argc, argv);
    ServerOptions options;
    options.workers = static_cast<int>(flags.get_int("workers", 2));
    options.queue_limit =
        static_cast<int>(flags.get_int("queue_limit", 64));
    options.engine_threads =
        static_cast<int>(flags.get_int("engine_threads", 0));
    options.store_dir = flags.get_string("store_dir", "");
    options.heartbeat_seconds = flags.get_double("heartbeat_every", 0.0);
    const std::string socket_path = flags.get_string("socket", "");
    flags.check_unknown();
    if (socket_path.empty()) return run_pipe_mode(options);
    return run_socket_mode(options, socket_path);
  } catch (const ckp::CheckFailure& e) {
    std::cerr << "ckp_serve: " << e.what() << '\n';
    return 2;
  }
}
