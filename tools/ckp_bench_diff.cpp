// Joins two BENCH_*.json JSON Lines files and flags per-metric regressions.
//
// Each line is one RunRecord (see obs/run_record.hpp). Records are grouped
// by the identity key (bench, algorithm, graph_family, n, delta, threads) —
// seeds aggregate into a mean per metric — and the two files are joined on
// that key. For every requested metric (lower is better: wall times, round
// counts), a joined key regresses when
//
//   baseline > 0  AND  current >= --min-abs  AND  current/baseline > --max-ratio
//
// The --min-abs floor keeps microsecond-scale rows (pure timer noise at PR
// sweep sizes) from tripping the gate; --max-ratio is the slowdown budget.
// Regressions print as a table naming the offending record and metric, and
// the exit status is the gate: 0 = clean, 1 = at least one regression,
// 2 = usage/parse error. Keys present on only one side are reported as
// warnings, never failures — sweeps legitimately grow and shrink across PRs.
//
//   ckp_bench_diff --baseline=BENCH_PR.json --current=BENCH_NEW.json \
//       [--metrics=wall_seconds] [--max-ratio=1.25] [--min-abs=0.001] [--all]
//
// Metric names resolve against the RunRecord fields wall_seconds and rounds
// first, then the record's metrics map. scripts/check_bench_regress.sh wraps
// this binary for CI use.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/run_record.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace ckp;

struct MetricAgg {
  double sum = 0.0;
  std::uint64_t count = 0;

  void add(double v) {
    sum += v;
    ++count;
  }
  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

// Identity key -> metric name -> aggregate. std::map keeps the report in a
// stable, diff-friendly order regardless of input line order.
using KeyedMetrics = std::map<std::string, std::map<std::string, MetricAgg>>;

std::string record_key(const RunRecord& rec) {
  double threads = 1.0;
  for (const auto& [name, value] : rec.metrics()) {
    if (name == "threads") threads = value;
  }
  std::ostringstream key;
  key << rec.bench << '/' << rec.algorithm;
  if (!rec.graph_family.empty()) key << '/' << rec.graph_family;
  if (rec.n != 0) key << "/n=" << rec.n;
  if (rec.delta != 0) key << "/d=" << rec.delta;
  key << "/t=" << static_cast<std::uint64_t>(threads);
  return key.str();
}

// The value of `metric` in `rec`, if present: record fields first, then the
// metrics map.
bool metric_value(const RunRecord& rec, const std::string& metric,
                  double* out) {
  if (metric == "wall_seconds") {
    if (rec.wall_seconds <= 0.0) return false;
    *out = rec.wall_seconds;
    return true;
  }
  if (metric == "rounds") {
    if (rec.rounds <= 0) return false;
    *out = static_cast<double>(rec.rounds);
    return true;
  }
  for (const auto& [name, value] : rec.metrics()) {
    if (name == metric) {
      *out = value;
      return true;
    }
  }
  return false;
}

KeyedMetrics load_jsonl(const std::string& path,
                        const std::vector<std::string>& metrics) {
  std::ifstream in(path);
  CKP_CHECK_MSG(in.good(), "cannot open " << path);
  KeyedMetrics out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    RunRecord rec;
    try {
      rec = RunRecord::from_json_line(line);
    } catch (const CheckFailure& e) {
      CKP_CHECK_MSG(false, path << ':' << lineno
                                << ": bad run record: " << e.what());
    }
    auto& agg = out[record_key(rec)];
    for (const std::string& metric : metrics) {
      double value = 0.0;
      if (metric_value(rec, metric, &value)) agg[metric].add(value);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    const std::string baseline_path = flags.get_string("baseline", "");
    const std::string current_path = flags.get_string("current", "");
    // Strict list semantics (same splitter as --algo rosters): a typo like
    // --metrics=wall_seconds, used to silently drop the empty tail item.
    const std::vector<std::string> metrics =
        flags.get_strings("metrics", {"wall_seconds"});
    const double max_ratio = flags.get_double("max-ratio", 1.25);
    const double min_abs = flags.get_double("min-abs", 1e-3);
    const bool show_all = flags.get_bool("all", false);
    flags.check_unknown();
    CKP_CHECK_MSG(!baseline_path.empty() && !current_path.empty(),
                  "usage: ckp_bench_diff --baseline=OLD.json "
                  "--current=NEW.json [--metrics=wall_seconds] "
                  "[--max-ratio=1.25] [--min-abs=1e-3] [--all]");
    CKP_CHECK_MSG(!metrics.empty(), "--metrics must name at least one metric");
    CKP_CHECK_MSG(max_ratio > 0.0, "--max-ratio must be positive");

    const KeyedMetrics baseline = load_jsonl(baseline_path, metrics);
    const KeyedMetrics current = load_jsonl(current_path, metrics);

    std::size_t joined = 0;
    std::size_t regressions = 0;
    std::size_t improvements = 0;
    Table report({"record", "metric", "baseline", "current", "ratio",
                  "verdict"});
    for (const auto& [key, base_metrics] : baseline) {
      const auto cur_it = current.find(key);
      if (cur_it == current.end()) {
        std::cerr << "[diff] warning: '" << key << "' only in baseline\n";
        continue;
      }
      for (const auto& [metric, base_agg] : base_metrics) {
        const auto cur_metric = cur_it->second.find(metric);
        if (cur_metric == cur_it->second.end()) {
          std::cerr << "[diff] warning: '" << key << "' lacks metric '"
                    << metric << "' in current\n";
          continue;
        }
        ++joined;
        const double base = base_agg.mean();
        const double cur = cur_metric->second.mean();
        const double ratio = base > 0.0 ? cur / base : 0.0;
        const bool regressed =
            base > 0.0 && cur >= min_abs && ratio > max_ratio;
        const bool improved = base >= min_abs && base > 0.0 &&
                              ratio < 1.0 / max_ratio;
        if (regressed) ++regressions;
        if (improved) ++improvements;
        if (regressed || show_all) {
          report.add_row({key, metric, Table::cell(base, 6),
                          Table::cell(cur, 6),
                          base > 0.0 ? Table::cell(ratio, 2) : "-",
                          regressed ? "REGRESSED"
                                    : (improved ? "improved" : "ok")});
        }
      }
    }
    for (const auto& [key, unused] : current) {
      (void)unused;
      if (baseline.find(key) == baseline.end()) {
        std::cerr << "[diff] warning: '" << key << "' only in current\n";
      }
    }

    if (report.rows() > 0) report.print(std::cout);
    std::cout << "[diff] " << joined << " (record, metric) pairs joined on "
              << metrics.size() << " metric(s); " << regressions
              << " regression(s), " << improvements << " improvement(s) at "
              << "max-ratio=" << max_ratio << " min-abs=" << min_abs << '\n';
    if (regressions > 0) {
      std::cout << "[diff] FAIL: current is slower than baseline beyond the "
                << "threshold on the rows above\n";
      return 1;
    }
    std::cout << "[diff] OK: no regressions\n";
    return 0;
  } catch (const ckp::CheckFailure& e) {
    std::cerr << "ckp_bench_diff: " << e.what() << '\n';
    return 2;
  }
}
