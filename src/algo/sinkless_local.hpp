// Sinkless orientation on the strict synchronous engine (RandLOCAL).
//
// The phase-composed claim+repair solver in core/sinkless.cpp charges rounds
// through a ledger; this is the engine-native counterpart, written as a
// per-node program whose single-word bit-field state rides the engine's
// packed fast path. It targets the paper's setting: Δ-regular (more
// generally min-degree >= 2) graphs that come with a proper Δ-edge coloring
// (input.edge_labels), e.g. the union-of-matchings bipartite instances of
// graph/regular.cpp where the matching index is the color.
//
// Protocol (one engine round per iteration):
//
//   * An unsatisfied node always has a pending claim on one incident edge,
//     identified by its *edge color* — colors are proper, so "my claim" is
//     unambiguous to both endpoints without IDs. Each round it resolves the
//     claim against the previous-round state of the neighbor across that
//     edge: it loses if that neighbor already owns the edge (is satisfied
//     and oriented through it) or claimed the same edge with a >= coin draw
//     (ties lose both ways, so at most one endpoint ever wins an edge).
//     Winners become satisfied — their out-edge is the claimed edge, stamped
//     with the winning round as a generation. Losers draw one fresh 64-bit
//     coin and re-claim uniformly among incident edges that are not
//     *reserved* (a reserved edge is the out-edge of an already-satisfied
//     neighbor — claiming it could never succeed and could create a sink).
//   * If every incident edge is reserved the node is deadlocked: all its
//     neighbors point at it. It then *steals* a uniformly random incident
//     edge — declares itself satisfied on it with the current round as
//     generation. The victim (satisfied, same color, strictly smaller
//     generation) notices across the shared edge, unsatisfies itself, and
//     rejoins the claimers; since the victim's other edges cannot all be
//     reserved by nodes pointing at the thief, the displacement walks
//     toward slack and dies out quickly in practice.
//   * A satisfied node halts once its entire neighborhood is satisfied —
//     then no neighbor can initiate a steal against it. A steal *cascade*
//     can in principle unsatisfy a neighbor later and re-victimize a halted
//     node; the post-run consistency check below detects this (the run
//     reports completed = false) rather than returning a silently wrong
//     orientation, keeping the algorithm Las Vegas.
//
// Every claiming node consumes exactly one 64-bit draw per round (init
// included), a deterministic function of its own round history — which is
// what makes results bit-identical across threads, schedulers, and the
// packed/generic engine paths.
#pragma once

#include <cstdint>

#include "lcl/verify_orientation.hpp"
#include "local/context.hpp"
#include "local/engine.hpp"

namespace ckp {

struct SinklessLocalResult {
  Orientation orient;     // ±1 per edge; unclaimed edges default to +1
  int rounds = 0;
  bool completed = true;  // all nodes own a consistent out-edge and halted
  NodeId unsatisfied = 0;  // nodes left without an out-edge (0 if completed)
  std::uint64_t engine_bytes = 0;  // EngineResult::engine_bytes of the run
};

// Runs the engine-native sinkless orientation. Requires RandLOCAL input
// (no ids), min degree >= 2, and input.edge_labels holding a proper edge
// coloring with colors in [0, 256). `max_rounds` < 2^20 - 1 (the state's
// round counter is 20 bits). Verified on success via
// verify_sinkless_orientation.
SinklessLocalResult sinkless_local(const LocalInput& input,
                                   int max_rounds = 1 << 14,
                                   const EngineOptions& options = {});

}  // namespace ckp
