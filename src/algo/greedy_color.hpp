// Schedule-driven greedy (list-)coloring.
//
// Given a proper "schedule" coloring with a small palette P (typically the
// O(Δ²) coloring of Theorem 2), processing schedule classes one per round
// lets every node pick a color knowing all previously processed neighbors'
// choices — the standard way to turn Linial's coloring into greedy
// symmetry breaking. Costs P rounds.
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

// Greedy coloring over `palette` colors driven by `schedule` (a proper
// coloring with values [0, schedule_palette)). Only nodes with
// active[v] != 0 participate; inactive nodes keep colors[v] untouched
// (they may already hold colors that constrain active neighbors if
// `respect_inactive` is true). colors[v] == -1 denotes uncolored.
//
// allowed(v, c) restricts node v's palette (list coloring); pass nullptr
// for the full palette. Throws CheckFailure if some node finds no free
// allowed color — callers must guarantee list sizes exceed constraint
// counts, which is exactly the precondition of the algorithms in the paper.
void greedy_color_by_schedule(
    const Graph& g, const std::vector<int>& schedule, int schedule_palette,
    int palette, std::vector<char> active, bool respect_inactive,
    const std::function<bool(NodeId, int)>& allowed, std::vector<int>& colors,
    RoundLedger& ledger);

}  // namespace ckp
