// Greedy (list-)coloring: a schedule-driven phase variant and an engine-
// native DetLOCAL variant.
//
// greedy_color_by_schedule: given a proper "schedule" coloring with a small
// palette P (typically the O(Δ²) coloring of Theorem 2), processing schedule
// classes one per round lets every node pick a color knowing all previously
// processed neighbors' choices — the standard way to turn Linial's coloring
// into greedy symmetry breaking. Costs P rounds.
//
// greedy_color_local: the classic ID-priority greedy run on the strict
// synchronous engine — a node decides once no undecided neighbor outranks
// it by ID, taking the smallest color unused by decided neighbors. Costs
// O(longest descending-ID path) rounds: O(log n / log log n) w.h.p. under
// random IDs on bounded-degree graphs, Θ(n) worst case under adversarial
// IDs (hence the round cap). Its single-word bit-field state rides the
// engine's packed fast path, which makes it the flagship DetLOCAL workload
// of the scale benches.
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/engine.hpp"

namespace ckp {

// Greedy coloring over `palette` colors driven by `schedule` (a proper
// coloring with values [0, schedule_palette)). Only nodes with
// active[v] != 0 participate; inactive nodes keep colors[v] untouched
// (they may already hold colors that constrain active neighbors if
// `respect_inactive` is true). colors[v] == -1 denotes uncolored.
//
// allowed(v, c) restricts node v's palette (list coloring); pass nullptr
// for the full palette. Throws CheckFailure if some node finds no free
// allowed color — callers must guarantee list sizes exceed constraint
// counts, which is exactly the precondition of the algorithms in the paper.
void greedy_color_by_schedule(
    const Graph& g, const std::vector<int>& schedule, int schedule_palette,
    int palette, std::vector<char> active, bool respect_inactive,
    const std::function<bool(NodeId, int)>& allowed, std::vector<int>& colors,
    RoundLedger& ledger);

struct GreedyColorLocalResult {
  std::vector<int> colors;  // -1 = undecided (only when !completed)
  int rounds = 0;
  bool completed = true;  // false if the round cap was hit
  std::uint64_t engine_bytes = 0;  // EngineResult::engine_bytes of the run
};

// ID-priority greedy coloring on the engine (DetLOCAL: input.ids required,
// each < 2^48). `palette` 0 means Δ(G)+1; any value must be >= Δ(G)+1 and
// <= 64 (the free-color pick is a single 64-bit mask). Deterministic given
// the IDs; bit-identical across threads/schedulers/engine paths.
GreedyColorLocalResult greedy_color_local(const LocalInput& input,
                                          int palette = 0,
                                          int max_rounds = 1 << 20,
                                          const EngineOptions& options = {});

}  // namespace ckp
