#include "algo/mis_deterministic.hpp"

#include "algo/color_reduction.hpp"
#include "algo/linial.hpp"
#include "util/check.hpp"

namespace ckp {

DetMisResult mis_deterministic(const Graph& g,
                               const std::vector<std::uint64_t>& ids, int delta,
                               RoundLedger& ledger,
                               const std::vector<char>& restrict_to) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(ids.size() == static_cast<std::size_t>(n));
  const bool restricted = !restrict_to.empty();
  if (restricted) {
    CKP_CHECK(restrict_to.size() == static_cast<std::size_t>(n));
  }
  const int start_rounds = ledger.rounds();

  auto coloring = linial_coloring(g, ids, delta, ledger);
  // Reduce the schedule to Δ+1 colors first: O(Δ log Δ) rounds once, then
  // only Δ+1 sweep rounds instead of O(Δ²).
  const int schedule_palette = std::min(coloring.palette, delta + 1);
  if (coloring.palette > schedule_palette) {
    reduce_palette_fast(g, coloring.colors, coloring.palette, schedule_palette,
                        ledger);
  }

  DetMisResult out;
  out.schedule_palette = schedule_palette;
  out.in_set.assign(static_cast<std::size_t>(n), 0);
  std::vector<char> blocked(static_cast<std::size_t>(n), 0);
  for (int c = 0; c < schedule_palette; ++c) {
    // One round: class c is independent, so all of its eligible members can
    // join simultaneously without conflicting.
    for (NodeId v = 0; v < n; ++v) {
      if (coloring.colors[static_cast<std::size_t>(v)] != c) continue;
      if (restricted && !restrict_to[static_cast<std::size_t>(v)]) continue;
      if (blocked[static_cast<std::size_t>(v)]) continue;
      out.in_set[static_cast<std::size_t>(v)] = 1;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (coloring.colors[static_cast<std::size_t>(v)] != c ||
          !out.in_set[static_cast<std::size_t>(v)]) {
        continue;
      }
      for (NodeId u : g.neighbors(v)) blocked[static_cast<std::size_t>(u)] = 1;
    }
    ledger.charge(1);
  }
  out.rounds = ledger.rounds() - start_rounds;
  return out;
}

}  // namespace ckp
