#include "algo/matching_local.hpp"

#include <algorithm>
#include <numeric>
#include <span>
#include <unordered_map>

#include "lcl/verify_matching.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

// ---------------------------------------------------------------------------
// Randomized handshake matching. One u64 per node:
//
//   [63:62] status (0 active, 1 matched, 2 retired)
//   [61]    valid: the word carries this iteration's proposal
//   [57:32] proposed edge label (26 bits); after matching, the matched edge
//   [19:0]  iteration counter t (feeds the stateless draws)
//
// An active node's live incident edges are the ports whose neighbor is
// still active (an active node never sees a retired neighbor: a node
// retires only when every neighbor is matched). Each iteration it proposes
// the live edge minimizing (draw, label), where draw = mix_seed(seed,
// label, t) is computed identically by both endpoints; mutual proposals
// match. The globally minimum live edge is always mutual, so every
// iteration makes progress and the matching is maximal on halt.
constexpr int kMrStatusShift = 62;
constexpr std::uint64_t kMrMatched = 1;
constexpr std::uint64_t kMrRetired = 2;
constexpr std::uint64_t kMrValidBit = 1ULL << 61;
constexpr int kMrLabelShift = 32;
constexpr std::uint64_t kMrLabelMask = (1ULL << 26) - 1;
constexpr std::uint64_t kMrIterMask = (1ULL << 20) - 1;

struct MatchRandAlgo {
  static constexpr bool packed_state = true;
  // Draws are stateless hashes of (seed, edge label, iteration); no
  // per-node private streams needed.
  static constexpr bool needs_rng = false;

  struct State {
    std::uint64_t word = 0;
  };

  std::uint64_t seed = 0;  // read-only config

  State init(const NodeEnv&) { return {0}; }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    const std::uint64_t w = self.word;
    if ((w >> kMrStatusShift) != 0) return true;
    const std::uint64_t t = w & kMrIterMask;
    if ((w & kMrValidBit) == 0) {
      // Proposal round: pick the (draw, label)-minimum live edge.
      bool any_live = false;
      std::uint64_t best_draw = 0;
      std::uint64_t best_label = 0;
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        if ((nbrs[k]->word >> kMrStatusShift) != 0) continue;
        const auto label =
            static_cast<std::uint64_t>(env.incident_edge_labels[k]);
        const std::uint64_t draw = mix_seed(seed, label, t);
        if (!any_live || draw < best_draw ||
            (draw == best_draw && label < best_label)) {
          any_live = true;
          best_draw = draw;
          best_label = label;
        }
      }
      if (!any_live) {
        self.word = kMrRetired << kMrStatusShift;
        return true;
      }
      self.word = kMrValidBit | (best_label << kMrLabelShift) | t;
      return false;
    }
    // Resolve round: matched iff the neighbor across the proposed edge
    // proposed the same edge.
    const std::uint64_t my_label = (w >> kMrLabelShift) & kMrLabelMask;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (static_cast<std::uint64_t>(env.incident_edge_labels[k]) != my_label) {
        continue;
      }
      const std::uint64_t nw = nbrs[k]->word;
      if ((nw >> kMrStatusShift) == 0 && (nw & kMrValidBit) &&
          ((nw >> kMrLabelShift) & kMrLabelMask) == my_label) {
        self.word = (kMrMatched << kMrStatusShift) |
                    (my_label << kMrLabelShift);
        return true;
      }
      break;
    }
    self.word = (t + 1) & kMrIterMask;
    return false;
  }
};

// ---------------------------------------------------------------------------
// Deterministic greedy matching by edge priority. One u64 per node:
//
//   [27:0]  own ID (published every round; neighbors read it via ports)
//   [55:28] proposal-target ID (the neighbor across the proposed edge);
//           kMdNoTarget when none, the partner's ID after matching
//   [57:56] status (0 active, 1 matched, 2 retired)
//   [58]    valid: the word carries this round's proposal
//
// Edge {u, v} has priority (min(id_u, id_v) << 28) | max(id_u, id_v),
// computable by either endpoint from the published IDs. Each proposal
// round every active node proposes its minimum-priority live edge; mutual
// proposals match in the resolve round. The globally minimum live edge is
// mutual, so two rounds always retire at least one edge chain link;
// termination is bounded by the longest increasing priority chain.
constexpr std::uint64_t kMdIdMask = (1ULL << 28) - 1;
constexpr std::uint64_t kMdNoTarget = kMdIdMask;
constexpr int kMdTargetShift = 28;
constexpr int kMdStatusShift = 56;
constexpr std::uint64_t kMdMatched = 1;
constexpr std::uint64_t kMdRetired = 2;
constexpr std::uint64_t kMdValidBit = 1ULL << 58;

struct MatchDetAlgo {
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t word = 0;
  };

  State init(const NodeEnv& env) {
    return {(env.id & kMdIdMask) | (kMdNoTarget << kMdTargetShift)};
  }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    const std::uint64_t w = self.word;
    if (((w >> kMdStatusShift) & 3) != 0) return true;
    const std::uint64_t my_id = env.id & kMdIdMask;
    if ((w & kMdValidBit) == 0) {
      // Proposal round. React to neighbors matched last resolve round by
      // dropping them from the live set; retire when nothing is live.
      bool any_live = false;
      std::uint64_t best_prio = 0;
      std::uint64_t best_id = 0;
      for (const State* nb : nbrs) {
        const std::uint64_t nw = nb->word;
        if (((nw >> kMdStatusShift) & 3) != 0) continue;
        const std::uint64_t nid = nw & kMdIdMask;
        const std::uint64_t prio =
            (std::min(my_id, nid) << kMdTargetShift) | std::max(my_id, nid);
        if (!any_live || prio < best_prio) {
          any_live = true;
          best_prio = prio;
          best_id = nid;
        }
      }
      if (!any_live) {
        self.word = my_id | (kMdNoTarget << kMdTargetShift) |
                    (kMdRetired << kMdStatusShift);
        return true;
      }
      self.word = my_id | (best_id << kMdTargetShift) | kMdValidBit;
      return false;
    }
    // Resolve round: matched iff the proposal is mutual.
    const std::uint64_t target = (w >> kMdTargetShift) & kMdIdMask;
    for (const State* nb : nbrs) {
      const std::uint64_t nw = nb->word;
      if ((nw & kMdIdMask) != target) continue;
      if ((nw & kMdValidBit) && ((nw >> kMdStatusShift) & 3) == 0 &&
          ((nw >> kMdTargetShift) & kMdIdMask) == my_id) {
        self.word = my_id | (target << kMdTargetShift) |
                    (kMdMatched << kMdStatusShift);
        return true;
      }
      break;
    }
    self.word = my_id | (kMdNoTarget << kMdTargetShift);
    return false;
  }
};

}  // namespace

MatchingLocalResult matching_randomized_local(const LocalInput& input,
                                              int max_rounds,
                                              const EngineOptions& options) {
  CKP_CHECK_MSG(!input.has_ids(),
                "matching_randomized_local is RandLOCAL: pass no IDs");
  CKP_CHECK_MSG(input.edge_labels.empty(),
                "matching_randomized_local synthesizes its own edge labels");
  CKP_CHECK_MSG(max_rounds <= (1 << 21),
                "round cap exceeds the packed 20-bit iteration counter");
  const Graph& g = *input.graph;
  const EdgeId m = g.num_edges();
  CKP_CHECK_MSG(static_cast<std::uint64_t>(m) < (1ULL << 26),
                "packed proposal field caps matching at 2^26 edges");
  LocalInput labeled = input;
  labeled.edge_labels.resize(static_cast<std::size_t>(m));
  std::iota(labeled.edge_labels.begin(), labeled.edge_labels.end(), 0);

  MatchRandAlgo algo{input.seed};
  const auto run = run_local(labeled, algo, max_rounds, nullptr, options);

  MatchingLocalResult out;
  out.rounds = run.rounds;
  out.completed = run.all_halted;
  out.engine_bytes = run.engine_bytes;
  out.in_matching.assign(static_cast<std::size_t>(m), 0);
  for (const auto& s : run.states) {
    const std::uint64_t status = s.word >> kMrStatusShift;
    CKP_CHECK_MSG(!out.completed || status != 0,
                  "completed run left an undecided node");
    if (status == kMrMatched) {
      out.in_matching[static_cast<std::size_t>((s.word >> kMrLabelShift) &
                                               kMrLabelMask)] = 1;
    }
  }
  if (out.completed) CKP_DCHECK(verify_maximal_matching(g, out.in_matching).ok);
  return out;
}

MatchingLocalResult matching_deterministic_local(const LocalInput& input,
                                                 int max_rounds,
                                                 const EngineOptions& options) {
  CKP_CHECK_MSG(input.has_ids(),
                "matching_deterministic_local is DetLOCAL: IDs required");
  const Graph& g = *input.graph;
  for (const std::uint64_t id : input.ids) {
    CKP_CHECK_MSG(id < kMdNoTarget,
                  "packed matching needs IDs below 2^28 - 1");
  }
  MatchDetAlgo algo;
  const auto run = run_local(input, algo, max_rounds, nullptr, options);

  MatchingLocalResult out;
  out.rounds = run.rounds;
  out.completed = run.all_halted;
  out.engine_bytes = run.engine_bytes;
  const EdgeId m = g.num_edges();
  out.in_matching.assign(static_cast<std::size_t>(m), 0);
  // An edge is matched iff both endpoints halted matched pointing at each
  // other's IDs — recoverable from final states without an ID -> node map.
  for (EdgeId e = 0; e < m; ++e) {
    const auto [a, b] = g.endpoints(e);
    const std::uint64_t wa = run.states[static_cast<std::size_t>(a)].word;
    const std::uint64_t wb = run.states[static_cast<std::size_t>(b)].word;
    if (((wa >> kMdStatusShift) & 3) == kMdMatched &&
        ((wb >> kMdStatusShift) & 3) == kMdMatched &&
        ((wa >> kMdTargetShift) & kMdIdMask) == (wb & kMdIdMask) &&
        ((wb >> kMdTargetShift) & kMdIdMask) == (wa & kMdIdMask)) {
      out.in_matching[static_cast<std::size_t>(e)] = 1;
    }
  }
  if (out.completed) CKP_DCHECK(verify_maximal_matching(g, out.in_matching).ok);
  return out;
}

}  // namespace ckp
