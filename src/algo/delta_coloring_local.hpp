// Engine ports of the paper's Δ-coloring algorithms (Theorems 10 and 11)
// on the packed fast path: one phase-tagged 8-byte word per node, palette
// Ψ_i represented implicitly through neighbors' taken colors, and the
// reserved-palette Phase 2 running as a phase transition inside the same
// word (DESIGN.md §14).
//
// These are engine-native *variants* of the retained `src/core/`
// references, the same way `mis_ghaffari_local` relates to `mis_ghaffari`:
// every decision is a function of the node's own word, its private RNG
// stream, and neighbors' published words, so results are bit-identical
// across threads × schedulers × SIMD backends and across the packed and
// force_generic paths. They are NOT stream-identical to the `src/core/`
// monoliths (those draw from different RNG epochs and use global
// subroutines — induced subgraphs, retry-until-unique IDs — that no 8-byte
// local machine can replicate); the differential tests check the semantic
// contract instead: verified proper Δ-colorings, the same palette
// structure, and the same shattering statistics definitions.
//
//   thm10: ColorBidding/Filtering over the palette {0..Δ-⌊√Δ⌋-1}. Each
//   iteration is a bid round (uniform color from the implicit Ψ) and a
//   resolve round (take the bid if no active neighbor bid it). The
//   reference's Filtering thresholds — driven by the same c_i schedule —
//   mark slow vertices *bad*; bad vertices wait for the globally last
//   possible arrival, then 2-color themselves from the ⌊√Δ⌋ reserved
//   colors by rake order (forest peeling) inside the same word.
//
//   thm11: MIS peeling for colors Δ-1 down to 3 (per-node asynchronous:
//   fresh random rank each round, join on strict local minimum, advance on
//   seeing the iteration's color), then the S / U3 classification and the
//   same rake machine: S 3-colors from {0,1,2}; U3 waits for its S
//   neighbors and always finds a free color in {0,1,2} (its uncolored
//   degree at the handoff is <= 2 and phase-1 colors are >= 3).
//
// Both require a forest (the rake phase peels leaves; on a cyclic input
// the peel stalls and the run ends at max_rounds with completed=false).
// RandLOCAL only: inputs must carry no IDs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/delta_coloring_thm10.hpp"  // Thm10Params (shared schedule)
#include "local/context.hpp"
#include "local/engine.hpp"

namespace ckp {

struct Thm10LocalResult {
  std::vector<int> colors;  // proper Δ-coloring, values [0, Δ); -1 = none
  int rounds = 0;           // engine rounds consumed
  int phase1_iterations = 0;  // t from the c_i schedule
  NodeId bad_vertices = 0;    // nodes filtered into Phase 2 (sticky bit)
  NodeId largest_bad_component = 0;
  bool completed = true;  // false if max_rounds was hit
  std::uint64_t engine_bytes = 0;
};

// Requires: no IDs, forest input, 16 <= Δ <= 511 (9-bit color field), and
// the schedule length t <= 127 (7-bit iteration field; the default
// Thm10Params cap is 64).
Thm10LocalResult delta_coloring_thm10_local(const LocalInput& input,
                                            int max_rounds = 1 << 20,
                                            const EngineOptions& options = {},
                                            const Thm10Params& params = {});

struct Thm11LocalResult {
  std::vector<int> colors;  // proper Δ-coloring, values [0, Δ); -1 = none
  int rounds = 0;
  NodeId phase2_set_size = 0;  // |S| (uncolored, 3 uncolored neighbors)
  NodeId phase2_largest_component = 0;
  NodeId phase3_set_size = 0;  // |U3| (uncolored, <= 2 uncolored neighbors)
  bool completed = true;
  std::uint64_t engine_bytes = 0;
};

// Requires: no IDs, forest input, 7 <= Δ <= 511.
Thm11LocalResult delta_coloring_thm11_local(const LocalInput& input,
                                            int max_rounds = 1 << 20,
                                            const EngineOptions& options = {});

}  // namespace ckp
