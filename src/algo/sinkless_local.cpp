#include "algo/sinkless_local.hpp"

#include <array>
#include <cstdint>
#include <span>

#include "util/check.hpp"

namespace ckp {
namespace {

// Single 64-bit word per node:
//   [31:0]  payload — the claim's 32-bit coin while unsatisfied, the winning
//           round ("generation") while satisfied;
//   [39:32] the claimed / owned edge color;
//   [59:40] the node's own round counter (all nodes start at 0 and step in
//           lockstep, so this equals the engine round — it is how a node
//           stamps generations without the engine exposing a round number);
//   [60]    satisfied.
constexpr std::uint64_t kSoPayloadMask = 0xFFFFFFFFULL;
constexpr int kSoColorShift = 32;
constexpr std::uint64_t kSoColorMask = 0xFF;
constexpr int kSoRoundShift = 40;
constexpr std::uint64_t kSoRoundMask = (1ULL << 20) - 1;
constexpr std::uint64_t kSoSatBit = 1ULL << 60;

std::uint64_t color_of(std::uint64_t w) {
  return (w >> kSoColorShift) & kSoColorMask;
}

struct SinklessAlgo {
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t word = 0;
  };

  State init(const NodeEnv& env) {
    // One draw: high half picks the initial claim port uniformly, low half
    // is the claim's coin.
    const std::uint64_t r = env.random()();
    const auto port = static_cast<std::size_t>(
        (r >> 32) % static_cast<std::uint64_t>(env.degree));
    const auto color =
        static_cast<std::uint64_t>(env.incident_edge_labels[port]);
    return {(color << kSoColorShift) | (r & kSoPayloadMask)};
  }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    const std::uint64_t w = self.word;
    const std::uint64_t round = ((w >> kSoRoundShift) & kSoRoundMask) + 1;
    const std::span<const int> labels = env.incident_edge_labels;
    const std::uint64_t my_color = color_of(w);

    // The port carrying my claimed/owned color (unique: the coloring is
    // proper).
    std::size_t my_port = 0;
    while (static_cast<std::uint64_t>(labels[my_port]) != my_color) ++my_port;
    const std::uint64_t across = nbrs[my_port]->word;

    if (w & kSoSatBit) {
      // Theft check: a same-color satisfied neighbor across my out-edge with
      // a strictly newer generation stole it (strictness is sound: an edge
      // only becomes stealable after its owner was satisfied a full round,
      // so the thief's round exceeds the owner's generation).
      const bool stolen = (across & kSoSatBit) != 0 &&
                          color_of(across) == my_color &&
                          (across & kSoPayloadMask) > (w & kSoPayloadMask);
      if (!stolen) {
        std::uint64_t all_sat = kSoSatBit;
        for (const State* nb : nbrs) all_sat &= nb->word;
        if (all_sat != 0) return true;  // nobody left who could steal from me
        self.word =
            (w & ~(kSoRoundMask << kSoRoundShift)) | (round << kSoRoundShift);
        return false;
      }
      return reclaim(self, env, nbrs, round);
    }

    // Resolve my pending claim against the neighbor across it. I lose to an
    // established owner, or to a contesting claim with coin >= mine (ties
    // lose both ways, so an edge never gains two same-round winners).
    bool lose;
    if (across & kSoSatBit) {
      lose = color_of(across) == my_color;
    } else {
      lose = color_of(across) == my_color &&
             (across & kSoPayloadMask) >= (w & kSoPayloadMask);
    }
    if (!lose) {
      self.word = kSoSatBit | (round << kSoRoundShift) |
                  (my_color << kSoColorShift) | round;  // generation = round
      return false;  // stay awake to watch for theft
    }
    return reclaim(self, env, nbrs, round);
  }

 private:
  // A losing (or just-victimized) node draws one coin and claims a fresh
  // edge among the non-reserved ports; with every port reserved it is
  // deadlocked — all neighbors point at it — and steals a uniformly random
  // one instead.
  static bool reclaim(State& self, const NodeEnv& env,
                      std::span<const State* const> nbrs,
                      std::uint64_t round) {
    const std::span<const int> labels = env.incident_edge_labels;
    const std::uint64_t r = env.random()();
    const auto deg = static_cast<std::size_t>(env.degree);
    std::size_t claimable = 0;
    for (std::size_t k = 0; k < deg; ++k) {
      const std::uint64_t nb = nbrs[k]->word;
      const bool reserved =
          (nb & kSoSatBit) != 0 &&
          color_of(nb) == static_cast<std::uint64_t>(labels[k]);
      claimable += static_cast<std::size_t>(!reserved);
    }
    if (claimable == 0) {
      const auto steal = static_cast<std::size_t>(
          (r >> 32) % static_cast<std::uint64_t>(deg));
      const auto color = static_cast<std::uint64_t>(labels[steal]);
      self.word = kSoSatBit | (round << kSoRoundShift) |
                  (color << kSoColorShift) | round;
      return false;
    }
    auto pick = static_cast<std::size_t>(
        (r >> 32) % static_cast<std::uint64_t>(claimable));
    std::size_t port = 0;
    for (std::size_t k = 0; k < deg; ++k) {
      const std::uint64_t nb = nbrs[k]->word;
      const bool reserved =
          (nb & kSoSatBit) != 0 &&
          color_of(nb) == static_cast<std::uint64_t>(labels[k]);
      if (reserved) continue;
      if (pick == 0) {
        port = k;
        break;
      }
      --pick;
    }
    const auto color = static_cast<std::uint64_t>(labels[port]);
    self.word = (round << kSoRoundShift) | (color << kSoColorShift) |
                (r & kSoPayloadMask);
    return false;
  }
};

}  // namespace

SinklessLocalResult sinkless_local(const LocalInput& input, int max_rounds,
                                   const EngineOptions& options) {
  CKP_CHECK(input.graph != nullptr);
  const Graph& g = *input.graph;
  const NodeId n = g.num_nodes();
  const EdgeId m = g.num_edges();
  CKP_CHECK_MSG(!input.has_ids(), "sinkless_local is RandLOCAL: ids forbidden");
  CKP_CHECK_MSG(max_rounds >= 1 && max_rounds < (1 << 20),
                "max_rounds " << max_rounds
                              << " outside the 20-bit round counter");
  CKP_CHECK_MSG(input.edge_labels.size() == static_cast<std::size_t>(m),
                "sinkless_local needs a proper edge coloring in edge_labels");
  // Colors must fit the 8-bit field and be proper (no repeat at any node).
  std::array<std::uint64_t, 4> seen{};
  for (NodeId v = 0; v < n; ++v) {
    CKP_CHECK_MSG(g.degree(v) >= 2,
                  "sinkless orientation needs min degree >= 2; node "
                      << v << " has degree " << g.degree(v));
    seen.fill(0);
    for (EdgeId e : g.incident_edges(v)) {
      const int c = input.edge_labels[static_cast<std::size_t>(e)];
      CKP_CHECK_MSG(c >= 0 && c < 256, "edge color " << c << " outside [0,256)");
      std::uint64_t& word = seen[static_cast<std::size_t>(c) / 64];
      const std::uint64_t bit = 1ULL << (static_cast<std::size_t>(c) % 64);
      CKP_CHECK_MSG((word & bit) == 0, "edge coloring not proper at node " << v);
      word |= bit;
    }
  }

  SinklessAlgo algo;
  const auto run = run_local(input, algo, max_rounds, nullptr, options);

  SinklessLocalResult out;
  out.rounds = run.rounds;
  out.engine_bytes = run.engine_bytes;
  out.orient.assign(static_cast<std::size_t>(m), std::int8_t{1});

  // Extraction. Each satisfied node claims the incident edge of its owned
  // color; a steal that its victim never processed (the victim halted first —
  // the rare late cascade) leaves an edge with two satisfied endpoints, which
  // the newer generation wins. Nodes left without an out-edge make the run
  // incomplete; unclaimed edges keep the +1 default.
  std::vector<std::uint32_t> owner_gen(static_cast<std::size_t>(m), 0);
  std::vector<char> has_out(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> owner(static_cast<std::size_t>(m), kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t w = run.states[static_cast<std::size_t>(v)].word;
    if ((w & kSoSatBit) == 0) continue;
    const std::uint64_t c = color_of(w);
    const auto gen = static_cast<std::uint32_t>(w & kSoPayloadMask);
    for (EdgeId e : g.incident_edges(v)) {
      if (static_cast<std::uint64_t>(
              input.edge_labels[static_cast<std::size_t>(e)]) != c) {
        continue;
      }
      const std::size_t ei = static_cast<std::size_t>(e);
      // Ties are impossible (see step), but resolve them to the first
      // endpoint so extraction is total either way.
      if (owner[ei] == kInvalidNode || gen > owner_gen[ei]) {
        if (owner[ei] != kInvalidNode) {
          has_out[static_cast<std::size_t>(owner[ei])] = 0;
        }
        owner[ei] = v;
        owner_gen[ei] = gen;
        has_out[static_cast<std::size_t>(v)] = 1;
        out.orient[ei] = g.endpoints(e).first == v ? std::int8_t{1}
                                                   : std::int8_t{-1};
      }
      break;
    }
  }
  out.unsatisfied = 0;
  for (NodeId v = 0; v < n; ++v) {
    out.unsatisfied += has_out[static_cast<std::size_t>(v)] == 0 ? 1 : 0;
  }
  out.completed = run.all_halted && out.unsatisfied == 0 &&
                  verify_sinkless_orientation(g, out.orient).ok;
  return out;
}

}  // namespace ckp
