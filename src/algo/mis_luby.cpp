#include "algo/mis_luby.hpp"

#include <span>

#include "local/engine.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

enum class Status : std::uint8_t { kUndecided, kInMis, kRetired };

struct LubyAlgo {
  struct State {
    Status status = Status::kUndecided;
    std::uint64_t draw = 0;
    bool draw_valid = false;  // whether `draw` belongs to the current iteration
  };

  State init(const NodeEnv& env) {
    State s;
    // First exchange happens in step(); draw now so round 1 can compare.
    s.draw = env.random()();
    s.draw_valid = true;
    return s;
  }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    if (self.status != Status::kUndecided) return true;
    if (self.draw_valid) {
      // Decision sub-round: compare with neighbor draws published last round.
      bool local_min = true;
      for (const State* nb : nbrs) {
        if (nb->status == Status::kUndecided && nb->draw_valid &&
            nb->draw <= self.draw) {
          // Ties keep both out this iteration — safe, and vanishingly rare.
          local_min = false;
          break;
        }
      }
      if (local_min) {
        self.status = Status::kInMis;
        return true;
      }
      self.draw_valid = false;  // publish "no draw" so neighbors resync
      return false;
    }
    // Reaction sub-round: retire next to a new MIS member, else redraw.
    for (const State* nb : nbrs) {
      if (nb->status == Status::kInMis) {
        self.status = Status::kRetired;
        return true;
      }
    }
    self.draw = env.random()();
    self.draw_valid = true;
    return false;
  }
};

}  // namespace

MisResult mis_luby(const LocalInput& input, int max_rounds) {
  LubyAlgo algo;
  const auto run = run_local(input, algo, max_rounds);
  MisResult out;
  out.rounds = run.rounds;
  out.completed = run.all_halted;
  out.in_set.resize(run.states.size());
  for (std::size_t i = 0; i < run.states.size(); ++i) {
    CKP_CHECK_MSG(!out.completed || run.states[i].status != Status::kUndecided,
                  "completed run left an undecided node");
    out.in_set[i] = run.states[i].status == Status::kInMis ? 1 : 0;
  }
  return out;
}

}  // namespace ckp
