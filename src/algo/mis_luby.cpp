#include "algo/mis_luby.hpp"

#include <span>

#include "local/engine.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

// Single 64-bit word per node: [60:0] the current draw, [61] whether the
// draw belongs to the current iteration, [63:62] status (0 = undecided,
// 1 = in MIS, 2 = retired). One word halves the state traffic of the
// 16-byte layout — per round the engine copies and gathers these words, so
// width is the dominant cost at 10^7+ nodes. Draws compare at 61 bits; a
// tie (probability 2^-61 per adjacent pair per iteration) keeps both nodes
// out of this iteration, which is safe.
constexpr std::uint64_t kDrawMask = (1ULL << 61) - 1;
constexpr std::uint64_t kValidBit = 1ULL << 61;
constexpr int kStatusShift = 62;
constexpr std::uint64_t kInMis = 1;
constexpr std::uint64_t kRetired = 2;

struct LubyAlgo {
  // Trivially-copyable POD state: selects the engine's packed fast path
  // (flat state buffers, no cached environments or neighbor-pointer tables;
  // see local/engine.hpp).
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t word = 0;
  };

  State init(const NodeEnv& env) {
    // First exchange happens in step(); draw now so round 1 can compare.
    return {kValidBit | (env.random()() & kDrawMask)};
  }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    const std::uint64_t w = self.word;
    if ((w >> kStatusShift) != 0) return true;
    if (w & kValidBit) {
      // Decision sub-round: compare with neighbor draws published last
      // round. Bits [63:61] == 001 is exactly "undecided with a live draw".
      const std::uint64_t my_draw = w & kDrawMask;
      bool local_min = true;
      for (const State* nb : nbrs) {
        const std::uint64_t nw = nb->word;
        if ((nw >> 61) == 1 && (nw & kDrawMask) <= my_draw) {
          local_min = false;
          break;
        }
      }
      if (local_min) {
        self.word = kInMis << kStatusShift;
        return true;
      }
      self.word = my_draw;  // publish "no draw" so neighbors resync
      return false;
    }
    // Reaction sub-round: retire next to a new MIS member, else redraw.
    for (const State* nb : nbrs) {
      if ((nb->word >> kStatusShift) == kInMis) {
        self.word = kRetired << kStatusShift;
        return true;
      }
    }
    self.word = kValidBit | (env.random()() & kDrawMask);
    return false;
  }
};

}  // namespace

MisResult mis_luby(const LocalInput& input, int max_rounds,
                   const EngineOptions& options) {
  LubyAlgo algo;
  const auto run = run_local(input, algo, max_rounds, nullptr, options);
  MisResult out;
  out.rounds = run.rounds;
  out.completed = run.all_halted;
  out.engine_bytes = run.engine_bytes;
  out.in_set.resize(run.states.size());
  for (std::size_t i = 0; i < run.states.size(); ++i) {
    const std::uint64_t status = run.states[i].word >> kStatusShift;
    CKP_CHECK_MSG(!out.completed || status != 0,
                  "completed run left an undecided node");
    out.in_set[i] = status == kInMis ? 1 : 0;
  }
  return out;
}

}  // namespace ckp
