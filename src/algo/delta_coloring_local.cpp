#include "algo/delta_coloring_local.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "graph/components.hpp"
#include "lcl/verify_coloring.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

// ---------------------------------------------------------------------------
// Theorem 10 — ColorBidding/Filtering + rake-ordered reserve coloring.
//
// Packed word, one u64 per node (DESIGN.md §14):
//
//   [63:62] status (0 active, 1 colored+halted, 2 bad-peeling, 3 bad-removed)
//   [61]    bid-valid (active lockstep: set on bid rounds, clear on resolve)
//   [60]    bad flag, sticky through coloring (shattering stats recovery)
//   [59:51] color: the bid on bid rounds, the final color once colored
//           (Δ <= 511; the all-ones value is the "null bid" that keeps an
//           empty-palette node in lockstep)
//   [50:44] completed phase-1 iterations (t <= 127)
//   bad-peeling:  [7:0]  wait countdown to the global phase-2 start
//   bad-removed:  [42:16] rake depth r, [15:0] tie-break token
//
// Phase 1 is a strict 2-round lockstep: odd rounds bid one uniform color
// from the implicit palette Ψ (all phase-1 colors minus colored neighbors'
// colors), even rounds take the bid if no active neighbor bid the same
// color (simultaneous takes are then never adjacent). The bid round also
// evaluates the reference's Filtering for the iteration that just resolved
// — Ψ and the active degree are recomputed fresh from the snapshot, which
// matches the reference's timing (filter(i) reads Ψ_{i+1} and N'_{i+1},
// with newly-bad neighbors still counted active, exactly as the array
// version's simultaneous filter pass does).
//
// A bad vertex idles until round 2t+3, when every possible arrival
// (including the forced round-t filter) is published, so the bad set is
// frozen before anyone peels. Phase 2 then rakes the bad forest: a node
// with <= 1 unremoved bad neighbor removes itself at depth r = 1 + max of
// its removed neighbors' depths, and colors from the ⌊√Δ⌋ reserved colors
// once every bad neighbor is either colored or removed with a strictly
// smaller (r, token). At most one bad neighbor can precede a node in that
// order (at removal time it had <= 1 neighbor at depth >= its own), so 2
// reserved colors always suffice and reserve >= 3 never runs dry. Equal
// (r, token) pairs redraw the token; the order is strict otherwise, so no
// two adjacent bad vertices ever color in the same round.
constexpr int kT10StatusShift = 62;
constexpr std::uint64_t kT10Active = 0;
constexpr std::uint64_t kT10Colored = 1;
constexpr std::uint64_t kT10BadPeel = 2;
constexpr std::uint64_t kT10BadRemoved = 3;
constexpr std::uint64_t kT10BidValidBit = 1ULL << 61;
constexpr std::uint64_t kT10BadBit = 1ULL << 60;
constexpr int kT10ColorShift = 51;
constexpr std::uint64_t kT10ColorMask = 0x1FF;
constexpr std::uint64_t kT10NullBid = 0x1FF;
constexpr int kT10IterShift = 44;
constexpr std::uint64_t kT10IterMask = 0x7F;
constexpr int kT10RShift = 16;
constexpr std::uint64_t kT10RMask = 0x7FFFFFF;
constexpr std::uint64_t kT10TokenMask = 0xFFFF;
constexpr std::uint64_t kT10WaitMask = 0xFF;
constexpr int kPsiWords = 8;  // 512 colors / 64

struct Thm10LocalAlgo {
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t word = 0;
  };

  // Read-only config (engine contract: step must not mutate shared state).
  int delta = 0;
  int palette = 0;     // phase-1 palette size P = Δ - reserve
  int reserve = 0;     // reserved colors [P, P + reserve)
  int iterations = 0;  // t = schedule length
  double p1_threshold = 0.0;  // Δ/α
  std::vector<double> c;      // the c_i schedule, c[i-1] = c_i

  State init(const NodeEnv&) { return {0}; }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) const {
    const std::uint64_t w = self.word;
    const std::uint64_t status = w >> kT10StatusShift;
    if (status == kT10Colored) return true;

    if (status == kT10Active) {
      if (w & kT10BidValidBit) {
        // Resolve round: take the bid unless an active neighbor bid it too.
        const std::uint64_t bid = (w >> kT10ColorShift) & kT10ColorMask;
        const std::uint64_t it = (w >> kT10IterShift) & kT10IterMask;
        if (bid != kT10NullBid) {
          bool contested = false;
          for (const State* nb : nbrs) {
            const std::uint64_t nw = nb->word;
            if ((nw >> kT10StatusShift) != kT10Active) continue;
            if (!(nw & kT10BidValidBit)) continue;
            if (((nw >> kT10ColorShift) & kT10ColorMask) == bid) {
              contested = true;
              break;
            }
          }
          if (!contested) {
            self.word =
                (kT10Colored << kT10StatusShift) | (bid << kT10ColorShift);
            return true;
          }
        }
        self.word = it << kT10IterShift;
        return false;
      }

      // Bid round. Ψ and the active degree come fresh from the snapshot.
      const auto it =
          static_cast<int>((w >> kT10IterShift) & kT10IterMask);
      std::uint64_t psi[kPsiWords];
      const int words = (palette + 63) / 64;
      for (int i = 0; i < words; ++i) psi[i] = ~0ULL;
      if (palette % 64 != 0) psi[words - 1] = (1ULL << (palette % 64)) - 1;
      int active_nbrs = 0;
      for (const State* nb : nbrs) {
        const std::uint64_t nw = nb->word;
        const std::uint64_t ns = nw >> kT10StatusShift;
        if (ns == kT10Active) {
          ++active_nbrs;
        } else if (ns == kT10Colored) {
          const auto c_nb =
              static_cast<int>((nw >> kT10ColorShift) & kT10ColorMask);
          if (c_nb < palette) psi[c_nb >> 6] &= ~(1ULL << (c_nb & 63));
        }
      }
      int psi_count = 0;
      for (int i = 0; i < words; ++i) psi_count += std::popcount(psi[i]);

      if (it >= 1) {
        // Filtering(i) for the just-resolved iteration i = it.
        bool bad;
        if (it >= iterations) {
          bad = true;
        } else if (it == 1) {
          bad = static_cast<double>(psi_count - active_nbrs) < p1_threshold;
        } else {
          bad = static_cast<double>(active_nbrs) >
                static_cast<double>(delta) / c[static_cast<std::size_t>(it)];
        }
        if (bad) {
          const auto wait =
              static_cast<std::uint64_t>(2 * (iterations - it) + 1);
          self.word = (kT10BadPeel << kT10StatusShift) | kT10BadBit | wait;
          return false;
        }
      }

      std::uint64_t bid = kT10NullBid;
      if (psi_count > 0) {
        auto k = static_cast<int>(
            env.random().next_below(static_cast<std::uint64_t>(psi_count)));
        for (int i = 0; i < words; ++i) {
          const int pc = std::popcount(psi[i]);
          if (k >= pc) {
            k -= pc;
            continue;
          }
          std::uint64_t x = psi[i];
          while (k-- > 0) x &= x - 1;
          bid = static_cast<std::uint64_t>(i * 64 + std::countr_zero(x));
          break;
        }
      }
      self.word = (static_cast<std::uint64_t>(it + 1) << kT10IterShift) |
                  kT10BidValidBit | (bid << kT10ColorShift);
      return false;
    }

    if (status == kT10BadPeel) {
      const std::uint64_t wait = w & kT10WaitMask;
      if (wait > 0) {
        self.word = (w & ~kT10WaitMask) | (wait - 1);
        return false;
      }
      int unremoved = 0;
      std::uint64_t max_r = 0;
      for (const State* nb : nbrs) {
        const std::uint64_t nw = nb->word;
        if (!(nw & kT10BadBit)) continue;
        const std::uint64_t ns = nw >> kT10StatusShift;
        if (ns == kT10BadPeel) {
          ++unremoved;
        } else if (ns == kT10BadRemoved) {
          max_r = std::max(max_r, (nw >> kT10RShift) & kT10RMask);
        }
      }
      if (unremoved <= 1) {
        const std::uint64_t r = max_r + 1;
        CKP_CHECK_MSG(r <= kT10RMask, "thm10 rake depth overflow");
        self.word = (kT10BadRemoved << kT10StatusShift) | kT10BadBit |
                    (r << kT10RShift) | (env.random()() & kT10TokenMask);
      }
      return false;
    }

    // Bad-removed: color once every bad neighbor is colored or strictly
    // smaller in (r, token); redraw the token on an exact tie.
    const std::uint64_t my_r = (w >> kT10RShift) & kT10RMask;
    const std::uint64_t my_token = w & kT10TokenMask;
    std::uint64_t used = 0;  // reserve <= 22 for Δ <= 511
    for (const State* nb : nbrs) {
      const std::uint64_t nw = nb->word;
      if (!(nw & kT10BadBit)) continue;
      const std::uint64_t ns = nw >> kT10StatusShift;
      if (ns == kT10BadPeel) return false;
      if (ns == kT10BadRemoved) {
        const std::uint64_t nr = (nw >> kT10RShift) & kT10RMask;
        const std::uint64_t ntok = nw & kT10TokenMask;
        if (nr > my_r || (nr == my_r && ntok > my_token)) return false;
        if (nr == my_r && ntok == my_token) {
          self.word = (w & ~kT10TokenMask) | (env.random()() & kT10TokenMask);
          return false;
        }
        continue;
      }
      const auto c_nb =
          static_cast<int>((nw >> kT10ColorShift) & kT10ColorMask);
      if (c_nb >= palette) used |= 1ULL << (c_nb - palette);
    }
    for (int c_pick = 0; c_pick < reserve; ++c_pick) {
      if ((used >> c_pick) & 1) continue;
      const auto color = static_cast<std::uint64_t>(palette + c_pick);
      self.word = (kT10Colored << kT10StatusShift) | kT10BadBit |
                  (color << kT10ColorShift);
      return true;
    }
    CKP_CHECK_MSG(false, "thm10 rake: no reserved color available");
    return false;
  }
};

// Mirror of the reference's anonymous-namespace schedule (the reference
// stays untouched as the differential oracle, so this is duplicated).
std::vector<double> thm10_c_schedule(int delta, const Thm10Params& p) {
  const double cap =
      std::max(2.0, std::pow(static_cast<double>(delta), p.cap_exponent));
  std::vector<double> c;
  c.push_back(1.0);
  c.push_back(p.alpha / (p.alpha - 1.0));
  while (c.back() < cap && static_cast<int>(c.size()) < p.max_iterations) {
    const double prev = c.back();
    c.push_back(std::min(cap, prev * std::exp(prev / p.growth_divisor)));
  }
  return c;
}

// ---------------------------------------------------------------------------
// Theorem 11 — asynchronous MIS peeling + the same rake machine for the
// S / U3 residue, palette {0,1,2}.
//
// Packed word (DESIGN.md §14):
//
//   [63:61] status (0 undecided, 1 colored+halted, 2 p1-waiting,
//                   3 member-waiting, 4 peeling, 5 removed)
//   [60]    in_S  } sticky classification bits, exactly one set from
//   [59]    in_U3 } member-waiting on; both survive coloring (stats)
//   [58:50] color (Δ <= 511)
//   undecided: [49] rank-valid, [48:40] iteration j, [31:0] rank
//   removed:   [42:16] rake depth r, [15:0] tie-break token
//
// Phase 1 runs per-node asynchronously: at iteration j (color c_j = Δ-j,
// j = 1..Δ-3) an undecided node publishes a fresh 32-bit rank every round;
// it advances to j+1 when a neighbor holds color c_j, and joins (takes
// c_j, halts) when its published rank is strictly below every same-j
// published neighbor rank (vacuously when alone). Two adjacent joins of
// the same color would need each rank strictly below the other, so color
// classes stay independent; and an uncolored survivor was dominated at
// every iteration, giving it Δ-3 distinctly-colored neighbors — the
// reference's "<= 3 uncolored neighbors" invariant, checked at
// classification.
//
// The handoff then synchronizes locally: p1-waiting until no neighbor is
// still undecided (freezing the uncolored degree), classify into S (3
// uncolored neighbors) or U3 (<= 2), member-waiting until every phase-2
// neighbor is classified (freezing the membership bits), then rake within
// the own class. S picks the smallest free color in {0,1,2} (only S
// neighbors can hold those). U3 additionally waits for its S neighbors to
// color and also picks from {0,1,2}: with k2 S-neighbors and k3
// U3-neighbors, k2 + k3 <= 2 and phase-1 colors are >= 3, so at least
// 3 - k2 - k3 >= 1 of {0,1,2} is always free — the packed counterpart of
// the reference's phase-3 availability argument.
constexpr int kT11StatusShift = 61;
constexpr std::uint64_t kT11Undecided = 0;
constexpr std::uint64_t kT11Colored = 1;
constexpr std::uint64_t kT11P1Wait = 2;
constexpr std::uint64_t kT11MemberWait = 3;
constexpr std::uint64_t kT11Peeling = 4;
constexpr std::uint64_t kT11Removed = 5;
constexpr std::uint64_t kT11InSBit = 1ULL << 60;
constexpr std::uint64_t kT11InU3Bit = 1ULL << 59;
constexpr std::uint64_t kT11SideMask = kT11InSBit | kT11InU3Bit;
constexpr int kT11ColorShift = 50;
constexpr std::uint64_t kT11ColorMask = 0x1FF;
constexpr std::uint64_t kT11RankValidBit = 1ULL << 49;
constexpr int kT11JShift = 40;
constexpr std::uint64_t kT11JMask = 0x1FF;
constexpr std::uint64_t kT11RankMask = 0xFFFFFFFF;
constexpr int kT11RShift = 16;
constexpr std::uint64_t kT11RMask = 0x7FFFFFF;
constexpr std::uint64_t kT11TokenMask = 0xFFFF;

struct Thm11LocalAlgo {
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t word = 0;
  };

  int delta = 0;  // read-only config
  int jmax = 0;   // Δ - 3 peeling iterations

  State init(const NodeEnv&) {
    // Undecided at j = 1, no rank published yet.
    return {1ULL << kT11JShift};
  }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) const {
    const std::uint64_t w = self.word;
    const std::uint64_t status = w >> kT11StatusShift;

    switch (status) {
      case kT11Colored:
        return true;

      case kT11Undecided: {
        const auto j = static_cast<int>((w >> kT11JShift) & kT11JMask);
        const auto target = static_cast<std::uint64_t>(delta - j);
        const bool have_rank = (w & kT11RankValidBit) != 0;
        const std::uint64_t my_rank = w & kT11RankMask;
        bool out_trigger = false;
        bool strict_min = true;
        for (const State* nb : nbrs) {
          const std::uint64_t nw = nb->word;
          const std::uint64_t ns = nw >> kT11StatusShift;
          if (ns == kT11Colored) {
            if (((nw >> kT11ColorShift) & kT11ColorMask) == target) {
              out_trigger = true;
              break;
            }
            continue;
          }
          if (!have_rank || ns != kT11Undecided) continue;
          if (!(nw & kT11RankValidBit)) continue;
          if (((nw >> kT11JShift) & kT11JMask) !=
              static_cast<std::uint64_t>(j)) {
            continue;
          }
          if ((nw & kT11RankMask) <= my_rank) strict_min = false;
        }
        if (out_trigger) {
          if (j + 1 > jmax) {
            self.word = kT11P1Wait << kT11StatusShift;
            return false;
          }
          self.word = (static_cast<std::uint64_t>(j + 1) << kT11JShift) |
                      kT11RankValidBit | (env.random()() & kT11RankMask);
          return false;
        }
        if (have_rank && strict_min) {
          self.word =
              (kT11Colored << kT11StatusShift) | (target << kT11ColorShift);
          return true;
        }
        self.word = (static_cast<std::uint64_t>(j) << kT11JShift) |
                    kT11RankValidBit | (env.random()() & kT11RankMask);
        return false;
      }

      case kT11P1Wait: {
        // The uncolored degree is frozen once no neighbor is undecided.
        int udeg = 0;
        for (const State* nb : nbrs) {
          const std::uint64_t nw = nb->word;
          const std::uint64_t ns = nw >> kT11StatusShift;
          if (ns == kT11Undecided) return false;
          const bool member =
              ns != kT11Colored || (nw & kT11SideMask) != 0;
          if (member) ++udeg;
        }
        CKP_CHECK_MSG(udeg <= 3,
                      "thm11 phase-1 invariant violated: uncolored degree "
                          << udeg);
        self.word = (kT11MemberWait << kT11StatusShift) |
                    (udeg == 3 ? kT11InSBit : kT11InU3Bit);
        return false;
      }

      case kT11MemberWait: {
        // Rake only once every phase-2 neighbor carries its side bit.
        for (const State* nb : nbrs) {
          if ((nb->word >> kT11StatusShift) == kT11P1Wait) return false;
        }
        self.word = (kT11Peeling << kT11StatusShift) | (w & kT11SideMask);
        return false;
      }

      case kT11Peeling: {
        const std::uint64_t my_side = w & kT11SideMask;
        int unremoved = 0;
        std::uint64_t max_r = 0;
        for (const State* nb : nbrs) {
          const std::uint64_t nw = nb->word;
          if (!(nw & my_side)) continue;
          const std::uint64_t ns = nw >> kT11StatusShift;
          if (ns == kT11MemberWait || ns == kT11Peeling) {
            ++unremoved;
          } else if (ns == kT11Removed) {
            max_r = std::max(max_r, (nw >> kT11RShift) & kT11RMask);
          }
        }
        if (unremoved <= 1) {
          const std::uint64_t r = max_r + 1;
          CKP_CHECK_MSG(r <= kT11RMask, "thm11 rake depth overflow");
          self.word = (kT11Removed << kT11StatusShift) | my_side |
                      (r << kT11RShift) | (env.random()() & kT11TokenMask);
        }
        return false;
      }

      default: {
        // Removed: color from {0,1,2} once every same-class neighbor is
        // colored or strictly smaller in (r, token); U3 additionally waits
        // for its S neighbors (their {0,1,2} colors must be known).
        const std::uint64_t my_side = w & kT11SideMask;
        const std::uint64_t my_r = (w >> kT11RShift) & kT11RMask;
        const std::uint64_t my_token = w & kT11TokenMask;
        std::uint64_t used = 0;
        for (const State* nb : nbrs) {
          const std::uint64_t nw = nb->word;
          const std::uint64_t ns = nw >> kT11StatusShift;
          if ((my_side == kT11InU3Bit) && (nw & kT11InSBit) &&
              ns != kT11Colored) {
            return false;
          }
          if (nw & my_side) {
            if (ns == kT11MemberWait || ns == kT11Peeling) return false;
            if (ns == kT11Removed) {
              const std::uint64_t nr = (nw >> kT11RShift) & kT11RMask;
              const std::uint64_t ntok = nw & kT11TokenMask;
              if (nr > my_r || (nr == my_r && ntok > my_token)) return false;
              if (nr == my_r && ntok == my_token) {
                self.word =
                    (w & ~kT11TokenMask) | (env.random()() & kT11TokenMask);
                return false;
              }
              continue;
            }
          }
          if (ns == kT11Colored) {
            const std::uint64_t c_nb = (nw >> kT11ColorShift) & kT11ColorMask;
            if (c_nb < 3) used |= 1ULL << c_nb;
          }
        }
        for (std::uint64_t c_pick = 0; c_pick < 3; ++c_pick) {
          if ((used >> c_pick) & 1) continue;
          self.word = (kT11Colored << kT11StatusShift) | my_side |
                      (c_pick << kT11ColorShift);
          return true;
        }
        CKP_CHECK_MSG(false, "thm11 rake: no color in {0,1,2} available");
        return false;
      }
    }
  }
};

}  // namespace

Thm10LocalResult delta_coloring_thm10_local(const LocalInput& input,
                                            int max_rounds,
                                            const EngineOptions& options,
                                            const Thm10Params& params) {
  CKP_CHECK_MSG(!input.has_ids(),
                "delta_coloring_thm10_local is RandLOCAL: pass no IDs");
  const Graph& g = *input.graph;
  const int delta = input.effective_delta();
  CKP_CHECK_MSG(delta >= 16, "Theorem 10 implementation needs Δ >= 16");
  CKP_CHECK_MSG(delta <= 511,
                "Δ exceeds the packed 9-bit color field (Δ <= 511)");
  CKP_CHECK_MSG(delta >= g.max_degree(), "delta below the true max degree");

  Thm10LocalAlgo algo;
  algo.delta = delta;
  algo.reserve =
      static_cast<int>(isqrt(static_cast<std::uint64_t>(delta)));
  algo.palette = delta - algo.reserve;
  CKP_CHECK(algo.reserve >= 3 && algo.palette >= 1);
  algo.p1_threshold = static_cast<double>(delta) / params.alpha;
  algo.c = thm10_c_schedule(delta, params);
  algo.iterations = static_cast<int>(algo.c.size());
  CKP_CHECK_MSG(algo.iterations <= 127,
                "schedule length exceeds the 7-bit iteration field");

  const auto run = run_local(input, algo, max_rounds, nullptr, options);

  Thm10LocalResult out;
  out.rounds = run.rounds;
  out.completed = run.all_halted;
  out.engine_bytes = run.engine_bytes;
  out.phase1_iterations = algo.iterations;
  const NodeId n = g.num_nodes();
  out.colors.assign(static_cast<std::size_t>(n), -1);
  std::vector<char> bad(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t w = run.states[static_cast<std::size_t>(v)].word;
    const std::uint64_t status = w >> kT10StatusShift;
    CKP_CHECK_MSG(!out.completed || status == kT10Colored,
                  "completed thm10 run left an uncolored node");
    if (status == kT10Colored) {
      out.colors[static_cast<std::size_t>(v)] =
          static_cast<int>((w >> kT10ColorShift) & kT10ColorMask);
    }
    if (w & kT10BadBit) {
      bad[static_cast<std::size_t>(v)] = 1;
      ++out.bad_vertices;
    }
  }
  out.largest_bad_component = components_of_subset(g, bad).largest();
  if (out.completed) CKP_DCHECK(verify_coloring(g, out.colors, delta).ok);
  return out;
}

Thm11LocalResult delta_coloring_thm11_local(const LocalInput& input,
                                            int max_rounds,
                                            const EngineOptions& options) {
  CKP_CHECK_MSG(!input.has_ids(),
                "delta_coloring_thm11_local is RandLOCAL: pass no IDs");
  const Graph& g = *input.graph;
  const int delta = input.effective_delta();
  CKP_CHECK_MSG(delta >= 7, "Theorem 11 implementation needs Δ >= 7");
  CKP_CHECK_MSG(delta <= 511,
                "Δ exceeds the packed 9-bit color field (Δ <= 511)");
  CKP_CHECK_MSG(delta >= g.max_degree(), "delta below the true max degree");

  Thm11LocalAlgo algo;
  algo.delta = delta;
  algo.jmax = delta - 3;

  const auto run = run_local(input, algo, max_rounds, nullptr, options);

  Thm11LocalResult out;
  out.rounds = run.rounds;
  out.completed = run.all_halted;
  out.engine_bytes = run.engine_bytes;
  const NodeId n = g.num_nodes();
  out.colors.assign(static_cast<std::size_t>(n), -1);
  std::vector<char> in_s(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t w = run.states[static_cast<std::size_t>(v)].word;
    const std::uint64_t status = w >> kT11StatusShift;
    CKP_CHECK_MSG(!out.completed || status == kT11Colored,
                  "completed thm11 run left an uncolored node");
    if (status == kT11Colored) {
      out.colors[static_cast<std::size_t>(v)] =
          static_cast<int>((w >> kT11ColorShift) & kT11ColorMask);
    }
    if (w & kT11InSBit) {
      in_s[static_cast<std::size_t>(v)] = 1;
      ++out.phase2_set_size;
    }
    if (w & kT11InU3Bit) ++out.phase3_set_size;
  }
  out.phase2_largest_component = components_of_subset(g, in_s).largest();
  if (out.completed) CKP_DCHECK(verify_coloring(g, out.colors, delta).ok);
  return out;
}

}  // namespace ckp
