#include "algo/matching_deterministic.hpp"

#include <algorithm>

#include "algo/mis_deterministic.hpp"
#include "graph/line_graph.hpp"
#include "util/check.hpp"

namespace ckp {

DetMatchingResult matching_deterministic(const Graph& g,
                                         const std::vector<std::uint64_t>& ids,
                                         RoundLedger& ledger) {
  CKP_CHECK(ids.size() == static_cast<std::size_t>(g.num_nodes()));
  for (auto id : ids) {
    CKP_CHECK_MSG(id < (1ULL << 32), "node IDs must fit in 32 bits");
  }
  const Graph lg = line_graph(g);
  std::vector<std::uint64_t> edge_ids(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    const std::uint64_t a = ids[static_cast<std::size_t>(u)];
    const std::uint64_t b = ids[static_cast<std::size_t>(v)];
    edge_ids[static_cast<std::size_t>(e)] =
        (std::min(a, b) << 32) | std::max(a, b);
  }
  const int lg_delta = std::max(lg.max_degree(), 1);

  DetMatchingResult out;
  const int start_rounds = ledger.rounds();
  const auto mis = mis_deterministic(lg, edge_ids, lg_delta, ledger);
  out.in_matching.assign(mis.in_set.begin(), mis.in_set.end());
  out.rounds = ledger.rounds() - start_rounds;
  return out;
}

}  // namespace ckp
