#include "algo/plus_one_coloring.hpp"

#include <algorithm>

#include "algo/color_reduction.hpp"
#include "algo/greedy_color.hpp"
#include "algo/linial.hpp"
#include "graph/components.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "util/check.hpp"

namespace ckp {

PlusOneResult plus_one_coloring_randomized(const Graph& g, int delta,
                                           std::uint64_t seed,
                                           RoundLedger& ledger,
                                           const PlusOneParams& params) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(delta >= g.max_degree());
  const int palette = delta + 1;
  const int start_rounds = ledger.rounds();

  PlusOneResult out;
  out.colors.assign(static_cast<std::size_t>(n), -1);

  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    rngs.push_back(node_rng(seed, static_cast<std::uint64_t>(v), 0xC1));
  }

  std::vector<int> candidate(static_cast<std::size_t>(n), -1);
  std::vector<char> avail(static_cast<std::size_t>(palette), 0);
  NodeId uncolored = n;
  const int limit = params.shatter_iterations > 0 ? params.shatter_iterations
                                                  : params.max_iterations;
  int it = 0;
  for (; it < limit && uncolored > 0; ++it) {
    // Trial: draw a uniform candidate from the available palette.
    for (NodeId v = 0; v < n; ++v) {
      candidate[static_cast<std::size_t>(v)] = -1;
      if (out.colors[static_cast<std::size_t>(v)] != -1) continue;
      std::fill(avail.begin(), avail.end(), 1);
      for (NodeId u : g.neighbors(v)) {
        const int cu = out.colors[static_cast<std::size_t>(u)];
        if (cu >= 0) avail[static_cast<std::size_t>(cu)] = 0;
      }
      int count = 0;
      for (int c = 0; c < palette; ++c) count += avail[static_cast<std::size_t>(c)];
      CKP_CHECK(count >= 1);  // palette Δ+1 always leaves a free color
      auto pick = static_cast<int>(
          rngs[static_cast<std::size_t>(v)].next_below(static_cast<std::uint64_t>(count)));
      for (int c = 0; c < palette; ++c) {
        if (avail[static_cast<std::size_t>(c)] && pick-- == 0) {
          candidate[static_cast<std::size_t>(v)] = c;
          break;
        }
      }
    }
    // Keep the candidate unless an uncolored neighbor drew the same color.
    for (NodeId v = 0; v < n; ++v) {
      const int mine = candidate[static_cast<std::size_t>(v)];
      if (mine < 0) continue;
      bool contested = false;
      for (NodeId u : g.neighbors(v)) {
        if (out.colors[static_cast<std::size_t>(u)] == -1 &&
            candidate[static_cast<std::size_t>(u)] == mine) {
          contested = true;
          break;
        }
      }
      if (!contested) {
        out.colors[static_cast<std::size_t>(v)] = mine;
        --uncolored;
      }
    }
    ledger.charge(2);  // candidate exchange + commit exchange
  }
  out.randomized_iterations = it;
  out.residue_nodes = uncolored;

  if (uncolored > 0) {
    std::vector<char> residue(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      residue[static_cast<std::size_t>(v)] =
          out.colors[static_cast<std::size_t>(v)] == -1;
    }
    out.largest_residue_component = components_of_subset(g, residue).largest();
    if (params.shatter_iterations > 0) {
      // Deterministic finish with locally generated random IDs: Theorem 2
      // schedule reduced to Δ+1 classes, then greedy list coloring. With
      // palette Δ+1 a free color always exists, so this is failure-free.
      std::vector<std::uint64_t> rand_ids(static_cast<std::size_t>(n));
      for (std::uint64_t epoch = 1;; ++epoch) {
        for (NodeId v = 0; v < n; ++v) {
          rand_ids[static_cast<std::size_t>(v)] =
              node_rng(seed, static_cast<std::uint64_t>(v), epoch ^ 0xC2)();
        }
        if (ids_unique(rand_ids)) break;
      }
      auto schedule = linial_coloring(g, rand_ids, delta, ledger);
      reduce_palette_fast(g, schedule.colors, schedule.palette, palette,
                          ledger);
      greedy_color_by_schedule(g, schedule.colors, palette, palette, residue,
                               /*respect_inactive=*/true, nullptr, out.colors,
                               ledger);
      uncolored = 0;
    }
  }
  out.completed = (uncolored == 0);
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(!out.completed ||
             verify_coloring(g, out.colors, palette).ok);
  return out;
}

PlusOneResult plus_one_coloring_deterministic(
    const Graph& g, const std::vector<std::uint64_t>& ids, int delta,
    RoundLedger& ledger) {
  CKP_CHECK(delta >= g.max_degree());
  const int start_rounds = ledger.rounds();
  PlusOneResult out;
  auto coloring = linial_coloring(g, ids, delta, ledger);
  const int palette = delta + 1;
  if (coloring.palette > palette) {
    reduce_palette_fast(g, coloring.colors, coloring.palette, palette, ledger);
  }
  out.colors = std::move(coloring.colors);
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(verify_coloring(g, out.colors, palette).ok);
  return out;
}

}  // namespace ckp
