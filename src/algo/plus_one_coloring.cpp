#include "algo/plus_one_coloring.hpp"

#include <algorithm>
#include <bit>
#include <span>

#include "algo/color_reduction.hpp"
#include "algo/greedy_color.hpp"
#include "algo/linial.hpp"
#include "graph/components.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "util/check.hpp"

namespace ckp {

PlusOneResult plus_one_coloring_randomized(const Graph& g, int delta,
                                           std::uint64_t seed,
                                           RoundLedger& ledger,
                                           const PlusOneParams& params) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(delta >= g.max_degree());
  const int palette = delta + 1;
  const int start_rounds = ledger.rounds();

  PlusOneResult out;
  out.colors.assign(static_cast<std::size_t>(n), -1);

  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    rngs.push_back(node_rng(seed, static_cast<std::uint64_t>(v), 0xC1));
  }

  std::vector<int> candidate(static_cast<std::size_t>(n), -1);
  std::vector<char> avail(static_cast<std::size_t>(palette), 0);
  NodeId uncolored = n;
  const int limit = params.shatter_iterations > 0 ? params.shatter_iterations
                                                  : params.max_iterations;
  int it = 0;
  for (; it < limit && uncolored > 0; ++it) {
    // Trial: draw a uniform candidate from the available palette.
    for (NodeId v = 0; v < n; ++v) {
      candidate[static_cast<std::size_t>(v)] = -1;
      if (out.colors[static_cast<std::size_t>(v)] != -1) continue;
      std::fill(avail.begin(), avail.end(), 1);
      for (NodeId u : g.neighbors(v)) {
        const int cu = out.colors[static_cast<std::size_t>(u)];
        if (cu >= 0) avail[static_cast<std::size_t>(cu)] = 0;
      }
      int count = 0;
      for (int c = 0; c < palette; ++c) count += avail[static_cast<std::size_t>(c)];
      CKP_CHECK(count >= 1);  // palette Δ+1 always leaves a free color
      auto pick = static_cast<int>(
          rngs[static_cast<std::size_t>(v)].next_below(static_cast<std::uint64_t>(count)));
      for (int c = 0; c < palette; ++c) {
        if (avail[static_cast<std::size_t>(c)] && pick-- == 0) {
          candidate[static_cast<std::size_t>(v)] = c;
          break;
        }
      }
    }
    // Keep the candidate unless an uncolored neighbor drew the same color.
    for (NodeId v = 0; v < n; ++v) {
      const int mine = candidate[static_cast<std::size_t>(v)];
      if (mine < 0) continue;
      bool contested = false;
      for (NodeId u : g.neighbors(v)) {
        if (out.colors[static_cast<std::size_t>(u)] == -1 &&
            candidate[static_cast<std::size_t>(u)] == mine) {
          contested = true;
          break;
        }
      }
      if (!contested) {
        out.colors[static_cast<std::size_t>(v)] = mine;
        --uncolored;
      }
    }
    ledger.charge(2);  // candidate exchange + commit exchange
  }
  out.randomized_iterations = it;
  out.residue_nodes = uncolored;

  if (uncolored > 0) {
    std::vector<char> residue(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      residue[static_cast<std::size_t>(v)] =
          out.colors[static_cast<std::size_t>(v)] == -1;
    }
    out.largest_residue_component = components_of_subset(g, residue).largest();
    if (params.shatter_iterations > 0) {
      // Deterministic finish with locally generated random IDs: Theorem 2
      // schedule reduced to Δ+1 classes, then greedy list coloring. With
      // palette Δ+1 a free color always exists, so this is failure-free.
      std::vector<std::uint64_t> rand_ids(static_cast<std::size_t>(n));
      for (std::uint64_t epoch = 1;; ++epoch) {
        for (NodeId v = 0; v < n; ++v) {
          rand_ids[static_cast<std::size_t>(v)] =
              node_rng(seed, static_cast<std::uint64_t>(v), epoch ^ 0xC2)();
        }
        if (ids_unique(rand_ids)) break;
      }
      auto schedule = linial_coloring(g, rand_ids, delta, ledger);
      reduce_palette_fast(g, schedule.colors, schedule.palette, palette,
                          ledger);
      greedy_color_by_schedule(g, schedule.colors, palette, palette, residue,
                               /*respect_inactive=*/true, nullptr, out.colors,
                               ledger);
      uncolored = 0;
    }
  }
  out.completed = (uncolored == 0);
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(!out.completed ||
             verify_coloring(g, out.colors, palette).ok);
  return out;
}

PlusOneResult plus_one_coloring_deterministic(
    const Graph& g, const std::vector<std::uint64_t>& ids, int delta,
    RoundLedger& ledger) {
  CKP_CHECK(delta >= g.max_degree());
  const int start_rounds = ledger.rounds();
  PlusOneResult out;
  auto coloring = linial_coloring(g, ids, delta, ledger);
  const int palette = delta + 1;
  if (coloring.palette > palette) {
    reduce_palette_fast(g, coloring.colors, coloring.palette, palette, ledger);
  }
  out.colors = std::move(coloring.colors);
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(verify_coloring(g, out.colors, palette).ok);
  return out;
}

namespace {

// Packed word for the engine port, one u64 per node:
//
//   [5:0] candidate color (while trying) / final color (once decided)
//   [6]   decided (terminal; the node halts the round it sets this)
//   [7]   trying: the word carries this iteration's candidate
//
// Try round: an undecided node removes decided neighbors' colors from the
// palette and draws a uniform candidate from what is left (never empty with
// palette >= Δ+1: at most deg <= Δ colors are taken). Resolve round: the
// candidate sticks unless a trying neighbor drew the same one (both sides
// retry — the conflict test is symmetric, preserving lockstep). Exactly one
// RNG call per try round, so results are bit-identical across engine
// paths, thread counts, and schedulers.
constexpr std::uint64_t kPoColorMask = 0x3F;
constexpr std::uint64_t kPoDecidedBit = 1ULL << 6;
constexpr std::uint64_t kPoTryingBit = 1ULL << 7;

struct PlusOneLocalAlgo {
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t word = 0;
  };

  int palette = 0;  // read-only config; in [1, 64]

  State init(const NodeEnv&) { return {0}; }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    const std::uint64_t w = self.word;
    if (w & kPoDecidedBit) return true;
    if ((w & kPoTryingBit) == 0) {
      // Try round.
      std::uint64_t used = 0;
      for (const State* nb : nbrs) {
        const std::uint64_t nw = nb->word;
        if (nw & kPoDecidedBit) used |= 1ULL << (nw & kPoColorMask);
      }
      const std::uint64_t avail =
          (palette >= 64 ? ~0ULL : (1ULL << palette) - 1) & ~used;
      CKP_DCHECK(avail != 0);
      const int pick = static_cast<int>(env.random().next_below(
          static_cast<std::uint64_t>(std::popcount(avail))));
      // Select the pick-th set bit of the availability mask.
      std::uint64_t mask = avail;
      for (int i = 0; i < pick; ++i) mask &= mask - 1;
      const auto color =
          static_cast<std::uint64_t>(std::countr_zero(mask));
      self.word = kPoTryingBit | color;
      return false;
    }
    // Resolve round.
    const std::uint64_t my_color = w & kPoColorMask;
    for (const State* nb : nbrs) {
      const std::uint64_t nw = nb->word;
      if ((nw & kPoTryingBit) && !(nw & kPoDecidedBit) &&
          (nw & kPoColorMask) == my_color) {
        self.word = 0;
        return false;
      }
    }
    self.word = kPoDecidedBit | my_color;
    return true;
  }
};

}  // namespace

PlusOneLocalResult plus_one_local(const LocalInput& input, int palette,
                                  int max_rounds,
                                  const EngineOptions& options) {
  CKP_CHECK_MSG(!input.has_ids(), "plus_one_local is RandLOCAL: pass no IDs");
  const Graph& g = *input.graph;
  const int delta = g.max_degree();
  if (palette <= 0) palette = delta + 1;
  CKP_CHECK_MSG(palette >= delta + 1,
                "trial coloring needs palette >= Δ+1 so a color is always "
                "available");
  CKP_CHECK_MSG(palette <= 64, "packed palette mask caps colors at 64");
  PlusOneLocalAlgo algo{palette};
  const auto run = run_local(input, algo, max_rounds, nullptr, options);

  PlusOneLocalResult out;
  out.rounds = run.rounds;
  out.completed = run.all_halted;
  out.engine_bytes = run.engine_bytes;
  out.colors.resize(run.states.size(), -1);
  for (std::size_t i = 0; i < run.states.size(); ++i) {
    const std::uint64_t w = run.states[i].word;
    CKP_CHECK_MSG(!out.completed || (w & kPoDecidedBit),
                  "completed run left an uncolored node");
    if (w & kPoDecidedBit) {
      out.colors[i] = static_cast<int>(w & kPoColorMask);
    }
  }
  if (out.completed) CKP_DCHECK(verify_coloring(g, out.colors, palette).ok);
  return out;
}

}  // namespace ckp
