// Leader election / extrema flooding on the strict synchronous engine.
//
// The second reference algorithm written against local/engine.hpp (Luby's
// MIS is the first): every node floods the maximum ID it has heard; knowing
// n, a node halts once the value has been stable for n rounds... which would
// be Θ(n). The standard fix implemented here uses the *distance* the value
// travelled: each node tracks (best id, hops since best changed) and halts
// when the stability counter exceeds the declared n (a safe horizon) — or,
// when a diameter bound is declared via LocalInput::declared_n, that bound.
// The measured round count is Θ(ecc(leader)) + stability margin, exercising
// engine halting semantics, per-node heterogeneous halting times, and the
// declared-parameter plumbing.
#pragma once

#include <cstdint>
#include <vector>

#include "local/context.hpp"

namespace ckp {

struct LeaderElectionResult {
  std::vector<std::uint64_t> leader_seen;  // per node: the elected maximum ID
  NodeId leader = kInvalidNode;            // index holding the maximum ID
  int rounds = 0;
  bool completed = true;
};

// DetLOCAL: requires input.ids. `stability_margin` controls how many stable
// exchanges a node waits before halting (default: diameter-safe margin of
// declared n; pass a diameter bound for tight termination).
LeaderElectionResult elect_leader(const LocalInput& input,
                                  int stability_margin = 0);

}  // namespace ckp
