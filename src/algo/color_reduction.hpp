// Standard color-class elimination: reduce a proper k-coloring to a proper
// `target`-coloring (target >= Δ+1) in k - target rounds, recoloring one
// color class per round (a color class is an independent set, so its nodes
// recolor simultaneously).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

// `colors` is a proper coloring with values in [0, from_palette). Rewrites it
// into a proper coloring with values in [0, target). Requires
// target >= Δ(G)+1 and target <= from_palette. Costs from_palette - target
// rounds (one class per round).
void reduce_palette(const Graph& g, std::vector<int>& colors, int from_palette,
                    int target, RoundLedger& ledger);

// Blocked-halving reduction: partition the palette into blocks of 2·target
// colors; in parallel, every block eliminates its upper half class-by-class
// into its lower half (a node has <= Δ < target constraining neighbors
// inside its own block, so a free color always exists), then compacts.
// Each halving pass costs `target` rounds, so the total is
// O(target · log(from_palette/target)) — the standard trick that turns the
// O(Δ²)-round naive reduction into O(Δ log Δ).
void reduce_palette_fast(const Graph& g, std::vector<int>& colors,
                         int from_palette, int target, RoundLedger& ledger);

}  // namespace ckp
