#include "algo/matching_randomized.hpp"

#include "util/check.hpp"

namespace ckp {

MatchingResult matching_randomized(const Graph& g, std::uint64_t seed,
                                   RoundLedger& ledger, int max_iterations) {
  const EdgeId m = g.num_edges();
  const NodeId n = g.num_nodes();
  MatchingResult out;
  out.in_matching.assign(static_cast<std::size_t>(m), 0);
  std::vector<char> live(static_cast<std::size_t>(m), 1);
  std::vector<char> node_matched(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> draw(static_cast<std::size_t>(m), 0);

  // Each edge's randomness is derived from a per-edge stream; in a real
  // deployment one endpoint (say the smaller port) would draw on the edge's
  // behalf, which costs no extra rounds.
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(m));
  for (EdgeId e = 0; e < m; ++e) {
    rngs.push_back(node_rng(seed, static_cast<std::uint64_t>(e), /*epoch=*/7));
  }

  const int start_rounds = ledger.rounds();
  EdgeId live_count = m;
  int it = 0;
  for (; it < max_iterations && live_count > 0; ++it) {
    for (EdgeId e = 0; e < m; ++e) {
      if (live[static_cast<std::size_t>(e)]) {
        draw[static_cast<std::size_t>(e)] = rngs[static_cast<std::size_t>(e)]();
      }
    }
    // An edge joins if its draw is a strict minimum among live edges sharing
    // an endpoint.
    std::vector<char> joins(static_cast<std::size_t>(m), 0);
    for (EdgeId e = 0; e < m; ++e) {
      if (!live[static_cast<std::size_t>(e)]) continue;
      bool is_min = true;
      const auto [a, b] = g.endpoints(e);
      for (NodeId endpoint : {a, b}) {
        for (EdgeId f : g.incident_edges(endpoint)) {
          if (f != e && live[static_cast<std::size_t>(f)] &&
              draw[static_cast<std::size_t>(f)] <=
                  draw[static_cast<std::size_t>(e)]) {
            is_min = false;
            break;
          }
        }
        if (!is_min) break;
      }
      joins[static_cast<std::size_t>(e)] = is_min;
    }
    for (EdgeId e = 0; e < m; ++e) {
      if (!joins[static_cast<std::size_t>(e)]) continue;
      out.in_matching[static_cast<std::size_t>(e)] = 1;
      const auto [a, b] = g.endpoints(e);
      node_matched[static_cast<std::size_t>(a)] = 1;
      node_matched[static_cast<std::size_t>(b)] = 1;
    }
    for (EdgeId e = 0; e < m; ++e) {
      if (!live[static_cast<std::size_t>(e)]) continue;
      const auto [a, b] = g.endpoints(e);
      if (node_matched[static_cast<std::size_t>(a)] ||
          node_matched[static_cast<std::size_t>(b)]) {
        live[static_cast<std::size_t>(e)] = 0;
        --live_count;
      }
    }
    ledger.charge(2);  // draw exchange + join/retire exchange
  }
  out.completed = (live_count == 0);
  out.rounds = ledger.rounds() - start_rounds;
  return out;
}

}  // namespace ckp
