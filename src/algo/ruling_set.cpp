#include "algo/ruling_set.hpp"

#include "algo/mis_deterministic.hpp"
#include "algo/mis_luby.hpp"
#include "graph/power.hpp"
#include "lcl/verify_ruling_set.hpp"
#include "util/check.hpp"

namespace ckp {

RulingSetResult ruling_set_deterministic(const Graph& g, int beta,
                                         const std::vector<std::uint64_t>& ids,
                                         RoundLedger& ledger) {
  CKP_CHECK(beta >= 1);
  const int start_rounds = ledger.rounds();
  const Graph power = power_graph(g, beta);

  RulingSetResult out;
  out.power_delta = power.max_degree();
  RoundLedger inner;
  const auto mis = mis_deterministic(power, ids, std::max(1, power.max_degree()),
                                     inner);
  // Every power-graph round is β real rounds, plus β to collect the ball.
  ledger.charge(inner.rounds() * beta + beta);
  out.in_set = mis.in_set;
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(verify_ruling_set(g, out.in_set, beta + 1, beta).ok);
  return out;
}

RulingSetResult ruling_set_randomized(const Graph& g, int beta,
                                      std::uint64_t seed, RoundLedger& ledger) {
  CKP_CHECK(beta >= 1);
  const int start_rounds = ledger.rounds();
  const Graph power = power_graph(g, beta);

  RulingSetResult out;
  out.power_delta = power.max_degree();
  LocalInput in;
  in.graph = &power;
  in.seed = seed;
  const auto mis = mis_luby(in);
  out.completed = mis.completed;
  ledger.charge(mis.rounds * beta + beta);
  out.in_set = mis.in_set;
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(!out.completed ||
             verify_ruling_set(g, out.in_set, beta + 1, beta).ok);
  return out;
}

}  // namespace ckp
