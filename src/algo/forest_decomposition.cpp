#include "algo/forest_decomposition.hpp"

#include "util/check.hpp"

namespace ckp {

ForestDecomposition decompose_forest(const Graph& g, int threshold,
                                     RoundLedger& ledger) {
  CKP_CHECK(threshold >= 1);
  const NodeId n = g.num_nodes();
  ForestDecomposition out;
  out.threshold = threshold;
  out.layer.assign(static_cast<std::size_t>(n), -1);

  std::vector<int> residual_degree(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    residual_degree[static_cast<std::size_t>(v)] = g.degree(v);
  }
  NodeId remaining = n;
  int layer = 0;
  while (remaining > 0) {
    // One synchronous round: every remaining node with residual degree
    // <= threshold peels simultaneously.
    std::vector<NodeId> peeled;
    for (NodeId v = 0; v < n; ++v) {
      if (out.layer[static_cast<std::size_t>(v)] == -1 &&
          residual_degree[static_cast<std::size_t>(v)] <= threshold) {
        peeled.push_back(v);
      }
    }
    CKP_CHECK_MSG(!peeled.empty(),
                  "peeling stalled: residual min degree > " << threshold);
    for (NodeId v : peeled) out.layer[static_cast<std::size_t>(v)] = layer;
    for (NodeId v : peeled) {
      for (NodeId u : g.neighbors(v)) {
        --residual_degree[static_cast<std::size_t>(u)];
      }
    }
    remaining -= static_cast<NodeId>(peeled.size());
    ++layer;
    ledger.charge(1);
  }
  out.num_layers = layer;
  return out;
}

bool decomposition_valid(const Graph& g, const ForestDecomposition& d) {
  if (d.layer.size() != static_cast<std::size_t>(g.num_nodes())) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const int lv = d.layer[static_cast<std::size_t>(v)];
    if (lv < 0 || lv >= d.num_layers) return false;
    int up = 0;
    for (NodeId u : g.neighbors(v)) {
      if (d.layer[static_cast<std::size_t>(u)] >= lv) ++up;
    }
    if (up > d.threshold) return false;
  }
  return true;
}

}  // namespace ckp
