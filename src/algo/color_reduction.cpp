#include "algo/color_reduction.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {

void reduce_palette(const Graph& g, std::vector<int>& colors, int from_palette,
                    int target, RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(colors.size() == static_cast<std::size_t>(n));
  CKP_CHECK_MSG(target >= g.max_degree() + 1,
                "target palette must exceed the maximum degree");
  CKP_CHECK(target <= from_palette);

  // Bucket the high color classes once so each elimination round only
  // touches its own class (the simulation cost is what the LOCAL model
  // makes free; keeping it near-linear keeps large sweeps feasible).
  std::vector<std::vector<NodeId>> buckets(
      static_cast<std::size_t>(from_palette));
  for (NodeId v = 0; v < n; ++v) {
    const int c = colors[static_cast<std::size_t>(v)];
    CKP_CHECK(c >= 0 && c < from_palette);
    if (c >= target) buckets[static_cast<std::size_t>(c)].push_back(v);
  }

  std::vector<char> used(static_cast<std::size_t>(target), 0);
  for (int c = from_palette - 1; c >= target; --c) {
    // All nodes of class c recolor in one round; they are pairwise
    // non-adjacent, so their simultaneous choices cannot conflict.
    for (NodeId v : buckets[static_cast<std::size_t>(c)]) {
      std::fill(used.begin(), used.end(), 0);
      for (NodeId u : g.neighbors(v)) {
        const int cu = colors[static_cast<std::size_t>(u)];
        if (cu >= 0 && cu < target) used[static_cast<std::size_t>(cu)] = 1;
      }
      int pick = 0;
      while (used[static_cast<std::size_t>(pick)]) ++pick;
      CKP_CHECK(pick < target);  // guaranteed by target >= Δ+1
      colors[static_cast<std::size_t>(v)] = pick;
    }
    ledger.charge(1);
  }
}

void reduce_palette_fast(const Graph& g, std::vector<int>& colors,
                         int from_palette, int target, RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(colors.size() == static_cast<std::size_t>(n));
  CKP_CHECK_MSG(target >= g.max_degree() + 1,
                "target palette must exceed the maximum degree");
  CKP_CHECK(target <= from_palette);
  for (NodeId v = 0; v < n; ++v) {
    const int c = colors[static_cast<std::size_t>(v)];
    CKP_CHECK(c >= 0 && c < from_palette);
  }

  int k = from_palette;
  std::vector<char> used(static_cast<std::size_t>(target), 0);
  while (k > target) {
    const int block = 2 * target;
    // Sub-round r (r = 0..target-1): in every block simultaneously, the
    // class at offset target + r recolors into its block's lower half.
    // Classes are independent sets and blocks use disjoint ranges, so all
    // simultaneous choices are conflict-free.
    const int passes = std::min(target, k - target);
    for (int r = 0; r < passes; ++r) {
      bool someone_moved = false;
      for (NodeId v = 0; v < n; ++v) {
        const int c = colors[static_cast<std::size_t>(v)];
        const int offset = c % block;
        if (offset != target + r || c >= k) continue;
        const int base = c - offset;
        std::fill(used.begin(), used.end(), 0);
        for (NodeId u : g.neighbors(v)) {
          const int cu = colors[static_cast<std::size_t>(u)];
          if (cu >= base && cu < base + target) {
            used[static_cast<std::size_t>(cu - base)] = 1;
          }
        }
        int pick = 0;
        while (used[static_cast<std::size_t>(pick)]) ++pick;
        CKP_CHECK(pick < target);
        colors[static_cast<std::size_t>(v)] = base + pick;
        someone_moved = true;
      }
      (void)someone_moved;
      ledger.charge(1);
    }
    // Compaction: color (b·block + offset) with offset < target becomes
    // b·target + offset. Purely local renaming — no communication.
    for (NodeId v = 0; v < n; ++v) {
      const int c = colors[static_cast<std::size_t>(v)];
      const int b = c / block;
      const int offset = c % block;
      CKP_CHECK(offset < target);
      colors[static_cast<std::size_t>(v)] = b * target + offset;
    }
    k = static_cast<int>(ceil_div(static_cast<std::uint64_t>(k),
                                  static_cast<std::uint64_t>(block))) *
        target;
  }
  for (NodeId v = 0; v < n; ++v) {
    CKP_CHECK(colors[static_cast<std::size_t>(v)] < target);
  }
}

}  // namespace ckp
