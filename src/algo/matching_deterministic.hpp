// Deterministic maximal matching in O(Δ² + log* n) rounds: maximal matching
// in G equals MIS in the line graph L(G), whose nodes (the edges of G)
// inherit unique IDs from their endpoints' IDs. Each L(G) round is simulated
// by O(1) rounds in G; the ledger charges L(G) rounds directly (the constant
// simulation overhead is documented, not hidden in the asymptotics).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

struct DetMatchingResult {
  std::vector<char> in_matching;  // per edge
  int rounds = 0;
};

// `ids` are the DetLOCAL node IDs; they must fit in 32 bits so that edge IDs
// (endpoint-ID pairs) stay unique 64-bit values.
DetMatchingResult matching_deterministic(const Graph& g,
                                         const std::vector<std::uint64_t>& ids,
                                         RoundLedger& ledger);

}  // namespace ckp
