// Luby's randomized MIS, written against the strict synchronous engine.
//
// Each iteration (two engine rounds): every undecided node draws a random
// 64-bit value and publishes it; a node joins the MIS if its draw is a
// strict local minimum among undecided neighbors, then nodes adjacent to a
// new MIS member retire. Terminates in O(log n) iterations with high
// probability. This is the reference RandLOCAL algorithm exercising the
// structural-locality engine (local/engine.hpp); the phase-composed
// algorithms elsewhere use the array style with explicit round ledgers.
#pragma once

#include <vector>

#include "local/context.hpp"
#include "local/engine.hpp"

namespace ckp {

struct MisResult {
  std::vector<char> in_set;
  int rounds = 0;
  bool completed = true;  // false if the round cap was hit
  std::uint64_t engine_bytes = 0;  // EngineResult::engine_bytes of the run
};

// Runs Luby's algorithm under `input` (RandLOCAL: ids may be empty).
// `max_rounds` caps engine rounds (2 per Luby iteration). `options` selects
// threads/scheduler/engine path; results are bit-identical across all of
// them (the state is packed, so the default is the engine's fast path).
MisResult mis_luby(const LocalInput& input, int max_rounds = 1 << 20,
                   const EngineOptions& options = {});

}  // namespace ckp
