// (Δ+1)-coloring — the introduction's central problem family.
//
// Randomized trial coloring: every uncolored vertex draws a uniformly
// random candidate from its current available palette (palette minus the
// colors fixed at neighbors) and keeps it unless an uncolored neighbor drew
// the same candidate. Each vertex succeeds with constant probability per
// iteration, so O(log n) iterations finish everything w.h.p.
//
// Shattering hybrid (the [14]/BEPS pattern Theorem 3 proves necessary):
// stop the randomized phase after O(log Δ)+O(1) iterations — the residue
// then has only small components w.h.p. — and finish deterministically by
// schedule-driven greedy list coloring (with palette Δ+1 every vertex always
// has a free color, so the finish never fails regardless of shattering
// quality; shattering only controls the *time*).
//
// The deterministic baseline is Theorem 2 + blocked palette reduction:
// O(Δ log Δ + log* n) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/engine.hpp"

namespace ckp {

struct PlusOneParams {
  // 0 = run the randomized phase to completion (O(log n) w.h.p.);
  // > 0 = stop after this many iterations and finish deterministically.
  int shatter_iterations = 0;
  int max_iterations = 1 << 20;
};

struct PlusOneResult {
  std::vector<int> colors;  // proper (delta+1)-coloring
  int rounds = 0;
  int randomized_iterations = 0;
  NodeId residue_nodes = 0;              // uncolored when the phase stopped
  NodeId largest_residue_component = 0;  // shattering quality
  bool completed = true;
};

// RandLOCAL (Δ+1)-coloring; delta >= Δ(G).
PlusOneResult plus_one_coloring_randomized(const Graph& g, int delta,
                                           std::uint64_t seed,
                                           RoundLedger& ledger,
                                           const PlusOneParams& params = {});

// DetLOCAL baseline: Theorem 2 coloring reduced to Δ+1 colors.
PlusOneResult plus_one_coloring_deterministic(
    const Graph& g, const std::vector<std::uint64_t>& ids, int delta,
    RoundLedger& ledger);

// Engine port of the randomized trial coloring on the packed fast path (one
// 8-byte word per node; DESIGN.md §11). Runs the randomized phase to
// completion — two engine rounds per trial iteration. RandLOCAL only;
// `palette` (default Δ+1) is capped at 64 so the availability mask is one
// word.
struct PlusOneLocalResult {
  std::vector<int> colors;
  int rounds = 0;
  bool completed = true;  // false if max_rounds was hit
  std::uint64_t engine_bytes = 0;
};

PlusOneLocalResult plus_one_local(const LocalInput& input, int palette = 0,
                                  int max_rounds = 1 << 20,
                                  const EngineOptions& options = {});

}  // namespace ckp
