#include "algo/be_tree_coloring.hpp"

#include <utility>

#include "algo/color_reduction.hpp"
#include "algo/forest_decomposition.hpp"
#include "algo/greedy_color.hpp"
#include "algo/linial.hpp"
#include "graph/builder.hpp"
#include "util/check.hpp"

namespace ckp {

TreeColoringResult be_tree_coloring(const Graph& g, int q,
                                    const std::vector<std::uint64_t>& ids,
                                    RoundLedger& ledger) {
  CKP_CHECK(q >= 3);
  const NodeId n = g.num_nodes();
  CKP_CHECK(ids.size() == static_cast<std::size_t>(n));
  const int start_rounds = ledger.rounds();

  TreeColoringResult out;
  out.colors.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return out;

  // 1. H-partition with threshold q-1.
  const auto decomposition = decompose_forest(g, q - 1, ledger);
  CKP_DCHECK(decomposition_valid(g, decomposition));
  out.layers = decomposition.num_layers;

  // 2. Same-layer graph H; its max degree is <= q-1 because same-layer
  // neighbors count toward the own-or-higher budget.
  GraphBuilder hb(n);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (decomposition.layer[static_cast<std::size_t>(u)] ==
        decomposition.layer[static_cast<std::size_t>(v)]) {
      hb.add_edge(u, v);
    }
  }
  const Graph h = hb.build();
  CKP_CHECK(h.max_degree() <= q - 1);

  // Schedule: Theorem 2 coloring of H, reduced to q colors. Both steps are
  // global preprocessing shared by all layers.
  auto schedule_coloring = linial_coloring(h, ids, q - 1, ledger);
  std::vector<int> schedule = std::move(schedule_coloring.colors);
  reduce_palette_fast(h, schedule, schedule_coloring.palette, q, ledger);

  // 3. Layers top-down, q schedule sub-rounds each.
  for (int layer = decomposition.num_layers - 1; layer >= 0; --layer) {
    std::vector<char> active(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (decomposition.layer[static_cast<std::size_t>(v)] == layer) {
        active[static_cast<std::size_t>(v)] = 1;
      }
    }
    greedy_color_by_schedule(g, schedule, q, q, std::move(active),
                             /*respect_inactive=*/true, nullptr, out.colors,
                             ledger);
  }

  for (NodeId v = 0; v < n; ++v) {
    CKP_CHECK(out.colors[static_cast<std::size_t>(v)] >= 0);
  }
  out.rounds = ledger.rounds() - start_rounds;
  return out;
}

}  // namespace ckp
