// Cole–Vishkin iterated bit tricks: 3-coloring rooted trees (and oriented
// paths/rings as the special case of degree <= 2) in log* n + O(1) rounds.
//
// Each round a node compares its color with its parent's: if i is the lowest
// bit position where they differ, the new color is 2i + (own bit i). This
// shrinks b-bit colors to ~log b bits; iterating reaches palette 6, after
// which three shift-down + recolor rounds reach palette 3.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

struct ColeVishkinResult {
  std::vector<int> colors;  // proper 3-coloring, values {0,1,2}
  int rounds = 0;
};

// 3-colors a rooted forest. `parent[v]` is v's parent or kInvalidNode for
// roots; every parent must be a neighbor of v. `ids` are unique and play the
// role of the initial coloring.
ColeVishkinResult cole_vishkin_tree(const Graph& g,
                                    const std::vector<NodeId>& parent,
                                    const std::vector<std::uint64_t>& ids,
                                    RoundLedger& ledger);

}  // namespace ckp
