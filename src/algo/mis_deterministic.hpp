// Deterministic MIS in O(Δ² + log* n) rounds: color with the Theorem 2
// palette of O(Δ²) colors, then sweep the color classes; in the class-c
// round every still-undecided node of color c with no MIS neighbor joins.
//
// The runtime has the form f(Δ) + O(log* n) with f(Δ) = O(Δ²), which makes
// this algorithm a *valid input* to the Theorem 6/8 speedup transformation
// (its running time as a function of ID length ℓ is f(Δ) + O(log* ℓ),
// comfortably below the ε·ℓ/log Δ budget); bench_speedup builds on it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

struct DetMisResult {
  std::vector<char> in_set;
  int rounds = 0;
  int schedule_palette = 0;
};

// `delta` must be >= Δ(G); the Linial schedule is computed for this bound
// (the speedup transform deliberately passes the global Δ of a larger
// pretend-graph). `restrict_to`, if non-empty, limits the MIS to the induced
// subgraph on {v : restrict_to[v] != 0}; other nodes get in_set = 0.
DetMisResult mis_deterministic(const Graph& g,
                               const std::vector<std::uint64_t>& ids, int delta,
                               RoundLedger& ledger,
                               const std::vector<char>& restrict_to = {});

}  // namespace ckp
