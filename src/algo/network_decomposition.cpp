#include "algo/network_decomposition.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "lcl/verify_mis.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {

NetworkDecomposition linial_saks_decomposition(const Graph& g,
                                               std::uint64_t seed,
                                               RoundLedger& ledger,
                                               const LinialSaksParams& params) {
  const NodeId n = g.num_nodes();
  const int start_rounds = ledger.rounds();
  const std::uint64_t n_bound = std::max<std::uint64_t>(2, static_cast<std::uint64_t>(n));
  const int cap = params.radius_cap > 0 ? params.radius_cap
                                        : 2 * ceil_log2(n_bound) + 2;
  const int max_colors = params.max_colors > 0 ? params.max_colors
                                               : 8 * ceil_log2(n_bound) + 8;
  CKP_CHECK(params.geometric_p > 0.0 && params.geometric_p < 1.0);

  NetworkDecomposition out;
  out.color.assign(static_cast<std::size_t>(n), -1);
  out.center.assign(static_cast<std::size_t>(n), kInvalidNode);

  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    rngs.push_back(node_rng(seed, static_cast<std::uint64_t>(v), 0x15D));
  }

  std::vector<int> radius(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> priority(static_cast<std::size_t>(n));
  std::vector<NodeId> tentative_center(static_cast<std::size_t>(n));
  std::vector<int> dist_to_center(static_cast<std::size_t>(n));
  NodeId live_count = n;
  int color = 0;
  for (; color < max_colors && live_count > 0; ++color) {
    int max_radius = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (out.color[static_cast<std::size_t>(v)] != -1) continue;
      // Geometric radius (memoryless — the key to Δ-independent progress).
      int r = 0;
      while (r < cap && rngs[static_cast<std::size_t>(v)].next_bernoulli(
                            1.0 - params.geometric_p)) {
        ++r;
      }
      radius[static_cast<std::size_t>(v)] = r;
      priority[static_cast<std::size_t>(v)] = rngs[static_cast<std::size_t>(v)]();
      tentative_center[static_cast<std::size_t>(v)] = kInvalidNode;
      max_radius = std::max(max_radius, r);
    }

    // First-touch BFS in decreasing priority order: the first center whose
    // ball reaches a live vertex is the maximum-priority one.
    std::vector<NodeId> order;
    for (NodeId v = 0; v < n; ++v) {
      if (out.color[static_cast<std::size_t>(v)] == -1) order.push_back(v);
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return priority[static_cast<std::size_t>(a)] >
             priority[static_cast<std::size_t>(b)];
    });
    std::vector<int> dist(static_cast<std::size_t>(n));
    for (NodeId u : order) {
      if (tentative_center[static_cast<std::size_t>(u)] != kInvalidNode) {
        // MPX-style variant: a vertex already captured by a higher-priority
        // center stops being a candidate center itself (its own position
        // lost the priority contest). This only prunes redundant balls; the
        // validity invariants are unaffected.
        continue;
      }
      // BFS to depth r_u through the whole graph (weak-diameter clusters
      // may route through assigned vertices).
      const int r = radius[static_cast<std::size_t>(u)];
      std::fill(dist.begin(), dist.end(), -1);
      std::queue<NodeId> q;
      dist[static_cast<std::size_t>(u)] = 0;
      q.push(u);
      while (!q.empty()) {
        const NodeId x = q.front();
        q.pop();
        if (out.color[static_cast<std::size_t>(x)] == -1 &&
            tentative_center[static_cast<std::size_t>(x)] == kInvalidNode) {
          tentative_center[static_cast<std::size_t>(x)] = u;
          dist_to_center[static_cast<std::size_t>(x)] =
              dist[static_cast<std::size_t>(x)];
        }
        if (dist[static_cast<std::size_t>(x)] == r) continue;
        for (NodeId y : g.neighbors(x)) {
          if (dist[static_cast<std::size_t>(y)] < 0) {
            dist[static_cast<std::size_t>(y)] = dist[static_cast<std::size_t>(x)] + 1;
            q.push(y);
          }
        }
      }
    }

    // Membership: the whole (live) neighborhood agrees on the center.
    int cluster_reach = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (out.color[static_cast<std::size_t>(v)] != -1) continue;
      const NodeId c = tentative_center[static_cast<std::size_t>(v)];
      CKP_CHECK(c != kInvalidNode);  // v reaches itself at distance 0
      bool agreed = true;
      for (NodeId w : g.neighbors(v)) {
        if (out.color[static_cast<std::size_t>(w)] != -1) continue;
        if (tentative_center[static_cast<std::size_t>(w)] != c) {
          agreed = false;
          break;
        }
      }
      if (agreed) {
        out.color[static_cast<std::size_t>(v)] = color;
        out.center[static_cast<std::size_t>(v)] = c;
        --live_count;
        cluster_reach = std::max(cluster_reach,
                                 dist_to_center[static_cast<std::size_t>(v)]);
      }
    }
    out.max_weak_diameter = std::max(out.max_weak_diameter, 2 * cluster_reach);
    ledger.charge(max_radius + 2);  // ball flood + agreement exchange
  }
  out.num_colors = color;
  out.completed = (live_count == 0);
  out.rounds = ledger.rounds() - start_rounds;
  return out;
}

bool decomposition_valid(const Graph& g, const NetworkDecomposition& d,
                         int diameter_bound) {
  const NodeId n = g.num_nodes();
  if (d.color.size() != static_cast<std::size_t>(n) ||
      d.center.size() != static_cast<std::size_t>(n)) {
    return false;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (d.color[static_cast<std::size_t>(v)] < 0 ||
        d.color[static_cast<std::size_t>(v)] >= d.num_colors) {
      return false;
    }
    if (d.center[static_cast<std::size_t>(v)] == kInvalidNode) return false;
  }
  // Same-color adjacent nodes must share a cluster.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (d.color[static_cast<std::size_t>(u)] == d.color[static_cast<std::size_t>(v)] &&
        d.center[static_cast<std::size_t>(u)] != d.center[static_cast<std::size_t>(v)]) {
      return false;
    }
  }
  if (diameter_bound > 0) {
    // Exact weak diameter per cluster: BFS in G from every member,
    // grouping members by (color, center).
    std::map<std::pair<int, NodeId>, std::vector<NodeId>> groups;
    for (NodeId v = 0; v < n; ++v) {
      groups[{d.color[static_cast<std::size_t>(v)],
              d.center[static_cast<std::size_t>(v)]}]
          .push_back(v);
    }
    for (const auto& [key, members] : groups) {
      for (NodeId s : members) {
        // BFS from s through the whole graph.
        std::vector<int> dist(static_cast<std::size_t>(n), -1);
        std::queue<NodeId> q;
        dist[static_cast<std::size_t>(s)] = 0;
        q.push(s);
        while (!q.empty()) {
          const NodeId x = q.front();
          q.pop();
          for (NodeId y : g.neighbors(x)) {
            if (dist[static_cast<std::size_t>(y)] < 0) {
              dist[static_cast<std::size_t>(y)] = dist[static_cast<std::size_t>(x)] + 1;
              q.push(y);
            }
          }
        }
        for (NodeId t : members) {
          if (dist[static_cast<std::size_t>(t)] < 0 ||
              dist[static_cast<std::size_t>(t)] > diameter_bound) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

DecompositionMisResult mis_via_decomposition(const Graph& g,
                                             const NetworkDecomposition& d,
                                             RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(d.completed);
  const int start_rounds = ledger.rounds();
  DecompositionMisResult out;
  out.in_set.assign(static_cast<std::size_t>(n), 0);
  std::vector<char> decided(static_cast<std::size_t>(n), 0);

  for (int c = 0; c < d.num_colors; ++c) {
    // Clusters of one color are non-adjacent: all run in parallel, each
    // solving its members centrally (cost ~ weak diameter, merged as max).
    std::map<NodeId, std::vector<NodeId>> clusters;
    for (NodeId v = 0; v < n; ++v) {
      if (d.color[static_cast<std::size_t>(v)] == c) {
        clusters[d.center[static_cast<std::size_t>(v)]].push_back(v);
      }
    }
    int class_cost = 0;
    for (const auto& [center, members] : clusters) {
      for (NodeId v : members) {
        bool blocked = false;
        for (NodeId u : g.neighbors(v)) {
          if (out.in_set[static_cast<std::size_t>(u)]) {
            blocked = true;
            break;
          }
        }
        if (!blocked) out.in_set[static_cast<std::size_t>(v)] = 1;
        decided[static_cast<std::size_t>(v)] = 1;
      }
      class_cost = std::max(class_cost, d.max_weak_diameter + 2);
    }
    ledger.charge(class_cost);
  }
  for (NodeId v = 0; v < n; ++v) CKP_CHECK(decided[static_cast<std::size_t>(v)]);
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(verify_mis(g, out.in_set).ok);
  return out;
}

}  // namespace ckp
