// (β+1, β)-ruling sets via MIS on graph powers.
//
// Ruling sets are the relaxation driving several of the shattering
// algorithms the paper cites ([18], [22]): an MIS of the power graph G^β is
// a set whose members are pairwise at distance > β and which dominates
// every vertex within distance β. One G^β round costs β rounds in G, which
// the ledger charges; the trade-off β vs rounds is the point of the
// experiment in bench_mis.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

struct RulingSetResult {
  std::vector<char> in_set;
  int rounds = 0;
  int power_delta = 0;  // Δ(G^β), the degree the inner MIS paid for
  bool completed = true;
};

// Deterministic: MIS on G^β scheduled by Theorem 2. ids unique; beta >= 1.
RulingSetResult ruling_set_deterministic(const Graph& g, int beta,
                                         const std::vector<std::uint64_t>& ids,
                                         RoundLedger& ledger);

// Randomized: Luby's algorithm on G^β.
RulingSetResult ruling_set_randomized(const Graph& g, int beta,
                                      std::uint64_t seed, RoundLedger& ledger);

}  // namespace ckp
