#include "algo/edge_coloring_distributed.hpp"

#include <algorithm>

#include "algo/color_reduction.hpp"
#include "algo/linial.hpp"
#include "graph/line_graph.hpp"
#include "lcl/verify_edge_coloring.hpp"
#include "util/check.hpp"

namespace ckp {

EdgeColoringResult edge_coloring_distributed(
    const Graph& g, const std::vector<std::uint64_t>& ids,
    RoundLedger& ledger) {
  CKP_CHECK(ids.size() == static_cast<std::size_t>(g.num_nodes()));
  for (auto id : ids) {
    CKP_CHECK_MSG(id < (1ULL << 32), "node IDs must fit in 32 bits");
  }
  const int start_rounds = ledger.rounds();
  EdgeColoringResult out;
  out.palette = std::max(1, 2 * g.max_degree() - 1);
  if (g.num_edges() == 0) return out;

  const Graph lg = line_graph(g);
  std::vector<std::uint64_t> edge_ids(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    const std::uint64_t a = ids[static_cast<std::size_t>(u)];
    const std::uint64_t b = ids[static_cast<std::size_t>(v)];
    edge_ids[static_cast<std::size_t>(e)] = (std::min(a, b) << 32) | std::max(a, b);
  }
  auto coloring =
      linial_coloring(lg, edge_ids, std::max(1, lg.max_degree()), ledger);
  if (coloring.palette > out.palette) {
    reduce_palette_fast(lg, coloring.colors, coloring.palette, out.palette,
                        ledger);
  }
  out.colors = std::move(coloring.colors);
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(verify_edge_coloring(g, out.colors, out.palette).ok);
  return out;
}

}  // namespace ckp
