#include "algo/leader_election.hpp"

#include <algorithm>
#include <span>

#include "local/engine.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

struct FloodAlgo {
  int margin;

  struct State {
    std::uint64_t best = 0;
    int stable = 0;
  };

  State init(const NodeEnv& env) {
    CKP_CHECK_MSG(env.has_id(), "leader election is a DetLOCAL algorithm");
    return {env.id, 0};
  }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    (void)env;
    std::uint64_t best = self.best;
    for (const State* nb : nbrs) best = std::max(best, nb->best);
    if (best == self.best) {
      ++self.stable;
    } else {
      self.best = best;
      self.stable = 0;
    }
    return self.stable >= margin;
  }
};

}  // namespace

LeaderElectionResult elect_leader(const LocalInput& input,
                                  int stability_margin) {
  input.validate();
  CKP_CHECK_MSG(input.has_ids(), "leader election needs IDs");
  const int margin =
      stability_margin > 0
          ? stability_margin
          : static_cast<int>(std::min<std::uint64_t>(
                input.effective_n(), 1u << 20));
  FloodAlgo algo{margin};
  const auto run = run_local(input, algo, /*max_rounds=*/margin + 1 +
                                              static_cast<int>(std::min<std::uint64_t>(
                                                  input.effective_n(), 1u << 20)));
  LeaderElectionResult out;
  out.rounds = run.rounds;
  out.completed = run.all_halted;
  out.leader_seen.resize(run.states.size());
  std::uint64_t global_best = 0;
  for (std::size_t i = 0; i < run.states.size(); ++i) {
    out.leader_seen[i] = run.states[i].best;
    global_best = std::max(global_best, run.states[i].best);
  }
  for (NodeId v = 0; v < input.graph->num_nodes(); ++v) {
    if (input.id_of(v) == global_best) {
      out.leader = v;
      break;
    }
  }
  return out;
}

}  // namespace ckp
