// Randomized maximal matching: Luby's algorithm run on the line graph,
// simulated edge-locally (an edge's "neighbors" are the edges sharing an
// endpoint, so one line-graph round costs O(1) rounds in G).
//
// Each iteration every live edge draws a 64-bit value; local minima join the
// matching and all edges touching a matched endpoint die. O(log n) rounds
// w.h.p. — the RandLOCAL side of the intro's maximal-matching comparison.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

struct MatchingResult {
  std::vector<char> in_matching;  // per edge
  int rounds = 0;
  bool completed = true;
};

MatchingResult matching_randomized(const Graph& g, std::uint64_t seed,
                                   RoundLedger& ledger,
                                   int max_iterations = 1 << 20);

}  // namespace ckp
