// Barenboim–Elkin q-coloring of forests (Theorem 9 of the paper).
//
// For q >= 3, q-coloring a forest takes O(log_q n + log* n) rounds:
//  1. Peel an H-partition with threshold q-1 (each node has <= q-1
//     neighbors in its own-or-higher layers); O(log_q n) layers.
//  2. Color the same-layer graph H (max degree <= q-1) with O(q²) colors by
//     Theorem 2, then reduce that schedule to q colors — all as global
//     preprocessing.
//  3. Process layers top-down; within a layer, the q-color schedule gives q
//     sub-rounds in which every node greedily picks a color free of its
//     already-colored neighbors. At most q-1 neighbors ever constrain a
//     node, so palette q always suffices.
//
// Implementation cost is O(q² + q·log_q n + log* n) rounds; the extra factor
// q against the paper's statement comes from the per-layer schedule and is
// immaterial for the constant q used everywhere in the paper (q = 3 in
// Theorem 11's Phase 2, q = √Δ in Theorem 10's Phase 2). EXPERIMENTS.md
// quantifies it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

struct TreeColoringResult {
  std::vector<int> colors;  // proper q-coloring, values [0, q)
  int layers = 0;
  int rounds = 0;
};

// Requires q >= 3 and g a forest (arboricity 1; peeling throws otherwise).
// `ids` are the DetLOCAL identifiers (unique).
TreeColoringResult be_tree_coloring(const Graph& g, int q,
                                    const std::vector<std::uint64_t>& ids,
                                    RoundLedger& ledger);

}  // namespace ckp
