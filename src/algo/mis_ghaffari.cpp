#include "algo/mis_ghaffari.hpp"

#include <cmath>

#include "algo/mis_deterministic.hpp"
#include "graph/components.hpp"
#include "lcl/verify_mis.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {
namespace {

// Packed word for the engine port, one u64 per node:
//
//   [63:62] status (0 undecided, 1 in MIS, 2 retired)
//   [61]    phase-2 flag, sticky through halt (residue measurement)
//   [60]    mark-valid: the word carries this iteration's mark bit
//   [59]    marked
//   [57:50] phase-1 iteration counter (caps iterations at 255)
//   [49:0]  phase-2 priority   } disjoint in time: desire is phase 1,
//   [5:0]   desire exponent k  } priority is phase 2
//
// Desire levels are dyadic: desire = 2^-(k+1), k in [0, kGhMaxDesireExp],
// so "halve" is k+1, "double capped at 1/2" is max(k-1, 0), and a mark is
// drawn with exactly one RNG call by testing the top k+1 bits of a 64-bit
// draw for zero. The effective degree is summed in 2^31 fixed point
// (desire contributes 1 << (30-k); exponents past 30 contribute nothing,
// which only biases toward doubling desires that are already < 2^-31).
// Everything is integer arithmetic, so results are bit-identical across
// paths, thread counts, and schedulers.
constexpr int kGhStatusShift = 62;
constexpr std::uint64_t kGhInMis = 1;
constexpr std::uint64_t kGhRetired = 2;
constexpr std::uint64_t kGhPhase2Bit = 1ULL << 61;
constexpr std::uint64_t kGhValidBit = 1ULL << 60;
constexpr std::uint64_t kGhMarkedBit = 1ULL << 59;
constexpr int kGhIterShift = 50;
constexpr std::uint64_t kGhIterMask = 0xFF;
constexpr std::uint64_t kGhPrioMask = (1ULL << 50) - 1;
constexpr std::uint64_t kGhDesireMask = 0x3F;
constexpr std::uint64_t kGhMaxDesireExp = 40;
constexpr std::uint64_t kGhEffThreshold = 1ULL << 32;  // 2.0 in 2^31 fixed pt

struct GhaffariLocalAlgo {
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t word = 0;
  };

  // Phase-1 iteration budget; read-only config (steps must not mutate
  // shared members — engine contract).
  int iterations = 0;

  State init(const NodeEnv&) {
    // k = 0 (desire 1/2), iteration 0, no valid mark: round 1 is a mark
    // round.
    return {0};
  }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    const std::uint64_t w = self.word;
    if ((w >> kGhStatusShift) != 0) return true;
    if (w & kGhPhase2Bit) {
      // Phase-2 round: retire next to a MIS member; join on strict local
      // max priority; redraw on a tie (fixed priorities could deadlock).
      const std::uint64_t my_prio = w & kGhPrioMask;
      bool is_max = true;
      bool tied = false;
      for (const State* nb : nbrs) {
        const std::uint64_t nw = nb->word;
        if ((nw >> kGhStatusShift) == kGhInMis) {
          self.word = (kGhRetired << kGhStatusShift) | kGhPhase2Bit;
          return true;
        }
        if ((nw >> kGhStatusShift) != 0 || !(nw & kGhPhase2Bit)) continue;
        const std::uint64_t p = nw & kGhPrioMask;
        if (p > my_prio) is_max = false;
        if (p == my_prio) tied = true;
      }
      if (tied) {
        self.word = kGhPhase2Bit | (env.random()() & kGhPrioMask);
        return false;
      }
      if (is_max) {
        self.word = (kGhInMis << kGhStatusShift) | kGhPhase2Bit;
        return true;
      }
      return false;
    }
    if ((w & kGhValidBit) == 0) {
      // Mark round. React to joins of the previous resolve round first.
      for (const State* nb : nbrs) {
        if ((nb->word >> kGhStatusShift) == kGhInMis) {
          self.word = kGhRetired << kGhStatusShift;
          return true;
        }
      }
      const std::uint64_t it = (w >> kGhIterShift) & kGhIterMask;
      if (it >= static_cast<std::uint64_t>(iterations)) {
        // Phase-1 budget exhausted: this node is residue. Draw a phase-2
        // priority and hand off.
        self.word = kGhPhase2Bit | (env.random()() & kGhPrioMask);
        return false;
      }
      const std::uint64_t k = w & kGhDesireMask;
      const std::uint64_t marked =
          (env.random()() >> (63 - k)) == 0 ? kGhMarkedBit : 0;
      self.word = (it << kGhIterShift) | kGhValidBit | marked | k;
      return false;
    }
    // Resolve round: join when marked and alone; update desire from the
    // effective degree of undecided neighbors (their marks and exponents
    // were published in the mark round).
    const std::uint64_t k = w & kGhDesireMask;
    bool join = (w & kGhMarkedBit) != 0;
    std::uint64_t eff = 0;
    for (const State* nb : nbrs) {
      const std::uint64_t nw = nb->word;
      if ((nw >> kGhStatusShift) != 0 || !(nw & kGhValidBit)) continue;
      if (nw & kGhMarkedBit) join = false;
      const std::uint64_t nk = nw & kGhDesireMask;
      if (nk <= 30) eff += 1ULL << (30 - nk);
    }
    if (join) {
      self.word = kGhInMis << kGhStatusShift;
      return true;
    }
    const std::uint64_t next_k = eff >= kGhEffThreshold
                                     ? std::min(k + 1, kGhMaxDesireExp)
                                     : (k > 0 ? k - 1 : 0);
    const std::uint64_t it = ((w >> kGhIterShift) & kGhIterMask) + 1;
    self.word = (it << kGhIterShift) | next_k;
    return false;
  }
};

}  // namespace

GhaffariLocalResult mis_ghaffari_local(const LocalInput& input,
                                       int max_rounds,
                                       const EngineOptions& options,
                                       const GhaffariMisParams& params) {
  CKP_CHECK_MSG(!input.has_ids(),
                "mis_ghaffari_local is RandLOCAL: pass no IDs");
  const int delta = std::max(input.effective_delta(), 1);
  const int iterations =
      params.phase1_iterations > 0
          ? params.phase1_iterations
          : 2 * ceil_log2(static_cast<std::uint64_t>(delta) + 1) + 6;
  CKP_CHECK_MSG(iterations <= 255,
                "phase-1 iteration budget exceeds the 8-bit counter");
  GhaffariLocalAlgo algo{iterations};
  const auto run = run_local(input, algo, max_rounds, nullptr, options);

  GhaffariLocalResult out;
  out.rounds = run.rounds;
  out.completed = run.all_halted;
  out.engine_bytes = run.engine_bytes;
  // Mark round + resolve round per iteration, then the hand-off round in
  // which residue nodes drew their phase-2 priorities.
  out.phase1_rounds = std::min(run.rounds, 2 * iterations + 1);
  const NodeId n = input.graph->num_nodes();
  out.in_set.resize(static_cast<std::size_t>(n));
  std::vector<char> residue(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t w = run.states[static_cast<std::size_t>(v)].word;
    const std::uint64_t status = w >> kGhStatusShift;
    CKP_CHECK_MSG(!out.completed || status != 0,
                  "completed run left an undecided node");
    out.in_set[static_cast<std::size_t>(v)] = status == kGhInMis ? 1 : 0;
    // The phase-2 flag is sticky through halts, so the shattering residue
    // is recoverable from final states alone.
    residue[static_cast<std::size_t>(v)] = (w & kGhPhase2Bit) ? 1 : 0;
    if (residue[static_cast<std::size_t>(v)]) ++out.residue_nodes;
  }
  out.largest_residue_component =
      components_of_subset(*input.graph, residue).largest();
  if (out.completed) CKP_DCHECK(verify_mis(*input.graph, out.in_set).ok);
  return out;
}

GhaffariMisResult mis_ghaffari(const Graph& g, std::uint64_t seed,
                               RoundLedger& ledger,
                               const GhaffariMisParams& params) {
  const NodeId n = g.num_nodes();
  const int delta = std::max(g.max_degree(), 1);
  const int iterations =
      params.phase1_iterations > 0
          ? params.phase1_iterations
          : 2 * ceil_log2(static_cast<std::uint64_t>(delta) + 1) + 6;

  enum : char { kUndecided = 0, kInMis = 1, kRetired = 2 };
  std::vector<char> status(static_cast<std::size_t>(n), kUndecided);
  std::vector<double> desire(static_cast<std::size_t>(n), 0.5);
  std::vector<char> marked(static_cast<std::size_t>(n), 0);
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    rngs.push_back(node_rng(seed, static_cast<std::uint64_t>(v)));
  }

  GhaffariMisResult out;
  const int start_rounds = ledger.rounds();
  for (int it = 0; it < iterations; ++it) {
    // Sub-round A: mark.
    for (NodeId v = 0; v < n; ++v) {
      marked[static_cast<std::size_t>(v)] =
          status[static_cast<std::size_t>(v)] == kUndecided &&
          rngs[static_cast<std::size_t>(v)].next_bernoulli(
              desire[static_cast<std::size_t>(v)]);
    }
    // Sub-round B: join when marked with no marked undecided neighbor.
    std::vector<char> joins(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (!marked[static_cast<std::size_t>(v)]) continue;
      bool alone = true;
      for (NodeId u : g.neighbors(v)) {
        if (marked[static_cast<std::size_t>(u)]) {
          alone = false;
          break;
        }
      }
      joins[static_cast<std::size_t>(v)] = alone;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (joins[static_cast<std::size_t>(v)]) {
        status[static_cast<std::size_t>(v)] = kInMis;
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (status[static_cast<std::size_t>(v)] != kUndecided) continue;
      for (NodeId u : g.neighbors(v)) {
        if (status[static_cast<std::size_t>(u)] == kInMis) {
          status[static_cast<std::size_t>(v)] = kRetired;
          break;
        }
      }
    }
    // Desire update from effective degree.
    std::vector<double> next_desire = desire;
    for (NodeId v = 0; v < n; ++v) {
      if (status[static_cast<std::size_t>(v)] != kUndecided) continue;
      double effective = 0.0;
      for (NodeId u : g.neighbors(v)) {
        if (status[static_cast<std::size_t>(u)] == kUndecided) {
          effective += desire[static_cast<std::size_t>(u)];
        }
      }
      if (effective >= 2.0) {
        next_desire[static_cast<std::size_t>(v)] =
            desire[static_cast<std::size_t>(v)] / 2.0;
      } else {
        next_desire[static_cast<std::size_t>(v)] =
            std::min(0.5, desire[static_cast<std::size_t>(v)] * 2.0);
      }
    }
    desire = std::move(next_desire);
    ledger.charge(2);  // mark exchange + join/retire exchange
  }
  out.phase1_rounds = ledger.rounds() - start_rounds;

  // Shattering measurement.
  std::vector<char> undecided(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    undecided[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] == kUndecided;
    if (undecided[static_cast<std::size_t>(v)]) ++out.residue_nodes;
  }
  out.largest_residue_component =
      components_of_subset(g, undecided).largest();

  // Phase 2: deterministic finish on the residue with locally generated
  // random IDs (unique w.h.p.; node_rng streams are independent).
  if (out.residue_nodes > 0) {
    std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      ids[static_cast<std::size_t>(v)] =
          rngs[static_cast<std::size_t>(v)]();
    }
    const auto det = mis_deterministic(g, ids, delta, ledger, undecided);
    for (NodeId v = 0; v < n; ++v) {
      if (det.in_set[static_cast<std::size_t>(v)]) {
        CKP_DCHECK(status[static_cast<std::size_t>(v)] == kUndecided);
        status[static_cast<std::size_t>(v)] = kInMis;
      }
    }
  }

  out.in_set.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    out.in_set[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] == kInMis;
  }
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(verify_mis(g, out.in_set).ok);
  return out;
}

}  // namespace ckp
