#include "algo/mis_ghaffari.hpp"

#include <cmath>

#include "algo/mis_deterministic.hpp"
#include "graph/components.hpp"
#include "lcl/verify_mis.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {

GhaffariMisResult mis_ghaffari(const Graph& g, std::uint64_t seed,
                               RoundLedger& ledger,
                               const GhaffariMisParams& params) {
  const NodeId n = g.num_nodes();
  const int delta = std::max(g.max_degree(), 1);
  const int iterations =
      params.phase1_iterations > 0
          ? params.phase1_iterations
          : 2 * ceil_log2(static_cast<std::uint64_t>(delta) + 1) + 6;

  enum : char { kUndecided = 0, kInMis = 1, kRetired = 2 };
  std::vector<char> status(static_cast<std::size_t>(n), kUndecided);
  std::vector<double> desire(static_cast<std::size_t>(n), 0.5);
  std::vector<char> marked(static_cast<std::size_t>(n), 0);
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    rngs.push_back(node_rng(seed, static_cast<std::uint64_t>(v)));
  }

  GhaffariMisResult out;
  const int start_rounds = ledger.rounds();
  for (int it = 0; it < iterations; ++it) {
    // Sub-round A: mark.
    for (NodeId v = 0; v < n; ++v) {
      marked[static_cast<std::size_t>(v)] =
          status[static_cast<std::size_t>(v)] == kUndecided &&
          rngs[static_cast<std::size_t>(v)].next_bernoulli(
              desire[static_cast<std::size_t>(v)]);
    }
    // Sub-round B: join when marked with no marked undecided neighbor.
    std::vector<char> joins(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (!marked[static_cast<std::size_t>(v)]) continue;
      bool alone = true;
      for (NodeId u : g.neighbors(v)) {
        if (marked[static_cast<std::size_t>(u)]) {
          alone = false;
          break;
        }
      }
      joins[static_cast<std::size_t>(v)] = alone;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (joins[static_cast<std::size_t>(v)]) {
        status[static_cast<std::size_t>(v)] = kInMis;
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (status[static_cast<std::size_t>(v)] != kUndecided) continue;
      for (NodeId u : g.neighbors(v)) {
        if (status[static_cast<std::size_t>(u)] == kInMis) {
          status[static_cast<std::size_t>(v)] = kRetired;
          break;
        }
      }
    }
    // Desire update from effective degree.
    std::vector<double> next_desire = desire;
    for (NodeId v = 0; v < n; ++v) {
      if (status[static_cast<std::size_t>(v)] != kUndecided) continue;
      double effective = 0.0;
      for (NodeId u : g.neighbors(v)) {
        if (status[static_cast<std::size_t>(u)] == kUndecided) {
          effective += desire[static_cast<std::size_t>(u)];
        }
      }
      if (effective >= 2.0) {
        next_desire[static_cast<std::size_t>(v)] =
            desire[static_cast<std::size_t>(v)] / 2.0;
      } else {
        next_desire[static_cast<std::size_t>(v)] =
            std::min(0.5, desire[static_cast<std::size_t>(v)] * 2.0);
      }
    }
    desire = std::move(next_desire);
    ledger.charge(2);  // mark exchange + join/retire exchange
  }
  out.phase1_rounds = ledger.rounds() - start_rounds;

  // Shattering measurement.
  std::vector<char> undecided(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    undecided[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] == kUndecided;
    if (undecided[static_cast<std::size_t>(v)]) ++out.residue_nodes;
  }
  out.largest_residue_component =
      components_of_subset(g, undecided).largest();

  // Phase 2: deterministic finish on the residue with locally generated
  // random IDs (unique w.h.p.; node_rng streams are independent).
  if (out.residue_nodes > 0) {
    std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      ids[static_cast<std::size_t>(v)] =
          rngs[static_cast<std::size_t>(v)]();
    }
    const auto det = mis_deterministic(g, ids, delta, ledger, undecided);
    for (NodeId v = 0; v < n; ++v) {
      if (det.in_set[static_cast<std::size_t>(v)]) {
        CKP_DCHECK(status[static_cast<std::size_t>(v)] == kUndecided);
        status[static_cast<std::size_t>(v)] = kInMis;
      }
    }
  }

  out.in_set.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    out.in_set[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] == kInMis;
  }
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(verify_mis(g, out.in_set).ok);
  return out;
}

}  // namespace ckp
