// Distributed (2Δ−1)-edge coloring — the problem of [20] in the paper's
// introduction ("(2Δ−1)-edge coloring is much easier than maximal matching").
//
// Edges are MIS-style agents on the line graph L(G), whose maximum degree is
// 2Δ−2: Theorem 2 colors L(G) with O(Δ²) colors in O(log* n) rounds and
// blocked reduction brings the palette to 2Δ−1. Each L(G) round costs O(1)
// rounds in G (edge agents live at their endpoints).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

struct EdgeColoringResult {
  std::vector<int> colors;  // per edge, values [0, palette)
  int palette = 0;
  int rounds = 0;
};

// DetLOCAL (2Δ−1)-edge coloring; node ids must fit in 32 bits (edge ids are
// endpoint-id pairs).
EdgeColoringResult edge_coloring_distributed(
    const Graph& g, const std::vector<std::uint64_t>& ids, RoundLedger& ledger);

}  // namespace ckp
