// Network decomposition — the deterministic frontier the paper's Result 3
// speaks to.
//
// Theorem 3 says the 2^{O(√log log n)} terms in the randomized MIS/coloring
// algorithms cannot improve without improving Panconesi–Srinivasan's
// deterministic 2^{O(√log n)} network decomposition. This module implements
// the classical *randomized* counterpart (Linial–Saks): a (O(log n), O(log
// n)) weak-diameter network decomposition in O(log² n) rounds, plus the
// standard pipeline that turns any decomposition into symmetry breaking
// (process color classes sequentially; inside a class, every cluster solves
// its subproblem centrally in O(diameter) rounds).
//
// Linial–Saks, one color class: every live vertex draws a radius from a
// geometric distribution (p = 1/2, truncated at B = O(log n)); v tentatively
// joins the highest-ID vertex u (its "center") among those with
// dist(u, v) <= r_u; v becomes a *member* of this class if additionally
// every neighbor of v joined the same center with slack (dist < r_u), which
// makes same-class clusters non-adjacent. Members retire; O(log n) classes
// empty the graph w.h.p.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

struct NetworkDecomposition {
  // Per node: color class in [0, num_colors) and cluster id (the center's
  // node index); clusters of one color are pairwise non-adjacent.
  std::vector<int> color;
  std::vector<NodeId> center;
  int num_colors = 0;
  int rounds = 0;
  int max_weak_diameter = 0;  // measured over clusters, distances in G
  bool completed = true;
};

struct LinialSaksParams {
  double geometric_p = 0.5;
  int radius_cap = 0;     // 0 = 2·ceil(log2 n)+2
  int max_colors = 0;     // 0 = 8·ceil(log2 n)+8
};

// RandLOCAL Linial–Saks decomposition.
NetworkDecomposition linial_saks_decomposition(
    const Graph& g, std::uint64_t seed, RoundLedger& ledger,
    const LinialSaksParams& params = {});

// Validates: colors/centers total, same-color adjacent nodes share a
// cluster, and every cluster's weak diameter (max pairwise distance in G)
// is at most `diameter_bound` (pass <= 0 to skip the diameter check).
bool decomposition_valid(const Graph& g, const NetworkDecomposition& d,
                         int diameter_bound);

// The decomposition -> MIS pipeline: color classes processed sequentially;
// within a class, each cluster greedily extends the MIS in O(weak diameter)
// rounds (clusters are non-adjacent, so they proceed in parallel).
struct DecompositionMisResult {
  std::vector<char> in_set;
  int rounds = 0;
};
DecompositionMisResult mis_via_decomposition(const Graph& g,
                                             const NetworkDecomposition& d,
                                             RoundLedger& ledger);

}  // namespace ckp
