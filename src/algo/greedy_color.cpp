#include "algo/greedy_color.hpp"

#include <bit>
#include <cstdint>
#include <span>

#include "util/check.hpp"

namespace ckp {

void greedy_color_by_schedule(
    const Graph& g, const std::vector<int>& schedule, int schedule_palette,
    int palette, std::vector<char> active, bool respect_inactive,
    const std::function<bool(NodeId, int)>& allowed, std::vector<int>& colors,
    RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(schedule.size() == static_cast<std::size_t>(n));
  CKP_CHECK(colors.size() == static_cast<std::size_t>(n));
  CKP_CHECK(active.size() == static_cast<std::size_t>(n));
  CKP_CHECK(palette >= 1);

  // Bucket active nodes by schedule class so each round costs only its
  // class plus neighbor scans.
  std::vector<std::vector<NodeId>> buckets(
      static_cast<std::size_t>(schedule_palette));
  for (NodeId v = 0; v < n; ++v) {
    if (!active[static_cast<std::size_t>(v)]) continue;
    const int s = schedule[static_cast<std::size_t>(v)];
    CKP_CHECK(s >= 0 && s < schedule_palette);
    buckets[static_cast<std::size_t>(s)].push_back(v);
  }
  // Participants colored in earlier rounds of this call must keep
  // constraining later rounds even though they are no longer active.
  const std::vector<char> participant = active;

  std::vector<char> used(static_cast<std::size_t>(palette), 0);
  for (int s = 0; s < schedule_palette; ++s) {
    // One synchronous round: all nodes of schedule class s decide using
    // only the colors fixed in earlier rounds (same-class nodes are
    // non-adjacent because the schedule is a proper coloring).
    for (NodeId v : buckets[static_cast<std::size_t>(s)]) {
      CKP_CHECK_MSG(colors[static_cast<std::size_t>(v)] == -1,
                    "active node " << v << " already colored");
      std::fill(used.begin(), used.end(), 0);
      for (NodeId u : g.neighbors(v)) {
        const bool counts =
            participant[static_cast<std::size_t>(u)] || respect_inactive;
        const int c = colors[static_cast<std::size_t>(u)];
        if (counts && c >= 0 && c < palette) used[static_cast<std::size_t>(c)] = 1;
      }
      int pick = -1;
      for (int c = 0; c < palette; ++c) {
        if (!used[static_cast<std::size_t>(c)] && (!allowed || allowed(v, c))) {
          pick = c;
          break;
        }
      }
      CKP_CHECK_MSG(pick >= 0, "node " << v << " has no free allowed color");
      colors[static_cast<std::size_t>(v)] = pick;
      active[static_cast<std::size_t>(v)] = 0;
    }
    ledger.charge(1);
  }
}

namespace {

// Single 64-bit word per node: [47:0] the node's ID (its priority and its
// identity to neighbors — NodeEnv carries only a node's *own* ID, so the
// priority must travel in the published state), [53:48] the chosen color
// (palette <= 64, so 6 bits and every shift below stays < 64), [63]
// decided. Packed for the engine's fast path.
constexpr std::uint64_t kGcIdMask = (1ULL << 48) - 1;
constexpr int kGcColorShift = 48;
constexpr std::uint64_t kGcColorMask = 0x3F;
constexpr std::uint64_t kGcDecidedBit = 1ULL << 63;

struct GreedyColorAlgo {
  static constexpr bool packed_state = true;

  struct State {
    std::uint64_t word = 0;
  };

  int palette = 0;  // read-only during the run

  State init(const NodeEnv& env) {
    CKP_CHECK_MSG(env.has_id(), "greedy_color_local is DetLOCAL: ids required");
    CKP_CHECK_MSG(env.id <= kGcIdMask,
                  "greedy_color_local supports ids < 2^48, got " << env.id);
    CKP_CHECK_MSG(env.degree < palette,
                  "palette " << palette << " too small for degree "
                             << env.degree);
    return {env.id};
  }

  bool step(State& self, const NodeEnv&, std::span<const State* const> nbrs) {
    if (self.word & kGcDecidedBit) return true;
    const std::uint64_t my_id = self.word & kGcIdMask;
    std::uint64_t used = 0;  // colors of decided neighbors, as a bitmask
    std::uint64_t wait = 0;  // nonzero if an undecided neighbor outranks us
    for (const State* nb : nbrs) {
      const std::uint64_t w = nb->word;
      const std::uint64_t decided = w >> 63;  // kGcDecidedBit, as 0/1
      used |= (decided << ((w >> kGcColorShift) & kGcColorMask));
      wait |= (decided ^ 1) &
              static_cast<std::uint64_t>((w & kGcIdMask) > my_id);
    }
    if (wait != 0) return false;
    // Smallest color not used by any decided neighbor: at most degree <
    // palette <= 64 bits are set, so the first zero bit is always in range.
    const int c = std::countr_one(used);
    self.word = kGcDecidedBit |
                (static_cast<std::uint64_t>(c) << kGcColorShift) | my_id;
    return true;
  }
};

}  // namespace

GreedyColorLocalResult greedy_color_local(const LocalInput& input,
                                          int palette, int max_rounds,
                                          const EngineOptions& options) {
  CKP_CHECK(input.graph != nullptr);
  const Graph& g = *input.graph;
  if (palette == 0) palette = g.max_degree() + 1;
  CKP_CHECK_MSG(palette > g.max_degree(),
                "palette " << palette << " < Δ+1 = " << g.max_degree() + 1);
  CKP_CHECK_MSG(palette <= 64, "greedy_color_local palette capped at 64");

  GreedyColorAlgo algo;
  algo.palette = palette;
  const auto run = run_local(input, algo, max_rounds, nullptr, options);

  GreedyColorLocalResult out;
  out.rounds = run.rounds;
  out.completed = run.all_halted;
  out.engine_bytes = run.engine_bytes;
  out.colors.resize(run.states.size(), -1);
  for (std::size_t i = 0; i < run.states.size(); ++i) {
    const std::uint64_t w = run.states[i].word;
    if (w & kGcDecidedBit) {
      out.colors[i] = static_cast<int>((w >> kGcColorShift) & kGcColorMask);
    }
  }
  return out;
}

}  // namespace ckp
