#include "algo/greedy_color.hpp"

#include "util/check.hpp"

namespace ckp {

void greedy_color_by_schedule(
    const Graph& g, const std::vector<int>& schedule, int schedule_palette,
    int palette, std::vector<char> active, bool respect_inactive,
    const std::function<bool(NodeId, int)>& allowed, std::vector<int>& colors,
    RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(schedule.size() == static_cast<std::size_t>(n));
  CKP_CHECK(colors.size() == static_cast<std::size_t>(n));
  CKP_CHECK(active.size() == static_cast<std::size_t>(n));
  CKP_CHECK(palette >= 1);

  // Bucket active nodes by schedule class so each round costs only its
  // class plus neighbor scans.
  std::vector<std::vector<NodeId>> buckets(
      static_cast<std::size_t>(schedule_palette));
  for (NodeId v = 0; v < n; ++v) {
    if (!active[static_cast<std::size_t>(v)]) continue;
    const int s = schedule[static_cast<std::size_t>(v)];
    CKP_CHECK(s >= 0 && s < schedule_palette);
    buckets[static_cast<std::size_t>(s)].push_back(v);
  }
  // Participants colored in earlier rounds of this call must keep
  // constraining later rounds even though they are no longer active.
  const std::vector<char> participant = active;

  std::vector<char> used(static_cast<std::size_t>(palette), 0);
  for (int s = 0; s < schedule_palette; ++s) {
    // One synchronous round: all nodes of schedule class s decide using
    // only the colors fixed in earlier rounds (same-class nodes are
    // non-adjacent because the schedule is a proper coloring).
    for (NodeId v : buckets[static_cast<std::size_t>(s)]) {
      CKP_CHECK_MSG(colors[static_cast<std::size_t>(v)] == -1,
                    "active node " << v << " already colored");
      std::fill(used.begin(), used.end(), 0);
      for (NodeId u : g.neighbors(v)) {
        const bool counts =
            participant[static_cast<std::size_t>(u)] || respect_inactive;
        const int c = colors[static_cast<std::size_t>(u)];
        if (counts && c >= 0 && c < palette) used[static_cast<std::size_t>(c)] = 1;
      }
      int pick = -1;
      for (int c = 0; c < palette; ++c) {
        if (!used[static_cast<std::size_t>(c)] && (!allowed || allowed(v, c))) {
          pick = c;
          break;
        }
      }
      CKP_CHECK_MSG(pick >= 0, "node " << v << " has no free allowed color");
      colors[static_cast<std::size_t>(v)] = pick;
      active[static_cast<std::size_t>(v)] = 0;
    }
    ledger.charge(1);
  }
}

}  // namespace ckp
