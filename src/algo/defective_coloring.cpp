#include "algo/defective_coloring.hpp"

#include <algorithm>
#include <sstream>

#include "algo/color_reduction.hpp"
#include "algo/linial.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/primes.hpp"

namespace ckp {

DefectiveColoringResult defective_coloring_greedy(
    const Graph& g, const std::vector<std::uint64_t>& ids, int delta,
    int palette, RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(delta >= g.max_degree());
  CKP_CHECK(palette >= 1);
  const int start_rounds = ledger.rounds();

  // Schedule: Theorem 2 reduced to Δ+1 classes.
  auto schedule = linial_coloring(g, ids, std::max(1, delta), ledger);
  const int schedule_palette = std::min(schedule.palette, delta + 1);
  if (schedule.palette > schedule_palette) {
    reduce_palette_fast(g, schedule.colors, schedule.palette, schedule_palette,
                        ledger);
  }

  DefectiveColoringResult out;
  out.colors.assign(static_cast<std::size_t>(n), -1);
  std::vector<int> load(static_cast<std::size_t>(palette), 0);
  for (int s = 0; s < schedule_palette; ++s) {
    // One round per schedule class: members pick the least-loaded color
    // among their already-colored neighbors. Same-class members are
    // non-adjacent, so simultaneous choices never interact.
    for (NodeId v = 0; v < n; ++v) {
      if (schedule.colors[static_cast<std::size_t>(v)] != s) continue;
      std::fill(load.begin(), load.end(), 0);
      for (NodeId u : g.neighbors(v)) {
        const int cu = out.colors[static_cast<std::size_t>(u)];
        if (cu >= 0) ++load[static_cast<std::size_t>(cu)];
      }
      out.colors[static_cast<std::size_t>(v)] = static_cast<int>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    ledger.charge(1);
  }

  for (NodeId v = 0; v < n; ++v) {
    int defect = 0;
    for (NodeId u : g.neighbors(v)) {
      if (out.colors[static_cast<std::size_t>(u)] ==
          out.colors[static_cast<std::size_t>(v)]) {
        ++defect;
      }
    }
    out.max_defect = std::max(out.max_defect, defect);
  }
  out.rounds = ledger.rounds() - start_rounds;
  return out;
}

namespace {

// Horner evaluation of c's base-q digit polynomial at x.
int eval_color_poly(std::uint64_t c, std::uint64_t q, unsigned degree,
                    std::uint64_t x) {
  // coefficients = digits of c base q, least significant first.
  std::uint64_t acc = 0;
  // Horner from the most significant digit down.
  std::vector<std::uint64_t> digits(degree + 1);
  for (unsigned i = 0; i <= degree; ++i) {
    digits[i] = c % q;
    c /= q;
  }
  for (unsigned i = degree + 1; i-- > 0;) {
    acc = (acc * x + digits[i]) % q;
  }
  return static_cast<int>(acc);
}

}  // namespace

DefectiveColoringResult defective_coloring_kuhn(
    const Graph& g, const std::vector<std::uint64_t>& ids, int delta,
    int target_defect, RoundLedger& ledger, int* out_palette) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(delta >= std::max(1, g.max_degree()));
  CKP_CHECK(target_defect >= 1);
  const int start_rounds = ledger.rounds();

  // Proper base coloring with palette k.
  const auto base = linial_coloring(g, ids, delta, ledger);
  const auto k = static_cast<std::uint64_t>(base.palette);

  // Choose (dp, q): q prime, q^{dp+1} >= k (colors encodable) and
  // q >= Δ·dp/target (defect bound); minimize the palette q².
  std::uint64_t best_q = 0;
  unsigned best_dp = 0;
  for (unsigned dp = 1; dp <= 16; ++dp) {
    std::uint64_t need = ceil_div(static_cast<std::uint64_t>(delta) * dp,
                                  static_cast<std::uint64_t>(target_defect));
    // Integer (dp+1)-th root, rounded up, for encodability.
    std::uint64_t root = 1;
    while (ipow_sat(root, dp + 1) < k) ++root;
    const std::uint64_t q = next_prime(std::max<std::uint64_t>({2, need, root}));
    if (best_q == 0 || q < best_q) {
      best_q = q;
      best_dp = dp;
    }
  }
  const std::uint64_t q = best_q;
  const unsigned dp = best_dp;
  CKP_CHECK(ipow_sat(q, dp + 1) >= k);

  DefectiveColoringResult out;
  out.colors.assign(static_cast<std::size_t>(n), -1);
  // One synchronous round: every vertex evaluates its polynomial against
  // its neighbors' and picks the least-agreeing evaluation point.
  for (NodeId v = 0; v < n; ++v) {
    const auto mine = static_cast<std::uint64_t>(
        base.colors[static_cast<std::size_t>(v)]);
    std::uint64_t best_x = 0;
    int best_agreements = INT32_MAX;
    for (std::uint64_t x = 0; x < q; ++x) {
      const int val = eval_color_poly(mine, q, dp, x);
      int agreements = 0;
      for (NodeId u : g.neighbors(v)) {
        const auto theirs = static_cast<std::uint64_t>(
            base.colors[static_cast<std::size_t>(u)]);
        if (eval_color_poly(theirs, q, dp, x) == val) ++agreements;
      }
      if (agreements < best_agreements) {
        best_agreements = agreements;
        best_x = x;
      }
      if (best_agreements == 0) break;
    }
    // Averaging bound: sum over x of agreements <= Δ·dp, so the best x has
    // <= floor(Δ·dp / q) <= target agreements.
    CKP_CHECK_MSG(best_agreements <= target_defect,
                  "Kuhn defect bound violated at node " << v);
    out.colors[static_cast<std::size_t>(v)] = static_cast<int>(
        best_x * q + static_cast<std::uint64_t>(
                         eval_color_poly(mine, q, dp, best_x)));
  }
  ledger.charge(1);

  // Note: best_agreements bounds v's defect against neighbors' OLD colors'
  // polynomials at v's chosen x — but neighbors pick their own x. Two
  // neighbors share the NEW color only if they chose the same x AND their
  // polynomials agree there; that event is contained in v's agreement count
  // at its own x, so the per-vertex guarantee carries over.
  for (NodeId v = 0; v < n; ++v) {
    int defect = 0;
    for (NodeId u : g.neighbors(v)) {
      if (out.colors[static_cast<std::size_t>(u)] ==
          out.colors[static_cast<std::size_t>(v)]) {
        ++defect;
      }
    }
    out.max_defect = std::max(out.max_defect, defect);
  }
  CKP_CHECK(out.max_defect <= target_defect);
  if (out_palette != nullptr) {
    *out_palette = static_cast<int>(q * q);
  }
  out.rounds = ledger.rounds() - start_rounds;
  return out;
}

VerifyResult verify_defective_coloring(const Graph& g,
                                       std::span<const int> colors, int palette,
                                       int defect) {
  if (colors.size() != static_cast<std::size_t>(g.num_nodes())) {
    return VerifyResult::fail_at_node(kInvalidNode, "label count != node count");
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const int c = colors[static_cast<std::size_t>(v)];
    if (c < 0 || c >= palette) {
      return VerifyResult::fail_at_node(v, "color outside palette");
    }
    int same = 0;
    for (NodeId u : g.neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] == c) ++same;
    }
    if (same > defect) {
      std::ostringstream os;
      os << "node " << v << " has " << same << " same-colored neighbors > "
         << defect;
      return VerifyResult::fail_at_node(v, os.str());
    }
  }
  return VerifyResult::pass();
}

}  // namespace ckp
