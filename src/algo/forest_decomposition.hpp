// Peeling-based H-partition of forests (Barenboim–Elkin).
//
// Repeatedly remove all vertices whose degree in the remaining graph is at
// most `threshold`. In a forest fewer than 2n/(t+1) vertices have degree
// > t, so each peel keeps at most that fraction and the number of layers is
// O(log_{(t+1)/2} n). Every vertex has at most `threshold` neighbors in its
// own or higher layers — the invariant the tree-coloring algorithm
// (Theorem 9) consumes. Each peel is one LOCAL round.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

struct ForestDecomposition {
  std::vector<int> layer;  // per node, in [0, num_layers)
  int num_layers = 0;
  int threshold = 0;
};

// Requires threshold >= 1. Works on any graph but only guarantees
// O(log n) layers on forests (and graphs of arboricity <= threshold/2);
// throws CheckFailure if peeling stalls (some residual graph has minimum
// degree > threshold), which cannot happen on forests with threshold >= 2.
ForestDecomposition decompose_forest(const Graph& g, int threshold,
                                     RoundLedger& ledger);

// Verifies the decomposition invariant: every node has at most `threshold`
// neighbors in its own or higher layers.
bool decomposition_valid(const Graph& g, const ForestDecomposition& d);

}  // namespace ckp
