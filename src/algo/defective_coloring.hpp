// Defective coloring: a d-defective c-coloring allows every vertex up to d
// same-colored neighbors. Trading defect for palette (c ≈ Δ/(d+1) colors
// suffice) is the engine inside the sublinear-in-Δ deterministic coloring
// algorithms the introduction cites (Barenboim PODC'15, Fraigniaud et al.
// FOCS'16).
//
// The implementation is schedule-greedy: with a proper schedule (Theorem 2
// reduced), each vertex picks the color minimizing the number of
// already-colored neighbors holding it; by pigeonhole that count is at most
// ⌊Δ/c⌋, so palette c gives defect d = ⌊Δ/c⌋ deterministically in
// O(Δ log Δ + log* n) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "lcl/problem.hpp"
#include "local/context.hpp"

namespace ckp {

struct DefectiveColoringResult {
  std::vector<int> colors;  // values [0, palette)
  int max_defect = 0;       // measured
  int rounds = 0;
};

// Greedy min-load heuristic: colors g with `palette` colors; each vertex's
// defect at pick time is <= floor(Δ/palette) by pigeonhole, but later
// neighbors may add to it — the *final* defect is measured and returned,
// with no worst-case pointwise guarantee (the classical counterexamples are
// why Kuhn's construction below exists). delta >= Δ(G); palette >= 1.
DefectiveColoringResult defective_coloring_greedy(
    const Graph& g, const std::vector<std::uint64_t>& ids, int delta,
    int palette, RoundLedger& ledger);

// Kuhn (PODC'09)-style one-round defective recoloring with a *guaranteed*
// bound: starting from the Theorem 2 coloring (palette k), encode colors as
// degree-dp polynomials over F_q and let every vertex pick the evaluation
// point x minimizing agreements with its neighbors. Distinct polynomials
// agree on <= dp points, so the average (hence minimum) agreement count is
// <= Δ·dp/q: choosing q >= Δ·dp/target gives defect <= target_defect with a
// palette of q² = O((Δ·dp/target)²) colors, in O(log* n) + 1 rounds.
// Requires target_defect >= 1 (target 0 is proper coloring — use Theorem 2).
DefectiveColoringResult defective_coloring_kuhn(
    const Graph& g, const std::vector<std::uint64_t>& ids, int delta,
    int target_defect, RoundLedger& ledger, int* out_palette = nullptr);

// Every label in range and every vertex has at most `defect` same-colored
// neighbors.
VerifyResult verify_defective_coloring(const Graph& g,
                                       std::span<const int> colors, int palette,
                                       int defect);

}  // namespace ckp
