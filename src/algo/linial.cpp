#include "algo/linial.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/math.hpp"
#include "util/primes.hpp"

namespace ckp {
namespace {

// Largest s with s^r <= x (integer r-th root).
std::uint64_t iroot(std::uint64_t x, unsigned r) {
  CKP_CHECK(r >= 1);
  if (r == 1 || x <= 1) return x;
  auto s = static_cast<std::uint64_t>(
      std::pow(static_cast<double>(x), 1.0 / static_cast<double>(r)));
  while (s > 1 && ipow_sat(s, r) > x) --s;
  while (ipow_sat(s + 1, r) <= x) ++s;
  return s;
}

// Smallest s with s^r >= x.
std::uint64_t iroot_ceil(std::uint64_t x, unsigned r) {
  const std::uint64_t s = iroot(x, r);
  return ipow_sat(s, r) == x ? s : s + 1;
}

struct DegreeChoice {
  unsigned d = 0;
  std::uint64_t q = 0;
  std::uint64_t palette = 0;  // q*q
};

// Chooses the polynomial degree d and field size q minimizing the output
// palette q² subject to q >= dΔ+1 and q^{d+1} >= k.
DegreeChoice choose_parameters(std::uint64_t k, int delta) {
  CKP_CHECK(k >= 2);
  CKP_CHECK(delta >= 1);
  DegreeChoice best;
  for (unsigned d = 1; d <= 64; ++d) {
    const std::uint64_t lower_bound_q =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(d) * static_cast<std::uint64_t>(delta) + 1,
                                iroot_ceil(k, d + 1));
    // Once the degree constraint alone exceeds the best palette, larger d
    // cannot help.
    if (best.palette != 0 &&
        ipow_sat(static_cast<std::uint64_t>(d) * static_cast<std::uint64_t>(delta) + 1, 2) >= best.palette) {
      break;
    }
    const std::uint64_t q = next_prime(lower_bound_q);
    CKP_CHECK(ipow_sat(q, d + 1) >= k);
    const std::uint64_t palette = ipow_sat(q, 2);
    if (best.palette == 0 || palette < best.palette) {
      best = {d, q, palette};
    }
  }
  CKP_CHECK(best.palette != 0);
  return best;
}

// Digits of `c` base q, least significant first, exactly `len` digits.
void digits_of(std::uint64_t c, std::uint64_t q, unsigned len,
               std::vector<std::uint64_t>& out) {
  out.assign(len, 0);
  for (unsigned i = 0; i < len; ++i) {
    out[i] = c % q;
    c /= q;
  }
  CKP_CHECK_MSG(c == 0, "color does not fit in q^" << len);
}

// Horner evaluation of the polynomial with coefficients `coef` at x mod q.
std::uint64_t eval_poly(const std::vector<std::uint64_t>& coef, std::uint64_t x,
                        std::uint64_t q) {
  std::uint64_t acc = 0;
  for (auto it = coef.rbegin(); it != coef.rend(); ++it) {
    acc = (acc * x + *it) % q;
  }
  return acc;
}

}  // namespace

std::uint64_t linial_step_palette(std::uint64_t k, int delta) {
  if (k <= 2) return k;
  const auto choice = choose_parameters(k, delta);
  return std::min(choice.palette, k);
}

std::vector<std::uint64_t> linial_reduce_once(
    const Graph& g, const std::vector<std::uint64_t>& colors, std::uint64_t k,
    int delta, RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(colors.size() == static_cast<std::size_t>(n));
  CKP_CHECK_MSG(delta >= g.max_degree(),
                "delta bound below the true maximum degree");
  for (auto c : colors) CKP_CHECK(c < k);

  const auto choice = choose_parameters(k, delta);
  CKP_CHECK_MSG(choice.palette < k, "no reduction possible from palette " << k);
  const std::uint64_t q = choice.q;
  const unsigned coeffs = choice.d + 1;

  // Precompute every node's polynomial (its color's base-q digits).
  std::vector<std::vector<std::uint64_t>> poly(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    digits_of(colors[static_cast<std::size_t>(v)], q, coeffs,
              poly[static_cast<std::size_t>(v)]);
  }

  std::vector<std::uint64_t> next(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    bool found = false;
    // Neighbors rule out at most dΔ < q points, so some x always works.
    for (std::uint64_t x = 0; x < q && !found; ++x) {
      const std::uint64_t mine = eval_poly(poly[static_cast<std::size_t>(v)], x, q);
      bool clash = false;
      for (NodeId u : nbrs) {
        CKP_CHECK_MSG(colors[static_cast<std::size_t>(u)] !=
                          colors[static_cast<std::size_t>(v)],
                      "input coloring not proper at edge {" << v << "," << u
                                                            << "}");
        if (eval_poly(poly[static_cast<std::size_t>(u)], x, q) == mine) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        next[static_cast<std::size_t>(v)] = x * q + mine;
        found = true;
      }
    }
    CKP_CHECK_MSG(found, "no collision-free evaluation point found");
  }
  ledger.charge(1);
  return next;
}

LinialColoring linial_coloring(const Graph& g,
                               const std::vector<std::uint64_t>& ids,
                               int delta, RoundLedger& ledger) {
  CKP_CHECK(ids.size() == static_cast<std::size_t>(g.num_nodes()));
  delta = std::max({delta, g.max_degree(), 1});
  std::uint64_t k = 2;
  for (auto id : ids) k = std::max(k, id + 1);

  std::vector<std::uint64_t> colors = ids;
  const int start_rounds = ledger.rounds();
  while (true) {
    const std::uint64_t next_palette = linial_step_palette(k, delta);
    if (next_palette >= k) break;
    colors = linial_reduce_once(g, colors, k, delta, ledger);
    k = next_palette;
  }
  LinialColoring out;
  CKP_CHECK_MSG(k <= static_cast<std::uint64_t>(INT32_MAX),
                "fixed-point palette does not fit in int");
  out.palette = static_cast<int>(k);
  out.rounds = ledger.rounds() - start_rounds;
  out.colors.resize(colors.size());
  for (std::size_t i = 0; i < colors.size(); ++i) {
    out.colors[i] = static_cast<int>(colors[i]);
  }
  return out;
}

std::uint64_t linial_fixed_point_palette(int delta) {
  CKP_CHECK(delta >= 1);
  std::uint64_t k = 1ULL << 62;
  while (true) {
    const std::uint64_t next = linial_step_palette(k, delta);
    if (next >= k) return k;
    k = next;
  }
}

}  // namespace ckp
