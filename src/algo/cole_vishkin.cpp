#include "algo/cole_vishkin.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace ckp {
namespace {

// The Cole–Vishkin step for one node: lowest differing bit against the
// parent's color, encoded as 2*i + bit.
std::uint64_t cv_step(std::uint64_t mine, std::uint64_t parent_color) {
  CKP_DCHECK(mine != parent_color);
  const std::uint64_t diff = mine ^ parent_color;
  const int i = std::countr_zero(diff);
  return 2 * static_cast<std::uint64_t>(i) + ((mine >> i) & 1);
}

}  // namespace

ColeVishkinResult cole_vishkin_tree(const Graph& g,
                                    const std::vector<NodeId>& parent,
                                    const std::vector<std::uint64_t>& ids,
                                    RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(parent.size() == static_cast<std::size_t>(n));
  CKP_CHECK(ids.size() == static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = parent[static_cast<std::size_t>(v)];
    if (p != kInvalidNode) {
      CKP_CHECK_MSG(g.has_edge(v, p), "parent of " << v << " is not adjacent");
    }
  }
  const int start_rounds = ledger.rounds();

  std::vector<std::uint64_t> color = ids;
  std::uint64_t palette = 0;
  for (auto c : color) palette = std::max(palette, c + 1);

  // Phase 1: iterate the bit trick until the palette stops shrinking (6).
  while (palette > 6) {
    std::vector<std::uint64_t> next(color.size());
    for (NodeId v = 0; v < n; ++v) {
      const NodeId p = parent[static_cast<std::size_t>(v)];
      // Roots pretend their parent holds a different color: flip bit 0.
      const std::uint64_t pc = (p == kInvalidNode)
                                   ? (color[static_cast<std::size_t>(v)] ^ 1)
                                   : color[static_cast<std::size_t>(p)];
      next[static_cast<std::size_t>(v)] =
          cv_step(color[static_cast<std::size_t>(v)], pc);
    }
    color = std::move(next);
    ledger.charge(1);
    // New palette: 2 * bit-length of old palette.
    std::uint64_t bits = 1;
    while ((1ULL << bits) < palette) ++bits;
    palette = 2 * bits;
    if (palette < 6) palette = 6;
  }

  // Phase 2: shift-down + recolor classes 5, 4, 3. After a shift-down every
  // node's children share one color, so each node sees at most two distinct
  // colors among its tree neighbors and a palette of 3 suffices.
  for (std::uint64_t drop = 5; drop >= 3; --drop) {
    // Shift-down: take the parent's color; roots switch to a color different
    // from their own (any fixed rule works; children will copy this round's
    // value next shift, not now, so only self-distinctness matters).
    std::vector<std::uint64_t> shifted(color.size());
    for (NodeId v = 0; v < n; ++v) {
      const NodeId p = parent[static_cast<std::size_t>(v)];
      if (p == kInvalidNode) {
        // Any color different from the root's own keeps the shifted
        // coloring proper; staying within {0..drop} never reintroduces an
        // already-eliminated class.
        shifted[static_cast<std::size_t>(v)] =
            (color[static_cast<std::size_t>(v)] + 1) % (drop + 1);
      } else {
        shifted[static_cast<std::size_t>(v)] =
            color[static_cast<std::size_t>(p)];
      }
    }
    color = std::move(shifted);
    ledger.charge(1);
    // Recolor class `drop`: each member sees <= 2 distinct neighbor colors
    // (parent's, and the single color all its children share).
    for (NodeId v = 0; v < n; ++v) {
      if (color[static_cast<std::size_t>(v)] != drop) continue;
      bool used[6] = {false, false, false, false, false, false};
      for (NodeId u : g.neighbors(v)) {
        const std::uint64_t cu = color[static_cast<std::size_t>(u)];
        if (cu < 3) used[cu] = true;
      }
      std::uint64_t pick = 0;
      while (pick < 3 && used[pick]) ++pick;
      CKP_CHECK_MSG(pick < 3, "shift-down invariant violated at node " << v);
      color[static_cast<std::size_t>(v)] = pick;
    }
    ledger.charge(1);
  }

  ColeVishkinResult out;
  out.colors.resize(color.size());
  for (std::size_t i = 0; i < color.size(); ++i) {
    CKP_CHECK(color[i] < 3);
    out.colors[i] = static_cast<int>(color[i]);
  }
  out.rounds = ledger.rounds() - start_rounds;
  return out;
}

}  // namespace ckp
