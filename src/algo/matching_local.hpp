// Engine ports of maximal matching on the packed fast path.
//
// Unlike the array versions (matching_randomized / matching_deterministic),
// which materialize the line graph or per-edge arrays, these run the
// *node*-level engine on G directly: each node simulates its incident edges
// through a handshake protocol — every unmatched node proposes its best live
// incident edge, and an edge joins the matching exactly when both endpoints
// propose it. One proposal/resolve pair costs two engine rounds, matching
// the O(1)-rounds-per-line-graph-round simulation the array versions charge.
//
// matching_randomized_local is RandLOCAL. Edge randomness is drawn
// statelessly — draw(e, t) = mix_seed(seed, label(e), t) — so both endpoints
// of an edge compute the same value with no communication (the standard
// "one endpoint draws on the edge's behalf" convention, collapsed to a
// shared hash) and the engine allocates no per-node RNG streams at all
// (needs_rng = false). Edge labels are the edge indices, synthesized
// internally; the proposal field caps m at 2^26 edges.
//
// matching_deterministic_local is DetLOCAL: nodes publish their IDs and
// greedily match the lexicographically smallest live incident edge
// (priority = (min ID, max ID)), which needs no randomness and terminates
// in O(longest increasing edge-priority chain) proposal rounds; `completed`
// reports whether the cap sufficed. IDs must be unique and < 2^28 so an
// edge priority packs into one word.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/engine.hpp"

namespace ckp {

struct MatchingLocalResult {
  std::vector<char> in_matching;  // per edge
  int rounds = 0;
  bool completed = true;  // false if max_rounds was hit
  std::uint64_t engine_bytes = 0;
};

// RandLOCAL (ids must be empty; edge_labels must be empty — they are
// synthesized). Requires num_edges < 2^26.
MatchingLocalResult matching_randomized_local(const LocalInput& input,
                                              int max_rounds = 1 << 20,
                                              const EngineOptions& options = {});

// DetLOCAL (ids required, unique, < 2^28).
MatchingLocalResult matching_deterministic_local(
    const LocalInput& input, int max_rounds = 1 << 20,
    const EngineOptions& options = {});

}  // namespace ckp
