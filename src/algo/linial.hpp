// Linial's color reduction (Theorems 1 and 2 of the paper).
//
// Theorem 1 (one-round reduction): a graph k-colored can be recolored with
// O(Δ² log k) colors in ONE round. The constructive version implemented here
// encodes each color c as a polynomial p_c of degree <= d over a prime field
// F_q with q >= dΔ+1 and q^{d+1} >= k; node v picks an evaluation point x
// such that p_v(x) differs from p_u(x) for every neighbor u (possible since
// two distinct degree-d polynomials agree on <= d points, so neighbors rule
// out <= dΔ < q points), and its new color is the pair (x, p_v(x)) — a
// palette of q² colors. The implementation chooses the degree d minimizing
// the resulting palette.
//
// Theorem 2 (iterated): starting from unique IDs (an n^O(1)-coloring),
// iterating the one-round reduction reaches a palette of β·Δ² colors in
// O(log* n − log* Δ + 1) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

// The palette produced by one reduction round from palette `k` at maximum
// degree `delta` (no graph needed — it is a function of k and Δ only).
// Returns k itself when no reduction is possible (palette at fixed point).
std::uint64_t linial_step_palette(std::uint64_t k, int delta);

// One synchronous round of Linial reduction. `colors` must be a proper
// coloring with values in [0, k). Returns a proper coloring with values in
// [0, linial_step_palette(k, delta)). Charges one round.
std::vector<std::uint64_t> linial_reduce_once(const Graph& g,
                                              const std::vector<std::uint64_t>& colors,
                                              std::uint64_t k, int delta,
                                              RoundLedger& ledger);

struct LinialColoring {
  std::vector<int> colors;
  int palette = 0;
  int rounds = 0;  // rounds spent inside this call
};

// Theorem 2: reduce from the implicit ID coloring (palette 2^id_bits) to the
// fixed-point palette of β·Δ² colors. `delta` must be >= Δ(G); passing a
// larger Δ is allowed (the algorithm then behaves as if the graph were
// embedded in a Δ-regular one, which the speedup transform relies on).
LinialColoring linial_coloring(const Graph& g,
                               const std::vector<std::uint64_t>& ids,
                               int delta, RoundLedger& ledger);

// The fixed-point palette size for maximum degree `delta` (the β·Δ² of
// Theorem 2, exactly as this implementation converges).
std::uint64_t linial_fixed_point_palette(int delta);

}  // namespace ckp
