// Ghaffari-style randomized MIS with explicit graph shattering.
//
// Phase 1 (O(log Δ) + c iterations): every undecided node holds a desire
// level p_v (initially 1/2), marks itself with probability p_v, joins the
// MIS when marked with no marked neighbor, and adjusts p_v by its effective
// degree (sum of undecided neighbors' desires): halve when >= 2, else
// double (capped at 1/2).
//
// Phase 2 (shattering): the undecided residue has only small connected
// components w.h.p.; a deterministic MIS (mis_deterministic) finishes them
// using locally generated random IDs (unique w.h.p. — exactly the reduction
// the paper describes for RandLOCAL). The result records the residue size
// and largest component, which bench_mis and bench_shattering report: this
// is the graph-shattering phenomenon Theorem 3 proves unavoidable.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/engine.hpp"

namespace ckp {

struct GhaffariMisParams {
  // Phase 1 iterations; <= 0 means the default 2·ceil(log2(Δ+1)) + 6.
  int phase1_iterations = 0;
};

struct GhaffariMisResult {
  std::vector<char> in_set;
  int rounds = 0;
  int phase1_rounds = 0;
  NodeId residue_nodes = 0;             // undecided after Phase 1
  NodeId largest_residue_component = 0;  // shattering quality
};

GhaffariMisResult mis_ghaffari(const Graph& g, std::uint64_t seed,
                               RoundLedger& ledger,
                               const GhaffariMisParams& params = {});

// Engine port of the same algorithm on the packed fast path (one 8-byte
// word per node; DESIGN.md §11). Phase 1 runs desire-level marking for
// 2·iterations rounds; the phase-2 residue finishes with random 50-bit
// priorities (greedy local-max with tie redraws) instead of the array
// version's deterministic-MIS subroutine — same shattering structure, and
// the residue is still measured. RandLOCAL only (ids must be empty).
struct GhaffariLocalResult {
  std::vector<char> in_set;
  int rounds = 0;            // engine rounds consumed
  int phase1_rounds = 0;     // rounds spent before the phase-2 handoff
  NodeId residue_nodes = 0;  // nodes that reached phase 2 (shattering size)
  NodeId largest_residue_component = 0;
  bool completed = true;  // false if max_rounds was hit
  std::uint64_t engine_bytes = 0;
};

GhaffariLocalResult mis_ghaffari_local(const LocalInput& input,
                                       int max_rounds = 1 << 20,
                                       const EngineOptions& options = {},
                                       const GhaffariMisParams& params = {});

}  // namespace ckp
