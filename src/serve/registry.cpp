#include "serve/registry.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "algo/delta_coloring_local.hpp"
#include "algo/greedy_color.hpp"
#include "algo/matching_local.hpp"
#include "algo/mis_ghaffari.hpp"
#include "algo/mis_luby.hpp"
#include "algo/plus_one_coloring.hpp"
#include "algo/sinkless_local.hpp"
#include "graph/generators.hpp"
#include "graph/regular.hpp"
#include "graph/trees.hpp"
#include "lcl/verify_coloring.hpp"
#include "lcl/verify_matching.hpp"
#include "lcl/verify_mis.hpp"
#include "lcl/verify_orientation.hpp"
#include "local/ids.hpp"
#include "store/binary_io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ckp {

namespace {

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

// Rejects params the adapter did not declare — same fail-on-typo stance as
// Flags::check_unknown, so a misspelled "pallete" errors instead of running
// with the default.
void check_params(const std::string& algo, const KV& params,
                  const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : params) {
    (void)value;
    bool known = false;
    for (const auto& a : allowed) {
      if (a == key) {
        known = true;
        break;
      }
    }
    CKP_CHECK_MSG(known, "algorithm " << algo << " has no param \"" << key
                                      << "\"; valid: "
                                      << (allowed.empty() ? "(none)"
                                                          : joined(allowed)));
  }
}

// FNV-1a over a vector's element bytes — the output-digest witness. Only
// instantiated for trivially copyable element types.
template <typename T>
std::uint64_t digest_vec(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a64(std::string_view(reinterpret_cast<const char*>(v.data()),
                                  v.size() * sizeof(T)));
}

// ---------------------------------------------------------------------------
// Adapters. Each is a stateless wrapper over one packed roster entry; the
// version stamp starts at 1 and must be bumped whenever the wrapped
// algorithm's output for a fixed (graph, params, seed) changes.

class LubyAlgo final : public Algorithm {
 public:
  const std::string& name() const override {
    static const std::string kName = "luby";
    return kName;
  }
  int version() const override { return 1; }
  bool randomized() const override { return true; }
  bool needs_edge_labels() const override { return false; }

  AlgoRun run(const LocalInput& input, int max_rounds,
              const EngineOptions& options, const KV& params) const override {
    check_params(name(), params, {});
    const MisResult r = mis_luby(input, max_rounds, options);
    AlgoRun out;
    out.rounds = r.rounds;
    out.completed = r.completed;
    out.engine_bytes = r.engine_bytes;
    out.output_digest = digest_vec(r.in_set);
    out.verified = r.completed && verify_mis(*input.graph, r.in_set).ok;
    return out;
  }
};

class GhaffariAlgo final : public Algorithm {
 public:
  const std::string& name() const override {
    static const std::string kName = "ghaffari";
    return kName;
  }
  int version() const override { return 1; }
  bool randomized() const override { return true; }
  bool needs_edge_labels() const override { return false; }

  AlgoRun run(const LocalInput& input, int max_rounds,
              const EngineOptions& options, const KV& params) const override {
    check_params(name(), params, {"phase1_iterations"});
    GhaffariMisParams p;
    p.phase1_iterations =
        static_cast<int>(kv_int(params, "phase1_iterations", 0));
    const GhaffariLocalResult r =
        mis_ghaffari_local(input, max_rounds, options, p);
    AlgoRun out;
    out.rounds = r.rounds;
    out.completed = r.completed;
    out.engine_bytes = r.engine_bytes;
    out.output_digest = digest_vec(r.in_set);
    out.verified = r.completed && verify_mis(*input.graph, r.in_set).ok;
    out.metrics.emplace_back("phase1_rounds",
                             static_cast<double>(r.phase1_rounds));
    out.metrics.emplace_back("residue_nodes",
                             static_cast<double>(r.residue_nodes));
    out.metrics.emplace_back(
        "largest_residue_component",
        static_cast<double>(r.largest_residue_component));
    return out;
  }
};

class MatchingAlgo final : public Algorithm {
 public:
  explicit MatchingAlgo(bool randomized) : randomized_(randomized) {}

  const std::string& name() const override {
    static const std::string kRand = "matching_rand";
    static const std::string kDet = "matching_det";
    return randomized_ ? kRand : kDet;
  }
  int version() const override { return 1; }
  bool randomized() const override { return randomized_; }
  bool needs_edge_labels() const override { return false; }

  AlgoRun run(const LocalInput& input, int max_rounds,
              const EngineOptions& options, const KV& params) const override {
    check_params(name(), params, {});
    const MatchingLocalResult r =
        randomized_ ? matching_randomized_local(input, max_rounds, options)
                    : matching_deterministic_local(input, max_rounds, options);
    AlgoRun out;
    out.rounds = r.rounds;
    out.completed = r.completed;
    out.engine_bytes = r.engine_bytes;
    out.output_digest = digest_vec(r.in_matching);
    out.verified =
        r.completed &&
        verify_maximal_matching(*input.graph, r.in_matching).ok;
    return out;
  }

 private:
  bool randomized_;
};

class ColoringAlgo final : public Algorithm {
 public:
  explicit ColoringAlgo(bool randomized) : randomized_(randomized) {}

  const std::string& name() const override {
    static const std::string kRand = "plus_one";
    static const std::string kDet = "greedy";
    return randomized_ ? kRand : kDet;
  }
  int version() const override { return 1; }
  bool randomized() const override { return randomized_; }
  bool needs_edge_labels() const override { return false; }

  AlgoRun run(const LocalInput& input, int max_rounds,
              const EngineOptions& options, const KV& params) const override {
    check_params(name(), params, {"palette"});
    const int palette = static_cast<int>(kv_int(params, "palette", 0));
    AlgoRun out;
    std::vector<int> colors;
    if (randomized_) {
      PlusOneLocalResult r = plus_one_local(input, palette, max_rounds,
                                            options);
      out.rounds = r.rounds;
      out.completed = r.completed;
      out.engine_bytes = r.engine_bytes;
      colors = std::move(r.colors);
    } else {
      GreedyColorLocalResult r = greedy_color_local(input, palette,
                                                    max_rounds, options);
      out.rounds = r.rounds;
      out.completed = r.completed;
      out.engine_bytes = r.engine_bytes;
      colors = std::move(r.colors);
    }
    const int k = palette > 0 ? palette : input.graph->max_degree() + 1;
    out.output_digest = digest_vec(colors);
    out.verified =
        out.completed && verify_coloring(*input.graph, colors, k).ok;
    return out;
  }

 private:
  bool randomized_;
};

class SinklessAlgo final : public Algorithm {
 public:
  const std::string& name() const override {
    static const std::string kName = "sinkless";
    return kName;
  }
  int version() const override { return 1; }
  bool randomized() const override { return true; }
  bool needs_edge_labels() const override { return true; }

  AlgoRun run(const LocalInput& input, int max_rounds,
              const EngineOptions& options, const KV& params) const override {
    check_params(name(), params, {});
    // The packed state's round counter is 20 bits, so the server's default
    // cap (1 << 20) is clamped to the representable maximum. The memo key
    // still carries the *requested* cap — the clamp is a deterministic
    // function of it.
    const int capped = std::min(max_rounds, (1 << 20) - 1);
    const SinklessLocalResult r = sinkless_local(input, capped, options);
    AlgoRun out;
    out.rounds = r.rounds;
    out.completed = r.completed;
    out.engine_bytes = r.engine_bytes;
    out.output_digest = digest_vec(r.orient);
    out.verified =
        r.completed &&
        verify_sinkless_orientation(*input.graph, r.orient).ok;
    out.metrics.emplace_back("unsatisfied",
                             static_cast<double>(r.unsatisfied));
    return out;
  }
};

class Thm10Algo final : public Algorithm {
 public:
  const std::string& name() const override {
    static const std::string kName = "thm10";
    return kName;
  }
  int version() const override { return 1; }
  bool randomized() const override { return true; }
  bool needs_edge_labels() const override { return false; }

  AlgoRun run(const LocalInput& input, int max_rounds,
              const EngineOptions& options, const KV& params) const override {
    check_params(name(), params,
                 {"alpha", "growth_divisor", "cap_exponent",
                  "max_iterations"});
    Thm10Params p;
    p.alpha = kv_double(params, "alpha", p.alpha);
    p.growth_divisor = kv_double(params, "growth_divisor", p.growth_divisor);
    p.cap_exponent = kv_double(params, "cap_exponent", p.cap_exponent);
    p.max_iterations = static_cast<int>(
        kv_int(params, "max_iterations", p.max_iterations));
    const Thm10LocalResult r =
        delta_coloring_thm10_local(input, max_rounds, options, p);
    AlgoRun out;
    out.rounds = r.rounds;
    out.completed = r.completed;
    out.engine_bytes = r.engine_bytes;
    out.output_digest = digest_vec(r.colors);
    out.verified =
        r.completed &&
        verify_coloring(*input.graph, r.colors,
                        input.effective_delta()).ok;
    out.metrics.emplace_back("phase1_iterations",
                             static_cast<double>(r.phase1_iterations));
    out.metrics.emplace_back("bad_vertices",
                             static_cast<double>(r.bad_vertices));
    out.metrics.emplace_back("largest_bad_component",
                             static_cast<double>(r.largest_bad_component));
    return out;
  }
};

class Thm11Algo final : public Algorithm {
 public:
  const std::string& name() const override {
    static const std::string kName = "thm11";
    return kName;
  }
  int version() const override { return 1; }
  bool randomized() const override { return true; }
  bool needs_edge_labels() const override { return false; }

  AlgoRun run(const LocalInput& input, int max_rounds,
              const EngineOptions& options, const KV& params) const override {
    check_params(name(), params, {});
    const Thm11LocalResult r =
        delta_coloring_thm11_local(input, max_rounds, options);
    AlgoRun out;
    out.rounds = r.rounds;
    out.completed = r.completed;
    out.engine_bytes = r.engine_bytes;
    out.output_digest = digest_vec(r.colors);
    out.verified =
        r.completed &&
        verify_coloring(*input.graph, r.colors,
                        input.effective_delta()).ok;
    out.metrics.emplace_back("phase2_set_size",
                             static_cast<double>(r.phase2_set_size));
    out.metrics.emplace_back(
        "phase2_largest_component",
        static_cast<double>(r.phase2_largest_component));
    out.metrics.emplace_back("phase3_set_size",
                             static_cast<double>(r.phase3_set_size));
    return out;
  }
};

// Never-halting packed workload for budget/cancellation coverage: every
// node accumulates a mix of its own and its neighbors' words each round and
// never halts, so a run ends only via max_rounds or a budget stop. The word
// is a deterministic function of the topology and round count — cancelling
// at round r always yields the same digest — which is what lets the
// cancellation tests assert consistent (untorn) partial states.
struct SpinNode {
  static constexpr bool packed_state = true;
  static constexpr bool needs_rng = false;

  struct State {
    std::uint64_t word;
  };

  State init(const NodeEnv& env) {
    return State{mix_seed(static_cast<std::uint64_t>(env.index),
                          static_cast<std::uint64_t>(env.degree))};
  }

  bool step(State& self, const NodeEnv& env,
            std::span<const State* const> nbrs) {
    (void)env;
    std::uint64_t acc = self.word * 0x9e3779b97f4a7c15ULL;
    for (const State* nbr : nbrs) acc += nbr->word;
    self.word = acc;
    return false;
  }
};

class SpinAlgo final : public Algorithm {
 public:
  const std::string& name() const override {
    static const std::string kName = "spin";
    return kName;
  }
  int version() const override { return 1; }
  bool randomized() const override { return true; }
  bool needs_edge_labels() const override { return false; }

  AlgoRun run(const LocalInput& input, int max_rounds,
              const EngineOptions& options, const KV& params) const override {
    check_params(name(), params, {});
    SpinNode algo;
    const EngineResult<SpinNode> r =
        run_local(input, algo, max_rounds, nullptr, options);
    AlgoRun out;
    out.rounds = r.rounds;
    out.completed = false;  // by construction: spin never halts
    out.verified = false;
    out.engine_bytes = r.engine_bytes;
    std::uint64_t acc = 0xcbf29ce484222325ULL;
    for (const SpinNode::State& s : r.states) {
      acc = mix_seed(acc, s.word);
    }
    out.output_digest = acc;
    return out;
  }
};

}  // namespace

std::string GraphSpec::canonical() const {
  std::ostringstream out;
  out << "family=" << family << ";n=" << n << ";d=" << d << ";gseed=" << seed;
  return out.str();
}

const std::vector<std::string>& graph_family_roster() {
  static const std::vector<std::string> kFamilies = {
      "bipartite_regular", "random_regular", "cycle", "path",
      "complete_tree"};
  return kFamilies;
}

BuiltGraph build_graph(const GraphSpec& spec) {
  CKP_CHECK_MSG(spec.n > 0, "graph spec needs n > 0");
  CKP_CHECK_MSG(
      spec.n <= static_cast<std::uint64_t>(
                    std::numeric_limits<NodeId>::max()),
      "graph spec n=" << spec.n << " exceeds the node-id range");
  const auto n = static_cast<NodeId>(spec.n);
  BuiltGraph out;
  if (spec.family == "bipartite_regular") {
    CKP_CHECK_MSG(spec.n % 2 == 0,
                  "bipartite_regular needs even n (n = both sides), got "
                      << spec.n);
    const int d = spec.d > 0 ? spec.d : 3;
    Rng rng(mix_seed(spec.seed));
    EdgeColoredGraph colored =
        make_random_bipartite_regular(n / 2, d, rng);
    out.graph = std::move(colored.graph);
    out.edge_labels = std::move(colored.edge_color);
    out.num_labels = colored.num_colors;
  } else if (spec.family == "random_regular") {
    const int d = spec.d > 0 ? spec.d : 3;
    Rng rng(mix_seed(spec.seed));
    out.graph = make_random_regular(n, d, rng);
  } else if (spec.family == "cycle") {
    CKP_CHECK_MSG(spec.d == 0, "cycle has no degree parameter, got d="
                                   << spec.d);
    out.graph = make_cycle(n);
  } else if (spec.family == "path") {
    CKP_CHECK_MSG(spec.d == 0, "path has no degree parameter, got d="
                                   << spec.d);
    out.graph = make_path(n);
  } else if (spec.family == "complete_tree") {
    const int delta = spec.d > 0 ? spec.d : 3;
    out.graph = make_complete_tree(n, delta);
  } else {
    CKP_CHECK_MSG(false, "unknown graph family \"" << spec.family
                                                   << "\"; valid: "
                                                   << joined(
                                                          graph_family_roster()));
  }
  return out;
}

const std::vector<std::string>& algorithm_roster() {
  static const std::vector<std::string> kNames = {
      "luby",   "ghaffari", "matching_rand", "matching_det",
      "plus_one", "greedy",   "sinkless",      "spin",
      "thm10",  "thm11"};
  return kNames;
}

std::unique_ptr<Algorithm> make_algorithm(const std::string& name) {
  if (name == "luby") return std::make_unique<LubyAlgo>();
  if (name == "ghaffari") return std::make_unique<GhaffariAlgo>();
  if (name == "matching_rand") return std::make_unique<MatchingAlgo>(true);
  if (name == "matching_det") return std::make_unique<MatchingAlgo>(false);
  if (name == "plus_one") return std::make_unique<ColoringAlgo>(true);
  if (name == "greedy") return std::make_unique<ColoringAlgo>(false);
  if (name == "sinkless") return std::make_unique<SinklessAlgo>();
  if (name == "spin") return std::make_unique<SpinAlgo>();
  if (name == "thm10") return std::make_unique<Thm10Algo>();
  if (name == "thm11") return std::make_unique<Thm11Algo>();
  CKP_CHECK_MSG(false, "unknown algorithm \"" << name << "\"; valid: "
                                              << joined(algorithm_roster()));
  return nullptr;
}

LocalInput prepare_input(const Algorithm& algo, const BuiltGraph& built,
                         std::uint64_t seed) {
  LocalInput input;
  input.graph = &built.graph;
  input.seed = seed;
  if (!algo.randomized()) {
    input.ids = sequential_ids(built.graph.num_nodes());
  }
  if (algo.needs_edge_labels()) {
    CKP_CHECK_MSG(!built.edge_labels.empty(),
                  "algorithm " << algo.name()
                               << " needs an edge coloring, but the graph "
                                  "family provides none (use "
                                  "bipartite_regular)");
    input.edge_labels = built.edge_labels;
  }
  return input;
}

std::int64_t kv_int(const KV& params, const std::string& key,
                    std::int64_t def) {
  const auto it = params.find(key);
  if (it == params.end()) return def;
  const std::string& v = it->second;
  CKP_CHECK_MSG(!v.empty(), "param " << key << " has an empty value");
  errno = 0;
  char* end = nullptr;
  const std::int64_t out = std::strtoll(v.c_str(), &end, 10);
  CKP_CHECK_MSG(end != v.c_str() && end != nullptr && *end == '\0',
                "param " << key << " is not an integer: " << v);
  CKP_CHECK_MSG(errno != ERANGE,
                "param " << key << " is out of range for int64: " << v);
  return out;
}

double kv_double(const KV& params, const std::string& key, double def) {
  const auto it = params.find(key);
  if (it == params.end()) return def;
  const std::string& v = it->second;
  CKP_CHECK_MSG(!v.empty(), "param " << key << " has an empty value");
  errno = 0;
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  CKP_CHECK_MSG(end != v.c_str() && end != nullptr && *end == '\0',
                "param " << key << " is not a number: " << v);
  CKP_CHECK_MSG(errno != ERANGE,
                "param " << key << " is out of range for double: " << v);
  return out;
}

bool kv_bool(const KV& params, const std::string& key, bool def) {
  const auto it = params.find(key);
  if (it == params.end()) return def;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  CKP_CHECK_MSG(false,
                "param " << key << " is not a boolean: " << it->second);
  return def;
}

}  // namespace ckp
