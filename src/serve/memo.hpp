// Content-addressed result memoization for the job server.
//
// A completed, verified run is a pure function of the *semantic* inputs:
// the algorithm (name + version), its params, the graph spec, the run seed,
// the round cap, and which engine path ran (force_generic). Everything else
// the server can vary — thread count, scheduler, SIMD backend, budgets that
// never triggered — is bit-identity-neutral by the engine's contract
// (DESIGN.md §11), so it is deliberately EXCLUDED from the key: a result
// computed on 8 threads with AVX2 serves a 1-thread scalar resubmission.
// force_generic is INCLUDED even though the paths are differentially tested
// to be identical: the memo key must not encode a theorem the test suite is
// in the business of checking — if a path divergence ever slips in, distinct
// keys keep the store honest instead of laundering one path's output as the
// other's.
//
// Values are stored through store/ArtifactStore (atomic temp+fsync+rename;
// crash-safe) framed with the standard artifact header. The payload is the
// RunRecord's JSON line verbatim, so a memo hit re-emits the original
// record byte-identically. Corrupt or version-skewed artifacts decode as a
// miss (recompute and overwrite), matching the store-wide policy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/registry.hpp"
#include "store/artifact_store.hpp"

namespace ckp {

// The semantic identity of one run, before hashing. Assembled by the
// server from an admitted job; the canonical string is also surfaced in
// responses so clients can debug unexpected misses.
struct MemoFacts {
  std::string algorithm;
  int algo_version = 0;
  KV params;
  GraphSpec graph;
  std::uint64_t seed = 0;
  int max_rounds = 0;
  bool force_generic = false;

  // Deterministic "k=v;" rendering: params in sorted key order (KV is an
  // ordered map), every field present even at its default.
  std::string canonical() const;
};

// Store key for `facts`: "memo_<fnv1a64(canonical)>_<algorithm>". The hash
// carries the identity; the trailing algorithm name is a human debugging
// aid for anyone listing the store directory.
std::string memo_key(const MemoFacts& facts);

// RunRecord-JSONL-valued memo table over an ArtifactStore.
class ResultMemo {
 public:
  explicit ResultMemo(const ArtifactStore* store) : store_(store) {}

  bool enabled() const { return store_ != nullptr; }

  // The memoized RunRecord JSON line for `facts`, or nullopt when absent,
  // corrupt, or framed with an unexpected version (both treated as a miss).
  std::optional<std::string> lookup(const MemoFacts& facts) const;

  // Commits `record_json` (one RunRecord line) under facts' key.
  void insert(const MemoFacts& facts, const std::string& record_json) const;

 private:
  const ArtifactStore* store_;  // not owned; nullptr disables memoization
};

}  // namespace ckp
