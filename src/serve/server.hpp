// The long-running simulation job server.
//
// JobServer turns the repo's run-one-algorithm machinery into a service:
// requests arrive as single-line JSON (from a stdin pipe or the Unix socket
// in tools/ckp_serve.cpp), are validated and admitted into a bounded queue
// on the transport thread, and a dispatcher thread fans each batch out
// across the shared ThreadPool via work-stealing (one job per chunk, so
// stragglers never idle the pool). Responses stream back through a caller-
// supplied sink, one line per event, in completion order.
//
// Protocol (one JSON object per line; unknown fields are an error):
//
//   {"op":"run","id":"j1","algo":"luby",
//    "graph":{"family":"cycle","n":4096},"seed":7,
//    "max_rounds":100000,"params":{"palette":"4"},
//    "deadline_ms":500,"step_limit":0,
//    "force_generic":false,"no_memo":false}
//   {"op":"cancel","id":"j1"}
//   {"op":"stats"}
//   {"op":"shutdown"}
//
// A run job gets exactly one terminal response: {"id","error",...} on
// rejection or failure, else {"id","done":true,"memo":...,"cancelled":...,
// "stop":...,"record":<RunRecord JSON>}. Admission also emits a non-
// terminal {"id","queued":true} so clients can distinguish "slow" from
// "dropped". cancel and stats answer immediately on the transport thread.
//
// Budgets: deadline_ms (measured from *admission*, so queue wait counts
// against the job), step_limit (cumulative node-steps), and op=cancel all
// feed the job's RunBudget, which both engine paths check at the round
// barrier — a stopped job ends on a consistent round boundary with
// cancelled=true in its record, never torn state. Completed verified
// un-budgeted runs are memoized through serve/memo.hpp; a memo hit is
// served at admission time, runs zero engine rounds, and re-emits the
// original RunRecord byte-identically.
//
// Threading: handle_line may be called from multiple transport threads
// (one per client connection); an internal transport mutex serializes the
// admission/response path, so per-client request order is preserved and
// cross-client requests interleave at line granularity. Every response
// carries the client tag of the request that caused it, and the sink —
// invoked under an internal mutex from transport threads and pool workers —
// routes each line back to that client (the single-transport Sink overload
// ignores the tag). MetricsRegistry is not thread-safe and is only touched
// under mu_.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "serve/memo.hpp"
#include "serve/registry.hpp"
#include "store/artifact_store.hpp"
#include "util/timer.hpp"

namespace ckp {

struct ServerOptions {
  // Max jobs executing concurrently (pool workers). 1 runs jobs inline on
  // the dispatcher thread, which is the only mode where engine_threads > 1
  // parallelizes rounds (inside a pool worker the engine degrades to 1
  // thread by the no-nested-parallelism rule).
  int workers = 2;
  // Bound on admitted-but-unfinished jobs; admissions beyond it are
  // rejected with an error response (backpressure, not buffering).
  int queue_limit = 64;
  // Directory for the result memo; empty disables memoization.
  std::string store_dir;
  // EngineOptions::threads for each job's rounds (0 = engine default).
  int engine_threads = 0;
  // Heartbeat spacing for the serve.jobs ProgressMeter; <= 0 disables.
  double heartbeat_seconds = 0.0;
  std::ostream* heartbeat_sink = nullptr;  // nullptr = stderr
  // Injected time source for deadlines, heartbeats, and wall clocks
  // (tests); nullptr = the real steady clock.
  NowFn now = nullptr;
};

class JobServer {
 public:
  // Receives each response line (no trailing newline). Called under the
  // server's sink mutex, possibly from pool workers.
  using Sink = std::function<void(const std::string& line)>;
  // Multi-client variant: `client` is the tag handle_line was called with
  // for the request this line answers — the transport routes it back to
  // that connection.
  using TaggedSink =
      std::function<void(const std::string& line, std::uint64_t client)>;

  JobServer(ServerOptions options, Sink sink);
  JobServer(ServerOptions options, TaggedSink sink);
  // Drains admitted jobs, then stops the dispatcher.
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  // Handles one request line; safe to call concurrently from multiple
  // transport threads (serialized internally). `client` tags every response
  // the line earns. Empty/blank lines are ignored. Malformed input emits an
  // error response; it never throws. Returns false when the line was a
  // shutdown request (after draining), true otherwise.
  bool handle_line(const std::string& line, std::uint64_t client = 0);

  // Blocks until every admitted job has emitted its terminal response.
  void drain();

  // Counter snapshot for tests/tools ("serve.jobs_admitted",
  // "serve.memo_hits", "serve.engine_rounds_total", ...).
  double counter(const std::string& name) const;

 private:
  struct Job {
    std::string id;
    std::unique_ptr<Algorithm> algo;
    KV params;
    GraphSpec graph;
    std::uint64_t seed = 1;
    int max_rounds = 1 << 20;
    bool force_generic = false;
    bool no_memo = false;
    std::unique_ptr<RunBudget> budget;  // stable address for op=cancel
    MemoFacts facts;
    std::uint64_t client = 0;  // transport tag for response routing
  };

  void admit(const JsonValue& doc, std::uint64_t client);
  void cancel(const JsonValue& doc, std::uint64_t client);
  void execute(Job& job);
  void dispatch_loop();
  void emit(const std::string& line, std::uint64_t client);
  std::string stats_json();

  ServerOptions opts_;
  TaggedSink sink_;
  std::optional<ArtifactStore> store_;
  ResultMemo memo_;
  ProgressMeter heartbeat_;

  mutable std::mutex mu_;  // queue, active set, metrics, lifecycle flags
  std::condition_variable queue_cv_;  // wakes the dispatcher
  std::condition_variable idle_cv_;   // wakes drain()
  std::deque<std::unique_ptr<Job>> queue_;
  std::map<std::string, RunBudget*> active_;  // admitted, not yet terminal
  MetricsRegistry metrics_;
  int in_flight_ = 0;     // jobs in the dispatcher's current batch
  bool stopping_ = false;

  std::mutex transport_mu_;  // serializes concurrent handle_line callers
  std::mutex sink_mu_;       // serializes sink invocations
  std::thread dispatcher_;
};

}  // namespace ckp
