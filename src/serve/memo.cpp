#include "serve/memo.hpp"

#include <sstream>

#include "store/binary_io.hpp"
#include "util/check.hpp"

namespace ckp {

namespace {

constexpr std::uint32_t kMemoKind = fourcc("SRVM");
constexpr std::uint32_t kMemoVersion = 1;

}  // namespace

std::string MemoFacts::canonical() const {
  std::ostringstream out;
  out << "algo=" << algorithm << ";ver=" << algo_version << ";";
  for (const auto& [key, value] : params) {
    out << "p." << key << "=" << value << ";";
  }
  out << graph.canonical() << ";seed=" << seed << ";max_rounds=" << max_rounds
      << ";force_generic=" << (force_generic ? 1 : 0);
  return out.str();
}

std::string memo_key(const MemoFacts& facts) {
  std::ostringstream out;
  out << "memo_" << std::hex << fnv1a64(facts.canonical()) << "_"
      << facts.algorithm;
  return out.str();
}

std::optional<std::string> ResultMemo::lookup(const MemoFacts& facts) const {
  if (store_ == nullptr) return std::nullopt;
  const std::optional<std::string> bytes = store_->load(memo_key(facts));
  if (!bytes) return std::nullopt;
  try {
    return std::string(unframe_artifact(*bytes, kMemoKind, kMemoVersion));
  } catch (const CheckFailure&) {
    return std::nullopt;  // corrupt/skewed artifact = cold entry
  }
}

void ResultMemo::insert(const MemoFacts& facts,
                        const std::string& record_json) const {
  if (store_ == nullptr) return;
  store_->commit(memo_key(facts),
                 frame_artifact(kMemoKind, kMemoVersion, record_json));
}

}  // namespace ckp
