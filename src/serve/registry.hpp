// String-keyed algorithm registry and graph-spec builder for the job
// server.
//
// The benches bind algorithms at compile time; the server binds them by
// name at admission time: a job names an algorithm ("luby", "greedy", ...),
// a graph family, KV params, and a seed, and make_algorithm() returns the
// adapter that builds the LocalInput and runs the packed roster entry
// behind it. Every adapter carries a version stamp — part of the memo key
// (src/serve/memo.hpp), so changing an algorithm's output for a given input
// invalidates its cached results by construction.
//
// Fail-on-typo stance throughout, matching Flags: unknown algorithm names,
// unknown graph families, and unknown param keys all throw CheckFailure
// with the valid set in the message; the server turns that into an error
// response instead of a silent default.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/engine.hpp"

namespace ckp {

// Job parameters, string-to-string (the line protocol's native currency).
// Typed reads happen in the adapters via the kv_* helpers below.
using KV = std::map<std::string, std::string>;

// A reproducible graph instance description. Canonicalized into the memo
// key, so two jobs naming the same spec share cached results.
struct GraphSpec {
  std::string family;      // see graph_family_roster()
  std::uint64_t n = 0;     // node count (total, both sides for bipartite)
  int d = 0;               // degree / branching parameter; 0 = family default
  std::uint64_t seed = 0;  // generation seed for the random families


  // Deterministic "family=...;n=...;d=...;gseed=..." string for memo keys
  // and error messages.
  std::string canonical() const;
};

// A built instance: the topology plus the per-edge labels (a proper edge
// coloring) when the family provides one — the Δ-sinkless input contract.
struct BuiltGraph {
  Graph graph;
  std::vector<int> edge_labels;  // empty when the family has no coloring
  int num_labels = 0;
};

// Materializes `spec` deterministically (same spec → bit-identical graph).
// Throws CheckFailure on unknown families or invalid parameters.
BuiltGraph build_graph(const GraphSpec& spec);
const std::vector<std::string>& graph_family_roster();

// Outcome of one algorithm execution, transport- and store-agnostic.
struct AlgoRun {
  int rounds = 0;
  bool completed = false;  // ran to its own halt (not capped or budgeted)
  bool verified = false;   // output checked by the matching LCL verifier
  std::uint64_t engine_bytes = 0;
  // FNV-1a over the canonical output bytes (MIS membership, colors,
  // matching, orientation). Two runs produced the same solution iff the
  // digests match — the determinism witness the memo differential tests
  // compare without shipping whole solutions through the protocol.
  std::uint64_t output_digest = 0;
  std::vector<std::pair<std::string, double>> metrics;  // adapter extras
};

// One registered algorithm: a stateless adapter from (input, params) to the
// packed roster entry it wraps. Budgets ride in EngineOptions::budget.
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual const std::string& name() const = 0;
  // Monotone stamp keyed into the serve memo; bump whenever the algorithm's
  // output for a fixed (graph, params, seed) can change.
  virtual int version() const = 0;
  // RandLOCAL (true): input gets no IDs, seed drives private randomness.
  // DetLOCAL (false): the adapter installs sequential IDs.
  virtual bool randomized() const = 0;
  // True for algorithms that consume input.edge_labels (sinkless); the
  // graph family must provide a coloring.
  virtual bool needs_edge_labels() const = 0;

  // Runs the algorithm. `input` is fully prepared by prepare_input();
  // `params` beyond the adapter's declared keys throw CheckFailure.
  virtual AlgoRun run(const LocalInput& input, int max_rounds,
                      const EngineOptions& options, const KV& params) const = 0;
};

// Registry lookup; throws CheckFailure for unknown names, listing the
// roster. Adapters are stateless, so the returned object is shareable.
std::unique_ptr<Algorithm> make_algorithm(const std::string& name);
const std::vector<std::string>& algorithm_roster();

// Builds the LocalInput an Algorithm expects on `built`: seed always,
// sequential IDs for DetLOCAL adapters, edge labels when required (throws
// if the family provided none). `built` must outlive the returned input.
LocalInput prepare_input(const Algorithm& algo, const BuiltGraph& built,
                         std::uint64_t seed);

// Typed KV reads with the Flags parsing/rejection semantics.
std::int64_t kv_int(const KV& params, const std::string& key,
                    std::int64_t def);
bool kv_bool(const KV& params, const std::string& key, bool def);
double kv_double(const KV& params, const std::string& key, double def);

}  // namespace ckp
