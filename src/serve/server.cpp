#include "serve/server.hpp"

#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "obs/run_record.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace ckp {

namespace {

// Fail-on-typo over the request object itself: a misspelled "dedline_ms"
// must error, not silently run without a deadline.
void check_members(const JsonValue& doc,
                   const std::vector<std::string>& allowed) {
  for (const auto& [name, value] : doc.object) {
    (void)value;
    bool known = false;
    for (const auto& a : allowed) {
      if (a == name) {
        known = true;
        break;
      }
    }
    CKP_CHECK_MSG(known, "unknown request field \"" << name << "\"");
  }
}

double number_field(const JsonValue& doc, const std::string& name,
                    double def) {
  const JsonValue* v = doc.find(name);
  if (v == nullptr) return def;
  return v->as_number();
}

// Integer-valued JSON number; rejects fractional values so "n":10.5 cannot
// silently truncate.
std::int64_t int_field(const JsonValue& doc, const std::string& name,
                       std::int64_t def) {
  const JsonValue* v = doc.find(name);
  if (v == nullptr) return def;
  const double num = v->as_number();
  CKP_CHECK_MSG(num == std::floor(num) && std::abs(num) <= 1e15,
                "field " << name << " is not an integer");
  return static_cast<std::int64_t>(num);
}

bool bool_field(const JsonValue& doc, const std::string& name, bool def) {
  const JsonValue* v = doc.find(name);
  if (v == nullptr) return def;
  CKP_CHECK_MSG(v->type == JsonValue::Type::Bool,
                "field " << name << " is not a boolean");
  return v->boolean;
}

std::string error_response(const std::string& id, const std::string& what) {
  JsonWriter w;
  w.begin_object();
  if (!id.empty()) w.key("id").value(id);
  w.key("error").value(what);
  w.end_object();
  return w.str();
}

std::string done_response(const std::string& id, const char* memo,
                          bool cancelled, BudgetStop stop,
                          const std::string& record_json) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("done").value(true);
  w.key("memo").value(memo);
  w.key("cancelled").value(cancelled);
  w.key("stop").value(budget_stop_name(stop));
  w.key("record").raw(record_json);
  w.end_object();
  return w.str();
}

}  // namespace

JobServer::JobServer(ServerOptions options, Sink sink)
    : JobServer(std::move(options),
                TaggedSink([sink = std::move(sink)](const std::string& line,
                                                    std::uint64_t) {
                  sink(line);
                })) {}

JobServer::JobServer(ServerOptions options, TaggedSink sink)
    : opts_(std::move(options)),
      sink_(std::move(sink)),
      store_(opts_.store_dir.empty()
                 ? std::nullopt
                 : std::make_optional<ArtifactStore>(opts_.store_dir)),
      memo_(store_ ? &*store_ : nullptr),
      heartbeat_("serve.jobs", 0, opts_.heartbeat_seconds,
                 opts_.heartbeat_sink, opts_.now) {
  CKP_CHECK_MSG(opts_.workers >= 1, "server needs workers >= 1");
  CKP_CHECK_MSG(opts_.queue_limit >= 1, "server needs queue_limit >= 1");
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

JobServer::~JobServer() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
}

bool JobServer::handle_line(const std::string& line, std::uint64_t client) {
  // Serialize concurrent transport threads: admission (including the memo
  // fast path) keeps its single-caller invariants, and each client's own
  // request order is preserved.
  std::lock_guard<std::mutex> transport_lock(transport_mu_);
  if (line.find_first_not_of(" \t\r\n") == std::string::npos) return true;
  JsonValue doc;
  std::string op;
  try {
    doc = json_parse(line);
    CKP_CHECK_MSG(doc.is_object(), "request must be a JSON object");
    op = doc.at("op").as_string();
  } catch (const CheckFailure& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      metrics_.add("serve.errors");
    }
    emit(error_response("", e.what()), client);
    return true;
  }
  if (op == "run") {
    admit(doc, client);
    return true;
  }
  if (op == "cancel") {
    cancel(doc, client);
    return true;
  }
  if (op == "stats") {
    emit(stats_json(), client);
    return true;
  }
  if (op == "shutdown") {
    drain();
    JsonWriter w;
    w.begin_object();
    w.key("shutdown").value(true);
    w.key("jobs_completed").value(counter("serve.jobs_completed"));
    w.end_object();
    emit(w.str(), client);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_.add("serve.errors");
  }
  emit(error_response("", "unknown op \"" + op + "\""), client);
  return true;
}

void JobServer::admit(const JsonValue& doc, std::uint64_t client) {
  std::string id;
  try {
    check_members(doc, {"op", "id", "algo", "graph", "seed", "max_rounds",
                        "params", "deadline_ms", "step_limit",
                        "force_generic", "no_memo"});
    id = doc.at("id").as_string();
    CKP_CHECK_MSG(!id.empty(), "job id must be non-empty");

    auto job = std::make_unique<Job>();
    job->id = id;
    job->algo = make_algorithm(doc.at("algo").as_string());

    const JsonValue& graph = doc.at("graph");
    CKP_CHECK_MSG(graph.is_object(), "field graph must be an object");
    check_members(graph, {"family", "n", "d", "gseed"});
    job->graph.family = graph.at("family").as_string();
    job->graph.n = static_cast<std::uint64_t>(int_field(graph, "n", 0));
    job->graph.d = static_cast<int>(int_field(graph, "d", 0));
    job->graph.seed =
        static_cast<std::uint64_t>(int_field(graph, "gseed", 0));

    job->seed = static_cast<std::uint64_t>(int_field(doc, "seed", 1));
    job->max_rounds =
        static_cast<int>(int_field(doc, "max_rounds", 1 << 20));
    CKP_CHECK_MSG(job->max_rounds >= 1, "max_rounds must be >= 1");
    job->force_generic = bool_field(doc, "force_generic", false);
    job->no_memo = bool_field(doc, "no_memo", false);

    if (const JsonValue* params = doc.find("params")) {
      CKP_CHECK_MSG(params->is_object(), "field params must be an object");
      for (const auto& [key, value] : params->object) {
        CKP_CHECK_MSG(value.type == JsonValue::Type::String,
                      "param " << key << " must be a JSON string");
        job->params[key] = value.string;
      }
    }

    job->budget = std::make_unique<RunBudget>();
    job->budget->now = opts_.now;
    const double deadline_ms = number_field(doc, "deadline_ms", 0.0);
    CKP_CHECK_MSG(deadline_ms >= 0.0, "deadline_ms must be >= 0");
    if (deadline_ms > 0.0) {
      job->budget->deadline =
          steady_now(opts_.now) +
          std::chrono::duration_cast<SteadyClock::duration>(
              std::chrono::duration<double, std::milli>(deadline_ms));
    }
    job->budget->step_limit =
        static_cast<std::uint64_t>(int_field(doc, "step_limit", 0));

    job->facts.algorithm = job->algo->name();
    job->facts.algo_version = job->algo->version();
    job->facts.params = job->params;
    job->facts.graph = job->graph;
    job->facts.seed = job->seed;
    job->facts.max_rounds = job->max_rounds;
    job->facts.force_generic = job->force_generic;

    // Memo fast path: a prior completed run with the same semantic identity
    // answers at admission time — zero queueing, zero engine rounds, the
    // original record re-emitted byte-identically.
    if (!job->no_memo && memo_.enabled()) {
      if (std::optional<std::string> hit = memo_.lookup(job->facts)) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          metrics_.add("serve.memo_hits");
        }
        emit(done_response(id, "hit", /*cancelled=*/false,
                           BudgetStop::kNone, *hit),
             client);
        return;
      }
      std::lock_guard<std::mutex> lock(mu_);
      metrics_.add("serve.memo_misses");
    }

    // Rejections are emitted after mu_ is released: the sink must never be
    // invoked under mu_ (a sink that consults server state — counter(),
    // stats — would otherwise close a lock cycle through sink_mu_).
    std::string reject;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (active_.find(id) != active_.end()) {
        metrics_.add("serve.errors");
        reject = "job id already in flight";
      } else if (static_cast<int>(queue_.size()) + in_flight_ >=
                 opts_.queue_limit) {
        metrics_.add("serve.jobs_rejected");
        reject = "queue full (limit " + std::to_string(opts_.queue_limit) +
                 ")";
      } else {
        job->client = client;
        active_[id] = job->budget.get();
        queue_.push_back(std::move(job));
        metrics_.add("serve.jobs_admitted");
      }
    }
    if (!reject.empty()) {
      emit(error_response(id, reject), client);
      return;
    }
    queue_cv_.notify_one();
    JsonWriter w;
    w.begin_object();
    w.key("id").value(id);
    w.key("queued").value(true);
    w.end_object();
    emit(w.str(), client);
  } catch (const CheckFailure& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      metrics_.add("serve.errors");
    }
    emit(error_response(id, e.what()), client);
  }
}

void JobServer::cancel(const JsonValue& doc, std::uint64_t client) {
  std::string id;
  bool delivered = false;
  try {
    check_members(doc, {"op", "id"});
    id = doc.at("id").as_string();
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = active_.find(id);
    if (it != active_.end()) {
      // Queued jobs trip the engine's pre-loop budget check (0 rounds);
      // running jobs stop at their next round barrier.
      it->second->request_cancel();
      delivered = true;
      metrics_.add("serve.cancels_delivered");
    }
  } catch (const CheckFailure& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      metrics_.add("serve.errors");
    }
    emit(error_response(id, e.what()), client);
    return;
  }
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("cancel_delivered").value(delivered);
  w.end_object();
  emit(w.str(), client);
}

void JobServer::execute(Job& job) {
  Timer wall(opts_.now);
  std::string response;
  bool cancelled = false;
  try {
    const BuiltGraph built = build_graph(job.graph);
    const LocalInput input = prepare_input(*job.algo, built, job.seed);
    EngineOptions eopts;
    eopts.threads = opts_.engine_threads;
    eopts.force_generic = job.force_generic;
    eopts.budget = job.budget.get();
    const AlgoRun run =
        job.algo->run(input, job.max_rounds, eopts, job.params);
    const BudgetStop stop = job.budget->stop_reason();
    cancelled =
        stop == BudgetStop::kCancelled || stop == BudgetStop::kDeadline;

    RunRecord rec;
    rec.bench = "serve";
    rec.algorithm = job.algo->name();
    rec.graph_family = job.graph.family;
    rec.n = job.graph.n;
    rec.delta = job.graph.d;
    rec.seed = job.seed;
    rec.rounds = run.rounds;
    rec.wall_seconds = wall.seconds();
    rec.verified = run.verified;
    rec.metric("completed", run.completed ? 1.0 : 0.0);
    rec.metric("cancelled", cancelled ? 1.0 : 0.0);
    rec.metric("engine_bytes", static_cast<double>(run.engine_bytes));
    // 32-bit halves are exact in doubles; together they are the full
    // output-digest determinism witness.
    rec.metric("digest_hi", static_cast<double>(run.output_digest >> 32));
    rec.metric("digest_lo",
               static_cast<double>(run.output_digest & 0xffffffffULL));
    for (const auto& [name, value] : run.metrics) rec.metric(name, value);
    const std::string record_json = rec.to_json();

    // Only a full, verified, un-budgeted success is a cacheable pure
    // function of the memo facts; a budget-stopped partial result is not.
    const bool memoize = run.completed && run.verified && !job.no_memo &&
                         stop == BudgetStop::kNone && memo_.enabled();
    if (memoize) memo_.insert(job.facts, record_json);

    {
      std::lock_guard<std::mutex> lock(mu_);
      metrics_.add("serve.jobs_completed");
      if (cancelled) metrics_.add("serve.jobs_cancelled");
      if (memoize) metrics_.add("serve.memo_stores");
      metrics_.add("serve.engine_rounds_total",
                   static_cast<double>(run.rounds));
      active_.erase(job.id);
    }
    response = done_response(job.id, job.no_memo || !memo_.enabled()
                                         ? "off"
                                         : "miss",
                             cancelled, stop, record_json);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      metrics_.add("serve.errors");
      active_.erase(job.id);
    }
    response = error_response(job.id, e.what());
  }
  emit(response, job.client);
  heartbeat_.step();
}

void JobServer::dispatch_loop() {
  for (;;) {
    std::vector<std::unique_ptr<Job>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ = static_cast<int>(batch.size());
    }
    const int workers =
        std::min(opts_.workers, static_cast<int>(batch.size()));
    if (workers <= 1) {
      // Inline on the dispatcher: the one mode where a job's own engine
      // rounds may still fan out (engine_threads > 1).
      for (auto& job : batch) execute(*job);
    } else {
      // One job per chunk under work-stealing: whichever worker drains its
      // job first claims the next, so a mix of 1 ms and 10 s jobs keeps
      // every worker busy until the batch tail.
      ThreadPool& pool = shared_pool(workers);
      auto run_jobs = [&](std::int64_t begin, std::int64_t end,
                          int chunk) {
        (void)chunk;
        for (std::int64_t i = begin; i < end; ++i) {
          execute(*batch[static_cast<std::size_t>(i)]);
        }
      };
      pool.parallel_for_dynamic(0, static_cast<std::int64_t>(batch.size()),
                                workers, static_cast<int>(batch.size()),
                                run_jobs);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ = 0;
    }
    idle_cv_.notify_all();
  }
}

void JobServer::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

double JobServer::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.counter(name);
}

std::string JobServer::stats_json() {
  JsonWriter w;
  w.begin_object();
  w.key("stats");
  {
    std::lock_guard<std::mutex> lock(mu_);
    w.raw(metrics_.to_json());
  }
  w.end_object();
  return w.str();
}

void JobServer::emit(const std::string& line, std::uint64_t client) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_(line, client);
}

}  // namespace ckp
