#include "obs/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ckp {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  CKP_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  CKP_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket bounds must be sorted");
}

void Histogram::add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  summary_.add(x);
}

std::vector<double> Histogram::powers_of_two(int count) {
  CKP_CHECK(count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = 1.0;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= 2.0;
  }
  return bounds;
}

void Histogram::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("bounds").begin_array();
  for (const double b : bounds_) w.value(b);
  w.end_array();
  w.key("counts").begin_array();
  for (const std::uint64_t c : counts_) w.value(c);
  w.end_array();
  w.key("count").value(static_cast<std::uint64_t>(summary_.count()));
  if (summary_.count() > 0) {
    w.key("mean").value(summary_.mean());
    w.key("min").value(summary_.min());
    w.key("max").value(summary_.max());
  }
  w.end_object();
}

template <typename T>
T* MetricsRegistry::find_in(NamedVec<T>& vec, const std::string& name) {
  for (auto& [k, v] : vec) {
    if (k == name) return &v;
  }
  return nullptr;
}

template <typename T>
const T* MetricsRegistry::find_in(const NamedVec<T>& vec,
                                  const std::string& name) {
  for (const auto& [k, v] : vec) {
    if (k == name) return &v;
  }
  return nullptr;
}

void MetricsRegistry::add(const std::string& name, double delta) {
  if (double* c = find_in(counters_, name)) {
    *c += delta;
  } else {
    counters_.emplace_back(name, delta);
  }
}

void MetricsRegistry::set(const std::string& name, double value) {
  if (double* g = find_in(gauges_, name)) {
    *g = value;
  } else {
    gauges_.emplace_back(name, value);
  }
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& upper_bounds) {
  if (Histogram* h = find_in(histograms_, name)) {
    CKP_CHECK_MSG(h->upper_bounds() == upper_bounds,
                  "histogram '" << name << "' re-declared with other bounds");
    return *h;
  }
  histograms_.emplace_back(name, Histogram(upper_bounds));
  return histograms_.back().second;
}

double MetricsRegistry::counter(const std::string& name) const {
  const double* c = find_in(counters_, name);
  return c ? *c : 0.0;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const double* g = find_in(gauges_, name);
  return g ? *g : 0.0;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  return find_in(histograms_, name);
}

std::vector<std::pair<std::string, double>> MetricsRegistry::snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size() + 4 * histograms_.size());
  for (const auto& [name, v] : counters_) out.emplace_back(name, v);
  for (const auto& [name, v] : gauges_) out.emplace_back(name, v);
  for (const auto& [name, h] : histograms_) {
    const Accumulator& s = h.summary();
    out.emplace_back(name + ".count", static_cast<double>(s.count()));
    if (s.count() > 0) {
      out.emplace_back(name + ".mean", s.mean());
      out.emplace_back(name + ".min", s.min());
      out.emplace_back(name + ".max", s.max());
    }
  }
  return out;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters_) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges_) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    h.write_json(w);
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace ckp
