// Structured, machine-readable records of individual measured runs.
//
// One RunRecord captures one algorithm execution on one instance: what ran,
// on which graph family at which n/Δ/seed, how many rounds it took, the
// per-phase Trace, and a free-form scalar metrics map (which is also where a
// MetricsRegistry snapshot lands). Records serialize to single-line JSON
// objects, so a file of them is JSON Lines — the format the bench trajectory
// tooling consumes.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "local/trace.hpp"

namespace ckp {

class MetricsRegistry;

// Optional origin stamp for a measured run: which commit of this repo
// produced the number, when, on which machine, built how. Empty fields are
// omitted from JSON; an all-empty provenance emits nothing at all, so the
// default --json_out stream stays byte-identical unless --provenance is on.
struct RunProvenance {
  std::string git_sha;      // HEAD of the source tree, or "unknown"
  std::string timestamp;    // ISO-8601 UTC, e.g. "2026-08-09T12:00:00Z"
  std::string host;         // gethostname()
  std::string build_flags;  // CMAKE_BUILD_TYPE + CXX flags baked at build
  std::string simd;         // selected SIMD backend: "avx2", "neon", "scalar"

  bool empty() const {
    return git_sha.empty() && timestamp.empty() && host.empty() &&
           build_flags.empty() && simd.empty();
  }
};

// Best-effort snapshot of the current build/process origin: resolves the
// repo's .git/HEAD (following refs, then packed-refs) without invoking git,
// so it works in minimal containers. Never throws; unresolvable fields come
// back as "unknown".
RunProvenance collect_provenance();

struct RunRecord {
  std::string bench;         // experiment id, e.g. "E1_separation"
  std::string algorithm;     // e.g. "thm10", "be_tree_coloring"
  std::string graph_family;  // e.g. "complete_tree", "random_regular"
  std::uint64_t n = 0;
  int delta = 0;
  std::uint64_t seed = 0;    // 0 for deterministic runs
  int rounds = 0;
  double wall_seconds = 0.0;
  bool verified = false;     // output checked by an LCL verifier
  Trace trace;               // optional per-phase structure
  RunProvenance provenance;  // emitted only when non-empty (--provenance)

  // Appends (or overwrites) a named scalar metric.
  void metric(const std::string& name, double value);
  // Folds a MetricsRegistry snapshot into the metrics map.
  void absorb(const MetricsRegistry& registry);

  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }

  // One compact JSON object on a single line (no trailing newline). For a
  // record built by from_json_line the original line is returned verbatim,
  // so checkpointed records re-emit byte-identically (re-serializing a
  // parsed double is not guaranteed to reproduce its source text).
  std::string to_json() const;

  // Parses one JSONL line written by to_json back into a RunRecord (fields,
  // metrics, and trace), keeping the raw line for verbatim re-emission.
  // Throws CheckFailure on malformed input. Used by checkpoint resume;
  // treat the result as a read-only snapshot (metric() drops the raw line).
  static RunRecord from_json_line(const std::string& line);

 private:
  std::vector<std::pair<std::string, double>> metrics_;
  std::string raw_json_;  // set by from_json_line; cleared on mutation
};

// Writes RunRecords as JSON Lines. An empty path makes the writer a no-op
// sink so call sites need no conditionals. The file is truncated on open.
class JsonlWriter {
 public:
  explicit JsonlWriter(std::string path);

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  void write(const RunRecord& record);
  std::size_t rows_written() const { return rows_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace ckp
