// Multi-seed trial fan-out for the benches.
//
// Sharpening empirical failure-probability estimates needs orders of
// magnitude more random trials than the historical 3-seed sweeps, and
// independent seeds are embarrassingly parallel. run_trials executes
// trial_fn(0..trials-1) on the shared thread pool and returns the
// concatenated RunRecords in trial order, so JSONL output, tables, and
// accumulated statistics are byte-identical for every thread count.
//
// Trial bodies must be independent: derive inputs and seeds from the trial
// index, share only const data (the Graph under test), and never touch the
// reporter — records are handed back and added on the calling thread.
// run_local calls inside a trial detect the fan-out and run sequentially
// (no nested parallelism), which keeps the outer, better-grained
// parallelism.
#pragma once

#include <functional>
#include <vector>

#include "obs/run_record.hpp"

namespace ckp {

// One trial may measure several algorithm executions, hence the vector.
using TrialFn = std::function<std::vector<RunRecord>(int trial)>;

std::vector<RunRecord> run_trials(int trials, int threads,
                                  const TrialFn& trial_fn);

// The value of metric `name` on `record`, or `def` when absent. The benches
// rebuild their summary tables from the records run_trials hands back, so
// lookups of the metrics stashed by the trial bodies are common.
double metric_or(const RunRecord& record, const std::string& name, double def);

}  // namespace ckp
