// Multi-seed trial fan-out for the benches.
//
// Sharpening empirical failure-probability estimates needs orders of
// magnitude more random trials than the historical 3-seed sweeps, and
// independent seeds are embarrassingly parallel. run_trials executes
// trial_fn(0..trials-1) on the shared thread pool and returns the
// concatenated RunRecords in trial order, so JSONL output, tables, and
// accumulated statistics are byte-identical for every thread count.
//
// Trial bodies must be independent: derive inputs and seeds from the trial
// index, share only const data (the Graph under test), and never touch the
// reporter — records are handed back and added on the calling thread.
// run_local calls inside a trial detect the fan-out and run sequentially
// (no nested parallelism), which keeps the outer, better-grained
// parallelism.
//
// run_trials_subset is the primitive underneath: it runs an arbitrary set
// of trial indices (the checkpoint layer uses it to re-run only the seeds a
// killed sweep had not yet committed) and can invoke a completion hook per
// trial as it finishes — on the worker thread, so the hook must be
// thread-safe; the artifact store's atomic commit is.
#pragma once

#include <functional>
#include <vector>

#include "obs/run_record.hpp"

namespace ckp {

// One trial may measure several algorithm executions, hence the vector.
using TrialFn = std::function<std::vector<RunRecord>(int trial)>;

// Called right after trial `trial` finishes, with its records, on the
// worker thread that ran it.
using TrialDoneFn =
    std::function<void(int trial, const std::vector<RunRecord>& records)>;

std::vector<RunRecord> run_trials(int trials, int threads,
                                  const TrialFn& trial_fn);

// Runs exactly the trials in `ids` (any order; each id passed to trial_fn),
// returning one record vector per id, aligned with `ids`. `on_done`, when
// set, fires per trial as it completes.
std::vector<std::vector<RunRecord>> run_trials_subset(
    const std::vector<int>& ids, int threads, const TrialFn& trial_fn,
    const TrialDoneFn& on_done = nullptr);

// The value of metric `name` on `record`, or `def` when absent. The benches
// rebuild their summary tables from the records run_trials hands back, so
// lookups of the metrics stashed by the trial bodies are common.
double metric_or(const RunRecord& record, const std::string& name, double def);

}  // namespace ckp
