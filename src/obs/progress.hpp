// Rate-limited progress heartbeats for hours-long runs.
//
// A checkpointed sweep that is quietly working for an hour is
// indistinguishable from one that hung. ProgressMeter gives long loops a
// liveness signal: call step() per completed unit and, at most once every
// `every_seconds`, one self-describing JSON line lands on the sink (stderr
// by default — stdout stays reserved for tables and --json_out artifacts):
//
//   {"progress":"E1.complete_tree.d16.n256","done":5,"total":24,
//    "elapsed_seconds":12.1,"eta_seconds":45.9,"rss_bytes":73400320}
//
// Events are out-of-band by design: they never enter RunRecords or the
// --json_out stream, so byte-stability of the measurement artifacts is
// untouched (DESIGN.md §10). The process-wide interval is set once by
// BenchReporter from --progress_every (0 = disabled, the default); meters
// constructed with kGlobalInterval inherit it, so library code like
// run_trials_checkpointed emits heartbeats without per-call plumbing.
//
// ProgressObserver is the same signal for a single long engine run, fed
// from the per-round observer hooks (round / max_rounds / halted fraction).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

#include "obs/observer.hpp"
#include "util/timer.hpp"

namespace ckp {

// Process-wide default heartbeat interval in seconds; <= 0 disables all
// meters constructed with kGlobalInterval. Set by BenchReporter from
// --progress_every.
void set_progress_interval(double seconds);
double progress_interval();

// Sentinel interval: inherit progress_interval() at construction.
inline constexpr double kGlobalInterval = -1.0;

class ProgressMeter {
 public:
  // `total` == 0 means unknown (events omit total/ETA). `every_seconds` is
  // the minimum spacing between events; kGlobalInterval inherits the
  // process default and <= 0 disables the meter entirely. `sink` defaults
  // to std::cerr; tests inject a stringstream. `now` injects a time source
  // (util/timer.hpp) so rate limiting is testable without sleeping; the
  // default is the real steady clock — never the wall clock, which would
  // make the rate limiter misfire under clock adjustments.
  ProgressMeter(std::string label, std::uint64_t total,
                double every_seconds = kGlobalInterval,
                std::ostream* sink = nullptr, NowFn now = nullptr);
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  bool enabled() const { return every_ > 0.0; }

  // Marks `delta` units done. Thread-safe: trial completion hooks fire on
  // pool workers. Emits when at least `every_seconds` passed since the
  // last event (the first step always emits, so a sweep announces itself).
  void step(std::uint64_t delta = 1);

  // Forces a final event (done == position, "final":true) if the meter is
  // enabled and ever stepped. Idempotent; also run by the destructor.
  void finish();

  std::uint64_t position();

 private:
  void emit(std::uint64_t done, bool final);  // caller holds mu_

  std::string label_;
  std::uint64_t total_;
  double every_ = 0.0;
  std::ostream* sink_;  // not owned
  Timer timer_;
  std::mutex mu_;
  std::uint64_t done_ = 0;
  double last_emit_seconds_ = 0.0;
  bool emitted_any_ = false;
  bool finished_ = false;
};

// Heartbeats for one engine run, driven by the per-round observer hooks:
//   {"progress":label,"round":r,"max_rounds":m,"halted_fraction":f,
//    "elapsed_seconds":e,"rss_bytes":b}
// Rate-limited like ProgressMeter; emits a final event from on_run_end.
// Chain another observer (e.g. MetricsObserver) via `next` to keep a single
// observer slot on run_local.
class ProgressObserver : public EngineObserver {
 public:
  explicit ProgressObserver(std::string label,
                            double every_seconds = kGlobalInterval,
                            std::ostream* sink = nullptr,
                            EngineObserver* next = nullptr,
                            NowFn now = nullptr);

  void on_round_begin(int round) override;
  void on_round_end(const RoundStats& stats) override;
  void on_node_halt(NodeId v, int round) override;
  void on_run_end(const RunStats& stats) override;

  bool enabled() const { return every_ > 0.0; }

 private:
  std::string label_;
  double every_ = 0.0;
  std::ostream* sink_;      // not owned
  EngineObserver* next_;    // not owned; forwarded to when non-null
  Timer timer_;
  double last_emit_seconds_ = 0.0;
};

}  // namespace ckp
