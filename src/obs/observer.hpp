// Engine observability hooks.
//
// run_local accepts an optional EngineObserver and reports per-round
// progress through it: which round just ran, how many nodes stepped, how
// many have halted, how long the round took, and how many state copies the
// round cost. The observer-less run_local overload compiles to exactly the
// uninstrumented loop (the hook sites are `if constexpr`-eliminated), so
// simulation throughput is unchanged unless a run opts in.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace ckp {

class MetricsRegistry;

// Everything the engine knows at the end of one synchronous round.
struct RoundStats {
  int round = 0;             // 1-based index of the round that just ran
  int max_rounds = 0;        // the run's round budget (progress/ETA context)
  NodeId n = 0;              // nodes in the simulation
  NodeId active_nodes = 0;   // nodes that executed step() this round
  NodeId halted_total = 0;   // cumulative halted count after the round
  std::uint64_t state_copies = 0;  // State assignments the engine performed
  double seconds = 0.0;      // wall time of the round
  int threads = 1;           // chunks the node loop was split into
  // Wall time of each chunk's step loop (size == threads). The spread
  // between max and min is the load imbalance of the static partition.
  std::vector<double> chunk_seconds;

  double halted_fraction() const {
    return n == 0 ? 1.0
                  : static_cast<double>(halted_total) / static_cast<double>(n);
  }

  double max_chunk_seconds() const {
    double worst = 0.0;
    for (double s : chunk_seconds) worst = s > worst ? s : worst;
    return worst;
  }
};

// Run-level summary delivered once, after the last round.
struct RunStats {
  int rounds = 0;
  bool all_halted = false;
  NodeId n = 0;
  double seconds = 0.0;  // wall time of the whole run (init + rounds)
  int threads = 1;       // parallelism of the per-round node loop
};

// Hook interface. All hooks default to no-ops so observers override only
// what they need. Hooks are called synchronously on the engine's calling
// thread — node halts are aggregated per chunk and reported at the round
// barrier in ascending node order, regardless of the thread count — and
// observers must not mutate the simulation.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void on_round_begin(int /*round*/) {}
  virtual void on_round_end(const RoundStats& /*stats*/) {}
  virtual void on_node_halt(NodeId /*v*/, int /*round*/) {}
  virtual void on_run_end(const RunStats& /*stats*/) {}
};

// EngineObserver that folds every round into a MetricsRegistry (not owned):
//   counters   engine.rounds, engine.steps, engine.halts, engine.state_copies
//   gauges     engine.halted_fraction, engine.run_rounds, engine.all_halted,
//              engine.run_seconds, engine.threads, engine.thread_utilization
//              (Σ chunk time / (threads × round time) of the last round)
//   histograms engine.active_nodes (power-of-two buckets),
//              engine.round_seconds, engine.chunk_seconds and
//              engine.chunk_skew — the per-round max−min chunk-time spread,
//              i.e. the load imbalance of the static partition — (decade
//              buckets 1µs..10s)
class MetricsObserver : public EngineObserver {
 public:
  explicit MetricsObserver(MetricsRegistry* registry);

  void on_round_end(const RoundStats& stats) override;
  void on_node_halt(NodeId v, int round) override;
  void on_run_end(const RunStats& stats) override;

 private:
  MetricsRegistry* registry_;  // not owned
};

}  // namespace ckp
