#include "obs/trace_span.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace ckp {

SpanTracer::Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), index_(other.index_) {
  other.tracer_ = nullptr;
}

SpanTracer::Span::~Span() {
  if (tracer_ != nullptr) tracer_->close_span(index_);
}

SpanTracer::Span SpanTracer::span(std::string name) {
  Event e;
  e.name = std::move(name);
  e.start_us = timer_.seconds() * 1e6;
  e.dur_us = -1.0;  // open
  events_.push_back(std::move(e));
  return Span(this, events_.size() - 1);
}

void SpanTracer::close_span(std::size_t index) {
  Event& e = events_[index];
  CKP_CHECK_MSG(e.dur_us < 0.0, "span closed twice");
  e.dur_us = timer_.seconds() * 1e6 - e.start_us;
}

void SpanTracer::add_complete(std::string name, double start_seconds,
                              double duration_seconds) {
  CKP_CHECK(duration_seconds >= 0.0);
  events_.push_back(
      {std::move(name), start_seconds * 1e6, duration_seconds * 1e6});
}

double SpanTracer::add_trace(const Trace& trace, double start_seconds) {
  double cursor = start_seconds;
  for (const PhaseRecord& p : trace.phases()) {
    const double dur =
        p.seconds > 0.0 ? p.seconds : static_cast<double>(p.rounds) * 1e-3;
    add_complete(p.name, cursor, dur);
    cursor += dur;
  }
  return cursor;
}

void SpanTracer::write_chrome_json(std::ostream& os) const {
  os << chrome_json();
}

void SpanTracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  CKP_CHECK_MSG(out.good(), "cannot open trace output file " << path);
  write_chrome_json(out);
  out << '\n';
  CKP_CHECK_MSG(out.good(), "trace write failed for " << path);
}

std::string SpanTracer::chrome_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const Event& e : events_) {
    CKP_CHECK_MSG(e.dur_us >= 0.0,
                  "span '" << e.name << "' still open at export");
    w.begin_object();
    w.key("name").value(e.name);
    w.key("ph").value("X");
    w.key("cat").value("phase");
    w.key("ts").value(e.start_us);
    w.key("dur").value(e.dur_us);
    w.key("pid").value(1);
    w.key("tid").value(1);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace ckp
