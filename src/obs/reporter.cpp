#include "obs/reporter.hpp"

#include <fstream>
#include <iostream>
#include <utility>

#include "graph/bfs_kernel.hpp"
#include "obs/progress.hpp"
#include "obs/resource.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace ckp {

void add_kernel_metrics(RunRecord& record, const BfsKernelCounters& before) {
  const BfsKernelCounters now = bfs_kernel_counters();
  const auto delta = [](std::uint64_t a, std::uint64_t b) {
    return static_cast<double>(a - b);
  };
  record.metric("bfs_kernel.queries", delta(now.queries, before.queries));
  record.metric("bfs_kernel.nodes_touched",
                delta(now.nodes_touched, before.nodes_touched));
  record.metric("bfs_kernel.resumes", delta(now.resumes, before.resumes));
  record.metric("bfs_kernel.view_queries",
                delta(now.view_queries, before.view_queries));
  record.metric("bfs_kernel.view_cache_hits",
                delta(now.view_cache_hits, before.view_cache_hits));
  record.metric("bfs_kernel.view_cache_extends",
                delta(now.view_cache_extends, before.view_cache_extends));
}

void add_resource_run_metrics(RunRecord& record, const ThreadPoolStats& since) {
  record.metric("peak_rss_bytes", static_cast<double>(peak_rss_bytes()));
  const ThreadPoolStats now = shared_pool_stats();
  double busy = 0.0;
  for (const double s : now.busy_seconds) busy += s;
  for (const double s : since.busy_seconds) busy -= s;
  const double window = now.dispatch_seconds - since.dispatch_seconds;
  double utilization = 0.0;
  if (now.threads > 0 && window > 0.0) {
    utilization = busy / (static_cast<double>(now.threads) * window);
  }
  record.metric("pool_utilization", utilization);
}

BenchReporter::BenchReporter(Flags& flags, std::string bench_name)
    : bench_name_(std::move(bench_name)),
      csv_(flags.get_bool("csv", false)),
      threads_(flags.get_threads()),
      trace_path_(flags.get_string("trace_out", "")),
      metrics_path_(flags.get_string("metrics_out", "")),
      provenance_enabled_(flags.get_bool("provenance", false)),
      jsonl_(flags.get_string("json_out", "")) {
  set_default_engine_threads(threads_);
  set_progress_interval(flags.get_double("progress_every", 0.0));
  if (provenance_enabled_) provenance_ = collect_provenance();
}

BenchReporter::~BenchReporter() { finish(); }

RunRecord BenchReporter::make_record() const {
  RunRecord record;
  record.bench = bench_name_;
  record.metric("threads", static_cast<double>(threads_));
  return record;
}

void BenchReporter::add(RunRecord record) {
  if (record.bench.empty()) record.bench = bench_name_;
  // Stamp fresh records only: records parsed from a checkpoint keep their
  // raw line (and therefore their original provenance, or lack of one).
  if (provenance_enabled_ && record.provenance.empty()) {
    record.provenance = provenance_;
  }
  jsonl_.write(record);
  ++records_;
  metrics_.add("bench.records");
  if (record.wall_seconds > 0.0) {
    metrics_
        .histogram("bench.wall_seconds",
                   {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0})
        .add(record.wall_seconds);
  }
  if (trace_path_.empty()) return;
  if (!have_phase_trace_ && !record.trace.empty()) {
    have_phase_trace_ = true;
    phase_trace_ = record.trace;
    phase_trace_label_ = record.algorithm;
  }
  if (!have_phase_trace_ && record.wall_seconds > 0.0) {
    std::string name = record.algorithm.empty() ? bench_name_
                                                : record.algorithm;
    flat_spans_.add_complete(std::move(name), flat_cursor_seconds_,
                             record.wall_seconds);
    flat_cursor_seconds_ += record.wall_seconds;
  }
}

void BenchReporter::print(const Table& table, std::ostream& os) const {
  if (csv_) {
    table.print_csv(os);
  } else {
    table.print(os);
  }
}

void BenchReporter::finish() {
  if (finished_) return;
  finished_ = true;
  if (jsonl_.enabled() && jsonl_.rows_written() > 0) {
    std::cout << "[obs] wrote " << jsonl_.rows_written()
              << " run records to " << jsonl_.path() << '\n';
  }
  if (!metrics_path_.empty()) {
    record_resource_metrics(metrics_);
    std::ofstream out(metrics_path_, std::ios::trunc);
    CKP_CHECK_MSG(out.good(), "cannot open metrics output file "
                                  << metrics_path_);
    out << metrics_.to_json() << '\n';
    CKP_CHECK_MSG(out.good(), "metrics write failed for " << metrics_path_);
    std::cout << "[obs] wrote metrics snapshot to " << metrics_path_ << '\n';
  }
  if (trace_path_.empty()) return;
  if (have_phase_trace_) {
    SpanTracer tracer;
    tracer.add_trace(phase_trace_);
    tracer.write_chrome_json(trace_path_);
    std::cout << "[obs] wrote Chrome trace (" << tracer.size()
              << " phase spans of " << phase_trace_label_ << ") to "
              << trace_path_ << '\n';
  } else if (flat_spans_.size() > 0) {
    flat_spans_.write_chrome_json(trace_path_);
    std::cout << "[obs] wrote Chrome trace (" << flat_spans_.size()
              << " run spans) to " << trace_path_ << '\n';
  } else {
    std::cout << "[obs] no timed runs recorded; " << trace_path_
              << " not written\n";
  }
}

}  // namespace ckp
