#include "obs/run_record.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace ckp {

void RunRecord::metric(const std::string& name, double value) {
  raw_json_.clear();
  for (auto& [k, v] : metrics_) {
    if (k == name) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(name, value);
}

void RunRecord::absorb(const MetricsRegistry& registry) {
  for (const auto& [name, value] : registry.snapshot()) {
    metric(name, value);
  }
}

std::string RunRecord::to_json() const {
  if (!raw_json_.empty()) return raw_json_;
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench);
  w.key("algorithm").value(algorithm);
  if (!graph_family.empty()) w.key("graph_family").value(graph_family);
  w.key("n").value(n);
  if (delta != 0) w.key("delta").value(delta);
  if (seed != 0) w.key("seed").value(seed);
  w.key("rounds").value(rounds);
  if (wall_seconds != 0.0) w.key("wall_seconds").value(wall_seconds);
  w.key("verified").value(verified);
  if (!trace.empty()) w.key("trace").raw(trace.to_json());
  if (!metrics_.empty()) {
    w.key("metrics").begin_object();
    for (const auto& [name, value] : metrics_) w.key(name).value(value);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

RunRecord RunRecord::from_json_line(const std::string& line) {
  const JsonValue doc = json_parse(line);
  CKP_CHECK_MSG(doc.is_object(), "run record line is not a JSON object");
  RunRecord rec;
  rec.bench = doc.at("bench").as_string();
  rec.algorithm = doc.at("algorithm").as_string();
  if (const JsonValue* v = doc.find("graph_family")) {
    rec.graph_family = v->as_string();
  }
  rec.n = static_cast<std::uint64_t>(doc.at("n").as_number());
  if (const JsonValue* v = doc.find("delta")) {
    rec.delta = static_cast<int>(v->as_number());
  }
  if (const JsonValue* v = doc.find("seed")) {
    rec.seed = static_cast<std::uint64_t>(v->as_number());
  }
  rec.rounds = static_cast<int>(doc.at("rounds").as_number());
  if (const JsonValue* v = doc.find("wall_seconds")) {
    rec.wall_seconds = v->as_number();
  }
  const JsonValue& verified = doc.at("verified");
  CKP_CHECK_MSG(verified.type == JsonValue::Type::Bool,
                "run record: 'verified' is not a boolean");
  rec.verified = verified.boolean;
  if (const JsonValue* v = doc.find("trace")) {
    CKP_CHECK_MSG(v->is_array(), "run record: 'trace' is not an array");
    for (const JsonValue& phase : v->array) {
      CKP_CHECK_MSG(phase.is_object(),
                    "run record: trace phase is not an object");
      const JsonValue* detail = phase.find("detail");
      const JsonValue* seconds = phase.find("seconds");
      rec.trace.record(
          phase.at("name").as_string(),
          static_cast<int>(phase.at("rounds").as_number()),
          detail != nullptr
              ? static_cast<std::int64_t>(detail->as_number()) : 0,
          seconds != nullptr ? seconds->as_number() : 0.0);
    }
  }
  if (const JsonValue* v = doc.find("metrics")) {
    CKP_CHECK_MSG(v->is_object(), "run record: 'metrics' is not an object");
    for (const auto& [name, value] : v->object) {
      rec.metrics_.emplace_back(name, value.as_number());
    }
  }
  rec.raw_json_ = line;
  return rec;
}

JsonlWriter::JsonlWriter(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  out_.open(path_, std::ios::trunc);
  CKP_CHECK_MSG(out_.good(), "cannot open JSONL output file " << path_);
}

void JsonlWriter::write(const RunRecord& record) {
  if (!enabled()) return;
  out_ << record.to_json() << '\n';
  CKP_CHECK_MSG(out_.good(), "JSONL write failed for " << path_);
  ++rows_;
}

}  // namespace ckp
