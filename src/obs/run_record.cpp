#include "obs/run_record.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace ckp {

void RunRecord::metric(const std::string& name, double value) {
  for (auto& [k, v] : metrics_) {
    if (k == name) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(name, value);
}

void RunRecord::absorb(const MetricsRegistry& registry) {
  for (const auto& [name, value] : registry.snapshot()) {
    metric(name, value);
  }
}

std::string RunRecord::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench);
  w.key("algorithm").value(algorithm);
  if (!graph_family.empty()) w.key("graph_family").value(graph_family);
  w.key("n").value(n);
  if (delta != 0) w.key("delta").value(delta);
  if (seed != 0) w.key("seed").value(seed);
  w.key("rounds").value(rounds);
  if (wall_seconds != 0.0) w.key("wall_seconds").value(wall_seconds);
  w.key("verified").value(verified);
  if (!trace.empty()) w.key("trace").raw(trace.to_json());
  if (!metrics_.empty()) {
    w.key("metrics").begin_object();
    for (const auto& [name, value] : metrics_) w.key(name).value(value);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

JsonlWriter::JsonlWriter(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  out_.open(path_, std::ios::trunc);
  CKP_CHECK_MSG(out_.good(), "cannot open JSONL output file " << path_);
}

void JsonlWriter::write(const RunRecord& record) {
  if (!enabled()) return;
  out_ << record.to_json() << '\n';
  CKP_CHECK_MSG(out_.good(), "JSONL write failed for " << path_);
  ++rows_;
}

}  // namespace ckp
