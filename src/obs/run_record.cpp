#include "obs/run_record.hpp"

#include <ctime>

#include <unistd.h>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/simd.hpp"

namespace ckp {

namespace {

// Reads one line of `path`, stripped of trailing whitespace; "" on failure.
std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return "";
  std::string line;
  std::getline(in, line);
  while (!line.empty() &&
         (line.back() == '\n' || line.back() == '\r' || line.back() == ' ')) {
    line.pop_back();
  }
  return line;
}

// Resolves .git/HEAD without shelling out to git: follow the "ref: " pointer
// to the loose ref file, fall back to packed-refs, and accept a detached
// HEAD (the sha itself) as-is.
std::string resolve_git_head(const std::string& repo_root) {
  const std::string head = read_first_line(repo_root + "/.git/HEAD");
  if (head.empty()) return "unknown";
  if (head.rfind("ref: ", 0) != 0) return head;  // detached HEAD
  const std::string ref = head.substr(5);
  const std::string loose = read_first_line(repo_root + "/.git/" + ref);
  if (!loose.empty()) return loose;
  std::ifstream packed(repo_root + "/.git/packed-refs");
  std::string line;
  while (std::getline(packed, line)) {
    // "<40-hex-sha> <refname>"; '^' peel lines and comments never match.
    if (line.size() > 41 && line[40] == ' ' && line.compare(41, std::string::npos, ref) == 0) {
      return line.substr(0, 40);
    }
  }
  return "unknown";
}

}  // namespace

RunProvenance collect_provenance() {
  RunProvenance p;
#ifdef CKP_SOURCE_DIR
  p.git_sha = resolve_git_head(CKP_SOURCE_DIR);
#else
  p.git_sha = "unknown";
#endif
  std::time_t now = std::time(nullptr);
  std::tm utc{};
  char stamp[32];
  if (gmtime_r(&now, &utc) != nullptr &&
      std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc) > 0) {
    p.timestamp = stamp;
  } else {
    p.timestamp = "unknown";
  }
  char host[256] = {0};
  p.host = gethostname(host, sizeof host - 1) == 0 && host[0] != '\0'
               ? host
               : "unknown";
#ifdef CKP_BUILD_FLAGS
  p.build_flags = CKP_BUILD_FLAGS;
#else
  p.build_flags = "unknown";
#endif
  p.simd = simd::kBackendName;
  return p;
}

void RunRecord::metric(const std::string& name, double value) {
  raw_json_.clear();
  for (auto& [k, v] : metrics_) {
    if (k == name) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(name, value);
}

void RunRecord::absorb(const MetricsRegistry& registry) {
  for (const auto& [name, value] : registry.snapshot()) {
    metric(name, value);
  }
}

std::string RunRecord::to_json() const {
  if (!raw_json_.empty()) return raw_json_;
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench);
  w.key("algorithm").value(algorithm);
  if (!graph_family.empty()) w.key("graph_family").value(graph_family);
  w.key("n").value(n);
  if (delta != 0) w.key("delta").value(delta);
  if (seed != 0) w.key("seed").value(seed);
  w.key("rounds").value(rounds);
  if (wall_seconds != 0.0) w.key("wall_seconds").value(wall_seconds);
  w.key("verified").value(verified);
  if (!provenance.empty()) {
    w.key("provenance").begin_object();
    if (!provenance.git_sha.empty()) w.key("git_sha").value(provenance.git_sha);
    if (!provenance.timestamp.empty()) {
      w.key("timestamp").value(provenance.timestamp);
    }
    if (!provenance.host.empty()) w.key("host").value(provenance.host);
    if (!provenance.build_flags.empty()) {
      w.key("build_flags").value(provenance.build_flags);
    }
    if (!provenance.simd.empty()) w.key("simd").value(provenance.simd);
    w.end_object();
  }
  if (!trace.empty()) w.key("trace").raw(trace.to_json());
  if (!metrics_.empty()) {
    w.key("metrics").begin_object();
    for (const auto& [name, value] : metrics_) w.key(name).value(value);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

RunRecord RunRecord::from_json_line(const std::string& line) {
  const JsonValue doc = json_parse(line);
  CKP_CHECK_MSG(doc.is_object(), "run record line is not a JSON object");
  RunRecord rec;
  rec.bench = doc.at("bench").as_string();
  rec.algorithm = doc.at("algorithm").as_string();
  if (const JsonValue* v = doc.find("graph_family")) {
    rec.graph_family = v->as_string();
  }
  rec.n = static_cast<std::uint64_t>(doc.at("n").as_number());
  if (const JsonValue* v = doc.find("delta")) {
    rec.delta = static_cast<int>(v->as_number());
  }
  if (const JsonValue* v = doc.find("seed")) {
    rec.seed = static_cast<std::uint64_t>(v->as_number());
  }
  rec.rounds = static_cast<int>(doc.at("rounds").as_number());
  if (const JsonValue* v = doc.find("wall_seconds")) {
    rec.wall_seconds = v->as_number();
  }
  const JsonValue& verified = doc.at("verified");
  CKP_CHECK_MSG(verified.type == JsonValue::Type::Bool,
                "run record: 'verified' is not a boolean");
  rec.verified = verified.boolean;
  if (const JsonValue* v = doc.find("provenance")) {
    CKP_CHECK_MSG(v->is_object(), "run record: 'provenance' is not an object");
    if (const JsonValue* f = v->find("git_sha")) {
      rec.provenance.git_sha = f->as_string();
    }
    if (const JsonValue* f = v->find("timestamp")) {
      rec.provenance.timestamp = f->as_string();
    }
    if (const JsonValue* f = v->find("host")) {
      rec.provenance.host = f->as_string();
    }
    if (const JsonValue* f = v->find("build_flags")) {
      rec.provenance.build_flags = f->as_string();
    }
    if (const JsonValue* f = v->find("simd")) {
      rec.provenance.simd = f->as_string();
    }
  }
  if (const JsonValue* v = doc.find("trace")) {
    CKP_CHECK_MSG(v->is_array(), "run record: 'trace' is not an array");
    for (const JsonValue& phase : v->array) {
      CKP_CHECK_MSG(phase.is_object(),
                    "run record: trace phase is not an object");
      const JsonValue* detail = phase.find("detail");
      const JsonValue* seconds = phase.find("seconds");
      rec.trace.record(
          phase.at("name").as_string(),
          static_cast<int>(phase.at("rounds").as_number()),
          detail != nullptr
              ? static_cast<std::int64_t>(detail->as_number()) : 0,
          seconds != nullptr ? seconds->as_number() : 0.0);
    }
  }
  if (const JsonValue* v = doc.find("metrics")) {
    CKP_CHECK_MSG(v->is_object(), "run record: 'metrics' is not an object");
    for (const auto& [name, value] : v->object) {
      rec.metrics_.emplace_back(name, value.as_number());
    }
  }
  rec.raw_json_ = line;
  return rec;
}

JsonlWriter::JsonlWriter(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  out_.open(path_, std::ios::trunc);
  CKP_CHECK_MSG(out_.good(), "cannot open JSONL output file " << path_);
}

void JsonlWriter::write(const RunRecord& record) {
  if (!enabled()) return;
  out_ << record.to_json() << '\n';
  CKP_CHECK_MSG(out_.good(), "JSONL write failed for " << path_);
  ++rows_;
}

}  // namespace ckp
