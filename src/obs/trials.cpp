#include "obs/trials.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ckp {

std::vector<std::vector<RunRecord>> run_trials_subset(
    const std::vector<int>& ids, int threads, const TrialFn& trial_fn,
    const TrialDoneFn& on_done) {
  const int count = static_cast<int>(ids.size());
  std::vector<std::vector<RunRecord>> per_trial(
      static_cast<std::size_t>(count));
  const auto run_one = [&](int slot) {
    per_trial[static_cast<std::size_t>(slot)] =
        trial_fn(ids[static_cast<std::size_t>(slot)]);
    if (on_done) {
      on_done(ids[static_cast<std::size_t>(slot)],
              per_trial[static_cast<std::size_t>(slot)]);
    }
  };
  const int chunks = std::clamp(threads, 1, std::max(count, 1));
  if (chunks <= 1 || in_parallel_worker()) {
    for (int slot = 0; slot < count; ++slot) run_one(slot);
  } else {
    shared_pool(chunks).parallel_for(
        0, count, chunks,
        [&](std::int64_t begin, std::int64_t end, int /*chunk*/) {
          for (std::int64_t slot = begin; slot < end; ++slot) {
            run_one(static_cast<int>(slot));
          }
        });
  }
  return per_trial;
}

std::vector<RunRecord> run_trials(int trials, int threads,
                                  const TrialFn& trial_fn) {
  CKP_CHECK_MSG(trials >= 0, "negative trial count");
  std::vector<int> ids(static_cast<std::size_t>(trials));
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<std::vector<RunRecord>> per_trial =
      run_trials_subset(ids, threads, trial_fn);
  std::vector<RunRecord> out;
  for (std::vector<RunRecord>& records : per_trial) {
    for (RunRecord& record : records) out.push_back(std::move(record));
  }
  return out;
}

double metric_or(const RunRecord& record, const std::string& name,
                 double def) {
  for (const auto& [key, value] : record.metrics()) {
    if (key == name) return value;
  }
  return def;
}

}  // namespace ckp
