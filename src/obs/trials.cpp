#include "obs/trials.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ckp {

std::vector<RunRecord> run_trials(int trials, int threads,
                                  const TrialFn& trial_fn) {
  CKP_CHECK_MSG(trials >= 0, "negative trial count");
  std::vector<std::vector<RunRecord>> per_trial(
      static_cast<std::size_t>(trials));
  const int chunks = std::clamp(threads, 1, std::max(trials, 1));
  if (chunks <= 1 || in_parallel_worker()) {
    for (int t = 0; t < trials; ++t) {
      per_trial[static_cast<std::size_t>(t)] = trial_fn(t);
    }
  } else {
    shared_pool(chunks).parallel_for(
        0, trials, chunks,
        [&](std::int64_t begin, std::int64_t end, int /*chunk*/) {
          for (std::int64_t t = begin; t < end; ++t) {
            per_trial[static_cast<std::size_t>(t)] =
                trial_fn(static_cast<int>(t));
          }
        });
  }
  std::vector<RunRecord> out;
  for (std::vector<RunRecord>& records : per_trial) {
    for (RunRecord& record : records) out.push_back(std::move(record));
  }
  return out;
}

double metric_or(const RunRecord& record, const std::string& name,
                 double def) {
  for (const auto& [key, value] : record.metrics()) {
    if (key == name) return value;
  }
  return def;
}

}  // namespace ckp
