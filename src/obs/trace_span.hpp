// Scoped span tracing exported as Chrome trace-event JSON.
//
// A SpanTracer collects named time spans — either scoped live via span()
// (RAII: the span closes when the handle is destroyed) or synthesized from a
// per-phase Trace — and writes them in the Trace Event Format ("catapult"
// JSON: complete "ph":"X" events). Load the file in chrome://tracing or
// https://ui.perfetto.dev to see a composite run's phases on a timeline.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "local/trace.hpp"
#include "util/timer.hpp"

namespace ckp {

class SpanTracer {
 public:
  // RAII handle returned by span(); closes the span on destruction.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    ~Span();

   private:
    friend class SpanTracer;
    Span(SpanTracer* tracer, std::size_t index)
        : tracer_(tracer), index_(index) {}
    SpanTracer* tracer_;
    std::size_t index_;
  };

  // Opens a span starting now (relative to the tracer's construction).
  [[nodiscard]] Span span(std::string name);

  // Records a closed span explicitly; times are in seconds relative to the
  // trace origin.
  void add_complete(std::string name, double start_seconds,
                    double duration_seconds);

  // Lays one complete span per Trace phase end-to-end starting at
  // `start_seconds`, using each phase's recorded wall time. Phases without
  // wall time get a synthetic 1ms-per-round duration so the relative phase
  // structure is still visible on the timeline. Returns the end time.
  double add_trace(const Trace& trace, double start_seconds = 0.0);

  std::size_t size() const { return events_.size(); }

  // Writes the whole trace as one Chrome trace-event JSON document.
  void write_chrome_json(std::ostream& os) const;
  void write_chrome_json(const std::string& path) const;
  std::string chrome_json() const;

 private:
  struct Event {
    std::string name;
    double start_us = 0.0;
    double dur_us = 0.0;
  };

  void close_span(std::size_t index);

  Timer timer_;  // origin for scoped spans
  std::vector<Event> events_;
};

}  // namespace ckp
