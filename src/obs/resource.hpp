// Process resource telemetry: allocation accounting, RSS sampling, and the
// thread-pool utilization feed.
//
// PR 3's packed round-elimination passes and PR 5's BFS kernel both claim
// "allocation-free after warm-up" hot paths. Until now those claims lived in
// comments; this module makes them runtime-checkable. resource.cpp replaces
// the global `operator new`/`operator delete` family with thin wrappers that
// bump two sets of counters — per-thread (plain `thread_local` integers, so
// a guard on one thread is never tripped by a pool worker allocating
// elsewhere) and process-wide (relaxed atomics, for the metrics dump) — and
// then forward to malloc/free. The interposition is link-time: any binary
// that links an object from this library routes every allocation through it
// (see DESIGN.md §10 on why this is safe under ASan/TSan and adds only two
// counter increments per allocation).
//
// On top of the counters:
//
//   * AllocScope        — measures allocations/bytes on the current thread
//                         between construction and inspection;
//   * AssertNoAlloc     — RAII guard that throws CheckFailure if the scope
//                         allocated (the runtime form of "this hot path is
//                         allocation-free"); tests/test_obs_resource.cpp
//                         certifies the BfsScratch query path and the packed
//                         round-elimination inner passes with it;
//   * current/peak RSS  — /proc/self/status sampling (VmRSS / VmHWM);
//   * record_resource_metrics — folds everything (plus ThreadPool busy/wait
//                         accounting and the BFS-kernel counters) into a
//                         MetricsRegistry for the --metrics_out dump.
#pragma once

#include <cstdint>
#include <string>

namespace ckp {

class MetricsRegistry;

// Monotone allocation counters. `allocs`/`bytes` count operator-new calls
// and their requested sizes; `frees` counts operator-delete calls of a
// non-null pointer.
struct AllocCounts {
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t frees = 0;
};

// Counters of the calling thread only (cheapest; what the guards use).
AllocCounts thread_alloc_counts();
// Process-wide totals across all threads.
AllocCounts process_alloc_counts();

// True when the interposed operator new has been linked into this binary
// (an archive member is only pulled in when referenced; every user of this
// header references this TU, so in practice: true wherever it matters).
// Guards CKP_CHECK this so a mis-linked binary fails loudly instead of
// vacuously passing its no-alloc assertions.
bool alloc_counting_active();

// Measures the current thread's allocation activity since construction.
class AllocScope {
 public:
  AllocScope() : start_(thread_alloc_counts()) {}

  std::uint64_t allocations() const {
    return thread_alloc_counts().allocs - start_.allocs;
  }
  std::uint64_t bytes() const {
    return thread_alloc_counts().bytes - start_.bytes;
  }
  std::uint64_t frees() const {
    return thread_alloc_counts().frees - start_.frees;
  }

 private:
  AllocCounts start_;
};

// RAII assertion that a scope performs no heap allocation on the current
// thread. The destructor throws CheckFailure (via CKP_CHECK) when the scope
// allocated — unless it is already unwinding another exception, in which
// case the violation is swallowed rather than terminating the process.
// `check()` reports early and disarms the destructor, for call sites that
// want the failure attributed to a specific line.
class AssertNoAlloc {
 public:
  explicit AssertNoAlloc(const char* label);
  ~AssertNoAlloc() noexcept(false);

  AssertNoAlloc(const AssertNoAlloc&) = delete;
  AssertNoAlloc& operator=(const AssertNoAlloc&) = delete;

  // Throws CheckFailure if the scope has allocated so far; disarms the
  // destructor either way.
  void check();

 private:
  const char* label_;
  AllocScope scope_;
  int uncaught_on_entry_;
  bool armed_ = true;
};

// Resident-set sampling from /proc/self/status. Returns 0 when the field
// is unavailable (non-Linux or a restricted /proc).
std::uint64_t current_rss_bytes();  // VmRSS
std::uint64_t peak_rss_bytes();     // VmHWM

// Folds the process resource state into `registry`:
//   counters  resource.allocs, resource.alloc_bytes, resource.frees,
//             pool.jobs, plus the bfs_kernel.* counter family
//   gauges    resource.rss_bytes, resource.peak_rss_bytes,
//             resource.live_allocs (allocs - frees),
//             pool.threads, pool.busy_seconds, pool.wait_seconds,
//             pool.utilization (busy / (threads × dispatch wall time))
// Used by BenchReporter for the --metrics_out dump; callable anywhere a
// registry snapshot should carry the cost side of a run.
void record_resource_metrics(MetricsRegistry& registry);

}  // namespace ckp
