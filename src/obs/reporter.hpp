// Shared output front-end for bench and example binaries.
//
// Every bench used to hand-roll its own `--csv` branch and had no structured
// output at all. BenchReporter centralizes the three output channels:
//
//   --csv              print tables as CSV instead of aligned text
//   --json_out=PATH    stream one RunRecord per measured run as JSON Lines
//   --trace_out=PATH   export a Chrome trace-event timeline of the run
//                      phases (first record with a Trace; otherwise the
//                      records laid end-to-end by wall time)
//   --threads=T        parallelism for engine rounds and run_trials fan-out
//                      (CKP_THREADS env fallback; default 1). Consuming it
//                      here wires the flag through every bench main with no
//                      per-bench plumbing: the constructor installs T as the
//                      process default and every record carries a "threads"
//                      metric, so BENCH_PR.json records the thread count.
//   --metrics_out=PATH dump the reporter's MetricsRegistry (per-run wall-time
//                      histogram plus the process resource/pool/kernel
//                      counters from record_resource_metrics) as one JSON
//                      document when the bench finishes
//   --progress_every=S emit JSONL heartbeats to stderr at most every S
//                      seconds (installs the process-wide ProgressMeter
//                      interval; 0 = off, the default)
//   --provenance       stamp every record with git SHA, timestamp, host and
//                      build flags. Off by default so --json_out stays
//                      byte-stable run-to-run.
//
// Construct it right after Flags (it consumes these flags, so construct
// before flags.check_unknown()), call add() for every measured run, print()
// for every table, and the destructor writes the deferred outputs.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/run_record.hpp"
#include "obs/trace_span.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ckp {

class Flags;
struct BfsKernelCounters;

// Folds the BFS-kernel counter delta (now − before) into `record` as
// bfs_kernel.* metrics. Only the thread-count-invariant fields are recorded
// (queries, nodes_touched, resumes, and the view-cache trio) so --json_out
// stays byte-stable across --threads; scratch_grows/reuses scale with how
// many workers own a thread_local scratch and are deliberately left out.
// See DESIGN.md §9.
void add_kernel_metrics(RunRecord& record, const BfsKernelCounters& before);

// Folds process resource telemetry into `record`: metric "peak_rss_bytes"
// (VmHWM — the cost side of the memory-lean engine path) and
// "pool_utilization" (Σ busy / (threads × dispatch wall) over the pooled
// dispatches since `since`; 0 when the window dispatched nothing). Pass a
// default-constructed snapshot for process-lifetime utilization, or
// shared_pool_stats() taken before a run to attribute the window to it.
// These values are machine- and run-dependent by nature, unlike the other
// record fields — the bench-diff gate only scores wall_seconds, so they
// ride along as telemetry.
void add_resource_run_metrics(RunRecord& record,
                              const ThreadPoolStats& since = {});

class BenchReporter {
 public:
  // Consumes --csv, --json_out, --trace_out, --threads, --metrics_out,
  // --progress_every and --provenance from `flags`.
  BenchReporter(Flags& flags, std::string bench_name);
  ~BenchReporter();

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  const std::string& bench_name() const { return bench_name_; }
  bool csv() const { return csv_; }
  bool json_enabled() const { return jsonl_.enabled(); }
  int threads() const { return threads_; }
  bool provenance_enabled() const { return provenance_enabled_; }

  // The bench-local registry --metrics_out snapshots. Benches may fold their
  // own counters in; the reporter adds bench.records and a bench.wall_seconds
  // histogram per add(), plus the process resource metrics at finish().
  MetricsRegistry& metrics() { return metrics_; }

  // A record pre-filled with the bench name.
  RunRecord make_record() const;

  // Streams `record` to --json_out (no-op without the flag) and remembers
  // phase structure for --trace_out.
  void add(RunRecord record);

  // Prints `table` honouring --csv.
  void print(const Table& table, std::ostream& os) const;

  // Writes deferred outputs (idempotent; also invoked by the destructor) and
  // prints a one-line note per file written.
  void finish();

  std::size_t records() const { return records_; }

 private:
  std::string bench_name_;
  bool csv_ = false;
  int threads_ = 1;
  std::string trace_path_;
  std::string metrics_path_;
  bool provenance_enabled_ = false;
  RunProvenance provenance_;  // collected once; stamped onto every record
  MetricsRegistry metrics_;
  JsonlWriter jsonl_;
  std::size_t records_ = 0;

  // Deferred --trace_out state: the first record carrying a Trace wins;
  // until one shows up, records accumulate as flat wall-time spans.
  bool have_phase_trace_ = false;
  Trace phase_trace_;
  std::string phase_trace_label_;
  SpanTracer flat_spans_;
  double flat_cursor_seconds_ = 0.0;
  bool finished_ = false;
};

}  // namespace ckp
