#include "obs/resource.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <new>

#include "graph/bfs_kernel.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ckp {
namespace {

// Per-thread counters: plain integers, constant-initialized so they are
// usable from allocations that happen before any dynamic initializer runs.
thread_local AllocCounts tls_alloc_counts;

// Process-wide totals. Relaxed is enough — these are statistics, not
// synchronization; readers only ever see a slightly stale sum.
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_frees{0};

inline void count_alloc(std::size_t size) {
  tls_alloc_counts.allocs += 1;
  tls_alloc_counts.bytes += size;
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
}

inline void count_free() {
  tls_alloc_counts.frees += 1;
  g_frees.fetch_add(1, std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) noexcept {
  count_alloc(size);
  // malloc(0) may return nullptr; operator new must return a unique pointer.
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  count_alloc(size);
  if (align < alignof(void*)) align = alignof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) return nullptr;
  return p;
}

// Reads one "Vm...:  <n> kB" field from /proc/self/status. stdio, not
// iostreams, so sampling itself allocates nothing worth measuring.
std::uint64_t proc_status_kb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  const std::size_t field_len = std::strlen(field);
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      kb = std::strtoull(line + field_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

AllocCounts thread_alloc_counts() { return tls_alloc_counts; }

AllocCounts process_alloc_counts() {
  AllocCounts out;
  out.allocs = g_allocs.load(std::memory_order_relaxed);
  out.bytes = g_bytes.load(std::memory_order_relaxed);
  out.frees = g_frees.load(std::memory_order_relaxed);
  return out;
}

bool alloc_counting_active() {
  const std::uint64_t before = tls_alloc_counts.allocs;
  volatile char* p = new char('x');
  delete p;
  return tls_alloc_counts.allocs == before + 1;
}

AssertNoAlloc::AssertNoAlloc(const char* label)
    : label_(label), uncaught_on_entry_(std::uncaught_exceptions()) {
  CKP_CHECK_MSG(alloc_counting_active(),
                "AssertNoAlloc without interposed allocation counters — the "
                "binary did not link obs/resource.cpp's operator new");
  // scope_ snapshots during member init, *before* the probe above runs its
  // counted allocation. Re-snapshot so the guard measures only the caller's
  // scope, not the guard's own construction.
  scope_ = AllocScope();
}

void AssertNoAlloc::check() {
  armed_ = false;
  const std::uint64_t n = scope_.allocations();
  CKP_CHECK_MSG(n == 0, "AssertNoAlloc '" << label_ << "': " << n
                                          << " allocation(s) ("
                                          << scope_.bytes() << " bytes)");
}

AssertNoAlloc::~AssertNoAlloc() noexcept(false) {
  if (!armed_) return;
  armed_ = false;
  const std::uint64_t n = scope_.allocations();
  if (n == 0) return;
  if (std::uncaught_exceptions() > uncaught_on_entry_) {
    // Already unwinding: report instead of terminating via a second throw.
    std::fprintf(stderr, "AssertNoAlloc '%s' violated during unwinding: %llu allocation(s)\n",
                 label_, static_cast<unsigned long long>(n));
    return;
  }
  CKP_CHECK_MSG(false, "AssertNoAlloc '" << label_ << "': " << n
                                         << " allocation(s) ("
                                         << scope_.bytes() << " bytes)");
}

std::uint64_t current_rss_bytes() { return proc_status_kb("VmRSS") * 1024; }
std::uint64_t peak_rss_bytes() { return proc_status_kb("VmHWM") * 1024; }

void record_resource_metrics(MetricsRegistry& registry) {
  const AllocCounts a = process_alloc_counts();
  registry.add("resource.allocs",
               static_cast<double>(a.allocs) - registry.counter("resource.allocs"));
  registry.add("resource.alloc_bytes",
               static_cast<double>(a.bytes) - registry.counter("resource.alloc_bytes"));
  registry.add("resource.frees",
               static_cast<double>(a.frees) - registry.counter("resource.frees"));
  registry.set("resource.live_allocs", static_cast<double>(a.allocs - a.frees));
  registry.set("resource.rss_bytes", static_cast<double>(current_rss_bytes()));
  registry.set("resource.peak_rss_bytes",
               static_cast<double>(peak_rss_bytes()));

  const ThreadPoolStats pool = shared_pool_stats();
  if (pool.threads > 0) {
    registry.add("pool.jobs",
                 static_cast<double>(pool.jobs) - registry.counter("pool.jobs"));
    registry.set("pool.threads", static_cast<double>(pool.threads));
    double busy = 0.0;
    for (const double s : pool.busy_seconds) busy += s;
    double wait = 0.0;
    for (const double s : pool.wait_seconds) wait += s;
    registry.set("pool.busy_seconds", busy);
    registry.set("pool.wait_seconds", wait);
    if (pool.dispatch_seconds > 0.0) {
      registry.set("pool.utilization",
                   busy / (static_cast<double>(pool.threads) *
                           pool.dispatch_seconds));
    }
  }

  const BfsKernelCounters k = bfs_kernel_counters();
  const auto set_counter = [&registry](const char* name, std::uint64_t v) {
    registry.add(name, static_cast<double>(v) - registry.counter(name));
  };
  set_counter("bfs_kernel.queries", k.queries);
  set_counter("bfs_kernel.nodes_touched", k.nodes_touched);
  set_counter("bfs_kernel.resumes", k.resumes);
  set_counter("bfs_kernel.scratch_grows", k.scratch_grows);
  set_counter("bfs_kernel.scratch_reuses", k.scratch_reuses);
  set_counter("bfs_kernel.view_queries", k.view_queries);
  set_counter("bfs_kernel.view_cache_hits", k.view_cache_hits);
  set_counter("bfs_kernel.view_cache_extends", k.view_cache_extends);
}

}  // namespace ckp

// ---------------------------------------------------------------------------
// Global operator new/delete interposition. Replacing the allocation
// functions is sanctioned by [replacement.functions]; every form forwards to
// malloc/free after bumping the counters, so ASan/TSan (which intercept
// malloc) still see every allocation. Link-time: these definitions live in
// the same object as the counter accessors above, so any binary using the
// telemetry API pulls them in and routes all its allocations through here.
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  void* p = ckp::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = ckp::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ckp::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ckp::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = ckp::counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = ckp::counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return ckp::counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return ckp::counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  ckp::count_free();
  std::free(p);
}

void operator delete[](void* p) noexcept {
  if (p == nullptr) return;
  ckp::count_free();
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete[](p); }

void operator delete(void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  operator delete[](p);
}

void operator delete(void* p, std::align_val_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  operator delete[](p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  operator delete[](p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  operator delete(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  operator delete[](p);
}
