// Named run-time metrics: counters, gauges, and fixed-bucket histograms.
//
// The registry is the accumulation point for everything the engine observer
// and the benches measure beyond round counts: per-round active-node
// distributions, state-copy volume, wall-time spreads. Histograms keep an
// Accumulator (the same Welford machinery the bench harness already uses for
// round statistics) next to their bucket counts, so mean/min/max come for
// free with the distribution shape.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/stats.hpp"

namespace ckp {

// A histogram over fixed, sorted bucket upper bounds. A sample lands in the
// first bucket whose upper bound is >= the sample; larger samples land in an
// implicit overflow bucket. Bounds are fixed at construction so merged or
// serialized histograms always align.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double x);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  // counts()[i] pairs with upper_bounds()[i]; counts().back() is overflow,
  // so counts().size() == upper_bounds().size() + 1.
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  const Accumulator& summary() const { return summary_; }

  // Exponential bucket bounds {1, 2, 4, ...} with `count` buckets — the
  // default shape for node counts and round times spanning orders of
  // magnitude.
  static std::vector<double> powers_of_two(int count);

  void write_json(JsonWriter& w) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  Accumulator summary_;
};

// Insertion-ordered registry of named counters (monotone sums), gauges
// (last-write-wins), and histograms.
class MetricsRegistry {
 public:
  // Counter: adds `delta` (default 1) to `name`, creating it at zero.
  void add(const std::string& name, double delta = 1.0);

  // Gauge: sets `name` to `value`.
  void set(const std::string& name, double value);

  // Histogram: returns the histogram named `name`, creating it with
  // `upper_bounds` on first use. Later calls ignore the bounds argument but
  // CKP_CHECK that they match, so two call sites cannot silently disagree.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds);

  double counter(const std::string& name) const;  // 0 when absent
  double gauge(const std::string& name) const;    // 0 when absent
  const Histogram* find_histogram(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Flattens everything to scalar metrics: counters and gauges verbatim,
  // histograms expanded as name.count / name.mean / name.min / name.max.
  // Insertion order is preserved (counters, then gauges, then histograms).
  std::vector<std::pair<std::string, double>> snapshot() const;

  // Full-fidelity serialization including histogram buckets.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

 private:
  template <typename T>
  using NamedVec = std::vector<std::pair<std::string, T>>;

  template <typename T>
  static T* find_in(NamedVec<T>& vec, const std::string& name);
  template <typename T>
  static const T* find_in(const NamedVec<T>& vec, const std::string& name);

  NamedVec<double> counters_;
  NamedVec<double> gauges_;
  NamedVec<Histogram> histograms_;
};

}  // namespace ckp
