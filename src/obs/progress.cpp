#include "obs/progress.hpp"

#include <atomic>
#include <iostream>

#include "obs/resource.hpp"
#include "util/json.hpp"

namespace ckp {

namespace {

// Interval is read from worker threads (trial completion hooks) while the
// main thread may still be parsing flags in another bench's ctor; keep it
// atomic so that is well-defined even if misused.
std::atomic<double> g_progress_interval{0.0};

std::ostream& resolve_sink(std::ostream* sink) {
  return sink != nullptr ? *sink : std::cerr;
}

void write_common_tail(JsonWriter& w, double elapsed) {
  w.key("elapsed_seconds").value(elapsed);
  w.key("rss_bytes").value(static_cast<std::uint64_t>(current_rss_bytes()));
}

}  // namespace

void set_progress_interval(double seconds) {
  g_progress_interval.store(seconds > 0.0 ? seconds : 0.0,
                            std::memory_order_relaxed);
}

double progress_interval() {
  return g_progress_interval.load(std::memory_order_relaxed);
}

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total,
                             double every_seconds, std::ostream* sink,
                             NowFn now)
    : label_(std::move(label)),
      total_(total),
      every_(every_seconds == kGlobalInterval ? progress_interval()
                                              : every_seconds),
      sink_(sink),
      timer_(now) {}

ProgressMeter::~ProgressMeter() {
  try {
    finish();
  } catch (...) {
    // A sink with exceptions enabled must not escape a destructor.
  }
}

void ProgressMeter::step(std::uint64_t delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  done_ += delta;
  const double now = timer_.seconds();
  if (!emitted_any_ || now - last_emit_seconds_ >= every_) {
    emit(done_, /*final=*/false);
  }
}

void ProgressMeter::finish() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_ || !emitted_any_) {
    finished_ = true;
    return;
  }
  finished_ = true;
  emit(done_, /*final=*/true);
}

std::uint64_t ProgressMeter::position() {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void ProgressMeter::emit(std::uint64_t done, bool final) {
  const double elapsed = timer_.seconds();
  JsonWriter w;
  w.begin_object();
  w.key("progress").value(label_);
  w.key("done").value(done);
  if (total_ > 0) {
    w.key("total").value(total_);
    if (done > 0 && done < total_) {
      w.key("eta_seconds")
          .value(elapsed * static_cast<double>(total_ - done) /
                 static_cast<double>(done));
    }
  }
  write_common_tail(w, elapsed);
  if (final) w.key("final").value(true);
  w.end_object();
  resolve_sink(sink_) << w.str() << '\n' << std::flush;
  last_emit_seconds_ = elapsed;
  emitted_any_ = true;
}

ProgressObserver::ProgressObserver(std::string label, double every_seconds,
                                   std::ostream* sink, EngineObserver* next,
                                   NowFn now)
    : label_(std::move(label)),
      every_(every_seconds == kGlobalInterval ? progress_interval()
                                              : every_seconds),
      sink_(sink),
      next_(next),
      timer_(now) {}

void ProgressObserver::on_round_begin(int round) {
  if (next_ != nullptr) next_->on_round_begin(round);
}

void ProgressObserver::on_round_end(const RoundStats& stats) {
  if (next_ != nullptr) next_->on_round_end(stats);
  if (!enabled()) return;
  const double elapsed = timer_.seconds();
  if (elapsed - last_emit_seconds_ < every_) return;
  last_emit_seconds_ = elapsed;
  JsonWriter w;
  w.begin_object();
  w.key("progress").value(label_);
  w.key("round").value(stats.round);
  if (stats.max_rounds > 0) w.key("max_rounds").value(stats.max_rounds);
  w.key("halted_fraction").value(stats.halted_fraction());
  write_common_tail(w, elapsed);
  w.end_object();
  resolve_sink(sink_) << w.str() << '\n' << std::flush;
}

void ProgressObserver::on_node_halt(NodeId v, int round) {
  if (next_ != nullptr) next_->on_node_halt(v, round);
}

void ProgressObserver::on_run_end(const RunStats& stats) {
  if (next_ != nullptr) next_->on_run_end(stats);
  if (!enabled() || last_emit_seconds_ == 0.0) return;
  JsonWriter w;
  w.begin_object();
  w.key("progress").value(label_);
  w.key("round").value(stats.rounds);
  w.key("all_halted").value(stats.all_halted);
  write_common_tail(w, timer_.seconds());
  w.key("final").value(true);
  w.end_object();
  resolve_sink(sink_) << w.str() << '\n' << std::flush;
}

}  // namespace ckp
