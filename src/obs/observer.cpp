#include "obs/observer.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

std::vector<double> round_seconds_bounds() {
  // Decade buckets from 1µs to 10s.
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

}  // namespace

MetricsObserver::MetricsObserver(MetricsRegistry* registry)
    : registry_(registry) {
  CKP_CHECK_MSG(registry != nullptr, "MetricsObserver needs a registry");
}

void MetricsObserver::on_round_end(const RoundStats& stats) {
  registry_->add("engine.rounds");
  registry_->add("engine.steps", static_cast<double>(stats.active_nodes));
  registry_->add("engine.state_copies",
                 static_cast<double>(stats.state_copies));
  registry_->set("engine.halted_fraction", stats.halted_fraction());
  registry_->set("engine.threads", static_cast<double>(stats.threads));
  registry_->histogram("engine.active_nodes", Histogram::powers_of_two(24))
      .add(static_cast<double>(stats.active_nodes));
  registry_->histogram("engine.round_seconds", round_seconds_bounds())
      .add(stats.seconds);
  // Per-chunk step times expose the parallel load balance: with T threads a
  // perfectly balanced round has T near-equal entries well below the round
  // wall time.
  double chunk_sum = 0.0;
  double chunk_min = 0.0;
  double chunk_max = 0.0;
  bool first_chunk = true;
  for (const double chunk : stats.chunk_seconds) {
    registry_->histogram("engine.chunk_seconds", round_seconds_bounds())
        .add(chunk);
    chunk_sum += chunk;
    chunk_min = first_chunk ? chunk : (chunk < chunk_min ? chunk : chunk_min);
    chunk_max = chunk > chunk_max ? chunk : chunk_max;
    first_chunk = false;
  }
  if (!first_chunk) {
    // The skew histogram and the utilization gauge summarize the same
    // spread two ways: skew is the absolute max−min gap per round;
    // utilization is the fraction of the round's thread-seconds spent in
    // chunk bodies (1.0 = perfectly balanced, no dispatch overhead).
    registry_->histogram("engine.chunk_skew", round_seconds_bounds())
        .add(chunk_max - chunk_min);
    if (stats.seconds > 0.0 && stats.threads > 0) {
      registry_->set("engine.thread_utilization",
                     chunk_sum / (static_cast<double>(stats.threads) *
                                  stats.seconds));
    }
  }
}

void MetricsObserver::on_node_halt(NodeId /*v*/, int /*round*/) {
  registry_->add("engine.halts");
}

void MetricsObserver::on_run_end(const RunStats& stats) {
  registry_->set("engine.run_rounds", static_cast<double>(stats.rounds));
  registry_->set("engine.all_halted", stats.all_halted ? 1.0 : 0.0);
  registry_->set("engine.run_seconds", stats.seconds);
}

}  // namespace ckp
