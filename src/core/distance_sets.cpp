#include "core/distance_sets.hpp"

#include <algorithm>
#include <functional>
#include <cmath>
#include <set>

#include "graph/bfs_kernel.hpp"
#include "graph/power.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

// Pairwise distances restricted to the set (BFS from each member).
bool pairwise_far_and_exact_links(const Graph& g,
                                  const std::vector<NodeId>& set, int k,
                                  std::vector<std::pair<int, int>>* links) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto dist = bfs_distances(g, set[i], k);
    for (std::size_t j = 0; j < set.size(); ++j) {
      if (i == j) continue;
      const int d = dist[static_cast<std::size_t>(set[j])];
      if (d >= 0 && d < k) return false;  // closer than k
      if (d == k && links != nullptr && i < j) {
        links->emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return true;
}

// Same predicate, answered from the precomputed capped distance table (an
// absent row entry means dist > k).
bool pairwise_far_and_exact_links(const CappedDistanceTable& table,
                                  const std::vector<NodeId>& set, int k,
                                  std::vector<std::pair<int, int>>* links) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      const int d = table.distance(set[i], set[j]);
      if (d >= 0 && d < k) return false;
      if (d == k && links != nullptr) {
        links->emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return true;
}

bool links_connected(int t, const std::vector<std::pair<int, int>>& links) {
  std::vector<int> parent(static_cast<std::size_t>(t));
  for (int i = 0; i < t; ++i) parent[static_cast<std::size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  int components = t;
  for (const auto& [a, b] : links) {
    const int ra = find(a);
    const int rb = find(b);
    if (ra != rb) {
      parent[static_cast<std::size_t>(ra)] = rb;
      --components;
    }
  }
  return components == 1;
}

}  // namespace

bool is_distance_k_set(const Graph& g, const std::vector<NodeId>& set, int k) {
  CKP_CHECK(k >= 1);
  CKP_CHECK(!set.empty());
  std::set<NodeId> distinct(set.begin(), set.end());
  CKP_CHECK_MSG(distinct.size() == set.size(), "set has duplicates");
  std::vector<std::pair<int, int>> links;
  if (!pairwise_far_and_exact_links(g, set, k, &links)) return false;
  return links_connected(static_cast<int>(set.size()), links);
}

std::uint64_t count_distance_k_sets(const Graph& g, int k, int t) {
  CKP_CHECK(k >= 1 && t >= 1);
  CKP_CHECK_MSG(g.num_nodes() <= 512, "exhaustive counting is for small graphs");
  if (t == 1) return static_cast<std::uint64_t>(g.num_nodes());

  // All distances <= k up front — one kernel BFS per node — so growing and
  // validating candidate sets is pure table lookups instead of a fresh BFS
  // per member per candidate set.
  const CappedDistanceTable table = capped_pair_distances(g, k);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  // Epoch-stamped accumulators (same trick as BfsScratch): one O(n) clear
  // for the whole enumeration instead of one per candidate set.
  std::vector<std::uint32_t> seen_stamp(n, 0), exact_stamp(n, 0);
  std::vector<int> min_dist(n, 0);
  std::uint32_t epoch = 0;

  // Grow candidate sets by adding vertices at distance exactly k from some
  // member (a necessary condition for connectivity in G^{=k}); deduplicate
  // by the sorted vertex set; validate the full definition at size t.
  std::set<std::vector<NodeId>> frontier;
  for (NodeId v = 0; v < g.num_nodes(); ++v) frontier.insert({v});
  for (int size = 1; size < t; ++size) {
    std::set<std::vector<NodeId>> next;
    for (const auto& set : frontier) {
      // Candidates: distance exactly k from some member, >= k from all.
      // Members stamp themselves at distance 0, so they are skipped by the
      // min_dist < k test below without a separate membership scan.
      ++epoch;
      for (const NodeId m : set) {
        for (const auto& [u, d] : table.row(m)) {
          const auto ui = static_cast<std::size_t>(u);
          if (seen_stamp[ui] != epoch || d < min_dist[ui]) min_dist[ui] = d;
          seen_stamp[ui] = epoch;
          if (d == k) exact_stamp[ui] = epoch;
        }
      }
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const auto ui = static_cast<std::size_t>(u);
        if (exact_stamp[ui] != epoch) continue;
        if (min_dist[ui] < k) continue;  // some member closer (or u itself)
        std::vector<NodeId> grown = set;
        grown.push_back(u);
        std::sort(grown.begin(), grown.end());
        next.insert(std::move(grown));
      }
    }
    frontier = std::move(next);
  }
  std::uint64_t count = 0;
  std::vector<std::pair<int, int>> links;
  for (const auto& set : frontier) {
    links.clear();
    if (!pairwise_far_and_exact_links(table, set, k, &links)) continue;
    if (links_connected(static_cast<int>(set.size()), links)) ++count;
  }
  return count;
}

double lemma3_log2_bound(std::uint64_t n, int delta, int k, int t) {
  CKP_CHECK(delta >= 1 && k >= 1 && t >= 1);
  return 2.0 * t + std::log2(static_cast<double>(n)) +
         static_cast<double>(k) * (t - 1) * std::log2(static_cast<double>(delta));
}

}  // namespace ckp
