// Automatic round elimination over LCL problem descriptions.
//
// The Ω(log log n) / Ω(log n) lower bounds the paper builds on (Brandt et
// al. [1]) come from a syntactic operator on problem descriptions: on
// (d_A, d_P)-biregular trees a problem Π is given by half-edge labels Σ, a
// multiset constraint A on active nodes (degree d_A) and P on passive nodes
// (degree d_P). One elimination step R(Π) swaps the roles:
//
//   * new labels: non-empty subsets of Σ;
//   * new active configurations (the old passive side): tuples of subsets
//     (S_1,…,S_{d_P}) such that EVERY choice s_i ∈ S_i satisfies P,
//     restricted to maximal tuples (no S_i can grow);
//   * new passive configurations: tuples (S_1,…,S_{d_A}) over the surviving
//     labels such that SOME choice s_i ∈ S_i satisfies A.
//
// If a problem needs t rounds, R(Π) needs t-1; a problem isomorphic to its
// own second elimination R(R(Π)) and not 0-round solvable therefore has no
// o(log* n)-type upper bound from this method alone — sinkless orientation
// is the canonical fixed point, which bench_roundelim certifies
// mechanically, exactly the engine behind the paper's Theorem 4 lemmas.
//
// Two implementations of the operator live here (DESIGN.md §7):
//
//   * round_eliminate — the packed kernel: configurations as single
//     uint64_t keys in sorted flat vectors, maximal ∀-tuples found directly
//     by a pruned antichain search (the ∀-property is downward-closed in
//     every coordinate), the ∃-pass as a bitmask matching DP, and both
//     passes fanned across the shared thread pool with deterministic
//     chunk-ordered merges — output is bit-identical at every thread count.
//   * round_eliminate_reference — the original enumerate-then-filter
//     prototype, kept verbatim as the differential-testing oracle.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ckp {

// A problem on (active_degree, passive_degree)-biregular trees.
// Configurations are sorted label-index multisets.
struct BipartiteProblem {
  int active_degree = 0;
  int passive_degree = 0;
  std::vector<std::string> label_names;
  std::set<std::vector<int>> active;
  std::set<std::vector<int>> passive;

  int num_labels() const { return static_cast<int>(label_names.size()); }

  // Structural sanity: degrees positive, configuration sizes match, label
  // indices in range.
  void validate() const;
};

// Enumerates all sorted multisets of size `size` over [0, universe) in
// colex order. `size == 0` yields exactly one (empty) multiset; a
// `universe <= 0` with `size > 0` yields none (there is no label to place —
// the unguarded seed version spun forever emitting out-of-range slots).
void enumerate_multisets(int universe, int size,
                         const std::function<void(const std::vector<int>&)>& f);

// One elimination step R(Π) (roles swap: the result's active degree is Π's
// passive degree). Throws CheckFailure if the label universe would exceed
// `max_labels` (round elimination can blow up doubly exponentially).
//
// The packed kernel handles up to 64 labels and degrees up to 8 (the packed
// representation is 8 one-byte slots); outside that envelope it falls back
// to round_eliminate_reference and its ≤20-label bound. `threads <= 0`
// means default_engine_threads(); any thread count produces bit-identical
// output.
BipartiteProblem round_eliminate(const BipartiteProblem& p,
                                 int max_labels = 64, int threads = 0);

// The seed brute-force implementation (std::set<std::vector<int>>
// configurations, full enumerate-then-filter passes, ≤20 labels). Kept as
// the oracle for differential tests and the bench's speedup baseline.
BipartiteProblem round_eliminate_reference(const BipartiteProblem& p,
                                           int max_labels = 64);

// Exact structural equality — degrees, label names, and both configuration
// sets. Stronger than isomorphism; used by the differential tests to pin
// the packed kernel to the reference output label-for-label.
bool problems_identical(const BipartiteProblem& a, const BipartiteProblem& b);

// A 16-hex-digit digest of the full problem description (degrees, label
// names, both configuration sets). Equal problems (problems_identical)
// digest equally; the artifact store bakes it into checkpoint keys so a
// resumed run can never pick up steps computed from a different input
// problem (e.g. after a generator change).
std::string problem_digest(const BipartiteProblem& p);

// True iff a and b are identical up to a bijective relabeling. Labels are
// first partitioned by invariant signatures (occurrence counts per side and
// multiplicity); the backtracking search only matches labels with equal
// signatures and prunes with pairwise co-occurrence counts, so the old
// 8-label k! cap is gone (problems in the dozens of labels are fine).
bool problems_isomorphic(const BipartiteProblem& a, const BipartiteProblem& b);

// The 0-round criterion on port-numbered biregular trees: some active
// configuration C exists such that EVERY d_P-multiset over the labels of C
// is passive-allowed (all active nodes output C; a passive node can then see
// any combination of C's labels).
bool zero_round_solvable(const BipartiteProblem& p);

// Sinkless orientation on Δ-regular trees in the natural encoding:
// vertices active (degree Δ, at least one outgoing half-edge "O"), edges
// passive (degree 2, exactly one "O" and one incoming "I" end). One double
// elimination step rewrites this into the canonical form below.
BipartiteProblem sinkless_orientation_problem(int delta);

// The canonical round-elimination presentation of sinkless orientation
// ("M U…U" in the round-eliminator literature): vertices commit exactly one
// designated out-edge M, edges forbid two M ends. Semantically equivalent to
// sinkless_orientation_problem and an exact fixed point of the double
// elimination step R∘R — the certificate behind the Ω-bounds of Section IV.
BipartiteProblem sinkless_orientation_canonical(int delta);

// A trivially solvable toy problem (every configuration allowed) used as
// the collapsing control in tests and benches.
BipartiteProblem free_problem(int active_degree, int passive_degree,
                              int labels);

// Test seams into the packed kernel's inner passes. Each reruns one pass of
// R(p) sequentially on the same thread_local scratch the kernel itself uses
// and returns only a count, so a caller can warm the buffers with one call
// and then certify — via AssertNoAlloc — that a repeat performs zero heap
// allocations (the "allocation-free inner passes" claim of DESIGN.md §7).
// `p` must fit the packed envelope (≤64 labels, degrees ≤8).
namespace roundelim_detail {

// Maximal ∀-tuple count of one elimination step == |R(p).active|.
std::size_t forall_pass_tuple_count(const BipartiteProblem& p);

// ∃-pass hit count over the surviving labels == |R(p).passive|.
std::size_t exists_pass_hit_count(const BipartiteProblem& p);

}  // namespace roundelim_detail

}  // namespace ckp
