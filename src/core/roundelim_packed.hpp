// Packed configuration keys for the round-elimination kernel.
//
// A configuration is a sorted multiset of at most 8 label indices. The
// kernel packs one configuration into a single uint64_t: byte j (counting
// from the most significant byte) holds `label + 1` of the j-th smallest
// element, unused trailing bytes are zero. The +1 offset keeps label 0
// distinct from padding, and because all keys in one context share a size,
// numeric order on keys equals lexicographic order on the sorted vectors —
// so a sorted flat vector of keys enumerates configurations in exactly the
// order `std::set<std::vector<int>>` would, and membership is one binary
// search over a contiguous array instead of a pointer-chasing tree walk.
//
// All helpers are O(size) with size <= 8; none allocate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/check.hpp"

namespace ckp {
namespace packedcfg {

using Key = std::uint64_t;

// Hard representation limits of the packed kernel: 8 one-byte slots per
// key, and label indices must fit both a byte (255 after the +1 offset)
// and — for the subset masks the elimination step manipulates — 64 bits.
inline constexpr int kMaxSlots = 8;
inline constexpr int kMaxLabels = 64;

inline Key pack(const int* labels, int size) {
  CKP_CHECK(size >= 0 && size <= kMaxSlots);
  Key key = 0;
  for (int j = 0; j < size; ++j) {
    CKP_CHECK(labels[j] >= 0 && labels[j] < 255);
    key |= (static_cast<Key>(labels[j]) + 1) << (8 * (7 - j));
  }
  return key;
}

inline Key pack(const std::vector<int>& sorted_cfg) {
  return pack(sorted_cfg.data(), static_cast<int>(sorted_cfg.size()));
}

// The label stored at slot `j` (0-based from the smallest element).
inline int label_at(Key key, int j) {
  return static_cast<int>((key >> (8 * (7 - j))) & 0xFF) - 1;
}

inline void unpack(Key key, int size, int* out) {
  for (int j = 0; j < size; ++j) out[j] = label_at(key, j);
}

inline std::vector<int> unpack(Key key, int size) {
  std::vector<int> out(static_cast<std::size_t>(size));
  unpack(key, size, out.data());
  return out;
}

// Inserts `label` into a key currently holding `size` sorted labels
// (size < kMaxSlots) and returns the key of the size+1 multiset. This is
// the incremental step that replaces the per-choice re-sort of the
// reference kernel: O(size) byte shuffling, no allocation.
inline Key insert(Key key, int size, int label) {
  const Key b = static_cast<Key>(label) + 1;
  int pos = 0;
  while (pos < size && ((key >> (8 * (7 - pos))) & 0xFF) <= b) ++pos;
  // Keep bytes [0, pos), place b at pos, shift bytes [pos, size) down one.
  const Key high = pos == 0 ? 0 : key & (~Key{0} << (64 - 8 * pos));
  const Key low = key & ~(pos == 0 ? Key{0} : (~Key{0} << (64 - 8 * pos)));
  return high | (b << (8 * (7 - pos))) | (low >> 8);
}

// Multiset union of two keys of sizes `size_a` and `size_b`
// (size_a + size_b <= kMaxSlots).
inline Key merge(Key a, int size_a, Key b, int size_b) {
  Key out = a;
  int size = size_a;
  for (int j = 0; j < size_b; ++j) out = insert(out, size++, label_at(b, j));
  return out;
}

// Removes one occurrence of `label` from a key of `size` labels, or
// nullopt when absent. The common inner-loop special case of subtract().
inline std::optional<Key> erase_one(Key key, int size, int label) {
  const Key b = static_cast<Key>(label) + 1;
  for (int pos = 0; pos < size; ++pos) {
    const Key byte = (key >> (8 * (7 - pos))) & 0xFF;
    if (byte == b) {
      const Key high = pos == 0 ? 0 : key & (~Key{0} << (64 - 8 * pos));
      const Key low =
          key & ~(pos == 0 ? Key{0} : (~Key{0} << (64 - 8 * pos))) &
          ~(Key{0xFF} << (8 * (7 - pos)));
      return high | (low << 8);
    }
    if (byte > b) return std::nullopt;  // sorted — label cannot follow
  }
  return std::nullopt;
}

// Bitmask of the distinct labels present in a key of `size` labels.
inline std::uint64_t label_mask(Key key, int size) {
  std::uint64_t mask = 0;
  for (int j = 0; j < size; ++j) mask |= 1ULL << label_at(key, j);
  return mask;
}

// Multiset difference big − small, or nullopt when small is not a
// sub-multiset of big. The result holds size_big − size_small labels.
inline std::optional<Key> subtract(Key big, int size_big, Key small,
                                   int size_small) {
  Key out = 0;
  int emitted = 0;
  int i = 0;
  int j = 0;
  while (i < size_big) {
    const int bl = label_at(big, i);
    if (j < size_small) {
      const int sl = label_at(small, j);
      if (bl == sl) {  // matched — consume both
        ++i;
        ++j;
        continue;
      }
      if (bl > sl) return std::nullopt;  // small has a label big lacks
    }
    out |= (static_cast<Key>(bl) + 1) << (8 * (7 - emitted));
    ++emitted;
    ++i;
  }
  if (j < size_small) return std::nullopt;
  return out;
}

}  // namespace packedcfg
}  // namespace ckp
