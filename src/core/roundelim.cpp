#include "core/roundelim.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <numeric>
#include <sstream>

namespace ckp {
namespace {

// Enumerates all sorted multisets of size `size` over [0, universe).
void enumerate_multisets(int universe, int size,
                         const std::function<void(const std::vector<int>&)>& f) {
  std::vector<int> current(static_cast<std::size_t>(size), 0);
  while (true) {
    f(current);
    // Next multiset in colex order: increment rightmost incrementable slot.
    int i = size - 1;
    while (i >= 0 && current[static_cast<std::size_t>(i)] == universe - 1) --i;
    if (i < 0) break;
    const int next = current[static_cast<std::size_t>(i)] + 1;
    for (int j = i; j < size; ++j) current[static_cast<std::size_t>(j)] = next;
  }
}

// Does every choice (s_1..s_k), s_i ∈ sets[i], form a multiset in `allowed`?
bool forall_choices_in(const std::vector<std::vector<int>>& sets,
                       const std::set<std::vector<int>>& allowed) {
  std::vector<std::size_t> idx(sets.size(), 0);
  std::vector<int> choice(sets.size());
  while (true) {
    for (std::size_t i = 0; i < sets.size(); ++i) {
      choice[i] = sets[i][idx[i]];
    }
    std::vector<int> sorted = choice;
    std::sort(sorted.begin(), sorted.end());
    if (!allowed.contains(sorted)) return false;
    std::size_t carry = 0;
    while (carry < sets.size() && ++idx[carry] == sets[carry].size()) {
      idx[carry] = 0;
      ++carry;
    }
    if (carry == sets.size()) return true;
  }
}

// Does some choice land in `allowed`?
bool exists_choice_in(const std::vector<std::vector<int>>& sets,
                      const std::set<std::vector<int>>& allowed) {
  std::vector<std::size_t> idx(sets.size(), 0);
  std::vector<int> choice(sets.size());
  while (true) {
    for (std::size_t i = 0; i < sets.size(); ++i) {
      choice[i] = sets[i][idx[i]];
    }
    std::vector<int> sorted = choice;
    std::sort(sorted.begin(), sorted.end());
    if (allowed.contains(sorted)) return true;
    std::size_t carry = 0;
    while (carry < sets.size() && ++idx[carry] == sets[carry].size()) {
      idx[carry] = 0;
      ++carry;
    }
    if (carry == sets.size()) return false;
  }
}

std::string subset_name(const BipartiteProblem& p, std::uint64_t mask) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (int l = 0; l < p.num_labels(); ++l) {
    if (mask & (1ULL << l)) {
      if (!first) os << ',';
      os << p.label_names[static_cast<std::size_t>(l)];
      first = false;
    }
  }
  os << '}';
  return os.str();
}

std::vector<int> subset_members(std::uint64_t mask) {
  std::vector<int> out;
  for (int l = 0; l < 64; ++l) {
    if (mask & (1ULL << l)) out.push_back(l);
  }
  return out;
}

}  // namespace

void BipartiteProblem::validate() const {
  CKP_CHECK(active_degree >= 1 && passive_degree >= 1);
  CKP_CHECK(!label_names.empty());
  for (const auto& cfg : active) {
    CKP_CHECK(cfg.size() == static_cast<std::size_t>(active_degree));
    CKP_CHECK(std::is_sorted(cfg.begin(), cfg.end()));
    for (int l : cfg) CKP_CHECK(l >= 0 && l < num_labels());
  }
  for (const auto& cfg : passive) {
    CKP_CHECK(cfg.size() == static_cast<std::size_t>(passive_degree));
    CKP_CHECK(std::is_sorted(cfg.begin(), cfg.end()));
    for (int l : cfg) CKP_CHECK(l >= 0 && l < num_labels());
  }
}

BipartiteProblem round_eliminate(const BipartiteProblem& p, int max_labels) {
  p.validate();
  CKP_CHECK_MSG(p.num_labels() <= 20,
                "round elimination on >20 labels is intractable here");
  const std::uint64_t universe = (1ULL << p.num_labels()) - 1;

  // Candidate new-active configurations: multisets of non-empty subsets of
  // size passive_degree with the ∀ property, then maximality filtering.
  std::vector<std::uint64_t> subsets;
  for (std::uint64_t m = 1; m <= universe; ++m) subsets.push_back(m);

  std::set<std::vector<int>> forall_ok;  // over subset indices
  enumerate_multisets(
      static_cast<int>(subsets.size()), p.passive_degree,
      [&](const std::vector<int>& cfg) {
        std::vector<std::vector<int>> sets;
        sets.reserve(cfg.size());
        for (int si : cfg) {
          sets.push_back(subset_members(subsets[static_cast<std::size_t>(si)]));
        }
        if (forall_choices_in(sets, p.passive)) {
          forall_ok.insert(cfg);
        }
      });

  // Maximality: drop cfg if replacing one slot's subset by a strict superset
  // keeps the ∀ property.
  std::set<std::vector<int>> maximal;
  for (const auto& cfg : forall_ok) {
    bool is_maximal = true;
    for (std::size_t slot = 0; slot < cfg.size() && is_maximal; ++slot) {
      const std::uint64_t cur = subsets[static_cast<std::size_t>(cfg[slot])];
      for (std::size_t bigger = 0; bigger < subsets.size(); ++bigger) {
        const std::uint64_t candidate = subsets[bigger];
        if (candidate == cur || (candidate & cur) != cur) continue;
        std::vector<int> enlarged = cfg;
        enlarged[slot] = static_cast<int>(bigger);
        std::sort(enlarged.begin(), enlarged.end());
        if (forall_ok.contains(enlarged)) {
          is_maximal = false;
          break;
        }
      }
    }
    if (is_maximal) maximal.insert(cfg);
  }

  // Labels that actually appear.
  std::set<int> used;
  for (const auto& cfg : maximal) {
    for (int si : cfg) used.insert(si);
  }
  CKP_CHECK_MSG(!used.empty(), "round elimination produced the empty problem");
  CKP_CHECK_MSG(static_cast<int>(used.size()) <= max_labels,
                "round elimination exceeded " << max_labels << " labels");

  std::map<int, int> rename;
  BipartiteProblem out;
  out.active_degree = p.passive_degree;  // roles swap
  out.passive_degree = p.active_degree;
  for (int si : used) {
    rename[si] = static_cast<int>(out.label_names.size());
    out.label_names.push_back(
        subset_name(p, subsets[static_cast<std::size_t>(si)]));
  }
  for (const auto& cfg : maximal) {
    std::vector<int> renamed;
    renamed.reserve(cfg.size());
    for (int si : cfg) renamed.push_back(rename.at(si));
    std::sort(renamed.begin(), renamed.end());
    out.active.insert(renamed);
  }

  // New passive side: ∃ over the old active constraint, over used labels.
  std::vector<int> used_list(used.begin(), used.end());
  enumerate_multisets(
      static_cast<int>(used_list.size()), p.active_degree,
      [&](const std::vector<int>& cfg) {
        std::vector<std::vector<int>> sets;
        sets.reserve(cfg.size());
        for (int i : cfg) {
          sets.push_back(subset_members(
              subsets[static_cast<std::size_t>(used_list[static_cast<std::size_t>(i)])]));
        }
        if (exists_choice_in(sets, p.active)) {
          std::vector<int> renamed;
          renamed.reserve(cfg.size());
          for (int i : cfg) {
            renamed.push_back(
                rename.at(used_list[static_cast<std::size_t>(i)]));
          }
          std::sort(renamed.begin(), renamed.end());
          out.passive.insert(renamed);
        }
      });

  out.validate();
  return out;
}

bool problems_isomorphic(const BipartiteProblem& a, const BipartiteProblem& b) {
  if (a.active_degree != b.active_degree ||
      a.passive_degree != b.passive_degree ||
      a.num_labels() != b.num_labels() || a.active.size() != b.active.size() ||
      a.passive.size() != b.passive.size()) {
    return false;
  }
  const int k = a.num_labels();
  CKP_CHECK_MSG(k <= 8, "isomorphism search limited to 8 labels");
  std::vector<int> perm(static_cast<std::size_t>(k));
  std::iota(perm.begin(), perm.end(), 0);
  auto apply = [&](const std::set<std::vector<int>>& cfgs) {
    std::set<std::vector<int>> out;
    for (const auto& cfg : cfgs) {
      std::vector<int> mapped;
      mapped.reserve(cfg.size());
      for (int l : cfg) mapped.push_back(perm[static_cast<std::size_t>(l)]);
      std::sort(mapped.begin(), mapped.end());
      out.insert(mapped);
    }
    return out;
  };
  do {
    if (apply(a.active) == b.active && apply(a.passive) == b.passive) {
      return true;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

bool zero_round_solvable(const BipartiteProblem& p) {
  for (const auto& cfg : p.active) {
    std::set<int> support(cfg.begin(), cfg.end());
    const std::vector<int> labels(support.begin(), support.end());
    bool all_passive_ok = true;
    enumerate_multisets(
        static_cast<int>(labels.size()), p.passive_degree,
        [&](const std::vector<int>& idx_cfg) {
          std::vector<int> real;
          real.reserve(idx_cfg.size());
          for (int i : idx_cfg) real.push_back(labels[static_cast<std::size_t>(i)]);
          std::sort(real.begin(), real.end());
          if (!p.passive.contains(real)) all_passive_ok = false;
        });
    if (all_passive_ok) return true;
  }
  return false;
}

BipartiteProblem sinkless_orientation_problem(int delta) {
  CKP_CHECK(delta >= 2);
  BipartiteProblem p;
  p.active_degree = delta;  // vertices
  p.passive_degree = 2;     // edges
  p.label_names = {"O", "I"};
  // Vertex: at least one outgoing half-edge — multisets with >= 1 "O" (0).
  for (int outs = 1; outs <= delta; ++outs) {
    std::vector<int> cfg;
    for (int i = 0; i < outs; ++i) cfg.push_back(0);
    for (int i = outs; i < delta; ++i) cfg.push_back(1);
    std::sort(cfg.begin(), cfg.end());
    p.active.insert(cfg);
  }
  // Edge: exactly one outgoing and one incoming end.
  p.passive.insert({0, 1});
  p.validate();
  return p;
}

BipartiteProblem sinkless_orientation_canonical(int delta) {
  CKP_CHECK(delta >= 2);
  BipartiteProblem p;
  p.active_degree = delta;
  p.passive_degree = 2;
  p.label_names = {"M", "U"};
  // Vertex: exactly one designated outgoing half-edge.
  std::vector<int> cfg(static_cast<std::size_t>(delta), 1);
  cfg[0] = 0;
  std::sort(cfg.begin(), cfg.end());
  p.active.insert(cfg);
  // Edge: at most one designated end.
  p.passive.insert({0, 1});
  p.passive.insert({1, 1});
  p.validate();
  return p;
}

BipartiteProblem free_problem(int active_degree, int passive_degree,
                              int labels) {
  CKP_CHECK(labels >= 1 && labels <= 6);
  BipartiteProblem p;
  p.active_degree = active_degree;
  p.passive_degree = passive_degree;
  for (int l = 0; l < labels; ++l) {
    p.label_names.push_back(std::string(1, static_cast<char>('a' + l)));
  }
  enumerate_multisets(labels, active_degree, [&](const std::vector<int>& cfg) {
    p.active.insert(cfg);
  });
  enumerate_multisets(labels, passive_degree, [&](const std::vector<int>& cfg) {
    p.passive.insert(cfg);
  });
  p.validate();
  return p;
}

}  // namespace ckp
