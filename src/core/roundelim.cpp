#include "core/roundelim.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <utility>

#include "core/roundelim_packed.hpp"
#include "util/thread_pool.hpp"

namespace ckp {

void enumerate_multisets(int universe, int size,
                         const std::function<void(const std::vector<int>&)>& f) {
  CKP_CHECK(size >= 0);
  if (size == 0) {  // exactly one empty multiset, regardless of universe
    f({});
    return;
  }
  if (universe <= 0) return;  // no label to place — no multisets at all
  std::vector<int> current(static_cast<std::size_t>(size), 0);
  while (true) {
    f(current);
    // Next multiset in colex order: increment rightmost incrementable slot.
    int i = size - 1;
    while (i >= 0 && current[static_cast<std::size_t>(i)] == universe - 1) --i;
    if (i < 0) break;
    const int next = current[static_cast<std::size_t>(i)] + 1;
    for (int j = i; j < size; ++j) current[static_cast<std::size_t>(j)] = next;
  }
}

namespace {

// Does every choice (s_1..s_k), s_i ∈ sets[i], form a multiset in `allowed`?
bool forall_choices_in(const std::vector<std::vector<int>>& sets,
                       const std::set<std::vector<int>>& allowed) {
  std::vector<std::size_t> idx(sets.size(), 0);
  std::vector<int> choice(sets.size());
  while (true) {
    for (std::size_t i = 0; i < sets.size(); ++i) {
      choice[i] = sets[i][idx[i]];
    }
    std::vector<int> sorted = choice;
    std::sort(sorted.begin(), sorted.end());
    if (!allowed.contains(sorted)) return false;
    std::size_t carry = 0;
    while (carry < sets.size() && ++idx[carry] == sets[carry].size()) {
      idx[carry] = 0;
      ++carry;
    }
    if (carry == sets.size()) return true;
  }
}

// Does some choice land in `allowed`?
bool exists_choice_in(const std::vector<std::vector<int>>& sets,
                      const std::set<std::vector<int>>& allowed) {
  std::vector<std::size_t> idx(sets.size(), 0);
  std::vector<int> choice(sets.size());
  while (true) {
    for (std::size_t i = 0; i < sets.size(); ++i) {
      choice[i] = sets[i][idx[i]];
    }
    std::vector<int> sorted = choice;
    std::sort(sorted.begin(), sorted.end());
    if (allowed.contains(sorted)) return true;
    std::size_t carry = 0;
    while (carry < sets.size() && ++idx[carry] == sets[carry].size()) {
      idx[carry] = 0;
      ++carry;
    }
    if (carry == sets.size()) return false;
  }
}

std::string subset_name(const BipartiteProblem& p, std::uint64_t mask) {
  std::string out = "{";
  bool first = true;
  for (int l = 0; l < p.num_labels(); ++l) {
    if (mask & (1ULL << l)) {
      if (!first) out += ',';
      out += p.label_names[static_cast<std::size_t>(l)];
      first = false;
    }
  }
  out += '}';
  return out;
}

std::vector<int> subset_members(std::uint64_t mask) {
  std::vector<int> out;
  for (int l = 0; l < 64; ++l) {
    if (mask & (1ULL << l)) out.push_back(l);
  }
  return out;
}

}  // namespace

void BipartiteProblem::validate() const {
  CKP_CHECK(active_degree >= 1 && passive_degree >= 1);
  CKP_CHECK(!label_names.empty());
  for (const auto& cfg : active) {
    CKP_CHECK(cfg.size() == static_cast<std::size_t>(active_degree));
    CKP_CHECK(std::is_sorted(cfg.begin(), cfg.end()));
    for (int l : cfg) CKP_CHECK(l >= 0 && l < num_labels());
  }
  for (const auto& cfg : passive) {
    CKP_CHECK(cfg.size() == static_cast<std::size_t>(passive_degree));
    CKP_CHECK(std::is_sorted(cfg.begin(), cfg.end()));
    for (int l : cfg) CKP_CHECK(l >= 0 && l < num_labels());
  }
}

BipartiteProblem round_eliminate_reference(const BipartiteProblem& p,
                                           int max_labels) {
  p.validate();
  CKP_CHECK_MSG(p.num_labels() <= 20,
                "round elimination on >20 labels is intractable here");
  const std::uint64_t universe = (1ULL << p.num_labels()) - 1;

  // Candidate new-active configurations: multisets of non-empty subsets of
  // size passive_degree with the ∀ property, then maximality filtering.
  std::vector<std::uint64_t> subsets;
  for (std::uint64_t m = 1; m <= universe; ++m) subsets.push_back(m);

  std::set<std::vector<int>> forall_ok;  // over subset indices
  enumerate_multisets(
      static_cast<int>(subsets.size()), p.passive_degree,
      [&](const std::vector<int>& cfg) {
        std::vector<std::vector<int>> sets;
        sets.reserve(cfg.size());
        for (int si : cfg) {
          sets.push_back(subset_members(subsets[static_cast<std::size_t>(si)]));
        }
        if (forall_choices_in(sets, p.passive)) {
          forall_ok.insert(cfg);
        }
      });

  // Maximality: drop cfg if replacing one slot's subset by a strict superset
  // keeps the ∀ property.
  std::set<std::vector<int>> maximal;
  for (const auto& cfg : forall_ok) {
    bool is_maximal = true;
    for (std::size_t slot = 0; slot < cfg.size() && is_maximal; ++slot) {
      const std::uint64_t cur = subsets[static_cast<std::size_t>(cfg[slot])];
      for (std::size_t bigger = 0; bigger < subsets.size(); ++bigger) {
        const std::uint64_t candidate = subsets[bigger];
        if (candidate == cur || (candidate & cur) != cur) continue;
        std::vector<int> enlarged = cfg;
        enlarged[slot] = static_cast<int>(bigger);
        std::sort(enlarged.begin(), enlarged.end());
        if (forall_ok.contains(enlarged)) {
          is_maximal = false;
          break;
        }
      }
    }
    if (is_maximal) maximal.insert(cfg);
  }

  // Labels that actually appear.
  std::set<int> used;
  for (const auto& cfg : maximal) {
    for (int si : cfg) used.insert(si);
  }
  CKP_CHECK_MSG(!used.empty(), "round elimination produced the empty problem");
  CKP_CHECK_MSG(static_cast<int>(used.size()) <= max_labels,
                "round elimination exceeded " << max_labels << " labels");

  std::map<int, int> rename;
  BipartiteProblem out;
  out.active_degree = p.passive_degree;  // roles swap
  out.passive_degree = p.active_degree;
  for (int si : used) {
    rename[si] = static_cast<int>(out.label_names.size());
    out.label_names.push_back(
        subset_name(p, subsets[static_cast<std::size_t>(si)]));
  }
  for (const auto& cfg : maximal) {
    std::vector<int> renamed;
    renamed.reserve(cfg.size());
    for (int si : cfg) renamed.push_back(rename.at(si));
    std::sort(renamed.begin(), renamed.end());
    out.active.insert(renamed);
  }

  // New passive side: ∃ over the old active constraint, over used labels.
  std::vector<int> used_list(used.begin(), used.end());
  enumerate_multisets(
      static_cast<int>(used_list.size()), p.active_degree,
      [&](const std::vector<int>& cfg) {
        std::vector<std::vector<int>> sets;
        sets.reserve(cfg.size());
        for (int i : cfg) {
          sets.push_back(subset_members(
              subsets[static_cast<std::size_t>(used_list[static_cast<std::size_t>(i)])]));
        }
        if (exists_choice_in(sets, p.active)) {
          std::vector<int> renamed;
          renamed.reserve(cfg.size());
          for (int i : cfg) {
            renamed.push_back(
                rename.at(used_list[static_cast<std::size_t>(i)]));
          }
          std::sort(renamed.begin(), renamed.end());
          out.passive.insert(renamed);
        }
      });

  out.validate();
  return out;
}

// ---------------------------------------------------------------------------
// Packed kernel (DESIGN.md §7).
// ---------------------------------------------------------------------------

namespace {

using packedcfg::Key;

// Sorted, deduplicated flat vector of packed configuration keys. Iterating a
// std::set<std::vector<int>> of uniform-size sorted vectors visits them in
// lexicographic = packed-numeric order, so the keys arrive pre-sorted.
struct PackedSet {
  std::vector<Key> keys;

  bool contains(Key k) const {
    const auto it = std::lower_bound(keys.begin(), keys.end(), k);
    return it != keys.end() && *it == k;
  }
};

void pack_set(const std::set<std::vector<int>>& cfgs, PackedSet& out) {
  out.keys.clear();
  out.keys.reserve(cfgs.size());
  for (const auto& cfg : cfgs) out.keys.push_back(packedcfg::pack(cfg));
}

bool contains_sorted(const std::vector<Key>& v, Key k) {
  const auto it = std::lower_bound(v.begin(), v.end(), k);
  return it != v.end() && *it == k;
}

// The largest m with m ⊆ s and m <= p (0 when none besides the empty set).
std::uint64_t largest_submask_at_most(std::uint64_t s, std::uint64_t p) {
  std::uint64_t m = 0;
  for (int bit = 63; bit >= 0; --bit) {
    const std::uint64_t b = 1ULL << bit;
    if (p & b) {
      if (s & b) {
        m |= b;  // match p's bit — still tight
      } else {
        return m | (s & (b - 1));  // strictly below p from here on
      }
    }
    // p lacks this bit: taking it would overshoot while tight — skip.
  }
  return m;
}

// Antichain search for the maximal ∀-tuples of one elimination step.
//
// A tuple (S_1..S_d) of non-empty label subsets has the ∀-property when
// every per-slot choice lands in the passive set P; the property is
// downward-closed in every coordinate, so the new active side is exactly
// the antichain of maximal tuples. The search walks canonical tuples
// (masks non-increasing slot to slot) depth-first. Its state per depth is
// the *completion set*
//
//   C_i = { e : r ∪ e ∈ P for every choice r of the prefix S_1..S_i },
//
// a sorted flat vector of packed size-(d−i) multisets, advanced by the
// incremental recurrence
//
//   e ∈ C_{i+1}  ⟺  e + l ∈ C_i for every label l ∈ S_{i+1}
//
// (a choice of the prefix-plus-slot factors as a prefix choice plus one
// slot label), starting from C_0 = P. One step costs |C_i| erase-ones plus
// |S_{i+1}| binary searches each — P is never rescanned and nothing is
// hashed or re-sorted (removing a fixed label preserves key order).
//
// The completion sets drive every decision:
//
//   * feasibility — C_{i+1} empty kills the subtree (downward closure lets
//     singleton completions stand in for arbitrary suffixes);
//   * dominance — growing the slot by label g has completion set
//     { e ∈ C_{i+1} : e + g ∈ C_i }; if that equals C_{i+1}, every
//     completion of this prefix also completes the strictly larger one, so
//     no maximal tuple lives below — |C_{i+1}| binary searches to test;
//   * leaf ∀-check — C_d = {∅} nonempty iff the full tuple is ∀-OK;
//   * maximality — the authoritative single-label-growth check (equivalent
//     to the reference's strict-superset filter, again by downward
//     closure) refolds C from the grown slot along the stored path.
//
// Branching is restricted to the labels occurring in the current C_i: a
// slot label no completion contains fails the recurrence immediately, so
// those masks are infeasible and skipping them changes nothing.
//
// All working buffers live in a per-thread SearchScratch, so after the
// first elimination on a thread the search runs allocation-free.
struct SearchScratch {
  std::vector<std::vector<Key>> comps;
  std::vector<std::uint64_t> supps;
  std::vector<std::uint64_t> path;
  std::vector<std::uint64_t> out;
  std::vector<std::vector<Key>> suffix;
};

SearchScratch& search_scratch() {
  thread_local SearchScratch scratch;
  return scratch;
}

class ForallSearch {
 public:
  ForallSearch(const PackedSet& passive, int degree, std::uint64_t support,
               SearchScratch& scratch)
      : d_(degree),
        comps_(scratch.comps),
        supps_(scratch.supps),
        path_(scratch.path),
        out_(scratch.out),
        suffix_(scratch.suffix) {
    // Only ever grown, so capacities persist across eliminations.
    if (comps_.size() < static_cast<std::size_t>(d_) + 1) {
      comps_.resize(static_cast<std::size_t>(d_) + 1);
    }
    if (suffix_.size() < static_cast<std::size_t>(d_)) {
      suffix_.resize(static_cast<std::size_t>(d_));
    }
    comps_[0].assign(passive.keys.begin(), passive.keys.end());  // C_0 = P
    supps_.assign(static_cast<std::size_t>(d_) + 1, 0);
    supps_[0] = support;
    path_.assign(static_cast<std::size_t>(d_), 0);
    out_.clear();
  }

  // Runs the search restricted to first-slot mask `top`; emitted tuples
  // (d_ masks each, slot-wise non-increasing) are appended to out().
  void search_top(std::uint64_t top) {
    CKP_CHECK(top != 0);
    expand(0, top);
  }

  const std::vector<std::uint64_t>& out() const { return out_; }

 private:
  // One recurrence step: out = { e : e + l ∈ parent for all l ∈ mask },
  // parent elements holding `esize` labels. Candidates are the parent
  // elements containing the mask's lowest label, with it removed; removing
  // a fixed label is order-preserving, so `out` emerges sorted. Returns
  // the union of labels occurring in `out`.
  std::uint64_t comp_step(const std::vector<Key>& parent, int esize,
                          std::uint64_t mask, std::vector<Key>& out) const {
    out.clear();
    const int l0 = std::countr_zero(mask);
    const std::uint64_t rest = mask & (mask - 1);
    std::uint64_t supp = 0;
    for (const Key e : parent) {
      const auto stripped = packedcfg::erase_one(e, esize, l0);
      if (!stripped) continue;
      bool ok = true;
      for (std::uint64_t m = rest; m != 0; m &= m - 1) {
        if (!contains_sorted(parent,
                             packedcfg::insert(*stripped, esize - 1,
                                               std::countr_zero(m)))) {
          ok = false;
          break;
        }
      }
      if (ok) {
        out.push_back(*stripped);
        supp |= packedcfg::label_mask(*stripped, esize - 1);
      }
    }
    return supp;
  }

  // The shared per-slot body: assign `mask` to slot `depth`, prune, recurse.
  void expand(int depth, std::uint64_t mask) {
    const std::vector<Key>& parent = comps_[static_cast<std::size_t>(depth)];
    std::vector<Key>& child = comps_[static_cast<std::size_t>(depth) + 1];
    const std::uint64_t child_supp =
        comp_step(parent, d_ - depth, mask, child);
    if (child.empty()) return;  // no completion exists — infeasible
    // Dominance: a one-label growth of this slot with an identical
    // completion set strictly dominates every tuple below this prefix.
    // Only labels some parent completion contains can pass the test.
    // Inserting a fixed label is order-preserving, so the lookups advance
    // through `parent` monotonically.
    const int csize = d_ - depth - 1;
    for (std::uint64_t rest = supps_[static_cast<std::size_t>(depth)] & ~mask;
         rest != 0; rest &= rest - 1) {
      const int g = std::countr_zero(rest);
      bool dominated = true;
      auto it = parent.begin();
      for (const Key e : child) {
        const Key grown = packedcfg::insert(e, csize, g);
        it = std::lower_bound(it, parent.end(), grown);
        if (it == parent.end() || *it != grown) {
          dominated = false;
          break;
        }
        ++it;
      }
      if (dominated) return;
    }
    path_[static_cast<std::size_t>(depth)] = mask;
    if (depth + 1 == d_) {  // only reachable when d_ == 1
      // child nonempty at a leaf means C_d = {∅}: the tuple is ∀-OK.
      if (is_maximal()) {
        out_.insert(out_.end(), path_.begin(), path_.end());
      }
      return;
    }
    supps_[static_cast<std::size_t>(depth) + 1] = child_supp;
    if (depth + 2 == d_) {
      // Last slot shortcut: its completions are all singletons, so a
      // feasible mask is a subset of child_supp and any proper subset is
      // dominated by one more child_supp label — the only maximal
      // candidate is child_supp itself (when canonically placed, i.e.
      // not above this slot's mask; otherwise the tuple is found along
      // its canonical arrangement instead).
      if (child_supp <= mask) {
        path_[static_cast<std::size_t>(depth) + 1] = child_supp;
        if (is_maximal()) {
          out_.insert(out_.end(), path_.begin(), path_.end());
        }
      }
      return;
    }
    for (std::uint64_t m = largest_submask_at_most(child_supp, mask); m != 0;
         m = (m - 1) & child_supp) {
      expand(depth + 1, m);
    }
  }

  // Authoritative maximality: no slot admits one more label. The tuple
  // being ∀-OK, growing slot j by g stays ∀-OK iff every choice that uses
  // g does — i.e. iff t + g ∈ C_j for every distinct suffix choice t of
  // the slots after j. The suffix choice sets are built backward once per
  // candidate and each (j, g) costs |suffix_[j]| binary searches, instead
  // of refolding the completion sets per growth. Growth labels outside
  // slot j's parent support can never stay ∀-OK, so the restricted loop
  // is exhaustive; the last slot needs no recheck because every emitted
  // tuple already exhausts the singleton support of its last level (the
  // shortcut emits exactly that mask; the d_ == 1 leaf survives dominance
  // only when no singleton member is missing).
  bool is_maximal() {
    suffix_[static_cast<std::size_t>(d_) - 1].assign(1, Key{0});
    for (int j = d_ - 2; j >= 0; --j) {
      const std::vector<Key>& prev = suffix_[static_cast<std::size_t>(j) + 1];
      std::vector<Key>& cur = suffix_[static_cast<std::size_t>(j)];
      cur.clear();
      const int tsize = d_ - 2 - j;  // size of prev's elements
      for (std::uint64_t m = path_[static_cast<std::size_t>(j) + 1]; m != 0;
           m &= m - 1) {
        const int l = std::countr_zero(m);
        for (const Key t : prev) {
          cur.push_back(packedcfg::insert(t, tsize, l));
        }
      }
      std::sort(cur.begin(), cur.end());
      cur.erase(std::unique(cur.begin(), cur.end()), cur.end());
    }
    for (int j = d_ - 2; j >= 0; --j) {
      const std::vector<Key>& cj = comps_[static_cast<std::size_t>(j)];
      const int tsize = d_ - 1 - j;  // size of suffix_[j]'s elements
      for (std::uint64_t rest = supps_[static_cast<std::size_t>(j)] &
                                ~path_[static_cast<std::size_t>(j)];
           rest != 0; rest &= rest - 1) {
        const int g = std::countr_zero(rest);
        bool grown_ok = true;
        for (const Key t : suffix_[static_cast<std::size_t>(j)]) {
          if (!contains_sorted(cj, packedcfg::insert(t, tsize, g))) {
            grown_ok = false;
            break;
          }
        }
        if (grown_ok) return false;  // slot j admits g — not maximal
      }
    }
    return true;
  }

  const int d_;
  std::vector<std::vector<Key>>& comps_;   // completion sets along the path
  std::vector<std::uint64_t>& supps_;      // label union of each comps_ level
  std::vector<std::uint64_t>& path_;       // masks along the path
  std::vector<std::uint64_t>& out_;        // emitted tuples, d_ masks each
  std::vector<std::vector<Key>>& suffix_;  // per-level distinct suffix choices
};

// Work below this many items runs sequentially: the pool dispatch costs
// more than the work itself, and output is thread-count-invariant either
// way, so the threshold is purely a latency knob.
constexpr std::size_t kParallelGrain = 16;

bool want_parallel(std::size_t items, int threads) {
  return threads > 1 && items >= kParallelGrain && !in_parallel_worker();
}

// All maximal ∀-tuples, flattened d masks per tuple, in canonical
// (descending first-mask) order. Fans the per-top-mask subtrees across the
// shared pool; each chunk owns its search (memo and output buffer) and the
// buffers are concatenated in chunk order, so the result is bit-identical
// at every thread count.
void find_maximal_tuples(const PackedSet& passive, int degree,
                         std::uint64_t support, int threads,
                         std::vector<std::uint64_t>& flat) {
  const std::size_t num_tops =
      support == 0 ? 0 : (1ULL << std::popcount(support)) - 1;
  if (!want_parallel(num_tops, threads)) {
    ForallSearch search(passive, degree, support, search_scratch());
    if (support != 0) {
      for (std::uint64_t m = support;; m = (m - 1) & support) {
        search.search_top(m);
        if (((m - 1) & support) == 0) break;
      }
    }
    flat.assign(search.out().begin(), search.out().end());
    return;
  }
  std::vector<std::uint64_t> tops;
  tops.reserve(num_tops);
  for (std::uint64_t m = support;; m = (m - 1) & support) {
    tops.push_back(m);
    if (((m - 1) & support) == 0) break;
  }
  const int chunks =
      std::clamp(threads, 1, static_cast<int>(tops.size()));
  std::vector<std::vector<std::uint64_t>> per_chunk(
      static_cast<std::size_t>(chunks));
  shared_pool(chunks).parallel_for(
      0, static_cast<std::int64_t>(tops.size()), chunks,
      [&](std::int64_t begin, std::int64_t end, int chunk) {
        ForallSearch search(passive, degree, support, search_scratch());
        for (std::int64_t i = begin; i < end; ++i) {
          search.search_top(tops[static_cast<std::size_t>(i)]);
        }
        per_chunk[static_cast<std::size_t>(chunk)] = search.out();
      });
  flat.clear();
  for (const auto& buf : per_chunk) {
    flat.insert(flat.end(), buf.begin(), buf.end());
  }
}

// Direct product walk for small choice spaces: does some choice of one
// label per branching mask, on top of the `psize` labels already in
// `partial`, land in `allowed`? Packed insertion keeps the partial
// multiset sorted; early-exits on the first hit.
bool product_choice_in(const PackedSet& allowed,
                       const std::uint64_t* branch_masks, int num_branch,
                       Key partial, int psize) {
  if (num_branch == 0) return allowed.contains(partial);
  for (std::uint64_t m = branch_masks[0]; m != 0; m &= m - 1) {
    const int label = std::countr_zero(m);
    if (product_choice_in(allowed, branch_masks + 1, num_branch - 1,
                          packedcfg::insert(partial, psize, label),
                          psize + 1)) {
      return true;
    }
  }
  return false;
}

// Does some per-slot choice of labels hit `cfg` exactly? Perfect-matching
// DP between the positions of the sorted config and the slots, over slot
// subsets (degree <= 8 so at most 256 states); equal labels are handled by
// the multiset structure for free.
bool config_matchable(const int* cfg, int degree,
                      const std::uint64_t* slot_masks) {
  std::array<bool, 256> cur{};
  cur[0] = true;
  const int full = (1 << degree) - 1;
  for (int k = 0; k < degree; ++k) {
    std::array<bool, 256> next{};
    bool any = false;
    for (int sm = 0; sm <= full; ++sm) {
      if (!cur[sm]) continue;
      for (int s = 0; s < degree; ++s) {
        if ((sm >> s) & 1) continue;
        if ((slot_masks[s] >> cfg[k]) & 1ULL) {
          next[sm | (1 << s)] = true;
          any = true;
        }
      }
    }
    if (!any) return false;
    cur = next;
  }
  return cur[full];
}

// The ∃-pass: all multisets of size `degree` over the new label ids whose
// slot masks admit a choice inside the (packed, original-label) active set.
// Candidate id-tuples walk in colex order — ascending packed-key order —
// in a flat in-place array (no callback indirection; the sequential path
// materializes nothing), and per-chunk hit buffers concatenate back in
// ascending key order on the parallel path.
void exists_pass(const PackedSet& active, int degree,
                 const std::vector<std::uint64_t>& used_masks, int threads,
                 std::vector<Key>& hits) {
  hits.clear();
  const int universe = static_cast<int>(used_masks.size());
  const auto check = [&](const int* ids) {
    std::array<std::uint64_t, packedcfg::kMaxSlots> slots{};
    std::array<std::uint64_t, packedcfg::kMaxSlots> branch{};
    int num_branch = 0;
    Key forced = 0;
    int num_forced = 0;
    std::uint64_t product = 1;
    std::uint64_t label_union = 0;
    for (int s = 0; s < degree; ++s) {
      const std::uint64_t m = used_masks[static_cast<std::size_t>(ids[s])];
      slots[static_cast<std::size_t>(s)] = m;
      label_union |= m;
      if ((m & (m - 1)) == 0) {  // singleton slot — its label is forced
        forced = packedcfg::insert(forced, num_forced++, std::countr_zero(m));
      } else {
        branch[static_cast<std::size_t>(num_branch++)] = m;
        product *= static_cast<std::uint64_t>(std::popcount(m));
      }
    }
    // Small choice spaces (the common case: mostly singleton slots, often
    // no branching at all) walk the product of the branching slots
    // directly; large ones fall back to one matching DP per config.
    if (product <= 256) {
      return product_choice_in(active, branch.data(), num_branch, forced,
                               num_forced);
    }
    std::array<int, packedcfg::kMaxSlots> cfg{};
    for (const Key key : active.keys) {
      packedcfg::unpack(key, degree, cfg.data());
      bool plausible = true;
      for (int k = 0; k < degree; ++k) {
        if (!((label_union >> cfg[static_cast<std::size_t>(k)]) & 1ULL)) {
          plausible = false;  // config needs a label no slot offers
          break;
        }
      }
      if (plausible && config_matchable(cfg.data(), degree, slots.data())) {
        return true;
      }
    }
    return false;
  };
  // In-place colex enumeration of sorted id-multisets (the packed analogue
  // of enumerate_multisets, minus the std::function and vector traffic).
  const auto enumerate = [&](auto&& emit) {
    if (universe <= 0) return;
    std::array<int, packedcfg::kMaxSlots> ids{};
    while (true) {
      emit(ids.data());
      int i = degree - 1;
      while (i >= 0 && ids[static_cast<std::size_t>(i)] == universe - 1) --i;
      if (i < 0) break;
      const int next = ids[static_cast<std::size_t>(i)] + 1;
      for (int j = i; j < degree; ++j) ids[static_cast<std::size_t>(j)] = next;
    }
  };
  std::size_t num_candidates = 1;  // C(universe + degree - 1, degree)
  for (int i = 1; i <= degree; ++i) {
    num_candidates = num_candidates *
                     static_cast<std::size_t>(universe + i - 1) /
                     static_cast<std::size_t>(i);
  }
  if (!want_parallel(num_candidates, threads)) {
    enumerate([&](const int* ids) {
      if (check(ids)) hits.push_back(packedcfg::pack(ids, degree));
    });
    return;
  }
  std::vector<Key> candidates;
  candidates.reserve(num_candidates);
  enumerate([&](const int* ids) {
    candidates.push_back(packedcfg::pack(ids, degree));
  });
  const int chunks =
      std::clamp(threads, 1, static_cast<int>(candidates.size()));
  std::vector<std::vector<Key>> per_chunk(static_cast<std::size_t>(chunks));
  shared_pool(chunks).parallel_for(
      0, static_cast<std::int64_t>(candidates.size()), chunks,
      [&](std::int64_t begin, std::int64_t end, int chunk) {
        std::vector<Key>& mine = per_chunk[static_cast<std::size_t>(chunk)];
        std::array<int, packedcfg::kMaxSlots> ids{};
        for (std::int64_t i = begin; i < end; ++i) {
          const Key candidate = candidates[static_cast<std::size_t>(i)];
          packedcfg::unpack(candidate, degree, ids.data());
          if (check(ids.data())) mine.push_back(candidate);
        }
      });
  for (const auto& buf : per_chunk) {
    hits.insert(hits.end(), buf.begin(), buf.end());
  }
}

BipartiteProblem round_eliminate_packed(const BipartiteProblem& p,
                                        int max_labels, int threads) {
  // Per-thread working buffers — warm after the first elimination.
  thread_local PackedSet passive;
  thread_local PackedSet active;
  thread_local std::vector<std::uint64_t> flat;
  thread_local std::vector<std::uint64_t> used;
  thread_local std::vector<Key> hits;
  pack_set(p.passive, passive);
  pack_set(p.active, active);
  std::uint64_t support = 0;
  for (const Key key : passive.keys) {
    support |= packedcfg::label_mask(key, p.passive_degree);
  }

  find_maximal_tuples(passive, p.passive_degree, support, threads, flat);
  CKP_CHECK_MSG(!flat.empty(), "round elimination produced the empty problem");

  // Surviving labels: the distinct masks, renamed in ascending mask order
  // (matching the reference's ascending subset enumeration name-for-name).
  used.assign(flat.begin(), flat.end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  CKP_CHECK_MSG(static_cast<int>(used.size()) <= max_labels,
                "round elimination exceeded " << max_labels << " labels");

  BipartiteProblem out;
  out.active_degree = p.passive_degree;  // roles swap
  out.passive_degree = p.active_degree;
  out.label_names.reserve(used.size());
  for (const std::uint64_t mask : used) {
    out.label_names.push_back(subset_name(p, mask));
  }
  // The new id of a mask is its rank in the sorted `used` vector — no map.
  const auto rank = [&used](std::uint64_t mask) {
    return static_cast<int>(
        std::lower_bound(used.begin(), used.end(), mask) - used.begin());
  };

  const std::size_t d = static_cast<std::size_t>(p.passive_degree);
  for (std::size_t i = 0; i < flat.size(); i += d) {
    std::vector<int> renamed;
    renamed.reserve(d);
    for (std::size_t j = 0; j < d; ++j) {
      renamed.push_back(rank(flat[i + j]));
    }
    std::sort(renamed.begin(), renamed.end());
    out.active.insert(std::move(renamed));
  }

  // exists_pass hits come back in ascending key = lexicographic config
  // order, so end-hinted insertion builds the set in linear time.
  exists_pass(active, p.active_degree, used, threads, hits);
  std::array<int, packedcfg::kMaxSlots> cfg_buf{};
  for (const Key key : hits) {
    packedcfg::unpack(key, p.active_degree, cfg_buf.data());
    out.passive.insert(
        out.passive.end(),
        std::vector<int>(cfg_buf.begin(),
                         cfg_buf.begin() + p.active_degree));
  }

  // No out.validate() here: every public entry point validates its input,
  // and the differential tests pin this construction to the reference
  // output configuration-for-configuration.
  return out;
}

// Packs p's passive side and OR's up the label support — the shared setup
// of both test seams below.
std::uint64_t pack_passive_support(const BipartiteProblem& p,
                                   PackedSet& passive) {
  CKP_CHECK_MSG(p.num_labels() <= packedcfg::kMaxLabels &&
                    p.active_degree <= packedcfg::kMaxSlots &&
                    p.passive_degree <= packedcfg::kMaxSlots,
                "roundelim_detail seams need the packed envelope");
  pack_set(p.passive, passive);
  std::uint64_t support = 0;
  for (const Key key : passive.keys) {
    support |= packedcfg::label_mask(key, p.passive_degree);
  }
  return support;
}

}  // namespace

namespace roundelim_detail {

std::size_t forall_pass_tuple_count(const BipartiteProblem& p) {
  thread_local PackedSet passive;
  thread_local std::vector<std::uint64_t> flat;
  const std::uint64_t support = pack_passive_support(p, passive);
  find_maximal_tuples(passive, p.passive_degree, support, /*threads=*/1,
                      flat);
  return flat.size() / static_cast<std::size_t>(p.passive_degree);
}

std::size_t exists_pass_hit_count(const BipartiteProblem& p) {
  thread_local PackedSet passive;
  thread_local PackedSet active;
  thread_local std::vector<std::uint64_t> flat;
  thread_local std::vector<std::uint64_t> used;
  thread_local std::vector<Key> hits;
  const std::uint64_t support = pack_passive_support(p, passive);
  pack_set(p.active, active);
  find_maximal_tuples(passive, p.passive_degree, support, /*threads=*/1,
                      flat);
  used.assign(flat.begin(), flat.end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  exists_pass(active, p.active_degree, used, /*threads=*/1, hits);
  return hits.size();
}

}  // namespace roundelim_detail

BipartiteProblem round_eliminate(const BipartiteProblem& p, int max_labels,
                                 int threads) {
  p.validate();
  if (p.num_labels() > packedcfg::kMaxLabels ||
      p.active_degree > packedcfg::kMaxSlots ||
      p.passive_degree > packedcfg::kMaxSlots) {
    // Outside the packed envelope (64 labels × 8 slots) — take the
    // reference path and its tighter label bound.
    return round_eliminate_reference(p, max_labels);
  }
  if (threads <= 0) threads = default_engine_threads();
  return round_eliminate_packed(p, max_labels, threads);
}

bool problems_identical(const BipartiteProblem& a, const BipartiteProblem& b) {
  return a.active_degree == b.active_degree &&
         a.passive_degree == b.passive_degree &&
         a.label_names == b.label_names && a.active == b.active &&
         a.passive == b.passive;
}

std::string problem_digest(const BipartiteProblem& p) {
  // FNV-1a over an unambiguous canonical encoding: every field is followed
  // by a separator that cannot occur inside it ('\x1f' between atoms,
  // '\x1e' between sections), so distinct problems cannot collide by
  // concatenation.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 0x100000001B3ULL;
  };
  const auto mix_int = [&](long long v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (8 * i)));
    mix_byte(0x1F);
  };
  const auto mix_str = [&](const std::string& s) {
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0x1F);
  };
  const auto mix_side = [&](const std::set<std::vector<int>>& side) {
    mix_int(static_cast<long long>(side.size()));
    for (const std::vector<int>& config : side) {
      for (const int label : config) mix_int(label);
      mix_byte(0x1E);
    }
    mix_byte(0x1E);
  };
  mix_int(p.active_degree);
  mix_int(p.passive_degree);
  mix_int(p.num_labels());
  for (const std::string& name : p.label_names) mix_str(name);
  mix_side(p.active);
  mix_side(p.passive);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

namespace {

// Per-label invariant: for each side, how many configurations contain the
// label with each multiplicity. Any isomorphism maps a label to one with an
// identical signature, so the backtracking search only crosses within
// equal-signature classes.
std::vector<std::vector<int>> label_signatures(const BipartiteProblem& p) {
  const int k = p.num_labels();
  std::vector<std::vector<int>> sig(
      static_cast<std::size_t>(k),
      std::vector<int>(
          static_cast<std::size_t>(p.active_degree + p.passive_degree), 0));
  const auto tally = [&](const std::set<std::vector<int>>& cfgs, int offset) {
    for (const auto& cfg : cfgs) {
      std::size_t i = 0;
      while (i < cfg.size()) {
        std::size_t j = i;
        while (j < cfg.size() && cfg[j] == cfg[i]) ++j;
        const int mult = static_cast<int>(j - i);
        ++sig[static_cast<std::size_t>(cfg[i])]
             [static_cast<std::size_t>(offset + mult - 1)];
        i = j;
      }
    }
  };
  tally(p.active, 0);
  tally(p.passive, p.active_degree);
  return sig;
}

// cooc[l1 * k + l2]: configurations containing both l1 and l2 (l1 != l2).
std::vector<int> cooccurrence(const std::set<std::vector<int>>& cfgs, int k) {
  std::vector<int> cooc(static_cast<std::size_t>(k) * static_cast<std::size_t>(k),
                        0);
  std::vector<int> distinct;
  for (const auto& cfg : cfgs) {
    distinct.assign(cfg.begin(), cfg.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      for (std::size_t j = i + 1; j < distinct.size(); ++j) {
        ++cooc[static_cast<std::size_t>(distinct[i]) *
                   static_cast<std::size_t>(k) +
               static_cast<std::size_t>(distinct[j])];
        ++cooc[static_cast<std::size_t>(distinct[j]) *
                   static_cast<std::size_t>(k) +
               static_cast<std::size_t>(distinct[i])];
      }
    }
  }
  return cooc;
}

}  // namespace

bool problems_isomorphic(const BipartiteProblem& a, const BipartiteProblem& b) {
  if (a.active_degree != b.active_degree ||
      a.passive_degree != b.passive_degree ||
      a.num_labels() != b.num_labels() || a.active.size() != b.active.size() ||
      a.passive.size() != b.passive.size()) {
    return false;
  }
  const int k = a.num_labels();
  const auto sig_a = label_signatures(a);
  const auto sig_b = label_signatures(b);
  {
    auto sorted_a = sig_a;
    auto sorted_b = sig_b;
    std::sort(sorted_a.begin(), sorted_a.end());
    std::sort(sorted_b.begin(), sorted_b.end());
    if (sorted_a != sorted_b) return false;  // class sizes differ — no map
  }
  const auto cooc_act_a = cooccurrence(a.active, k);
  const auto cooc_act_b = cooccurrence(b.active, k);
  const auto cooc_pas_a = cooccurrence(a.passive, k);
  const auto cooc_pas_b = cooccurrence(b.passive, k);

  // Assign a's labels in order, trying only unused b-labels of the same
  // signature, and insisting partial images preserve pairwise co-occurrence
  // counts on both sides. The full configuration-set comparison at the leaf
  // is the authoritative test (pairwise counts alone do not pin down
  // hyperedge structure for degree >= 3).
  std::vector<int> perm(static_cast<std::size_t>(k), -1);
  std::vector<bool> used(static_cast<std::size_t>(k), false);
  const auto apply = [&](const std::set<std::vector<int>>& cfgs) {
    std::set<std::vector<int>> out;
    for (const auto& cfg : cfgs) {
      std::vector<int> mapped;
      mapped.reserve(cfg.size());
      for (const int l : cfg) mapped.push_back(perm[static_cast<std::size_t>(l)]);
      std::sort(mapped.begin(), mapped.end());
      out.insert(std::move(mapped));
    }
    return out;
  };
  const std::function<bool(int)> assign = [&](int l) -> bool {
    if (l == k) {
      return apply(a.active) == b.active && apply(a.passive) == b.passive;
    }
    for (int m = 0; m < k; ++m) {
      if (used[static_cast<std::size_t>(m)]) continue;
      if (sig_a[static_cast<std::size_t>(l)] !=
          sig_b[static_cast<std::size_t>(m)]) {
        continue;
      }
      bool consistent = true;
      for (int l2 = 0; l2 < l; ++l2) {
        const int m2 = perm[static_cast<std::size_t>(l2)];
        const std::size_t ab = static_cast<std::size_t>(l) *
                                   static_cast<std::size_t>(k) +
                               static_cast<std::size_t>(l2);
        const std::size_t bb = static_cast<std::size_t>(m) *
                                   static_cast<std::size_t>(k) +
                               static_cast<std::size_t>(m2);
        if (cooc_act_a[ab] != cooc_act_b[bb] ||
            cooc_pas_a[ab] != cooc_pas_b[bb]) {
          consistent = false;
          break;
        }
      }
      if (!consistent) continue;
      perm[static_cast<std::size_t>(l)] = m;
      used[static_cast<std::size_t>(m)] = true;
      if (assign(l + 1)) return true;
      used[static_cast<std::size_t>(m)] = false;
      perm[static_cast<std::size_t>(l)] = -1;
    }
    return false;
  };
  return assign(0);
}

bool zero_round_solvable(const BipartiteProblem& p) {
  for (const auto& cfg : p.active) {
    std::set<int> support(cfg.begin(), cfg.end());
    const std::vector<int> labels(support.begin(), support.end());
    bool all_passive_ok = true;
    enumerate_multisets(
        static_cast<int>(labels.size()), p.passive_degree,
        [&](const std::vector<int>& idx_cfg) {
          std::vector<int> real;
          real.reserve(idx_cfg.size());
          for (int i : idx_cfg) real.push_back(labels[static_cast<std::size_t>(i)]);
          std::sort(real.begin(), real.end());
          if (!p.passive.contains(real)) all_passive_ok = false;
        });
    if (all_passive_ok) return true;
  }
  return false;
}

BipartiteProblem sinkless_orientation_problem(int delta) {
  CKP_CHECK(delta >= 2);
  BipartiteProblem p;
  p.active_degree = delta;  // vertices
  p.passive_degree = 2;     // edges
  p.label_names = {"O", "I"};
  // Vertex: at least one outgoing half-edge — multisets with >= 1 "O" (0).
  for (int outs = 1; outs <= delta; ++outs) {
    std::vector<int> cfg;
    for (int i = 0; i < outs; ++i) cfg.push_back(0);
    for (int i = outs; i < delta; ++i) cfg.push_back(1);
    std::sort(cfg.begin(), cfg.end());
    p.active.insert(cfg);
  }
  // Edge: exactly one outgoing and one incoming end.
  p.passive.insert({0, 1});
  p.validate();
  return p;
}

BipartiteProblem sinkless_orientation_canonical(int delta) {
  CKP_CHECK(delta >= 2);
  BipartiteProblem p;
  p.active_degree = delta;
  p.passive_degree = 2;
  p.label_names = {"M", "U"};
  // Vertex: exactly one designated outgoing half-edge.
  std::vector<int> cfg(static_cast<std::size_t>(delta), 1);
  cfg[0] = 0;
  std::sort(cfg.begin(), cfg.end());
  p.active.insert(cfg);
  // Edge: at most one designated end.
  p.passive.insert({0, 1});
  p.passive.insert({1, 1});
  p.validate();
  return p;
}

BipartiteProblem free_problem(int active_degree, int passive_degree,
                              int labels) {
  CKP_CHECK(labels >= 1 && labels <= 6);
  BipartiteProblem p;
  p.active_degree = active_degree;
  p.passive_degree = passive_degree;
  for (int l = 0; l < labels; ++l) {
    p.label_names.push_back(std::string(1, static_cast<char>('a' + l)));
  }
  enumerate_multisets(labels, active_degree, [&](const std::vector<int>& cfg) {
    p.active.insert(cfg);
  });
  enumerate_multisets(labels, passive_degree, [&](const std::vector<int>& cfg) {
    p.passive.insert(cfg);
  });
  p.validate();
  return p;
}

}  // namespace ckp
