#include "core/lll.hpp"

#include <algorithm>
#include <unordered_set>

#include "lcl/verify_orientation.hpp"
#include "util/check.hpp"

namespace ckp {

void LllInstance::validate() const {
  CKP_CHECK(num_variables >= 1);
  CKP_CHECK(!scopes.empty());
  CKP_CHECK(static_cast<bool>(violated));
  CKP_CHECK(static_cast<bool>(sample));
  for (const auto& scope : scopes) {
    CKP_CHECK(!scope.empty());
    for (int v : scope) CKP_CHECK(v >= 0 && v < num_variables);
  }
}

LllResult moser_tardos_parallel(const LllInstance& instance, std::uint64_t seed,
                                RoundLedger& ledger, int max_iterations) {
  instance.validate();
  const int events = instance.num_events();
  const int start_rounds = ledger.rounds();

  // var -> events whose scope contains it (for the dependency structure).
  std::vector<std::vector<int>> var_events(
      static_cast<std::size_t>(instance.num_variables));
  for (int e = 0; e < events; ++e) {
    for (int v : instance.scopes[static_cast<std::size_t>(e)]) {
      var_events[static_cast<std::size_t>(v)].push_back(e);
    }
  }

  // Per-variable and per-event private streams.
  std::vector<Rng> var_rng;
  var_rng.reserve(static_cast<std::size_t>(instance.num_variables));
  for (int v = 0; v < instance.num_variables; ++v) {
    var_rng.push_back(node_rng(seed, static_cast<std::uint64_t>(v), 0x77A));
  }
  std::vector<Rng> event_rng;
  event_rng.reserve(static_cast<std::size_t>(events));
  for (int e = 0; e < events; ++e) {
    event_rng.push_back(node_rng(seed, static_cast<std::uint64_t>(e), 0x77B));
  }

  LllResult out;
  out.assignment.resize(static_cast<std::size_t>(instance.num_variables));
  for (int v = 0; v < instance.num_variables; ++v) {
    out.assignment[static_cast<std::size_t>(v)] =
        instance.sample(v, var_rng[static_cast<std::size_t>(v)]);
  }

  std::vector<std::uint64_t> priority(static_cast<std::size_t>(events));
  std::vector<char> is_violated(static_cast<std::size_t>(events));
  int it = 0;
  for (; it < max_iterations; ++it) {
    bool any = false;
    for (int e = 0; e < events; ++e) {
      is_violated[static_cast<std::size_t>(e)] =
          instance.violated(e, out.assignment);
      any |= static_cast<bool>(is_violated[static_cast<std::size_t>(e)]);
    }
    if (!any) break;
    // Independent selection by random priorities: a violated event is
    // selected iff its priority beats every violated event sharing a
    // variable with it (strict; ties lose on both sides).
    for (int e = 0; e < events; ++e) {
      if (is_violated[static_cast<std::size_t>(e)]) {
        priority[static_cast<std::size_t>(e)] =
            event_rng[static_cast<std::size_t>(e)]();
      }
    }
    std::vector<int> selected;
    for (int e = 0; e < events; ++e) {
      if (!is_violated[static_cast<std::size_t>(e)]) continue;
      bool local_min = true;
      for (int v : instance.scopes[static_cast<std::size_t>(e)]) {
        for (int other : var_events[static_cast<std::size_t>(v)]) {
          if (other != e && is_violated[static_cast<std::size_t>(other)] &&
              priority[static_cast<std::size_t>(other)] <=
                  priority[static_cast<std::size_t>(e)]) {
            local_min = false;
            break;
          }
        }
        if (!local_min) break;
      }
      if (local_min) selected.push_back(e);
    }
    // Degenerate tie round (vanishing probability): retry priorities.
    if (selected.empty()) {
      ledger.charge(2);
      continue;
    }
    // Resample the selected events' variables (disjoint scopes by
    // independence of the selection).
    std::unordered_set<int> touched;
    for (int e : selected) {
      ++out.resampled_events;
      for (int v : instance.scopes[static_cast<std::size_t>(e)]) {
        CKP_CHECK_MSG(touched.insert(v).second,
                      "selected events share variable " << v);
        out.assignment[static_cast<std::size_t>(v)] =
            instance.sample(v, var_rng[static_cast<std::size_t>(v)]);
      }
    }
    ledger.charge(2);  // violation/priority exchange + resample exchange
  }
  out.iterations = it;
  out.completed = (it < max_iterations);
  out.rounds = ledger.rounds() - start_rounds;
  return out;
}

LllInstance sinkless_orientation_lll(const Graph& g) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    CKP_CHECK_MSG(g.degree(v) >= 2, "sinkless LLL needs min degree >= 2");
  }
  LllInstance inst;
  inst.num_variables = g.num_edges();
  inst.scopes.resize(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto edges = g.incident_edges(v);
    inst.scopes[static_cast<std::size_t>(v)].assign(edges.begin(), edges.end());
  }
  // Capture g by pointer-like reference semantics: the instance must not
  // outlive the graph, which all call sites here respect.
  const Graph* graph = &g;
  inst.violated = [graph](int event, const std::vector<int>& assignment) {
    const auto v = static_cast<NodeId>(event);
    for (EdgeId e : graph->incident_edges(v)) {
      const auto [a, b] = graph->endpoints(e);
      const bool points_out = (v == a) == (assignment[static_cast<std::size_t>(e)] == 1);
      if (points_out) return false;
    }
    return true;  // all incident edges point in: v is a sink
  };
  inst.sample = [](int, Rng& rng) { return rng.next_bit() ? 1 : 0; };
  return inst;
}

Hypergraph make_random_hypergraph(int variables, int edges, int k, Rng& rng) {
  CKP_CHECK(variables >= k && k >= 2);
  Hypergraph h;
  h.variables = variables;
  h.edges.reserve(static_cast<std::size_t>(edges));
  for (int e = 0; e < edges; ++e) {
    std::unordered_set<int> members;
    while (static_cast<int>(members.size()) < k) {
      members.insert(static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(variables))));
    }
    h.edges.emplace_back(members.begin(), members.end());
    std::sort(h.edges.back().begin(), h.edges.back().end());
  }
  return h;
}

LllInstance hypergraph_two_coloring_lll(const Hypergraph& h) {
  LllInstance inst;
  inst.num_variables = h.variables;
  inst.scopes = h.edges;
  const auto edges = h.edges;  // by value: the instance owns its structure
  inst.violated = [edges](int event, const std::vector<int>& assignment) {
    const auto& edge = edges[static_cast<std::size_t>(event)];
    const int first = assignment[static_cast<std::size_t>(edge.front())];
    for (int v : edge) {
      if (assignment[static_cast<std::size_t>(v)] != first) return false;
    }
    return true;  // monochromatic
  };
  inst.sample = [](int, Rng& rng) { return rng.next_bit() ? 1 : 0; };
  return inst;
}

}  // namespace ckp
