#include "core/derand.hpp"

#include <algorithm>

#include "lcl/verify_mis.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace ckp {
namespace {

// All injective ID assignments [0,n) -> [0,S), as flat vectors.
std::vector<std::vector<int>> enumerate_id_assignments(NodeId n, int space) {
  CKP_CHECK(space >= n);
  std::vector<std::vector<int>> out;
  std::vector<int> current;
  std::vector<char> used(static_cast<std::size_t>(space), 0);
  // Depth-first enumeration.
  std::vector<int> stack{0};
  current.reserve(static_cast<std::size_t>(n));
  while (!stack.empty()) {
    int& candidate = stack.back();
    if (static_cast<NodeId>(current.size()) == n) {
      out.push_back(current);
      stack.pop_back();
      if (!current.empty()) {
        used[static_cast<std::size_t>(current.back())] = 0;
        current.pop_back();
        if (!stack.empty()) ++stack.back();
      }
      continue;
    }
    while (candidate < space && used[static_cast<std::size_t>(candidate)]) {
      ++candidate;
    }
    if (candidate >= space) {
      stack.pop_back();
      if (!current.empty()) {
        used[static_cast<std::size_t>(current.back())] = 0;
        current.pop_back();
        if (!stack.empty()) ++stack.back();
      }
      continue;
    }
    used[static_cast<std::size_t>(candidate)] = 1;
    current.push_back(candidate);
    stack.push_back(0);
  }
  return out;
}

// φ encoded as base-2^r digits of an integer: φ(id) = digit id.
std::uint32_t phi_of(std::uint64_t phi_index, int id, int rank_bits) {
  const std::uint64_t base = 1ULL << rank_bits;
  std::uint64_t x = phi_index;
  for (int i = 0; i < id; ++i) x /= base;
  return static_cast<std::uint32_t>(x % base);
}

}  // namespace

std::vector<Graph> enumerate_graphs(NodeId n, int delta) {
  CKP_CHECK(n >= 1 && n <= 6);
  std::vector<std::pair<NodeId, NodeId>> all_pairs;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) all_pairs.emplace_back(u, v);
  }
  const std::size_t pairs = all_pairs.size();
  std::vector<Graph> out;
  for (std::uint64_t mask = 0; mask < (1ULL << pairs); ++mask) {
    std::vector<int> deg(static_cast<std::size_t>(n), 0);
    std::vector<std::pair<NodeId, NodeId>> edges;
    bool ok = true;
    for (std::size_t i = 0; i < pairs && ok; ++i) {
      if (mask & (1ULL << i)) {
        edges.push_back(all_pairs[i]);
        if (++deg[static_cast<std::size_t>(all_pairs[i].first)] > delta ||
            ++deg[static_cast<std::size_t>(all_pairs[i].second)] > delta) {
          ok = false;
        }
      }
    }
    if (ok) out.push_back(Graph::from_edges(n, edges));
  }
  return out;
}

bool run_rank_greedy_mis(const Graph& g, const std::vector<std::uint32_t>& ranks,
                         int rounds, std::vector<char>& in_set) {
  const NodeId n = g.num_nodes();
  CKP_CHECK(ranks.size() == static_cast<std::size_t>(n));
  enum : char { kUndecided = 0, kIn = 1, kOut = 2 };
  std::vector<char> status(static_cast<std::size_t>(n), kUndecided);
  for (int r = 0; r < rounds; ++r) {
    bool any_undecided = false;
    std::vector<char> joins(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (status[static_cast<std::size_t>(v)] != kUndecided) continue;
      any_undecided = true;
      bool is_min = true;
      for (NodeId u : g.neighbors(v)) {
        if (status[static_cast<std::size_t>(u)] == kUndecided &&
            ranks[static_cast<std::size_t>(u)] <=
                ranks[static_cast<std::size_t>(v)]) {
          is_min = false;  // ties block both — the failure mode
          break;
        }
      }
      joins[static_cast<std::size_t>(v)] = is_min;
    }
    if (!any_undecided) break;
    for (NodeId v = 0; v < n; ++v) {
      if (joins[static_cast<std::size_t>(v)]) {
        status[static_cast<std::size_t>(v)] = kIn;
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (status[static_cast<std::size_t>(v)] != kUndecided) continue;
      for (NodeId u : g.neighbors(v)) {
        if (status[static_cast<std::size_t>(u)] == kIn) {
          status[static_cast<std::size_t>(v)] = kOut;
          break;
        }
      }
    }
  }
  in_set.assign(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (status[static_cast<std::size_t>(v)] == kUndecided) return false;
    in_set[static_cast<std::size_t>(v)] = status[static_cast<std::size_t>(v)] == kIn;
  }
  return verify_mis(g, in_set).ok;
}

DerandResult derandomize_mis(const DerandSetup& setup, int phi_samples,
                             std::uint64_t seed) {
  CKP_CHECK(setup.n >= 1 && setup.n <= 5);
  CKP_CHECK(setup.id_space >= setup.n && setup.id_space <= 10);
  CKP_CHECK(setup.rank_bits >= 1 && setup.rank_bits <= 8);
  const int rounds = setup.rounds > 0 ? setup.rounds : setup.n;

  DerandResult out;
  const auto graphs = enumerate_graphs(setup.n, setup.delta);
  const auto assignments = enumerate_id_assignments(setup.n, setup.id_space);
  out.graphs = graphs.size();
  out.id_assignments = assignments.size();
  out.instances = out.graphs * out.id_assignments;
  out.log2_thm3_bound =
      static_cast<double>(setup.n) * static_cast<double>(setup.n);
  out.phi_space = ipow_sat(1ULL << setup.rank_bits,
                           static_cast<unsigned>(setup.id_space));
  CKP_CHECK_MSG(out.phi_space != UINT64_MAX, "φ space too large to index");

  auto phi_is_good = [&](std::uint64_t phi_index) {
    std::vector<std::uint32_t> ranks(static_cast<std::size_t>(setup.n));
    std::vector<char> in_set;
    for (const auto& g : graphs) {
      for (const auto& ids : assignments) {
        for (NodeId v = 0; v < setup.n; ++v) {
          ranks[static_cast<std::size_t>(v)] =
              phi_of(phi_index, ids[static_cast<std::size_t>(v)],
                     setup.rank_bits);
        }
        if (!run_rank_greedy_mis(g, ranks, rounds, in_set)) return false;
      }
    }
    return true;
  };

  // Lexicographic scan for φ* (the proof's canonical choice).
  for (std::uint64_t phi = 0; phi < out.phi_space; ++phi) {
    ++out.phis_scanned;
    if (phi_is_good(phi)) {
      out.found = true;
      out.first_good_phi = phi;
      break;
    }
  }

  // Density estimate over a random sample.
  if (phi_samples > 0) {
    Rng rng(mix_seed(seed, 0xde7a));
    int good = 0;
    for (int s = 0; s < phi_samples; ++s) {
      if (phi_is_good(rng.next_below(out.phi_space))) ++good;
    }
    out.sampled_good_fraction =
        static_cast<double>(good) / static_cast<double>(phi_samples);
  }
  return out;
}

}  // namespace ckp
