// Theorem 3, executed: Det_P(n, Δ) <= Rand_P(2^{n²}, Δ).
//
// The proof is non-constructive only because of scale: fix the randomized
// algorithm's coin flips to φ(ID(v)) for a function φ from the ID space to
// bit strings; a union bound over the instance class G_{n,Δ} shows a "good"
// φ (one for which the now-deterministic algorithm succeeds on EVERY
// instance) exists, and A_Det picks the lexicographically first one by local
// simulation. At micro scale the whole construction is executable:
//
//   * the instance class — every labeled graph on n nodes with max degree
//     <= Δ, under every injective ID assignment from a space of S IDs — is
//     enumerated explicitly;
//   * the randomized algorithm is rank-greedy MIS: each node holds an
//     r-bit random rank; undecided strict local minima join, neighbors
//     retire; rank ties can deadlock, which is exactly the failure mode the
//     derandomization must (and does) eliminate;
//   * φ ranges over all (2^r)^S functions; the first good φ is found by
//     lexicographic scan (the union bound predicts most φ are good, so the
//     scan is short), and a random sample estimates the good fraction.
//
// bench_derand tabulates class sizes, the 2^{n²} bound of the theorem, the
// scan length and the good-φ density.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ckp {

struct DerandSetup {
  NodeId n = 4;       // instance size
  int delta = 3;      // degree bound of the class
  int id_space = 6;   // S: IDs are [0, S), assigned injectively
  int rank_bits = 3;  // r: random bits per node
  int rounds = 0;     // simulation budget; 0 means n (always enough)
};

struct DerandResult {
  std::uint64_t graphs = 0;          // |graphs on n nodes with Δ <= delta|
  std::uint64_t id_assignments = 0;  // S·(S-1)···(S-n+1)
  std::uint64_t instances = 0;       // product
  double log2_thm3_bound = 0.0;      // n² (the paper's coarse class bound)
  std::uint64_t phi_space = 0;       // (2^r)^S
  bool found = false;
  std::uint64_t first_good_phi = 0;  // lexicographic index
  std::uint64_t phis_scanned = 0;
  double sampled_good_fraction = 0.0;
};

// Enumerates all labeled graphs on n nodes with maximum degree <= delta.
std::vector<Graph> enumerate_graphs(NodeId n, int delta);

// Runs the rank-greedy MIS under ranks[v]; returns true and fills `in_set`
// iff it terminates with a valid MIS within `rounds` rounds.
bool run_rank_greedy_mis(const Graph& g, const std::vector<std::uint32_t>& ranks,
                         int rounds, std::vector<char>& in_set);

// The full derandomization experiment. `phi_samples` random φ are tested to
// estimate the good fraction; the lexicographic scan runs until the first
// good φ (or the φ space is exhausted).
DerandResult derandomize_mis(const DerandSetup& setup, int phi_samples,
                             std::uint64_t seed);

}  // namespace ckp
