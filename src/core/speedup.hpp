// The black-box speedup transformation (Theorems 6 and 8).
//
// Given a DetLOCAL algorithm A for an LCL P whose running time, as a
// function of the ID length ℓ, is T(Δ, ℓ) <= f(Δ) + ε·ℓ/log Δ, algorithm A'
// (1) shortens IDs: runs Theorem 2 on the power graph G^h (h = the horizon
//     4f(Δ)+2τ+2r of Theorem 6, or 2τ+2r of Theorem 8), producing IDs of
//     ℓ' = O(h·log Δ) bits that are distinct inside every radius-h/2 ball;
// (2) runs A pretending the graph has 2^ℓ' vertices with the short IDs.
// Because A with the fake parameters finishes within h/2 <= its view never
// contains two equal IDs, and the hereditary property makes the ball a legal
// instance, the output is correct — in O((1+f(Δ))(log* n − log* Δ + 1))
// rounds total.
//
// The paper uses the theorem in the contrapositive: if A *cannot* be run
// within the budget the theorem allots (Δ-coloring's Ω(log_Δ n) bound, for
// instance), then no algorithm of the assumed form exists. The transform
// here makes that check executable: it reports whether the inner run stayed
// within budget. bench_speedup shows a valid premise (O(Δ²)+O(log* ℓ) MIS)
// staying flat in n, and an invalid premise (Θ(log_Δ n) tree Δ-coloring)
// blowing the budget — the empirical face of "Result 2".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

// The algorithm being transformed: labels = A(graph, ids, declared_n, Δ).
// It must treat `ids` as opaque comparable identifiers (the transform hands
// it identifiers that are only locally unique) and must honour declared_n as
// its size estimate. It charges its own rounds on the given ledger.
using InnerAlgorithm = std::function<std::vector<int>(
    const Graph&, const std::vector<std::uint64_t>& ids,
    std::uint64_t declared_n, int delta, RoundLedger&)>;

struct SpeedupResult {
  std::vector<int> labels;
  int total_rounds = 0;
  int shortening_rounds = 0;  // power-graph Theorem 2, in G-rounds
  int inner_rounds = 0;       // the transformed A run
  int short_id_bits = 0;      // ℓ'
  std::uint64_t declared_n = 0;
  int budget = 0;             // allowed inner rounds; <= 0 disables the check
  bool within_budget = true;
};

// Horizon of Theorem 6: 4f(Δ) + 2τ + 2r with τ = 1 + ceil(log2 β(Δ)) where
// β(Δ)·Δ² is this implementation's Theorem 2 fixed-point palette.
int thm6_horizon(int f_delta, int r, int delta);

// Horizon of Theorem 8: 2τ + 2r with τ = ceil(eps·log2^k Δ).
int thm8_horizon(double eps, int k, int delta, int r);

// Runs the transform. `delta` >= Δ(G); `horizon` = h; `budget` = the round
// budget the premise allows the inner run (pass <= 0 to skip the check —
// the labels are still produced and verifiable).
SpeedupResult speedup_transform(const Graph& g,
                                const std::vector<std::uint64_t>& ids,
                                int delta, int horizon, int budget,
                                const InnerAlgorithm& inner,
                                RoundLedger& ledger);

}  // namespace ckp
