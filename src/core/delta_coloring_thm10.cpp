#include "core/delta_coloring_thm10.hpp"

#include <algorithm>
#include <cmath>

#include "algo/be_tree_coloring.hpp"
#include "graph/components.hpp"
#include "graph/subgraph.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/timer.hpp"

namespace ckp {
namespace {

// The c_i schedule: c_1 = 1, c_2 = α/(α-1), then the paper's recurrence
// with the configured constants, capped at Δ^cap_exponent. The returned
// vector has c[i] for iterations i = 1..t at indices 0..t-1.
std::vector<double> c_schedule(int delta, const Thm10Params& p) {
  const double cap = std::max(2.0, std::pow(static_cast<double>(delta),
                                            p.cap_exponent));
  std::vector<double> c;
  c.push_back(1.0);
  c.push_back(p.alpha / (p.alpha - 1.0));
  while (c.back() < cap &&
         static_cast<int>(c.size()) < p.max_iterations) {
    const double prev = c.back();
    c.push_back(std::min(cap, prev * std::exp(prev / p.growth_divisor)));
  }
  return c;
}

}  // namespace

Thm10Result delta_coloring_thm10(const Graph& g, int delta, std::uint64_t seed,
                                 RoundLedger& ledger,
                                 const Thm10Params& params) {
  const NodeId n = g.num_nodes();
  CKP_CHECK_MSG(delta >= 16, "Theorem 10 implementation needs Δ >= 16");
  CKP_CHECK_MSG(delta >= g.max_degree(), "delta below the true max degree");
  const int start_rounds = ledger.rounds();

  const int reserve = static_cast<int>(isqrt(static_cast<std::uint64_t>(delta)));
  const int phase1_palette = delta - reserve;  // colors [0, phase1_palette)
  CKP_CHECK(reserve >= 3 && phase1_palette >= 1);

  Thm10Result out;
  out.colors.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return out;

  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    rngs.push_back(node_rng(seed, static_cast<std::uint64_t>(v), 0x10));
  }

  // Per-vertex palette Ψ as membership flags + count.
  std::vector<std::vector<char>> psi(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(phase1_palette), 1));
  std::vector<int> psi_count(static_cast<std::size_t>(n), phase1_palette);

  enum : char { kActive = 0, kColored = 1, kBad = 2 };
  std::vector<char> status(static_cast<std::size_t>(n), kActive);

  const auto c = c_schedule(delta, params);
  const int t = static_cast<int>(c.size());
  out.phase1_iterations = t;

  // ---- Phase 1: ColorBidding(i) + Filtering(i), i = 1..t. ----
  const int phase1_start = ledger.rounds();
  Timer phase1_timer;
  std::vector<std::vector<int>> sampled(static_cast<std::size_t>(n));
  std::vector<std::vector<char>> sample_flags(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(phase1_palette), 0));
  for (int i = 1; i <= t; ++i) {
    const double ci = c[static_cast<std::size_t>(i - 1)];

    // ColorBidding step 1: sample S_v.
    for (NodeId v = 0; v < n; ++v) {
      auto& s = sampled[static_cast<std::size_t>(v)];
      for (int col : s) {
        sample_flags[static_cast<std::size_t>(v)][static_cast<std::size_t>(col)] = 0;
      }
      s.clear();
      if (status[static_cast<std::size_t>(v)] != kActive) continue;
      auto& rng = rngs[static_cast<std::size_t>(v)];
      const auto& avail = psi[static_cast<std::size_t>(v)];
      if (i == 1) {
        // One uniform color from Ψ_1(v) (the full palette).
        s.push_back(static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(phase1_palette))));
      } else {
        const double rate =
            std::min(1.0, ci / std::max(1, psi_count[static_cast<std::size_t>(v)]));
        for (int col = 0; col < phase1_palette; ++col) {
          if (avail[static_cast<std::size_t>(col)] && rng.next_bernoulli(rate)) {
            s.push_back(col);
          }
        }
      }
      for (int col : s) {
        sample_flags[static_cast<std::size_t>(v)][static_cast<std::size_t>(col)] = 1;
      }
    }

    // ColorBidding step 2: succeed on any sampled color no active neighbor
    // sampled. Simultaneous successes cannot conflict: a taken color is
    // outside every neighbor's sample set.
    std::vector<NodeId> newly_colored;
    for (NodeId v = 0; v < n; ++v) {
      if (status[static_cast<std::size_t>(v)] != kActive) continue;
      for (int col : sampled[static_cast<std::size_t>(v)]) {
        if (!psi[static_cast<std::size_t>(v)][static_cast<std::size_t>(col)]) {
          continue;  // stale sample (color just removed) — skip defensively
        }
        bool contested = false;
        for (NodeId u : g.neighbors(v)) {
          if (status[static_cast<std::size_t>(u)] == kActive &&
              sample_flags[static_cast<std::size_t>(u)][static_cast<std::size_t>(col)]) {
            contested = true;
            break;
          }
        }
        if (!contested) {
          out.colors[static_cast<std::size_t>(v)] = col;
          newly_colored.push_back(v);
          break;
        }
      }
    }
    for (NodeId v : newly_colored) status[static_cast<std::size_t>(v)] = kColored;

    // ColorBidding step 3: Ψ update.
    for (NodeId v : newly_colored) {
      const int col = out.colors[static_cast<std::size_t>(v)];
      for (NodeId u : g.neighbors(v)) {
        if (status[static_cast<std::size_t>(u)] != kActive) continue;
        auto& flag = psi[static_cast<std::size_t>(u)][static_cast<std::size_t>(col)];
        if (flag) {
          flag = 0;
          --psi_count[static_cast<std::size_t>(u)];
        }
      }
    }

    // Filtering(i).
    std::vector<NodeId> newly_bad;
    const double degree_bound =
        (i + 1 <= t) ? static_cast<double>(delta) / c[static_cast<std::size_t>(i)]
                     : 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (status[static_cast<std::size_t>(v)] != kActive) continue;
      if (i == t) {
        newly_bad.push_back(v);
        continue;
      }
      int active_neighbors = 0;  // N'_{i+1}(v)
      for (NodeId u : g.neighbors(v)) {
        if (status[static_cast<std::size_t>(u)] == kActive) ++active_neighbors;
      }
      if (i == 1) {
        if (psi_count[static_cast<std::size_t>(v)] - active_neighbors <
            static_cast<double>(delta) / params.alpha) {
          newly_bad.push_back(v);
        }
      } else {
        if (active_neighbors > degree_bound) newly_bad.push_back(v);
      }
    }
    for (NodeId v : newly_bad) status[static_cast<std::size_t>(v)] = kBad;
    ledger.charge(2);  // bid exchange + color/filter exchange
  }
  out.trace.record("phase1(ColorBidding)", ledger.rounds() - phase1_start, t,
                   phase1_timer.seconds());

  // ---- Phase 2: Theorem 9 with q = ⌊√Δ⌋ on the bad vertices. ----
  const int phase2_start = ledger.rounds();
  Timer phase2_timer;
  std::vector<char> bad(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    CKP_CHECK(status[static_cast<std::size_t>(v)] != kActive);
    if (status[static_cast<std::size_t>(v)] == kBad) {
      bad[static_cast<std::size_t>(v)] = 1;
      ++out.bad_vertices;
    }
  }
  out.largest_bad_component = components_of_subset(g, bad).largest();
  if (out.bad_vertices > 0) {
    const auto sub = induced_subgraph(g, bad);
    // RandLOCAL: locally generated random IDs, unique w.h.p.
    std::vector<std::uint64_t> sub_ids(sub.to_original.size());
    for (std::uint64_t epoch = 1;; ++epoch) {
      for (std::size_t idx = 0; idx < sub.to_original.size(); ++idx) {
        sub_ids[idx] = node_rng(
            seed, static_cast<std::uint64_t>(sub.to_original[idx]), epoch)();
      }
      if (ids_unique(sub_ids)) break;
    }
    RoundLedger sub_ledger;
    const auto bad_coloring =
        be_tree_coloring(sub.graph, reserve, sub_ids, sub_ledger);
    ledger.charge(sub_ledger.rounds());
    for (std::size_t idx = 0; idx < sub.to_original.size(); ++idx) {
      out.colors[static_cast<std::size_t>(sub.to_original[idx])] =
          phase1_palette + bad_coloring.colors[idx];
    }
  }
  out.trace.record("phase2(Thm9 on bad)", ledger.rounds() - phase2_start,
                   out.largest_bad_component, phase2_timer.seconds());

  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(verify_coloring(g, out.colors, delta).ok);
  return out;
}

}  // namespace ckp
