#include "core/dichotomy.hpp"

#include <queue>

#include "algo/color_reduction.hpp"
#include "algo/linial.hpp"
#include "graph/components.hpp"
#include "lcl/verify_coloring.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ckp {

bool is_cycle(const Graph& g) {
  if (g.num_nodes() < 3) return false;
  if (!g.is_regular(2)) return false;
  return connected_components(g).count == 1;
}

CycleColoringResult two_color_cycle(const Graph& g,
                                    const std::vector<std::uint64_t>& ids,
                                    RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  CKP_CHECK_MSG(is_cycle(g), "two_color_cycle requires a single cycle");
  CKP_CHECK_MSG(n % 2 == 0, "odd cycles are not 2-colorable");
  CKP_CHECK(ids.size() == static_cast<std::size_t>(n));
  const int start_rounds = ledger.rounds();

  // Anchor: the minimum-ID vertex. Certifying "my ID is the minimum" (or
  // learning who the minimum is) requires seeing every vertex: radius
  // ceil(n/2) on a cycle. The simulation computes the answer centrally and
  // charges exactly that radius.
  NodeId anchor = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (ids[static_cast<std::size_t>(v)] < ids[static_cast<std::size_t>(anchor)]) {
      anchor = v;
    }
  }
  CycleColoringResult out;
  out.colors.assign(static_cast<std::size_t>(n), -1);
  std::queue<NodeId> q;
  out.colors[static_cast<std::size_t>(anchor)] = 0;
  q.push(anchor);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (NodeId u : g.neighbors(v)) {
      if (out.colors[static_cast<std::size_t>(u)] == -1) {
        out.colors[static_cast<std::size_t>(u)] =
            1 - out.colors[static_cast<std::size_t>(v)];
        q.push(u);
      }
    }
  }
  ledger.charge(static_cast<int>(ceil_div(static_cast<std::uint64_t>(n), 2)));
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(verify_coloring(g, out.colors, 2).ok);
  return out;
}

CycleColoringResult three_color_cycle(const Graph& g,
                                      const std::vector<std::uint64_t>& ids,
                                      RoundLedger& ledger) {
  CKP_CHECK_MSG(is_cycle(g), "three_color_cycle requires a single cycle");
  const int start_rounds = ledger.rounds();
  CycleColoringResult out;
  auto coloring = linial_coloring(g, ids, 2, ledger);
  if (coloring.palette > 3) {
    reduce_palette_fast(g, coloring.colors, coloring.palette, 3, ledger);
  }
  out.colors = std::move(coloring.colors);
  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(verify_coloring(g, out.colors, 3).ok);
  return out;
}

}  // namespace ckp
