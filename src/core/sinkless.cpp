#include "core/sinkless.hpp"

#include <algorithm>
#include <queue>

#include "graph/components.hpp"
#include "util/check.hpp"

namespace ckp {
namespace {

void check_min_degree_two(const Graph& g) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    CKP_CHECK_MSG(g.degree(v) >= 2,
                  "sinkless orientation needs min degree >= 2; node "
                      << v << " has degree " << g.degree(v));
  }
}

// Orients edge e out of v.
void orient_out_of(const Graph& g, Orientation& orient, EdgeId e, NodeId v) {
  const auto [a, b] = g.endpoints(e);
  orient[static_cast<std::size_t>(e)] = (v == a) ? +1 : -1;
}

}  // namespace

SinklessResult sinkless_orientation_randomized(const Graph& g,
                                               std::uint64_t seed,
                                               RoundLedger& ledger,
                                               int max_repair_rounds) {
  check_min_degree_two(g);
  const NodeId n = g.num_nodes();
  const EdgeId m = g.num_edges();
  SinklessResult out;
  out.orient.assign(static_cast<std::size_t>(m), 0);

  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    rngs.push_back(node_rng(seed, static_cast<std::uint64_t>(v), 0x51));
  }

  // Round 1: claims. Each vertex claims one uniform incident edge; ties on
  // an edge are broken toward the endpoint with the larger private draw
  // (equal draws fall back to the smaller endpoint — measure-zero).
  std::vector<EdgeId> claim(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> draw(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const auto edges = g.incident_edges(v);
    claim[static_cast<std::size_t>(v)] =
        edges[rngs[static_cast<std::size_t>(v)].next_below(edges.size())];
    draw[static_cast<std::size_t>(v)] = rngs[static_cast<std::size_t>(v)]();
  }
  for (EdgeId e = 0; e < m; ++e) {
    const auto [a, b] = g.endpoints(e);
    const bool a_claims = claim[static_cast<std::size_t>(a)] == e;
    const bool b_claims = claim[static_cast<std::size_t>(b)] == e;
    if (a_claims && b_claims) {
      const bool a_wins = draw[static_cast<std::size_t>(a)] >
                          draw[static_cast<std::size_t>(b)];
      orient_out_of(g, out.orient, e, a_wins ? a : b);
    } else if (a_claims) {
      orient_out_of(g, out.orient, e, a);
    } else if (b_claims) {
      orient_out_of(g, out.orient, e, b);
    } else {
      out.orient[static_cast<std::size_t>(e)] = +1;  // unclaimed: default
    }
  }
  ledger.charge(2);  // claim exchange + conflict resolution
  out.sinks_after_claims =
      static_cast<NodeId>(find_sinks(g, out.orient).size());

  // Repair: sinks steal an incoming edge, preferring donors that stay
  // sink-free; each donor grants at most out_degree-1 steals per round.
  std::vector<int> outdeg(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) outdeg[static_cast<std::size_t>(v)] = out_degree(g, out.orient, v);
  std::vector<NodeId> sinks;
  for (NodeId v = 0; v < n; ++v) {
    if (outdeg[static_cast<std::size_t>(v)] == 0) sinks.push_back(v);
  }
  int repair = 0;
  for (; !sinks.empty() && repair < max_repair_rounds; ++repair) {
    std::vector<int> grants_left(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      grants_left[static_cast<std::size_t>(v)] =
          std::max(0, outdeg[static_cast<std::size_t>(v)] - 1);
    }
    std::vector<NodeId> next_sinks;
    for (NodeId v : sinks) {
      if (outdeg[static_cast<std::size_t>(v)] > 0) continue;  // already fixed
      // Prefer a rich donor (keeps everyone sink-free).
      EdgeId steal = kInvalidEdge;
      NodeId donor = kInvalidNode;
      const auto edges = g.incident_edges(v);
      for (EdgeId e : edges) {
        const NodeId u = g.other_endpoint(e, v);
        if (grants_left[static_cast<std::size_t>(u)] > 0) {
          steal = e;
          donor = u;
          break;
        }
      }
      if (steal == kInvalidEdge) {
        // Displacement: steal from a random in-neighbor; it becomes the sink.
        const EdgeId e = edges[rngs[static_cast<std::size_t>(v)].next_below(
            edges.size())];
        steal = e;
        donor = g.other_endpoint(e, v);
      } else {
        --grants_left[static_cast<std::size_t>(donor)];
      }
      orient_out_of(g, out.orient, steal, v);
      ++outdeg[static_cast<std::size_t>(v)];
      // Donor loses this edge only if it previously pointed donor->v.
      // Recompute its out-degree exactly.
      outdeg[static_cast<std::size_t>(donor)] =
          out_degree(g, out.orient, donor);
      if (outdeg[static_cast<std::size_t>(donor)] == 0) {
        next_sinks.push_back(donor);
      }
    }
    for (NodeId v : sinks) {
      if (outdeg[static_cast<std::size_t>(v)] == 0) next_sinks.push_back(v);
    }
    sinks = std::move(next_sinks);
    ledger.charge(2);  // steal requests + grants
  }
  out.repair_rounds = repair * 2;
  out.rounds = 2 + out.repair_rounds;
  out.completed = sinks.empty();
  CKP_DCHECK(!out.completed || verify_sinkless_orientation(g, out.orient).ok);
  return out;
}

SinklessResult sinkless_orientation_deterministic(
    const Graph& g, const std::vector<std::uint64_t>& ids,
    RoundLedger& ledger) {
  check_min_degree_two(g);
  const NodeId n = g.num_nodes();
  const EdgeId m = g.num_edges();
  CKP_CHECK(ids.size() == static_cast<std::size_t>(n));
  SinklessResult out;
  out.orient.assign(static_cast<std::size_t>(m), 0);
  if (n == 0) {
    ledger.charge(0);
    return out;
  }

  const auto comps = connected_components(g);
  // Leader (min ID) per component.
  std::vector<NodeId> leader(static_cast<std::size_t>(comps.count),
                             kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    auto& l = leader[static_cast<std::size_t>(
        comps.label[static_cast<std::size_t>(v)])];
    if (l == kInvalidNode ||
        ids[static_cast<std::size_t>(v)] < ids[static_cast<std::size_t>(l)]) {
      l = v;
    }
  }

  // BFS from all leaders at once (components are independent); parent =
  // minimum-ID neighbor one level closer to the leader.
  std::vector<int> dist(static_cast<std::size_t>(n), -1);
  {
    std::queue<NodeId> q;
    for (NodeId l : leader) {
      dist[static_cast<std::size_t>(l)] = 0;
      q.push(l);
    }
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (NodeId u : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(u)] < 0) {
          dist[static_cast<std::size_t>(u)] =
              dist[static_cast<std::size_t>(v)] + 1;
          q.push(u);
        }
      }
    }
  }
  std::vector<NodeId> parent(static_cast<std::size_t>(n), kInvalidNode);
  std::vector<EdgeId> parent_edge(static_cast<std::size_t>(n), kInvalidEdge);
  for (NodeId v = 0; v < n; ++v) {
    if (dist[static_cast<std::size_t>(v)] == 0) continue;
    const auto nbrs = g.neighbors(v);
    const auto edges = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId u = nbrs[i];
      if (dist[static_cast<std::size_t>(u)] !=
          dist[static_cast<std::size_t>(v)] - 1) {
        continue;
      }
      if (parent[static_cast<std::size_t>(v)] == kInvalidNode ||
          ids[static_cast<std::size_t>(u)] <
              ids[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])]) {
        parent[static_cast<std::size_t>(v)] = u;
        parent_edge[static_cast<std::size_t>(v)] = edges[i];
      }
    }
  }

  // Default orientations: tree edges child -> parent; non-tree edges from
  // the smaller-ID endpoint.
  std::vector<char> is_tree_edge(static_cast<std::size_t>(m), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (parent_edge[static_cast<std::size_t>(v)] != kInvalidEdge) {
      is_tree_edge[static_cast<std::size_t>(
          parent_edge[static_cast<std::size_t>(v)])] = 1;
      orient_out_of(g, out.orient, parent_edge[static_cast<std::size_t>(v)], v);
    }
  }
  for (EdgeId e = 0; e < m; ++e) {
    if (is_tree_edge[static_cast<std::size_t>(e)]) continue;
    const auto [a, b] = g.endpoints(e);
    orient_out_of(
        g, out.orient, e,
        ids[static_cast<std::size_t>(a)] < ids[static_cast<std::size_t>(b)] ? a
                                                                            : b);
  }

  // Per component: pick the lexicographically smallest (by sorted endpoint
  // IDs) non-tree edge {a, b}; orient it out of a; flip the tree path from a
  // up to the leader so every path vertex keeps an out-edge.
  std::vector<EdgeId> chosen(static_cast<std::size_t>(comps.count),
                             kInvalidEdge);
  auto edge_key = [&](EdgeId e) {
    const auto [a, b] = g.endpoints(e);
    const std::uint64_t x = ids[static_cast<std::size_t>(a)];
    const std::uint64_t y = ids[static_cast<std::size_t>(b)];
    return std::pair<std::uint64_t, std::uint64_t>(std::min(x, y),
                                                   std::max(x, y));
  };
  for (EdgeId e = 0; e < m; ++e) {
    if (is_tree_edge[static_cast<std::size_t>(e)]) continue;
    const auto [a, b] = g.endpoints(e);
    const int c = comps.label[static_cast<std::size_t>(a)];
    auto& slot = chosen[static_cast<std::size_t>(c)];
    if (slot == kInvalidEdge || edge_key(e) < edge_key(slot)) slot = e;
  }
  for (int c = 0; c < comps.count; ++c) {
    const EdgeId e = chosen[static_cast<std::size_t>(c)];
    CKP_CHECK_MSG(e != kInvalidEdge,
                  "component " << c << " has no cycle (is a tree)");
    const auto [x, y] = g.endpoints(e);
    // a = endpoint with the smaller ID exits through the non-tree edge.
    const NodeId a =
        ids[static_cast<std::size_t>(x)] < ids[static_cast<std::size_t>(y)] ? x
                                                                            : y;
    orient_out_of(g, out.orient, e, a);
    // Flip the path a -> leader: each tree edge on it now points downward.
    for (NodeId v = a; parent[static_cast<std::size_t>(v)] != kInvalidNode;
         v = parent[static_cast<std::size_t>(v)]) {
      orient_out_of(g, out.orient, parent_edge[static_cast<std::size_t>(v)],
                    parent[static_cast<std::size_t>(v)]);
    }
  }

  // Round cost: every vertex must see its entire component to agree on the
  // leader, the BFS tree, and the flip path. Diameter via double sweep.
  int rounds = 0;
  {
    std::vector<int> d2(static_cast<std::size_t>(n), -1);
    // Second sweep from the farthest vertex of the first sweep per component.
    std::vector<NodeId> far(static_cast<std::size_t>(comps.count));
    for (int c = 0; c < comps.count; ++c) {
      far[static_cast<std::size_t>(c)] = leader[static_cast<std::size_t>(c)];
    }
    for (NodeId v = 0; v < n; ++v) {
      const int c = comps.label[static_cast<std::size_t>(v)];
      if (dist[static_cast<std::size_t>(v)] >
          dist[static_cast<std::size_t>(far[static_cast<std::size_t>(c)])]) {
        far[static_cast<std::size_t>(c)] = v;
      }
    }
    std::queue<NodeId> q;
    for (NodeId f : far) {
      d2[static_cast<std::size_t>(f)] = 0;
      q.push(f);
    }
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      rounds = std::max(rounds, d2[static_cast<std::size_t>(v)]);
      for (NodeId u : g.neighbors(v)) {
        if (d2[static_cast<std::size_t>(u)] < 0) {
          d2[static_cast<std::size_t>(u)] = d2[static_cast<std::size_t>(v)] + 1;
          q.push(u);
        }
      }
    }
  }
  ledger.charge(rounds);
  out.rounds = rounds;
  CKP_DCHECK(verify_sinkless_orientation(g, out.orient).ok);
  return out;
}

}  // namespace ckp
