// Sinkless orientation (Brandt et al., Section IV of the paper): orient
// every edge so that each vertex has out-degree >= 1. Defined on graphs with
// minimum degree >= 2 in which every connected component contains a cycle
// (Δ-regular graphs, the paper's setting, qualify).
//
// Randomized (RandLOCAL): every vertex claims one uniformly random incident
// edge as outgoing; conflicting claims are resolved by comparing private
// coin draws; losers that became sinks then repair by stealing an incoming
// edge from a neighbor with out-degree >= 2 (a stolen neighbor with
// out-degree 1 displaces the sink — a short random walk that terminates at
// the plentiful vertices of out-degree >= 2). Empirically O(1)–O(log log n)
// repair rounds; the paper's Ω(log_Δ log n) bound says no algorithm can be
// *much* faster.
//
// Deterministic (DetLOCAL): diameter-scale leader orientation. Each
// component's minimum-ID vertex m roots a BFS tree (parent = minimum-ID
// neighbor one level up); tree edges orient child→parent, making m the only
// potential sink; the lexicographically smallest non-tree edge {a,b} closes
// a cycle, and flipping the tree path from a up to m hands every path vertex
// a downward out-edge while a exits through {a,b}. Every vertex must see its
// whole component to agree on m and the flip path, so the round cost is the
// component diameter — Θ(log_Δ n) on Δ-regular graphs, matching the paper's
// DetLOCAL Ω(log_Δ n) bound (Theorem 5) up to constants.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "lcl/verify_orientation.hpp"
#include "local/context.hpp"

namespace ckp {

struct SinklessResult {
  Orientation orient;
  int rounds = 0;
  bool completed = true;
  NodeId sinks_after_claims = 0;  // randomized only: sinks before repair
  int repair_rounds = 0;          // randomized only
};

// RandLOCAL claim + repair. Requires min degree >= 2.
SinklessResult sinkless_orientation_randomized(const Graph& g,
                                               std::uint64_t seed,
                                               RoundLedger& ledger,
                                               int max_repair_rounds = 1 << 16);

// DetLOCAL leader orientation. Requires min degree >= 2 and a cycle in every
// component. Rounds are charged as the largest component diameter (estimated
// by double BFS, exact on the regular high-girth instances used in benches
// up to the usual double-sweep caveat, documented in EXPERIMENTS.md).
SinklessResult sinkless_orientation_deterministic(
    const Graph& g, const std::vector<std::uint64_t>& ids, RoundLedger& ledger);

}  // namespace ckp
