// Theorem 10: RandLOCAL Δ-coloring of trees for large Δ in
// O(log_Δ log n + log* n) rounds, via ColorBidding/Filtering + shattering.
//
// Phase 1 runs t = O(log* Δ) rounds over the palette {0 .. Δ-√Δ-1}. In
// round i each participating vertex v keeps a palette Ψ_i(v) and a set
// N_i(v) of participating neighbors, samples a random color set S_v
// (one uniform color when c_i = 1, else each color independently with
// probability c_i/|Ψ_i(v)|), and permanently takes any color in
// S_v \ ∪_{u∈N_i(v)} S_u. Filtering then marks vertices *bad* when the
// large-palette (P1) or small-degree (P2) property would break:
//   round 1:      |Ψ_2(v)| - |N'_2(v)| < Δ/α           (α = 200 in the paper)
//   rounds 1<i<t: |N'_{i+1}(v)| > Δ/c_{i+1}
//   round t:      every still-uncolored participant.
//
// Phase 2 colors the bad vertices — whose components have size
// <= Δ⁴ log n w.h.p. — with the ⌊√Δ⌋ reserved colors via Theorem 9.
//
// Constant schedule: the paper's c_i recurrence uses proof-tuned constants
// (c_{i+1} = c_i·exp(c_i/(3·200·e^200)), cap Δ^0.1) that would take ~10^90
// iterations to move; Thm10Params keeps the same functional form
// c_{i+1} = min(cap, c_i·exp(c_i/growth_divisor)) with practical defaults
// and exposes the paper's values for documentation. Correctness never
// depends on the schedule — anything uncolored lands in Phase 2 — only the
// shattering quality does, which bench_shattering measures.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/trace.hpp"

namespace ckp {

struct Thm10Params {
  double alpha = 200.0;          // P1 threshold Δ/α (paper: 200)
  double growth_divisor = 6.0;   // c_{i+1} = c_i·exp(c_i/growth_divisor)
  double cap_exponent = 0.5;     // c is capped at Δ^cap_exponent (paper: 0.1)
  int max_iterations = 64;       // safety bound on t
};

struct Thm10Result {
  std::vector<int> colors;  // proper Δ-coloring, values [0, Δ)
  int rounds = 0;
  int phase1_iterations = 0;
  Trace trace;

  NodeId bad_vertices = 0;
  NodeId largest_bad_component = 0;
};

// Requires: g a tree/forest, delta >= max(Δ(G), 16) (the reserved palette
// ⌊√Δ⌋ must be >= 3 wide for Theorem 9 — hence Δ >= 16, and the phase-1
// palette must be nonempty). RandLOCAL: randomness from `seed`.
Thm10Result delta_coloring_thm10(const Graph& g, int delta, std::uint64_t seed,
                                 RoundLedger& ledger,
                                 const Thm10Params& params = {});

}  // namespace ckp
