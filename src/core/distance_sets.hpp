// Distance-k sets and Lemma 3 (the combinatorial engine of the Theorem 10
// shattering analysis).
//
// S ⊆ V is a distance-k set when (1) members are pairwise at distance >= k
// and (2) S is connected in G^{=k} (the graph joining vertices at distance
// exactly k). Lemma 3 bounds their number: at most 4^t · n · Δ^{k(t-1)}
// distance-k sets of size t — which, union-bounded against the
// exp(-t·poly(Δ)) probability that all of a set's members turn out bad,
// yields the Δ⁴·log n component bound of Theorem 10's Phase 2.
//
// This module makes the lemma checkable: an exhaustive enumerator for small
// instances, the bound itself, and a sampling estimator of the bad-vertex
// union-bound expression.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ckp {

// True iff `set` (distinct vertices) is a distance-k set of g.
bool is_distance_k_set(const Graph& g, const std::vector<NodeId>& set, int k);

// Exact number of distance-k sets of size t (exhaustive; small inputs).
// Counts each set once regardless of discovery order.
std::uint64_t count_distance_k_sets(const Graph& g, int k, int t);

// log2 of Lemma 3's bound 4^t · n · Δ^{k(t-1)}.
double lemma3_log2_bound(std::uint64_t n, int delta, int k, int t);

}  // namespace ckp
