// Distributed constructive Lovász Local Lemma (parallel Moser–Tardos).
//
// The paper's Section IV bounds are, historically, the first lower bounds
// for the distributed LLL: sinkless orientation is exactly the LLL instance
// "orient every edge independently at random; the bad event at v is that v
// becomes a sink" (probability 2^-deg(v), dependency degree deg·(deg-1)).
// The constructive upper-bound side cited in the paper ([19] Chung–Pettie–Su,
// [11] Ghaffari) descends from Moser–Tardos resampling. This module
// implements the parallel variant:
//
//   repeat: find all violated events; select an independent subset in the
//   event-dependency graph (events sharing a variable conflict) by random
//   priorities; resample the selected events' variables.
//
// Under the usual LLL-type conditions this converges in O(log n) rounds
// w.h.p.; the benches measure iterations for sinkless orientation (where
// the polynomial LLL criterion fails for small Δ yet resampling still
// converges — part of why the problem is interesting) and for random
// k-uniform hypergraph 2-coloring.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

// An LLL system: variables with a resampling distribution, events with
// variable scopes and a violation predicate over the full assignment.
struct LllInstance {
  int num_variables = 0;
  std::vector<std::vector<int>> scopes;  // per event: variable indices
  // violated(event, assignment) — must read only scope variables.
  std::function<bool(int, const std::vector<int>&)> violated;
  // sample(variable, rng) — a fresh random value.
  std::function<int(int, Rng&)> sample;

  int num_events() const { return static_cast<int>(scopes.size()); }
  void validate() const;
};

struct LllResult {
  std::vector<int> assignment;
  int rounds = 0;
  int iterations = 0;
  std::int64_t resampled_events = 0;
  bool completed = true;
};

// Parallel Moser–Tardos. Each iteration costs 2 rounds (violation exchange +
// resample announcement) on the event-dependency graph, which embeds in the
// communication graph with O(1) overhead for the instances here.
LllResult moser_tardos_parallel(const LllInstance& instance, std::uint64_t seed,
                                RoundLedger& ledger, int max_iterations = 1 << 16);

// Sinkless orientation as an LLL system on a min-degree->=2 graph:
// variable e in {0,1} orients edge e (+1 means endpoints(e).first ->
// second); the event at v is "v is a sink".
LllInstance sinkless_orientation_lll(const Graph& g);

// Random k-uniform hypergraph 2-coloring (property B): `edges` hyperedges
// over `variables` vertices, each a random k-subset; the event is a
// monochromatic hyperedge (probability 2^{1-k}).
struct Hypergraph {
  int variables = 0;
  std::vector<std::vector<int>> edges;
};
Hypergraph make_random_hypergraph(int variables, int edges, int k, Rng& rng);
LllInstance hypergraph_two_coloring_lll(const Hypergraph& h);

}  // namespace ckp
