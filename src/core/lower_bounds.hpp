// Executable lower-bound machinery (Section IV).
//
// Lower bounds are statements about all algorithms and cannot be "run", but
// the paper's proof of Theorem 4 is a concrete computation that can:
// Lemmas 1 and 2 turn a t-round Δ-sinkless-coloring algorithm with
// per-edge failure p into a (t-1)-round one with failure
// 4(2Δ)^{1/(Δ+1)}·p^{1/(3(Δ+1))} < 7·p^{1/(3(Δ+1))}; iterating t times
// yields a 0-round algorithm, and any 0-round algorithm on an ID-less
// Δ-regular edge-colored graph fails at some edge with probability >= 1/Δ²
// (both endpoints of an edge draw colors i.i.d. from the same distribution).
// The contradiction threshold gives the exact t(Δ, p) this implementation of
// the recurrence certifies; bench_lower_bounds tabulates it against the
// paper's closed form t = ε·log_{3(Δ+1)} ln(1/p).
//
// The 1/Δ² floor itself is measured, not just asserted: run the best
// 0-round algorithm (uniform color choice) on sampled edge-colored Δ-regular
// graphs and count forbidden configurations.
#pragma once

#include <cstdint>

#include "graph/regular.hpp"
#include "local/context.hpp"

namespace ckp {

// One Lemma-1 + Lemma-2 amplification step: the failure probability of the
// derived (t-1)-round algorithm, given failure p at t rounds. Uses the exact
// 4(2Δ)^{1/(Δ+1)}·p^{1/(3(Δ+1))} constant, computed in log-space so p can be
// astronomically small.
double amplify_failure_log(double log_p, int delta);

// log(failure) after `steps` amplification steps starting from log(p).
double iterate_amplification_log(double log_p, int delta, int steps);

// The certified round lower bound: the largest t such that iterating the
// amplification t times from per-edge failure p still stays below the
// 0-round floor 1/Δ² (so a t-round algorithm with failure p would yield an
// impossible 0-round algorithm). Returns 0 when even p itself is >= 1/Δ².
int certified_lower_bound(double log_p, int delta, int max_t = 1 << 20);

// The paper's closed form t = eps·log_{3(Δ+1)} ln(1/p) − 1 (Theorem 4,
// without the log_Δ n girth cap).
double thm4_closed_form(double log_inv_p, int delta, double eps = 1.0);

// Measured per-edge failure frequency of the uniform 0-round Δ-sinkless
// coloring algorithm on `instance` over `trials` independent runs. The
// theory says ~ 1/Δ per edge for the *matching-color* event... precisely:
// an edge {u,v} with input color c fails when both endpoints draw c, i.e.
// with probability exactly 1/Δ²; the returned frequency estimates it.
double measured_zero_round_failure(const EdgeColoredGraph& instance,
                                   int trials, std::uint64_t seed);

}  // namespace ckp
