// Theorem 11: RandLOCAL Δ-coloring of trees for constant Δ >= 55 in
// O(log_Δ log n + log* n) rounds.
//
// Phase 1 (colors {3..Δ-1}): for i from Δ-1 down to 3, draw a random rank
// x(v) per uncolored vertex, let K be the strict local minima, extend K to a
// maximal independent set I of the uncolored graph (greedily, scheduled by a
// Theorem 2 coloring computed once), and give color i to I. Maximality
// shrinks every surviving vertex's uncolored degree by >= 1 per iteration,
// so afterwards every uncolored vertex has <= 3 uncolored neighbors.
//
// Phase 2 (colors {0,1,2}): S = uncolored vertices with exactly 3 uncolored
// neighbors; the random ranks shatter S into components of size O(log n)
// w.h.p. (measured, not assumed — see bench_shattering), and Theorem 9 with
// q = 3 colors G[S]. Phase-1 colors are disjoint from {0,1,2}, so this is
// always proper.
//
// Phase 3 (full palette): remaining uncolored vertices have <= 2 uncolored
// neighbors and, by a counting argument over the two disjoint palettes,
// strictly more available colors than uncolored neighbors; 3-color the
// remainder (Theorem 9, q=3, as the scheduling device) and recolor the three
// classes greedily from the available palette.
//
// The algorithm is correct for every Δ >= 7 (phase 3 needs the phase-1
// palette to have >= 4 colors); Δ >= 55 is what the paper's analysis needs
// for the O(log n) shattering bound. bench_shattering sweeps Δ below and
// above 55 to probe that threshold empirically.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/trace.hpp"

namespace ckp {

struct Thm11Result {
  std::vector<int> colors;  // proper Δ-coloring, values [0, Δ)
  int rounds = 0;
  Trace trace;

  // Shattering telemetry.
  NodeId phase2_set_size = 0;        // |S|
  NodeId phase2_largest_component = 0;
  NodeId phase3_set_size = 0;
};

// Requires: g a tree (or forest), delta >= max(Δ(G), 7). RandLOCAL: no IDs;
// randomness from `seed`.
Thm11Result delta_coloring_thm11(const Graph& g, int delta, std::uint64_t seed,
                                 RoundLedger& ledger);

}  // namespace ckp
