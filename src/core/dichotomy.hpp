// Theorem 7: the Δ=2 dichotomy — on paths and cycles, every LCL is either
// O(log* n) or Ω(n).
//
// Both sides are made executable on cycles:
//  * 2-COLORING sits on the Ω(n) side: a vertex's color depends on its
//    distance parity to a globally agreed anchor, and no anchor can be
//    agreed on without seeing the entire cycle — the algorithm here needs
//    radius ⌈n/2⌉, charged through the view engine (and odd cycles are
//    correctly rejected as infeasible).
//  * 3-COLORING sits on the O(log* n) side: Theorem 2 gives a constant
//    palette in O(log* n) rounds and class elimination finishes.
// bench_dichotomy prints both measured curves; the empty band between them
// is Theorem 7's gap.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"

namespace ckp {

struct CycleColoringResult {
  std::vector<int> colors;
  int rounds = 0;
};

// Proper 2-coloring of an even cycle in DetLOCAL: anchor = minimum-ID
// vertex, colors by BFS parity. Charges ⌈n/2⌉ rounds (every vertex must see
// the whole cycle to certify the anchor). Throws on odd cycles (infeasible)
// and non-cycles.
CycleColoringResult two_color_cycle(const Graph& g,
                                    const std::vector<std::uint64_t>& ids,
                                    RoundLedger& ledger);

// Proper 3-coloring of any cycle in O(log* n) rounds (Theorem 2 + class
// elimination).
CycleColoringResult three_color_cycle(const Graph& g,
                                      const std::vector<std::uint64_t>& ids,
                                      RoundLedger& ledger);

// True iff g is a single cycle (connected, 2-regular).
bool is_cycle(const Graph& g);

}  // namespace ckp
