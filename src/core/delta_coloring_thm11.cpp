#include "core/delta_coloring_thm11.hpp"

#include <algorithm>

#include "algo/be_tree_coloring.hpp"
#include "algo/color_reduction.hpp"
#include "algo/linial.hpp"
#include "graph/components.hpp"
#include "graph/subgraph.hpp"
#include "lcl/verify_coloring.hpp"
#include "local/ids.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace ckp {
namespace {

// Locally generated random IDs (RandLOCAL's standard substitute for real
// IDs; unique w.h.p., re-drawn on the measure-zero collision event).
std::vector<std::uint64_t> local_random_ids(NodeId n, std::uint64_t seed) {
  for (std::uint64_t epoch = 0;; ++epoch) {
    std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      ids[static_cast<std::size_t>(v)] =
          node_rng(seed, static_cast<std::uint64_t>(v), epoch ^ 0xabcdULL)();
    }
    if (ids_unique(ids)) return ids;
  }
}

}  // namespace

Thm11Result delta_coloring_thm11(const Graph& g, int delta, std::uint64_t seed,
                                 RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  CKP_CHECK_MSG(delta >= 7, "Theorem 11 implementation needs Δ >= 7");
  CKP_CHECK_MSG(delta >= g.max_degree(), "delta below the true max degree");
  const int start_rounds = ledger.rounds();

  Thm11Result out;
  out.colors.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return out;

  const auto ids = local_random_ids(n, mix_seed(seed, 0x11));

  // Scheduling coloring: Theorem 2, computed once and reduced to Δ+1
  // colors, reused by every MIS extension round of Phase 1 (so each
  // extension costs Δ+1 rounds instead of O(Δ²)).
  const int schedule_start = ledger.rounds();
  Timer schedule_timer;
  auto schedule = linial_coloring(g, ids, delta, ledger);
  const int schedule_palette = delta + 1;
  reduce_palette_fast(g, schedule.colors, schedule.palette, schedule_palette,
                      ledger);
  out.trace.record("schedule(Thm2+reduce)", ledger.rounds() - schedule_start,
                   0, schedule_timer.seconds());
  std::vector<std::vector<NodeId>> class_members(
      static_cast<std::size_t>(schedule_palette));
  for (NodeId v = 0; v < n; ++v) {
    class_members[static_cast<std::size_t>(
                      schedule.colors[static_cast<std::size_t>(v)])]
        .push_back(v);
  }

  std::vector<char> uncolored(static_cast<std::size_t>(n), 1);
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    rngs.push_back(node_rng(seed, static_cast<std::uint64_t>(v), 0x22));
  }

  // ---- Phase 1: colors delta-1 down to 3. ----
  const int phase1_start = ledger.rounds();
  Timer phase1_timer;
  std::vector<std::uint64_t> rank(static_cast<std::size_t>(n), 0);
  std::vector<char> in_i(static_cast<std::size_t>(n), 0);
  for (int color = delta - 1; color >= 3; --color) {
    // Draw ranks; strict local minima seed the independent set.
    for (NodeId v = 0; v < n; ++v) {
      if (uncolored[static_cast<std::size_t>(v)]) {
        rank[static_cast<std::size_t>(v)] = rngs[static_cast<std::size_t>(v)]();
      }
    }
    std::fill(in_i.begin(), in_i.end(), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (!uncolored[static_cast<std::size_t>(v)]) continue;
      bool is_min = true;
      for (NodeId u : g.neighbors(v)) {
        if (uncolored[static_cast<std::size_t>(u)] &&
            rank[static_cast<std::size_t>(u)] <=
                rank[static_cast<std::size_t>(v)]) {
          is_min = false;  // ties exclude both; K stays independent
          break;
        }
      }
      in_i[static_cast<std::size_t>(v)] = is_min;
    }
    ledger.charge(2);  // rank exchange + K announcement

    // Greedy extension to a maximal independent set of G[uncolored],
    // scheduled by the reduced Theorem 2 coloring.
    for (int s = 0; s < schedule_palette; ++s) {
      for (NodeId v : class_members[static_cast<std::size_t>(s)]) {
        if (!uncolored[static_cast<std::size_t>(v)] ||
            in_i[static_cast<std::size_t>(v)]) {
          continue;
        }
        bool blocked = false;
        for (NodeId u : g.neighbors(v)) {
          if (in_i[static_cast<std::size_t>(u)]) {
            blocked = true;
            break;
          }
        }
        if (!blocked) in_i[static_cast<std::size_t>(v)] = 1;
      }
      ledger.charge(1);
    }

    for (NodeId v = 0; v < n; ++v) {
      if (in_i[static_cast<std::size_t>(v)]) {
        out.colors[static_cast<std::size_t>(v)] = color;
        uncolored[static_cast<std::size_t>(v)] = 0;
      }
    }
    ledger.charge(1);  // color announcement
  }
  out.trace.record("phase1(MIS peeling)", ledger.rounds() - phase1_start, 0,
                   phase1_timer.seconds());

  // Every uncolored vertex now has at most 3 uncolored neighbors.
  auto uncolored_degree = [&](NodeId v) {
    int d = 0;
    for (NodeId u : g.neighbors(v)) {
      if (uncolored[static_cast<std::size_t>(u)]) ++d;
    }
    return d;
  };
  for (NodeId v = 0; v < n; ++v) {
    if (uncolored[static_cast<std::size_t>(v)]) {
      CKP_CHECK_MSG(uncolored_degree(v) <= 3,
                    "phase-1 invariant violated at node " << v);
    }
  }

  // ---- Phase 2: 3-color S = {uncolored with exactly 3 uncolored nbrs}. ----
  const int phase2_start = ledger.rounds();
  Timer phase2_timer;
  std::vector<char> in_s(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (uncolored[static_cast<std::size_t>(v)] && uncolored_degree(v) == 3) {
      in_s[static_cast<std::size_t>(v)] = 1;
    }
  }
  const auto s_components = components_of_subset(g, in_s);
  out.phase2_set_size = 0;
  for (char b : in_s) out.phase2_set_size += b;
  out.phase2_largest_component = s_components.largest();
  if (out.phase2_set_size > 0) {
    const auto sub = induced_subgraph(g, in_s);
    std::vector<std::uint64_t> sub_ids(sub.to_original.size());
    for (std::size_t i = 0; i < sub.to_original.size(); ++i) {
      sub_ids[i] = ids[static_cast<std::size_t>(sub.to_original[i])];
    }
    RoundLedger sub_ledger;
    const auto s_coloring = be_tree_coloring(sub.graph, 3, sub_ids, sub_ledger);
    // Components run in parallel; the sub-run is a single local execution.
    ledger.charge(sub_ledger.rounds());
    for (std::size_t i = 0; i < sub.to_original.size(); ++i) {
      const NodeId v = sub.to_original[i];
      out.colors[static_cast<std::size_t>(v)] = s_coloring.colors[i];
      uncolored[static_cast<std::size_t>(v)] = 0;
    }
  }
  out.trace.record("phase2(3-color S)", ledger.rounds() - phase2_start,
                   out.phase2_largest_component, phase2_timer.seconds());

  // ---- Phase 3: list-color the remainder from the full palette. ----
  const int phase3_start = ledger.rounds();
  Timer phase3_timer;
  std::vector<char> in_u3(static_cast<std::size_t>(n), 0);
  NodeId u3 = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (uncolored[static_cast<std::size_t>(v)]) {
      in_u3[static_cast<std::size_t>(v)] = 1;
      ++u3;
      CKP_CHECK_MSG(uncolored_degree(v) <= 2,
                    "phase-3 precondition violated at node " << v);
    }
  }
  out.phase3_set_size = u3;
  if (u3 > 0) {
    const auto sub = induced_subgraph(g, in_u3);
    std::vector<std::uint64_t> sub_ids(sub.to_original.size());
    for (std::size_t i = 0; i < sub.to_original.size(); ++i) {
      sub_ids[i] = ids[static_cast<std::size_t>(sub.to_original[i])];
    }
    RoundLedger sub_ledger;
    const auto tmp = be_tree_coloring(sub.graph, 3, sub_ids, sub_ledger);
    ledger.charge(sub_ledger.rounds());
    // Recolor temporary classes 0,1,2 in three rounds; strict availability
    // (see header) guarantees a free color at every turn.
    std::vector<char> used(static_cast<std::size_t>(delta), 0);
    for (int cls = 0; cls < 3; ++cls) {
      for (std::size_t i = 0; i < sub.to_original.size(); ++i) {
        if (tmp.colors[i] != cls) continue;
        const NodeId v = sub.to_original[i];
        std::fill(used.begin(), used.end(), 0);
        for (NodeId u : g.neighbors(v)) {
          const int cu = out.colors[static_cast<std::size_t>(u)];
          if (cu >= 0) used[static_cast<std::size_t>(cu)] = 1;
        }
        int pick = -1;
        for (int c = 0; c < delta; ++c) {
          if (!used[static_cast<std::size_t>(c)]) {
            pick = c;
            break;
          }
        }
        CKP_CHECK_MSG(pick >= 0, "phase 3: node " << v
                                                  << " has no available color");
        out.colors[static_cast<std::size_t>(v)] = pick;
      }
      ledger.charge(1);
    }
  }
  out.trace.record("phase3(list color)", ledger.rounds() - phase3_start, u3,
                   phase3_timer.seconds());

  out.rounds = ledger.rounds() - start_rounds;
  CKP_DCHECK(verify_coloring(g, out.colors, delta).ok);
  return out;
}

}  // namespace ckp
